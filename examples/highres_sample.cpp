// The introduction's second motivating case: "even a single training
// sample is too large to be processed on a single GPU" (high-resolution
// medical / satellite imagery, up to ~2 GiB per sample [5]).
//
//   $ ./highres_sample [resolution]
//
// Shows a fully convolutional segmenter at batch = 1 whose in-core
// footprint exceeds the device severalfold, and the out-of-core plan
// KARMA generates for it — including the generated training script
// (workflow step 5).
#include <cstdio>
#include <cstdlib>

#include "src/api/engine.h"
#include "src/core/codegen.h"
#include "src/graph/memory_model.h"
#include "src/graph/model_zoo.h"

int main(int argc, char** argv) {
  using namespace karma;

  const std::int64_t resolution = argc > 1 ? std::atoll(argv[1]) : 4096;
  const sim::DeviceSpec device = sim::v100_abci();
  const graph::Model model = graph::make_highres_segmenter(1, resolution);

  const Bytes sample_bytes =
      static_cast<Bytes>(3 * resolution * resolution) * model.dtype_bytes();
  const Bytes footprint = graph::in_core_footprint(model);
  std::printf("%s: one %lldx%lld sample = %s raw input\n",
              model.name().c_str(), static_cast<long long>(resolution),
              static_cast<long long>(resolution),
              format_bytes(sample_bytes).c_str());
  std::printf("in-core training footprint at batch 1: %s  (device: %s, %.1fx"
              " over)\n",
              format_bytes(footprint).c_str(),
              format_bytes(device.memory_capacity).c_str(),
              static_cast<double>(footprint) /
                  static_cast<double>(device.memory_capacity));

  api::PlanRequest request;
  request.model = model;
  request.device = device;
  request.planner.enable_recompute = true;
  const api::Plan plan = api::Engine::create()->session().plan_or_throw(request);
  const core::PlanResult result = plan.to_plan_result();

  std::printf("\nKARMA plan: %zu blocks, iteration %s, occupancy %.3f\n",
              result.blocks.size(),
              format_seconds(result.iteration_time).c_str(),
              result.occupancy);
  std::printf("peak device memory: %s (fits!)\n",
              format_bytes(result.trace.peak_resident).c_str());
  int swapped = 0, recomputed = 0, resident = 0;
  for (const auto policy : result.policies) {
    if (policy == core::BlockPolicy::kSwap) ++swapped;
    else if (policy == core::BlockPolicy::kRecompute) ++recomputed;
    else ++resident;
  }
  std::printf("policies: %d swapped, %d recomputed, %d resident\n", swapped,
              recomputed, resident);

  std::printf("\ngenerated training script (first 30 lines):\n");
  const std::string script =
      core::generate_training_script(result.plan);
  std::size_t pos = 0;
  for (int line = 0; line < 30 && pos != std::string::npos; ++line) {
    const std::size_t end = script.find('\n', pos);
    std::printf("  %s\n", script.substr(pos, end - pos).c_str());
    pos = end == std::string::npos ? end : end + 1;
  }
  return 0;
}
