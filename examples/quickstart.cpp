// Quickstart: the karma::api v2 planning service end to end (DESIGN.md
// §8, §11).
//
//   $ ./quickstart [batch]
//
// One Engine, one tenant Session, one request, one artifact: build a
// PlanRequest (model + device + optimizer + planner knobs) ->
// Session::plan() -> inspect the Plan artifact (blocking, policies,
// simulated iteration), round-trip it through JSON (the plan-cache
// format), show the structured PlanError a hopeless request produces
// instead of an exception — then the service features: a deadline-bounded
// plan, an async plan cancelled mid-search (both returning structured
// errors with the best-so-far plan attached), and the shared plan cache.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "src/api/engine.h"
#include "src/baselines/strategies.h"
#include "src/cache/plan_cache.h"
#include "src/graph/memory_model.h"
#include "src/graph/model_zoo.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace karma;

  const std::int64_t batch = argc > 1 ? std::atoll(argv[1]) : 512;

  // ---- 1. One request describes the whole problem ----
  api::PlanRequest request;
  request.model = graph::make_resnet50(batch);
  request.device = sim::v100_abci();
  request.optimizer.kind = api::OptimizerSpec::Kind::kSgdMomentum;
  request.planner.enable_recompute = true;

  const Bytes footprint = graph::in_core_footprint(request.model);
  std::printf("model:   %s, batch %lld (%zu layers, %.1fM params)\n",
              request.model.name().c_str(), static_cast<long long>(batch),
              request.model.num_layers(),
              request.model.total_weight_elems() / 1e6);
  std::printf("device:  %s (%s)\n", request.device.name.c_str(),
              format_bytes(request.device.memory_capacity).c_str());
  std::printf("in-core footprint: %s -> %s\n", format_bytes(footprint).c_str(),
              footprint <= request.device.memory_capacity
                  ? "fits, no out-of-core needed"
                  : "does NOT fit; KARMA required");

  // ---- 2. The v2 service: Engine owns the shared cache + worker pool;
  // Sessions are cheap per-tenant handles. (For cross-process sharing,
  // api::RemoteSession plans through the karma-pland daemon instead —
  // see the README quickstart.) ----
  const auto engine = api::Engine::create();
  const api::Session session = engine->session();
  const auto planned = session.plan(request);
  if (!planned) {
    std::printf("infeasible:\n%s\n", planned.error().describe().c_str());
    return 1;
  }
  const api::Plan& plan = *planned;

  std::printf("\nKARMA blocking (%zu blocks):\n", plan.blocks().size());
  Table table({"block", "layers", "policy", "activations"});
  for (std::size_t b = 0; b < plan.blocks().size(); ++b) {
    table.begin_row();
    table.add_cell(static_cast<std::int64_t>(b + 1));
    table.add_cell(std::to_string(plan.blocks()[b].first_layer) + ".." +
                   std::to_string(plan.blocks()[b].last_layer - 1));
    table.add_cell(core::block_policy_name(plan.policies[b]));
    table.add_cell(format_bytes(plan.schedule.costs[b].act_bytes));
  }
  std::printf("%s", table.to_ascii().c_str());

  std::printf("\nschedule (Sec. III-F.3 notation, first 200 chars):\n  %s...\n",
              plan.schedule.schedule_string().substr(0, 200).c_str());
  std::printf("\nsimulated iteration: %s  (%.1f samples/s)\n",
              format_seconds(plan.iteration_time).c_str(),
              static_cast<double>(batch) / plan.iteration_time);
  std::printf("device occupancy:    %.3f\n", plan.occupancy);
  std::printf("peak device memory:  %s of %s\n",
              format_bytes(plan.trace.peak_resident).c_str(),
              format_bytes(request.device.memory_capacity).c_str());
  std::printf("optimizer reserve:   %s pinned in host DRAM\n",
              format_bytes(plan.reserved_host_bytes).c_str());

  // ---- 3. The artifact is a value: serialize, reload, re-simulate ----
  const std::string json = plan.to_json();
  const auto reloaded = api::Plan::from_json(json);
  if (!reloaded) {
    std::printf("round-trip failed: %s\n",
                reloaded.error().describe().c_str());
    return 1;
  }
  const Seconds replay = reloaded->simulate().makespan;
  std::printf("\nJSON round-trip: %zu bytes; replayed makespan %s (%s)\n",
              json.size(), format_seconds(replay).c_str(),
              replay == plan.trace.makespan ? "bit-identical" : "DRIFTED");

  // ---- 4. Structured infeasibility instead of a throw ----
  api::PlanRequest hopeless = request;
  hopeless.device.memory_capacity = 64_MiB;  // smaller than one layer
  hopeless.probe_feasible_batch = false;     // keep the demo fast
  const auto refused = session.plan(hopeless);
  if (!refused)
    std::printf("\na 64 MiB device is refused with a diagnosis:\n%s\n",
                refused.error().describe().c_str());

  // ---- 5. Deadline-bounded planning: bound the search, keep the best ----
  // A genuinely deep search (ResNet-50 at batch 512 with an effectively
  // unbounded anneal — it would refine for minutes) capped at 150 ms of
  // wall clock: the search returns PlanError{kDeadline} with the best
  // feasible plan it reached attached — a usable (if unpolished)
  // artifact.
  api::PlanRequest deep = request;
  deep.model = graph::make_resnet50(512);  // fixed: deep at any CLI batch
  deep.planner.anneal_iterations = 50'000'000;
  deep.probe_feasible_batch = false;

  api::PlanRequest bounded = deep;
  bounded.limits.deadline = 0.15;  // seconds
  const auto expired = session.plan(bounded);
  if (!expired) {
    std::printf("\ndeadline-bounded plan (150 ms budget): %s\n",
                api::plan_error_code_name(expired.error().code));
    if (expired.error().partial) {
      const api::Plan& partial = *expired.error().partial;
      std::printf("  best-so-far plan attached: %zu blocks, iteration %s\n",
                  partial.blocks().size(),
                  format_seconds(partial.iteration_time).c_str());
    }
  }

  // ---- 6. Async + cancel: PlanFuture over the worker pool ----
  api::PlanRequest doomed = deep;
  doomed.planner.seed ^= 1;  // distinct request: a fresh flight, not a hit
  api::PlanFuture future = session.plan_async(doomed);
  // Wait for the search's first feasible candidate, then pull the plug.
  api::PlanProgress progress = future.progress();
  while (!progress.has_best && !progress.done) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    progress = future.progress();
  }
  future.cancel();
  const auto cancelled = future.get();
  if (!cancelled.has_value()) {
    progress = future.progress();
    std::printf("\ncancelled async plan: %s after %lld candidates "
                "(%lld simulated, %lld memo hits); partial attached: %s\n",
                api::plan_error_code_name(cancelled.error().code),
                static_cast<long long>(progress.candidates),
                static_cast<long long>(progress.simulations),
                static_cast<long long>(progress.memo_hits),
                cancelled.error().partial ? "yes" : "no");
  }

  // Compare against the strongest baseline for context.
  if (const auto checkmate =
          baselines::plan_checkmate(request.model, request.device)) {
    std::printf("\nCheckmate (optimal remat) on the same workload: %s "
                "-> KARMA speedup %.2fx\n",
                format_seconds(checkmate->iteration_time).c_str(),
                checkmate->iteration_time / plan.iteration_time);
  }

  // ---- 7. The engine's shared plan cache (DESIGN.md §10, §11) ----
  // Planning is pure, so the Engine memoizes it by request content —
  // positive artifacts and negative diagnoses both. Set KARMA_CACHE_DIR
  // (or EngineOptions::cache.cache_dir) to a directory under your build
  // tree to persist plans across runs: a second identical invocation then
  // reports disk_hits=1 here instead of re-running the whole Opt-1/Opt-2
  // search. Note the cancelled and deadline-bounded searches above left
  // no cache entries behind (only completed searches are cached).
  std::printf("\nplan cache [%s]: %s\n",
              session.options().cache_dir.empty()
                  ? "memory-only; set KARMA_CACHE_DIR to persist"
                  : session.options().cache_dir.c_str(),
              session.cache_stats().describe().c_str());
  std::printf("engine: %s\n", engine->stats().describe().c_str());
  return refused ? 1 : 0;
}
