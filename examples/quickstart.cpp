// Quickstart: plan out-of-core training for a model that does not fit on
// the device, inspect the schedule KARMA generates, and simulate it.
//
//   $ ./quickstart [batch]
//
// Walks the full public API path: build a model from the zoo -> check its
// in-core footprint -> run the two-tier optimization (blocking +
// recompute interleave) -> replay the plan on the discrete-event engine
// -> read throughput, occupancy, and peak memory from the trace.
#include <cstdio>
#include <cstdlib>

#include "src/baselines/strategies.h"
#include "src/core/planner.h"
#include "src/graph/memory_model.h"
#include "src/graph/model_zoo.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace karma;

  const std::int64_t batch = argc > 1 ? std::atoll(argv[1]) : 512;
  const sim::DeviceSpec device = sim::v100_abci();
  const graph::Model model = graph::make_resnet50(batch);

  const Bytes footprint = graph::in_core_footprint(model);
  std::printf("model:   %s, batch %lld (%zu layers, %.1fM params)\n",
              model.name().c_str(), static_cast<long long>(batch),
              model.num_layers(), model.total_weight_elems() / 1e6);
  std::printf("device:  %s (%s)\n", device.name.c_str(),
              format_bytes(device.memory_capacity).c_str());
  std::printf("in-core footprint: %s -> %s\n", format_bytes(footprint).c_str(),
              footprint <= device.memory_capacity
                  ? "fits, no out-of-core needed"
                  : "does NOT fit; KARMA required");

  // Plan with the full pipeline: Opt-1 blocking + Opt-2 recompute.
  core::PlannerOptions options;
  options.enable_recompute = true;
  const core::KarmaPlanner planner(model, device, options);
  const core::PlanResult result = planner.plan();

  std::printf("\nKARMA blocking (%zu blocks):\n", result.blocks.size());
  Table table({"block", "layers", "policy", "activations"});
  for (std::size_t b = 0; b < result.blocks.size(); ++b) {
    table.begin_row();
    table.add_cell(static_cast<std::int64_t>(b + 1));
    table.add_cell(std::to_string(result.blocks[b].first_layer) + ".." +
                   std::to_string(result.blocks[b].last_layer - 1));
    table.add_cell(core::block_policy_name(result.policies[b]));
    table.add_cell(format_bytes(result.plan.costs[b].act_bytes));
  }
  std::printf("%s", table.to_ascii().c_str());

  std::printf("\nschedule (Sec. III-F.3 notation, first 200 chars):\n  %s...\n",
              result.plan.schedule_string().substr(0, 200).c_str());
  std::printf("\nsimulated iteration: %s  (%.1f samples/s)\n",
              format_seconds(result.iteration_time).c_str(),
              static_cast<double>(batch) / result.iteration_time);
  std::printf("device occupancy:    %.3f\n", result.occupancy);
  std::printf("peak device memory:  %s of %s\n",
              format_bytes(result.trace.peak_resident).c_str(),
              format_bytes(device.memory_capacity).c_str());

  // Compare against the strongest baseline for context.
  if (const auto checkmate = baselines::plan_checkmate(model, device)) {
    std::printf("\nCheckmate (optimal remat) on the same workload: %s "
                "-> KARMA speedup %.2fx\n",
                format_seconds(checkmate->iteration_time).c_str(),
                checkmate->iteration_time / result.iteration_time);
  }
  return 0;
}
