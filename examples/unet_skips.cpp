// Non-linear models (Sec. III-F.4): U-Net's contracting->expansive skip
// connections prevent swapping the contracting path out early — KARMA's
// second optimization problem steers those blocks to recompute instead.
// This example makes that behaviour visible.
//
//   $ ./unet_skips [batch]
#include <cstdio>
#include <cstdlib>

#include "src/api/engine.h"
#include "src/graph/memory_model.h"
#include "src/graph/model_zoo.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace karma;

  const std::int64_t batch = argc > 1 ? std::atoll(argv[1]) : 24;
  const graph::Model model = graph::make_unet(batch);
  const sim::DeviceSpec device = sim::v100_abci();

  std::printf("U-Net, batch %lld: %zu layers, skip span up to %d layers\n",
              static_cast<long long>(batch), model.num_layers(),
              model.max_skip_span());
  std::printf("in-core footprint %s (device %s)\n",
              format_bytes(graph::in_core_footprint(model)).c_str(),
              format_bytes(device.memory_capacity).c_str());

  api::PlanRequest request;
  request.model = model;
  request.device = device;
  request.planner.enable_recompute = true;
  const api::Plan plan = api::Engine::create()->session().plan_or_throw(request);
  const core::PlanResult result = plan.to_plan_result();
  const auto long_skip = core::blocks_with_long_skips(model, result.blocks);

  Table table({"block", "layers", "has outgoing skip", "policy"});
  int skip_blocks = 0, skip_swapped = 0;
  for (std::size_t b = 0; b < result.blocks.size(); ++b) {
    table.begin_row();
    table.add_cell(static_cast<std::int64_t>(b + 1));
    table.add_cell(model.layer(result.blocks[b].first_layer).name + " .. " +
                   model.layer(result.blocks[b].last_layer - 1).name);
    table.add_cell(long_skip[b] ? "yes" : "");
    table.add_cell(core::block_policy_name(result.policies[b]));
    if (long_skip[b]) {
      ++skip_blocks;
      if (result.policies[b] == core::BlockPolicy::kSwap) ++skip_swapped;
    }
  }
  std::printf("%s", table.to_ascii().c_str());
  std::printf(
      "\n%d block(s) carry outgoing skips; %d of them are swap-policy\n"
      "(Sec. III-F.4 expects 0 — they are recomputed or kept resident so\n"
      "the expansive path finds its inputs without premature swap-ins).\n",
      skip_blocks, skip_swapped);
  std::printf("\niteration %s, occupancy %.3f, peak %s\n",
              format_seconds(result.iteration_time).c_str(), result.occupancy,
              format_bytes(result.trace.peak_resident).c_str());
  return skip_swapped == 0 ? 0 : 1;
}
