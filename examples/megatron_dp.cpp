// Data-parallel KARMA for a billion-parameter transformer: the workload
// the paper's multi-GPU contribution targets (Sec. III-G / Table IV).
// Plans the 5-stage pipeline for a Megatron-LM configuration whose
// weights alone overflow a V100, prints the weight-swapping schedule, the
// phased gradient-exchange plan, and the simulated scaling curve.
//
//   $ ./megatron_dp [config 0..4] [gpus]
//
// Uses the v2 service API: one Engine, plan_async fan-out for the scaling
// curve (each cluster size is an independent search; the worker pool runs
// them concurrently while the main thread renders the results in order).
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/api/engine.h"
#include "src/graph/model_zoo.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace karma;

  const int config_index = argc > 1 ? std::atoi(argv[1]) : 2;  // 2.5B
  const int gpus = argc > 2 ? std::atoi(argv[2]) : 128;
  const std::int64_t local_batch = 8;

  const graph::TransformerConfig cfg = graph::megatron_config(config_index);
  const graph::Model model = graph::make_transformer(cfg, local_batch);
  const sim::DeviceSpec device = sim::v100_abci();

  std::printf("model:  %s (%.1fB params, fp16)\n", model.name().c_str(),
              static_cast<double>(cfg.approx_params()) / 1e9);
  std::printf("weights+grads: %s vs device %s -> %s\n",
              format_bytes(2 * cfg.approx_params() * cfg.dtype_bytes).c_str(),
              format_bytes(device.memory_capacity).c_str(),
              "weight swapping required");

  api::PlanRequest request;
  request.model = model;
  request.device = device;
  core::DistributedOptions options;
  options.num_gpus = gpus;
  options.iterations = 3;
  options.planner.anneal_iterations = 0;  // superseded by request.planner
  request.planner.anneal_iterations = 0;
  request.distributed = options;
  const auto engine = api::Engine::create();
  const api::Session session = engine->session();
  const api::Plan result = session.plan_or_throw(request);
  const net::ExchangePlan& exchange = *result.exchange;

  std::printf("\n5-stage pipeline plan (%d GPUs, local batch %lld):\n", gpus,
              static_cast<long long>(local_batch));
  std::printf("  blocks: %zu, weights %s\n", result.blocks().size(),
              result.weights_resident ? "resident" : "swapped per block");
  std::printf("  steady-state iteration: %s (first: %s)\n",
              format_seconds(result.iteration_time).c_str(),
              format_seconds(result.first_iteration_time).c_str());
  std::printf("  cluster throughput: %.1f samples/s\n",
              static_cast<double>(gpus) * local_batch /
                  result.iteration_time);
  std::printf("  peak device memory: %s\n",
              format_bytes(result.trace.peak_resident).c_str());

  // Bounded per-tier residency (DESIGN.md §9): replan on the NVMe node,
  // whose 384 GiB DRAM is bounded. The host ledger now carries the pinned
  // master weight shards, the in-flight gradients between gradient-out
  // and CPU update, and any activation spill — all admitted statically
  // and replayed per class by the engine.
  {
    api::PlanRequest bounded = request;
    bounded.device = sim::v100_abci_nvme();
    bounded.distributed->iterations = 3;
    const api::Plan r = session.plan_or_throw(bounded);
    std::printf("\nbounded-DRAM node (%s DRAM, %s NVMe):\n",
                format_bytes(bounded.device.host_capacity).c_str(),
                format_bytes(bounded.device.nvme_capacity).c_str());
    std::printf("  host shards (pinned master copy): %s\n",
                format_bytes(r.schedule.host_baseline_resident).c_str());
    std::printf("  peak host residency (shards+grads+spill): %s\n",
                format_bytes(r.trace.peak_host_resident).c_str());
    std::printf("  peak NVMe residency: %s\n",
                format_bytes(r.trace.peak_nvme_resident).c_str());
    std::printf("  steady-state iteration: %s\n",
                format_seconds(r.iteration_time).c_str());

    // And the honest failure mode: DRAM too small for the shard residency
    // yields a structured per-tier deficit, not a mystery deadlock.
    api::PlanRequest tiny = bounded;
    tiny.device.host_capacity = 256_MiB;
    tiny.probe_feasible_batch = false;
    const auto rejected = session.plan(tiny);
    if (!rejected)
      std::printf("\nwith only 256 MiB DRAM the planner reports:\n%s\n",
                  rejected.error().describe().c_str());
  }

  std::printf("\nphased gradient exchange (%zu phases, MG-WFBP grouping):\n",
              exchange.phases.size());
  Table phases({"phase", "launch after block", "blocks merged", "payload",
                "allreduce"});
  const std::size_t show = std::min<std::size_t>(8, exchange.phases.size());
  for (std::size_t i = 0; i < show; ++i) {
    const auto& p = exchange.phases[i];
    phases.begin_row();
    phases.add_cell(static_cast<std::int64_t>(i + 1));
    phases.add_cell(static_cast<std::int64_t>(p.launch_after_block + 1));
    phases.add_cell(static_cast<std::int64_t>(p.blocks.size()));
    phases.add_cell(format_bytes(p.bytes));
    phases.add_cell(format_seconds(p.allreduce_time));
  }
  std::printf("%s", phases.to_ascii().c_str());
  if (exchange.phases.size() > show)
    std::printf("  ... %zu more phases\n", exchange.phases.size() - show);

  // Scaling curve around the requested point: one async submission per
  // cluster size — the Engine's worker pool plans them concurrently, and
  // get() collects in display order.
  std::printf("\nscaling (7.2M-sample epoch, planned concurrently):\n");
  std::vector<int> cluster_sizes;
  std::vector<api::PlanFuture> futures;
  for (const int g : {gpus / 2, gpus, gpus * 2, gpus * 4}) {
    if (g < 2) continue;
    api::PlanRequest scaled = request;
    scaled.distributed->num_gpus = g;
    scaled.distributed->iterations = 2;
    cluster_sizes.push_back(g);
    futures.push_back(session.plan_async(scaled));
  }
  Table scaling({"GPUs", "iteration [s]", "epoch [h]"});
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const auto planned = futures[i].get();
    if (!planned) {
      std::printf("  %d GPUs: %s\n", cluster_sizes[i],
                  planned.error().describe().c_str());
      continue;
    }
    const int g = cluster_sizes[i];
    scaling.begin_row();
    scaling.add_cell(static_cast<std::int64_t>(g));
    scaling.add_cell(planned->iteration_time, 3);
    scaling.add_cell(7.2e6 / (static_cast<double>(g) * local_batch) *
                         planned->iteration_time / 3600.0,
                     2);
  }
  std::printf("%s", scaling.to_ascii().c_str());
  return 0;
}
