// NVMe offload walkthrough: training a model whose swap working set does
// not fit in host DRAM, by letting the planner spill the overflow to a
// third storage tier — all through the karma::api::Session facade.
//
//   1. describe the platform as a storage hierarchy (HBM -> DRAM -> NVMe);
//   2. ask the memory model what the offload tiers must absorb;
//   3. plan via Session: the router fills DRAM with the blocks needed
//      soonest and sends the early blocks (most prefetch slack) to NVMe;
//   4. replay the plan on the engine and read per-tier peaks;
//   5. bind_executor() derives the real-value OocExecutor blocks + tier
//      policies from the plan — the planner->executor bridge, no hand
//      assembly.
#include <cstdio>

#include "src/api/engine.h"
#include "src/graph/memory_model.h"
#include "src/graph/model_zoo.h"
#include "src/sim/trace_check.h"
#include "src/train/synthetic.h"

int main() {
  using namespace karma;

  // ---- 1. Platform: V100 with a deliberately tiny 4 GiB host share ----
  // (model a node whose DRAM is mostly claimed by other ranks' weights).
  sim::DeviceSpec device = sim::v100_abci_nvme();
  device.host_capacity = 4_GiB;
  const tier::StorageHierarchy hierarchy = sim::hierarchy_of(device);
  std::printf("hierarchy: %s\n", hierarchy.describe().c_str());

  // ---- 2. Workload: ResNet-50 at batch 1024 ----
  const graph::Model model = graph::make_resnet50(1024);
  const Bytes footprint = graph::in_core_footprint(model);
  // Activation budget = device capacity minus the resident weights +
  // weight grads, matching build_training_plan's accounting.
  const auto all = graph::range_memory(
      model, 0, static_cast<int>(model.num_layers()));
  const auto demand = graph::offload_footprint(
      model, device.memory_capacity - all.weights - all.weight_grads);
  std::printf("in-core footprint: %s (device holds %s)\n",
              format_bytes(footprint).c_str(),
              format_bytes(device.memory_capacity).c_str());
  std::printf("offload demand:    %s of activations, vs %s of host DRAM\n",
              format_bytes(demand.offloaded_activations).c_str(),
              format_bytes(device.host_capacity).c_str());

  // ---- 3. Plan with tier-aware placement, one facade call ----
  api::PlanRequest request;
  request.model = model;
  request.device = device;
  request.planner.enable_recompute = false;  // keep it about placement
  request.planner.anneal_iterations = 60;
  const auto planned = api::Engine::create()->session().plan(request);
  if (!planned) {
    std::printf("infeasible:\n%s\n", planned.error().describe().c_str());
    return 1;
  }
  const api::Plan& plan = *planned;

  int host_blocks = 0, nvme_blocks = 0, resident_blocks = 0;
  for (const auto p : plan.policies) {
    if (p == core::BlockPolicy::kSwap) ++host_blocks;
    if (p == core::BlockPolicy::kSwapNvme) ++nvme_blocks;
    if (p == core::BlockPolicy::kResident) ++resident_blocks;
  }
  std::printf(
      "\nplacement: %zu blocks -> %d resident / %d swap(host) / %d "
      "swap(nvme)\n",
      plan.blocks().size(), resident_blocks, host_blocks, nvme_blocks);
  std::printf("schedule (NVMe swaps primed): %s...\n",
              plan.schedule.schedule_string().substr(0, 160).c_str());

  // ---- 4. Replay: per-tier peaks and the iteration price ----
  const auto violations =
      sim::check_trace_invariants(plan.schedule, plan.trace);
  std::printf("\ntrace_check: %s\n",
              violations.empty() ? "clean" : violations[0].c_str());
  std::printf("iteration: %s (%.1f samples/s)\n",
              format_seconds(plan.iteration_time).c_str(),
              1024.0 / plan.iteration_time);
  std::printf("peaks: device %s, host %s, nvme %s\n",
              format_bytes(plan.trace.peak_resident).c_str(),
              format_bytes(plan.trace.peak_host_resident).c_str(),
              format_bytes(plan.trace.peak_nvme_resident).c_str());

  // ---- 5. The same protocol on real values (toy-sized), bound from the
  // plan itself: bind_executor projects the blocking + tier policies onto
  // the Sequential, so the real-value run exercises exactly the routing
  // planned above — the planner->executor path end to end.
  Rng rng(42);
  train::Sequential net = train::make_mlp({20, 64, 64, 64, 5}, rng);
  train::OocExecutor exec = plan.bind_executor(&net, Bytes{1} << 30,
                                               /*host_capacity=*/Bytes{1}
                                                   << 20);
  const train::SyntheticBatch data =
      train::make_synthetic_batch(16, {20}, 5, rng);
  const train::StepStats stats =
      exec.compute_gradients(data.inputs, data.labels);
  std::printf(
      "\nreal-value step: loss %.4f; host out/in %lld/%lld B, nvme out/in "
      "%lld/%lld B\n",
      static_cast<double>(stats.loss),
      static_cast<long long>(stats.swapped_out_bytes),
      static_cast<long long>(stats.swapped_in_bytes),
      static_cast<long long>(stats.nvme_out_bytes),
      static_cast<long long>(stats.nvme_in_bytes));
  return violations.empty() ? 0 : 1;
}
