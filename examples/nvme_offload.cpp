// NVMe offload walkthrough: training a model whose swap working set does
// not fit in host DRAM, by letting the planner spill the overflow to a
// third storage tier.
//
//   1. describe the platform as a storage hierarchy (HBM -> DRAM -> NVMe);
//   2. ask the memory model what the offload tiers must absorb;
//   3. plan: the router fills DRAM with the blocks needed soonest and
//      sends the early blocks (most prefetch slack) to NVMe;
//   4. replay the plan on the engine and read per-tier peaks;
//   5. run the same tiered protocol on real values with OocExecutor.
#include <cstdio>

#include "src/core/planner.h"
#include "src/graph/memory_model.h"
#include "src/graph/model_zoo.h"
#include "src/sim/trace_check.h"
#include "src/train/ooc_exec.h"
#include "src/train/synthetic.h"

int main() {
  using namespace karma;

  // ---- 1. Platform: V100 with a deliberately tiny 4 GiB host share ----
  // (model a node whose DRAM is mostly claimed by other ranks' weights).
  sim::DeviceSpec device = sim::v100_abci_nvme();
  device.host_capacity = 4_GiB;
  const tier::StorageHierarchy hierarchy = sim::hierarchy_of(device);
  std::printf("hierarchy: %s\n", hierarchy.describe().c_str());

  // ---- 2. Workload: ResNet-50 at batch 1024 ----
  const graph::Model model = graph::make_resnet50(1024);
  const Bytes footprint = graph::in_core_footprint(model);
  // Activation budget = device capacity minus the resident weights +
  // weight grads, matching build_training_plan's accounting.
  const auto all = graph::range_memory(
      model, 0, static_cast<int>(model.num_layers()));
  const auto demand = graph::offload_footprint(
      model, device.memory_capacity - all.weights - all.weight_grads);
  std::printf("in-core footprint: %s (device holds %s)\n",
              format_bytes(footprint).c_str(),
              format_bytes(device.memory_capacity).c_str());
  std::printf("offload demand:    %s of activations, vs %s of host DRAM\n",
              format_bytes(demand.offloaded_activations).c_str(),
              format_bytes(device.host_capacity).c_str());

  // ---- 3. Plan with tier-aware placement ----
  core::PlannerOptions options;
  options.enable_recompute = false;  // keep the walkthrough about placement
  options.anneal_iterations = 60;
  const core::KarmaPlanner planner(model, device, options);
  const core::PlanResult result = planner.plan();

  int host_blocks = 0, nvme_blocks = 0, resident_blocks = 0;
  for (const auto p : result.policies) {
    if (p == core::BlockPolicy::kSwap) ++host_blocks;
    if (p == core::BlockPolicy::kSwapNvme) ++nvme_blocks;
    if (p == core::BlockPolicy::kResident) ++resident_blocks;
  }
  std::printf(
      "\nplacement: %zu blocks -> %d resident / %d swap(host) / %d "
      "swap(nvme)\n",
      result.blocks.size(), resident_blocks, host_blocks, nvme_blocks);
  std::printf("schedule (NVMe swaps primed): %s...\n",
              result.plan.schedule_string().substr(0, 160).c_str());

  // ---- 4. Replay: per-tier peaks and the iteration price ----
  const auto violations =
      sim::check_trace_invariants(result.plan, result.trace);
  std::printf("\ntrace_check: %s\n",
              violations.empty() ? "clean" : violations[0].c_str());
  std::printf("iteration: %s (%.1f samples/s)\n",
              format_seconds(result.iteration_time).c_str(),
              1024.0 / result.iteration_time);
  std::printf("peaks: device %s, host %s, nvme %s\n",
              format_bytes(result.trace.peak_resident).c_str(),
              format_bytes(result.trace.peak_host_resident).c_str(),
              format_bytes(result.trace.peak_nvme_resident).c_str());

  // ---- 5. The same protocol on real values (toy-sized) ----
  Rng rng(42);
  train::Sequential net = train::make_mlp({20, 64, 64, 64, 5}, rng);
  auto blocks =
      train::uniform_ooc_blocks(net.size(), 2, core::BlockPolicy::kSwap);
  // Early half to NVMe, exactly like the planner's routing above.
  for (std::size_t b = 0; b < blocks.size() / 2; ++b)
    blocks[b].policy = core::BlockPolicy::kSwapNvme;
  train::OocExecutor exec(&net, std::move(blocks), Bytes{1} << 30,
                          /*host_capacity=*/Bytes{1} << 20);
  const train::SyntheticBatch data =
      train::make_synthetic_batch(16, {20}, 5, rng);
  const train::StepStats stats =
      exec.compute_gradients(data.inputs, data.labels);
  std::printf(
      "\nreal-value step: loss %.4f; host out/in %lld/%lld B, nvme out/in "
      "%lld/%lld B\n",
      static_cast<double>(stats.loss),
      static_cast<long long>(stats.swapped_out_bytes),
      static_cast<long long>(stats.swapped_in_bytes),
      static_cast<long long>(stats.nvme_out_bytes),
      static_cast<long long>(stats.nvme_in_bytes));
  return violations.empty() ? 0 : 1;
}
