// Out-of-core training on the numeric twin: train a real (small) network
// through a device pool deliberately too small for in-core execution, and
// verify at the end that the result is bit-identical to unconstrained
// training — the executable form of the paper's accuracy claim
// (Sec. IV-D).
//
// The OOC configuration is not hand-assembled: an analytic twin of the
// MLP goes through karma::api::Session on a scaled-down device, and
// Plan::bind_executor() projects the planner's blocking + policies onto
// the real Sequential — the same facade path production callers use.
//
//   $ ./train_ooc
#include <cstdio>

#include "src/api/engine.h"
#include "src/graph/memory_model.h"
#include "src/train/data_parallel.h"
#include "src/train/synthetic.h"

namespace {

/// Analytic twin of train::make_mlp(widths): FullyConnected + ReLU layers
/// with the same topology, so the planner reasons about the same network
/// the executor runs.
karma::graph::Model make_mlp_twin(const std::vector<std::int64_t>& widths,
                                  std::int64_t batch) {
  using namespace karma::graph;
  Model model("MLP-twin");
  for (std::size_t i = 0; i + 1 < widths.size(); ++i) {
    Layer fc;
    fc.name = "fc" + std::to_string(i);
    fc.kind = LayerKind::kFullyConnected;
    fc.in_shape = TensorShape({batch, widths[i]});
    fc.out_shape = TensorShape({batch, widths[i + 1]});
    fc.weight_elems = widths[i] * widths[i + 1] + widths[i + 1];
    model.add_layer(std::move(fc));
    if (i + 2 < widths.size()) {
      Layer relu;
      relu.name = "relu" + std::to_string(i);
      relu.kind = LayerKind::kReLU;
      relu.in_shape = relu.out_shape = TensorShape({batch, widths[i + 1]});
      model.add_layer(std::move(relu));
    }
  }
  return model;
}

}  // namespace

int main() {
  using namespace karma;
  using namespace karma::train;

  constexpr std::uint64_t kSeed = 42;
  // Single source of truth: the real net and its analytic twin are both
  // built from this list, so they cannot silently diverge.
  const std::vector<std::int64_t> widths = {32, 64, 64, 64, 8};
  const auto factory = [&](Rng& rng) {
    return make_mlp(std::vector<std::size_t>(widths.begin(), widths.end()),
                    rng);
  };

  // Measure the in-core activation peak, then give the OOC run half.
  Rng data_rng(7);
  const SyntheticBatch data = make_synthetic_batch(32, {32}, 8, data_rng);
  Bytes incore_peak = 0;
  {
    Rng rng(kSeed);
    Sequential probe = factory(rng);
    OocExecutor probe_exec(
        &probe,
        uniform_ooc_blocks(probe.size(), probe.size(),
                           core::BlockPolicy::kResident),
        Bytes{1} << 30);
    probe_exec.compute_gradients(data.inputs, data.labels);
    incore_peak = probe_exec.pool().peak_used();
  }
  std::printf("in-core activation peak: %lld B\n",
              static_cast<long long>(incore_peak));

  // Reference: unconstrained training.
  Rng ref_rng(kSeed);
  Sequential reference = factory(ref_rng);
  SGD ref_opt(0.05f, 0.9f);
  SoftmaxCrossEntropy ref_loss;

  // KARMA-style OOC run: plan the twin on a device scaled so the model
  // does NOT fit (mirroring the halved pool), then bind the executor.
  api::PlanRequest request;
  request.model = make_mlp_twin(widths, 32);
  request.device = sim::test_device();
  // Scale the simulated HBM down until blocking is forced: weights stay
  // resident, but only ~half the activations fit — same regime the real
  // pool enforces below.
  {
    const auto all = graph::range_memory(
        request.model, 0, static_cast<int>(request.model.num_layers()));
    request.device.memory_capacity =
        all.weights + all.weight_grads +
        (all.activations + all.activation_grads) / 2;
  }
  request.optimizer.kind = api::OptimizerSpec::Kind::kSgdMomentum;
  request.planner.enable_recompute = true;
  request.planner.min_blocks = 2;

  const api::Plan plan = api::Engine::create()->session().plan_or_throw(request);
  std::printf("\nfacade plan: %zu blocks on '%s' (policies:",
              plan.blocks().size(), request.device.name.c_str());
  for (const auto p : plan.policies)
    std::printf(" %s", core::block_policy_name(p));
  std::printf(")\n");

  // Measure what the plan-derived protocol actually needs (the numeric
  // twin's byte accounting differs from the analytic model's), then run
  // the real training inside exactly that budget — which must undercut
  // the in-core peak, or the plan saved nothing.
  Bytes pool = 0;
  {
    Rng probe_rng(kSeed);
    Sequential probe = factory(probe_rng);
    OocExecutor probe_exec = plan.bind_executor(&probe, Bytes{1} << 30);
    probe_exec.compute_gradients(data.inputs, data.labels);
    pool = probe_exec.pool().peak_used();
  }
  std::printf("plan-derived OOC pool: %lld B (%.0f%% of in-core)\n",
              static_cast<long long>(pool),
              100.0 * static_cast<double>(pool) /
                  static_cast<double>(incore_peak));
  if (pool >= incore_peak) {
    std::printf("plan saved no memory — policies degenerate\n");
    return 1;
  }

  Rng ooc_rng(kSeed);
  Sequential ooc_net = factory(ooc_rng);
  OocExecutor executor = plan.bind_executor(&ooc_net, pool);
  SGD ooc_opt(0.05f, 0.9f);

  std::printf("\nstep   loss(in-core)  loss(OOC)   swapped     recomputed\n");
  for (int step = 0; step < 20; ++step) {
    reference.zero_grads();
    const float rl =
        ref_loss.forward(reference.forward(data.inputs), data.labels);
    reference.backward(ref_loss.grad_logits());
    ref_opt.step(reference.all_params(), reference.all_grads());

    // The OOC step also exercises the CPU-side update path (stage 5).
    const StepStats stats =
        executor.train_step(data.inputs, data.labels, ooc_opt,
                            /*cpu_update=*/true);
    if (step % 4 == 0 || step == 19)
      std::printf("%4d   %12.5f  %9.5f   %7lld B  %5lld layers\n", step, rl,
                  stats.loss, static_cast<long long>(stats.swapped_out_bytes),
                  static_cast<long long>(stats.recomputed_layers));
  }

  // The punchline: identical weights, bit for bit.
  const auto ref_params = reference.all_params();
  const auto ooc_params = ooc_net.all_params();
  bool identical = ref_params.size() == ooc_params.size();
  for (std::size_t i = 0; identical && i < ref_params.size(); ++i)
    identical = bitwise_equal(*ref_params[i], *ooc_params[i]);
  std::printf("\nweights bitwise identical to in-core training: %s\n",
              identical ? "YES" : "NO");
  std::printf("OOC peak pool usage: %lld B (pool %lld B)\n",
              static_cast<long long>(executor.pool().peak_used()),
              static_cast<long long>(pool));
  return identical ? 0 : 1;
}
