// Out-of-core training on the numeric twin: train a real (small) network
// through a device pool deliberately too small for in-core execution, and
// verify at the end that the result is bit-identical to unconstrained
// training — the executable form of the paper's accuracy claim
// (Sec. IV-D).
//
//   $ ./train_ooc
#include <cstdio>

#include "src/train/data_parallel.h"
#include "src/train/synthetic.h"

int main() {
  using namespace karma;
  using namespace karma::train;

  constexpr std::uint64_t kSeed = 42;
  const auto factory = [](Rng& rng) {
    return make_mlp({32, 64, 64, 64, 8}, rng);
  };

  // Measure the in-core activation peak, then give the OOC run half.
  Rng data_rng(7);
  const SyntheticBatch data = make_synthetic_batch(32, {32}, 8, data_rng);
  Bytes incore_peak = 0;
  {
    Rng rng(kSeed);
    Sequential probe = factory(rng);
    OocExecutor probe_exec(
        &probe,
        uniform_ooc_blocks(probe.size(), probe.size(),
                           core::BlockPolicy::kResident),
        Bytes{1} << 30);
    probe_exec.compute_gradients(data.inputs, data.labels);
    incore_peak = probe_exec.pool().peak_used();
  }
  const Bytes pool = incore_peak / 2;
  std::printf("in-core activation peak: %lld B; OOC pool: %lld B\n",
              static_cast<long long>(incore_peak),
              static_cast<long long>(pool));

  // Reference: unconstrained training.
  Rng ref_rng(kSeed);
  Sequential reference = factory(ref_rng);
  SGD ref_opt(0.05f, 0.9f);
  SoftmaxCrossEntropy ref_loss;

  // KARMA-style: swap early blocks, recompute the middle, keep the tail.
  Rng ooc_rng(kSeed);
  Sequential ooc_net = factory(ooc_rng);
  auto blocks = uniform_ooc_blocks(ooc_net.size(), 2,
                                   core::BlockPolicy::kSwap);
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    if (b + 1 == blocks.size()) blocks[b].policy = core::BlockPolicy::kResident;
    else if (b % 2 == 1) blocks[b].policy = core::BlockPolicy::kRecompute;
  }
  OocExecutor executor(&ooc_net, blocks, pool);
  SGD ooc_opt(0.05f, 0.9f);

  std::printf("\nstep   loss(in-core)  loss(OOC)   swapped     recomputed\n");
  for (int step = 0; step < 20; ++step) {
    reference.zero_grads();
    const float rl =
        ref_loss.forward(reference.forward(data.inputs), data.labels);
    reference.backward(ref_loss.grad_logits());
    ref_opt.step(reference.all_params(), reference.all_grads());

    // The OOC step also exercises the CPU-side update path (stage 5).
    const StepStats stats =
        executor.train_step(data.inputs, data.labels, ooc_opt,
                            /*cpu_update=*/true);
    if (step % 4 == 0 || step == 19)
      std::printf("%4d   %12.5f  %9.5f   %7lld B  %5lld layers\n", step, rl,
                  stats.loss, static_cast<long long>(stats.swapped_out_bytes),
                  static_cast<long long>(stats.recomputed_layers));
  }

  // The punchline: identical weights, bit for bit.
  const auto ref_params = reference.all_params();
  const auto ooc_params = ooc_net.all_params();
  bool identical = ref_params.size() == ooc_params.size();
  for (std::size_t i = 0; identical && i < ref_params.size(); ++i)
    identical = bitwise_equal(*ref_params[i], *ooc_params[i]);
  std::printf("\nweights bitwise identical to in-core training: %s\n",
              identical ? "YES" : "NO");
  std::printf("OOC peak pool usage: %lld B (pool %lld B)\n",
              static_cast<long long>(executor.pool().peak_used()),
              static_cast<long long>(pool));
  return identical ? 0 : 1;
}
