// Fig. 7: the best blocking KARMA finds for ResNet-50/ImageNet
// (batch 512) on a V100 16 GiB, plus the stall-reduction comparison the
// paper attaches to it (43% less stalling than SuperNeurons, 37% less
// than vDNN++).
#include "bench/bench_common.h"
#include "src/baselines/strategies.h"
#include "src/graph/memory_model.h"

namespace karma::bench {
namespace {

int run() {
  const sim::DeviceSpec device = sim::v100_abci();
  const graph::Model model = graph::make_resnet50(512);

  print_section("Fig. 7 — best blocking for ResNet-50, batch 512");
  const auto karma = baselines::plan_karma_recompute(model, device);
  if (!karma) {
    std::printf("infeasible\n");
    return 1;
  }

  Table table({"block", "layers", "span", "policy", "fwd [ms]", "acts"});
  for (std::size_t b = 0; b < karma->blocks.size(); ++b) {
    const sim::Block& blk = karma->blocks[b];
    const sim::BlockCost& cost = karma->plan.costs[b];
    table.begin_row();
    table.add_cell(static_cast<std::int64_t>(b + 1));
    table.add_cell(std::to_string(blk.first_layer) + ".." +
                   std::to_string(blk.last_layer - 1));
    table.add_cell(model.layer(blk.first_layer).name + " .. " +
                   model.layer(blk.last_layer - 1).name);
    table.add_cell(core::block_policy_name(karma->policies[b]));
    table.add_cell(cost.fwd_time * 1e3, 2);
    table.add_cell(format_bytes(cost.act_bytes));
  }
  std::printf("%s", table.to_ascii().c_str());
  std::printf("\nschedule: %s\n",
              karma->plan.schedule_string().substr(0, 400).c_str());
  std::printf("iteration %.3f s, occupancy %.3f, peak %s\n",
              karma->iteration_time, karma->occupancy,
              format_bytes(karma->trace.peak_resident).c_str());

  print_section("Stall reduction vs baselines (paper: 43% / 37%)");
  const auto sn = baselines::plan_superneurons(model, device);
  const auto vdnn = baselines::plan_vdnnpp(model, device);
  const Seconds karma_stall = karma->trace.compute_stall();
  Table cmp({"strategy", "compute stall [s]", "KARMA reduction"});
  const auto add = [&](const char* name, const auto& r) {
    if (!r) return;
    const Seconds stall = r->trace.compute_stall();
    cmp.begin_row();
    cmp.add_cell(name);
    cmp.add_cell(stall, 3);
    cmp.add_cell(
        stall > 0 ? format_double(100.0 * (1.0 - karma_stall / stall), 0) + "%"
                  : std::string("-"));
  };
  cmp.begin_row();
  cmp.add_cell("KARMA (w/ recomp)");
  cmp.add_cell(karma_stall, 3);
  cmp.add_cell("-");
  add("SuperNeurons", sn);
  add("vDNN++", vdnn);
  std::printf("%s", cmp.to_ascii().c_str());
  return 0;
}

}  // namespace
}  // namespace karma::bench

int main() { return karma::bench::run(); }
