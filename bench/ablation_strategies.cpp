// Ablations over KARMA's design choices (DESIGN.md §4 "Ablations"):
//  A. capacity-based tail residency vs eager swap-everything (Fig. 2a/2b)
//  B. recompute interleave on/off (Fig. 2c / Opt. Problem 2)
//  C. prefetch window depth (liveness-bounded greediness)
//  D. gradient-exchange mode: bulk vs per-block vs MG-WFBP merged
//  E. weight-update site: CPU (stage 5) vs device (the trivial workaround
//     Sec. III-G rejects)
//  F. host-interconnect sensitivity: PCIe gen3 vs NVLink-class link
#include "bench/bench_common.h"
#include "src/api/engine.h"
#include "src/baselines/strategies.h"

namespace karma::bench {
namespace {

/// All ablation rows plan through the api::Session facade. The planner
/// knobs embedded in DistributedOptions are lifted onto the request (the
/// facade's single set of planner options supersedes the embedded copy).
Seconds dp_iteration_time(const graph::Model& model,
                          const sim::DeviceSpec& device,
                          const core::DistributedOptions& options) {
  api::PlanRequest request;
  request.model = model;
  request.device = device;
  request.planner = options.planner;
  request.distributed = options;
  return api::Engine::create()->session().plan_or_throw(request).iteration_time;
}

void ablation_capacity_vs_eager() {
  print_section("A. capacity-based vs eager swapping (ResNet-200)");
  const sim::DeviceSpec device = sim::v100_abci();
  Table table({"batch", "eager (vDNN-style) [s]", "capacity (KARMA) [s]",
               "speedup"});
  for (const std::int64_t batch : {8, 12, 16, 24}) {
    const graph::Model model = graph::make_resnet200(batch);
    const auto eager = baselines::plan_vdnnpp(model, device);
    const auto capacity = baselines::plan_karma(model, device);
    if (!eager || !capacity) continue;
    table.begin_row();
    table.add_cell(batch);
    table.add_cell(eager->iteration_time, 3);
    table.add_cell(capacity->iteration_time, 3);
    table.add_cell(
        format_double(eager->iteration_time / capacity->iteration_time, 2) +
        "x");
  }
  std::printf("%s", table.to_ascii().c_str());
}

void ablation_recompute() {
  print_section("B. recompute interleave on/off");
  const sim::DeviceSpec device = sim::v100_abci();
  Table table({"model", "batch", "KARMA [s]", "KARMA+recompute [s]",
               "speedup"});
  const struct {
    const char* name;
    graph::Model (*make)(std::int64_t);
    std::int64_t batch;
  } cases[] = {{"ResNet-50", &graph::make_resnet50, 512},
               {"VGG16", &graph::make_vgg16, 96},
               {"ResNet-200", &graph::make_resnet200, 12},
               {"U-Net", &graph::make_unet, 24}};
  for (const auto& c : cases) {
    const graph::Model model = c.make(c.batch);
    const auto plain = baselines::plan_karma(model, device);
    const auto recomp = baselines::plan_karma_recompute(model, device);
    if (!plain || !recomp) continue;
    table.begin_row();
    table.add_cell(c.name);
    table.add_cell(c.batch);
    table.add_cell(plain->iteration_time, 3);
    table.add_cell(recomp->iteration_time, 3);
    table.add_cell(
        format_double(plain->iteration_time / recomp->iteration_time, 2) +
        "x");
  }
  std::printf("%s", table.to_ascii().c_str());
}

void ablation_prefetch_window() {
  print_section("C. prefetch window depth (ResNet-200, batch 16, all-swap)");
  const sim::DeviceSpec device = sim::v100_abci();
  const graph::Model model = graph::make_resnet200(16);
  Table table({"window", "iteration [s]", "occupancy"});
  for (const int window : {1, 2, 3, 4, 6, 8}) {
    api::PlanRequest request;
    request.model = model;
    request.device = device;
    request.planner.enable_recompute = false;
    request.planner.anneal_iterations = 0;
    request.planner.schedule.prefetch_window = window;
    request.probe_feasible_batch = false;
    const auto result = api::Engine::create()->session().plan(request);
    table.begin_row();
    table.add_cell(static_cast<std::int64_t>(window));
    if (result) {
      table.add_cell(result->iteration_time, 3);
      table.add_cell(result->occupancy, 3);
    } else {
      table.add_cell("infeasible");
      table.add_cell("-");
    }
  }
  std::printf("%s", table.to_ascii().c_str());
}

void ablation_exchange_modes() {
  print_section("D. gradient exchange: bulk vs per-block vs merged");
  const sim::DeviceSpec device = sim::v100_abci();
  Table table({"workload", "GPUs", "bulk [s]", "per-block [s]",
               "merged (MG-WFBP) [s]"});
  const struct {
    const char* name;
    graph::Model model;
    int gpus;
  } cases[] = {
      {"ResNet-50 b=128", graph::make_resnet50(128), 64},
      {"ResNet-50 b=128", graph::make_resnet50(128), 512},
      {"Megatron 0.7B b=8",
       graph::make_transformer(graph::megatron_config(0), 8), 64},
  };
  for (const auto& c : cases) {
    core::DistributedOptions options;
    options.num_gpus = c.gpus;
    options.iterations = 2;
    options.planner.anneal_iterations = 0;
    double t[3] = {};
    int i = 0;
    for (const auto mode : {core::ExchangeMode::kBulk,
                            core::ExchangeMode::kPerBlock,
                            core::ExchangeMode::kMerged}) {
      options.exchange = mode;
      t[i++] = dp_iteration_time(c.model, device, options);
    }
    table.begin_row();
    table.add_cell(c.name);
    table.add_cell(static_cast<std::int64_t>(c.gpus));
    table.add_cell(t[0], 3);
    table.add_cell(t[1], 3);
    table.add_cell(t[2], 3);
  }
  std::printf("%s", table.to_ascii().c_str());
}

void ablation_update_site() {
  print_section("E. weight-update site: CPU (KARMA) vs device");
  const sim::DeviceSpec device = sim::v100_abci();
  Table table({"workload", "CPU update [s]", "device update [s]",
               "CPU advantage"});
  const struct {
    const char* name;
    graph::Model model;
    int gpus;
  } cases[] = {
      {"ResNet-50 b=256 (weights resident)", graph::make_resnet50(256), 16},
      {"Megatron 0.7B b=8 (weights swapped)",
       graph::make_transformer(graph::megatron_config(0), 8), 32},
  };
  for (const auto& c : cases) {
    core::DistributedOptions options;
    options.num_gpus = c.gpus;
    options.iterations = 2;
    options.planner.anneal_iterations = 0;
    options.update = core::UpdateSite::kCpu;
    const double cpu = dp_iteration_time(c.model, device, options);
    options.update = core::UpdateSite::kDevice;
    const double gpu = dp_iteration_time(c.model, device, options);
    table.begin_row();
    table.add_cell(c.name);
    table.add_cell(cpu, 3);
    table.add_cell(gpu, 3);
    table.add_cell(format_double(gpu / cpu, 2) + "x");
  }
  std::printf("%s", table.to_ascii().c_str());
}

void ablation_interconnect() {
  print_section("F. host interconnect sensitivity (ResNet-200, batch 16)");
  const graph::Model model = graph::make_resnet200(16);
  Table table({"link", "KARMA [s]", "KARMA+recompute [s]"});
  for (const auto& device : {sim::v100_abci(), sim::v100_nvlink_host()}) {
    const auto plain = baselines::plan_karma(model, device);
    const auto recomp = baselines::plan_karma_recompute(model, device);
    table.begin_row();
    table.add_cell(device.name);
    table.add_cell(plain ? format_double(plain->iteration_time, 3) : "-");
    table.add_cell(recomp ? format_double(recomp->iteration_time, 3) : "-");
  }
  std::printf("%s", table.to_ascii().c_str());
  std::printf(
      "\nExpected: a faster host link shrinks the gap between pure\n"
      "swapping and the recompute interleave (recompute pays off exactly\n"
      "when the interconnect is the bottleneck, Sec. III-F).\n");
}

int run() {
  ablation_capacity_vs_eager();
  ablation_recompute();
  ablation_prefetch_window();
  ablation_exchange_modes();
  ablation_update_site();
  ablation_interconnect();
  return 0;
}

}  // namespace
}  // namespace karma::bench

int main() { return karma::bench::run(); }
