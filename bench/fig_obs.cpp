// Observability overhead (DESIGN.md §15): the hot-path cost contract of
// karma::obs, priced and gated.
//
//   $ ./bench_fig_obs [iters]
//
// Gates (CI reads BENCH_obs.json):
//   counter   — Counter::inc() amortized cost <= 50 ns/op (one release
//               fetch_add; the instrument pointer is resolved once).
//   tracing   — with tracing DISABLED (the default everywhere outside
//               --trace-dir), the spans compiled into the warm-hit path
//               cost <= 2% of the warm-hit p50 itself. A disabled Span is
//               one relaxed atomic load; the gate prices the whole
//               per-hit population of them against the real hit latency.
//
// Also printed (not gated): Histogram::observe cost, enabled-Span cost,
// and the warm-hit p50 itself, so a regression in any layer is visible in
// the artifact history even before a gate trips.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/api/engine.h"
#include "src/graph/model_zoo.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/sim/device.h"
#include "src/util/json.h"

namespace {

double now_ns() {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

karma::api::PlanRequest resnet_request() {
  karma::api::PlanRequest request;
  request.model = karma::graph::make_resnet50(512);
  request.device = karma::sim::v100_abci();
  request.planner.enable_recompute = true;
  request.planner.anneal_iterations = 20;
  request.probe_feasible_batch = false;
  return request;
}

}  // namespace

int main(int argc, char** argv) {
  const long iters = argc > 1 ? std::atol(argv[1]) : 10'000'000L;
  bool pass = true;

  karma::bench::print_section("obs hot-path costs");

  // ---- Counter::inc(): the per-request instrument cost ----
  karma::obs::Registry registry;
  karma::obs::Counter* counter = registry.counter("bench.counter");
  double t0 = now_ns();
  for (long i = 0; i < iters; ++i) counter->inc();
  const double counter_ns = (now_ns() - t0) / static_cast<double>(iters);
  std::printf("Counter::inc           %8.2f ns/op  (%ld ops)\n", counter_ns,
              iters);
  const bool counter_ok = counter_ns <= 50.0;
  pass = pass && counter_ok;

  // ---- Histogram::observe (informational) ----
  karma::obs::Histogram* hist = registry.histogram("bench.hist");
  const long hist_iters = std::max(1L, iters / 10);
  t0 = now_ns();
  for (long i = 0; i < hist_iters; ++i) hist->observe(1e-4);
  const double observe_ns = (now_ns() - t0) / static_cast<double>(hist_iters);
  std::printf("Histogram::observe     %8.2f ns/op  (%ld ops)\n", observe_ns,
              hist_iters);

  // ---- Span cost, tracing disabled (the default) and enabled ----
  karma::obs::set_tracing_enabled(false);
  t0 = now_ns();
  for (long i = 0; i < iters; ++i) {
    karma::obs::Span span("bench.disabled", "bench");
  }
  const double span_off_ns = (now_ns() - t0) / static_cast<double>(iters);
  std::printf("Span (tracing off)     %8.2f ns/op  (%ld ops)\n", span_off_ns,
              iters);

  karma::obs::set_tracing_enabled(true);
  const long span_iters = std::max(1L, iters / 100);
  t0 = now_ns();
  for (long i = 0; i < span_iters; ++i) {
    karma::obs::Span span("bench.enabled", "bench");
  }
  const double span_on_ns = (now_ns() - t0) / static_cast<double>(span_iters);
  karma::obs::set_tracing_enabled(false);
  karma::obs::discard_trace();
  std::printf("Span (tracing on)      %8.2f ns/op  (%ld ops, ring incl. "
              "drops)\n",
              span_on_ns, span_iters);

  // ---- Warm-hit path: real latency, and the share the disabled spans
  // could possibly claim of it ----
  karma::bench::print_section("warm-hit path overhead");
  auto engine = karma::api::Engine::create();
  const karma::api::PlanRequest request = resnet_request();
  const auto cold = engine->plan(request);
  if (!cold.has_value()) {
    std::printf("FAIL: cold plan failed: %s\n",
                cold.error().describe().c_str());
    return 1;
  }
  constexpr int kHits = 2000;
  std::vector<double> hit_ns;
  hit_ns.reserve(kHits);
  for (int i = 0; i < kHits; ++i) {
    const double h0 = now_ns();
    auto hit = engine->try_cached(request);
    const double h1 = now_ns();
    if (!hit || !hit->has_value()) {
      std::printf("FAIL: warm probe missed\n");
      return 1;
    }
    hit_ns.push_back(h1 - h0);
  }
  std::sort(hit_ns.begin(), hit_ns.end());
  const double hit_p50 = hit_ns[hit_ns.size() / 2];
  // Spans/instants compiled into one warm hit (engine.cache_lookup today;
  // headroom for a few more before the budget is even dented).
  constexpr double kSpansPerHit = 8.0;
  const double tracing_overhead_pct =
      100.0 * (kSpansPerHit * span_off_ns) / hit_p50;
  std::printf("warm-hit p50           %8.2f us\n", hit_p50 / 1000.0);
  std::printf("disabled-span share    %8.3f %%  (%.0f spans x %.2f ns)\n",
              tracing_overhead_pct, kSpansPerHit, span_off_ns);
  const bool tracing_ok = tracing_overhead_pct <= 2.0;
  pass = pass && tracing_ok;

  // ---- BENCH_obs.json (the CI artifact) ----
  {
    karma::util::json::Writer w;
    w.begin_object();
    w.key("counter_inc_ns"); w.value(counter_ns);
    w.key("counter_gate_ns"); w.value(50.0);
    w.key("counter_ok"); w.value(counter_ok);
    w.key("histogram_observe_ns"); w.value(observe_ns);
    w.key("span_disabled_ns"); w.value(span_off_ns);
    w.key("span_enabled_ns"); w.value(span_on_ns);
    w.key("warm_hit_p50_us"); w.value(hit_p50 / 1000.0);
    w.key("spans_per_hit"); w.value(kSpansPerHit);
    w.key("tracing_disabled_overhead_pct"); w.value(tracing_overhead_pct);
    w.key("tracing_gate_pct"); w.value(2.0);
    w.key("tracing_ok"); w.value(tracing_ok);
    w.key("pass"); w.value(pass);
    w.end_object();
    std::ofstream("BENCH_obs.json") << w.take() << "\n";
    std::printf("\nwrote BENCH_obs.json\n");
  }

  std::printf("gates: counter %.2f <= 50 ns [%s], tracing-off overhead "
              "%.3f%% <= 2%% [%s] -> %s\n",
              counter_ns, counter_ok ? "ok" : "FAIL", tracing_overhead_pct,
              tracing_ok ? "ok" : "FAIL", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
