// Fig. 6: normalized per-block time of the backward phase of ResNet-200
// (out-of-core batch 12 stacked against in-core batch 4), back-to-front,
// for SuperNeurons, vDNN++, KARMA, and KARMA w/ recompute. The paper's
// qualitative features to look for:
//  - vDNN++ shows an early large spike (the eagerly evicted tail) plus
//    spread-out stalls;
//  - SuperNeurons' stalls spread across layers (type-based policy);
//  - KARMA removes the early spike (capacity-based tail residency);
//  - KARMA w/ recompute is flat between the few unavoidable spikes.
#include <algorithm>
#include <cmath>

#include "bench/bench_common.h"
#include "src/baselines/strategies.h"

namespace karma::bench {
namespace {

/// Renders a per-block profile as an ASCII bar sparkline (log-ish scale).
std::string bars(const std::vector<Seconds>& profile, Seconds unit) {
  static const char* kGlyphs[] = {"_", ".", ":", "-", "=", "+", "*", "#", "%", "@"};
  std::string out;
  for (const Seconds v : profile) {
    const double r = unit > 0 ? v / unit : 0.0;
    const int idx = std::clamp(static_cast<int>(std::lround(r)), 0, 9);
    out += kGlyphs[idx];
  }
  return out;
}

int run() {
  const sim::DeviceSpec device = sim::v100_abci();
  const graph::Model ooc_model = graph::make_resnet200(12);
  const graph::Model incore_model = graph::make_resnet200(4);

  print_section("Fig. 6 — ResNet-200 backward-phase profile");
  std::printf(
      "in-core batch 4 vs out-of-core batch 12; per-block backward time\n"
      "normalized to the in-core mean; blocks ordered back-to-front.\n\n");

  struct Row {
    const char* name;
    std::optional<core::PlanResult> (*plan)(const graph::Model&,
                                            const sim::DeviceSpec&);
  };
  const Row rows[] = {{"SuperNeurons", &baselines::plan_superneurons},
                      {"vDNN++", &baselines::plan_vdnnpp},
                      {"KARMA", &baselines::plan_karma},
                      {"KARMA (w/ recomp)", &baselines::plan_karma_recompute}};

  Table summary({"strategy", "blocks", "bwd total [s]", "bwd stall [s]",
                 "peak/mean", "norm. max spike"});

  for (const Row& row : rows) {
    const auto result = row.plan(ooc_model, device);
    if (!result) {
      std::printf("%-18s infeasible\n", row.name);
      continue;
    }
    const int nb = result->plan.num_blocks();
    auto profile = result->trace.backward_profile(nb);
    std::reverse(profile.begin(), profile.end());  // back-to-front

    // In-core reference at the same blocking for normalization.
    double incore_mean = 0.0;
    {
      const core::KarmaPlanner planner(incore_model, device, {});
      std::vector<core::BlockPolicy> resident(
          result->blocks.size(), core::BlockPolicy::kResident);
      // Re-derive the same blocking on the in-core model (same layer
      // count, smaller batch).
      const auto ref = planner.evaluate(result->blocks, resident, "ref");
      if (ref) {
        auto p = ref->trace.backward_profile(nb);
        for (const Seconds v : p) incore_mean += v;
        incore_mean /= nb;
      }
    }
    double mean = 0.0, peak = 0.0;
    for (const Seconds v : profile) {
      mean += v;
      peak = std::max(peak, v);
    }
    const double total = mean;
    mean /= nb;

    std::printf("%-18s |%s|\n", row.name,
                bars(profile, incore_mean > 0 ? 3.0 * incore_mean : mean)
                    .c_str());
    summary.begin_row();
    summary.add_cell(row.name);
    summary.add_cell(static_cast<std::int64_t>(nb));
    summary.add_cell(total, 3);
    summary.add_cell(result->trace.backward_stall(), 3);
    summary.add_cell(peak / mean, 2);
    summary.add_cell(incore_mean > 0 ? peak / incore_mean : 0.0, 2);
  }
  std::printf("\n%s", summary.to_ascii().c_str());
  return 0;
}

}  // namespace
}  // namespace karma::bench

int main() { return karma::bench::run(); }
