// Fig. 5: single-GPU training throughput (samples/s) vs mini-batch size
// for six models on a V100-16GiB, comparing in-core, the out-of-core and
// recompute baselines, and KARMA with/without interleaved recompute.
// Also prints the Sec. IV-E aggregate: KARMA+recompute speedup over the
// best non-KARMA method per out-of-core cell (the paper reports 1.52x
// average on ABCI) and the degradation of OOC batch scaling vs in-core
// (the paper reports 2x-6x batches at 9%-37% degradation).
#include <cmath>
#include <map>

#include "bench/bench_common.h"
#include "src/baselines/strategies.h"
#include "src/graph/memory_model.h"
#include "src/util/stats.h"

namespace karma::bench {
namespace {

int run() {
  const sim::DeviceSpec device = sim::v100_abci();
  std::vector<double> karma_speedups;      // vs best other OOC method
  std::vector<double> degradation;         // per-sample slowdown vs in-core

  for (const ModelGrid& grid : fig5_grid()) {
    print_section(std::string("Fig. 5 — ") + grid.name +
                  " (samples/s, V100 16 GiB)");
    std::vector<std::string> header = {"strategy"};
    for (auto b : grid.batches) header.push_back("b=" + std::to_string(b));
    Table table(header);

    std::map<std::string, std::map<std::int64_t, double>> tput;
    for (const auto& entry : baselines::all_strategies()) {
      table.begin_row();
      table.add_cell(entry.name);
      for (const std::int64_t batch : grid.batches) {
        const graph::Model model = grid.make(batch);
        const auto result = entry.plan(model, device);
        if (!result) {
          table.add_cell("-");
          continue;
        }
        const double samples_per_s =
            static_cast<double>(batch) / result->iteration_time;
        tput[entry.name][batch] = samples_per_s;
        table.add_cell(samples_per_s, 1);
      }
    }
    std::printf("%s", table.to_ascii().c_str());

    // Aggregates for the Sec. IV-E summary rows.
    const double incore_ref = tput.count("in-core") && !tput["in-core"].empty()
                                  ? tput["in-core"].begin()->second
                                  : 0.0;
    for (const std::int64_t batch : grid.batches) {
      const auto& karma = tput["KARMA+recompute"];
      if (!karma.count(batch)) continue;
      if (tput["in-core"].count(batch)) continue;  // only OOC cells
      double best_other = 0.0;
      for (const char* name :
           {"vDNN++", "ooc_cuDNN", "SuperNeurons", "GradCheckpoint",
            "Checkmate"}) {
        if (tput[name].count(batch))
          best_other = std::max(best_other, tput[name][batch]);
      }
      if (best_other > 0.0)
        karma_speedups.push_back(karma.at(batch) / best_other);
      if (incore_ref > 0.0)
        degradation.push_back(1.0 - karma.at(batch) / incore_ref);
    }
  }

  print_section("Sec. IV-E summary");
  if (!karma_speedups.empty()) {
    std::printf(
        "KARMA+recompute speedup over best non-KARMA OOC method:\n"
        "  geomean %.2fx over %zu out-of-core cells (paper: 1.52x avg)\n",
        geometric_mean(karma_speedups), karma_speedups.size());
  }
  if (!degradation.empty()) {
    RunningStats s;
    for (double d : degradation) s.add(d);
    std::printf(
        "Throughput degradation vs in-core while scaling batch 2x-6x:\n"
        "  mean %.0f%%, min %.0f%%, max %.0f%% (paper: 9%%-37%%)\n",
        100.0 * s.mean(), 100.0 * s.min(), 100.0 * s.max());
  }
  return 0;
}

}  // namespace
}  // namespace karma::bench

int main() { return karma::bench::run(); }
