// Calibration loop benchmark (DESIGN.md §13) — the CI artifact behind
// BENCH_calib.json.
//
// Part A answers "does calibration actually fix the cost model?": a
// ground-truth device (the analytic V100 with perturbed swap/compute
// constants) generates a noisy execution profile; calib::fit recovers a
// table from it; the gate is that the calibrated model predicts the
// ground truth with lower mean relative error than the raw analytic one.
//
// Part B answers "is repair cheaper than re-planning?": the deep
// ResNet-50 anneal (batch 512, 2000 iterations) plans cold and caches;
// installing a perturbed-bandwidth table invalidates the entry (the old
// key must miss); the re-plan must warm-start from the stale artifact,
// finish in <= 0.5x the cold-search wall-clock at equal-or-better
// simulated cost under the new model, flip at least one block's
// swap/route decision, and land back in the cache under the new key.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "src/api/engine.h"
#include "src/calib/table.h"
#include "src/core/planner.h"
#include "src/graph/model_zoo.h"
#include "src/sim/device.h"
#include "src/util/json.h"

using namespace karma;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The "real machine" part A profiles: the analytic V100 with swap lanes
/// ~3.5x slower and kernels ~1.2x slower than the model predicts.
sim::DeviceSpec ground_truth_device() {
  sim::DeviceSpec device = sim::v100_abci();
  device.scale.h2d = 3.5;
  device.scale.d2h = 3.5;
  device.scale.compute = 1.2;
  device.scale.cpu_update = 1.5;
  return device;
}

double truth_time(const sim::DeviceSpec& truth, calib::CostKind kind,
                  Bytes bytes) {
  switch (kind) {
    case calib::CostKind::kCompute:
      return truth.kernel_time(graph::LayerKind::kReLU, 0.0, bytes);
    case calib::CostKind::kH2d: return truth.h2d_time(bytes);
    case calib::CostKind::kD2h: return truth.d2h_time(bytes);
    case calib::CostKind::kCpuUpdate: return truth.cpu_update_time(bytes);
    default: return 0.0;  // no NVMe tier on this platform
  }
}

/// Mean |predicted - truth| / truth over the sampled op grid.
double mean_relative_error(const sim::DeviceSpec& predictor,
                           const sim::DeviceSpec& truth) {
  const calib::CostKind kinds[] = {
      calib::CostKind::kCompute, calib::CostKind::kH2d,
      calib::CostKind::kD2h, calib::CostKind::kCpuUpdate};
  double total = 0.0;
  int count = 0;
  for (const calib::CostKind kind : kinds) {
    for (int shift = 0; shift < 6; ++shift) {
      const Bytes bytes = (Bytes{2} << 20) << shift;
      const double t = truth_time(truth, kind, bytes);
      const double p = truth_time(predictor, kind, bytes);
      if (t <= 0.0) continue;
      total += std::abs(p - t) / t;
      ++count;
    }
  }
  return count > 0 ? total / count : 0.0;
}

}  // namespace

int main() {
  bool pass = true;

  // ---- Part A: fit recovers the measured constants through noise ----
  std::printf("=== Part A: predicted-vs-measured error, fit quality ===\n");
  const sim::DeviceSpec analytic = sim::v100_abci();
  const sim::DeviceSpec truth = ground_truth_device();

  calib::ProfileRecorder recorder(analytic, "resnet50-profile");
  std::mt19937_64 rng(0xBEEFCAFE);  // deterministic noise, reproducible runs
  std::uniform_real_distribution<double> noise(0.9, 1.1);
  const calib::CostKind kinds[] = {
      calib::CostKind::kCompute, calib::CostKind::kH2d,
      calib::CostKind::kD2h, calib::CostKind::kCpuUpdate};
  for (const calib::CostKind kind : kinds) {
    for (int i = 0; i < 24; ++i) {
      const Bytes bytes = (Bytes{1} << 20) << (i % 6);
      recorder.record(kind, bytes, truth_time(truth, kind, bytes) * noise(rng));
    }
  }
  // One pathological sample the MAD band must reject.
  recorder.record(calib::CostKind::kH2d, 4 << 20,
                  truth.h2d_time(4 << 20) * 80.0);

  const calib::CalibrationTable table = calib::fit({recorder.artifact()});
  const sim::DeviceSpec calibrated = calib::apply(table, analytic);

  const double err_raw = mean_relative_error(analytic, truth);
  const double err_cal = mean_relative_error(calibrated, truth);
  std::printf("mean relative error vs ground truth: analytic %.3f, "
              "calibrated %.3f (samples %lld, outliers rejected %lld)\n",
              err_raw, err_cal,
              static_cast<long long>(table.sample_count),
              static_cast<long long>(table.rejected_outliers));
  const bool fit_better = err_cal < err_raw && err_cal < 0.10;
  const bool outlier_ok = table.rejected_outliers >= 1;
  if (!fit_better)
    std::printf("FAIL: calibrated model is not (clearly) better\n");
  if (!outlier_ok) std::printf("FAIL: the 80x outlier was not rejected\n");
  pass = pass && fit_better && outlier_ok;

  // ---- Part B: cached plan -> calibrate -> repair, on the deep anneal ----
  std::printf("\n=== Part B: repair warm-start vs cold re-plan ===\n");
  api::PlanRequest request;
  request.model = graph::make_resnet50(512);  // out-of-core on the V100
  request.device = sim::v100_abci();
  request.planner.anneal_iterations = 2000;   // the deep-anneal regime

  // Swap lanes measured 4x FASTER than the analytic PCIe model (pinned
  // staging + overlap the model under-credits): swapping fine-grained
  // blocks now beats recomputing them, so the repaired plan must flip
  // routes — the analytic optimum here is a few recomputed blocks, the
  // calibrated one many swapped ones.
  auto swap_table = std::make_shared<const calib::CalibrationTable>([] {
    calib::CalibrationTable t;
    t.factors[calib::kAnyDeviceClass] = {{"h2d", 0.25}, {"d2h", 0.25}};
    return t;
  }());
  const sim::DeviceSpec repair_device =
      calib::apply(*swap_table, request.device);

  // The plans are deterministic; only the wall-clocks are noisy at the
  // millisecond scale CI runners measure. Repeat the whole cached ->
  // calibrate -> repair sequence on fresh engines and gate the MEDIAN
  // ratio; correctness flags must hold on every repetition.
  constexpr int kReps = 3;
  std::vector<double> analytic_walls, repair_walls, cold_walls;
  bool cold_cached = true, old_key_misses = true, warm = true,
       recached = true;
  api::Plan cold_plan, repaired_plan;
  for (int rep = 0; rep < kReps; ++rep) {
    auto engine = api::Engine::create({});
    double t0 = now_seconds();
    const auto cold = engine->plan(request);
    analytic_walls.push_back(now_seconds() - t0);
    if (!cold.has_value()) {
      std::printf("FAIL: cold plan failed: %s\n",
                  cold.error().describe().c_str());
      return 1;
    }
    cold_cached = cold_cached && engine->try_cached(request).has_value();
    engine->set_calibration(swap_table);
    old_key_misses =
        old_key_misses && !engine->try_cached(request).has_value();
    t0 = now_seconds();
    const auto repaired = engine->plan(request);
    repair_walls.push_back(now_seconds() - t0);
    if (!repaired.has_value()) {
      std::printf("FAIL: repair plan failed: %s\n",
                  repaired.error().describe().c_str());
      return 1;
    }
    warm = warm && repaired.value().search_stats.warm_started;
    recached = recached && engine->try_cached(request).has_value();
    cold_plan = cold.value();
    repaired_plan = repaired.value();
  }

  // Cold baseline under the SAME calibrated model, same options/seed —
  // what a fleet without repair would have to pay per plan.
  core::PlannerOptions cold_options = request.planner;
  core::PlanResult cold_calibrated;
  for (int rep = 0; rep < kReps; ++rep) {
    const double t0 = now_seconds();
    cold_calibrated =
        core::KarmaPlanner(request.model, repair_device, cold_options).plan();
    cold_walls.push_back(now_seconds() - t0);
  }
  std::sort(analytic_walls.begin(), analytic_walls.end());
  std::sort(repair_walls.begin(), repair_walls.end());
  std::sort(cold_walls.begin(), cold_walls.end());
  const double cold_wall = analytic_walls[kReps / 2];
  const double repair_wall = repair_walls[kReps / 2];
  const double cold_calibrated_wall = cold_walls[kReps / 2];

  // Per-layer policy diff between the stale cached plan and the repaired
  // one: a calibration that triples swap cost must flip at least one
  // block's swap/route decision.
  const auto layer_policies = [](const api::Plan& plan) {
    std::vector<core::BlockPolicy> per_layer(
        static_cast<std::size_t>(plan.model_layers),
        core::BlockPolicy::kResident);
    for (std::size_t b = 0; b < plan.blocks().size(); ++b)
      for (int l = plan.blocks()[b].first_layer;
           l < plan.blocks()[b].last_layer; ++l)
        per_layer[static_cast<std::size_t>(l)] = plan.policies[b];
    return per_layer;
  };
  const auto before = layer_policies(cold_plan);
  const auto after = layer_policies(repaired_plan);
  int flipped_layers = 0;
  for (std::size_t i = 0; i < before.size() && i < after.size(); ++i)
    flipped_layers += before[i] != after[i] ? 1 : 0;

  const double wall_ratio =
      cold_calibrated_wall > 0 ? repair_wall / cold_calibrated_wall : 1.0;
  const double cost_ratio =
      cold_calibrated.iteration_time > 0
          ? repaired_plan.iteration_time / cold_calibrated.iteration_time
          : 1.0;

  std::printf("cold search:        %.3f s wall (analytic), cached=%s\n",
              cold_wall, cold_cached ? "yes" : "no");
  std::printf("calibrate:          old key misses=%s\n",
              old_key_misses ? "yes" : "no");
  std::printf("repair:             %.3f s wall, warm_started=%s, "
              "re-cached=%s\n",
              repair_wall, warm ? "yes" : "no", recached ? "yes" : "no");
  std::printf("cold re-plan:       %.3f s wall under the same table\n",
              cold_calibrated_wall);
  std::printf("repair/cold wall:   %.3fx (gate <= 0.5x)\n", wall_ratio);
  std::printf("repair/cold cost:   %.6fx simulated (gate <= 1.0x)\n",
              cost_ratio);
  std::printf("policy flips:       %d layers re-routed (gate >= 1)\n",
              flipped_layers);

  const bool invalidation_ok = cold_cached && old_key_misses && recached;
  const bool repair_ok = warm && wall_ratio <= 0.5;
  const bool cost_ok = cost_ratio <= 1.0 + 1e-12;
  const bool flip_ok = flipped_layers >= 1;
  if (!invalidation_ok) std::printf("FAIL: cache invalidation sequence\n");
  if (!repair_ok) std::printf("FAIL: repair not a cheap warm-start\n");
  if (!cost_ok) std::printf("FAIL: repaired plan worse than cold re-plan\n");
  if (!flip_ok) std::printf("FAIL: no swap/route decision flipped\n");
  pass = pass && invalidation_ok && repair_ok && cost_ok && flip_ok;

  // ---- BENCH_calib.json (the CI artifact) ----
  {
    util::json::Writer w;
    w.begin_object();
    w.key("bench"); w.value("calibration");
    w.key("fit");
    w.begin_object();
    w.key("error_analytic"); w.value(err_raw);
    w.key("error_calibrated"); w.value(err_cal);
    w.key("samples"); w.value(table.sample_count);
    w.key("rejected_outliers"); w.value(table.rejected_outliers);
    w.end_object();
    w.key("repair");
    w.begin_object();
    w.key("cold_wall_s"); w.value(cold_wall);
    w.key("cold_calibrated_wall_s"); w.value(cold_calibrated_wall);
    w.key("repair_wall_s"); w.value(repair_wall);
    w.key("wall_ratio"); w.value(wall_ratio);
    w.key("cost_ratio"); w.value(cost_ratio);
    w.key("warm_started"); w.value(warm);
    w.key("flipped_layers"); w.value(flipped_layers);
    w.key("old_key_misses"); w.value(old_key_misses);
    w.key("recached"); w.value(recached);
    w.end_object();
    w.key("pass"); w.value(pass);
    w.end_object();
    std::ofstream("BENCH_calib.json") << w.take() << "\n";
    std::printf("\nwrote BENCH_calib.json\n");
  }

  std::printf("\n%s: calibration halves model error, repair <= 0.5x cold "
              "wall at equal-or-better cost, >= 1 route flip, cache "
              "invalidated and repopulated\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
