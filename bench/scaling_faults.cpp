// Table I's differentiating claims, quantified:
//  1. Strong scaling (MN): data-parallel KARMA's efficiency as GPUs grow
//     with the global batch held fixed — the regime where the hybrid's
//     communication cost "magnifies" (Sec. IV-C's parity observation).
//  2. Fault tolerance (MN): epoch-time overhead of device failures under
//     the shrink and relaunch recovery modes (Sec. II-B / Table I), which
//     no single-GPU out-of-core method and no model-parallel layout can
//     offer at all.
#include "bench/bench_common.h"
#include "src/api/engine.h"
#include "src/baselines/parallelism.h"
#include "src/core/elastic.h"

namespace karma::bench {
namespace {

void strong_scaling() {
  print_section("Strong scaling — Megatron-LM 2.5B, fixed global batch 512");
  const sim::DeviceSpec device = sim::v100_abci();
  const net::NetSpec net = net::abci_net();
  const graph::TransformerConfig cfg = graph::megatron_config(2);
  constexpr std::int64_t kGlobalBatch = 512;

  Table table({"GPUs", "KARMA local batch", "KARMA iter [s]",
               "KARMA eff.", "hybrid iter [s]", "hybrid eff."});
  double karma_base = 0.0, hybrid_base = 0.0;
  int base_gpus = 0;
  for (const int gpus : {64, 128, 256, 512}) {
    const std::int64_t local = kGlobalBatch / gpus;
    if (local < 1) break;

    api::PlanRequest request;
    request.model = graph::make_transformer(cfg, local);
    request.device = device;
    core::DistributedOptions options;
    options.num_gpus = gpus;
    options.iterations = 2;
    options.planner.anneal_iterations = 0;  // superseded by request.planner
    request.planner.anneal_iterations = 0;
    request.distributed = options;
    const api::Plan karma = api::Engine::create()->session().plan_or_throw(request);

    baselines::HybridConfig hybrid;
    hybrid.model = cfg;
    hybrid.num_gpus = gpus;
    hybrid.mp_ways = 4;
    hybrid.batch_per_group = kGlobalBatch / (gpus / 4);
    const auto h = baselines::megatron_hybrid_cost(hybrid, device, net);

    if (base_gpus == 0) {
      base_gpus = gpus;
      karma_base = karma.iteration_time * gpus;
      hybrid_base = h.iteration * gpus;
    }
    table.begin_row();
    table.add_cell(static_cast<std::int64_t>(gpus));
    table.add_cell(local);
    table.add_cell(karma.iteration_time, 3);
    table.add_cell(karma_base / (karma.iteration_time * gpus), 3);
    table.add_cell(h.iteration, 3);
    table.add_cell(hybrid_base / (h.iteration * gpus), 3);
  }
  std::printf("%s", table.to_ascii().c_str());
  std::printf("(efficiency = T(%d)*%d / (T(n)*n); 1.0 = perfect)\n",
              base_gpus, base_gpus);
}

void fault_tolerance() {
  print_section("Fault tolerance — ResNet-50 b=128, 64 GPUs, 8.2M samples");
  const sim::DeviceSpec device = sim::v100_abci();
  const graph::Model model = graph::make_resnet50(128);
  constexpr std::int64_t kSamples = 8'192'000;

  core::ElasticOptions options;
  options.distributed.num_gpus = 64;
  options.distributed.iterations = 2;
  options.distributed.planner.anneal_iterations = 0;
  // Checkpoint every quarter epoch; costs sized for this ~10-minute epoch
  // (production defaults target multi-hour epochs).
  options.checkpoint_interval = 0.25;
  options.checkpoint_cost = 5.0;
  options.relaunch_cost = 30.0;

  Table table({"scenario", "mode", "epoch [min]", "overhead", "final ranks"});
  const auto add = [&](const char* scenario, core::RecoveryMode mode,
                       const std::vector<core::FaultEvent>& faults) {
    options.mode = mode;
    const auto r = core::simulate_epoch_with_faults(model, device, options,
                                                    kSamples, faults);
    table.begin_row();
    table.add_cell(scenario);
    table.add_cell(mode == core::RecoveryMode::kShrink ? "shrink"
                                                       : "relaunch");
    table.add_cell(r.epoch_with_faults / 60.0, 2);
    table.add_cell(format_double(100.0 * r.overhead_fraction, 1) + "%");
    table.add_cell(static_cast<std::int64_t>(r.final_ranks));
  };
  add("no faults", core::RecoveryMode::kShrink, {});
  add("1 GPU fails at 50%", core::RecoveryMode::kShrink, {{0.5, 1}});
  add("1 GPU fails at 50%", core::RecoveryMode::kRelaunch, {{0.5, 1}});
  add("4 GPUs fail at 25%", core::RecoveryMode::kShrink, {{0.25, 4}});
  add("node (4) + node (4)", core::RecoveryMode::kShrink,
      {{0.25, 4}, {0.75, 4}});
  std::printf("%s", table.to_ascii().c_str());
  std::printf(
      "\nSingle-GPU out-of-core methods and model parallelism lose the\n"
      "whole job in every scenario above (Table I: Fault Tolerance =\n"
      "N/A / no); data-parallel KARMA degrades gracefully.\n");
}

int run() {
  strong_scaling();
  fault_tolerance();
  return 0;
}

}  // namespace
}  // namespace karma::bench

int main() { return karma::bench::run(); }
