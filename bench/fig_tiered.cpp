// Tiered-offload sweep (storage hierarchy extension, DESIGN.md §7):
// ResNet-50 batches whose swap working set outgrows a constrained host
// DRAM. Three configurations per batch:
//   two-tier      — the seed model: HBM + unbounded host DRAM;
//   host-only 8G  — host bounded at 8 GiB, no NVMe: planning must *refuse*
//                   once the spill set outgrows DRAM (the failure mode
//                   that motivates the third tier);
//   three-tier    — the same 8 GiB host backed by a 1.6 TB NVMe SSD:
//                   overflow blocks spill to storage and training goes on.
// Per-tier peaks come from the engine's ledger; the NVMe column counts
// blocks the router placed on storage.
#include "bench/bench_common.h"
#include "src/api/engine.h"
#include "src/graph/memory_model.h"
#include "src/sim/trace_check.h"

namespace karma::bench {
namespace {

std::optional<core::PlanResult> plan_on(const graph::Model& model,
                                        const sim::DeviceSpec& device) {
  api::PlanRequest request;
  request.model = model;
  request.device = device;
  request.planner.enable_recompute = false;  // isolate placement from remat
  request.planner.anneal_iterations = 60;
  request.probe_feasible_batch = false;  // refusal is part of the figure
  const auto plan = api::Engine::create()->session().plan(request);
  if (!plan) return std::nullopt;
  return plan->to_plan_result();
}

int run() {
  const Bytes host_cap = 8_GiB;

  const sim::DeviceSpec two_tier = sim::v100_abci();

  sim::DeviceSpec host_only = sim::v100_abci();
  host_only.name = "V100 + 8GiB host";
  host_only.host_capacity = host_cap;

  sim::DeviceSpec three_tier = sim::v100_abci_nvme();
  three_tier.name = "V100 + 8GiB host + NVMe";
  three_tier.host_capacity = host_cap;

  print_section(
      "Tiered offload — ResNet-50 on V100-16GiB, host DRAM capped at 8 GiB");
  std::printf(
      "working set = in-core footprint; spill = activation bytes the device\n"
      "cannot retain (graph::offload_footprint). Once spill > 8 GiB the\n"
      "two-level bounded-host model refuses the plan; the NVMe tier keeps\n"
      "training feasible at storage bandwidth.\n\n");

  Table table({"batch", "working set", "spill", "2-tier [s]", "host-only [s]",
               "3-tier [s]", "nvme blks", "peak host", "peak nvme"});

  for (const std::int64_t batch : {128, 256, 512, 768, 1024}) {
    const graph::Model model = graph::make_resnet50(batch);
    table.begin_row();
    table.add_cell(batch);
    table.add_cell(format_bytes(graph::in_core_footprint(model)));
    // The device retains weights + weight grads; only the remainder is
    // activation budget (same accounting as build_training_plan).
    const auto all = graph::range_memory(
        model, 0, static_cast<int>(model.num_layers()));
    const auto demand = graph::offload_footprint(
        model, two_tier.memory_capacity - all.weights - all.weight_grads);
    table.add_cell(format_bytes(demand.offloaded_activations));

    const auto base = plan_on(model, two_tier);
    table.add_cell(base ? format_seconds(base->iteration_time) : "-");

    const auto bounded = plan_on(model, host_only);
    table.add_cell(bounded ? format_seconds(bounded->iteration_time)
                           : "REFUSED");

    const auto tiered = plan_on(model, three_tier);
    if (!tiered) {
      table.add_cell("-");
      table.add_cell("-");
      table.add_cell("-");
      table.add_cell("-");
      continue;
    }
    const auto violations =
        sim::check_trace_invariants(tiered->plan, tiered->trace);
    if (!violations.empty()) {
      std::printf("TRACE VIOLATION (batch %lld): %s\n",
                  static_cast<long long>(batch), violations[0].c_str());
      return 1;
    }
    std::int64_t nvme_blocks = 0;
    for (const auto p : tiered->policies)
      if (p == core::BlockPolicy::kSwapNvme) ++nvme_blocks;
    table.add_cell(format_seconds(tiered->iteration_time));
    table.add_cell(nvme_blocks);
    table.add_cell(format_bytes(tiered->trace.peak_host_resident));
    table.add_cell(format_bytes(tiered->trace.peak_nvme_resident));
  }
  std::printf("%s", table.to_ascii().c_str());

  std::printf(
      "\nReading: host-only refusal marks the scenario family the seed\n"
      "cannot express; the 3-tier column is the price (NVMe bandwidth)\n"
      "of admitting it.\n");
  return 0;
}

}  // namespace
}  // namespace karma::bench

int main() { return karma::bench::run(); }
