// Google-benchmark micro-benchmarks for the substrates themselves: the
// collective cost models, the discrete-event engine, the planner search,
// the analytic occupancy model, and the numeric twin's kernels. These are
// regression guards for the tooling (the paper's figures come from the
// per-figure binaries).
#include <benchmark/benchmark.h>

#include "src/api/engine.h"
#include "src/baselines/strategies.h"
#include "src/core/occupancy.h"
#include "src/core/planner.h"
#include "src/graph/model_zoo.h"
#include "src/net/phased_exchange.h"
#include "src/train/ooc_exec.h"
#include "src/train/synthetic.h"

namespace karma {
namespace {

void BM_HierarchicalAllreduce(benchmark::State& state) {
  const net::NetSpec net = net::abci_net();
  const int gpus = static_cast<int>(state.range(0));
  Seconds acc = 0.0;
  for (auto _ : state) {
    acc += net::hierarchical_allreduce_time(net, gpus, 64 << 20);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_HierarchicalAllreduce)->Arg(4)->Arg(64)->Arg(2048);

void BM_MergedExchangePlan(benchmark::State& state) {
  const net::NetSpec net = net::abci_net();
  const auto blocks = static_cast<std::size_t>(state.range(0));
  const std::vector<Bytes> grads(blocks, 4 << 20);
  const std::vector<Seconds> bwd(blocks, 0.01);
  for (auto _ : state) {
    auto plan = net::merged_exchange(net, 512, grads, bwd);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_MergedExchangePlan)->Arg(16)->Arg(128);

void BM_EngineRunVgg(benchmark::State& state) {
  const sim::DeviceSpec device = sim::v100_abci();
  const graph::Model model = graph::make_vgg16(96);
  const auto blocks = sim::uniform_blocks(model, 4);
  std::vector<core::BlockPolicy> policies(blocks.size(),
                                          core::BlockPolicy::kSwap);
  policies.back() = core::BlockPolicy::kResident;
  const sim::Plan plan =
      core::build_training_plan(model, device, blocks, policies, "bench");
  const sim::Engine engine(device);
  for (auto _ : state) {
    auto trace = engine.run(plan);
    benchmark::DoNotOptimize(trace);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(plan.ops.size()));
}
BENCHMARK(BM_EngineRunVgg);

void BM_PlannerResnet50(benchmark::State& state) {
  api::PlanRequest request;
  request.model = graph::make_resnet50(512);
  request.device = sim::v100_abci();
  request.planner.anneal_iterations = static_cast<int>(state.range(0));
  const api::Session session = api::Engine::create()->session();
  for (auto _ : state) {
    auto result = session.plan(request);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_PlannerResnet50)->Arg(0)->Arg(60);

void BM_OccupancyEstimate(benchmark::State& state) {
  const auto nb = static_cast<std::size_t>(state.range(0));
  std::vector<sim::Block> blocks;
  std::vector<sim::BlockCost> costs;
  for (std::size_t b = 0; b < nb; ++b) {
    blocks.push_back({static_cast<int>(b), static_cast<int>(b) + 1});
    sim::BlockCost c;
    c.bwd_time = 0.01;
    c.act_bytes = 64 << 20;
    costs.push_back(c);
  }
  const std::vector<bool> swapped(nb, true);
  const sim::DeviceSpec device = sim::v100_abci();
  for (auto _ : state) {
    auto est = core::estimate_backward_occupancy(blocks, costs, swapped,
                                                 device, 4LL << 30);
    benchmark::DoNotOptimize(est);
  }
}
BENCHMARK(BM_OccupancyEstimate)->Arg(16)->Arg(256);

void BM_TrainMatmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const train::Tensor a = train::Tensor::uniform({n, n}, rng, 1.0f);
  const train::Tensor b = train::Tensor::uniform({n, n}, rng, 1.0f);
  train::Tensor out({n, n});
  for (auto _ : state) {
    train::matmul(a, b, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_TrainMatmul)->Arg(64)->Arg(128);

void BM_OocTrainStep(benchmark::State& state) {
  Rng rng(7);
  train::Sequential net = train::make_mlp({64, 128, 128, 10}, rng);
  train::OocExecutor exec(
      &net,
      train::uniform_ooc_blocks(net.size(), 2, core::BlockPolicy::kSwap),
      Bytes{1} << 30);
  train::SGD opt(0.01f);
  Rng data_rng(9);
  const auto batch = train::make_synthetic_batch(32, {64}, 10, data_rng);
  for (auto _ : state) {
    auto stats = exec.train_step(batch.inputs, batch.labels, opt);
    benchmark::DoNotOptimize(stats);
  }
}
BENCHMARK(BM_OocTrainStep);

}  // namespace
}  // namespace karma

BENCHMARK_MAIN();
