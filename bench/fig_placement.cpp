// Heterogeneous fleet placement (DESIGN.md §16): cost-based shard
// ownership vs round-robin on a mixed-generation fleet, publishing
// BENCH_place.json.
//
//   $ ./bench_fig_placement [batch] [anneal_iterations]
//
// The fleet mixes ample-DRAM A100 nodes with DRAM-starved V100 nodes
// whose shared local NVMe runs contended (queue depth 4, mixed-load read
// penalty). Round-robin hands every node the same number of weight
// shards, so the weak nodes' host reserve crowds their activation spill
// down to the contended SSD and the whole synchronous fleet waits for
// them. Cost-based placement simulates each block's ownership cost per
// device class (the sdpb Block_Cost pattern) and keeps shards on the
// nodes that can afford them.
//
// Acceptance gates (CI reads the exit code, artifacts go to
// BENCH_place.json):
//   - cost-based fleet iteration time >= 1.2x better than round-robin;
//   - the placement is bit-identical across repeated plans (same
//     placement_to_json bytes, same straggler, same composed time);
//   - the identity NVMe-contention model stays invisible: an identity
//     device serializes without any "nvme_contention" key, so every
//     pre-fleet golden and cache key is byte-unchanged.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "bench/bench_common.h"
#include "src/api/request_io.h"
#include "src/api/plan_io.h"
#include "src/api/session.h"
#include "src/place/fleet_planner.h"
#include "src/util/json.h"

int main(int argc, char** argv) {
  using namespace karma;

  const std::int64_t batch = argc > 1 ? std::atoll(argv[1]) : 18;
  const int anneal = argc > 2 ? std::atoi(argv[2]) : 200;
  const long long weak_gib = argc > 3 ? std::atoll(argv[3]) : 9;

  // The 0.7B Megatron configuration as a linear chain: every block
  // boundary is a clean cut, so what is under study is placement, not
  // skip-edge policy.
  const graph::Model model =
      graph::make_transformer_chain(graph::megatron_config(0), batch);

  // 2 strong + 2 weak nodes. The weak hosts get 9 GiB of DRAM: enough to
  // hold the V100's activation spill OR a round-robin share of the
  // shards, not both — round-robin ownership tips the spill down to the
  // contended SSD.
  const Bytes weak_host = Bytes{weak_gib} << 30;
  place::FleetSpec fleet = place::mixed_generation_fleet(2, 2, weak_host);

  // Mixed-precision Adam: fp32 master + two fp32 moments pinned in host
  // DRAM per fp16 parameter = 12 bytes of state per 2-byte param.
  api::OptimizerSpec optimizer;
  optimizer.kind = api::OptimizerSpec::Kind::kAdam;
  optimizer.state_bytes_per_param_byte = 6.0;

  place::FleetPlanOptions options;
  options.planner.enable_recompute = false;
  options.planner.anneal_iterations = anneal;
  options.placement.optimizer_state_bytes = [optimizer](Bytes param_bytes) {
    return optimizer.host_state_bytes(param_bytes);
  };

  bench::print_section("fleet placement: cost-based vs round-robin (" +
                       model.name() + ", batch " + std::to_string(batch) +
                       ")");
  std::printf("fleet: 2x A100 (512 GiB host) + 2x V100 (%lld GiB host, "
              "contended NVMe qd=4)\n\n",
              static_cast<long long>(weak_host >> 30));

  const auto run = [&](place::PlacementStrategy strategy) {
    place::FleetSpec spec = fleet;
    spec.strategy = strategy;
    return place::plan_fleet(model, spec, options);
  };

  const place::FleetPlanResult cost_based =
      run(place::PlacementStrategy::kCostBased);
  const place::FleetPlanResult round_robin =
      run(place::PlacementStrategy::kRoundRobin);

  const auto report = [](const char* title,
                         const place::FleetPlanResult& r) {
    std::printf("%s: fleet iteration %s (straggler %s)\n", title,
                format_seconds(r.iteration_time).c_str(),
                r.placement.nodes[r.straggler].name.c_str());
    std::printf("  %-8s %-7s %6s %12s %12s %12s %12s\n", "node", "class",
                "shards", "plan", "exch tail", "update", "total");
    for (const place::NodeSummary& n : r.placement.nodes)
      std::printf("  %-8s %-7.7s %6d %12s %12s %12s %12s\n", n.name.c_str(),
                  n.device_name.c_str(), n.owned_blocks,
                  format_seconds(n.plan_iteration_time).c_str(),
                  format_seconds(n.exchange_tail).c_str(),
                  format_seconds(n.update_time).c_str(),
                  format_seconds(n.total_time).c_str());
  };
  report("cost-based ", cost_based);
  report("round-robin", round_robin);

  // ---- Gate 1: cost-based beats round-robin by >= 1.2x ----
  const double speedup =
      round_robin.iteration_time / cost_based.iteration_time;
  const bool faster = speedup >= 1.2;
  std::printf("\nspeedup: %.2fx (gate >= 1.20x) [%s]\n", speedup,
              faster ? "ok" : "FAIL");

  // ---- Gate 2: the placement is bit-identical across runs ----
  const place::FleetPlanResult again =
      run(place::PlacementStrategy::kCostBased);
  const bool identical =
      api::placement_to_json(again.placement) ==
          api::placement_to_json(cost_based.placement) &&
      again.straggler == cost_based.straggler &&
      again.iteration_time == cost_based.iteration_time;
  std::printf("placement bit-identical across runs: %s\n",
              identical ? "yes" : "NO");

  // ---- Gate 3: identity contention is invisible on the wire ----
  // A request whose device carries the default (identity) contention
  // model must serialize to exactly the pre-fleet bytes: no
  // "nvme_contention" key anywhere, so goldens and cache keys written
  // before DESIGN.md §16 still match.
  api::PlanRequest identity_request;
  identity_request.model = graph::make_resnet50(64);
  identity_request.device = sim::v100_abci_nvme();
  const std::string identity_json = api::request_to_json(identity_request);
  bool identity_clean =
      identity_json.find("nvme_contention") == std::string::npos;
  // And a contended device must serialize the model (the weak nodes'
  // fleet JSON carries it) — the key is conditional, not dropped.
  identity_clean = identity_clean &&
                   api::fleet_to_json(fleet).find("nvme_contention") !=
                       std::string::npos;
  std::printf("identity contention leaves request bytes unchanged: %s\n",
              identity_clean ? "yes" : "NO");

  const bool pass = faster && identical && identity_clean;

  // ---- BENCH_place.json (the CI artifact) ----
  {
    util::json::Writer w;
    w.begin_object();
    w.key("model"); w.value(model.name());
    w.key("batch"); w.value(batch);
    w.key("strong_nodes"); w.value(2);
    w.key("weak_nodes"); w.value(2);
    w.key("weak_host_gib");
    w.value(static_cast<double>(weak_host) / (1ll << 30));
    w.key("cost_based_s"); w.value(cost_based.iteration_time);
    w.key("cost_based_straggler");
    w.value(cost_based.placement.nodes[cost_based.straggler].name);
    w.key("round_robin_s"); w.value(round_robin.iteration_time);
    w.key("round_robin_straggler");
    w.value(round_robin.placement.nodes[round_robin.straggler].name);
    w.key("speedup"); w.value(speedup);
    w.key("speedup_gate"); w.value(1.2);
    w.key("speedup_ok"); w.value(faster);
    w.key("bit_identical"); w.value(identical);
    w.key("identity_contention_clean"); w.value(identity_clean);
    w.key("pass"); w.value(pass);
    w.end_object();
    std::ofstream("BENCH_place.json") << w.take() << "\n";
    std::printf("\nwrote BENCH_place.json\n");
  }

  std::printf("gates: speedup %.2fx >= 1.2x [%s], bit-identical [%s], "
              "identity clean [%s] -> %s\n",
              speedup, faster ? "ok" : "FAIL", identical ? "ok" : "FAIL",
              identity_clean ? "ok" : "FAIL", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
