// Deep-anneal search benchmark (DESIGN.md §14) — the CI artifact behind
// BENCH_search.json.
//
// Question: how much faster does the planner reach deep-anneal quality
// after the search-layer rework (indexed engine event loop, checkpointed
// suffix re-simulation, N-worker portfolio annealing) than the previous
// revision's serial search? The baseline leg is not a guess: it replays
// with EngineOptions.reference_event_loop — the seed engine's O(n)-sweep
// loop, property-tested bit-identical — at workers=1 with incremental
// resume off, i.e. the exact pre-rework search path compiled into this
// binary.
//
// The headline gate is TIME-TO-TARGET, the standard metric for parallel
// metaheuristics: the baseline runs its full 4000-iteration budget and
// sets the quality bar; the new configuration sweeps ascending budgets
// and the first one whose final plan is at least as good defines the
// wall-clock. This matches how the planner is used (anneal until the
// plan is good, not until a counter runs out) and is honest about WHERE
// the win comes from: the portfolio's diversified temperature rungs
// escape the plateau the serial walk parks on, so it needs a fraction of
// the iterations — the attribution block prices each factor separately.
//
// Gates:
//   1. time-to-target speedup >= 3.0x (cold ResNet-50/1024 deep anneal)
//   2. equal-budget quality: new config at 4000 iters is <= baseline's
//      simulated iteration time (never trades quality for speed)
//   3. determinism: two N-worker runs produce bit-identical plans
//   4. replay-path equivalence: reference-loop, indexed-loop, and
//      incremental legs land on bit-identical iteration times
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/core/planner.h"
#include "src/graph/model_zoo.h"
#include "src/sim/device.h"
#include "src/util/json.h"

using namespace karma;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr int kIterations = 4000;  // the deep-anneal budget
constexpr int kReps = 5;           // min-of-N wall-clock per leg

core::PlannerOptions leg_options(int workers, bool incremental,
                                 bool reference_loop, int iterations) {
  core::PlannerOptions o;
  o.anneal_iterations = iterations;
  o.anneal_workers = workers;
  o.incremental_resim = incremental;
  o.reference_engine_loop = reference_loop;
  return o;
}

struct LegResult {
  double wall = 0.0;  // min over kReps
  core::PlanResult result;
};

LegResult run_leg(const graph::Model& model, const sim::DeviceSpec& device,
                  const core::PlannerOptions& options) {
  LegResult leg;
  leg.wall = 1e100;
  for (int rep = 0; rep < kReps; ++rep) {
    const core::KarmaPlanner planner(model, device, options);
    const double t0 = now_seconds();
    core::PlanResult r = planner.plan();
    leg.wall = std::min(leg.wall, now_seconds() - t0);
    leg.result = std::move(r);
  }
  return leg;
}

void print_leg(const char* name, const LegResult& leg) {
  const auto& s = leg.result.search;
  std::printf("%-22s %8.4f s wall  it=%.6f ms  sims=%lld  resumes=%lld  "
              "ops_saved=%lld\n",
              name, leg.wall, leg.result.iteration_time * 1e3,
              static_cast<long long>(s.simulations),
              static_cast<long long>(s.incremental_resumes),
              static_cast<long long>(s.resumed_ops_saved));
}

void write_leg(util::json::Writer& w, const char* name, const LegResult& leg) {
  w.key(name);
  w.begin_object();
  w.key("wall_s"); w.value(leg.wall);
  w.key("iteration_time_s"); w.value(leg.result.iteration_time);
  w.key("simulations"); w.value(leg.result.search.simulations);
  w.key("incremental_resumes");
  w.value(leg.result.search.incremental_resumes);
  w.key("resumed_ops_saved"); w.value(leg.result.search.resumed_ops_saved);
  w.end_object();
}

}  // namespace

int main() {
  // ResNet-50 at batch 1024 on the 16 GB V100: genuinely out-of-core
  // (the paper's regime) — the planner lands on ~24 blocks / ~87 ops, so
  // replay cost and suffix depth are both real.
  const graph::Model model = graph::make_resnet50(1024);
  const sim::DeviceSpec device = sim::v100_abci();
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("workload: %s batch 1024, deep anneal %d iterations, "
              "hardware_concurrency=%u\n\n",
              model.name().c_str(), kIterations, hw);

  // ---- Fixed-budget legs: one factor enabled at a time ----
  const LegResult pr7 =
      run_leg(model, device, leg_options(1, false, true, kIterations));
  const LegResult loop =
      run_leg(model, device, leg_options(1, false, false, kIterations));
  const LegResult incr =
      run_leg(model, device, leg_options(1, true, false, kIterations));
  const LegResult pr8 =
      run_leg(model, device, leg_options(4, true, false, kIterations));
  print_leg("baseline (ref loop)", pr7);
  print_leg("+ indexed event loop", loop);
  print_leg("+ incremental resim", incr);
  print_leg("+ 4-worker portfolio", pr8);
  std::printf("plan: %d blocks, %zu ops\n\n",
              static_cast<int>(pr8.result.blocks.size()),
              pr8.result.plan.ops.size());

  // ---- Gate 4: the three serial legs replay the same search ----
  // reference_engine_loop and incremental_resim are performance switches;
  // if any leg's simulated quality moves, the bench is comparing two
  // different simulators and every ratio below is meaningless.
  const bool replay_equivalent =
      pr7.result.iteration_time == loop.result.iteration_time &&
      loop.result.iteration_time == incr.result.iteration_time &&
      pr7.result.plan.schedule_string() == incr.result.plan.schedule_string();
  if (!replay_equivalent)
    std::printf("FAIL: serial legs disagree on the plan — replay paths "
                "are not equivalent\n");

  // ---- Gate 3: N-worker determinism ----
  const LegResult pr8_again =
      run_leg(model, device, leg_options(4, true, false, kIterations));
  const bool deterministic =
      pr8.result.iteration_time == pr8_again.result.iteration_time &&
      pr8.result.policies == pr8_again.result.policies &&
      pr8.result.plan.schedule_string() ==
          pr8_again.result.plan.schedule_string();
  if (!deterministic)
    std::printf("FAIL: two 4-worker runs disagree\n");

  // ---- Gate 2: equal-budget quality ----
  const bool quality_ok =
      pr8.result.iteration_time <= pr7.result.iteration_time * (1.0 + 1e-12);
  if (!quality_ok)
    std::printf("FAIL: portfolio at full budget lost quality vs baseline\n");
  const double speedup_equal_budget = pr8.wall > 0 ? pr7.wall / pr8.wall : 0.0;

  // ---- Gate 1: time-to-target ----
  const double target = pr7.result.iteration_time;
  std::printf("time-to-target sweep (target: baseline it=%.6f ms)\n",
              target * 1e3);
  const std::vector<int> budgets = {250, 500, 1000, 2000, kIterations};
  double ttt_wall = 0.0, ttt_it = 0.0;
  int ttt_budget = 0;
  for (const int budget : budgets) {
    const LegResult probe =
        run_leg(model, device, leg_options(4, true, false, budget));
    const bool reached =
        probe.result.iteration_time <= target * (1.0 + 1e-12);
    std::printf("  %5d iters: %8.4f s wall  it=%.6f ms  %s\n", budget,
                probe.wall, probe.result.iteration_time * 1e3,
                reached ? "<= target" : "above target");
    if (reached) {
      ttt_wall = probe.wall;
      ttt_it = probe.result.iteration_time;
      ttt_budget = budget;
      break;
    }
  }
  const double speedup_ttt =
      ttt_wall > 0 ? pr7.wall / ttt_wall : 0.0;
  const bool ttt_ok = speedup_ttt >= 3.0;
  if (!ttt_ok)
    std::printf("FAIL: time-to-target speedup %.2fx below the 3.0x gate\n",
                speedup_ttt);

  // ---- Attribution: where the win comes from, factor by factor ----
  const double f_loop = loop.wall > 0 ? pr7.wall / loop.wall : 0.0;
  const double f_incr = incr.wall > 0 ? loop.wall / incr.wall : 0.0;
  const double f_portfolio = pr8.wall > 0 ? incr.wall / pr8.wall : 0.0;
  std::printf("\nattribution (equal 4000-iteration budget):\n");
  std::printf("  indexed event loop:   %.2fx\n", f_loop);
  std::printf("  incremental resim:    %.2fx  (forward-phase checkpoints "
              "only — the backward half always replays, so this is "
              "~neutral at workers=1 and pays off as plans deepen)\n",
              f_incr);
  std::printf("  4-worker portfolio:   %.2fx wall at this core count "
              "(hardware_concurrency=%u); its real contribution is "
              "quality per iteration — see the sweep above\n",
              f_portfolio, hw);
  std::printf("  equal-budget total:   %.2fx\n", speedup_equal_budget);
  std::printf("  time-to-target:       %.2fx (%d of %d iterations)\n",
              speedup_ttt, ttt_budget, kIterations);

  const bool pass = replay_equivalent && deterministic && quality_ok && ttt_ok;

  // ---- BENCH_search.json (the CI artifact) ----
  {
    util::json::Writer w;
    w.begin_object();
    w.key("bench"); w.value("search");
    w.key("workload");
    w.begin_object();
    w.key("model"); w.value(model.name());
    w.key("batch"); w.value(std::int64_t{1024});
    w.key("anneal_iterations"); w.value(std::int64_t{kIterations});
    w.key("blocks");
    w.value(static_cast<std::int64_t>(pr8.result.blocks.size()));
    w.key("plan_ops");
    w.value(static_cast<std::int64_t>(pr8.result.plan.ops.size()));
    w.key("hardware_concurrency"); w.value(static_cast<std::int64_t>(hw));
    w.end_object();
    w.key("legs");
    w.begin_object();
    write_leg(w, "baseline_reference_loop", pr7);
    write_leg(w, "indexed_loop", loop);
    write_leg(w, "incremental", incr);
    write_leg(w, "portfolio_w4", pr8);
    w.end_object();
    w.key("time_to_target");
    w.begin_object();
    w.key("target_iteration_time_s"); w.value(target);
    w.key("budget_iterations");
    w.value(static_cast<std::int64_t>(ttt_budget));
    w.key("wall_s"); w.value(ttt_wall);
    w.key("iteration_time_s"); w.value(ttt_it);
    w.key("speedup"); w.value(speedup_ttt);
    w.end_object();
    w.key("attribution");
    w.begin_object();
    w.key("indexed_event_loop"); w.value(f_loop);
    w.key("incremental_resim"); w.value(f_incr);
    w.key("portfolio_w4"); w.value(f_portfolio);
    w.key("equal_budget_total"); w.value(speedup_equal_budget);
    w.end_object();
    w.key("gates");
    w.begin_object();
    w.key("time_to_target_speedup_ge_3x"); w.value(ttt_ok);
    w.key("equal_budget_quality"); w.value(quality_ok);
    w.key("deterministic"); w.value(deterministic);
    w.key("replay_paths_equivalent"); w.value(replay_equivalent);
    w.end_object();
    w.key("pass"); w.value(pass);
    w.end_object();
    std::ofstream("BENCH_search.json") << w.take() << "\n";
    std::printf("\nwrote BENCH_search.json\n");
  }

  std::printf("\n%s: deep-anneal search reaches baseline quality %.1fx "
              "faster (gate >= 3.0x), bit-identical across runs and "
              "replay paths\n",
              pass ? "PASS" : "FAIL", speedup_ttt);
  return pass ? 0 : 1;
}
