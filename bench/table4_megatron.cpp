// Table IV: Megatron-LM configurations trained with the original
// MP(+DP) hybrid (analytic cost model) vs data-parallel KARMA (simulated
// 5-stage pipeline), using the paper's own GPU counts per row.
//
// Zero-shot perplexity cannot be reproduced without training the models
// to convergence (thousands of GPU-years); the numeric-twin equivalence
// tests (test_ooc_exec / test_data_parallel) verify instead that KARMA's
// arithmetic is identical to plain data parallelism, which is why the
// paper's PPL columns agree between the two systems. The paper's PPL
// values are reproduced as reference.
#include "bench/bench_common.h"
#include "src/api/engine.h"
#include "src/baselines/parallelism.h"

namespace karma::bench {
namespace {

struct Row {
  int config;           // megatron_config index
  int mp_gpus;          // "MP‡" column
  int mpdp_gpus;        // "MP+DP‡" column
  double paper_mpdp_perf;
  const char* paper_mpdp_ppl;
  int karma_gpus;       // "DP KARMA GPUs" column
  double paper_karma_perf;
  const char* paper_karma_ppl;
};

int run() {
  const sim::DeviceSpec device = sim::v100_abci();
  const net::NetSpec net = net::abci_net();

  // Paper Table IV rows (perf = iterations/second).
  const Row rows[] = {
      {0, 1, 64, 5.8, "13.66", 32, 2.2, "13.85"},
      {1, 2, 128, 1.6, "10.47", 64, 0.73, "10.34"},
      {2, 4, 256, 2.9, "8.21", 128, 1.94, "8.33"},
      {3, 8, 512, 5.0, "N/A", 256, 3.11, "N/A"},
      {4, 16, 1024, 8.4, "N/A", 512, 6.3, "N/A"},
  };
  constexpr std::int64_t kBatchPerGroup = 8;  // Megatron's per-group batch

  print_section("Table IV — Megatron-LM: MP+DP hybrid vs DP KARMA");
  Table table({"H", "A", "L", "P", "MP gpus", "MP+DP gpus",
               "hybrid it/s (sim)", "hybrid it/s (paper)", "PPL (paper)",
               "KARMA gpus", "KARMA it/s (sim)", "KARMA it/s (paper)",
               "KARMA PPL (paper)"});

  for (const Row& row : rows) {
    const graph::TransformerConfig cfg = graph::megatron_config(row.config);

    baselines::HybridConfig hybrid;
    hybrid.model = cfg;
    hybrid.num_gpus = row.mpdp_gpus;
    hybrid.mp_ways = row.mp_gpus;
    hybrid.batch_per_group = kBatchPerGroup;
    const auto hybrid_cost = baselines::megatron_hybrid_cost(hybrid, device, net);

    double karma_iters_per_s = 0.0;
    {
      api::PlanRequest request;
      request.model = graph::make_transformer(cfg, kBatchPerGroup);
      request.device = device;
      core::DistributedOptions options;
      options.num_gpus = row.karma_gpus;
      options.iterations = 2;
      options.planner.anneal_iterations = 0;  // superseded by request.planner
      request.planner.anneal_iterations = 0;
      request.distributed = options;
      request.probe_feasible_batch = false;
      const auto karma = api::Engine::create()->session().plan(request);
      if (karma)
        karma_iters_per_s = 1.0 / karma->iteration_time;
      else
        std::printf("  [config %d infeasible: %s]\n", row.config,
                    karma.error().describe().c_str());
    }

    table.begin_row();
    table.add_cell(cfg.hidden);
    table.add_cell(cfg.heads);
    table.add_cell(cfg.layers);
    table.add_cell(format_double(
                       static_cast<double>(cfg.approx_params()) / 1e9, 1) +
                   "B");
    table.add_cell(static_cast<std::int64_t>(row.mp_gpus));
    table.add_cell(static_cast<std::int64_t>(row.mpdp_gpus));
    table.add_cell(1.0 / hybrid_cost.iteration, 2);
    table.add_cell(row.paper_mpdp_perf, 1);
    table.add_cell(row.paper_mpdp_ppl);
    table.add_cell(static_cast<std::int64_t>(row.karma_gpus));
    table.add_cell(karma_iters_per_s, 2);
    table.add_cell(row.paper_karma_perf, 2);
    table.add_cell(row.paper_karma_ppl);
  }
  std::printf("%s", table.to_ascii().c_str());
  std::printf(
      "\nNote: simulated iterations/s reproduce the *shape* — DP KARMA on\n"
      "half the GPUs sustains the same order of throughput as the hybrid —\n"
      "not ABCI's absolute numbers. PPL columns are the paper's (training\n"
      "to convergence is out of scope; see DESIGN.md §2 and the numeric\n"
      "equivalence tests).\n");

  // Bounded per-tier residency (DESIGN.md §9): the same configurations on
  // the NVMe node, whose 384 GiB DRAM is *bounded* — every row must admit
  // against the per-class host ledger (pinned weight shards + in-flight
  // gradients + activation spill), or report a structured deficit.
  print_section("Table IV-b — bounded-DRAM admission per configuration");
  Table residency({"P", "KARMA gpus", "host shards (pinned)",
                   "host peak", "DRAM bound", "it/s"});
  for (const Row& row : rows) {
    const graph::TransformerConfig cfg = graph::megatron_config(row.config);
    api::PlanRequest request;
    request.model = graph::make_transformer(cfg, kBatchPerGroup);
    request.device = sim::v100_abci_nvme();
    core::DistributedOptions options;
    options.num_gpus = row.karma_gpus;
    options.iterations = 2;
    request.planner.anneal_iterations = 0;
    request.distributed = options;
    request.probe_feasible_batch = false;
    const auto karma = api::Engine::create()->session().plan(request);
    residency.begin_row();
    residency.add_cell(format_double(
                           static_cast<double>(cfg.approx_params()) / 1e9, 1) +
                       "B");
    residency.add_cell(static_cast<std::int64_t>(row.karma_gpus));
    if (karma) {
      residency.add_cell(
          format_bytes(karma->schedule.host_baseline_resident));
      residency.add_cell(format_bytes(karma->trace.peak_host_resident));
      residency.add_cell(format_bytes(request.device.host_capacity));
      residency.add_cell(1.0 / karma->iteration_time, 2);
    } else {
      residency.add_cell("-");
      residency.add_cell("-");
      residency.add_cell(format_bytes(request.device.host_capacity));
      residency.add_cell(std::string("infeasible: ") +
                         plan_error_code_name(karma.error().code));
    }
  }
  std::printf("%s", residency.to_ascii().c_str());
  return 0;
}

}  // namespace
}  // namespace karma::bench

int main() { return karma::bench::run(); }
