// Table V: cost/performance ($/P = GPUs / training throughput, normalized
// to the first row) when scaling the global mini-batch:
//   - data parallelism adds GPUs with the per-GPU batch pinned at the
//     memory-capacity maximum;
//   - data-parallel KARMA keeps the GPU count fixed and grows the per-GPU
//     batch beyond memory with out-of-core execution.
// The paper's shape: KARMA is the cheaper way to scale for the first
// couple of steps, then data parallelism wins as OOC slowdown magnifies.
#include "bench/bench_common.h"
#include "src/api/engine.h"

namespace karma::bench {
namespace {

struct Workload {
  const char* name;
  graph::Model (*make)(std::int64_t);
  std::int64_t per_gpu_batch;          ///< capacity max (Fig. 5 grid)
  std::vector<int> dp_gpus;            ///< 100..600 as in Table V
  int karma_gpus;                      ///< fixed GPU pool for KARMA
};

double dollars_per_perf(double gpus, double samples_per_s) {
  return gpus / samples_per_s;
}

int run() {
  const sim::DeviceSpec device = sim::v100_abci();
  const Workload workloads[] = {
      {"ResNet-50", &graph::make_resnet50, 128,
       {100, 200, 300, 400, 500, 600}, 100},
      {"ResNet-200", &graph::make_resnet200, 4,
       {100, 200, 300, 400, 500, 600}, 100},
  };

  for (const Workload& w : workloads) {
    print_section(std::string("Table V — ") + w.name +
                  " cost/performance (normalized $/P)");
    Table table({"global batch", "DP GPUs", "DP $/P", "KARMA GPUs",
                 "KARMA per-GPU batch", "KARMA $/P"});

    double dp_base = 0.0, karma_base = 0.0;
    for (std::size_t step = 0; step < w.dp_gpus.size(); ++step) {
      const int gpus = w.dp_gpus[step];
      const std::int64_t global_batch =
          static_cast<std::int64_t>(gpus) * w.per_gpu_batch;

      // Data parallelism: per-GPU batch fixed at the capacity max.
      const api::Session session = api::Engine::create()->session();
      api::PlanRequest dp_request;
      dp_request.model = w.make(w.per_gpu_batch);
      dp_request.device = device;
      core::DistributedOptions dp_options;
      dp_options.num_gpus = gpus;
      dp_options.iterations = 2;
      dp_options.planner.anneal_iterations = 0;
      dp_request.planner = dp_options.planner;
      dp_request.distributed = dp_options;
      const api::Plan dp = session.plan_or_throw(dp_request);
      const double dp_tput =
          static_cast<double>(global_batch) / dp.iteration_time;
      const double dp_cost = dollars_per_perf(gpus, dp_tput);

      // KARMA: fixed GPUs, growing per-GPU batch (out-of-core past step 0).
      const std::int64_t karma_batch = global_batch / w.karma_gpus;
      api::PlanRequest karma_request;
      karma_request.model = w.make(karma_batch);
      karma_request.device = device;
      core::DistributedOptions k_options = dp_options;
      k_options.num_gpus = w.karma_gpus;
      karma_request.planner = k_options.planner;
      karma_request.distributed = k_options;
      const api::Plan karma = session.plan_or_throw(karma_request);
      const double karma_tput =
          static_cast<double>(global_batch) / karma.iteration_time;
      const double karma_cost = dollars_per_perf(w.karma_gpus, karma_tput);

      if (step == 0) {
        dp_base = dp_cost;
        karma_base = dp_cost;  // both normalized to row 1's DP cost
      }
      table.begin_row();
      table.add_cell(std::to_string(global_batch / 1000) + "." +
                     std::to_string(global_batch % 1000 / 100) + "K");
      table.add_cell(static_cast<std::int64_t>(gpus));
      table.add_cell(dp_cost / dp_base, 3);
      table.add_cell(static_cast<std::int64_t>(w.karma_gpus));
      table.add_cell(karma_batch);
      table.add_cell(karma_cost / karma_base, 3);
    }
    std::printf("%s", table.to_ascii().c_str());
  }
  std::printf(
      "\nExpected shape (Table V): the KARMA column starts below the DP\n"
      "column (cheaper scaling while the OOC penalty is mild), then\n"
      "crosses above it as the per-GPU batch grows far beyond capacity.\n");
  return 0;
}

}  // namespace
}  // namespace karma::bench

int main() { return karma::bench::run(); }
