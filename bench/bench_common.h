// Shared helpers for the per-figure/per-table benchmark harnesses.
//
// Each binary regenerates one table or figure from the paper's evaluation
// (Sec. IV) on the simulated ABCI substrate and prints the same rows /
// series the paper reports. EXPERIMENTS.md records paper-vs-measured for
// every one of them.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "src/graph/model_zoo.h"
#include "src/util/table.h"

namespace karma::bench {

struct ModelGrid {
  const char* name;
  graph::Model (*make)(std::int64_t);
  std::vector<std::int64_t> batches;  ///< Fig. 5 x-axis, first point fits
};

/// The Fig. 5 workload grid, exactly as plotted in the paper.
inline std::vector<ModelGrid> fig5_grid() {
  return {
      {"ResNet-50", &graph::make_resnet50, {128, 256, 384, 512, 640, 768}},
      {"VGG16", &graph::make_vgg16, {32, 64, 96, 128, 160}},
      {"ResNet-200", &graph::make_resnet200, {4, 8, 12, 16, 20, 24}},
      {"WRN-28-10", &graph::make_wrn28_10, {256, 512, 768, 1024, 1280}},
      {"ResNet-1001", &graph::make_resnet1001, {64, 128, 192, 256, 320}},
      {"U-Net", &graph::make_unet, {8, 16, 24, 32, 40}},
  };
}

inline void print_section(const std::string& title) {
  std::printf("\n================ %s ================\n", title.c_str());
}

}  // namespace karma::bench
