// Cold-vs-warm planning cost with the karma::cache plan cache
// (DESIGN.md §10), on the paper's flagship single-GPU workload.
//
//   $ ./bench_fig_plan_cache [batch] [cache_dir]
//
// Three measurements of the same ResNet-50 PlanRequest:
//   cold       — empty cache: the full Opt-1/Opt-2 search runs (its
//                memoization counters are printed: candidates vs actual
//                re-simulations, per-block cost memo hit rate);
//   warm (mem) — same Session again: in-memory LRU hit;
//   warm (disk)— fresh Session, shared cache dir: the persisted v2 plan
//                JSON artifact is loaded, revalidated, and replayed.
//
// Acceptance gate (ISSUE 4): warm plan() must be >= 10x faster than cold,
// and every warm artifact must be bit-identical to the cold one. The
// process exits nonzero when either fails, so CI can smoke-run it.
//
// The default cache dir lives under the build tree (KARMA_DEFAULT_CACHE_DIR,
// injected by CMake) — cache entries are generated artifacts, kept out of
// the working tree and covered by .gitignore.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <optional>
#include <string>

#include "bench/bench_common.h"
#include "src/api/engine.h"
#include "src/cache/disk_store.h"
#include "src/cache/plan_cache.h"
#include "src/cache/request_key.h"

#ifndef KARMA_DEFAULT_CACHE_DIR
#define KARMA_DEFAULT_CACHE_DIR "plan-cache"
#endif

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

karma::api::SessionOptions cache_options(const std::string& dir) {
  karma::api::SessionOptions options;
  options.cache_dir = dir;
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace karma;

  const std::int64_t batch = argc > 1 ? std::atoll(argv[1]) : 512;
  const std::string dir = argc > 2 ? argv[2] : KARMA_DEFAULT_CACHE_DIR;

  api::PlanRequest request;
  request.model = graph::make_resnet50(batch);
  request.device = sim::v100_abci();
  request.planner.enable_recompute = true;
  // Search-quality budget: the paper's MIDACO solve converges "in under
  // four minutes"; our annealer stand-in gets a deep refinement budget so
  // the cold measurement reflects a production-quality search rather than
  // the quick default. Warm hits skip all of it either way.
  request.planner.anneal_iterations = 2000;
  request.optimizer.kind = api::OptimizerSpec::Kind::kSgdMomentum;
  request.probe_feasible_batch = false;

  bench::print_section("plan cache: cold vs warm (ResNet-50, batch " +
                       std::to_string(batch) + ")");
  // Guarantee a genuinely cold start by evicting exactly this request's
  // entry — never by wiping the directory, which the caller may share
  // with real cached plans.
  std::filesystem::remove(
      cache::DiskStore(dir).entry_path(cache::request_key(request)));
  std::printf("cache dir: %s\n\n", dir.c_str());

  // ---- Cold: full Opt-1/Opt-2 search ----
  const api::Session session =
      api::Engine::create({cache_options(dir)})->session();
  const double t0 = now_ms();
  const api::Plan cold = session.plan_or_throw(request);
  const double cold_ms = now_ms() - t0;

  const core::SearchStats& search = cold.search_stats;
  std::printf("cold plan: %.1f ms (iteration %s, %zu blocks)\n", cold_ms,
              format_seconds(cold.iteration_time).c_str(),
              cold.blocks().size());
  std::printf("  Opt-1/Opt-2 search: %lld candidates, %lld re-simulations "
              "(%lld memo hits avoided a full replay)\n",
              static_cast<long long>(search.candidates),
              static_cast<long long>(search.simulations),
              static_cast<long long>(search.memo_hits));
  std::printf("  block-cost memo:    %lld lookups, %lld hits (%.0f%%)\n",
              static_cast<long long>(search.block_cost_lookups),
              static_cast<long long>(search.block_cost_hits),
              search.block_cost_lookups > 0
                  ? 100.0 * static_cast<double>(search.block_cost_hits) /
                        static_cast<double>(search.block_cost_lookups)
                  : 0.0);

  // Warm hits sit in the sub-millisecond range where scheduler noise
  // dominates a single measurement. Noise is one-sided (preemption and
  // cold page-cache only ever ADD time), so the minimum over several
  // repetitions is the robust estimator of the true warm cost — this is
  // what keeps the 10x gate from flaking on loaded CI runners.
  constexpr int kWarmReps = 20;

  // ---- Warm, memory level ----
  api::Plan warm_mem = session.plan_or_throw(request);
  double mem_ms = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < kWarmReps; ++rep) {
    const double t1 = now_ms();
    warm_mem = session.plan_or_throw(request);
    mem_ms = std::min(mem_ms, now_ms() - t1);
  }

  // ---- Warm, disk level (fresh session per rep = fresh-process stand-in,
  // so every hit pays the load + revalidate path, never the LRU) ----
  double disk_ms = std::numeric_limits<double>::infinity();
  api::Plan warm_disk = cold;
  std::optional<api::Session> fresh;  // last rep's session, for the stats
  for (int rep = 0; rep < kWarmReps; ++rep) {
    fresh.emplace(api::Engine::create({cache_options(dir)})->session());
    const double t2 = now_ms();
    warm_disk = fresh->plan_or_throw(request);
    disk_ms = std::min(disk_ms, now_ms() - t2);
  }

  const bool identical = warm_mem.to_json() == cold.to_json() &&
                         warm_disk.to_json() == cold.to_json();
  std::printf("\nwarm plan (memory LRU):  %8.3f ms  -> %8.1fx speedup\n",
              mem_ms, cold_ms / mem_ms);
  std::printf("warm plan (disk store):  %8.3f ms  -> %8.1fx speedup\n",
              disk_ms, cold_ms / disk_ms);
  std::printf("artifacts bit-identical: %s\n", identical ? "yes" : "NO");
  std::printf("session stats:  %s\n", session.cache_stats().describe().c_str());
  std::printf("fresh-session:  %s\n", fresh->cache_stats().describe().c_str());

  const bool fast_enough = cold_ms / mem_ms >= 10.0 &&
                           cold_ms / disk_ms >= 10.0;
  std::printf("\n%s: warm >= 10x cold and bit-identical\n",
              identical && fast_enough ? "PASS" : "FAIL");
  return identical && fast_enough ? 0 : 1;
}
