// Multi-tenant planning service throughput (DESIGN.md §11–12): K
// concurrent tenants against one karma::api::Engine, then against a
// karma-pland daemon over its unix socket.
//
//   $ ./bench_fig_service_throughput [tenants] [anneal]
//
// Engine phases (ISSUE 5 gates):
//   all-hot storm — every tenant submits the SAME cold request at once.
//                   Single-flight collapses the storm into ONE search;
//                   the aggregate speedup over tenants-many independent
//                   searches is the dedup win.
//   mixed hot/cold — each tenant alternates between a shared hot request
//                   and a private cold one; prints aggregate throughput
//                   and the cache/flight counters behind it.
//   cancel/deadline latency — how fast cancel() and a deadline settle a
//                   deep-anneal request (the < 100 ms service guarantee).
//
// Daemon phases (ISSUE 6 gates) — an in-process karma-pland serving
// RemoteSessions over a real unix socket:
//   daemon storm  — N clients submit one cold request: exactly 1 search
//                   fleet-wide, byte-identical artifacts.
//   hit latency   — warm hit-path round trips; gate: median < 500 us.
//   overload shed — a flood of unique cold requests against a bounded
//                   queue: sheds arrive as kOverloaded + retry_after.
//   fairness      — one tenant's cold storm must not raise another
//                   tenant's hot-hit p99 by more than 2x.
// The daemon-phase numbers are published as BENCH_service.json (the CI
// artifact): hit-path latency percentiles, dedup factor, shed rate,
// fairness ratio.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <barrier>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/api/engine.h"
#include "src/api/remote_session.h"
#include "src/cache/plan_cache.h"
#include "src/pland/daemon.h"
#include "src/util/json.h"

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double now_us() { return 1000.0 * now_ms(); }

karma::api::PlanRequest resnet_request(std::int64_t batch, int anneal) {
  karma::api::PlanRequest request;
  request.model = karma::graph::make_resnet50(batch);
  request.device = karma::sim::v100_abci();
  request.planner.enable_recompute = true;
  request.planner.anneal_iterations = anneal;
  request.optimizer.kind = karma::api::OptimizerSpec::Kind::kSgdMomentum;
  request.probe_feasible_batch = false;
  return request;
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace karma;

  const int tenants = argc > 1 ? std::atoi(argv[1]) : 16;
  const int anneal = argc > 2 ? std::atoi(argv[2]) : 20000;
  bool pass = true;

  // ---- Baseline: one cold search, nothing shared ----
  api::SessionOptions bypass;
  bypass.cache_mode = api::SessionOptions::CacheMode::kBypass;
  const api::PlanRequest hot = resnet_request(512, anneal);
  const double t0 = now_ms();
  const std::string baseline = api::Engine::create({bypass})->session().plan_or_throw(hot).to_json();
  const double cold_ms = now_ms() - t0;

  bench::print_section("service throughput: " + std::to_string(tenants) +
                       " tenants, one Engine");
  std::printf("cold single-tenant search: %.1f ms (anneal %d)\n", cold_ms,
              anneal);

  // ---- Phase 1: all-hot storm (the single-flight dedup gate) ----
  {
    const auto engine = api::Engine::create();
    std::vector<std::string> artifacts(static_cast<std::size_t>(tenants));
    std::barrier sync(tenants);
    const double t1 = now_ms();
    {
      std::vector<std::jthread> threads;
      for (int i = 0; i < tenants; ++i)
        threads.emplace_back([&, i] {
          api::Session session = engine->session();
          sync.arrive_and_wait();
          artifacts[static_cast<std::size_t>(i)] =
              session.plan_or_throw(hot).to_json();
        });
    }
    const double storm_ms = now_ms() - t1;
    const api::EngineStats stats = engine->stats();
    const double aggregate_speedup =
        static_cast<double>(tenants) * cold_ms / storm_ms;
    const bool identical = std::all_of(
        artifacts.begin(), artifacts.end(),
        [&](const std::string& a) { return a == baseline; });

    std::printf("\nall-hot storm: %d x same request in %.1f ms wall\n",
                tenants, storm_ms);
    std::printf("  engine: %s\n", stats.describe().c_str());
    std::printf("  cache:  %s\n", engine->cache_stats().describe().c_str());
    std::printf("  aggregate dedup speedup: %.1fx (gate >= 5x)\n",
                aggregate_speedup);
    std::printf("  artifacts == serial baseline: %s\n",
                identical ? "yes" : "NO");
    pass = pass && stats.searches == 1 && aggregate_speedup >= 5.0 &&
           identical;
  }

  // ---- Phase 2: mixed hot/cold traffic ----
  {
    const auto engine = api::Engine::create();
    // Warm the hot entry once, as a live service would have.
    engine->session().plan_or_throw(hot);
    constexpr int kRequestsPerTenant = 4;
    std::barrier sync(tenants);
    const double t2 = now_ms();
    {
      std::vector<std::jthread> threads;
      for (int i = 0; i < tenants; ++i)
        threads.emplace_back([&, i] {
          api::Session session = engine->session();
          sync.arrive_and_wait();
          for (int r = 0; r < kRequestsPerTenant; ++r) {
            if (r % 2 == 0) {
              session.plan_or_throw(hot);  // shared hot key
            } else {
              // Private cold key per (tenant, round): a genuine search,
              // cheap (no anneal) so the phase stays a smoke test.
              api::PlanRequest cold_request =
                  resnet_request(128 + 32 * i + 8 * r, 0);
              session.plan_or_throw(cold_request);
            }
          }
        });
    }
    const double mixed_ms = now_ms() - t2;
    const api::EngineStats stats = engine->stats();
    const double rps = 1000.0 * tenants * kRequestsPerTenant / mixed_ms;
    std::printf("\nmixed hot/cold: %d tenants x %d requests in %.1f ms "
                "(%.0f plans/s aggregate)\n",
                tenants, kRequestsPerTenant, mixed_ms, rps);
    std::printf("  engine: %s\n", stats.describe().c_str());
    std::printf("  cache:  %s\n", engine->cache_stats().describe().c_str());
  }

  // ---- Phase 3: cancel / deadline settle latency ----
  {
    const auto engine = api::Engine::create();
    api::Session session = engine->session();
    const api::PlanRequest deep = resnet_request(512, 50'000'000);

    api::PlanFuture doomed = session.plan_async(deep);
    while (!doomed.progress().has_best)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    const double t3 = now_ms();
    doomed.cancel();
    const auto cancelled = doomed.get();
    const double cancel_ms = now_ms() - t3;
    const bool cancel_ok =
        !cancelled.has_value() &&
        cancelled.error().code == api::PlanErrorCode::kCancelled &&
        cancelled.error().partial != nullptr && cancel_ms < 100.0;
    std::printf("\ncancel() settle latency: %.2f ms (gate < 100 ms), "
                "partial plan attached: %s\n",
                cancel_ms,
                cancelled.error().partial ? "yes" : "NO");

    api::PlanRequest bounded = deep;
    bounded.limits.deadline = 0.2;
    const double t4 = now_ms();
    const auto expired = session.plan(bounded);
    const double deadline_ms = now_ms() - t4;
    const double settle_ms = deadline_ms - 1000.0 * bounded.limits.deadline;
    const bool deadline_ok =
        !expired.has_value() &&
        expired.error().code == api::PlanErrorCode::kDeadline &&
        settle_ms < 100.0;
    std::printf("deadline(0.2s) total %.1f ms -> settle overshoot %.2f ms "
                "(gate < 100 ms), code %s\n",
                deadline_ms, settle_ms,
                api::plan_error_code_name(expired.error().code));
    pass = pass && cancel_ok && deadline_ok;
  }

  // =========================================================================
  // karma-pland daemon phases (real unix-socket round trips)
  // =========================================================================

  const std::string scratch =
      "/tmp/karma-bench-service-" + std::to_string(::getpid());
  std::filesystem::remove_all(scratch);
  std::filesystem::create_directories(scratch);

  double dedup_factor = 0.0, shed_rate = 0.0;
  std::uint64_t storm_searches = 0, shed_offered = 0, shed_count = 0;
  bool storm_identical = false;
  double hit_p50 = 0, hit_p90 = 0, hit_p99 = 0;
  double fair_alone_p99 = 0, fair_storm_p99 = 0, fair_ratio = 0;
  const int clients = tenants;

  // ---- Phase 4: daemon cold storm (fleet dedup + byte-identity) ----
  {
    pland::DaemonOptions options;
    options.socket_path = scratch + "/storm.sock";
    options.engine.cache.cache_dir = scratch + "/storm-cache";
    pland::Daemon daemon(std::move(options));
    if (!daemon.start()) {
      std::fprintf(stderr, "cannot start daemon\n");
      return 1;
    }
    // The same request the serial baseline timed — cold for the daemon's
    // fresh engine, so the dedup factor compares like with like.
    const api::PlanRequest& cold_request = hot;
    std::vector<std::string> artifacts(static_cast<std::size_t>(clients));
    std::barrier sync(clients);
    const double t5 = now_ms();
    {
      std::vector<std::jthread> threads;
      for (int i = 0; i < clients; ++i)
        threads.emplace_back([&, i] {
          auto session = api::RemoteSession::connect(
              daemon.socket_path(), "tenant-" + std::to_string(i));
          sync.arrive_and_wait();
          if (session)
            if (auto plan = session->plan_raw(cold_request))
              artifacts[static_cast<std::size_t>(i)] = plan.value();
        });
    }
    const double storm_ms = now_ms() - t5;
    storm_searches = daemon.stats().engine.searches;
    storm_identical =
        !artifacts[0].empty() &&
        std::all_of(artifacts.begin(), artifacts.end(),
                    [&](const std::string& a) { return a == artifacts[0]; });
    dedup_factor = static_cast<double>(clients) * cold_ms / storm_ms;
    std::printf("\ndaemon cold storm: %d client connections in %.1f ms "
                "wall\n", clients, storm_ms);
    std::printf("  fleet searches: %llu (gate == 1), byte-identical: %s, "
                "dedup factor %.1fx\n",
                static_cast<unsigned long long>(storm_searches),
                storm_identical ? "yes" : "NO", dedup_factor);
    pass = pass && storm_searches == 1 && storm_identical;

    // ---- Phase 5: warm hit-path latency over the same socket ----
    {
      auto session =
          api::RemoteSession::connect(daemon.socket_path(), "latency");
      constexpr int kReps = 300;
      std::vector<double> lat_us;
      lat_us.reserve(kReps);
      if (session) {
        session->plan_raw(cold_request);  // ensure warm
        for (int r = 0; r < kReps; ++r) {
          const double t = now_us();
          if (!session->plan_raw(cold_request)) break;
          lat_us.push_back(now_us() - t);
        }
      }
      hit_p50 = percentile(lat_us, 0.50);
      hit_p90 = percentile(lat_us, 0.90);
      hit_p99 = percentile(lat_us, 0.99);
      std::printf("\nwarm hit path over the socket (%d reps): p50 %.0f us "
                  "(gate < 500), p90 %.0f us, p99 %.0f us\n",
                  kReps, hit_p50, hit_p90, hit_p99);
      pass = pass && !lat_us.empty() && hit_p50 < 500.0;
    }
    daemon.stop();
  }

  // ---- Phase 6: overload shed (bounded queue, slow worker) ----
  {
    pland::DaemonOptions options;
    options.socket_path = scratch + "/shed.sock";
    options.engine.cache.cache_dir = scratch + "/shed-cache";
    options.num_workers = 1;
    options.max_queue_per_tenant = 2;
    options.retry_after = 0.25;
    pland::Daemon daemon(std::move(options));
    if (!daemon.start()) {
      std::fprintf(stderr, "cannot start daemon\n");
      return 1;
    }
    constexpr int kFlood = 24;
    std::atomic<std::uint64_t> ok{0}, shed{0}, failed{0};
    std::barrier sync(8);
    {
      std::vector<std::jthread> threads;
      for (int t = 0; t < 8; ++t)
        threads.emplace_back([&, t] {
          auto session = api::RemoteSession::connect(daemon.socket_path(),
                                                     "flood");
          sync.arrive_and_wait();
          for (int r = 0; r < kFlood / 8; ++r) {
            if (!session) { failed++; continue; }
            // Unique keys: every request is a genuine (if quick) search.
            auto outcome =
                session->plan(resnet_request(64 + 8 * (t * 8 + r), 0));
            if (outcome) {
              ok++;
            } else if (outcome.error().code ==
                           api::PlanErrorCode::kOverloaded &&
                       outcome.error().retry_after > 0) {
              shed++;
            } else {
              failed++;
            }
          }
        });
    }
    shed_offered = kFlood;
    shed_count = shed.load();
    shed_rate = static_cast<double>(shed_count) /
                static_cast<double>(shed_offered);
    std::printf("\noverload flood: %d unique colds -> %llu served, %llu "
                "shed kOverloaded (%.0f%%), %llu failed\n",
                kFlood, static_cast<unsigned long long>(ok.load()),
                static_cast<unsigned long long>(shed_count),
                100.0 * shed_rate,
                static_cast<unsigned long long>(failed.load()));
    // Gate: sheds are well-formed and nothing fell over. (Whether any
    // shed occurs depends on machine speed; a fast box may drain all 24.)
    pass = pass && failed.load() == 0 &&
           ok.load() + shed_count == shed_offered;
    daemon.stop();
  }

  // ---- Phase 7: tenant fairness (cold storm vs hot-hit p99) ----
  {
    pland::DaemonOptions options;
    options.socket_path = scratch + "/fair.sock";
    options.engine.cache.cache_dir = scratch + "/fair-cache";
    options.num_workers = 2;
    pland::Daemon daemon(std::move(options));
    if (!daemon.start()) {
      std::fprintf(stderr, "cannot start daemon\n");
      return 1;
    }
    const api::PlanRequest hot_key = resnet_request(512, 0);
    auto hot_session =
        api::RemoteSession::connect(daemon.socket_path(), "interactive");
    if (!hot_session) {
      std::fprintf(stderr, "fairness connect failed\n");
      return 1;
    }
    hot_session->plan_raw(hot_key);  // warm

    auto measure = [&](int reps) {
      std::vector<double> lat;
      lat.reserve(static_cast<std::size_t>(reps));
      for (int r = 0; r < reps; ++r) {
        const double t = now_us();
        hot_session->plan_raw(hot_key);
        lat.push_back(now_us() - t);
      }
      return lat;
    };

    // A single window's p99 (the k-th worst of a few hundred samples) is
    // dominated by whichever stray timer/softirq hiccup happens to land
    // in it — on a small box those are multi-millisecond and appear with
    // or without the storm. The gate targets SYSTEMATIC inflation, which
    // shows up in every window; the median of three windows' p99s keeps
    // that and discards the one-off.
    auto p99_median = [&] {
      std::vector<double> p;
      for (int w = 0; w < 3; ++w)
        p.push_back(percentile(measure(500), 0.99));
      std::sort(p.begin(), p.end());
      return p[1];
    };

    fair_alone_p99 = p99_median();

    // Unique cold requests, built before the storm clock starts: the
    // storm must load the DAEMON, not the bench process. Constructing a
    // fresh 1024-batch model (and DOM-parsing each plan response) per
    // iteration would make the storm client itself the hot tenant's CPU
    // competitor on a small box — measuring client self-contention, not
    // daemon isolation. If the storm drains the list it wraps to warm
    // hits, which keeps the batch tenant's traffic flowing either way.
    std::vector<api::PlanRequest> colds;
    for (int r = 0; r < 192; ++r)
      colds.push_back(resnet_request(1024 + r, 0));

    std::atomic<bool> storming{true};
    std::atomic<bool> storm_live{false};
    std::jthread storm([&] {
      auto cold = api::RemoteSession::connect(daemon.socket_path(),
                                              "batch");
      for (std::size_t r = 0; cold && storming.load(); ++r) {
        cold->plan_raw(colds[r % colds.size()]);
        storm_live.store(true);
      }
    });
    // Sleep (not spin): a busy-wait at normal priority would starve the
    // idle-policy plan worker running the storm's first cold search.
    while (!storm_live.load())
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    fair_storm_p99 = p99_median();
    storming.store(false);
    storm.join();
    daemon.stop();

    fair_ratio = fair_alone_p99 > 0 ? fair_storm_p99 / fair_alone_p99 : 0;
    std::printf("\nfairness: hot-hit p99 alone %.0f us, under another "
                "tenant's cold storm %.0f us -> ratio %.2fx (gate <= 2x)\n",
                fair_alone_p99, fair_storm_p99, fair_ratio);
    pass = pass && fair_ratio <= 2.0;
  }

  // ---- BENCH_service.json (the CI artifact) ----
  {
    util::json::Writer w;
    w.begin_object();
    w.key("bench"); w.value("service");
    w.key("clients"); w.value(clients);
    w.key("hit_latency_us");
    w.begin_object();
    w.key("p50"); w.value(hit_p50);
    w.key("p90"); w.value(hit_p90);
    w.key("p99"); w.value(hit_p99);
    w.end_object();
    w.key("dedup");
    w.begin_object();
    w.key("searches"); w.value(static_cast<std::int64_t>(storm_searches));
    w.key("byte_identical"); w.value(storm_identical);
    w.key("factor"); w.value(dedup_factor);
    w.end_object();
    w.key("overload");
    w.begin_object();
    w.key("offered"); w.value(static_cast<std::int64_t>(shed_offered));
    w.key("shed"); w.value(static_cast<std::int64_t>(shed_count));
    w.key("shed_rate"); w.value(shed_rate);
    w.end_object();
    w.key("fairness");
    w.begin_object();
    w.key("hot_p99_alone_us"); w.value(fair_alone_p99);
    w.key("hot_p99_storm_us"); w.value(fair_storm_p99);
    w.key("ratio"); w.value(fair_ratio);
    w.end_object();
    w.key("pass"); w.value(pass);
    w.end_object();
    std::ofstream("BENCH_service.json") << w.take() << "\n";
    std::printf("\nwrote BENCH_service.json\n");
  }
  std::filesystem::remove_all(scratch);

  std::printf("\n%s: single-flight >= 5x on all-hot, artifacts "
              "bit-identical, cancel/deadline settle < 100 ms, fleet "
              "storm == 1 search, hit p50 < 500 us, fairness <= 2x\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
