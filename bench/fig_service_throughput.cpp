// Multi-tenant planning service throughput (DESIGN.md §11): K concurrent
// tenants against one karma::api::Engine, mixed hot/cold traffic.
//
//   $ ./bench_fig_service_throughput [tenants] [anneal]
//
// Three phases over the same Engine:
//   all-hot storm — every tenant submits the SAME cold request at once.
//                   Single-flight collapses the storm into ONE search;
//                   the aggregate speedup over tenants-many independent
//                   searches is the dedup win.
//   mixed hot/cold — each tenant alternates between a shared hot request
//                   and a private cold one; prints aggregate throughput
//                   and the cache/flight counters behind it.
//   cancel/deadline latency — how fast cancel() and a deadline settle a
//                   deep-anneal request (the < 100 ms service guarantee).
//
// Acceptance gates (ISSUE 5), exit nonzero on failure so CI can smoke-run:
//   - the all-hot storm performs exactly 1 search and yields >= 5x
//     aggregate dedup speedup ((tenants x cold time) / storm wall time);
//   - every storm artifact is bit-identical to the serial baseline;
//   - cancel() and deadline settle in < 100 ms.
#include <algorithm>
#include <barrier>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/api/engine.h"
#include "src/cache/plan_cache.h"

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

karma::api::PlanRequest resnet_request(std::int64_t batch, int anneal) {
  karma::api::PlanRequest request;
  request.model = karma::graph::make_resnet50(batch);
  request.device = karma::sim::v100_abci();
  request.planner.enable_recompute = true;
  request.planner.anneal_iterations = anneal;
  request.optimizer.kind = karma::api::OptimizerSpec::Kind::kSgdMomentum;
  request.probe_feasible_batch = false;
  return request;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace karma;

  const int tenants = argc > 1 ? std::atoi(argv[1]) : 16;
  const int anneal = argc > 2 ? std::atoi(argv[2]) : 20000;
  bool pass = true;

  // ---- Baseline: one cold search, nothing shared ----
  api::SessionOptions bypass;
  bypass.cache_mode = api::SessionOptions::CacheMode::kBypass;
  const api::PlanRequest hot = resnet_request(512, anneal);
  const double t0 = now_ms();
  const std::string baseline = api::Session(bypass).plan_or_throw(hot).to_json();
  const double cold_ms = now_ms() - t0;

  bench::print_section("service throughput: " + std::to_string(tenants) +
                       " tenants, one Engine");
  std::printf("cold single-tenant search: %.1f ms (anneal %d)\n", cold_ms,
              anneal);

  // ---- Phase 1: all-hot storm (the single-flight dedup gate) ----
  {
    const auto engine = api::Engine::create();
    std::vector<std::string> artifacts(static_cast<std::size_t>(tenants));
    std::barrier sync(tenants);
    const double t1 = now_ms();
    {
      std::vector<std::jthread> threads;
      for (int i = 0; i < tenants; ++i)
        threads.emplace_back([&, i] {
          api::Session session = engine->session();
          sync.arrive_and_wait();
          artifacts[static_cast<std::size_t>(i)] =
              session.plan_or_throw(hot).to_json();
        });
    }
    const double storm_ms = now_ms() - t1;
    const api::EngineStats stats = engine->stats();
    const double aggregate_speedup =
        static_cast<double>(tenants) * cold_ms / storm_ms;
    const bool identical = std::all_of(
        artifacts.begin(), artifacts.end(),
        [&](const std::string& a) { return a == baseline; });

    std::printf("\nall-hot storm: %d x same request in %.1f ms wall\n",
                tenants, storm_ms);
    std::printf("  engine: %s\n", stats.describe().c_str());
    std::printf("  cache:  %s\n", engine->cache_stats().describe().c_str());
    std::printf("  aggregate dedup speedup: %.1fx (gate >= 5x)\n",
                aggregate_speedup);
    std::printf("  artifacts == serial baseline: %s\n",
                identical ? "yes" : "NO");
    pass = pass && stats.searches == 1 && aggregate_speedup >= 5.0 &&
           identical;
  }

  // ---- Phase 2: mixed hot/cold traffic ----
  {
    const auto engine = api::Engine::create();
    // Warm the hot entry once, as a live service would have.
    engine->session().plan_or_throw(hot);
    constexpr int kRequestsPerTenant = 4;
    std::barrier sync(tenants);
    const double t2 = now_ms();
    {
      std::vector<std::jthread> threads;
      for (int i = 0; i < tenants; ++i)
        threads.emplace_back([&, i] {
          api::Session session = engine->session();
          sync.arrive_and_wait();
          for (int r = 0; r < kRequestsPerTenant; ++r) {
            if (r % 2 == 0) {
              session.plan_or_throw(hot);  // shared hot key
            } else {
              // Private cold key per (tenant, round): a genuine search,
              // cheap (no anneal) so the phase stays a smoke test.
              api::PlanRequest cold_request =
                  resnet_request(128 + 32 * i + 8 * r, 0);
              session.plan_or_throw(cold_request);
            }
          }
        });
    }
    const double mixed_ms = now_ms() - t2;
    const api::EngineStats stats = engine->stats();
    const double rps = 1000.0 * tenants * kRequestsPerTenant / mixed_ms;
    std::printf("\nmixed hot/cold: %d tenants x %d requests in %.1f ms "
                "(%.0f plans/s aggregate)\n",
                tenants, kRequestsPerTenant, mixed_ms, rps);
    std::printf("  engine: %s\n", stats.describe().c_str());
    std::printf("  cache:  %s\n", engine->cache_stats().describe().c_str());
  }

  // ---- Phase 3: cancel / deadline settle latency ----
  {
    const auto engine = api::Engine::create();
    api::Session session = engine->session();
    const api::PlanRequest deep = resnet_request(512, 50'000'000);

    api::PlanFuture doomed = session.plan_async(deep);
    while (!doomed.progress().has_best)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    const double t3 = now_ms();
    doomed.cancel();
    const auto cancelled = doomed.get();
    const double cancel_ms = now_ms() - t3;
    const bool cancel_ok =
        !cancelled.has_value() &&
        cancelled.error().code == api::PlanErrorCode::kCancelled &&
        cancelled.error().partial != nullptr && cancel_ms < 100.0;
    std::printf("\ncancel() settle latency: %.2f ms (gate < 100 ms), "
                "partial plan attached: %s\n",
                cancel_ms,
                cancelled.error().partial ? "yes" : "NO");

    api::PlanRequest bounded = deep;
    bounded.limits.deadline = 0.2;
    const double t4 = now_ms();
    const auto expired = session.plan(bounded);
    const double deadline_ms = now_ms() - t4;
    const double settle_ms = deadline_ms - 1000.0 * bounded.limits.deadline;
    const bool deadline_ok =
        !expired.has_value() &&
        expired.error().code == api::PlanErrorCode::kDeadline &&
        settle_ms < 100.0;
    std::printf("deadline(0.2s) total %.1f ms -> settle overshoot %.2f ms "
                "(gate < 100 ms), code %s\n",
                deadline_ms, settle_ms,
                api::plan_error_code_name(expired.error().code));
    pass = pass && cancel_ok && deadline_ok;
  }

  std::printf("\n%s: single-flight >= 5x on all-hot, artifacts "
              "bit-identical, cancel/deadline settle < 100 ms\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
