// Fig. 8: parity comparison — same number of GPUs for the MP+DP hybrid
// and for data-parallel KARMA — reported as time per epoch (hours) over
// the 7.2M-sample OpenWebText-scale dataset (Table III).
//
// Three panels, as in the paper:
//   (a) Megatron-LM 2.5B (H=1920, A=20, L=54):   128..2048 GPUs
//   (b) Megatron-LM 8.3B (H=3072, A=32, L=72):   512..2048 GPUs
//   (c) Turing-NLG 17B  (H=4256, A=28, L=78):    512..2048 GPUs,
//       ZeRO vs DP KARMA vs KARMA-on-ZeRO (paper: 1.35x over ZeRO).
#include "bench/bench_common.h"
#include "src/api/engine.h"
#include "src/baselines/parallelism.h"

namespace karma::bench {
namespace {

constexpr std::int64_t kSamplesPerEpoch = 7'200'000;  // OpenWT, Table III
constexpr std::int64_t kBatchPerGroup = 8;

double karma_epoch_hours(const graph::TransformerConfig& cfg, int gpus,
                         double shard_fraction = 1.0) {
  api::PlanRequest request;
  request.model = graph::make_transformer(cfg, kBatchPerGroup);
  request.device = sim::v100_abci();
  core::DistributedOptions options;
  options.num_gpus = gpus;
  options.iterations = 2;
  options.planner.anneal_iterations = 0;  // superseded by request.planner
  request.planner.anneal_iterations = 0;
  options.weight_shard_fraction = shard_fraction;
  request.distributed = options;
  const api::Plan result = api::Engine::create()->session().plan_or_throw(request);
  const double samples_per_iter =
      static_cast<double>(gpus) * kBatchPerGroup;
  return static_cast<double>(kSamplesPerEpoch) / samples_per_iter *
         result.iteration_time / 3600.0;
}

void megatron_panel(const char* title, int config_index, int mp_ways,
                    const std::vector<int>& gpu_counts) {
  const sim::DeviceSpec device = sim::v100_abci();
  const net::NetSpec net = net::abci_net();
  const graph::TransformerConfig cfg = graph::megatron_config(config_index);

  print_section(title);
  Table table({"GPUs", "MP+DP [h]", "MP+DP opt.ex. [h]", "DP KARMA [h]"});
  for (const int gpus : gpu_counts) {
    baselines::HybridConfig hybrid;
    hybrid.model = cfg;
    hybrid.num_gpus = gpus;
    hybrid.mp_ways = mp_ways;
    hybrid.batch_per_group = kBatchPerGroup;
    const auto plain = baselines::megatron_hybrid_cost(hybrid, device, net);
    hybrid.phased_exchange = true;
    const auto opt = baselines::megatron_hybrid_cost(hybrid, device, net);

    table.begin_row();
    table.add_cell(static_cast<std::int64_t>(gpus));
    table.add_cell(baselines::epoch_hours(plain, kSamplesPerEpoch), 2);
    table.add_cell(baselines::epoch_hours(opt, kSamplesPerEpoch), 2);
    table.add_cell(karma_epoch_hours(cfg, gpus), 2);
  }
  std::printf("%s", table.to_ascii().c_str());
}

void turing_panel() {
  const sim::DeviceSpec device = sim::v100_abci();
  const net::NetSpec net = net::abci_net();
  const graph::TransformerConfig cfg = graph::turing_nlg_config();

  print_section("Fig. 8(c) — Turing-NLG 17B: ZeRO vs KARMA vs ZeRO+KARMA");
  Table table({"GPUs", "ZeRO (MP+DP) [h]", "DP KARMA [h]", "ZeRO+KARMA [h]",
               "ZeRO+KARMA speedup vs ZeRO"});
  double speedup_at_2048 = 0.0;
  for (const int gpus : {512, 1024, 2048}) {
    baselines::HybridConfig hybrid;
    hybrid.model = cfg;
    hybrid.num_gpus = gpus;
    hybrid.mp_ways = 16;  // ZeRO's reference hybrid for 17B on 16 GiB cards
    hybrid.batch_per_group = kBatchPerGroup;
    const auto zero = baselines::zero_cost(hybrid, device, net);
    const double zero_hours = baselines::epoch_hours(zero, kSamplesPerEpoch);

    const double karma_hours = karma_epoch_hours(cfg, gpus);
    // KARMA-on-ZeRO: ZeRO partitions weight state over the 16-way group,
    // shrinking the per-rank swap shard KARMA must move.
    const double combo_hours = karma_epoch_hours(cfg, gpus, 1.0 / 16.0);

    table.begin_row();
    table.add_cell(static_cast<std::int64_t>(gpus));
    table.add_cell(zero_hours, 2);
    table.add_cell(karma_hours, 2);
    table.add_cell(combo_hours, 2);
    table.add_cell(format_double(zero_hours / combo_hours, 2) + "x");
    if (gpus == 2048) speedup_at_2048 = zero_hours / combo_hours;
  }
  std::printf("%s", table.to_ascii().c_str());
  std::printf("\nZeRO+KARMA speedup over ZeRO at 2048 GPUs: %.2fx "
              "(paper: 1.35x)\n", speedup_at_2048);
}

int run() {
  megatron_panel("Fig. 8(a) — Megatron-LM 2.5B parity (time per epoch)", 2,
                 4, {128, 256, 512, 1024, 2048});
  megatron_panel("Fig. 8(b) — Megatron-LM 8.3B parity (time per epoch)", 4,
                 16, {512, 1024, 2048});
  turing_panel();
  return 0;
}

}  // namespace
}  // namespace karma::bench

int main() { return karma::bench::run(); }
