#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace karma {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextBelowInRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 300; ++i) {
    const auto v = rng.next_below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(Rng, SymmetricInScale) {
  Rng rng(11);
  bool saw_negative = false, saw_positive = false;
  for (int i = 0; i < 500; ++i) {
    const float v = rng.next_symmetric(0.5f);
    EXPECT_GE(v, -0.5f);
    EXPECT_LT(v, 0.5f);
    saw_negative |= v < 0.0f;
    saw_positive |= v > 0.0f;
  }
  EXPECT_TRUE(saw_negative);
  EXPECT_TRUE(saw_positive);
}

TEST(Rng, SplitIndependentStream) {
  Rng a(123);
  Rng child = a.split();
  // The child stream should not replay the parent's outputs.
  Rng parent_copy(123);
  parent_copy.next_u64();  // advance equal to the split call
  EXPECT_NE(child.next_u64(), parent_copy.next_u64());
}

TEST(Rng, MeanApproximatelyHalf) {
  Rng rng(77);
  double sum = 0.0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / kSamples, 0.5, 0.02);
}

}  // namespace
}  // namespace karma
