#include "src/net/collective.h"

#include <gtest/gtest.h>

namespace karma::net {
namespace {

TEST(Collective, RingFormula) {
  // 2*(n-1)/n * B/bw + 2*(n-1)*lat.
  const Seconds t = ring_allreduce_time(1000, 4, 100.0, 0.5);
  EXPECT_DOUBLE_EQ(t, 2.0 * 3.0 / 4.0 * 10.0 + 2.0 * 3.0 * 0.5);
}

TEST(Collective, TreeFormula) {
  const Seconds t = tree_allreduce_time(1000, 8, 100.0, 0.5);
  EXPECT_DOUBLE_EQ(t, 2.0 * 3.0 * (10.0 + 0.5));  // log2(8) = 3 rounds
}

TEST(Collective, SingleProcIsFree) {
  EXPECT_DOUBLE_EQ(ring_allreduce_time(1000, 1, 1.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(tree_allreduce_time(1000, 1, 1.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(hierarchical_allreduce_time(abci_net(), 1, 1000), 0.0);
}

TEST(Collective, ZeroBytesIsFree) {
  EXPECT_DOUBLE_EQ(ring_allreduce_time(0, 8, 1.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(hierarchical_allreduce_time(abci_net(), 8, 0), 0.0);
}

TEST(Collective, InvalidArgsRejected) {
  EXPECT_THROW(ring_allreduce_time(1, 0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(tree_allreduce_time(1, -1, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(hierarchical_allreduce_time(abci_net(), 0, 1),
               std::invalid_argument);
}

TEST(Collective, MonotonicInBytes) {
  const NetSpec net = abci_net();
  Seconds prev = 0.0;
  for (Bytes b : {std::int64_t{1} << 20, std::int64_t{1} << 24,
                  std::int64_t{1} << 28}) {
    const Seconds t = hierarchical_allreduce_time(net, 64, b);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(Collective, RingBandwidthTermSaturates) {
  // For large payloads, doubling the process count barely changes the
  // ring time (the 2(n-1)/n factor approaches 2).
  const Bytes big = std::int64_t{1} << 30;
  const Seconds t64 = ring_allreduce_time(big, 64, 12.5e9, 10e-6);
  const Seconds t128 = ring_allreduce_time(big, 128, 12.5e9, 10e-6);
  EXPECT_NEAR(t128 / t64, 1.0, 0.02);
}

TEST(Collective, TreeBeatsRingForSmallPayloadAtScale) {
  // Latency-dominated regime: tree's log rounds beat ring's linear ones.
  const NetSpec net = abci_net();
  const Bytes tiny = 4096;
  const int nodes = 256;
  const Seconds ring =
      ring_allreduce_time(tiny, nodes, net.inter_bw, net.inter_latency);
  const Seconds tree =
      tree_allreduce_time(tiny, nodes, net.inter_bw, net.inter_latency);
  EXPECT_LT(tree, ring);
}

TEST(Collective, HierarchicalUsesBestInterAlgorithm) {
  const NetSpec net = abci_net();
  const int gpus = 512;
  const Bytes bytes = 64 * 1024 * 1024;
  const int nodes = gpus / net.gpus_per_node;
  const Seconds intra = ring_allreduce_time(bytes, net.gpus_per_node,
                                            net.intra_bw, net.intra_latency);
  const Seconds inter_ring =
      ring_allreduce_time(bytes, nodes, net.inter_bw, net.inter_latency);
  const Seconds inter_tree =
      tree_allreduce_time(bytes, nodes, net.inter_bw, net.inter_latency);
  EXPECT_DOUBLE_EQ(hierarchical_allreduce_time(net, gpus, bytes),
                   intra + std::min(inter_ring, inter_tree));
}

TEST(Collective, IntraNodeOnlySkipsInterTerm) {
  const NetSpec net = abci_net();
  const Bytes bytes = 1 << 20;
  const Seconds t = hierarchical_allreduce_time(net, 4, bytes);
  EXPECT_DOUBLE_EQ(
      t, ring_allreduce_time(bytes, 4, net.intra_bw, net.intra_latency));
}

TEST(Collective, AbciSpecMatchesTable2) {
  const NetSpec net = abci_net();
  EXPECT_EQ(net.gpus_per_node, 4);
  EXPECT_DOUBLE_EQ(net.intra_bw, 50e9);   // NVLink
  EXPECT_DOUBLE_EQ(net.inter_bw, 12.5e9); // 100 Gbps EDR x2
}

}  // namespace
}  // namespace karma::net
