// Headline-number regression guards: the quantitative claims written
// into EXPERIMENTS.md, pinned to ranges so refactors cannot silently
// change the reproduced results. Ranges are deliberately loose (the
// claims are about shape); exact determinism is covered elsewhere.
#include <gtest/gtest.h>

#include "src/api/engine.h"
#include "src/baselines/parallelism.h"
#include "src/baselines/strategies.h"
#include "src/core/distributed.h"
#include "src/graph/model_zoo.h"

namespace karma {
namespace {

const sim::DeviceSpec kDevice = sim::v100_abci();

TEST(Regression, Resnet50OocThroughputBand) {
  // EXPERIMENTS.md Fig. 5: KARMA+recompute at b=512 sustains 100-250
  // samples/s on the simulated V100 (in-core b=128 is ~280).
  const auto incore =
      baselines::plan_incore(graph::make_resnet50(128), kDevice);
  ASSERT_TRUE(incore);
  const double incore_tput = 128.0 / incore->iteration_time;
  EXPECT_GT(incore_tput, 200.0);
  EXPECT_LT(incore_tput, 400.0);

  const auto ooc =
      baselines::plan_karma_recompute(graph::make_resnet50(512), kDevice);
  ASSERT_TRUE(ooc);
  const double ooc_tput = 512.0 / ooc->iteration_time;
  EXPECT_GT(ooc_tput, 0.3 * incore_tput);
  EXPECT_LT(ooc_tput, 1.05 * incore_tput);
}

TEST(Regression, Fig7StallReductionBand) {
  // EXPERIMENTS.md Fig. 7: >=40% stall reduction vs SuperNeurons and
  // vDNN++ (paper: 43% / 37%).
  const graph::Model model = graph::make_resnet50(512);
  const auto karma = baselines::plan_karma_recompute(model, kDevice);
  const auto sn = baselines::plan_superneurons(model, kDevice);
  const auto vdnn = baselines::plan_vdnnpp(model, kDevice);
  ASSERT_TRUE(karma && sn && vdnn);
  const Seconds ks = karma->trace.compute_stall();
  EXPECT_LT(ks, 0.6 * sn->trace.compute_stall());
  EXPECT_LT(ks, 0.6 * vdnn->trace.compute_stall());
}

TEST(Regression, Fig8ZeroKarmaSpeedupBand) {
  // EXPERIMENTS.md Fig. 8(c): ZeRO+KARMA over ZeRO in [1.1x, 1.7x]
  // (paper: 1.35x; we measure 1.36-1.37x).
  const graph::TransformerConfig cfg = graph::turing_nlg_config();
  const int gpus = 1024;
  constexpr std::int64_t kBatch = 8;

  baselines::HybridConfig hybrid;
  hybrid.model = cfg;
  hybrid.num_gpus = gpus;
  hybrid.mp_ways = 16;
  hybrid.batch_per_group = kBatch;
  const auto zero = baselines::zero_cost(hybrid, kDevice, net::abci_net());
  const double zero_hours = baselines::epoch_hours(zero, 7'200'000);

  const graph::Model model = graph::make_transformer(cfg, kBatch);
  core::DistributedOptions options;
  options.num_gpus = gpus;
  options.iterations = 2;
  options.planner.anneal_iterations = 0;
  options.weight_shard_fraction = 1.0 / 16.0;
  const auto combo = core::plan_data_parallel(model, kDevice, options);
  const double combo_hours =
      7.2e6 / (static_cast<double>(gpus) * kBatch) * combo.iteration_time /
      3600.0;

  const double speedup = zero_hours / combo_hours;
  EXPECT_GT(speedup, 1.1);
  EXPECT_LT(speedup, 1.7);
}

TEST(Regression, Fig8ParityKarmaBeatsHybrid) {
  // EXPERIMENTS.md Fig. 8(a): DP-KARMA epoch time below the MP+DP hybrid
  // at equal GPU count for the 2.5B config.
  const graph::TransformerConfig cfg = graph::megatron_config(2);
  const int gpus = 512;
  constexpr std::int64_t kBatch = 8;

  baselines::HybridConfig hybrid;
  hybrid.model = cfg;
  hybrid.num_gpus = gpus;
  hybrid.mp_ways = 4;
  hybrid.batch_per_group = kBatch;
  const auto h = baselines::megatron_hybrid_cost(hybrid, kDevice,
                                                 net::abci_net());
  const double hybrid_hours = baselines::epoch_hours(h, 7'200'000);

  const graph::Model model = graph::make_transformer(cfg, kBatch);
  core::DistributedOptions options;
  options.num_gpus = gpus;
  options.iterations = 2;
  options.planner.anneal_iterations = 0;
  const auto karma = core::plan_data_parallel(model, kDevice, options);
  const double karma_hours =
      7.2e6 / (static_cast<double>(gpus) * kBatch) * karma.iteration_time /
      3600.0;
  EXPECT_LT(karma_hours, hybrid_hours);
  EXPECT_GT(karma_hours, 0.5 * hybrid_hours);  // not implausibly fast
}

TEST(Regression, Table5Resnet200KarmaCheaperInitially) {
  // EXPERIMENTS.md Table V: at 2x the base global batch, growing the
  // per-GPU batch out-of-core is cheaper than doubling the GPUs.
  core::DistributedOptions options;
  options.num_gpus = 200;
  options.iterations = 2;
  options.planner.anneal_iterations = 0;
  const auto dp =
      core::plan_data_parallel(graph::make_resnet200(4), kDevice, options);
  const double dp_cost = 200.0 / (800.0 / dp.iteration_time);

  options.num_gpus = 100;
  const auto karma =
      core::plan_data_parallel(graph::make_resnet200(8), kDevice, options);
  const double karma_cost = 100.0 / (800.0 / karma.iteration_time);
  EXPECT_LT(karma_cost, dp_cost);
}

TEST(Regression, Resnet50FeasibilityCeilingStaysStructured) {
  // The ABCI V100's 384 GiB host DRAM caps ResNet-50's out-of-core batch
  // growth somewhere around 1024 (EXPERIMENTS.md Fig. 5 stops there).
  // Past the ceiling the facade must keep answering with a structured
  // PlanError — never a throw, never a garbage plan — and the
  // feasible-batch bisection must name a usable fallback below the ask.
  const auto engine = api::Engine::create();
  for (const std::int64_t batch : {2048l, 4096l}) {
    api::PlanRequest request;
    request.model = graph::make_resnet50(batch);
    request.device = kDevice;
    request.planner.enable_recompute = true;
    request.planner.anneal_iterations = 0;
    request.probe_feasible_batch = true;
    const auto planned = engine->session().plan(request);
    ASSERT_FALSE(planned.has_value()) << "batch " << batch;
    const api::PlanError& e = planned.error();
    EXPECT_TRUE(e.code == api::PlanErrorCode::kTierOverflow ||
                e.code == api::PlanErrorCode::kNoFeasibleBlocking ||
                e.code == api::PlanErrorCode::kLayerExceedsDevice)
        << api::plan_error_code_name(e.code);
    EXPECT_FALSE(e.message.empty());
    EXPECT_EQ(e.model, request.model.name());
    // The bisection ran and found the nearest batch that does plan:
    // strictly below the ask, still comfortably out-of-core.
    EXPECT_GT(e.probe_candidates, 0) << "batch " << batch;
    ASSERT_GT(e.nearest_feasible_batch, 0) << "batch " << batch;
    EXPECT_LT(e.nearest_feasible_batch, batch);
    EXPECT_GE(e.nearest_feasible_batch, 512);
  }
}

TEST(Regression, AggregateKarmaSpeedupAboveOne) {
  // EXPERIMENTS.md Fig. 5 summary: KARMA+recompute beats the best other
  // OOC method on the representative out-of-core cells.
  const struct {
    graph::Model model;
  } cells[] = {{graph::make_resnet50(384)},
               {graph::make_vgg16(96)},
               {graph::make_wrn28_10(768)}};
  for (const auto& cell : cells) {
    const auto karma = baselines::plan_karma_recompute(cell.model, kDevice);
    const auto checkmate = baselines::plan_checkmate(cell.model, kDevice);
    ASSERT_TRUE(karma && checkmate) << cell.model.name();
    EXPECT_LE(karma->iteration_time, checkmate->iteration_time * 1.0001)
        << cell.model.name();
  }
}

}  // namespace
}  // namespace karma
