// karma::api v2 service semantics (DESIGN.md §11): Engine + PlanFuture,
// single-flight collapse of identical concurrent requests, cooperative
// cancellation / deadlines / candidate budgets with best-so-far partial
// plans, and the cleanliness guarantees around them (a cancelled search
// never poisons the shared cache or later searches' rng-stream
// determinism). This suite is the primary subject of the TSan CI job.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/api/engine.h"
#include "src/cache/plan_cache.h"
#include "src/core/planner.h"
#include "src/graph/model_zoo.h"
#include "src/util/cancel.h"

namespace karma::api {
namespace {

// Exact hit/miss/search counters below; ambient cache configuration must
// not leak in (static init runs before gtest's main).
[[maybe_unused]] const int kCacheEnvGuard = [] {
  unsetenv("KARMA_CACHE_DIR");
  return 0;
}();

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

PlanRequest resnet_request(std::int64_t batch, int anneal_iterations) {
  PlanRequest request;
  request.model = graph::make_resnet50(batch);
  request.device = sim::v100_abci();
  request.planner.enable_recompute = true;
  request.planner.anneal_iterations = anneal_iterations;
  request.probe_feasible_batch = false;
  return request;
}

/// Fresh single-use full search, no cache involvement — the ground truth
/// the engine's answers must be bit-identical to.
std::string serial_baseline_json(const PlanRequest& request) {
  SessionOptions bypass;
  bypass.cache_mode = SessionOptions::CacheMode::kBypass;
  return Engine::create({bypass})->session().plan_or_throw(request).to_json();
}

// ---------------------------------------------------------------------------
// Single-flight
// ---------------------------------------------------------------------------

TEST(EngineSingleFlight, IdenticalStormRunsExactlyOneSearch) {
  const auto engine = Engine::create();
  // Deep enough that the storm threads overlap the leader's search; the
  // "exactly one" guarantee itself is timing-independent (joiners either
  // collapse into the flight or hit the cache the leader filled).
  const PlanRequest request = resnet_request(512, /*anneal=*/150);

  constexpr int kThreads = 16;
  std::vector<std::string> artifacts(kThreads);
  std::barrier sync(kThreads);
  {
    std::vector<std::jthread> threads;
    for (int i = 0; i < kThreads; ++i)
      threads.emplace_back([&, i] {
        Session session = engine->session();
        sync.arrive_and_wait();
        artifacts[static_cast<std::size_t>(i)] =
            session.plan_or_throw(request).to_json();
      });
  }

  const EngineStats stats = engine->stats();
  EXPECT_EQ(stats.requests, 16u);
  EXPECT_EQ(stats.searches, 1u) << stats.describe();
  // Every waiter either joined the flight or hit the cache entry the
  // leader wrote — nobody searched twice, nobody got a different answer.
  EXPECT_EQ(stats.flights_joined + engine->cache_stats().hits(), 15u)
      << stats.describe() << " / " << engine->cache_stats().describe();
  EXPECT_EQ(serial_baseline_json(request), artifacts[0]);
  for (int i = 1; i < kThreads; ++i) EXPECT_EQ(artifacts[0], artifacts[i]);
}

TEST(EngineSingleFlight, DistinctConcurrentRequestsMatchFreshSerialPlans) {
  const auto engine = Engine::create();
  const std::vector<std::int64_t> batches = {128, 192, 256, 320, 384, 448};
  std::vector<std::string> artifacts(batches.size());
  std::barrier sync(static_cast<std::ptrdiff_t>(batches.size()));
  {
    std::vector<std::jthread> threads;
    for (std::size_t i = 0; i < batches.size(); ++i)
      threads.emplace_back([&, i] {
        Session session = engine->session();
        sync.arrive_and_wait();
        artifacts[i] =
            session.plan_or_throw(resnet_request(batches[i], 30)).to_json();
      });
  }
  EXPECT_EQ(engine->stats().searches, batches.size());
  for (std::size_t i = 0; i < batches.size(); ++i)
    EXPECT_EQ(artifacts[i], serial_baseline_json(resnet_request(batches[i], 30)))
        << "batch " << batches[i];
}

TEST(EngineSingleFlight, SequentialRepeatIsACacheHitNotASecondSearch) {
  const auto engine = Engine::create();
  Session session = engine->session();
  const PlanRequest request = resnet_request(256, 30);
  const Plan first = session.plan_or_throw(request);
  const PlanFuture warm = session.plan_async(request);
  // Settled at submission: no flight, no worker, just the cached artifact.
  EXPECT_TRUE(warm.progress().done);
  const auto result = warm.get();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result.value().to_json(), first.to_json());
  EXPECT_EQ(engine->stats().searches, 1u);
  EXPECT_EQ(engine->cache_stats().memory_hits, 1u);
}

// ---------------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------------

TEST(EngineCancel, CancelMidAnnealSettlesPromptlyWithPartial) {
  const auto engine = Engine::create();
  Session session = engine->session();
  // An effectively unbounded anneal: without cancellation this search
  // would run for minutes.
  const PlanRequest deep = resnet_request(512, /*anneal=*/50'000'000);
  const PlanFuture future = session.plan_async(deep);

  // Wait for the search to produce a best-so-far (first feasible Opt-1
  // candidate) so the partial attachment is deterministic.
  const auto t0 = std::chrono::steady_clock::now();
  while (!future.progress().has_best && seconds_since(t0) < 30.0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_TRUE(future.progress().has_best) << "search never got going";

  future.cancel();
  const auto cancel_t0 = std::chrono::steady_clock::now();
  const auto outcome = future.get();
  // cancel() settles the caller locally — get() must not wait for the
  // search thread to notice (the cooperative stop happens behind the
  // scenes). Generous bound: this is microseconds in practice.
  EXPECT_LT(seconds_since(cancel_t0), 1.0);
  ASSERT_FALSE(outcome.has_value());
  EXPECT_EQ(outcome.error().code, PlanErrorCode::kCancelled);
  // The best-so-far partial is a usable artifact.
  ASSERT_NE(outcome.error().partial, nullptr);
  EXPECT_GT(outcome.error().partial->blocks().size(), 0u);
  EXPECT_GT(outcome.error().partial->iteration_time, 0.0);
  const auto progress = future.progress();
  EXPECT_TRUE(progress.done);
  EXPECT_GT(progress.candidates, 0);
  EXPECT_EQ(engine->stats().cancelled, 1u);
}

TEST(EngineCancel, CancelledBeforeAnyEvaluationPaysNoSimulation) {
  // Regression for the anneal's poll-before-initial-evaluation fix
  // (solver::anneal used to score energy(init) — one full replay — before
  // its first should_stop poll): a token tripped before the search starts
  // must cost ZERO candidate evaluations, not one per phase. Driven at the
  // planner layer where the evaluation counters are exact.
  CancelToken token = CancelToken::make();
  token.cancel();
  const graph::Model m = graph::make_resnet50(256);
  const core::KarmaPlanner planner(m, sim::v100_abci(), {});
  bool interrupted = false;
  try {
    planner.plan(token);
  } catch (const core::SearchInterrupted& stop) {
    interrupted = true;
    EXPECT_EQ(stop.reason, StopReason::kCancelled);
  }
  EXPECT_TRUE(interrupted);
  EXPECT_EQ(token.candidates(), 0);
  EXPECT_EQ(token.simulations(), 0);
  // No portfolio worker may still be checked in after the unwind.
  EXPECT_EQ(token.active_workers(), 0);
}

TEST(EngineCancel, CancelMidPortfolioLeavesNoWorkerBehind) {
  // The anneal phase now runs N concurrent workers; a cancel during that
  // window must stop ALL of them (each walk polls the shared token), and
  // the worker gauge must return to zero once the future settles.
  const auto engine = Engine::create();
  Session session = engine->session();
  PlanRequest deep = resnet_request(512, /*anneal=*/50'000'000);
  const PlanFuture future = session.plan_async(deep);
  const auto t0 = std::chrono::steady_clock::now();
  while (!future.progress().has_best && seconds_since(t0) < 30.0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_TRUE(future.progress().has_best);
  // Give the search a moment to reach the anneal phase; whether cancel
  // lands before, during, or after the portfolio, the invariants below
  // hold — this test exists so TSan sees the cancel/worker interleaving.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  future.cancel();
  const auto cancel_t0 = std::chrono::steady_clock::now();
  const auto outcome = future.get();
  EXPECT_LT(seconds_since(cancel_t0), 1.0);  // all N workers settled fast
  ASSERT_FALSE(outcome.has_value());
  EXPECT_EQ(outcome.error().code, PlanErrorCode::kCancelled);
  ASSERT_NE(outcome.error().partial, nullptr);
}

TEST(EngineCancel, CancelledSearchPoisonsNeitherCacheNorDeterminism) {
  const auto engine = Engine::create();
  Session session = engine->session();

  // Start a deep search and cancel it mid-anneal.
  const PlanFuture doomed =
      session.plan_async(resnet_request(512, /*anneal=*/50'000'000));
  const auto t0 = std::chrono::steady_clock::now();
  while (!doomed.progress().has_best && seconds_since(t0) < 30.0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  doomed.cancel();
  ASSERT_FALSE(doomed.get().has_value());

  // Nothing of the interrupted search entered the shared cache — neither
  // as an artifact nor as a memoized failure.
  EXPECT_EQ(engine->cache_stats().insertions, 0u);
  EXPECT_EQ(engine->cache_stats().negative_insertions, 0u);

  // And a fresh search on the same engine is bit-identical to a fresh
  // serial one: each planner run builds its own rng stream and memo
  // state, so the cancelled walk left no footprint.
  const PlanRequest request = resnet_request(384, /*anneal=*/40);
  EXPECT_EQ(session.plan_or_throw(request).to_json(),
            serial_baseline_json(request));
}

TEST(EngineCancel, DroppingEveryFutureCancelsAnUnwantedSearch) {
  auto engine = Engine::create();
  {
    const PlanFuture abandoned =
        engine->session().plan_async(resnet_request(512, 50'000'000));
    const auto t0 = std::chrono::steady_clock::now();
    while (abandoned.progress().candidates == 0 && seconds_since(t0) < 30.0)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_GT(abandoned.progress().candidates, 0);
  }  // last handle dropped without get(): interest withdrawn -> cancel
  // The effectively-endless search must now wind down cooperatively; the
  // engine destructor joins its workers, so if the search kept running
  // this reset would hang (and the ctest timeout would flag it).
  engine.reset();
  SUCCEED();
}

// ---------------------------------------------------------------------------
// Deadlines and budgets
// ---------------------------------------------------------------------------

TEST(EngineDeadline, DeadlineBoundedPlanReturnsStructuredError) {
  const auto engine = Engine::create();
  Session session = engine->session();
  PlanRequest deep = resnet_request(512, /*anneal=*/50'000'000);
  deep.limits.deadline = 0.5;  // seconds; the anneal alone would take minutes
  const auto t0 = std::chrono::steady_clock::now();
  const auto outcome = session.plan(deep);
  const double elapsed = seconds_since(t0);
  ASSERT_FALSE(outcome.has_value());
  EXPECT_EQ(outcome.error().code, PlanErrorCode::kDeadline);
  // Cooperative stop: deadline + at most a few candidate evaluations
  // (bounded generously for sanitizer builds; the <100 ms settle-latency
  // acceptance is gated in bench_fig_service_throughput, unsanitized).
  EXPECT_LT(elapsed, 10.0);
  // The synchronous leader's deadline trips inside the search itself (one
  // search ran and was interrupted), not in the wait.
  EXPECT_EQ(engine->stats().searches, 1u) << engine->stats().describe();
  // The shared cache holds nothing from the expired search.
  EXPECT_EQ(engine->cache_stats().insertions, 0u);
  EXPECT_EQ(engine->cache_stats().negative_insertions, 0u);
}

TEST(EngineDeadline, CandidateBudgetStopsSearchWithBestSoFar) {
  const auto engine = Engine::create();
  Session session = engine->session();
  PlanRequest bounded = resnet_request(512, /*anneal=*/2000);
  // Enough budget for several feasible Opt-1 candidates, far below the
  // full search.
  bounded.limits.max_candidates = 25;
  const auto outcome = session.plan(bounded);
  ASSERT_FALSE(outcome.has_value());
  EXPECT_EQ(outcome.error().code, PlanErrorCode::kDeadline);
  EXPECT_NE(outcome.error().message.find("budget"), std::string::npos);
  ASSERT_NE(outcome.error().partial, nullptr);
  // The partial is a complete, usable artifact: it simulates and
  // round-trips like any plan (just possibly unpolished).
  const Plan& partial = *outcome.error().partial;
  EXPECT_GT(partial.blocks().size(), 0u);
  const auto reloaded = Plan::from_json(partial.to_json());
  ASSERT_TRUE(reloaded.has_value());
  EXPECT_EQ(reloaded->simulate().makespan, partial.simulate().makespan);

  // Budgets bound the search, not the artifact: lifting the budget on the
  // same request yields the full-search plan, bit-identical to serial.
  PlanRequest unbounded = bounded;
  unbounded.limits.max_candidates = 0;
  EXPECT_EQ(session.plan_or_throw(unbounded).to_json(),
            serial_baseline_json(unbounded));
}

TEST(EngineDeadline, JoinerBudgetSettlesJoinerWithoutKillingTheFlight) {
  // A joiner's candidate budget must settle the JOINER even though the
  // flight's effective limits stay loose (the leader is unbounded) — and
  // must not truncate the shared search.
  const auto engine = Engine::create();
  Session session = engine->session();
  const PlanRequest deep = resnet_request(512, /*anneal=*/50'000'000);
  const PlanFuture leader = session.plan_async(deep);
  const auto t0 = std::chrono::steady_clock::now();
  while (leader.progress().candidates == 0 && seconds_since(t0) < 30.0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_GT(leader.progress().candidates, 0);

  PlanRequest joiner = deep;
  joiner.limits.max_candidates = 1;
  const auto t1 = std::chrono::steady_clock::now();
  const auto outcome = session.plan(joiner);
  ASSERT_FALSE(outcome.has_value());
  EXPECT_EQ(outcome.error().code, PlanErrorCode::kDeadline);
  EXPECT_NE(outcome.error().message.find("budget"), std::string::npos);
  EXPECT_LT(seconds_since(t1), 10.0);  // settled by the wait, not the search
  // Exactly one search, still running for the leader.
  EXPECT_EQ(engine->stats().searches, 1u);
  EXPECT_FALSE(leader.progress().done);
  leader.cancel();
  EXPECT_EQ(leader.get().error().code, PlanErrorCode::kCancelled);
}

TEST(NegativeCacheInterplay, TruncatedDiagnosisIsNeverMemoizedAsComplete) {
  // Ground truth: the full probed diagnosis of an infeasible request.
  PlanRequest probing;
  probing.model = graph::make_resnet50(2048);  // beyond the ceiling
  probing.device = sim::v100_abci();
  probing.planner.anneal_iterations = 0;
  probing.probe_feasible_batch = true;
  const auto truth = Engine::create()->plan(probing);
  ASSERT_FALSE(truth.has_value());
  const std::int64_t nearest = truth.error().nearest_feasible_batch;
  ASSERT_GE(nearest, 1);

  // A budget that trips somewhere mid-search-or-bisection truncates the
  // diagnosis. Whatever the first outcome was, the SECOND (unbounded)
  // caller must get the complete answer — a truncated diagnosis must
  // never have been memoized as the request's.
  const auto engine = Engine::create();
  Session session = engine->session();
  PlanRequest truncated = probing;
  truncated.limits.max_candidates = 12;
  (void)session.plan(truncated);  // kDeadline or a truncated diagnosis

  const auto second = session.plan(probing);
  ASSERT_FALSE(second.has_value());
  EXPECT_EQ(second.error().nearest_feasible_batch, nearest)
      << (second.error().from_negative_cache
              ? "a truncated diagnosis was served from the negative cache"
              : "fresh diagnosis disagrees with ground truth");
}

TEST(EngineDeadline, LimitsDoNotChangeTheCacheKey) {
  // A deadline-bounded request that finishes in time must hit the cache
  // entry written by an unbounded one: limits are patience, not content.
  const auto engine = Engine::create();
  Session session = engine->session();
  const Plan warm = session.plan_or_throw(resnet_request(256, 30));
  PlanRequest limited = resnet_request(256, 30);
  limited.limits.deadline = 30.0;
  limited.limits.max_candidates = 1;  // would stop any fresh search at once
  const auto hit = session.plan(limited);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->to_json(), warm.to_json());
  EXPECT_EQ(engine->stats().searches, 1u);
}

// ---------------------------------------------------------------------------
// Engine independence (replaces the deleted v1 Session-shim test)
// ---------------------------------------------------------------------------

TEST(EngineIndependence, SeparateEnginesPlanIdenticallyAndShareNothing) {
  // Two private engines answer bit-identically (the search is a pure
  // function of the request) while sharing no in-memory state.
  const auto a = Engine::create();
  const auto b = Engine::create();
  const PlanRequest request = resnet_request(256, 30);
  EXPECT_EQ(a->session().plan_or_throw(request).to_json(),
            b->session().plan_or_throw(request).to_json());
  EXPECT_EQ(a->stats().searches, 1u);
  EXPECT_EQ(b->stats().searches, 1u);  // b never saw a's artifact
  // And the handle exposes its engine for service-level introspection.
  EXPECT_EQ(a->session().engine(), a);
}

}  // namespace
}  // namespace karma::api
