// karma-pland: the cross-process planning daemon (DESIGN.md §12).
//
// Three layers of proof:
//   - DAEMON PROTOCOL: RemoteSession against an in-process Daemon —
//     plans byte-identical to the engine's own, hit-path accounting,
//     admission sheds with retry_after, stats, graceful shutdown.
//   - FLEET SINGLE-FLIGHT: two Engines sharing one cache dir run ONE
//     search between them (claim files; flock conflicts across fds even
//     in one process), and a SIGKILLed claim holder releases followers
//     (kernel drops the flock).
//   - MULTI-PROCESS STORM: fork+exec N karma-planctl clients at one
//     daemon — exactly one search fleet-wide, byte-identical artifacts
//     in every client's output file.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/file.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/api/engine.h"
#include "src/api/remote_session.h"
#include "src/api/request_io.h"
#include "src/cache/disk_store.h"
#include "src/cache/request_key.h"
#include "src/graph/model_zoo.h"
#include "src/pland/daemon.h"

namespace karma {
namespace {

namespace fs = std::filesystem;

/// Tests must not inherit a developer's shared cache.
class KillCacheEnv : public ::testing::Environment {
 public:
  void SetUp() override { unsetenv("KARMA_CACHE_DIR"); }
};
const auto* const kEnv =
    ::testing::AddGlobalTestEnvironment(new KillCacheEnv);

struct TempDir {
  explicit TempDir(const std::string& tag) {
    path = (fs::temp_directory_path() /
            ("karma-pland-" + tag + "-" + std::to_string(::getpid())))
               .string();
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string path;
};

api::PlanRequest resnet_request(std::int64_t batch = 512,
                                int anneal = 30) {
  api::PlanRequest request;
  request.model = graph::make_resnet50(batch);
  request.device = sim::v100_abci();
  request.planner.enable_recompute = true;
  request.planner.anneal_iterations = anneal;
  request.probe_feasible_batch = false;
  return request;
}

/// A started daemon on a fresh socket + cache dir, torn down with the
/// fixture.
struct DaemonFixture {
  explicit DaemonFixture(const std::string& tag,
                         pland::DaemonOptions options = {})
      : dir(tag) {
    options.socket_path = dir.path + "/pland.sock";
    if (options.engine.cache.cache_dir.empty())
      options.engine.cache.cache_dir = dir.path + "/cache";
    daemon = std::make_unique<pland::Daemon>(std::move(options));
  }
  TempDir dir;
  std::unique_ptr<pland::Daemon> daemon;
};

// ---------------------------------------------------------------------------
// Daemon protocol via RemoteSession
// ---------------------------------------------------------------------------

TEST(Daemon, RemotePlanIsByteIdenticalToTheEnginesOwn) {
  DaemonFixture fx("bytes");
  ASSERT_TRUE(fx.daemon->start());
  auto session =
      api::RemoteSession::connect(fx.daemon->socket_path(), "tenant-a");
  ASSERT_TRUE(session.has_value()) << session.error().message;

  const api::PlanRequest request = resnet_request();
  auto remote = session->plan_raw(request);
  ASSERT_TRUE(remote.has_value()) << remote.error().describe();
  // The wire bytes ARE the engine artifact (cache hit path, same engine).
  const auto local = fx.daemon->engine()->plan(request);
  ASSERT_TRUE(local.has_value());
  EXPECT_EQ(remote.value(), local.value().to_json());
  // And the parsed form round-trips.
  auto parsed = session->plan(request);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed.value().to_json(), local.value().to_json());
}

TEST(Daemon, WarmHitsAreServedOnTheHitPathAndCounted) {
  DaemonFixture fx("hits");
  ASSERT_TRUE(fx.daemon->start());
  auto session =
      api::RemoteSession::connect(fx.daemon->socket_path(), "hot");
  ASSERT_TRUE(session.has_value());

  const api::PlanRequest request = resnet_request();
  ASSERT_TRUE(session->plan_raw(request).has_value());  // cold: search
  ASSERT_TRUE(session->plan_raw(request).has_value());  // warm: hit path
  ASSERT_TRUE(session->plan_raw(request).has_value());  // warm again

  const pland::DaemonStats stats = fx.daemon->stats();
  EXPECT_EQ(stats.engine.searches, 1u);
  ASSERT_EQ(stats.tenants.size(), 1u);
  EXPECT_EQ(stats.tenants[0].tenant, "hot");
  EXPECT_EQ(stats.tenants[0].hits, 2u);
  EXPECT_EQ(stats.tenants[0].admitted, 1u);
  EXPECT_EQ(stats.tenants[0].completed, 1u);
  EXPECT_EQ(stats.tenants[0].shed, 0u);
}

TEST(Daemon, AdmissionControlShedsWithRetryAfter) {
  pland::DaemonOptions options;
  options.max_queue_per_tenant = 0;  // every miss sheds immediately
  options.retry_after = 1.5;
  DaemonFixture fx("shed", std::move(options));
  ASSERT_TRUE(fx.daemon->start());
  auto session =
      api::RemoteSession::connect(fx.daemon->socket_path(), "flood");
  ASSERT_TRUE(session.has_value());

  auto outcome = session->plan(resnet_request());
  ASSERT_FALSE(outcome.has_value());
  EXPECT_EQ(outcome.error().code, api::PlanErrorCode::kOverloaded);
  EXPECT_DOUBLE_EQ(outcome.error().retry_after, 1.5);
  const pland::DaemonStats stats = fx.daemon->stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.engine.searches, 0u);  // shed before any search
}

TEST(Daemon, PingStatsAndRemoteShutdown) {
  DaemonFixture fx("ctl");
  ASSERT_TRUE(fx.daemon->start());
  auto session = api::RemoteSession::connect(fx.daemon->socket_path());
  ASSERT_TRUE(session.has_value());
  EXPECT_TRUE(session->ping());
  auto stats = session->stats_json();
  ASSERT_TRUE(stats.has_value());
  EXPECT_NE(stats.value().find("\"tenants\""), std::string::npos);

  EXPECT_TRUE(session->shutdown_server());
  fx.daemon->wait();  // the shutdown envelope resolves the wait
  EXPECT_FALSE(fx.daemon->running());
  // The socket is gone: new connections fail as kUnavailable.
  auto dead = api::RemoteSession::connect(fx.daemon->socket_path());
  ASSERT_FALSE(dead.has_value());
  EXPECT_EQ(dead.error().code, api::PlanErrorCode::kUnavailable);
}

TEST(Daemon, ShortLivedConnectionsAreReapedAndServiceContinues) {
  // Regression: reader threads and connection slots must be reclaimed as
  // clients hang up, not accumulated until shutdown. Churn through many
  // short-lived connections, then prove the daemon still serves and has
  // reaped the dead readers down to the one live connection.
  DaemonFixture fx("churn");
  ASSERT_TRUE(fx.daemon->start());
  constexpr int kChurn = 24;
  for (int i = 0; i < kChurn; ++i) {
    auto session =
        api::RemoteSession::connect(fx.daemon->socket_path(), "churn");
    ASSERT_TRUE(session.has_value()) << i;
    EXPECT_TRUE(session->ping()) << i;
  }  // ~RemoteSession closes the socket each round
  auto session =
      api::RemoteSession::connect(fx.daemon->socket_path(), "churn");
  ASSERT_TRUE(session.has_value());
  // The accept loop reaps on every poll tick (<= 200 ms apart).
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  EXPECT_LE(fx.daemon->open_connections(), 1u);
  EXPECT_TRUE(session->ping());
  EXPECT_EQ(fx.daemon->stats().connections,
            static_cast<std::uint64_t>(kChurn) + 1);
}

TEST(Daemon, SecondDaemonRefusesALiveSocket) {
  DaemonFixture fx("live");
  ASSERT_TRUE(fx.daemon->start());
  pland::DaemonOptions second;
  second.socket_path = fx.daemon->socket_path();
  second.engine.cache.cache_dir = fx.dir.path + "/cache2";
  pland::Daemon usurper(std::move(second));
  EXPECT_FALSE(usurper.start());
  EXPECT_TRUE(fx.daemon->running());
}

// ---------------------------------------------------------------------------
// Fleet single-flight across Engines sharing one disk store
// ---------------------------------------------------------------------------

TEST(FleetSingleFlight, TwoEnginesOneDirRunExactlyOneSearch) {
  TempDir dir("fleet");
  api::SessionOptions with_dir;
  with_dir.cache_dir = dir.path;
  const auto a = api::Engine::create({with_dir});
  const auto b = api::Engine::create({with_dir});
  const api::PlanRequest request = resnet_request(512, /*anneal=*/120);

  std::string plan_a, plan_b;
  std::thread ta([&] { plan_a = a->session().plan_or_throw(request).to_json(); });
  std::thread tb([&] { plan_b = b->session().plan_or_throw(request).to_json(); });
  ta.join();
  tb.join();

  EXPECT_EQ(plan_a, plan_b);
  // Exactly one of the two engines ran the search; the other either hit
  // the published artifact after waiting on the claim, or joined late and
  // hit directly.
  EXPECT_EQ(a->stats().searches + b->stats().searches, 1u)
      << "a=" << a->stats().describe() << " b=" << b->stats().describe();
}

TEST(FleetSingleFlight, KilledClaimHolderReleasesFollowers) {
  TempDir dir("crash");
  cache::DiskStore store(dir.path);
  const cache::RequestKey key = cache::request_key(resnet_request());
  const std::string claim = store.claim_path(key);

  int ready[2];
  ASSERT_EQ(::pipe(ready), 0);
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: raw syscalls only (async-signal-safe post-fork) — take the
    // claim exactly the way a leader process would, then hang "mid-search"
    // until SIGKILL.
    const int fd = ::open(claim.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (fd < 0 || ::flock(fd, LOCK_EX | LOCK_NB) != 0) ::_exit(1);
    char ok = '1';
    (void)!::write(ready[1], &ok, 1);
    for (;;) ::pause();
  }
  ::close(ready[1]);
  char ok = 0;
  ASSERT_EQ(::read(ready[0], &ok, 1), 1);  // child holds the flock
  ::close(ready[0]);

  // A follower cannot claim while the leader lives...
  EXPECT_FALSE(store.try_claim(key).has_value());

  // ...the leader dies mid-search (no artifact, no unlink)...
  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);

  // ...and the kernel-dropped flock releases the follower: wait_for_entry
  // reports the claim dead, and the follower takes over as leader.
  EXPECT_EQ(store.wait_for_entry(key, CancelToken{}),
            cache::DiskStore::WaitOutcome::kReleased);
  auto takeover = store.try_claim(key);
  EXPECT_TRUE(takeover.has_value());
}

// ---------------------------------------------------------------------------
// Multi-process storm: fork+exec karma-planctl clients
// ---------------------------------------------------------------------------

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(Storm, NClientProcessesColdStormRunsOneSearchByteIdentical) {
  DaemonFixture fx("storm");
  ASSERT_TRUE(fx.daemon->start());

  // The request artifact every client submits.
  const api::PlanRequest request = resnet_request(512, /*anneal=*/60);
  const std::string request_path = fx.dir.path + "/request.json";
  std::ofstream(request_path) << api::request_to_json(request);

  const std::string planctl = std::string(KARMA_BINARY_DIR) +
                              "/karma-planctl";
  ASSERT_TRUE(fs::exists(planctl)) << planctl;

  constexpr int kClients = 8;
  std::vector<pid_t> pids;
  std::vector<std::string> outs;
  for (int i = 0; i < kClients; ++i) {
    outs.push_back(fx.dir.path + "/plan-" + std::to_string(i) + ".json");
    const std::string tenant = "t" + std::to_string(i % 2);
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      ::execl(planctl.c_str(), "karma-planctl", "plan", "--socket",
              fx.daemon->socket_path().c_str(), "--request",
              request_path.c_str(), "--out", outs.back().c_str(),
              "--tenant", tenant.c_str(), static_cast<char*>(nullptr));
      ::_exit(127);  // exec failed
    }
    pids.push_back(pid);
  }
  for (const pid_t pid : pids) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
  }

  // Byte-identical artifacts in every client's output file.
  const std::string first = read_file(outs[0]);
  ASSERT_FALSE(first.empty());
  for (int i = 1; i < kClients; ++i)
    EXPECT_EQ(read_file(outs[i]), first) << outs[i];

  // Exactly one search fleet-wide: the daemon's engine collapsed the
  // storm (in-process single-flight behind the tenant queues).
  const pland::DaemonStats stats = fx.daemon->stats();
  EXPECT_EQ(stats.engine.searches, 1u);
  EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(stats.shed, 0u);
  // Both tenants were served.
  EXPECT_EQ(stats.tenants.size(), 2u);
}

}  // namespace
}  // namespace karma
