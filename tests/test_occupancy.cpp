// The analytic occupancy model of Sec. III-E (Eq. 1-8).
#include "src/core/occupancy.h"

#include <gtest/gtest.h>

#include "src/sim/device.h"

namespace karma::core {
namespace {

sim::DeviceSpec slow_link_device() {
  sim::DeviceSpec d;
  d.memory_capacity = 1000;
  d.peak_flops = 1.0;
  d.device_mem_bw = 1e18;
  d.h2d_bw = 1.0;  // 1 B/s: swaps are slow
  d.d2h_bw = 1.0;
  d.swap_latency = 0.0;
  d.host_mem_bw = 1e18;
  return d;
}

struct Fixture {
  std::vector<sim::Block> blocks;
  std::vector<sim::BlockCost> costs;
};

Fixture make_setup(int nb, Seconds bwd, Bytes act) {
  Fixture s;
  for (int b = 0; b < nb; ++b) {
    s.blocks.push_back({b, b + 1});
    sim::BlockCost c;
    c.fwd_time = bwd / 2;
    c.bwd_time = bwd;
    c.act_bytes = act;
    s.costs.push_back(c);
  }
  return s;
}

TEST(Occupancy, SwapInThroughputIsMinOfThree) {
  // Eq. 4: min(T_FM, T_NM, T_IC) — the PCIe link binds on ABCI.
  const sim::DeviceSpec d = sim::v100_abci();
  EXPECT_DOUBLE_EQ(swap_in_throughput(d), d.h2d_bw);
  sim::DeviceSpec slow_host = d;
  slow_host.host_mem_bw = 1e9;
  EXPECT_DOUBLE_EQ(swap_in_throughput(slow_host), 1e9);
}

TEST(Occupancy, AllResidentIsFullyOccupied) {
  const Fixture s = make_setup(4, 2.0, 100);
  const std::vector<bool> swapped(4, false);
  const auto est = estimate_backward_occupancy(s.blocks, s.costs, swapped,
                                               slow_link_device(), 1000);
  for (double o : est.per_step) EXPECT_DOUBLE_EQ(o, 1.0);
  EXPECT_DOUBLE_EQ(est.mean(), 1.0);
  EXPECT_EQ(est.theta, 4u);  // never caught up (Eq. 7 never holds)
  EXPECT_DOUBLE_EQ(est.backward_time, 8.0);
}

TEST(Occupancy, SlowSwapsDropOccupancyBelowOne) {
  const Fixture s = make_setup(4, 1.0, 100);  // swap-in 100 s vs compute 1 s
  const std::vector<bool> swapped(4, true);
  const auto est = estimate_backward_occupancy(s.blocks, s.costs, swapped,
                                               slow_link_device(), 200);
  EXPECT_LT(est.mean(), 0.5);
  EXPECT_LT(est.theta, 4u);
  EXPECT_GT(est.backward_time, 4.0);
  for (double o : est.per_step) {
    EXPECT_GT(o, 0.0);
    EXPECT_LE(o, 1.0);
  }
}

TEST(Occupancy, FastInterconnectKeepsOccupancyAtOne) {
  // Eq. 7's complement: when transfer outpaces compute the whole run is at
  // 100% device occupancy.
  sim::DeviceSpec fast = slow_link_device();
  fast.h2d_bw = 1e9;
  const Fixture s = make_setup(4, 10.0, 100);
  const std::vector<bool> swapped(4, true);
  const auto est =
      estimate_backward_occupancy(s.blocks, s.costs, swapped, fast, 1000);
  EXPECT_NEAR(est.mean(), 1.0, 1e-6);
  EXPECT_EQ(est.theta, 4u);
}

TEST(Occupancy, ResidentTailDelaysTheta) {
  // Keeping the tail resident gives the prefetcher a head start, moving
  // the catch-up step later — the mechanism behind the capacity-based
  // strategy (Fig. 2b).
  const Fixture s = make_setup(6, 1.0, 10);
  std::vector<bool> all_swapped(6, true);
  std::vector<bool> tail_resident = {true, true, true, true, false, false};
  sim::DeviceSpec d = slow_link_device();
  d.h2d_bw = 8.0;  // swap-in of one block: 1.25 s vs 1 s compute
  const auto eager = estimate_backward_occupancy(s.blocks, s.costs,
                                                 all_swapped, d, 40);
  const auto capacity = estimate_backward_occupancy(s.blocks, s.costs,
                                                    tail_resident, d, 40);
  EXPECT_GE(capacity.theta, eager.theta);
  EXPECT_LT(capacity.backward_time, eager.backward_time);
  EXPECT_GT(capacity.mean(), eager.mean());
}

TEST(Occupancy, BudgetLimitsPrefetchLead) {
  // A tiny activation budget forces just-in-time swaps and lower
  // occupancy (Eq. 3's B_avail shrinking).
  const Fixture s = make_setup(5, 1.0, 100);
  const std::vector<bool> swapped(5, true);
  sim::DeviceSpec d = slow_link_device();
  d.h2d_bw = 120.0;  // slightly slower than compute per block
  const auto tight = estimate_backward_occupancy(s.blocks, s.costs, swapped,
                                                 d, 100);
  const auto roomy = estimate_backward_occupancy(s.blocks, s.costs, swapped,
                                                 d, 10000);
  EXPECT_LE(tight.mean(), roomy.mean() + 1e-12);
}

TEST(Occupancy, SizeMismatchRejected) {
  const Fixture s = make_setup(3, 1.0, 10);
  const std::vector<bool> wrong(2, true);
  EXPECT_THROW(estimate_backward_occupancy(s.blocks, s.costs, wrong,
                                           slow_link_device(), 100),
               std::invalid_argument);
}

TEST(Occupancy, EmptyMeansFullyOccupied) {
  OccupancyEstimate est;
  EXPECT_DOUBLE_EQ(est.mean(), 1.0);
}

}  // namespace
}  // namespace karma::core
