// The discrete-event engine: stream FIFO semantics, dependency chains,
// capacity accounting, overlap, stalls, deadlock detection, determinism.
#include "src/sim/engine.h"

#include <gtest/gtest.h>

namespace karma::sim {
namespace {

/// Device where every derived duration is a round number:
/// 1 B transfers in 1 s per 1 B/s on both DMA directions, no latency.
DeviceSpec unit_device() {
  DeviceSpec d;
  d.name = "unit";
  d.memory_capacity = 1000;
  d.peak_flops = 1.0;
  d.device_mem_bw = 1e18;  // never memory-bound
  d.h2d_bw = 1.0;          // 1 B/s
  d.d2h_bw = 1.0;
  d.swap_latency = 0.0;
  d.cpu_flops = 1.0;
  d.host_mem_bw = 1.0;
  return d;
}

Plan skeleton(int nb, Seconds fwd = 1.0, Seconds bwd = 2.0,
              Bytes act = 100) {
  Plan plan;
  plan.strategy = "engine-test";
  plan.capacity = 1000;
  for (int b = 0; b < nb; ++b) {
    plan.blocks.push_back({b, b + 1});
    BlockCost c;
    c.fwd_time = fwd;
    c.bwd_time = bwd;
    c.act_bytes = act;
    c.boundary_bytes = act / 10;
    plan.costs.push_back(c);
  }
  return plan;
}

Op op(OpKind kind, int block) {
  Op o;
  o.kind = kind;
  o.block = block;
  return o;
}

TEST(Engine, SerialComputeTiming) {
  Plan plan = skeleton(3);
  plan.ops = {op(OpKind::kForward, 0),  op(OpKind::kForward, 1),
              op(OpKind::kForward, 2),  op(OpKind::kBackward, 2),
              op(OpKind::kBackward, 1), op(OpKind::kBackward, 0)};
  const Engine engine(unit_device());
  const ExecutionTrace trace = engine.run(plan);
  // 3 forwards (1 s) + 3 backwards (2 s) strictly serial on one stream.
  EXPECT_DOUBLE_EQ(trace.makespan, 9.0);
  EXPECT_DOUBLE_EQ(trace.compute_busy, 9.0);
  EXPECT_DOUBLE_EQ(trace.occupancy(), 1.0);
  EXPECT_DOUBLE_EQ(trace.compute_stall(), 0.0);
}

TEST(Engine, SwapOutOverlapsCompute) {
  // Fig. 2's premise: the D2H copy of block 0 runs during F1's compute.
  Plan plan = skeleton(2, /*fwd=*/1.0, /*bwd=*/2.0, /*act=*/100);
  plan.ops = {op(OpKind::kForward, 0), op(OpKind::kSwapOut, 0),
              op(OpKind::kForward, 1)};
  // Swap of 100 B at 1 B/s = 100 s, forwards 1 s each.
  const ExecutionTrace trace = Engine(unit_device()).run(plan);
  const OpRecord& f1 = trace.records[2];
  const OpRecord& sout = trace.records[1];
  EXPECT_DOUBLE_EQ(f1.start, 1.0);   // not blocked by the swap
  EXPECT_DOUBLE_EQ(sout.start, 1.0); // starts when F0 completes
  EXPECT_DOUBLE_EQ(trace.makespan, 101.0);
}

TEST(Engine, BackwardWaitsForSwapIn) {
  // The vDNN-style stall: B0 cannot start before Sin0 lands.
  Plan plan = skeleton(2, 1.0, 2.0, 50);
  plan.ops = {op(OpKind::kForward, 0), op(OpKind::kSwapOut, 0),
              op(OpKind::kForward, 1), op(OpKind::kBackward, 1),
              op(OpKind::kSwapIn, 0),  op(OpKind::kBackward, 0)};
  const ExecutionTrace trace = Engine(unit_device()).run(plan);
  const OpRecord& sin = trace.records[4];
  const OpRecord& b0 = trace.records[5];
  // Sin0 depends on Sout0 (same-block chain): starts at 51.
  EXPECT_DOUBLE_EQ(sin.start, 51.0);
  EXPECT_DOUBLE_EQ(sin.end, 101.0);
  EXPECT_DOUBLE_EQ(b0.start, 101.0);
  EXPECT_GT(b0.stall, 0.0);
  EXPECT_LT(trace.occupancy(), 1.0);
}

TEST(Engine, CapacityBlocksSwapIn) {
  // Three blocks of 400 B in a 1200 B device: block 2 is evicted right
  // after its forward, and its swap-in cannot start until the eviction
  // has freed space. Backwards use the schedule builder's convention
  // (alloc 0, free the consumed activations).
  Plan plan = skeleton(3, 1.0, 1.0, 400);
  plan.capacity = 1200;
  Op b2 = op(OpKind::kBackward, 2), b1 = op(OpKind::kBackward, 1),
     b0 = op(OpKind::kBackward, 0);
  b2.alloc = b1.alloc = b0.alloc = 0;
  b2.free = b1.free = b0.free = 400;
  plan.ops = {op(OpKind::kForward, 0), op(OpKind::kForward, 1),
              op(OpKind::kForward, 2), op(OpKind::kSwapOut, 2),
              op(OpKind::kSwapIn, 2),  b2, b1, b0};
  const ExecutionTrace trace = Engine(unit_device()).run(plan);
  const OpRecord& sin2 = trace.records[4];
  const OpRecord& sout2 = trace.records[3];
  // After F0..F2 (1200 used), Sout2 frees 400 at its end; Sin2 needs 400
  // free, so it can only start once Sout2 completed.
  EXPECT_GE(sin2.start, sout2.end);
  EXPECT_LE(trace.peak_resident, 1200);
}

TEST(Engine, DeadlockDetected) {
  // A single block bigger than capacity can never run.
  Plan plan = skeleton(1, 1.0, 1.0, 2000);
  plan.capacity = 100;
  plan.ops = {op(OpKind::kForward, 0)};
  EXPECT_THROW(Engine(unit_device()).run(plan), std::runtime_error);
}

TEST(Engine, DeadlockMessageNamesBlockedOp) {
  Plan plan = skeleton(1, 1.0, 1.0, 2000);
  plan.capacity = 100;
  plan.ops = {op(OpKind::kForward, 0)};
  try {
    Engine(unit_device()).run(plan);
    FAIL() << "expected deadlock";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("F1"), std::string::npos);
  }
}

TEST(Engine, AfterOpDelaysStart) {
  Plan plan = skeleton(2, 1.0, 1.0, 10);
  plan.ops = {op(OpKind::kForward, 0), op(OpKind::kSwapOut, 0),
              op(OpKind::kForward, 1), op(OpKind::kBackward, 1),
              op(OpKind::kSwapIn, 0),  op(OpKind::kBackward, 0)};
  plan.ops[4].after_op = 3;
  const ExecutionTrace trace = Engine(unit_device()).run(plan);
  const OpRecord& gated = trace.records[4];
  const OpRecord& b1 = trace.records[3];
  EXPECT_GE(gated.start, b1.end);
}

TEST(Engine, H2DStreamIsFifo) {
  Plan plan = skeleton(3, 1.0, 1.0, 10);
  plan.ops = {op(OpKind::kForward, 0),  op(OpKind::kSwapOut, 0),
              op(OpKind::kForward, 1),  op(OpKind::kSwapOut, 1),
              op(OpKind::kForward, 2),  op(OpKind::kBackward, 2),
              op(OpKind::kSwapIn, 1),   op(OpKind::kSwapIn, 0),
              op(OpKind::kBackward, 1), op(OpKind::kBackward, 0)};
  const ExecutionTrace trace = Engine(unit_device()).run(plan);
  const OpRecord& sin1 = trace.records[6];
  const OpRecord& sin0 = trace.records[7];
  EXPECT_GE(sin0.start, sin1.end);  // FIFO: issue order is service order
}

TEST(Engine, ExplicitDurationOverrides) {
  Plan plan = skeleton(1, 1.0, 1.0, 10);
  Op ar = op(OpKind::kAllReduce, 0);
  ar.duration = 7.5;
  Op up = op(OpKind::kCpuUpdate, 0);
  up.duration = 2.5;
  plan.ops = {op(OpKind::kForward, 0), op(OpKind::kBackward, 0), ar, up};
  const ExecutionTrace trace = Engine(unit_device()).run(plan);
  EXPECT_DOUBLE_EQ(trace.records[2].duration(), 7.5);
  EXPECT_DOUBLE_EQ(trace.records[3].duration(), 2.5);
  // AR and U run on their own streams after the backward (block chain).
  EXPECT_GE(trace.records[2].start, trace.records[1].end);
  EXPECT_GE(trace.records[3].start, trace.records[2].end);
  EXPECT_DOUBLE_EQ(trace.makespan, 1.0 + 1.0 + 7.5 + 2.5);
}

TEST(Engine, RecomputeDependsOnPredecessorBlock) {
  // R1 must wait for Sin0 (its input is block 0's boundary), even though
  // the compute stream would otherwise be free.
  Plan plan = skeleton(2, 1.0, 1.0, 50);
  Op f1 = op(OpKind::kForward, 1);
  f1.retains = false;
  plan.ops = {op(OpKind::kForward, 0), op(OpKind::kSwapOut, 0), f1,
              op(OpKind::kSwapIn, 0),  op(OpKind::kRecompute, 1),
              op(OpKind::kBackward, 1), op(OpKind::kBackward, 0)};
  const ExecutionTrace trace = Engine(unit_device()).run(plan);
  const OpRecord& sin0 = trace.records[3];
  const OpRecord& r1 = trace.records[4];
  EXPECT_GE(r1.start, sin0.end);
}

TEST(Engine, MemoryConservation) {
  // After a full iteration, the pool should return to empty:
  // peak_resident is bounded and every alloc has a matching free.
  Plan plan = skeleton(2, 1.0, 1.0, 100);
  Op b1 = op(OpKind::kBackward, 1);
  b1.alloc = 0;
  b1.free = 100;
  Op b0 = op(OpKind::kBackward, 0);
  b0.alloc = 0;
  b0.free = 100;
  plan.ops = {op(OpKind::kForward, 0), op(OpKind::kForward, 1), b1, b0};
  const ExecutionTrace trace = Engine(unit_device()).run(plan);
  EXPECT_EQ(trace.peak_resident, 200);
}

TEST(Engine, Determinism) {
  Plan plan = skeleton(4, 1.3, 2.7, 123);
  plan.ops = {op(OpKind::kForward, 0),  op(OpKind::kSwapOut, 0),
              op(OpKind::kForward, 1),  op(OpKind::kSwapOut, 1),
              op(OpKind::kForward, 2),  op(OpKind::kForward, 3),
              op(OpKind::kBackward, 3), op(OpKind::kSwapIn, 1),
              op(OpKind::kSwapIn, 0),   op(OpKind::kBackward, 2),
              op(OpKind::kBackward, 1), op(OpKind::kBackward, 0)};
  const Engine engine(unit_device());
  const ExecutionTrace a = engine.run(plan);
  const ExecutionTrace b = engine.run(plan);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.records[i].start, b.records[i].start);
    EXPECT_DOUBLE_EQ(a.records[i].end, b.records[i].end);
  }
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

TEST(Engine, BackwardProfileChargesRecompute) {
  Plan plan = skeleton(2, 1.0, 2.0, 10);
  Op f1 = op(OpKind::kForward, 1);
  f1.retains = false;
  plan.ops = {op(OpKind::kForward, 0), f1, op(OpKind::kRecompute, 1),
              op(OpKind::kBackward, 1), op(OpKind::kBackward, 0)};
  const ExecutionTrace trace = Engine(unit_device()).run(plan);
  const auto profile = trace.backward_profile(2);
  // Block 1: recompute (1 s) + backward (2 s); block 0: backward only.
  EXPECT_GE(profile[1], 3.0);
  EXPECT_GE(profile[0], 2.0);
  EXPECT_LT(profile[0], profile[1]);
}

TEST(Engine, SwapInThatCanNeverFitThrowsStateDump) {
  // Documented contract (engine.h): a swap-in that can never fit must
  // throw std::runtime_error carrying a state dump. Block 1 stays resident
  // (800 of 1000 B) so block 0's 500 B swap-in can never be satisfied.
  Plan plan = skeleton(2, 1.0, 1.0, 500);
  plan.costs[1].act_bytes = 800;
  plan.ops = {op(OpKind::kForward, 0), op(OpKind::kSwapOut, 0),
              op(OpKind::kForward, 1), op(OpKind::kSwapIn, 0)};
  try {
    Engine(unit_device()).run(plan);
    FAIL() << "expected deadlock";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("deadlock"), std::string::npos);
    EXPECT_NE(what.find("engine-test"), std::string::npos);  // strategy
    EXPECT_NE(what.find("free="), std::string::npos);        // memory state
    EXPECT_NE(what.find("Sin1"), std::string::npos);         // blocked head
  }
}

/// unit_device() extended with round-number host and NVMe tiers.
DeviceSpec tiered_unit_device(Bytes host_cap, Bytes nvme_cap) {
  DeviceSpec d = unit_device();
  d.host_capacity = host_cap;
  d.nvme_capacity = nvme_cap;
  d.nvme_read_bw = 1.0;   // 1 B/s, like the DMA engines
  d.nvme_write_bw = 1.0;
  d.nvme_latency = 0.0;
  return d;
}

Op tier_op(OpKind kind, int block, tier::Tier t) {
  Op o = op(kind, block);
  o.tier = t;
  return o;
}

TEST(Engine, NvmeSwapsRunOnNvmeStreams) {
  // A host swap-out and an NVMe swap-out of different blocks overlap: they
  // occupy different streams (D2H vs NVMe-write).
  const DeviceSpec d = tiered_unit_device(1000, 1000);
  Plan plan = skeleton(2, 1.0, 1.0, 100);
  plan.hierarchy = hierarchy_of(d);
  plan.ops = {op(OpKind::kForward, 0), op(OpKind::kSwapOut, 0),
              op(OpKind::kForward, 1),
              tier_op(OpKind::kSwapOut, 1, tier::Tier::kNvme)};
  const ExecutionTrace trace = Engine(d).run(plan);
  const OpRecord& host_out = trace.records[1];
  const OpRecord& nvme_out = trace.records[3];
  // Both 100 s transfers in flight together from t=2.
  EXPECT_DOUBLE_EQ(host_out.start, 1.0);
  EXPECT_DOUBLE_EQ(nvme_out.start, 2.0);
  EXPECT_LT(nvme_out.start, host_out.end);
  EXPECT_DOUBLE_EQ(trace.makespan, 102.0);
  EXPECT_EQ(trace.peak_host_resident, 100);
  EXPECT_EQ(trace.peak_nvme_resident, 100);
}

TEST(Engine, NvmeTierFullDeadlocksWithLedgerDump) {
  // The NVMe tier holds 150 B; two 100 B evictions target it. The second
  // swap-out can never start: tier-aware deadlock, ledger in the dump.
  const DeviceSpec d = tiered_unit_device(0, 150);
  Plan plan = skeleton(2, 1.0, 1.0, 100);
  plan.hierarchy = hierarchy_of(d);
  plan.ops = {op(OpKind::kForward, 0),
              tier_op(OpKind::kSwapOut, 0, tier::Tier::kNvme),
              op(OpKind::kForward, 1),
              tier_op(OpKind::kSwapOut, 1, tier::Tier::kNvme)};
  try {
    Engine(d).run(plan);
    FAIL() << "expected tier deadlock";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("deadlock"), std::string::npos);
    EXPECT_NE(what.find("on nvme"), std::string::npos);  // blocked eviction
    EXPECT_NE(what.find("ledger"), std::string::npos);   // per-tier state
  }
}

TEST(Engine, HostTierFullDeadlocksWithLedgerDump) {
  // Bounded host DRAM of 150 B, two 100 B host evictions.
  const DeviceSpec d = tiered_unit_device(150, 0);
  Plan plan = skeleton(2, 1.0, 1.0, 100);
  plan.hierarchy = hierarchy_of(d);
  plan.ops = {op(OpKind::kForward, 0), op(OpKind::kSwapOut, 0),
              op(OpKind::kForward, 1), op(OpKind::kSwapOut, 1)};
  try {
    Engine(d).run(plan);
    FAIL() << "expected tier deadlock";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("on host"), std::string::npos);
    EXPECT_NE(what.find("ledger"), std::string::npos);
  }
}

TEST(Engine, SwapInReleasesTierBytes) {
  // Host tier of exactly one payload: the eviction fills DRAM, the
  // prefetch-back empties it, and the run completes — the swap-in must
  // return the bytes to the host ledger for the exact fit to be live.
  const DeviceSpec d = tiered_unit_device(100, 0);
  Plan plan = skeleton(2, 1.0, 1.0, 100);
  plan.hierarchy = hierarchy_of(d);
  Op b1 = op(OpKind::kBackward, 1), b0 = op(OpKind::kBackward, 0);
  b1.alloc = b0.alloc = 0;
  b1.free = b0.free = 100;
  plan.ops = {op(OpKind::kForward, 0), op(OpKind::kSwapOut, 0),
              op(OpKind::kForward, 1), b1,
              op(OpKind::kSwapIn, 0),  b0};
  const ExecutionTrace trace = Engine(d).run(plan);
  EXPECT_EQ(trace.peak_host_resident, 100);
  EXPECT_EQ(trace.peak_nvme_resident, 0);
}

TEST(Engine, ValidateRejectsTierMismatch) {
  // Evicted to host, fetched from NVMe: the plan is structurally wrong.
  const DeviceSpec d = tiered_unit_device(1000, 1000);
  Plan plan = skeleton(1, 1.0, 1.0, 100);
  plan.hierarchy = hierarchy_of(d);
  plan.ops = {op(OpKind::kForward, 0), op(OpKind::kSwapOut, 0),
              tier_op(OpKind::kSwapIn, 0, tier::Tier::kNvme),
              op(OpKind::kBackward, 0)};
  EXPECT_THROW(Engine(d).run(plan), std::logic_error);
}

TEST(Engine, ValidateRejectsNvmeSwapWithoutNvmeTier) {
  Plan plan = skeleton(1, 1.0, 1.0, 100);  // no hierarchy attached
  plan.ops = {op(OpKind::kForward, 0),
              tier_op(OpKind::kSwapOut, 0, tier::Tier::kNvme),
              tier_op(OpKind::kSwapIn, 0, tier::Tier::kNvme),
              op(OpKind::kBackward, 0)};
  EXPECT_THROW(Engine(unit_device()).run(plan), std::logic_error);
}

TEST(Engine, RejectsMissingDurations) {
  Plan plan = skeleton(1);
  Op ar = op(OpKind::kAllReduce, 0);
  plan.ops = {op(OpKind::kForward, 0), op(OpKind::kBackward, 0), ar};
  EXPECT_THROW(Engine(unit_device()).run(plan), std::logic_error);
}

}  // namespace
}  // namespace karma::sim
