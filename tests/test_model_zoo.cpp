// The zoo must reproduce Table III's structural facts: parameter counts,
// depths, skip topology, and the Table IV / Turing-NLG configurations.
#include "src/graph/model_zoo.h"

#include <gtest/gtest.h>

#include "src/graph/memory_model.h"

namespace karma::graph {
namespace {

std::int64_t conv_fc_layers(const Model& m) {
  std::int64_t n = 0;
  for (const auto& l : m.layers())
    if (l.kind == LayerKind::kConv2d || l.kind == LayerKind::kFullyConnected)
      ++n;
  return n;
}

TEST(Zoo, Resnet50MatchesTable3) {
  const Model m = make_resnet50(1);
  EXPECT_GT(m.total_weight_elems(), 25'000'000);   // "> 25M"
  EXPECT_LT(m.total_weight_elems(), 30'000'000);
  // 53 convs + 1 FC weighted layers (50 "named" + downsamples).
  EXPECT_GE(conv_fc_layers(m), 50);
  EXPECT_FALSE(m.is_linear_chain());
}

TEST(Zoo, Resnet200MatchesTable3) {
  const Model m = make_resnet200(1);
  EXPECT_GT(m.total_weight_elems(), 60'000'000);   // "> 64M" ballpark
  EXPECT_GE(conv_fc_layers(m), 200);
}

TEST(Zoo, Vgg16MatchesTable3) {
  const Model m = make_vgg16(1);
  EXPECT_GT(m.total_weight_elems(), 130'000'000);  // "> 169M" w/ FC dominating
  EXPECT_EQ(conv_fc_layers(m), 16);                // the "16" in VGG16
  EXPECT_TRUE(m.is_linear_chain());                // no skips
}

TEST(Zoo, Wrn2810MatchesTable3) {
  const Model m = make_wrn28_10(1);
  EXPECT_GT(m.total_weight_elems(), 36'000'000);   // "> 36M"
  EXPECT_LT(m.total_weight_elems(), 40'000'000);
  EXPECT_GE(conv_fc_layers(m), 28);
}

TEST(Zoo, Resnet1001MatchesTable3) {
  const Model m = make_resnet1001(1);
  EXPECT_GT(m.total_weight_elems(), 10'000'000);   // "> 10M"
  EXPECT_LT(m.total_weight_elems(), 20'000'000);
  EXPECT_GE(conv_fc_layers(m), 1000);              // the 1001 depth
}

TEST(Zoo, UnetMatchesTable3) {
  const Model m = make_unet(1);
  EXPECT_GT(m.total_weight_elems(), 31'000'000);   // "> 31M"
  EXPECT_LT(m.total_weight_elems(), 40'000'000);
  EXPECT_FALSE(m.is_linear_chain());
  // Contracting->expansive skips span many layers (Sec. III-F.4).
  EXPECT_GT(m.max_skip_span(), 10);
}

TEST(Zoo, UnetSkipsLandOnConcats) {
  const Model m = make_unet(1);
  int skip_concats = 0;
  for (const auto& l : m.layers())
    if (l.kind == LayerKind::kConcat && m.preds(l.id).size() == 2) ++skip_concats;
  EXPECT_EQ(skip_concats, 4);  // one per resolution level
}

TEST(Zoo, MegatronConfigsMatchTable4) {
  // Table IV: (H, A, L, P).
  const struct {
    int idx;
    std::int64_t h, a, l;
    double params_b;
  } rows[] = {{0, 1152, 12, 18, 0.7},  {1, 1536, 16, 40, 1.2},
              {2, 1920, 20, 54, 2.5},  {3, 2304, 24, 64, 4.2},
              {4, 3072, 32, 72, 8.3}};
  for (const auto& r : rows) {
    const TransformerConfig cfg = megatron_config(r.idx);
    EXPECT_EQ(cfg.hidden, r.h);
    EXPECT_EQ(cfg.heads, r.a);
    EXPECT_EQ(cfg.layers, r.l);
    const double params_b = static_cast<double>(cfg.approx_params()) / 1e9;
    EXPECT_NEAR(params_b, r.params_b, 0.35 * r.params_b + 0.15)
        << "config " << r.idx;
  }
  EXPECT_THROW(megatron_config(5), std::out_of_range);
  EXPECT_THROW(megatron_config(-1), std::out_of_range);
}

TEST(Zoo, TuringNlgConfig) {
  const TransformerConfig cfg = turing_nlg_config();
  EXPECT_EQ(cfg.hidden, 4256);
  EXPECT_EQ(cfg.heads, 28);
  EXPECT_EQ(cfg.layers, 78);
  EXPECT_NEAR(static_cast<double>(cfg.approx_params()) / 1e9, 17.0, 1.5);
}

TEST(Zoo, TransformerStructure) {
  TransformerConfig cfg;
  cfg.hidden = 64;
  cfg.heads = 4;
  cfg.layers = 3;
  cfg.seq_len = 16;
  cfg.vocab = 100;
  const Model m = make_transformer(cfg, 2);
  m.validate();
  // Residual adds: two per block, with two preds each.
  int residuals = 0;
  for (const auto& l : m.layers())
    if (l.kind == LayerKind::kAdd && m.preds(l.id).size() == 2) ++residuals;
  EXPECT_EQ(residuals, 2 * cfg.layers);
  // fp16 by default.
  EXPECT_EQ(m.dtype_bytes(), 2);
  // Attention cores: one per block.
  int attn = 0;
  for (const auto& l : m.layers())
    if (l.kind == LayerKind::kSelfAttention) ++attn;
  EXPECT_EQ(attn, cfg.layers);
}

TEST(Zoo, TransformerChainIsLinearWithSameLayers) {
  TransformerConfig cfg;
  cfg.hidden = 64;
  cfg.heads = 4;
  cfg.layers = 3;
  cfg.seq_len = 16;
  cfg.vocab = 100;
  const Model full = make_transformer(cfg, 2);
  const Model chain = make_transformer_chain(cfg, 2);
  chain.validate();
  // Residual edges are the ONLY difference: same depth, and layer-for-
  // layer identical kinds, shapes, and weights (so per-layer FLOPs and
  // activation footprints match the residual twin exactly).
  EXPECT_FALSE(full.is_linear_chain());
  EXPECT_TRUE(chain.is_linear_chain());
  ASSERT_EQ(chain.num_layers(), full.num_layers());
  for (std::size_t i = 0; i < full.num_layers(); ++i) {
    const Layer& a = full.layer(static_cast<int>(i));
    const Layer& b = chain.layer(static_cast<int>(i));
    EXPECT_EQ(a.kind, b.kind) << "layer " << i;
    EXPECT_EQ(a.weight_elems, b.weight_elems) << "layer " << i;
    EXPECT_EQ(a.out_shape.numel(), b.out_shape.numel()) << "layer " << i;
  }
  for (const auto& l : chain.layers())
    EXPECT_LE(chain.preds(l.id).size(), 1u) << l.name;
}

TEST(Zoo, TransformerChainAttentionFootprintIsQuadraticInSeqLen) {
  TransformerConfig cfg;
  cfg.hidden = 64;
  cfg.heads = 4;
  cfg.layers = 1;
  cfg.vocab = 100;
  const auto attn_bytes = [&](std::int64_t seq) {
    cfg.seq_len = seq;
    const Model m = make_transformer_chain(cfg, 2);
    for (const auto& l : m.layers())
      if (l.kind == LayerKind::kSelfAttention)
        return layer_memory(l, m.dtype_bytes()).workspace;
    ADD_FAILURE() << "no attention core";
    return Bytes{0};
  };
  // Doubling the context exactly quadruples the attention core's scratch
  // (the materialized batch*heads*S*S score matrix); the linear
  // activation terms ride in the other LayerMemory fields.
  const Bytes at16 = attn_bytes(16), at32 = attn_bytes(32);
  EXPECT_EQ(at32, 4 * at16);
  EXPECT_GT(at16, 0);
}

TEST(Zoo, TransformerRejectsBadConfigs) {
  TransformerConfig bad;
  bad.hidden = 65;  // not divisible by heads
  bad.heads = 4;
  bad.layers = 1;
  EXPECT_THROW(make_transformer(bad, 1), std::invalid_argument);
  bad.hidden = 0;
  EXPECT_THROW(make_transformer(bad, 1), std::invalid_argument);
}

TEST(Zoo, AllCnnsValidateAtMultipleBatches) {
  for (std::int64_t batch : {1, 4}) {
    make_resnet50(batch).validate();
    make_resnet200(batch).validate();
    make_vgg16(batch).validate();
    make_wrn28_10(batch).validate();
    make_unet(batch).validate();
  }
}

TEST(Zoo, MegatronWeightsExceedSingleV100) {
  // The premise of Table IV: these models cannot train on a 16 GiB card —
  // weights + gradients alone overflow it.
  const TransformerConfig cfg = megatron_config(4);  // 8.3B
  const Bytes weight_bytes = cfg.approx_params() * cfg.dtype_bytes;
  EXPECT_GT(2 * weight_bytes, Bytes{16} * 1024 * 1024 * 1024);
}

}  // namespace
}  // namespace karma::graph
