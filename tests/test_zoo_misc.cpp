// The extension workloads: oversized-sample segmenter (intro motivation)
// and the LSTM/attention seq2seq exercising the Sec. III-C.5/6 formulas.
#include <gtest/gtest.h>

#include "src/baselines/strategies.h"
#include "src/core/planner.h"
#include "src/graph/cost_model.h"
#include "src/graph/memory_model.h"
#include "src/graph/model_zoo.h"

namespace karma::graph {
namespace {

TEST(HighRes, SingleSampleExceedsDeviceAt4k) {
  // The intro's motivating case: one 4096^2 sample cannot train in-core
  // on a 16 GiB card.
  const Model m = make_highres_segmenter(1, 4096);
  EXPECT_GT(in_core_footprint(m), Bytes{16} * 1024 * 1024 * 1024);
  m.validate();
}

TEST(HighRes, SmallResolutionFits) {
  const Model m = make_highres_segmenter(1, 512);
  EXPECT_LT(in_core_footprint(m), Bytes{16} * 1024 * 1024 * 1024);
}

TEST(HighRes, KarmaTrainsTheOversizedSample) {
  // KARMA must find a feasible out-of-core plan for batch = 1 where the
  // in-core run is impossible — the "no minimum memory" row of Table I.
  const Model m = make_highres_segmenter(1, 4096);
  const sim::DeviceSpec device = sim::v100_abci();
  EXPECT_FALSE(baselines::plan_incore(m, device).has_value());
  const auto karma = baselines::plan_karma_recompute(m, device);
  ASSERT_TRUE(karma);
  EXPECT_LE(karma->trace.peak_resident, device.memory_capacity);
  EXPECT_GT(karma->iteration_time, 0.0);
}

TEST(HighRes, FootprintScalesQuadraticallyWithResolution) {
  const Bytes small = in_core_footprint(make_highres_segmenter(1, 1024));
  const Bytes big = in_core_footprint(make_highres_segmenter(1, 2048));
  EXPECT_NEAR(static_cast<double>(big) / static_cast<double>(small), 4.0,
              0.5);
}

TEST(Lstm, StructureAndCostPaths) {
  const Model m = make_lstm_seq2seq(4, 64, 256, 2);
  m.validate();
  int lstm_cells = 0, attention = 0;
  Flops lstm_flops = 0.0;
  for (const auto& l : m.layers()) {
    if (l.kind == LayerKind::kLSTM) {
      ++lstm_cells;
      lstm_flops += forward_flops(l);
    }
    if (l.kind == LayerKind::kSelfAttention) ++attention;
  }
  EXPECT_EQ(lstm_cells, 4);  // 2 encoder + 2 decoder
  EXPECT_EQ(attention, 1);
  // Sec. III-C.5: 20 * |Y| per cell.
  EXPECT_DOUBLE_EQ(lstm_flops, 4.0 * 20.0 * (4 * 64 * 256));
}

TEST(Lstm, GateGemmsDominateCellOps) {
  // The FC gate GEMMs must dwarf the 20|Y| combination ops — the reason
  // the paper models them separately.
  const Model m = make_lstm_seq2seq(4, 64, 256, 1);
  Flops fc = 0.0, cell = 0.0;
  for (const auto& l : m.layers()) {
    if (l.kind == LayerKind::kFullyConnected && l.name.find("gates") !=
        std::string::npos)
      fc += forward_flops(l);
    if (l.kind == LayerKind::kLSTM) cell += forward_flops(l);
  }
  EXPECT_GT(fc, 50.0 * cell);
}

TEST(Lstm, PlansOutOfCoreAtLargeBatch) {
  const Model big = make_lstm_seq2seq(256, 256, 2048, 6);
  const sim::DeviceSpec device = sim::v100_abci();
  core::PlannerOptions options;
  options.anneal_iterations = 0;
  if (in_core_footprint(big) <= device.memory_capacity)
    GTEST_SKIP() << "configuration unexpectedly fits";
  const auto result = core::KarmaPlanner(big, device, options).plan();
  EXPECT_LE(result.trace.peak_resident, device.memory_capacity);
}

}  // namespace
}  // namespace karma::graph
