// Opt-1 / Opt-2: the KarmaPlanner end to end.
#include "src/core/planner.h"

#include <gtest/gtest.h>

#include "src/graph/memory_model.h"
#include "src/graph/model_zoo.h"

namespace karma::core {
namespace {

PlannerOptions fast_options(bool recompute) {
  PlannerOptions o;
  o.enable_recompute = recompute;
  o.anneal_iterations = 30;
  return o;
}

TEST(CleanCuts, ChainHasAllPositions) {
  const graph::Model vgg = graph::make_vgg16(1);
  const auto cuts = clean_cut_points(vgg);
  EXPECT_EQ(cuts.size(), vgg.num_layers() + 1);
}

TEST(CleanCuts, ResnetCutsAvoidResidualInteriors) {
  const graph::Model rn = graph::make_resnet50(1);
  const auto cuts = clean_cut_points(rn);
  EXPECT_GT(cuts.size(), 10u);                      // between-block cuts exist
  EXPECT_LT(cuts.size(), rn.num_layers());          // interiors excluded
  EXPECT_EQ(cuts.front(), 0);
  EXPECT_EQ(cuts.back(), static_cast<int>(rn.num_layers()));
  // No cut may be crossed by a non-chain edge.
  for (const int cut : cuts) {
    for (const auto& l : rn.layers())
      for (int s : rn.succs(l.id)) {
        if (s == l.id + 1) continue;
        EXPECT_FALSE(l.id + 1 < cut && cut <= s)
            << "cut " << cut << " crosses edge " << l.id << "->" << s;
      }
  }
}

TEST(Planner, InCoreBatchPlansAtFullOccupancy) {
  const graph::Model m = graph::make_resnet50(64);
  ASSERT_LT(graph::in_core_footprint(m), sim::v100_abci().memory_capacity);
  const KarmaPlanner planner(m, sim::v100_abci(), fast_options(true));
  const PlanResult r = planner.plan();
  EXPECT_NEAR(r.occupancy, 1.0, 1e-9);
}

TEST(Planner, OutOfCoreBatchIsFeasible) {
  const graph::Model m = graph::make_resnet50(512);
  ASSERT_GT(graph::in_core_footprint(m), sim::v100_abci().memory_capacity);
  const KarmaPlanner planner(m, sim::v100_abci(), fast_options(true));
  const PlanResult r = planner.plan();
  EXPECT_GT(r.iteration_time, 0.0);
  EXPECT_LE(r.trace.peak_resident, sim::v100_abci().memory_capacity);
  EXPECT_GT(r.blocks.size(), 1u);
}

TEST(Planner, RecomputeNeverHurts) {
  // Opt-2 only accepts engine-verified improvements, so KARMA+recompute
  // must be at least as fast as plain KARMA on every workload.
  for (std::int64_t batch : {256, 512}) {
    const graph::Model m = graph::make_resnet50(batch);
    const PlanResult plain =
        KarmaPlanner(m, sim::v100_abci(), fast_options(false)).plan();
    const PlanResult recomp =
        KarmaPlanner(m, sim::v100_abci(), fast_options(true)).plan();
    EXPECT_LE(recomp.iteration_time, plain.iteration_time * 1.0001)
        << "batch " << batch;
  }
}

TEST(Planner, ThroughputDegradesGracefullyBeyondMemory) {
  // Fig. 5's shape: samples/s decreases as batch grows beyond capacity,
  // but does not fall off a cliff (the capacity-based strategy).
  const PlanResult small =
      KarmaPlanner(graph::make_resnet50(128), sim::v100_abci(),
                   fast_options(true))
          .plan();
  const PlanResult large =
      KarmaPlanner(graph::make_resnet50(512), sim::v100_abci(),
                   fast_options(true))
          .plan();
  const double tput_small = 128.0 / small.iteration_time;
  const double tput_large = 512.0 / large.iteration_time;
  EXPECT_LT(tput_large, tput_small * 1.05);
  EXPECT_GT(tput_large, tput_small * 0.3);  // no worse than ~3x degradation
}

TEST(Planner, UnetLongSkipBlocksNotSwapped) {
  const graph::Model unet = graph::make_unet(16);  // out-of-core
  const KarmaPlanner planner(unet, sim::v100_abci(), fast_options(true));
  const PlanResult r = planner.plan();
  const auto mask = blocks_with_long_skips(unet, r.blocks);
  for (std::size_t b = 0; b < r.blocks.size(); ++b) {
    if (mask[b]) {
      EXPECT_FALSE(is_swap_policy(r.policies[b]))
          << "contracting-path block " << b << " must not swap (III-F.4)";
    }
  }
}

TEST(Planner, InfeasibleModelThrows) {
  // Weights alone beyond device capacity: single-GPU planning impossible.
  const graph::Model big =
      graph::make_transformer(graph::megatron_config(4), 1);
  const KarmaPlanner planner(big, sim::v100_abci(), fast_options(true));
  EXPECT_THROW(planner.plan(), std::runtime_error);
}

TEST(Planner, DeterministicAcrossRuns) {
  const graph::Model m = graph::make_resnet200(12);
  const KarmaPlanner planner(m, sim::v100_abci(), fast_options(true));
  const PlanResult a = planner.plan();
  const PlanResult b = planner.plan();
  EXPECT_DOUBLE_EQ(a.iteration_time, b.iteration_time);
  ASSERT_EQ(a.blocks.size(), b.blocks.size());
  for (std::size_t i = 0; i < a.blocks.size(); ++i) {
    EXPECT_EQ(a.blocks[i].first_layer, b.blocks[i].first_layer);
    EXPECT_EQ(a.policies[i], b.policies[i]);
  }
}

TEST(Planner, EvaluateRejectsInfeasibleCandidate) {
  const graph::Model m = graph::make_resnet50(512);
  const KarmaPlanner planner(m, sim::v100_abci(), fast_options(true));
  // One giant block cannot fit out-of-core either (its activations exceed
  // device capacity in a single allocation).
  const std::vector<sim::Block> one = {{0, static_cast<int>(m.num_layers())}};
  const std::vector<BlockPolicy> policies = {BlockPolicy::kSwap};
  EXPECT_EQ(planner.evaluate(one, policies, "giant"), std::nullopt);
}

TEST(Planner, BlockingRespectsCleanCuts) {
  const graph::Model m = graph::make_resnet50(384);
  const KarmaPlanner planner(m, sim::v100_abci(), fast_options(true));
  const PlanResult r = planner.plan();
  const auto cuts = clean_cut_points(m);
  for (const auto& blk : r.blocks) {
    EXPECT_TRUE(std::binary_search(cuts.begin(), cuts.end(), blk.first_layer))
        << "boundary " << blk.first_layer << " not a clean cut";
  }
}

}  // namespace
}  // namespace karma::core
