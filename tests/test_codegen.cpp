// Training-script generation (workflow step 5 / Sec. III-H placement
// rules): prefetches precede use, swap-ins synchronize, recomputes wrap
// re-forwards.
#include "src/core/codegen.h"

#include <gtest/gtest.h>

#include "src/core/planner.h"
#include "src/graph/model_zoo.h"

namespace karma::core {
namespace {

sim::Plan karma_plan() {
  // Swap-only planning so the generated script is guaranteed to contain
  // prefetch calls (the recompute wrapping is asserted separately).
  const graph::Model model = graph::make_resnet50(512);
  PlannerOptions options;
  options.anneal_iterations = 0;
  options.enable_recompute = false;
  return KarmaPlanner(model, sim::v100_abci(), options).plan().plan;
}

TEST(Codegen, EmitsValidStructure) {
  const std::string script = generate_training_script(karma_plan());
  EXPECT_NE(script.find("def karma_training_step(model"), std::string::npos);
  EXPECT_NE(script.find("import torch"), std::string::npos);
  EXPECT_NE(script.find(".forward(x)"), std::string::npos);
  EXPECT_NE(script.find(".backward(grad)"), std::string::npos);
  EXPECT_NE(script.find("return x"), std::string::npos);
}

TEST(Codegen, SwapInAlwaysFollowedBySynchronize) {
  // Sec. III-H: "we also synchronize after the prefetch to make sure the
  // data is ready ... or we would risk a significant penalty from page
  // faulting".
  const std::string script = generate_training_script(karma_plan());
  std::size_t pos = 0;
  int prefetches = 0;
  while ((pos = script.find("prefetch_to_device", pos)) != std::string::npos) {
    const std::size_t line_end = script.find('\n', pos);
    const std::size_t next = script.find("synchronize", line_end);
    ASSERT_NE(next, std::string::npos);
    // The synchronize must be the very next statement.
    const std::size_t next_line = script.find('\n', line_end + 1);
    EXPECT_LE(next, next_line);
    ++prefetches;
    pos = line_end;
  }
  EXPECT_GT(prefetches, 0);
}

TEST(Codegen, RecomputeWrappedInRematerialization) {
  // Build a plan with a recompute block to assert the wrapping.
  const graph::Model model = graph::make_resnet200(12);
  PlannerOptions options;
  options.anneal_iterations = 0;
  const auto result = KarmaPlanner(model, sim::v100_abci(), options).plan();
  bool has_recompute = false;
  for (const auto& op : result.plan.ops)
    has_recompute |= op.kind == sim::OpKind::kRecompute;
  if (!has_recompute) GTEST_SKIP() << "plan has no recompute blocks";
  const std::string script = generate_training_script(result.plan);
  EXPECT_NE(script.find("recompute_forward()"), std::string::npos);
}

TEST(Codegen, DeterministicOutput) {
  const sim::Plan plan = karma_plan();
  EXPECT_EQ(generate_training_script(plan), generate_training_script(plan));
}

TEST(Codegen, CustomModelVariable) {
  CodegenOptions options;
  options.model_var = "net";
  const std::string script =
      generate_training_script(karma_plan(), options);
  EXPECT_NE(script.find("def karma_training_step(net"), std::string::npos);
  EXPECT_NE(script.find("net.blocks[0].forward"), std::string::npos);
}

TEST(Codegen, RejectsUnknownFramework) {
  CodegenOptions options;
  options.framework = "tensorflow";  // define-and-run is out of scope
  EXPECT_THROW(generate_training_script(karma_plan(), options),
               std::invalid_argument);
}

TEST(Codegen, DistributedOpsEmitted) {
  // A hand-built plan with the distributed op kinds.
  sim::Plan plan;
  plan.strategy = "dp";
  plan.blocks = {{0, 1}};
  plan.costs.resize(1);
  plan.costs[0].act_bytes = 10;
  plan.capacity = 100;
  sim::Op f;
  f.kind = sim::OpKind::kForward;
  sim::Op b;
  b.kind = sim::OpKind::kBackward;
  sim::Op ar;
  ar.kind = sim::OpKind::kAllReduce;
  ar.duration = 0.1;
  sim::Op up;
  up.kind = sim::OpKind::kCpuUpdate;
  up.duration = 0.1;
  plan.ops = {f, b, ar, up};
  const std::string script = generate_training_script(plan);
  EXPECT_NE(script.find("all_reduce_phase"), std::string::npos);
  EXPECT_NE(script.find("cpu_step"), std::string::npos);
}

}  // namespace
}  // namespace karma::core
