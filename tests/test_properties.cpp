// Cross-cutting property sweeps (parameterized): every (model, batch)
// cell of the Fig. 5 grid must plan feasibly, respect device capacity,
// and behave deterministically; numeric OOC equivalence must hold for
// every block size and policy; and the per-tier ledger must conserve
// bytes class-by-class over randomized distributed schedules
// (DESIGN.md §9).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/api/engine.h"
#include "src/baselines/strategies.h"
#include "src/core/planner.h"
#include "src/graph/memory_model.h"
#include "src/graph/model_zoo.h"
#include "src/sim/trace_check.h"
#include "src/tier/accountant.h"
#include "src/train/data_parallel.h"
#include "src/train/synthetic.h"
#include "src/util/rng.h"

namespace karma {
namespace {

// ---------------- Planner sweep over the Fig. 5 grid ----------------

struct GridCase {
  const char* model;
  std::int64_t batch;
};

graph::Model build(const char* name, std::int64_t batch) {
  const std::string m = name;
  if (m == "ResNet-50") return graph::make_resnet50(batch);
  if (m == "VGG16") return graph::make_vgg16(batch);
  if (m == "ResNet-200") return graph::make_resnet200(batch);
  if (m == "WRN-28-10") return graph::make_wrn28_10(batch);
  if (m == "U-Net") return graph::make_unet(batch);
  throw std::invalid_argument("unknown model");
}

class PlannerGrid : public ::testing::TestWithParam<GridCase> {};

TEST_P(PlannerGrid, PlansFeasiblyWithinCapacity) {
  const GridCase& p = GetParam();
  const graph::Model model = build(p.model, p.batch);
  core::PlannerOptions options;
  options.anneal_iterations = 0;  // keep the sweep fast
  const core::KarmaPlanner planner(model, sim::v100_abci(), options);
  const core::PlanResult result = planner.plan();
  EXPECT_GT(result.iteration_time, 0.0);
  EXPECT_LE(result.trace.peak_resident, sim::v100_abci().memory_capacity)
      << p.model << " b=" << p.batch;
  EXPECT_GT(result.occupancy, 0.2);
  EXPECT_LE(result.occupancy, 1.0 + 1e-9);
  // Plans validate structurally.
  EXPECT_NO_THROW(sim::validate_plan(result.plan));
}

INSTANTIATE_TEST_SUITE_P(
    Fig5Grid, PlannerGrid,
    ::testing::Values(GridCase{"ResNet-50", 128}, GridCase{"ResNet-50", 256},
                      GridCase{"ResNet-50", 512}, GridCase{"ResNet-50", 768},
                      GridCase{"VGG16", 32}, GridCase{"VGG16", 96},
                      GridCase{"VGG16", 160}, GridCase{"ResNet-200", 4},
                      GridCase{"ResNet-200", 12}, GridCase{"ResNet-200", 24},
                      GridCase{"WRN-28-10", 256}, GridCase{"WRN-28-10", 768},
                      GridCase{"U-Net", 8}, GridCase{"U-Net", 24}),
    [](const ::testing::TestParamInfo<GridCase>& info) {
      std::string n = std::string(info.param.model) + "_b" +
                      std::to_string(info.param.batch);
      for (auto& c : n)
        if (c == '-') c = '_';
      return n;
    });

// -------------- Throughput monotonicity along batch axes --------------

class ThroughputShape
    : public ::testing::TestWithParam<std::pair<std::int64_t, std::int64_t>> {
};

TEST_P(ThroughputShape, PerSampleTimeDoesNotImproveBeyondMemory) {
  // Past the capacity cliff, growing the batch cannot make per-sample
  // time better than the in-core regime by more than noise.
  const auto [small, large] = GetParam();
  core::PlannerOptions options;
  options.anneal_iterations = 0;
  const auto rs = core::KarmaPlanner(graph::make_resnet50(small),
                                     sim::v100_abci(), options)
                      .plan();
  const auto rl = core::KarmaPlanner(graph::make_resnet50(large),
                                     sim::v100_abci(), options)
                      .plan();
  const double per_sample_small = rs.iteration_time / static_cast<double>(small);
  const double per_sample_large = rl.iteration_time / static_cast<double>(large);
  EXPECT_GE(per_sample_large, per_sample_small * 0.9);
}

INSTANTIATE_TEST_SUITE_P(Pairs, ThroughputShape,
                         ::testing::Values(std::make_pair(128, 384),
                                           std::make_pair(128, 640),
                                           std::make_pair(256, 768)));

// --------------- Strategy sweep: plans stay within memory ---------------

class StrategySweep : public ::testing::TestWithParam<int> {};

TEST_P(StrategySweep, EveryStrategyRespectsCapacityOnWrn) {
  const auto& entry =
      baselines::all_strategies()[static_cast<std::size_t>(GetParam())];
  const graph::Model model = graph::make_wrn28_10(768);
  const auto result = entry.plan(model, sim::v100_abci());
  if (!result) GTEST_SKIP() << entry.name << " infeasible here";
  EXPECT_LE(result->trace.peak_resident, sim::v100_abci().memory_capacity)
      << entry.name;
  EXPECT_GT(result->occupancy, 0.0);
}

INSTANTIATE_TEST_SUITE_P(All, StrategySweep, ::testing::Range(0, 9));

// ------------- Numeric OOC equivalence across block sizes -------------

class OocBlockSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OocBlockSizes, SwapAndRecomputeExactForEveryPartition) {
  using namespace train;
  const std::size_t per_block = GetParam();
  Rng mrng(404);
  Sequential ref = make_mlp({12, 20, 20, 20, 20, 3}, mrng);
  Rng data_rng(11);
  const SyntheticBatch data = make_synthetic_batch(8, {12}, 3, data_rng);

  ref.zero_grads();
  SoftmaxCrossEntropy loss;
  loss.forward(ref.forward(data.inputs), data.labels);
  ref.backward(loss.grad_logits());

  for (const auto policy :
       {core::BlockPolicy::kSwap, core::BlockPolicy::kRecompute}) {
    Rng rng2(404);
    Sequential net = make_mlp({12, 20, 20, 20, 20, 3}, rng2);
    OocExecutor exec(&net,
                     uniform_ooc_blocks(net.size(), per_block, policy),
                     Bytes{1} << 30);
    exec.compute_gradients(data.inputs, data.labels);
    const auto a = ref.all_grads();
    const auto b = net.all_grads();
    for (std::size_t i = 0; i < a.size(); ++i)
      EXPECT_TRUE(bitwise_equal(*a[i], *b[i]))
          << "policy " << static_cast<int>(policy) << " per_block "
          << per_block << " grad " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, OocBlockSizes,
                         ::testing::Values(1, 2, 3, 4, 9));

// ------------------ DP rank-count equivalence sweep ------------------

class RankSweep : public ::testing::TestWithParam<int> {};

TEST_P(RankSweep, ReplicasInSyncForAnyRankCount) {
  using namespace train;
  const int ranks = GetParam();
  DataParallelConfig c;
  c.ranks = ranks;
  c.lr = 0.05f;
  DataParallelTrainer trainer(
      [](Rng& rng) { return make_mlp({10, 12, 2}, rng); }, 99, c);
  Rng data_rng(3);
  const SyntheticBatch data = make_synthetic_batch(
      static_cast<std::size_t>(ranks) * 4, {10}, 2, data_rng);
  for (int step = 0; step < 3; ++step) trainer.step(data.inputs, data.labels);
  EXPECT_TRUE(trainer.replicas_in_sync());
}

INSTANTIATE_TEST_SUITE_P(Ranks, RankSweep, ::testing::Values(1, 2, 3, 4, 6, 8));

// ------------- Per-tier ledger conservation (DESIGN.md §9) -------------
//
// The bounded multi-iteration host ledger rests on three invariants,
// proved here over randomized inputs rather than hand-picked cases:
//   1. every alloc has a matching free (per residency class, per
//      iteration: activation swap-out <-> swap-in, gradient-out <->
//      update);
//   2. occupancy never exceeds a bounded tier's capacity at any event;
//   3. occupancy returns to the baseline (pinned shards + nothing else)
//      after each iteration and at the end of the trace.

TEST(LedgerConservation, RandomizedAccountantTrafficBalances) {
  // Pure-accountant property: a random charge/release stream (releases
  // never exceeding outstanding) keeps used() equal to the reference sum
  // per class, never overflows, and peaks monotonically.
  Rng rng(0xbead);
  for (int trial = 0; trial < 50; ++trial) {
    tier::TierAccountant ledger(tier::test_hierarchy());
    Bytes outstanding[tier::kNumTiers][tier::kNumResidencyClasses] = {};
    Bytes peak_seen[tier::kNumTiers] = {};
    for (int step = 0; step < 200; ++step) {
      const auto t = static_cast<tier::Tier>(1 + rng.next_below(2));  // host/nvme
      const auto r =
          static_cast<tier::Residency>(rng.next_below(tier::kNumResidencyClasses));
      const auto ti = static_cast<int>(t);
      const auto ri = static_cast<int>(r);
      if (rng.next_below(2) == 0) {
        const Bytes amount = static_cast<Bytes>(rng.next_below(64));
        if (!ledger.fits(t, amount)) {
          EXPECT_THROW(ledger.charge(t, r, amount), std::runtime_error);
          continue;
        }
        ledger.charge(t, r, amount);
        outstanding[ti][ri] += amount;
      } else if (outstanding[ti][ri] > 0) {
        const Bytes amount =
            static_cast<Bytes>(rng.next_below(
                static_cast<std::uint64_t>(outstanding[ti][ri]) + 1));
        ledger.release(t, r, amount);
        outstanding[ti][ri] -= amount;
      } else {
        // Nothing outstanding in this class: any release is mispairing.
        EXPECT_THROW(ledger.release(t, r, 1), std::logic_error);
        continue;
      }
      Bytes total = 0;
      for (int c = 0; c < tier::kNumResidencyClasses; ++c) {
        EXPECT_EQ(ledger.used(t, static_cast<tier::Residency>(c)),
                  outstanding[ti][c]);
        total += outstanding[ti][c];
      }
      EXPECT_EQ(ledger.used(t), total);
      EXPECT_LE(total,
                ledger.hierarchy().spec(t).capacity);
      peak_seen[ti] = std::max(peak_seen[ti], total);
      EXPECT_EQ(ledger.peak(t), peak_seen[ti]);
    }
  }
}

/// Replays a plan's trace through the same per-class lifetime rules the
/// engine uses and checks invariants 1-3 above. Independent of the
/// engine's internals: only plan ops + trace record times are consumed.
void check_ledger_conservation(const sim::Plan& plan,
                               const sim::ExecutionTrace& trace,
                               const std::string& label) {
  ASSERT_EQ(plan.ops.size(), trace.records.size()) << label;

  struct Event {
    Seconds time;
    int order;  // releases before charges at equal times
    int iteration;
    bool is_update;  // gradient consumer: tier resolved during replay
    tier::Tier t;
    tier::Residency r;
    int block;
    Bytes bytes;   // signed: + charge, - release (updates: + consume cap)
  };
  std::vector<Event> events;
  const auto payload_of = [&](const sim::Op& op) {
    return op.bytes != sim::Op::kDefault
               ? op.bytes
               : plan.costs[static_cast<std::size_t>(op.block)].act_bytes;
  };
  for (std::size_t i = 0; i < plan.ops.size(); ++i) {
    const sim::Op& op = plan.ops[i];
    const sim::OpRecord& rec = trace.records[i];
    if (op.residency == tier::Residency::kWeightShard) continue;
    if (op.kind == sim::OpKind::kSwapOut && payload_of(op) > 0) {
      events.push_back({rec.start, 1, op.iteration, false, op.tier,
                        op.residency, op.block, payload_of(op)});
    } else if (op.kind == sim::OpKind::kSwapIn && payload_of(op) > 0 &&
               op.residency == tier::Residency::kActivation) {
      events.push_back({rec.end, 0, op.iteration, false, op.tier,
                        op.residency, op.block, -payload_of(op)});
    } else if (op.kind == sim::OpKind::kCpuUpdate ||
               op.kind == sim::OpKind::kDeviceUpdate) {
      events.push_back({rec.end, 0, op.iteration, true, op.tier,
                        tier::Residency::kGradient, op.block,
                        op.bytes > 0 ? op.bytes : 0});
    }
  }

  // Invariant 1: per iteration and class, charges balance releases.
  std::map<std::pair<int, int>, Bytes> net_by_iter_class;
  for (const Event& e : events)
    net_by_iter_class[{e.iteration, static_cast<int>(e.r)}] +=
        e.is_update ? -e.bytes : e.bytes;
  for (const auto& [key, net] : net_by_iter_class)
    EXPECT_EQ(net, 0) << label << ": iteration " << key.first << " class "
                      << tier::residency_name(
                             static_cast<tier::Residency>(key.second))
                      << " leaks " << net << " B";

  // Invariants 2 + 3: replay chronologically against bounded capacities.
  // An update consumes its block's outstanding gradients from whichever
  // tier the gradient-out charged (not an assumed tier).
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.order < b.order;
  });
  Bytes used[tier::kNumTiers] = {};
  used[static_cast<int>(tier::Tier::kHost)] = plan.host_baseline_resident;
  std::map<std::pair<int, int>, Bytes> grads;  // (block, tier) -> in flight
  for (const Event& e : events) {
    if (e.is_update) {
      Bytes budget = e.bytes > 0 ? e.bytes : tier::TierSpec::kUnbounded;
      for (auto& [key, out] : grads) {
        if (key.first != e.block || out <= 0) continue;
        const Bytes consume = std::min(out, budget);
        out -= consume;
        used[key.second] -= consume;
        budget -= consume;
        if (budget <= 0) break;
      }
      continue;
    }
    used[static_cast<int>(e.t)] += e.bytes;
    if (e.bytes > 0 && e.r == tier::Residency::kGradient)
      grads[{e.block, static_cast<int>(e.t)}] += e.bytes;
    EXPECT_GE(used[static_cast<int>(e.t)],
              e.t == tier::Tier::kHost ? plan.host_baseline_resident : 0)
        << label << ": tier dips below baseline at t=" << e.time;
    if (plan.hierarchy && plan.hierarchy->has(e.t)) {
      const tier::TierSpec& spec = plan.hierarchy->spec(e.t);
      if (!spec.unbounded()) {
        EXPECT_LE(used[static_cast<int>(e.t)], spec.capacity)
            << label << ": tier '" << tier::tier_name(e.t)
            << "' overflows at t=" << e.time;
      }
    }
  }
  EXPECT_EQ(used[static_cast<int>(tier::Tier::kHost)],
            plan.host_baseline_resident)
      << label << ": host does not return to baseline";
  EXPECT_EQ(used[static_cast<int>(tier::Tier::kNvme)], 0)
      << label << ": NVMe does not return to baseline";
}

TEST(LedgerConservation, RandomizedDistributedSchedules) {
  // Randomized multi-iteration distributed pipelines, planned end to end
  // through the facade on both unbounded-host and bounded-host+NVMe
  // devices, must conserve the ledger class-by-class.
  Rng rng(0x5eed5);
  int admitted = 0;
  for (int trial = 0; trial < 12; ++trial) {
    api::PlanRequest request;
    const int config = static_cast<int>(rng.next_below(2));  // 1.2B / 2.5B-ish
    const std::int64_t batch = 2 + 2 * static_cast<std::int64_t>(rng.next_below(2));
    request.model = graph::make_transformer(graph::megatron_config(config), batch);
    request.device =
        rng.next_below(2) == 0 ? sim::v100_abci() : sim::v100_abci_nvme();
    core::DistributedOptions options;
    options.num_gpus = 8 << rng.next_below(4);  // 8..64
    options.iterations = 2 + static_cast<int>(rng.next_below(2));
    options.update = rng.next_below(4) == 0 ? core::UpdateSite::kDevice
                                            : core::UpdateSite::kCpu;
    options.weight_shard_fraction = rng.next_below(2) == 0 ? 1.0 : 0.25;
    request.planner.anneal_iterations = 0;
    request.distributed = options;
    request.probe_feasible_batch = false;

    const auto planned = api::Engine::create()->session().plan(request);
    if (!planned.has_value()) continue;  // infeasible draw: nothing to check
    ++admitted;
    const std::string label = "trial " + std::to_string(trial) + " (" +
                              planned->schedule.strategy + ", " +
                              request.device.name + ")";
    check_ledger_conservation(planned->schedule, planned->trace, label);
    // Cross-check with the independent trace checker.
    for (const auto& v :
         sim::check_trace_invariants(planned->schedule, planned->trace))
      ADD_FAILURE() << label << ": " << v;
  }
  // The sweep must actually exercise the ledger, not skip everything.
  EXPECT_GE(admitted, 6);
}

// ----------------- Engine determinism on planner output -----------------

TEST(Determinism, SameSeedSamePlanSameTrace) {
  const graph::Model model = graph::make_resnet200(12);
  core::PlannerOptions options;
  options.anneal_iterations = 25;
  options.seed = 7;
  const auto a =
      core::KarmaPlanner(model, sim::v100_abci(), options).plan();
  const auto b =
      core::KarmaPlanner(model, sim::v100_abci(), options).plan();
  ASSERT_EQ(a.plan.ops.size(), b.plan.ops.size());
  EXPECT_EQ(a.plan.schedule_string(), b.plan.schedule_string());
  EXPECT_DOUBLE_EQ(a.iteration_time, b.iteration_time);
}

}  // namespace
}  // namespace karma
