// Cross-cutting property sweeps (parameterized): every (model, batch)
// cell of the Fig. 5 grid must plan feasibly, respect device capacity,
// and behave deterministically; numeric OOC equivalence must hold for
// every block size and policy.
#include <gtest/gtest.h>

#include "src/baselines/strategies.h"
#include "src/core/planner.h"
#include "src/graph/memory_model.h"
#include "src/graph/model_zoo.h"
#include "src/train/data_parallel.h"
#include "src/train/synthetic.h"

namespace karma {
namespace {

// ---------------- Planner sweep over the Fig. 5 grid ----------------

struct GridCase {
  const char* model;
  std::int64_t batch;
};

graph::Model build(const char* name, std::int64_t batch) {
  const std::string m = name;
  if (m == "ResNet-50") return graph::make_resnet50(batch);
  if (m == "VGG16") return graph::make_vgg16(batch);
  if (m == "ResNet-200") return graph::make_resnet200(batch);
  if (m == "WRN-28-10") return graph::make_wrn28_10(batch);
  if (m == "U-Net") return graph::make_unet(batch);
  throw std::invalid_argument("unknown model");
}

class PlannerGrid : public ::testing::TestWithParam<GridCase> {};

TEST_P(PlannerGrid, PlansFeasiblyWithinCapacity) {
  const GridCase& p = GetParam();
  const graph::Model model = build(p.model, p.batch);
  core::PlannerOptions options;
  options.anneal_iterations = 0;  // keep the sweep fast
  const core::KarmaPlanner planner(model, sim::v100_abci(), options);
  const core::PlanResult result = planner.plan();
  EXPECT_GT(result.iteration_time, 0.0);
  EXPECT_LE(result.trace.peak_resident, sim::v100_abci().memory_capacity)
      << p.model << " b=" << p.batch;
  EXPECT_GT(result.occupancy, 0.2);
  EXPECT_LE(result.occupancy, 1.0 + 1e-9);
  // Plans validate structurally.
  EXPECT_NO_THROW(sim::validate_plan(result.plan));
}

INSTANTIATE_TEST_SUITE_P(
    Fig5Grid, PlannerGrid,
    ::testing::Values(GridCase{"ResNet-50", 128}, GridCase{"ResNet-50", 256},
                      GridCase{"ResNet-50", 512}, GridCase{"ResNet-50", 768},
                      GridCase{"VGG16", 32}, GridCase{"VGG16", 96},
                      GridCase{"VGG16", 160}, GridCase{"ResNet-200", 4},
                      GridCase{"ResNet-200", 12}, GridCase{"ResNet-200", 24},
                      GridCase{"WRN-28-10", 256}, GridCase{"WRN-28-10", 768},
                      GridCase{"U-Net", 8}, GridCase{"U-Net", 24}),
    [](const ::testing::TestParamInfo<GridCase>& info) {
      std::string n = std::string(info.param.model) + "_b" +
                      std::to_string(info.param.batch);
      for (auto& c : n)
        if (c == '-') c = '_';
      return n;
    });

// -------------- Throughput monotonicity along batch axes --------------

class ThroughputShape
    : public ::testing::TestWithParam<std::pair<std::int64_t, std::int64_t>> {
};

TEST_P(ThroughputShape, PerSampleTimeDoesNotImproveBeyondMemory) {
  // Past the capacity cliff, growing the batch cannot make per-sample
  // time better than the in-core regime by more than noise.
  const auto [small, large] = GetParam();
  core::PlannerOptions options;
  options.anneal_iterations = 0;
  const auto rs = core::KarmaPlanner(graph::make_resnet50(small),
                                     sim::v100_abci(), options)
                      .plan();
  const auto rl = core::KarmaPlanner(graph::make_resnet50(large),
                                     sim::v100_abci(), options)
                      .plan();
  const double per_sample_small = rs.iteration_time / static_cast<double>(small);
  const double per_sample_large = rl.iteration_time / static_cast<double>(large);
  EXPECT_GE(per_sample_large, per_sample_small * 0.9);
}

INSTANTIATE_TEST_SUITE_P(Pairs, ThroughputShape,
                         ::testing::Values(std::make_pair(128, 384),
                                           std::make_pair(128, 640),
                                           std::make_pair(256, 768)));

// --------------- Strategy sweep: plans stay within memory ---------------

class StrategySweep : public ::testing::TestWithParam<int> {};

TEST_P(StrategySweep, EveryStrategyRespectsCapacityOnWrn) {
  const auto& entry =
      baselines::all_strategies()[static_cast<std::size_t>(GetParam())];
  const graph::Model model = graph::make_wrn28_10(768);
  const auto result = entry.plan(model, sim::v100_abci());
  if (!result) GTEST_SKIP() << entry.name << " infeasible here";
  EXPECT_LE(result->trace.peak_resident, sim::v100_abci().memory_capacity)
      << entry.name;
  EXPECT_GT(result->occupancy, 0.0);
}

INSTANTIATE_TEST_SUITE_P(All, StrategySweep, ::testing::Range(0, 9));

// ------------- Numeric OOC equivalence across block sizes -------------

class OocBlockSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OocBlockSizes, SwapAndRecomputeExactForEveryPartition) {
  using namespace train;
  const std::size_t per_block = GetParam();
  Rng mrng(404);
  Sequential ref = make_mlp({12, 20, 20, 20, 20, 3}, mrng);
  Rng data_rng(11);
  const SyntheticBatch data = make_synthetic_batch(8, {12}, 3, data_rng);

  ref.zero_grads();
  SoftmaxCrossEntropy loss;
  loss.forward(ref.forward(data.inputs), data.labels);
  ref.backward(loss.grad_logits());

  for (const auto policy :
       {core::BlockPolicy::kSwap, core::BlockPolicy::kRecompute}) {
    Rng rng2(404);
    Sequential net = make_mlp({12, 20, 20, 20, 20, 3}, rng2);
    OocExecutor exec(&net,
                     uniform_ooc_blocks(net.size(), per_block, policy),
                     Bytes{1} << 30);
    exec.compute_gradients(data.inputs, data.labels);
    const auto a = ref.all_grads();
    const auto b = net.all_grads();
    for (std::size_t i = 0; i < a.size(); ++i)
      EXPECT_TRUE(bitwise_equal(*a[i], *b[i]))
          << "policy " << static_cast<int>(policy) << " per_block "
          << per_block << " grad " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, OocBlockSizes,
                         ::testing::Values(1, 2, 3, 4, 9));

// ------------------ DP rank-count equivalence sweep ------------------

class RankSweep : public ::testing::TestWithParam<int> {};

TEST_P(RankSweep, ReplicasInSyncForAnyRankCount) {
  using namespace train;
  const int ranks = GetParam();
  DataParallelConfig c;
  c.ranks = ranks;
  c.lr = 0.05f;
  DataParallelTrainer trainer(
      [](Rng& rng) { return make_mlp({10, 12, 2}, rng); }, 99, c);
  Rng data_rng(3);
  const SyntheticBatch data = make_synthetic_batch(
      static_cast<std::size_t>(ranks) * 4, {10}, 2, data_rng);
  for (int step = 0; step < 3; ++step) trainer.step(data.inputs, data.labels);
  EXPECT_TRUE(trainer.replicas_in_sync());
}

INSTANTIATE_TEST_SUITE_P(Ranks, RankSweep, ::testing::Values(1, 2, 3, 4, 6, 8));

// ----------------- Engine determinism on planner output -----------------

TEST(Determinism, SameSeedSamePlanSameTrace) {
  const graph::Model model = graph::make_resnet200(12);
  core::PlannerOptions options;
  options.anneal_iterations = 25;
  options.seed = 7;
  const auto a =
      core::KarmaPlanner(model, sim::v100_abci(), options).plan();
  const auto b =
      core::KarmaPlanner(model, sim::v100_abci(), options).plan();
  ASSERT_EQ(a.plan.ops.size(), b.plan.ops.size());
  EXPECT_EQ(a.plan.schedule_string(), b.plan.schedule_string());
  EXPECT_DOUBLE_EQ(a.iteration_time, b.iteration_time);
}

}  // namespace
}  // namespace karma
