// karma::api::Session facade: parity with the legacy entry points,
// deterministic JSON round-trips, executor binding, structured
// infeasibility, the optimizer reserved-host pre-charge, and the golden
// plan-format fixture (regenerate with KARMA_REGEN_GOLDEN=1 ./test_api).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/api/plan_io.h"
#include "src/api/engine.h"
#include "src/core/distributed.h"
#include "src/graph/memory_model.h"
#include "src/graph/model_zoo.h"
#include "src/train/synthetic.h"

namespace karma::api {
namespace {

PlanRequest resnet_request(std::int64_t batch = 512) {
  PlanRequest request;
  request.model = graph::make_resnet50(batch);
  request.device = sim::v100_abci();
  request.planner.enable_recompute = true;
  request.planner.anneal_iterations = 30;
  request.probe_feasible_batch = false;
  return request;
}

/// A linear chain whose per-layer activation bytes are directly
/// controlled: input + `layers` FC layers of `width` features at `batch`.
graph::Model chain_model(int layers, std::int64_t batch, std::int64_t width) {
  graph::Model model("chain-" + std::to_string(layers));
  graph::Layer input;
  input.name = "input";
  input.kind = graph::LayerKind::kInput;
  input.in_shape = input.out_shape = graph::TensorShape({batch, width});
  model.add_layer(std::move(input));
  for (int i = 0; i < layers; ++i) {
    graph::Layer fc;
    fc.name = "fc" + std::to_string(i);
    fc.kind = graph::LayerKind::kFullyConnected;
    fc.in_shape = fc.out_shape = graph::TensorShape({batch, width});
    fc.weight_elems = 64;  // negligible: activations dominate
    model.add_layer(std::move(fc));
  }
  return model;
}

// ---------------------------------------------------------------------------
// Session-only planning guarantees (the legacy-shim parity tests ported:
// the deprecated entry points are gone, so the properties they certified —
// bit-stable planning and a structurally complete distributed pipeline —
// are asserted on the facade alone).
// ---------------------------------------------------------------------------

TEST(Session, PlanningIsDeterministicToTheByte) {
  const PlanRequest request = resnet_request();
  const auto a = Engine::create()->session().plan(request);
  const auto b = Engine::create()->session().plan(request);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  // Equal requests plan to byte-identical artifacts (ops, policies,
  // metrics — everything the JSON schema captures).
  EXPECT_EQ(a->to_json(), b->to_json());
  EXPECT_EQ(a->iteration_time, b->iteration_time);
  EXPECT_EQ(a->policies, b->policies);
}

TEST(Session, DistributedPlansTheFullPipeline) {
  PlanRequest request;
  request.model = graph::make_resnet50(256);
  request.device = sim::v100_abci();
  core::DistributedOptions options;
  options.num_gpus = 16;
  options.iterations = 2;
  request.planner.anneal_iterations = 0;
  request.distributed = options;
  request.probe_feasible_batch = false;

  const auto planned = Engine::create()->session().plan(request);
  ASSERT_TRUE(planned.has_value());
  EXPECT_TRUE(planned->distributed);
  EXPECT_TRUE(planned->weights_resident);  // ResNet-50 fits a V100
  EXPECT_GT(planned->iteration_time, 0.0);
  ASSERT_TRUE(planned->exchange.has_value());
  EXPECT_FALSE(planned->exchange->phases.empty());
  // All five pipeline stages are present and the artifact validates.
  bool has[8] = {};
  for (const auto& op : planned->schedule.ops)
    has[static_cast<int>(op.kind)] = true;
  EXPECT_TRUE(has[static_cast<int>(sim::OpKind::kForward)]);
  EXPECT_TRUE(has[static_cast<int>(sim::OpKind::kBackward)]);
  EXPECT_TRUE(has[static_cast<int>(sim::OpKind::kSwapOut)]);
  EXPECT_TRUE(has[static_cast<int>(sim::OpKind::kAllReduce)]);
  EXPECT_TRUE(has[static_cast<int>(sim::OpKind::kCpuUpdate)]);
  EXPECT_NO_THROW(sim::validate_plan(planned->schedule));
  // And the same request plans the same artifact again.
  const auto again = Engine::create()->session().plan(request);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->to_json(), planned->to_json());
}

TEST(Session, DistributedShardResidencyDeficitIsReported) {
  // A bounded host tier too small for even the pinned weight shards +
  // in-flight gradients must produce a structured per-tier deficit, not a
  // bare "no feasible blocking".
  PlanRequest request;
  request.model = graph::make_transformer(graph::megatron_config(0), 4);
  request.device = sim::v100_abci_nvme();
  request.device.host_capacity = 256_MiB;  // << ~700 MiB of fp16 shards
  core::DistributedOptions options;
  options.num_gpus = 16;
  options.iterations = 2;
  request.planner.anneal_iterations = 0;
  request.distributed = options;
  request.probe_feasible_batch = false;

  const auto planned = Engine::create()->session().plan(request);
  ASSERT_FALSE(planned.has_value());
  const PlanError& error = planned.error();
  EXPECT_EQ(error.code, PlanErrorCode::kTierOverflow);
  ASSERT_FALSE(error.deficits.empty());
  EXPECT_EQ(error.deficits[0].tier, tier::Tier::kHost);
  EXPECT_GT(error.deficits[0].deficit(), 0);
  EXPECT_NE(error.describe().find("weight shards"), std::string::npos);
}

// ---------------------------------------------------------------------------
// JSON round-trip
// ---------------------------------------------------------------------------

TEST(PlanIo, RoundTripIsByteStableAndReplaysIdentically) {
  const auto planned = Engine::create()->session().plan(resnet_request());
  ASSERT_TRUE(planned.has_value());

  const std::string json = planned->to_json();
  const auto reloaded = Plan::from_json(json);
  ASSERT_TRUE(reloaded.has_value()) << reloaded.error().describe();

  // Deterministic: a write-read-write cycle is byte-identical.
  EXPECT_EQ(reloaded->to_json(), json);
  // And the reloaded schedule replays to the same makespan, to the bit.
  EXPECT_EQ(reloaded->simulate().makespan, planned->trace.makespan);
  EXPECT_EQ(reloaded->policies, planned->policies);
  EXPECT_EQ(reloaded->model_name, planned->model_name);
  EXPECT_EQ(reloaded->batch, planned->batch);
}

TEST(PlanIo, RejectsGarbageAndWrongVersions) {
  EXPECT_FALSE(Plan::from_json("not json").has_value());
  EXPECT_FALSE(Plan::from_json("{}").has_value());
  const auto err = Plan::from_json("{\"version\":999}");
  ASSERT_FALSE(err.has_value());
  EXPECT_EQ(err.error().code, PlanErrorCode::kParseError);
}

TEST(PlanIo, RejectsParseableButCorruptArtifacts) {
  const auto planned = Engine::create()->session().plan(resnet_request(256));
  ASSERT_TRUE(planned.has_value());
  const std::string json = planned->to_json();
  // An op pointing at a nonexistent block must not reach the engine.
  const std::string needle = "\"block\":0";
  const auto pos = json.find(needle);
  ASSERT_NE(pos, std::string::npos);
  std::string corrupt = json;
  corrupt.replace(pos, needle.size(), "\"block\":999");
  const auto rejected = Plan::from_json(corrupt);
  ASSERT_FALSE(rejected.has_value());
  EXPECT_EQ(rejected.error().code, PlanErrorCode::kParseError);
}

// ---------------------------------------------------------------------------
// Executor binding
// ---------------------------------------------------------------------------

TEST(Session, BindExecutorDerivesPlannerBlocksExactly) {
  const auto planned = Engine::create()->session().plan(resnet_request(256));
  ASSERT_TRUE(planned.has_value());
  // Same layer count -> the projection is the identity on block ranges.
  const auto derived = planned->derive_ooc_blocks(
      static_cast<std::size_t>(planned->model_layers));
  ASSERT_EQ(derived.size(), planned->blocks().size());
  for (std::size_t b = 0; b < derived.size(); ++b) {
    EXPECT_EQ(static_cast<int>(derived[b].first_layer),
              planned->blocks()[b].first_layer);
    EXPECT_EQ(static_cast<int>(derived[b].last_layer),
              planned->blocks()[b].last_layer);
    EXPECT_EQ(derived[b].policy, planned->policies[b]);
  }
}

TEST(Session, BindExecutorProjectsOntoSmallerNetContiguously) {
  const auto planned = Engine::create()->session().plan(resnet_request(256));
  ASSERT_TRUE(planned.has_value());
  const auto derived = planned->derive_ooc_blocks(7);
  ASSERT_FALSE(derived.empty());
  EXPECT_EQ(derived.front().first_layer, 0u);
  EXPECT_EQ(derived.back().last_layer, 7u);
  for (std::size_t b = 1; b < derived.size(); ++b)
    EXPECT_EQ(derived[b].first_layer, derived[b - 1].last_layer);
}

TEST(Session, BindExecutorRunsTheRealNetwork) {
  const auto planned = Engine::create()->session().plan(resnet_request(256));
  ASSERT_TRUE(planned.has_value());
  Rng rng(1);
  train::Sequential net = train::make_mlp({16, 32, 32, 4}, rng);
  train::OocExecutor exec =
      planned->bind_executor(&net, Bytes{1} << 30);
  const train::SyntheticBatch data =
      train::make_synthetic_batch(8, {16}, 4, rng);
  const train::StepStats stats =
      exec.compute_gradients(data.inputs, data.labels);
  EXPECT_GT(stats.loss, 0.0f);
}

// ---------------------------------------------------------------------------
// Structured infeasibility
// ---------------------------------------------------------------------------

TEST(Session, EmptyModelIsInvalidRequest) {
  PlanRequest request;
  request.device = sim::v100_abci();
  const auto planned = Engine::create()->session().plan(request);
  ASSERT_FALSE(planned.has_value());
  EXPECT_EQ(planned.error().code, PlanErrorCode::kInvalidRequest);
}

TEST(Session, SingleLayerOverflowNamesLayerBlockAndDeficit) {
  PlanRequest request;
  // One FC layer's activations (~16 MiB with allocator overhead) dwarf the
  // 1 MiB test device at batch 8; batch 1 still fits nothing? No — 2 MiB
  // per layer at batch 1 also overflows, so the bisection reports -1 only
  // when truly nothing fits. Use a width where batch 1 fits.
  request.model = chain_model(4, 8, 32768);  // 8*32768*4 = 1 MiB/layer
  request.device = sim::test_device();       // 1 MiB
  const auto planned = Engine::create()->session().plan(request);
  ASSERT_FALSE(planned.has_value());
  const PlanError& error = planned.error();
  EXPECT_EQ(error.code, PlanErrorCode::kLayerExceedsDevice);
  EXPECT_GE(error.violating_layer, 0);
  EXPECT_GE(error.violating_block, 0);
  ASSERT_FALSE(error.deficits.empty());
  EXPECT_EQ(error.deficits[0].tier, tier::Tier::kDevice);
  EXPECT_GT(error.deficits[0].deficit(), 0);
  // Bisection found a batch that does plan.
  EXPECT_GE(error.nearest_feasible_batch, 1);
  EXPECT_LT(error.nearest_feasible_batch, 8);
  // The reported batch really is feasible.
  PlanRequest shrunk = request;
  shrunk.model =
      request.model.with_batch_size(error.nearest_feasible_batch);
  EXPECT_TRUE(Engine::create()->session().plan(shrunk).has_value());
  // describe() carries the essentials for logs.
  const std::string text = error.describe();
  EXPECT_NE(text.find("layer-exceeds-device"), std::string::npos);
  EXPECT_NE(text.find("nearest feasible batch"), std::string::npos);
}

TEST(Session, WeightsOverflowIsDiagnosed) {
  PlanRequest request = resnet_request();
  request.device.memory_capacity = 64_MiB;  // below ResNet-50 weight state
  const auto planned = Engine::create()->session().plan(request);
  ASSERT_FALSE(planned.has_value());
  EXPECT_EQ(planned.error().code, PlanErrorCode::kWeightsExceedDevice);
  ASSERT_FALSE(planned.error().deficits.empty());
  EXPECT_GT(planned.error().deficits[0].deficit(), 0);
}

// ---------------------------------------------------------------------------
// Optimizer reserved-host pre-charge (ROADMAP open item)
// ---------------------------------------------------------------------------

TEST(Session, OptimizerReserveDisplacesSpillToNvme) {
  // Probe: how much host DRAM does the plan's swap set claim when DRAM is
  // ample? (v100_abci_nvme ships 384 GiB.) The blocking is pinned to a
  // single candidate (min==max blocks, no annealing, no recompute) so all
  // three runs plan the same blocks and only the routing can differ —
  // otherwise the engine may legitimately prefer a different blocking
  // whose NVMe swaps overlap the D2H stream.
  PlanRequest request;
  request.model = graph::make_resnet50(384);
  request.device = sim::v100_abci_nvme();
  request.planner.enable_recompute = false;
  request.planner.anneal_iterations = 0;
  request.planner.min_blocks = 12;
  request.planner.max_blocks = 12;
  request.probe_feasible_batch = false;
  const auto probe = Engine::create()->session().plan(request);
  ASSERT_TRUE(probe.has_value());
  Bytes host_spill = 0;
  for (std::size_t b = 0; b < probe->policies.size(); ++b)
    if (probe->policies[b] == core::BlockPolicy::kSwap)
      host_spill += probe->schedule.costs[b].act_bytes;
  ASSERT_GT(host_spill, 0);

  // Shrink DRAM to exactly the swap set: still all-host at reserve 0.
  request.device.host_capacity = host_spill;
  const auto exact = Engine::create()->session().plan(request);
  ASSERT_TRUE(exact.has_value());
  int nvme_at_zero = 0;
  for (const auto p : exact->policies)
    if (p == core::BlockPolicy::kSwapNvme) ++nvme_at_zero;
  EXPECT_EQ(nvme_at_zero, 0);
  EXPECT_EQ(exact->reserved_host_bytes, 0);

  // Charge Adam state (3x parameter bytes pinned in DRAM): the same
  // request must now spill part of the swap set to NVMe, and the engine's
  // host ledger must respect the shrunken tier.
  request.optimizer.kind = OptimizerSpec::Kind::kAdam;
  const auto charged = Engine::create()->session().plan(request);
  ASSERT_TRUE(charged.has_value());
  EXPECT_GT(charged->reserved_host_bytes, 0);
  int nvme_charged = 0;
  for (const auto p : charged->policies)
    if (p == core::BlockPolicy::kSwapNvme) ++nvme_charged;
  EXPECT_GT(nvme_charged, 0)
      << "optimizer reserve did not displace any block to NVMe";
  EXPECT_LE(charged->trace.peak_host_resident,
            request.device.host_capacity - charged->reserved_host_bytes);
}

TEST(TieredPolicies, ReservedHostShiftsRouting) {
  std::vector<sim::Block> blocks = {{0, 1}, {1, 2}, {2, 3}, {3, 4}};
  std::vector<sim::BlockCost> costs(4);
  for (auto& c : costs) c.act_bytes = 100;
  tier::TierSpec host;
  host.capacity = 300;
  host.read_bw = host.write_bw = 1.0;
  tier::TierSpec nvme;
  nvme.capacity = 1000;
  nvme.read_bw = nvme.write_bw = 1.0;
  const auto hierarchy = tier::three_tier(1000, host, nvme);
  // Budget keeps only the tail resident; blocks 0..2 swap and all three
  // fit the 300 B host with no reserve.
  const auto base = core::tiered_policies(blocks, costs, 300, hierarchy);
  EXPECT_EQ(base[0], core::BlockPolicy::kSwap);
  EXPECT_EQ(base[1], core::BlockPolicy::kSwap);
  EXPECT_EQ(base[2], core::BlockPolicy::kSwap);
  // A 200 B reserve leaves room for one payload: the latest swapped block
  // (needed soonest in backward) keeps DRAM, the earlier two spill out.
  const auto reserved =
      core::tiered_policies(blocks, costs, 300, hierarchy, /*reserved=*/200);
  EXPECT_EQ(reserved[0], core::BlockPolicy::kSwapNvme);
  EXPECT_EQ(reserved[1], core::BlockPolicy::kSwapNvme);
  EXPECT_EQ(reserved[2], core::BlockPolicy::kSwap);
}

// ---------------------------------------------------------------------------
// Golden fixture: plan-format drift is a reviewable diff
// ---------------------------------------------------------------------------

/// Hand-built plan with arithmetic-free round numbers, so the fixture is
/// stable across compilers and platforms.
Plan golden_plan() {
  Plan plan;
  plan.model_name = "golden-model";
  plan.batch = 4;
  plan.model_layers = 4;
  plan.device = sim::test_device_tiered();

  plan.schedule.strategy = "golden";
  plan.schedule.blocks = {{0, 2}, {2, 4}};
  sim::BlockCost c0;
  c0.fwd_time = 0.5;
  c0.bwd_time = 1.0;
  c0.act_bytes = 1024;
  c0.boundary_bytes = 256;
  c0.param_bytes = 512;
  c0.grad_bytes = 512;
  sim::BlockCost c1 = c0;
  c1.act_bytes = 2048;
  plan.schedule.costs = {c0, c1};
  plan.schedule.capacity = 4096;
  plan.schedule.baseline_resident = 1024;
  plan.schedule.host_baseline_resident = 512;  // pinned weight shards
  plan.schedule.hierarchy = tier::test_hierarchy();

  sim::Op fwd;
  fwd.kind = sim::OpKind::kForward;
  fwd.block = 0;
  sim::Op out;
  out.kind = sim::OpKind::kSwapOut;
  out.block = 0;
  out.tier = tier::Tier::kNvme;
  sim::Op bwd;
  bwd.kind = sim::OpKind::kBackward;
  bwd.block = 0;
  bwd.duration = 0.25;
  // Distributed-pipeline residency classes: a gradient-out and the
  // CPU update that consumes it (the v2 schema's `residency` field).
  sim::Op gout;
  gout.kind = sim::OpKind::kSwapOut;
  gout.block = 0;
  gout.residency = tier::Residency::kGradient;
  gout.bytes = 512;
  sim::Op up;
  up.kind = sim::OpKind::kCpuUpdate;
  up.block = 0;
  up.residency = tier::Residency::kGradient;
  up.bytes = 512;
  up.duration = 0.125;
  plan.schedule.ops = {fwd, out, bwd, gout, up};
  plan.schedule.stage_of = {1, 2, 3, 4, 5};

  plan.policies = {core::BlockPolicy::kSwapNvme, core::BlockPolicy::kResident};
  plan.iteration_time = 2.5;
  plan.first_iteration_time = 2.5;
  plan.occupancy = 0.75;
  plan.trace.makespan = 2.5;
  plan.trace.peak_resident = 3072;
  plan.trace.peak_host_resident = 0;
  plan.trace.peak_nvme_resident = 1024;
  plan.reserved_host_bytes = 128;

  net::ExchangePlan exchange;
  net::ExchangePhase phase;
  phase.launch_after_block = 1;
  phase.blocks = {0, 1};
  phase.bytes = 1024;
  phase.allreduce_time = 0.125;
  exchange.phases = {phase};
  plan.exchange = exchange;
  plan.distributed = true;
  plan.weights_resident = false;
  return plan;
}

TEST(PlanIo, GoldenFixtureMatches) {
  const std::string path =
      std::string(KARMA_SOURCE_DIR) + "/tests/golden/plan_fixture.json";
  const std::string actual = golden_plan().to_json();

  if (std::getenv("KARMA_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual << "\n";
    GTEST_SKIP() << "regenerated golden fixture at " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing golden fixture " << path
      << " — regenerate with KARMA_REGEN_GOLDEN=1 ./test_api";
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string expected = buffer.str();
  if (!expected.empty() && expected.back() == '\n') expected.pop_back();

  EXPECT_EQ(actual, expected)
      << "plan JSON schema drifted; if intentional, regenerate the fixture "
         "with KARMA_REGEN_GOLDEN=1 and review the diff";
  // The committed fixture must itself load and validate.
  const auto reloaded = Plan::from_json(expected);
  ASSERT_TRUE(reloaded.has_value()) << reloaded.error().describe();
  EXPECT_EQ(reloaded->to_json(), expected);
}

}  // namespace
}  // namespace karma::api
