// karma::cache: request fingerprinting, the two-level plan cache, disk
// robustness (corruption degrades to a miss, never a crash or a wrong
// plan), Session integration, the cached feasibility bisection, and the
// Opt-1/Opt-2 search memoization counters (DESIGN.md §10).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "src/api/engine.h"
#include "src/cache/plan_cache.h"
#include "src/cache/request_key.h"
#include "src/graph/model_zoo.h"
#include "src/util/rng.h"

namespace karma::cache {
namespace {

namespace fs = std::filesystem;

// These tests assert exact hit/miss counters, so ambient cache
// configuration must not leak in: a user's exported KARMA_CACHE_DIR would
// turn cold-path misses into warm disk hits. Cleared before any Session
// is constructed (static init runs before gtest's main).
[[maybe_unused]] const int kCacheEnvGuard = [] {
  unsetenv("KARMA_CACHE_DIR");
  return 0;
}();

/// Unique scratch directory per test, removed on scope exit.
class TempCacheDir {
 public:
  explicit TempCacheDir(const std::string& tag) {
    path_ = (fs::temp_directory_path() /
             ("karma-cache-test-" + tag + "-" + std::to_string(::getpid())))
                .string();
    fs::remove_all(path_);
  }
  ~TempCacheDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

api::PlanRequest resnet_request(std::int64_t batch = 256,
                                int anneal_iterations = 0) {
  api::PlanRequest request;
  request.model = graph::make_resnet50(batch);
  request.device = sim::v100_abci();
  request.planner.enable_recompute = true;
  request.planner.anneal_iterations = anneal_iterations;
  request.probe_feasible_batch = false;
  return request;
}

/// Linear chain with controllable activation bytes (test_api idiom).
graph::Model chain_model(int layers, std::int64_t batch, std::int64_t width,
                         const std::string& name = "") {
  graph::Model model(name.empty() ? "chain-" + std::to_string(layers) : name);
  graph::Layer input;
  input.name = "input";
  input.kind = graph::LayerKind::kInput;
  input.in_shape = input.out_shape = graph::TensorShape({batch, width});
  model.add_layer(std::move(input));
  for (int i = 0; i < layers; ++i) {
    graph::Layer fc;
    fc.name = "fc" + std::to_string(i);
    fc.kind = graph::LayerKind::kFullyConnected;
    fc.in_shape = fc.out_shape = graph::TensorShape({batch, width});
    fc.weight_elems = 64;
    model.add_layer(std::move(fc));
  }
  return model;
}

api::SessionOptions with_dir(const std::string& dir) {
  api::SessionOptions options;
  options.cache_dir = dir;
  return options;
}

// ---------------------------------------------------------------------------
// RequestKey
// ---------------------------------------------------------------------------

TEST(RequestKey, EqualRequestsProduceEqualKeys) {
  const auto a = request_key(resnet_request());
  const auto b = request_key(resnet_request());
  EXPECT_EQ(a, b);
  EXPECT_EQ(request_fingerprint(resnet_request()),
            request_fingerprint(resnet_request()));
  EXPECT_EQ(a.hex().size(), 32u);
  EXPECT_EQ(a.hex().find_first_not_of("0123456789abcdef"), std::string::npos);
}

TEST(RequestKey, EveryPlanAffectingFieldChangesTheKey) {
  const api::PlanRequest base = resnet_request();
  const RequestKey base_key = request_key(base);
  const auto differs = [&](auto mutate, const char* what) {
    api::PlanRequest changed = resnet_request();
    mutate(changed);
    EXPECT_NE(request_key(changed), base_key) << "key ignored: " << what;
  };
  differs([](auto& r) { r.model = graph::make_resnet50(512); }, "batch");
  differs([](auto& r) { r.model = graph::make_vgg16(256); }, "model");
  differs([](auto& r) { r.device.memory_capacity /= 2; }, "device capacity");
  differs([](auto& r) { r.device.h2d_bw *= 2; }, "interconnect bw");
  differs([](auto& r) { r.planner.enable_recompute = false; }, "recompute");
  differs([](auto& r) { r.planner.anneal_iterations = 7; }, "anneal budget");
  differs([](auto& r) { r.planner.seed ^= 1; }, "anneal seed");
  differs([](auto& r) { r.planner.max_blocks = 13; }, "max blocks");
  differs([](auto& r) { r.planner.schedule.prefetch_window = 5; },
          "prefetch window");
  differs([](auto& r) { r.planner.schedule.reserved_host_bytes = 4096; },
          "caller host reserve");
  differs([](auto& r) { r.optimizer.kind = api::OptimizerSpec::Kind::kAdam; },
          "optimizer kind");
  differs([](auto& r) { r.optimizer.state_bytes_per_param_byte = 1.5; },
          "optimizer state override");
  differs([](auto& r) { r.distributed = core::DistributedOptions{}; },
          "distributed presence");
  api::PlanRequest dist_a = resnet_request();
  dist_a.distributed = core::DistributedOptions{};
  api::PlanRequest dist_b = resnet_request();
  dist_b.distributed = core::DistributedOptions{};
  dist_b.distributed->num_gpus = 32;
  EXPECT_NE(request_key(dist_a), request_key(dist_b));
}

TEST(RequestKey, ErrorPathKnobDoesNotChangeTheKey) {
  // probe_feasible_batch shapes the PlanError only, never the artifact —
  // documented exclusion, so warm traffic with a different probe setting
  // still hits.
  api::PlanRequest probing = resnet_request();
  probing.probe_feasible_batch = true;
  EXPECT_EQ(request_key(probing), request_key(resnet_request()));
}

TEST(RequestKey, EdgeInsertionOrderCannotLeakIn) {
  const auto build = [](bool reversed) {
    graph::Model model = chain_model(6, 4, 64, "skips");
    if (reversed) {
      model.add_edge(3, 6);
      model.add_edge(1, 4);
    } else {
      model.add_edge(1, 4);
      model.add_edge(3, 6);
    }
    return model;
  };
  api::PlanRequest a = resnet_request();
  a.model = build(false);
  api::PlanRequest b = resnet_request();
  b.model = build(true);
  EXPECT_EQ(request_fingerprint(a), request_fingerprint(b));
  EXPECT_EQ(request_key(a), request_key(b));
}

// ---------------------------------------------------------------------------
// PlanCache: LRU level
// ---------------------------------------------------------------------------

TEST(PlanCache, ByteCountedLruEvictsColdEntriesAndCounts) {
  // Capacity counts serialized artifact bytes, not entry count (ROADMAP
  // "eviction by resident bytes"): room for two copies of this plan's
  // artifact but not three.
  const api::Plan plan =
      api::Engine::create()->session().plan_or_throw(resnet_request());
  const auto artifact_bytes = static_cast<Bytes>(plan.to_json().size());
  PlanCache::Options options;
  options.memory_capacity_bytes = 2 * artifact_bytes + artifact_bytes / 2;
  PlanCache cache(options);

  const RequestKey k1 = request_key(resnet_request(128));
  const RequestKey k2 = request_key(resnet_request(256));
  const RequestKey k3 = request_key(resnet_request(384));

  EXPECT_FALSE(cache.lookup(k1).has_value());
  cache.insert(k1, plan);
  EXPECT_EQ(cache.stats().resident_bytes,
            static_cast<std::uint64_t>(artifact_bytes));
  cache.insert(k2, plan);
  EXPECT_TRUE(cache.lookup(k1).has_value());  // k1 now hottest
  cache.insert(k3, plan);                     // over budget: evicts k2
  EXPECT_FALSE(cache.lookup(k2).has_value());
  EXPECT_TRUE(cache.lookup(k1).has_value());
  EXPECT_TRUE(cache.lookup(k3).has_value());

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.memory_hits, 3u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.insertions, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.disk_writes, 0u);
  // The gauge tracks what is actually resident and respects the bound.
  EXPECT_EQ(stats.resident_bytes,
            static_cast<std::uint64_t>(2 * artifact_bytes));
  EXPECT_LE(stats.resident_bytes,
            static_cast<std::uint64_t>(options.memory_capacity_bytes));

  cache.clear();
  EXPECT_FALSE(cache.lookup(k1).has_value());
  EXPECT_EQ(cache.stats().resident_bytes, 0u);
}

TEST(PlanCache, OversizedArtifactIsNotAdmittedToMemory) {
  const api::Plan plan =
      api::Engine::create()->session().plan_or_throw(resnet_request());
  PlanCache::Options options;
  options.memory_capacity_bytes =
      static_cast<Bytes>(plan.to_json().size()) / 2;
  PlanCache cache(options);
  cache.insert(request_key(resnet_request(128)), plan);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.insertions, 0u);  // artifact alone exceeds the level
  EXPECT_EQ(stats.resident_bytes, 0u);
  EXPECT_FALSE(cache.lookup(request_key(resnet_request(128))).has_value());
}

// ---------------------------------------------------------------------------
// Disk level: persistence, atomicity discipline, corruption tolerance
// ---------------------------------------------------------------------------

TEST(PlanCacheDisk, WarmSessionLoadsBitIdenticalPlanFromDisk) {
  TempCacheDir dir("warm");
  const api::PlanRequest request = resnet_request();

  const api::Session cold = api::Engine::create({with_dir(dir.path())})->session();
  const api::Plan fresh = cold.plan_or_throw(request);
  EXPECT_EQ(cold.cache_stats().disk_writes, 1u);

  const api::Session warm = api::Engine::create({with_dir(dir.path())})->session();
  const api::Plan reloaded = warm.plan_or_throw(request);
  EXPECT_EQ(reloaded.to_json(), fresh.to_json());
  EXPECT_EQ(warm.cache_stats().disk_hits, 1u);
  EXPECT_EQ(warm.cache_stats().misses, 0u);

  // The disk hit was promoted: a repeat is a memory hit, not a re-parse.
  warm.plan_or_throw(request);
  EXPECT_EQ(warm.cache_stats().memory_hits, 1u);
  EXPECT_EQ(warm.cache_stats().disk_hits, 1u);

  // No temp files left behind by the atomic write discipline. The store's
  // own coordination files (write lock, single-flight claims) are the only
  // non-artifact names allowed.
  for (const auto& entry : fs::directory_iterator(dir.path())) {
    const std::string ext = entry.path().extension().string();
    EXPECT_TRUE(ext == ".json" || ext == ".lock" || ext == ".claim")
        << "stray file: " << entry.path();
  }
}

TEST(PlanCacheDisk, TruncatedAndGarbledEntriesDegradeToCleanMisses) {
  TempCacheDir dir("corrupt");
  const api::PlanRequest request = resnet_request();
  const api::Session cold = api::Engine::create({with_dir(dir.path())})->session();
  const api::Plan fresh = cold.plan_or_throw(request);

  const std::string entry =
      DiskStore(dir.path()).entry_path(request_key(request));
  ASSERT_TRUE(fs::exists(entry));

  // Truncate mid-artifact (a crashed writer without the atomic rename).
  std::string half = fresh.to_json().substr(0, fresh.to_json().size() / 2);
  std::ofstream(entry, std::ios::trunc) << half;
  api::Session truncated = api::Engine::create({with_dir(dir.path())})->session();
  const api::Plan replanned = truncated.plan_or_throw(request);
  EXPECT_EQ(replanned.to_json(), fresh.to_json());  // never a wrong plan
  EXPECT_EQ(truncated.cache_stats().corrupt_entries, 1u);
  EXPECT_EQ(truncated.cache_stats().misses, 1u);

  // The replan healed the entry (atomic overwrite): next session hits.
  api::Session healed = api::Engine::create({with_dir(dir.path())})->session();
  healed.plan_or_throw(request);
  EXPECT_EQ(healed.cache_stats().disk_hits, 1u);

  // Outright garbage.
  std::ofstream(entry, std::ios::trunc) << "not a plan artifact at all";
  api::Session garbled = api::Engine::create({with_dir(dir.path())})->session();
  EXPECT_EQ(garbled.plan_or_throw(request).to_json(), fresh.to_json());
  EXPECT_EQ(garbled.cache_stats().corrupt_entries, 1u);
}

TEST(PlanCacheDisk, PropertyCachedThenReloadedEqualsFreshlyPlanned) {
  // Property test over randomized requests: for any feasible request, the
  // plan served by a warm cache (across a process boundary, modeled by a
  // fresh Session) is bit-identical to planning from scratch with no
  // cache at all.
  TempCacheDir dir("property");
  Rng rng(0xCAFE);
  api::SessionOptions bypass;
  bypass.cache_mode = api::SessionOptions::CacheMode::kBypass;
  int planned = 0;
  for (int draw = 0; draw < 8; ++draw) {
    const int layers = 4 + static_cast<int>(rng.next_below(5));
    const std::int64_t width = 256ll << rng.next_below(3);
    const std::int64_t batch = 4ll << rng.next_below(3);
    api::PlanRequest request;
    request.model = chain_model(layers, batch, width,
                                "prop-" + std::to_string(draw));
    request.device = sim::test_device();
    request.planner.anneal_iterations = static_cast<int>(rng.next_below(3)) * 8;
    request.planner.seed = rng.next_u64();
    request.probe_feasible_batch = false;

    const auto fresh = api::Engine::create({bypass})->session().plan(request);
    const auto cached = api::Engine::create({with_dir(dir.path())})->session().plan(request);
    ASSERT_EQ(fresh.has_value(), cached.has_value()) << "draw " << draw;
    if (!fresh.has_value()) continue;  // infeasible draw: nothing to cache
    ++planned;
    const auto reloaded = api::Engine::create({with_dir(dir.path())})->session().plan(request);
    ASSERT_TRUE(reloaded.has_value());
    EXPECT_EQ(cached->to_json(), fresh->to_json()) << "draw " << draw;
    EXPECT_EQ(reloaded->to_json(), fresh->to_json()) << "draw " << draw;
    // And the reloaded schedule replays to the same makespan, to the bit.
    EXPECT_EQ(reloaded->simulate().makespan, fresh->trace.makespan);
  }
  EXPECT_GE(planned, 4) << "random draws were mostly infeasible; the "
                           "property barely exercised the cache";
}

// ---------------------------------------------------------------------------
// Session cache modes
// ---------------------------------------------------------------------------

TEST(SessionCache, ReadOnlyModeNeverWrites) {
  TempCacheDir dir("readonly");
  api::SessionOptions options = with_dir(dir.path());
  options.cache_mode = api::SessionOptions::CacheMode::kReadOnly;
  const api::Session session = api::Engine::create({options})->session();
  session.plan_or_throw(resnet_request());
  EXPECT_EQ(session.cache_stats().insertions, 0u);
  EXPECT_EQ(session.cache_stats().disk_writes, 0u);
  EXPECT_FALSE(fs::exists(dir.path()));  // store never even created

  // Against a populated store it consults but never mutates: repeated
  // disk hits are NOT promoted into the LRU (that would be an insert).
  api::Engine::create({with_dir(dir.path())})->session().plan_or_throw(resnet_request());
  const api::Session reader = api::Engine::create({options})->session();
  reader.plan_or_throw(resnet_request());
  reader.plan_or_throw(resnet_request());
  EXPECT_EQ(reader.cache_stats().disk_hits, 2u);
  EXPECT_EQ(reader.cache_stats().memory_hits, 0u);
  EXPECT_EQ(reader.cache_stats().insertions, 0u);
}

TEST(SessionCache, BypassModeRunsTheFullSearchEveryTime) {
  api::SessionOptions options;
  options.cache_mode = api::SessionOptions::CacheMode::kBypass;
  const api::Session session = api::Engine::create({options})->session();
  const auto a = session.plan_or_throw(resnet_request());
  const auto b = session.plan_or_throw(resnet_request());
  EXPECT_EQ(a.to_json(), b.to_json());  // determinism, not caching
  EXPECT_EQ(session.cache_stats().lookups(), 0u);
  EXPECT_GT(b.search_stats.simulations, 0);  // really re-searched
}

TEST(SessionCache, DefaultSessionHonorsCacheDirEnv) {
  TempCacheDir dir("env");
  ASSERT_EQ(setenv("KARMA_CACHE_DIR", dir.path().c_str(), 1), 0);
  const api::Session session =
      api::Engine::create()->session();  // defaults pick up the env var
  unsetenv("KARMA_CACHE_DIR");
  EXPECT_EQ(session.options().cache_dir, dir.path());
  session.plan_or_throw(resnet_request());
  EXPECT_EQ(session.cache_stats().disk_writes, 1u);
  EXPECT_TRUE(
      fs::exists(DiskStore(dir.path()).entry_path(request_key(resnet_request()))));
}

TEST(SessionCache, MemoryHitsWithinOneSession) {
  const api::Session session =
      api::Engine::create()->session();  // default: memory LRU, no disk
  const api::Plan first = session.plan_or_throw(resnet_request());
  const api::Plan second = session.plan_or_throw(resnet_request());
  EXPECT_EQ(first.to_json(), second.to_json());
  EXPECT_EQ(session.cache_stats().memory_hits, 1u);
  EXPECT_EQ(session.cache_stats().misses, 1u);
}

// ---------------------------------------------------------------------------
// Feasibility bisection: probe counting + probe caching
// ---------------------------------------------------------------------------

TEST(SessionCache, BisectionReportsAndCachesItsProbes) {
  api::PlanRequest request;
  request.model = chain_model(4, 8, 32768);  // 1 MiB/layer at batch 8
  request.device = sim::test_device();       // 1 MiB device: infeasible
  request.probe_feasible_batch = true;

  // kPositiveOnly: without it the second diagnosis below would be served
  // whole from the negative-result cache (its own test follows) — here we
  // want the bisection to actually re-run against the warmed probe cache.
  api::SessionOptions options;
  options.cache_mode = api::SessionOptions::CacheMode::kPositiveOnly;
  const api::Session session = api::Engine::create({options})->session();
  const auto first = session.plan(request);
  ASSERT_FALSE(first.has_value());
  const api::PlanError& e1 = first.error();
  EXPECT_GE(e1.nearest_feasible_batch, 1);
  EXPECT_GT(e1.probe_candidates, 0);   // satellite: bisection effort visible
  EXPECT_EQ(e1.probe_cache_hits, 0);   // cold cache: every probe planned

  const auto second = session.plan(request);
  ASSERT_FALSE(second.has_value());
  const api::PlanError& e2 = second.error();
  EXPECT_EQ(e2.nearest_feasible_batch, e1.nearest_feasible_batch);
  EXPECT_EQ(e2.probe_candidates, e1.probe_candidates);
  // Successful probes were cached as plan artifacts the first time round.
  EXPECT_GT(e2.probe_cache_hits, 0);
  EXPECT_LE(e2.probe_cache_hits, e2.probe_candidates);
}

// ---------------------------------------------------------------------------
// Negative-result caching (DESIGN.md §11)
// ---------------------------------------------------------------------------

api::PlanRequest infeasible_request() {
  api::PlanRequest request;
  request.model = chain_model(4, 8, 32768);  // 1 MiB/layer at batch 8
  request.device = sim::test_device();       // 1 MiB device: infeasible
  request.probe_feasible_batch = false;
  return request;
}

TEST(NegativeCache, RepeatedInfeasibleProbesAreMemoized) {
  const api::Session session = api::Engine::create()->session();
  const auto first = session.plan(infeasible_request());
  ASSERT_FALSE(first.has_value());
  EXPECT_FALSE(first.error().from_negative_cache);
  EXPECT_EQ(session.cache_stats().negative_insertions, 1u);

  const auto second = session.plan(infeasible_request());
  ASSERT_FALSE(second.has_value());
  EXPECT_TRUE(second.error().from_negative_cache);
  EXPECT_EQ(session.cache_stats().negative_hits, 1u);
  // The memoized diagnosis is the original one, structurally.
  EXPECT_EQ(second.error().code, first.error().code);
  EXPECT_EQ(second.error().message, first.error().message);
  EXPECT_EQ(second.error().deficits.size(), first.error().deficits.size());
}

TEST(NegativeCache, UnprobedEntryCannotAnswerAProbingRequest) {
  const api::Session session = api::Engine::create()->session();
  api::PlanRequest quick = infeasible_request();
  ASSERT_FALSE(session.plan(quick).has_value());  // memoized, unprobed

  // Same RequestKey (the probe knob is excluded from the fingerprint),
  // but this caller wants the bisection: the unprobed entry must miss and
  // the re-diagnosis (with probes) overwrite it.
  api::PlanRequest probing = infeasible_request();
  probing.probe_feasible_batch = true;
  const auto probed = session.plan(probing);
  ASSERT_FALSE(probed.has_value());
  EXPECT_FALSE(probed.error().from_negative_cache);
  EXPECT_GE(probed.error().nearest_feasible_batch, 1);

  // Now both probing and non-probing callers are answered memoized.
  const auto third = session.plan(probing);
  ASSERT_FALSE(third.has_value());
  EXPECT_TRUE(third.error().from_negative_cache);
  EXPECT_EQ(third.error().nearest_feasible_batch,
            probed.error().nearest_feasible_batch);
  const auto fourth = session.plan(quick);
  ASSERT_FALSE(fourth.has_value());
  EXPECT_TRUE(fourth.error().from_negative_cache);
}

TEST(NegativeCache, PositiveOnlyModeRediagnosesEveryTime) {
  api::SessionOptions options;
  options.cache_mode = api::SessionOptions::CacheMode::kPositiveOnly;
  const api::Session session = api::Engine::create({options})->session();
  ASSERT_FALSE(session.plan(infeasible_request()).has_value());
  const auto second = session.plan(infeasible_request());
  ASSERT_FALSE(second.has_value());
  EXPECT_FALSE(second.error().from_negative_cache);
  EXPECT_EQ(session.cache_stats().negative_hits, 0u);
  EXPECT_EQ(session.cache_stats().negative_insertions, 0u);
}

// ---------------------------------------------------------------------------
// Opt-1/Opt-2 search memoization (solver-side)
// ---------------------------------------------------------------------------

TEST(SearchMemo, ResimulationsDropBelowCandidateCount) {
  // Pre-memoization every candidate was one full engine replay, i.e.
  // simulations == candidates. The memo must remove some replays on the
  // standard ResNet-50 search (annealer revisits + Opt-2 greedy rounds)
  // without changing the chosen plan.
  const api::Plan plan =
      api::Engine::create()->session().plan_or_throw(resnet_request(512, /*anneal=*/30));
  const core::SearchStats& s = plan.search_stats;
  EXPECT_GT(s.candidates, 0);
  EXPECT_GT(s.memo_hits, 0);
  EXPECT_LT(s.simulations, s.candidates);
  // Every candidate evaluation request was either a replay or a pure memo
  // serve — exact partition, no double counting.
  EXPECT_EQ(s.simulations + s.memo_hits, s.candidates);
  // The per-block cost memo fires heavily: candidate blockings share
  // almost all their block extents.
  EXPECT_GT(s.block_cost_hits, 0);
  EXPECT_LT(s.block_cost_hits, s.block_cost_lookups);
}

TEST(SearchMemo, MemoizedSearchPlansIdenticallyToUncachedSessions) {
  // The memo is an exact shortcut: two independent full searches (bypass
  // mode, no plan-cache involvement) still agree to the byte.
  api::SessionOptions bypass;
  bypass.cache_mode = api::SessionOptions::CacheMode::kBypass;
  const auto a = api::Engine::create({bypass})->session().plan_or_throw(resnet_request(512, 30));
  const auto b = api::Engine::create({bypass})->session().plan_or_throw(resnet_request(512, 30));
  EXPECT_EQ(a.to_json(), b.to_json());
}

}  // namespace
}  // namespace karma::cache
