// Sec. III-D: memory breakdown by variable class and batch-size
// projection (weights constant, activations linear in batch).
#include "src/graph/memory_model.h"

#include <gtest/gtest.h>

#include "src/graph/model_zoo.h"

namespace karma::graph {
namespace {

TEST(MemoryModel, WeightsAndGradsMatch) {
  Layer l;
  l.kind = LayerKind::kConv2d;
  l.weight_elems = 1000;
  l.in_shape = TensorShape::nchw(2, 4, 8, 8);
  l.out_shape = TensorShape::nchw(2, 8, 8, 8);
  const LayerMemory m = layer_memory(l, 4);
  EXPECT_EQ(m.weights, 4000);
  EXPECT_EQ(m.weight_grads, 4000);
  EXPECT_EQ(m.activation_grads, m.activations);
}

TEST(MemoryModel, AllocatorOverheadApplied) {
  Layer l;
  l.kind = LayerKind::kReLU;
  l.in_shape = l.out_shape = TensorShape::nchw(1, 1, 10, 10);
  MemoryModelOptions opts;
  opts.allocator_overhead = 2.0;
  const LayerMemory loose = layer_memory(l, 4, opts);
  opts.allocator_overhead = 1.0;
  const LayerMemory tight = layer_memory(l, 4, opts);
  EXPECT_EQ(tight.activations, 400);
  EXPECT_EQ(loose.activations, 800);
}

TEST(MemoryModel, ConvWorkspaceFraction) {
  Layer l;
  l.kind = LayerKind::kConv2d;
  l.in_shape = TensorShape::nchw(1, 3, 8, 8);
  l.out_shape = TensorShape::nchw(1, 16, 8, 8);
  MemoryModelOptions opts;
  opts.allocator_overhead = 1.0;
  opts.conv_workspace_frac = 0.5;
  const LayerMemory m = layer_memory(l, 4, opts);
  EXPECT_EQ(m.workspace, m.activations / 2);
}

TEST(MemoryModel, AttentionScoresWorkspace) {
  Layer l;
  l.kind = LayerKind::kSelfAttention;
  l.heads = 2;
  l.in_shape = l.out_shape = TensorShape::nsh(3, 16, 8);
  const LayerMemory m = layer_memory(l, 2);
  EXPECT_EQ(m.workspace, 3 * 2 * 16 * 16 * 2);  // n*heads*s*s*dtype
}

TEST(MemoryModel, ReshapeHasNoActivations) {
  Layer l;
  l.kind = LayerKind::kReshape;
  l.in_shape = l.out_shape = TensorShape::nchw(4, 4, 4, 4);
  const LayerMemory m = layer_memory(l, 4);
  EXPECT_EQ(m.activations, 0);
}

TEST(MemoryModel, RangeAggregation) {
  const Model m = make_vgg16(2);
  const int n = static_cast<int>(m.num_layers());
  const LayerMemory all = range_memory(m, 0, n);
  const LayerMemory first = range_memory(m, 0, n / 2);
  const LayerMemory second = range_memory(m, n / 2, n);
  EXPECT_EQ(all.weights, first.weights + second.weights);
  EXPECT_EQ(all.activations, first.activations + second.activations);
  // Workspace is a max, not a sum.
  EXPECT_EQ(all.workspace, std::max(first.workspace, second.workspace));
  EXPECT_GT(all.resident(), 0);
  EXPECT_EQ(all.total(), all.resident() + all.workspace);
}

TEST(MemoryModel, BatchProjectionWeightsConstantActsLinear) {
  const Model m1 = make_resnet50(1);
  const Model m8 = make_resnet50(8);
  const int n = static_cast<int>(m1.num_layers());
  const LayerMemory a = range_memory(m1, 0, n);
  const LayerMemory b = range_memory(m8, 0, n);
  EXPECT_EQ(a.weights, b.weights);
  EXPECT_NEAR(static_cast<double>(b.activations) /
                  static_cast<double>(a.activations),
              8.0, 0.01);
}

TEST(MemoryModel, InCoreFootprintMonotonicInBatch) {
  Bytes prev = 0;
  for (std::int64_t batch : {1, 2, 4, 8}) {
    const Bytes f = in_core_footprint(make_resnet50(batch));
    EXPECT_GT(f, prev);
    prev = f;
  }
}

// Fig. 5 ground truth: for each model, the paper's first reported batch
// size fits in a 16 GiB V100 and the second does not.
struct Fit {
  const char* name;
  Model (*make)(std::int64_t);
  std::int64_t fits;
  std::int64_t overflows;
};

class Fig5Fits : public ::testing::TestWithParam<Fit> {};

TEST_P(Fig5Fits, FirstBatchFitsSecondOverflows) {
  const Fit& p = GetParam();
  const Bytes capacity = Bytes{16} * 1024 * 1024 * 1024;
  EXPECT_LE(in_core_footprint(p.make(p.fits)), capacity) << p.name;
  EXPECT_GT(in_core_footprint(p.make(p.overflows)), capacity) << p.name;
}

INSTANTIATE_TEST_SUITE_P(
    Models, Fig5Fits,
    ::testing::Values(Fit{"ResNet-50", &make_resnet50, 128, 256},
                      Fit{"VGG16", &make_vgg16, 32, 64},
                      Fit{"ResNet-200", &make_resnet200, 4, 8},
                      Fit{"WRN-28-10", &make_wrn28_10, 256, 512},
                      Fit{"ResNet-1001", &make_resnet1001, 64, 128},
                      Fit{"U-Net", &make_unet, 8, 16}),
    [](const ::testing::TestParamInfo<Fit>& info) {
      std::string n = info.param.name;
      for (auto& c : n)
        if (c == '-') c = '_';
      return n;
    });

}  // namespace
}  // namespace karma::graph
