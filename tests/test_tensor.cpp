#include "src/train/tensor.h"

#include <gtest/gtest.h>

namespace karma::train {
namespace {

TEST(Tensor, ConstructionAndFill) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6u);
  EXPECT_EQ(t.bytes(), 24);
  t.fill(2.5f);
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t.at(i), 2.5f);
  EXPECT_THROW(Tensor({2, 0}), std::invalid_argument);
}

TEST(Tensor, UniformDeterministic) {
  Rng a(5), b(5);
  const Tensor x = Tensor::uniform({4, 4}, a, 1.0f);
  const Tensor y = Tensor::uniform({4, 4}, b, 1.0f);
  EXPECT_TRUE(bitwise_equal(x, y));
}

TEST(Tensor, EvictionRoundTrip) {
  Rng rng(1);
  Tensor t = Tensor::uniform({3, 3}, rng, 1.0f);
  const Tensor copy = t;
  auto storage = t.take_storage();
  EXPECT_EQ(storage.size(), 9u);
  EXPECT_THROW(t.take_storage(), std::logic_error);  // double-evict
  t.restore_storage(std::move(storage));
  EXPECT_TRUE(bitwise_equal(t, copy));
}

TEST(Tensor, RestoreRejectsWrongSize) {
  Tensor t({2, 2});
  (void)t.take_storage();
  EXPECT_THROW(t.restore_storage(std::vector<float>(3)), std::logic_error);
}

TEST(Tensor, MatmulKnownValues) {
  Tensor a({2, 3}), b({3, 2}), out({2, 2});
  for (std::size_t i = 0; i < 6; ++i) a.data()[i] = static_cast<float>(i + 1);
  for (std::size_t i = 0; i < 6; ++i) b.data()[i] = static_cast<float>(i + 1);
  matmul(a, b, out);
  // [[1,2,3],[4,5,6]] @ [[1,2],[3,4],[5,6]] = [[22,28],[49,64]].
  EXPECT_FLOAT_EQ(out.at(0), 22.0f);
  EXPECT_FLOAT_EQ(out.at(1), 28.0f);
  EXPECT_FLOAT_EQ(out.at(2), 49.0f);
  EXPECT_FLOAT_EQ(out.at(3), 64.0f);
}

TEST(Tensor, MatmulTransposesConsistent) {
  // a@b == (a) matmul_bt with b^T == matmul_at with a^T.
  Rng rng(3);
  const Tensor a = Tensor::uniform({4, 5}, rng, 1.0f);
  const Tensor b = Tensor::uniform({5, 6}, rng, 1.0f);
  Tensor ref({4, 6});
  matmul(a, b, ref);

  // b_t[j,k] = b[k,j].
  Tensor b_t({6, 5});
  for (std::size_t k = 0; k < 5; ++k)
    for (std::size_t j = 0; j < 6; ++j)
      b_t.data()[j * 5 + k] = b.data()[k * 6 + j];
  Tensor via_bt({4, 6});
  matmul_bt(a, b_t, via_bt);
  EXPECT_LT(max_abs_diff(ref, via_bt), 1e-5f);

  Tensor a_t({5, 4});
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t k = 0; k < 5; ++k)
      a_t.data()[k * 4 + i] = a.data()[i * 5 + k];
  Tensor via_at({4, 6});
  matmul_at(a_t, b, via_at);
  EXPECT_LT(max_abs_diff(ref, via_at), 1e-5f);
}

TEST(Tensor, MatmulShapeChecks) {
  Tensor a({2, 3}), b({4, 2}), out({2, 2});
  EXPECT_THROW(matmul(a, b, out), std::invalid_argument);
}

TEST(Tensor, ElementwiseOps) {
  Tensor a({3}), b({3});
  a.fill(1.0f);
  b.fill(2.0f);
  add_inplace(a, b);
  EXPECT_FLOAT_EQ(a.at(0), 3.0f);
  scale_inplace(a, 0.5f);
  EXPECT_FLOAT_EQ(a.at(1), 1.5f);
  axpy_inplace(a, 2.0f, b);
  EXPECT_FLOAT_EQ(a.at(2), 5.5f);
  Tensor c({4});
  EXPECT_THROW(add_inplace(a, c), std::invalid_argument);
}

TEST(Tensor, MaxAbsDiffAndBitwise) {
  Tensor a({2}), b({2});
  a.fill(1.0f);
  b.fill(1.0f);
  EXPECT_TRUE(bitwise_equal(a, b));
  b.data()[1] = 1.25f;
  EXPECT_FALSE(bitwise_equal(a, b));
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 0.25f);
  EXPECT_FALSE(bitwise_equal(a, Tensor({3})));
}

}  // namespace
}  // namespace karma::train
