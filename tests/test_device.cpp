#include "src/sim/device.h"

#include <gtest/gtest.h>

namespace karma::sim {
namespace {

TEST(Device, AbciSpecsMatchTable2) {
  const DeviceSpec d = v100_abci();
  EXPECT_EQ(d.memory_capacity, 16_GiB);
  EXPECT_DOUBLE_EQ(d.peak_flops, 14.7e12);
  EXPECT_DOUBLE_EQ(d.h2d_bw, 16e9);  // PCIe gen3 x16
  EXPECT_DOUBLE_EQ(d.d2h_bw, 16e9);
}

TEST(Device, KernelTimeComputeBound) {
  const DeviceSpec d = v100_abci();
  // Large conv: compute roofline dominates.
  const Seconds t = d.kernel_time(graph::LayerKind::kConv2d, 1e12, 1_MiB);
  const double eff = d.efficiency(graph::LayerKind::kConv2d);
  EXPECT_NEAR(t, 1e12 / (eff * d.peak_flops), 1e-5);
}

TEST(Device, KernelTimeMemoryBound) {
  const DeviceSpec d = v100_abci();
  // Element-wise op with huge traffic: bandwidth roofline dominates.
  const Bytes bytes = 8_GiB;
  const Seconds t = d.kernel_time(graph::LayerKind::kReLU, 1e6, bytes);
  EXPECT_NEAR(t, static_cast<double>(bytes) / d.device_mem_bw, 1e-4);
}

TEST(Device, KernelTimeHasLaunchOverhead) {
  const DeviceSpec d = v100_abci();
  EXPECT_GT(d.kernel_time(graph::LayerKind::kReLU, 1.0, 1), 1e-6);
  EXPECT_EQ(d.kernel_time(graph::LayerKind::kReLU, 0.0, 0), 0.0);
}

TEST(Device, TransferTimes) {
  const DeviceSpec d = v100_abci();
  const Bytes gib = 1_GiB;
  EXPECT_NEAR(d.h2d_time(gib),
              d.swap_latency + static_cast<double>(gib) / d.h2d_bw, 1e-9);
  EXPECT_NEAR(d.d2h_time(gib),
              d.swap_latency + static_cast<double>(gib) / d.d2h_bw, 1e-9);
  EXPECT_EQ(d.h2d_time(0), 0.0);
  EXPECT_EQ(d.d2h_time(-5), 0.0);
}

TEST(Device, CpuUpdateStreamsThreeX) {
  const DeviceSpec d = v100_abci();
  const Bytes params = 100_MiB;
  EXPECT_NEAR(d.cpu_update_time(params),
              3.0 * static_cast<double>(params) / d.host_mem_bw, 1e-9);
  EXPECT_EQ(d.cpu_update_time(0), 0.0);
}

TEST(Device, EfficiencyOrdering) {
  const DeviceSpec d = v100_abci();
  // GEMM-heavy kinds achieve more of peak than bandwidth-bound ones.
  EXPECT_GT(d.efficiency(graph::LayerKind::kFullyConnected),
            d.efficiency(graph::LayerKind::kReLU));
  EXPECT_GT(d.efficiency(graph::LayerKind::kConv2d),
            d.efficiency(graph::LayerKind::kBatchNorm));
}

TEST(Device, NvlinkVariantFasterSwaps) {
  const DeviceSpec pcie = v100_abci();
  const DeviceSpec nvlink = v100_nvlink_host();
  EXPECT_LT(nvlink.h2d_time(1_GiB), pcie.h2d_time(1_GiB));
  EXPECT_EQ(nvlink.memory_capacity, pcie.memory_capacity);
}

TEST(Device, TestDeviceIsTiny) {
  const DeviceSpec d = test_device();
  EXPECT_EQ(d.memory_capacity, 1_MiB);
  EXPECT_GT(d.h2d_time(1_MiB), 0.0);
}

}  // namespace
}  // namespace karma::sim
