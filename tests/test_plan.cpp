#include "src/sim/plan.h"

#include <gtest/gtest.h>

#include "src/graph/model_zoo.h"

namespace karma::sim {
namespace {

/// A hand-built plan skeleton with `nb` unit blocks.
Plan skeleton(int nb) {
  Plan plan;
  plan.strategy = "test";
  plan.capacity = 1000;
  for (int b = 0; b < nb; ++b) {
    plan.blocks.push_back({b, b + 1});
    BlockCost c;
    c.fwd_time = 1.0;
    c.bwd_time = 2.0;
    c.act_bytes = 100;
    c.boundary_bytes = 10;
    plan.costs.push_back(c);
  }
  return plan;
}

Op op(OpKind kind, int block) {
  Op o;
  o.kind = kind;
  o.block = block;
  return o;
}

TEST(Plan, OpKindNamesAndStreams) {
  EXPECT_STREQ(op_kind_name(OpKind::kForward), "F");
  EXPECT_STREQ(op_kind_name(OpKind::kSwapIn), "Sin");
  EXPECT_STREQ(op_kind_name(OpKind::kCpuUpdate), "U");
  EXPECT_EQ(stream_of(OpKind::kForward), Stream::kCompute);
  EXPECT_EQ(stream_of(OpKind::kRecompute), Stream::kCompute);
  EXPECT_EQ(stream_of(OpKind::kDeviceUpdate), Stream::kCompute);
  EXPECT_EQ(stream_of(OpKind::kSwapIn), Stream::kH2D);
  EXPECT_EQ(stream_of(OpKind::kSwapOut), Stream::kD2H);
  EXPECT_EQ(stream_of(OpKind::kAllReduce), Stream::kNet);
  EXPECT_EQ(stream_of(OpKind::kCpuUpdate), Stream::kCpu);
}

TEST(Plan, ScheduleStringMatchesPaperNotation) {
  // The Sec. III-F.3 example style: "F1 -> F2||Sout1 -> ...".
  Plan plan = skeleton(2);
  plan.ops = {op(OpKind::kForward, 0), op(OpKind::kForward, 1),
              op(OpKind::kSwapOut, 0)};
  plan.stage_of = {0, 1, 1};
  EXPECT_EQ(plan.schedule_string(), "F1 -> F2||Sout1");
}

TEST(Plan, ValidAllSwapRoundTrip) {
  Plan plan = skeleton(2);
  plan.ops = {op(OpKind::kForward, 0), op(OpKind::kSwapOut, 0),
              op(OpKind::kForward, 1), op(OpKind::kSwapOut, 1),
              op(OpKind::kSwapIn, 1),  op(OpKind::kBackward, 1),
              op(OpKind::kSwapIn, 0),  op(OpKind::kBackward, 0)};
  EXPECT_NO_THROW(validate_plan(plan));
}

TEST(Plan, RejectsForwardOutOfOrder) {
  Plan plan = skeleton(2);
  plan.ops = {op(OpKind::kForward, 1)};
  EXPECT_THROW(validate_plan(plan), std::logic_error);
}

TEST(Plan, RejectsBackwardOutOfOrder) {
  Plan plan = skeleton(2);
  plan.ops = {op(OpKind::kForward, 0), op(OpKind::kForward, 1),
              op(OpKind::kBackward, 0)};
  EXPECT_THROW(validate_plan(plan), std::logic_error);
}

TEST(Plan, RejectsBackwardAfterEvictionWithoutSwapIn) {
  Plan plan = skeleton(1);
  plan.ops = {op(OpKind::kForward, 0), op(OpKind::kSwapOut, 0),
              op(OpKind::kBackward, 0)};
  EXPECT_THROW(validate_plan(plan), std::logic_error);
}

TEST(Plan, RecomputeRepairsEviction) {
  Plan plan = skeleton(2);
  plan.ops = {op(OpKind::kForward, 0),  op(OpKind::kForward, 1),
              op(OpKind::kSwapOut, 1),  op(OpKind::kRecompute, 1),
              op(OpKind::kBackward, 1), op(OpKind::kBackward, 0)};
  EXPECT_NO_THROW(validate_plan(plan));
}

TEST(Plan, RejectsRecomputeWithoutPredecessorOutput) {
  Plan plan = skeleton(2);
  // Block 0 evicted (activations AND boundary); recompute of 1 has no
  // input.
  plan.ops = {op(OpKind::kForward, 0), op(OpKind::kForward, 1),
              op(OpKind::kSwapOut, 1), op(OpKind::kSwapOut, 0),
              op(OpKind::kRecompute, 1)};
  EXPECT_THROW(validate_plan(plan), std::logic_error);
}

TEST(Plan, NonRetainingForwardNeedsRecompute) {
  Plan plan = skeleton(1);
  Op f = op(OpKind::kForward, 0);
  f.retains = false;
  plan.ops = {f, op(OpKind::kBackward, 0)};
  EXPECT_THROW(validate_plan(plan), std::logic_error);
  plan.ops = {f, op(OpKind::kRecompute, 0), op(OpKind::kBackward, 0)};
  EXPECT_NO_THROW(validate_plan(plan));
}

TEST(Plan, RejectsAllReduceWithoutDuration) {
  Plan plan = skeleton(1);
  plan.ops = {op(OpKind::kForward, 0), op(OpKind::kAllReduce, 0)};
  EXPECT_THROW(validate_plan(plan), std::logic_error);
  plan.ops[1].duration = 0.5;
  EXPECT_NO_THROW(validate_plan(plan));
}

TEST(Plan, RejectsForwardReferencingFutureOp) {
  Plan plan = skeleton(1);
  Op f = op(OpKind::kForward, 0);
  f.after_op = 3;  // references a future/absent op
  plan.ops = {f};
  EXPECT_THROW(validate_plan(plan), std::logic_error);
}

TEST(Plan, RejectsNonContiguousBlocks) {
  Plan plan = skeleton(2);
  plan.blocks[1].first_layer = 5;  // hole between blocks
  plan.ops = {op(OpKind::kForward, 0)};
  EXPECT_THROW(validate_plan(plan), std::logic_error);
}

TEST(Plan, RejectsBlockIdOutOfRange) {
  Plan plan = skeleton(1);
  plan.ops = {op(OpKind::kForward, 0), op(OpKind::kSwapOut, 3)};
  EXPECT_THROW(validate_plan(plan), std::logic_error);
}

TEST(Plan, MultiIterationStateIsolated) {
  Plan plan = skeleton(1);
  Op f0 = op(OpKind::kForward, 0);
  Op b0 = op(OpKind::kBackward, 0);
  Op f1 = f0, b1 = b0;
  f1.iteration = b1.iteration = 1;
  plan.ops = {f0, b0, f1, b1};
  EXPECT_NO_THROW(validate_plan(plan));
}

TEST(Plan, ComputeBlockCostSane) {
  const graph::Model m = graph::make_vgg16(2);
  const Block blk{0, static_cast<int>(m.num_layers())};
  const BlockCost c = compute_block_cost(m, blk, v100_abci());
  EXPECT_GT(c.fwd_time, 0.0);
  EXPECT_GT(c.bwd_time, c.fwd_time);  // backward costs more
  EXPECT_GT(c.act_bytes, 0);
  EXPECT_GT(c.param_bytes, 0);
  EXPECT_EQ(c.grad_bytes, c.param_bytes);
  EXPECT_GT(c.boundary_bytes, 0);
  EXPECT_LT(c.boundary_bytes, c.act_bytes);
}

TEST(Plan, BlockCostsAreAdditiveOverSplits) {
  const graph::Model m = graph::make_vgg16(2);
  const int n = static_cast<int>(m.num_layers());
  const DeviceSpec dev = v100_abci();
  const BlockCost whole = compute_block_cost(m, {0, n}, dev);
  const BlockCost a = compute_block_cost(m, {0, n / 2}, dev);
  const BlockCost b = compute_block_cost(m, {n / 2, n}, dev);
  EXPECT_NEAR(whole.fwd_time, a.fwd_time + b.fwd_time, 1e-9);
  EXPECT_EQ(whole.act_bytes, a.act_bytes + b.act_bytes);
  EXPECT_EQ(whole.param_bytes, a.param_bytes + b.param_bytes);
}

TEST(Plan, UniformBlocksCoverModel) {
  const graph::Model m = graph::make_vgg16(1);
  const auto blocks = uniform_blocks(m, 7);
  EXPECT_EQ(blocks.front().first_layer, 0);
  EXPECT_EQ(blocks.back().last_layer, static_cast<int>(m.num_layers()));
  int expect = 0;
  for (const auto& b : blocks) {
    EXPECT_EQ(b.first_layer, expect);
    EXPECT_LE(b.num_layers(), 7);
    expect = b.last_layer;
  }
  EXPECT_THROW(uniform_blocks(m, 0), std::invalid_argument);
}

}  // namespace
}  // namespace karma::sim
