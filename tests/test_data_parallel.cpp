// Data-parallel KARMA on the numeric twin: synchronous-SGD invariants,
// equivalence between in-core DP, out-of-core DP, and serial training.
#include "src/train/data_parallel.h"

#include <gtest/gtest.h>

#include "src/train/synthetic.h"

namespace karma::train {
namespace {

constexpr std::uint64_t kSeed = 31337;

Sequential factory(Rng& rng) { return make_mlp({16, 24, 24, 4}, rng); }

SyntheticBatch batch(std::size_t n = 24) {
  Rng rng(5);
  return make_synthetic_batch(n, {16}, 4, rng);
}

DataParallelConfig config(int ranks) {
  DataParallelConfig c;
  c.ranks = ranks;
  c.lr = 0.05f;
  return c;
}

TEST(AllReduce, AverageKnownValues) {
  std::vector<std::vector<Tensor>> grads(2);
  for (auto& g : grads) g.emplace_back(std::vector<std::size_t>{2});
  grads[0][0].data()[0] = 1.0f;
  grads[0][0].data()[1] = 3.0f;
  grads[1][0].data()[0] = 3.0f;
  grads[1][0].data()[1] = 5.0f;
  allreduce_average(grads);
  for (const auto& g : grads) {
    EXPECT_FLOAT_EQ(g[0].data()[0], 2.0f);
    EXPECT_FLOAT_EQ(g[0].data()[1], 4.0f);
  }
}

TEST(AllReduce, RaggedRejected) {
  std::vector<std::vector<Tensor>> grads(2);
  grads[0].emplace_back(std::vector<std::size_t>{2});
  EXPECT_THROW(allreduce_average(grads), std::invalid_argument);
}

TEST(DataParallel, ReplicasStayInSync) {
  DataParallelTrainer trainer(factory, kSeed, config(4));
  EXPECT_TRUE(trainer.replicas_in_sync());
  const SyntheticBatch data = batch(32);
  for (int step = 0; step < 5; ++step) {
    trainer.step(data.inputs, data.labels);
    EXPECT_TRUE(trainer.replicas_in_sync()) << "step " << step;
  }
}

TEST(DataParallel, MatchesSerialFullBatchApproximately) {
  // DP with an averaged gradient equals full-batch SGD up to float
  // summation order: close, not bitwise.
  const SyntheticBatch data = batch(32);
  DataParallelTrainer trainer(factory, kSeed, config(4));
  trainer.step(data.inputs, data.labels);

  Rng rng(kSeed);
  Sequential serial = factory(rng);
  SoftmaxCrossEntropy loss;
  serial.zero_grads();
  loss.forward(serial.forward(data.inputs), data.labels);
  serial.backward(loss.grad_logits());
  SGD opt(0.05f);
  opt.step(serial.all_params(), serial.all_grads());

  const auto a = trainer.replica(0).all_params();
  const auto b = serial.all_params();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_LT(max_abs_diff(*a[i], *b[i]), 1e-4f) << "param " << i;
}

TEST(DataParallel, TwoRanksBitwiseMatchManualAverage) {
  // With 2 ranks, the DP step is exactly reproducible by hand: compute
  // shard gradients serially, average in rank order, update.
  const SyntheticBatch data = batch(8);
  DataParallelConfig c = config(2);
  c.cpu_update = false;
  DataParallelTrainer trainer(factory, kSeed, c);
  trainer.step(data.inputs, data.labels);

  // Manual: two replicas with identical init.
  Rng r0(kSeed), r1(kSeed);
  Sequential net0 = factory(r0), net1 = factory(r1);
  const std::size_t shard = 4, row = 16;
  Tensor in0({shard, row}), in1({shard, row});
  std::copy(data.inputs.data(), data.inputs.data() + shard * row, in0.data());
  std::copy(data.inputs.data() + shard * row,
            data.inputs.data() + 2 * shard * row, in1.data());
  const std::vector<std::size_t> lab0(data.labels.begin(),
                                      data.labels.begin() + 4);
  const std::vector<std::size_t> lab1(data.labels.begin() + 4,
                                      data.labels.end());
  SoftmaxCrossEntropy l0, l1;
  net0.zero_grads();
  l0.forward(net0.forward(in0), lab0);
  net0.backward(l0.grad_logits());
  net1.zero_grads();
  l1.forward(net1.forward(in1), lab1);
  net1.backward(l1.grad_logits());
  std::vector<std::vector<Tensor>> grads(2);
  for (Tensor* g : net0.all_grads()) grads[0].push_back(*g);
  for (Tensor* g : net1.all_grads()) grads[1].push_back(*g);
  allreduce_average(grads);
  auto dst = net0.all_grads();
  for (std::size_t t = 0; t < dst.size(); ++t) *dst[t] = grads[0][t];
  SGD opt(0.05f);
  opt.step(net0.all_params(), net0.all_grads());

  const auto a = trainer.replica(0).all_params();
  const auto b = net0.all_params();
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_TRUE(bitwise_equal(*a[i], *b[i])) << "param " << i;
}

TEST(DataParallel, OocModeBitwiseMatchesInCoreMode) {
  // Data-parallel KARMA (each rank out-of-core, CPU-side update) must be
  // indistinguishable from plain data parallelism — Sec. IV-D's claim.
  const SyntheticBatch data = batch(24);
  DataParallelConfig incore = config(3);
  DataParallelTrainer a(factory, kSeed, incore);

  DataParallelConfig ooc = config(3);
  {
    Rng probe_rng(kSeed);
    Sequential probe = factory(probe_rng);
    ooc.ooc_blocks =
        uniform_ooc_blocks(probe.size(), 2, core::BlockPolicy::kSwap);
  }
  ooc.ooc_capacity = Bytes{1} << 30;
  DataParallelTrainer b(factory, kSeed, ooc);

  for (int step = 0; step < 4; ++step) {
    a.step(data.inputs, data.labels);
    b.step(data.inputs, data.labels);
  }
  for (int rank = 0; rank < 3; ++rank) {
    const auto pa = a.replica(rank).all_params();
    const auto pb = b.replica(rank).all_params();
    for (std::size_t i = 0; i < pa.size(); ++i)
      EXPECT_TRUE(bitwise_equal(*pa[i], *pb[i]))
          << "rank " << rank << " param " << i;
  }
}

TEST(DataParallel, LossDecreasesOverTraining) {
  DataParallelConfig c = config(4);
  c.lr = 0.1f;
  c.momentum = 0.9f;
  DataParallelTrainer trainer(factory, kSeed, c);
  const SyntheticBatch data = batch(64);
  float first = 0.0f, last = 0.0f;
  for (int step = 0; step < 80; ++step) {
    const float l = trainer.step(data.inputs, data.labels);
    if (step == 0) first = l;
    last = l;
  }
  EXPECT_LT(last, first * 0.6f);
}

TEST(DataParallel, RejectsIndivisibleBatch) {
  DataParallelTrainer trainer(factory, kSeed, config(3));
  const SyntheticBatch data = batch(8);  // 8 % 3 != 0
  EXPECT_THROW(trainer.step(data.inputs, data.labels),
               std::invalid_argument);
}

TEST(DataParallel, SingleRankDegeneratesToSerial) {
  const SyntheticBatch data = batch(8);
  DataParallelConfig c = config(1);
  c.cpu_update = false;
  DataParallelTrainer trainer(factory, kSeed, c);
  trainer.step(data.inputs, data.labels);

  Rng rng(kSeed);
  Sequential serial = factory(rng);
  SoftmaxCrossEntropy loss;
  serial.zero_grads();
  loss.forward(serial.forward(data.inputs), data.labels);
  serial.backward(loss.grad_logits());
  SGD opt(0.05f);
  opt.step(serial.all_params(), serial.all_grads());
  const auto a = trainer.replica(0).all_params();
  const auto b = serial.all_params();
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_TRUE(bitwise_equal(*a[i], *b[i]));
}

TEST(DataParallel, InvalidRankCountRejected) {
  EXPECT_THROW(DataParallelTrainer(factory, kSeed, config(0)),
               std::invalid_argument);
}

}  // namespace
}  // namespace karma::train
