// Algorithm 1: policy assignment and plan emission.
#include "src/core/schedule_gen.h"

#include "src/core/planner.h"

#include <gtest/gtest.h>

#include "src/graph/model_zoo.h"
#include "src/sim/engine.h"
#include "src/util/infeasible.h"

namespace karma::core {
namespace {

using sim::Block;
using sim::BlockCost;

std::vector<BlockCost> unit_costs(int nb, Bytes act) {
  std::vector<BlockCost> costs;
  for (int b = 0; b < nb; ++b) {
    BlockCost c;
    c.fwd_time = 1.0;
    c.bwd_time = 2.0;
    c.act_bytes = act;
    c.boundary_bytes = act / 10;
    costs.push_back(c);
  }
  return costs;
}

std::vector<Block> unit_blocks(int nb) {
  std::vector<Block> blocks;
  for (int b = 0; b < nb; ++b) blocks.push_back({b, b + 1});
  return blocks;
}

TEST(Policies, TailKeptResident) {
  // Budget for ~3 blocks of 100 + headroom of 200: blocks 7,8,9 resident.
  const auto policies =
      capacity_based_policies(unit_blocks(10), unit_costs(10, 100), 500);
  int resident = 0;
  for (std::size_t b = 0; b < policies.size(); ++b) {
    if (policies[b] == BlockPolicy::kResident) ++resident;
  }
  EXPECT_EQ(resident, 3);
  // Residents form a suffix.
  bool seen_resident = false;
  for (const auto p : policies) {
    if (p == BlockPolicy::kResident) seen_resident = true;
    else EXPECT_FALSE(seen_resident) << "resident set must be a suffix";
  }
}

TEST(Policies, EverythingFitsEverythingResident) {
  const auto policies =
      capacity_based_policies(unit_blocks(4), unit_costs(4, 10), 100000);
  for (const auto p : policies) EXPECT_EQ(p, BlockPolicy::kResident);
}

TEST(Policies, NothingFitsEverythingSwapped) {
  const auto policies =
      capacity_based_policies(unit_blocks(4), unit_costs(4, 100), 250);
  for (const auto p : policies) EXPECT_EQ(p, BlockPolicy::kSwap);
}

TEST(Policies, NameStrings) {
  EXPECT_STREQ(block_policy_name(BlockPolicy::kResident), "resident");
  EXPECT_STREQ(block_policy_name(BlockPolicy::kSwap), "swap");
  EXPECT_STREQ(block_policy_name(BlockPolicy::kRecompute), "recompute");
}

TEST(LongSkips, UnetContractingPathDetected) {
  const graph::Model unet = graph::make_unet(1);
  // Partition at layer granularity (U-Net has almost no clean cuts, so
  // the planner's fallback uses every position — see
  // candidate_cut_points); contracting-path blocks must carry the mask.
  const auto blocks = sim::uniform_blocks(unet, 6);
  const auto mask = blocks_with_long_skips(unet, blocks);
  int flagged = 0;
  for (bool m : mask) flagged += m ? 1 : 0;
  EXPECT_GT(flagged, 0);
  // The final block (end of expansive path) has no outgoing skips.
  EXPECT_FALSE(mask.back());
}

TEST(LongSkips, UnetSparseCleanCutsTriggerFallback) {
  const graph::Model unet = graph::make_unet(1);
  const auto clean = clean_cut_points(unet);
  // The nested skips pin the whole middle into one un-cuttable span...
  int max_gap = 0;
  for (std::size_t i = 1; i < clean.size(); ++i)
    max_gap = std::max(max_gap, clean[i] - clean[i - 1]);
  EXPECT_GT(max_gap, static_cast<int>(unet.num_layers()) / 2);
  // ...so the planner falls back to every position.
  const auto candidates = candidate_cut_points(unet);
  EXPECT_EQ(candidates.size(), unet.num_layers() + 1);
}

TEST(LongSkips, ResnetKeepsCleanCuts) {
  // ResNets have dense clean cuts; no fallback happens.
  const graph::Model rn = graph::make_resnet50(1);
  EXPECT_EQ(candidate_cut_points(rn), clean_cut_points(rn));
}

TEST(LongSkips, ChainModelHasNone) {
  const graph::Model vgg = graph::make_vgg16(1);
  const auto blocks = sim::uniform_blocks(vgg, 5);
  for (bool m : blocks_with_long_skips(vgg, blocks)) EXPECT_FALSE(m);
}

// ---- End-to-end plan emission on a real model ----

class PlanEmission : public ::testing::Test {
 protected:
  graph::Model model_ = graph::make_vgg16(48);  // beyond 16 GiB in-core
  sim::DeviceSpec device_ = sim::v100_abci();
};

TEST_F(PlanEmission, AllSwapPlanValidatesAndRuns) {
  const auto blocks = sim::uniform_blocks(model_, 4);
  const std::vector<BlockPolicy> policies(blocks.size(), BlockPolicy::kSwap);
  const sim::Plan plan =
      build_training_plan(model_, device_, blocks, policies, "all-swap");
  EXPECT_NO_THROW(sim::validate_plan(plan));
  const auto trace = sim::Engine(device_).run(plan);
  EXPECT_GT(trace.makespan, 0.0);
  EXPECT_LE(trace.peak_resident,
            device_.memory_capacity + plan.baseline_resident);
}

TEST_F(PlanEmission, MixedPoliciesRun) {
  const auto blocks = sim::uniform_blocks(model_, 4);
  std::vector<BlockPolicy> policies(blocks.size(), BlockPolicy::kSwap);
  policies.back() = BlockPolicy::kResident;
  for (std::size_t b = 1; b + 2 < policies.size(); b += 3)
    policies[b] = BlockPolicy::kRecompute;
  const sim::Plan plan =
      build_training_plan(model_, device_, blocks, policies, "mixed");
  const auto trace = sim::Engine(device_).run(plan);
  EXPECT_GT(trace.makespan, 0.0);
}

TEST_F(PlanEmission, ScheduleStringShape) {
  // First stage must be a lone forward, F1 (paper's Sec. III-F.3 form).
  const auto blocks = sim::uniform_blocks(model_, 8);
  std::vector<BlockPolicy> policies(blocks.size(), BlockPolicy::kSwap);
  policies.back() = BlockPolicy::kResident;
  const sim::Plan plan =
      build_training_plan(model_, device_, blocks, policies, "s");
  const std::string sched = plan.schedule_string();
  EXPECT_EQ(sched.rfind("F1", 0), 0u) << sched;
  EXPECT_NE(sched.find("Sout1"), std::string::npos);
  EXPECT_NE(sched.find("||"), std::string::npos);  // overlap exists
}

TEST_F(PlanEmission, RejectsWeightsBeyondCapacity) {
  // A transformer whose weights exceed the device must be rejected by the
  // single-GPU builder (the distributed builder handles that regime).
  const graph::Model big =
      graph::make_transformer(graph::megatron_config(4), 1);
  const auto blocks = sim::uniform_blocks(big, 64);
  const std::vector<BlockPolicy> policies(blocks.size(), BlockPolicy::kSwap);
  EXPECT_THROW(build_training_plan(big, device_, blocks, policies, "x"),
               karma::InfeasibleError);
}

TEST_F(PlanEmission, InCorePlanHasNoSwaps) {
  const graph::Model small = graph::make_vgg16(4);
  const auto blocks = sim::uniform_blocks(small, 6);
  const sim::Plan plan = build_incore_plan(small, device_, blocks);
  for (const auto& o : plan.ops) {
    EXPECT_NE(o.kind, sim::OpKind::kSwapIn);
    EXPECT_NE(o.kind, sim::OpKind::kSwapOut);
    EXPECT_NE(o.kind, sim::OpKind::kRecompute);
  }
  const auto trace = sim::Engine(device_).run(plan);
  EXPECT_DOUBLE_EQ(trace.occupancy(), 1.0);
}

TEST_F(PlanEmission, SizeMismatchRejected) {
  const auto blocks = sim::uniform_blocks(model_, 4);
  const std::vector<BlockPolicy> policies(blocks.size() + 1,
                                          BlockPolicy::kSwap);
  EXPECT_THROW(
      build_training_plan(model_, device_, blocks, policies, "bad"),
      std::invalid_argument);
}

TEST_F(PlanEmission, EveryBlockForwardAndBackwardExactlyOnce) {
  const auto blocks = sim::uniform_blocks(model_, 3);
  std::vector<BlockPolicy> policies(blocks.size(), BlockPolicy::kSwap);
  policies.back() = BlockPolicy::kResident;
  const sim::Plan plan =
      build_training_plan(model_, device_, blocks, policies, "once");
  std::vector<int> fwd(blocks.size(), 0), bwd(blocks.size(), 0);
  for (const auto& o : plan.ops) {
    if (o.kind == sim::OpKind::kForward) ++fwd[static_cast<std::size_t>(o.block)];
    if (o.kind == sim::OpKind::kBackward) ++bwd[static_cast<std::size_t>(o.block)];
  }
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    EXPECT_EQ(fwd[b], 1) << "block " << b;
    EXPECT_EQ(bwd[b], 1) << "block " << b;
  }
}

}  // namespace
}  // namespace karma::core
