// The tiered-offload subsystem: hierarchy description, per-tier capacity
// accounting, and spill-path routing.
#include "src/tier/accountant.h"
#include "src/tier/hierarchy.h"
#include "src/tier/spill.h"

#include <gtest/gtest.h>

#include "src/sim/device.h"

namespace karma::tier {
namespace {

TEST(Hierarchy, TwoTierHasUnboundedHost) {
  const StorageHierarchy h = two_tier(1000, 1.0);
  EXPECT_EQ(h.num_tiers(), 2);
  EXPECT_TRUE(h.has(Tier::kDevice));
  EXPECT_TRUE(h.has(Tier::kHost));
  EXPECT_FALSE(h.has(Tier::kNvme));
  EXPECT_TRUE(h.spec(Tier::kHost).unbounded());
  EXPECT_EQ(h.offload_capacity(), TierSpec::kUnbounded);
}

TEST(Hierarchy, ThreeTierOrdering) {
  const StorageHierarchy h = test_hierarchy();
  EXPECT_EQ(h.num_tiers(), 3);
  EXPECT_EQ(h.spec(Tier::kDevice).capacity, 1000);
  EXPECT_EQ(h.spec(Tier::kHost).capacity, 2000);
  EXPECT_EQ(h.spec(Tier::kNvme).capacity, 10000);
  EXPECT_EQ(h.offload_capacity(), 12000);
  ASSERT_TRUE(h.next_outward(Tier::kHost).has_value());
  EXPECT_EQ(*h.next_outward(Tier::kHost), Tier::kNvme);
  EXPECT_FALSE(h.next_outward(Tier::kNvme).has_value());
}

TEST(Hierarchy, RejectsMalformed) {
  TierSpec host;
  host.tier = Tier::kHost;
  host.capacity = 100;
  host.read_bw = 1.0;
  host.write_bw = 1.0;
  // Must start at the device tier.
  EXPECT_THROW(StorageHierarchy({host}), std::invalid_argument);
  TierSpec dev;
  dev.tier = Tier::kDevice;
  dev.capacity = 100;
  // Duplicate / out-of-order tiers.
  EXPECT_THROW(StorageHierarchy({dev, host, host}), std::invalid_argument);
  // Offload tier without bandwidth.
  TierSpec dead = host;
  dead.read_bw = 0.0;
  EXPECT_THROW(StorageHierarchy({dev, dead}), std::invalid_argument);
  EXPECT_THROW(StorageHierarchy(std::vector<TierSpec>{}),
               std::invalid_argument);
}

TEST(Hierarchy, MissingTierThrows) {
  const StorageHierarchy h = two_tier(1000, 1.0);
  EXPECT_THROW(h.spec(Tier::kNvme), std::out_of_range);
}

TEST(Accountant, ChargesAndReleases) {
  TierAccountant a(test_hierarchy());
  EXPECT_TRUE(a.fits(Tier::kHost, 2000));
  EXPECT_FALSE(a.fits(Tier::kHost, 2001));
  a.charge(Tier::kHost, 1500);
  EXPECT_EQ(a.used(Tier::kHost), 1500);
  EXPECT_EQ(a.free_bytes(Tier::kHost), 500);
  EXPECT_FALSE(a.fits(Tier::kHost, 600));
  a.release(Tier::kHost, 1000);
  EXPECT_EQ(a.used(Tier::kHost), 500);
  EXPECT_EQ(a.peak(Tier::kHost), 1500);  // high-water survives releases
}

TEST(Accountant, OverflowThrowsWithLedger) {
  TierAccountant a(test_hierarchy());
  a.charge(Tier::kNvme, 9000);
  try {
    a.charge(Tier::kNvme, 2000);
    FAIL() << "expected overflow";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("nvme"), std::string::npos);
    EXPECT_NE(what.find("ledger"), std::string::npos);
  }
}

TEST(Accountant, UnderflowThrows) {
  TierAccountant a(test_hierarchy());
  a.charge(Tier::kHost, 100);
  EXPECT_THROW(a.release(Tier::kHost, 200), std::logic_error);
}

TEST(Accountant, UnboundedHostAlwaysFits) {
  TierAccountant a(two_tier(1000, 1.0));
  EXPECT_TRUE(a.fits(Tier::kHost, INT64_C(1) << 50));
  // A tier absent from the hierarchy never fits.
  EXPECT_FALSE(a.fits(Tier::kNvme, 1));
}

TEST(Spill, HostFirstRouting) {
  // Host holds 2000 B: the first two payloads stay in DRAM, the third
  // overflows to NVMe.
  const auto routes = route_spills({1500, 400, 800}, test_hierarchy());
  ASSERT_EQ(routes.size(), 3u);
  EXPECT_EQ(routes[0].destination, Tier::kHost);
  EXPECT_EQ(routes[1].destination, Tier::kHost);
  EXPECT_EQ(routes[2].destination, Tier::kNvme);
  EXPECT_EQ(routed_bytes(routes, {1500, 400, 800}, Tier::kHost), 1900);
  EXPECT_EQ(routed_bytes(routes, {1500, 400, 800}, Tier::kNvme), 800);
}

TEST(Spill, ReservedHostShiftsRouting) {
  // 1800 B of pinned optimizer state leaves only 200 B of DRAM.
  const auto routes = route_spills({300, 150}, test_hierarchy(), 1800);
  EXPECT_EQ(routes[0].destination, Tier::kNvme);
  EXPECT_EQ(routes[1].destination, Tier::kHost);
}

TEST(Spill, NothingFitsThrows) {
  // 13 KB exceeds host + NVMe combined.
  EXPECT_THROW(route_spills({13000}, test_hierarchy()), std::runtime_error);
}

TEST(Spill, UnboundedHostTakesEverything) {
  const auto routes = route_spills({INT64_C(1) << 40, INT64_C(1) << 40},
                                   two_tier(1000, 1.0));
  for (const auto& r : routes) EXPECT_EQ(r.destination, Tier::kHost);
}

TEST(DeviceBridge, HierarchyOfSeedDeviceIsTwoTier) {
  const auto h = sim::hierarchy_of(sim::v100_abci());
  EXPECT_EQ(h.num_tiers(), 2);
  EXPECT_TRUE(h.spec(Tier::kHost).unbounded());
}

TEST(DeviceBridge, HierarchyOfNvmeDeviceIsThreeTier) {
  const auto h = sim::hierarchy_of(sim::v100_abci_nvme());
  EXPECT_EQ(h.num_tiers(), 3);
  EXPECT_EQ(h.spec(Tier::kHost).capacity, 384_GiB);
  EXPECT_FALSE(h.spec(Tier::kHost).unbounded());
  EXPECT_DOUBLE_EQ(h.spec(Tier::kNvme).read_bw, 3.2e9);
}

TEST(DeviceBridge, TierTransferTimes) {
  const sim::DeviceSpec d = sim::test_device_tiered();
  // Host path equals the seed's h2d/d2h times.
  EXPECT_DOUBLE_EQ(d.read_from_tier_time(Tier::kHost, 1000),
                   d.h2d_time(1000));
  // NVMe path is bounded by the slower (storage) leg: 50 MB/s.
  EXPECT_DOUBLE_EQ(d.read_from_tier_time(Tier::kNvme, 1000), 1000 / 50e6);
  EXPECT_DOUBLE_EQ(d.write_to_tier_time(Tier::kNvme, 1000), 1000 / 50e6);
  // Seed devices have no NVMe tier to talk to.
  EXPECT_THROW(sim::test_device().nvme_read_time(1), std::logic_error);
}

}  // namespace
}  // namespace karma::tier
