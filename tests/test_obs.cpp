// karma::obs (DESIGN.md §15): the metrics registry, request-lifecycle
// tracing, and the simulated-timeline Chrome-trace export.
//
// Five layers of proof:
//   - REGISTRY: counters/gauges/histograms register by name, snapshot
//     deterministically (sorted, byte-stable), expose Prometheus text.
//   - SPANS: disabled tracing records nothing; enabled spans drain FIFO
//     with correct phases; overflow drops (never blocks) and counts.
//   - EXPORT: the execution-trace export is a golden fixture — the
//     deterministic ResNet-50 timeline renders byte-identically
//     (regenerate with KARMA_REGEN_GOLDEN=1).
//   - TORN-STATS REGRESSION: a 16-thread plan storm polled concurrently
//     by a stats reader never shows `searches + flights_joined >
//     requests` (the pre-PR-9 torn snapshot). Run under TSan by the
//     sanitize-thread CI job.
//   - DAEMON INTEGRATION: an in-process daemon with trace_dir produces a
//     Perfetto-loadable trace covering queue wait, cache lookup, and
//     every anneal worker; the `metrics` verb exports the daemon's
//     histograms through RemoteSession::metrics_json.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/api/engine.h"
#include "src/api/remote_session.h"
#include "src/core/planner.h"
#include "src/graph/model_zoo.h"
#include "src/obs/chrome_trace.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/pland/daemon.h"
#include "src/sim/device.h"
#include "src/util/json.h"

namespace karma {
namespace {

namespace fs = std::filesystem;

/// Tests must not inherit a developer's shared cache.
class KillCacheEnv : public ::testing::Environment {
 public:
  void SetUp() override { unsetenv("KARMA_CACHE_DIR"); }
};
const auto* const kEnv =
    ::testing::AddGlobalTestEnvironment(new KillCacheEnv);

struct TempDir {
  explicit TempDir(const std::string& tag) {
    path = (fs::temp_directory_path() /
            ("karma-obs-" + tag + "-" + std::to_string(::getpid())))
               .string();
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string path;
};

api::PlanRequest resnet_request(std::int64_t batch, int anneal) {
  api::PlanRequest request;
  request.model = graph::make_resnet50(batch);
  request.device = sim::v100_abci();
  request.planner.enable_recompute = true;
  request.planner.anneal_iterations = anneal;
  request.probe_feasible_batch = false;
  return request;
}

/// The ring and enable flag are process-global; every tracing test
/// leaves them as it found them (off, empty).
struct TracingGuard {
  TracingGuard() { obs::discard_trace(); }
  ~TracingGuard() {
    obs::set_tracing_enabled(false);
    obs::discard_trace();
  }
};

// ---------------------------------------------------------------------------
// Pillar 1: the metrics registry
// ---------------------------------------------------------------------------

TEST(Registry, InstrumentsAreNamedStableAndSnapshotSorted) {
  obs::Registry reg;
  obs::Counter* c = reg.counter("b.requests");
  EXPECT_EQ(c, reg.counter("b.requests"));  // same name -> same instrument
  c->inc();
  c->inc(41);
  EXPECT_EQ(c->value(), 42u);
  reg.gauge("a.depth")->set(2.5);
  reg.counter("a.hits")->inc(7);

  const std::string json = reg.snapshot_json();
  const auto root = util::json::parse(json);
  EXPECT_EQ(root.at("counters").at("b.requests").as_int(), 42);
  EXPECT_EQ(root.at("counters").at("a.hits").as_int(), 7);
  EXPECT_DOUBLE_EQ(root.at("gauges").at("a.depth").as_double(), 2.5);
  // Deterministic: names sort, so the bytes are reproducible.
  EXPECT_LT(json.find("\"a.hits\""), json.find("\"b.requests\""));
  EXPECT_EQ(json, reg.snapshot_json());
}

TEST(Registry, HistogramMomentsPercentilesAndBuckets) {
  obs::Registry reg;
  obs::Histogram* h = reg.histogram("svc.latency");
  // 100 observations at 1 ms, 100 at 10 ms: p50 falls in the 1 ms
  // region, p99 in the 10 ms region, and the moments are exact.
  for (int i = 0; i < 100; ++i) h->observe(1e-3);
  for (int i = 0; i < 100; ++i) h->observe(1e-2);
  const auto snap = h->snapshot();
  EXPECT_EQ(snap.count, 200u);
  EXPECT_NEAR(snap.sum, 100 * 1e-3 + 100 * 1e-2, 1e-9);
  EXPECT_NEAR(snap.mean, snap.sum / 200.0, 1e-12);
  EXPECT_DOUBLE_EQ(snap.min, 1e-3);
  EXPECT_DOUBLE_EQ(snap.max, 1e-2);
  EXPECT_LE(snap.percentile(50), 2e-3);
  EXPECT_GE(snap.percentile(99), 5e-3);
  EXPECT_LE(snap.percentile(99), 1e-2 + 1e-12);
  std::uint64_t bucket_total = 0;
  for (const auto& b : snap.buckets) bucket_total += b.count;
  EXPECT_EQ(bucket_total, 200u);

  const auto root = util::json::parse(reg.snapshot_json());
  const auto& hj = root.at("histograms").at("svc.latency");
  EXPECT_EQ(hj.at("count").as_int(), 200);
  EXPECT_GT(hj.at("p99").as_double(), hj.at("p50").as_double());
}

TEST(Registry, HistogramObserveIsThreadSafe) {
  obs::Histogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t)
    threads.emplace_back([&h] {
      for (int i = 0; i < 1000; ++i) h.observe(1e-3);
    });
  for (auto& t : threads) t.join();
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 8000u);
  EXPECT_NEAR(snap.mean, 1e-3, 1e-12);
}

TEST(Registry, PrometheusTextExposition) {
  obs::Registry reg;
  reg.counter("engine.requests")->inc(3);
  reg.gauge("cache.resident_bytes")->set(1024);
  reg.histogram("engine.search_seconds")->observe(0.5);
  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("# TYPE karma_engine_requests counter"),
            std::string::npos);
  EXPECT_NE(text.find("karma_engine_requests 3"), std::string::npos);
  EXPECT_NE(text.find("karma_cache_resident_bytes 1024"), std::string::npos);
  // Cumulative buckets with the mandatory +Inf terminal.
  EXPECT_NE(text.find("karma_engine_search_seconds_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("karma_engine_search_seconds_count 1"),
            std::string::npos);
}

TEST(Registry, CollectorsRunAtSnapshotAndDeregister) {
  obs::Registry reg;
  obs::Gauge* g = reg.gauge("mirror.value");
  std::atomic<int> calls{0};
  const std::uint64_t token = reg.add_collector([&] {
    calls.fetch_add(1);
    g->set(7.0);
  });
  const auto root = util::json::parse(reg.snapshot_json());
  EXPECT_EQ(calls.load(), 1);
  EXPECT_DOUBLE_EQ(root.at("gauges").at("mirror.value").as_double(), 7.0);
  reg.remove_collector(token);
  (void)reg.snapshot_json();
  EXPECT_EQ(calls.load(), 1);  // deregistered: not called again
}

// ---------------------------------------------------------------------------
// Pillar 2: spans and the trace ring
// ---------------------------------------------------------------------------

TEST(Span, DisabledTracingRecordsNothing) {
  TracingGuard guard;
  ASSERT_FALSE(obs::tracing_enabled());
  {
    obs::Span span("should.not.appear", "test");
    span.arg("x", 1);
    obs::emit_instant("also.not", "test");
  }
  std::vector<obs::TraceEvent> events;
  EXPECT_EQ(obs::drain_trace(&events), 0u);
}

TEST(Span, EnabledSpansDrainInOrderWithPhasesAndArgs) {
  TracingGuard guard;
  obs::set_tracing_enabled(true);
  {
    obs::Span outer("outer", "test");
    outer.arg("depth", 1);
    obs::emit_instant("marker", "test", "k", 42);
    {
      obs::Span inner("inner", "test");
    }  // inner ends (and is pushed) first
  }
  obs::set_tracing_enabled(false);

  std::vector<obs::TraceEvent> events;
  ASSERT_EQ(obs::drain_trace(&events), 3u);
  EXPECT_STREQ(events[0].name, "marker");
  EXPECT_EQ(events[0].phase, 'i');
  EXPECT_EQ(events[0].arg_value[0], 42);
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_STREQ(events[2].name, "outer");
  EXPECT_EQ(events[2].phase, 'X');
  EXPECT_GE(events[2].dur_us, events[1].dur_us);  // outer encloses inner

  // The drained events render as parseable Chrome trace JSON.
  const auto root = util::json::parse(obs::chrome_trace_json(events));
  const auto& rendered = root.at("traceEvents").array;
  ASSERT_EQ(rendered.size(), 3u);
  EXPECT_EQ(rendered[0].at("ph").as_string(), "i");
  EXPECT_EQ(rendered[2].at("args").at("depth").as_int(), 1);
}

TEST(Span, RingOverflowDropsAndCountsInsteadOfBlocking) {
  TracingGuard guard;
  obs::set_tracing_enabled(true);
  const std::size_t way_past_capacity = (1u << 16) + 500;
  for (std::size_t i = 0; i < way_past_capacity; ++i)
    obs::emit_instant("flood", "test");
  obs::set_tracing_enabled(false);
  EXPECT_GE(obs::dropped_trace_events(), 500u);
  std::vector<obs::TraceEvent> events;
  EXPECT_EQ(obs::drain_trace(&events), std::size_t{1} << 16);
  obs::discard_trace();
  EXPECT_EQ(obs::dropped_trace_events(), 0u);
}

// ---------------------------------------------------------------------------
// Pillar 3: execution-trace export (golden fixture)
// ---------------------------------------------------------------------------

TEST(ChromeTraceExport, GoldenResNet50TimelineMatches) {
  // A deterministic candidate evaluation: fixed blocking, fixed policies,
  // no search. The simulator is deterministic, so the exported JSON is
  // byte-stable across runs and platforms.
  const graph::Model model = graph::make_resnet50(512);
  core::KarmaPlanner planner(model, sim::v100_abci());
  const auto blocks = sim::uniform_blocks(model, /*max_layers=*/8);
  ASSERT_GE(blocks.size(), 3u);
  std::vector<core::BlockPolicy> policies(blocks.size(),
                                          core::BlockPolicy::kSwap);
  policies.front() = core::BlockPolicy::kRecompute;
  policies.back() = core::BlockPolicy::kResident;
  const auto result = planner.evaluate(blocks, policies, "karma+recompute");
  ASSERT_TRUE(result.has_value());

  const std::string actual =
      obs::export_execution_trace(result->trace, result->plan);

  const std::string path =
      std::string(KARMA_SOURCE_DIR) + "/tests/golden/trace_fixture.json";
  if (std::getenv("KARMA_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual << "\n";
    GTEST_SKIP() << "regenerated golden fixture at " << path;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing golden fixture " << path
      << " — regenerate with KARMA_REGEN_GOLDEN=1 ./test_obs";
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string expected = buffer.str();
  if (!expected.empty() && expected.back() == '\n') expected.pop_back();
  EXPECT_EQ(actual, expected)
      << "trace export drifted; if intentional, regenerate the fixture "
         "with KARMA_REGEN_GOLDEN=1 and review the diff in Perfetto";

  // Structure: parseable, with stream metadata, op slices, stalls
  // attributed, and residency counter tracks.
  const auto root = util::json::parse(actual);
  const auto& events = root.at("traceEvents").array;
  ASSERT_GT(events.size(), 10u);
  bool saw_thread_meta = false, saw_slice = false, saw_counter = false;
  for (const auto& ev : events) {
    const std::string& ph = ev.at("ph").as_string();
    if (ph == "M") saw_thread_meta = true;
    if (ph == "X") saw_slice = true;
    if (ph == "C") saw_counter = true;
  }
  EXPECT_TRUE(saw_thread_meta);
  EXPECT_TRUE(saw_slice);
  EXPECT_TRUE(saw_counter);
  EXPECT_NE(actual.find("\"device_resident\""), std::string::npos);
}

TEST(ChromeTraceExport, RejectsRecordsThatDontIndexThePlan) {
  sim::Plan plan;
  sim::ExecutionTrace trace;
  sim::OpRecord rec;
  rec.op_index = 3;  // plan.ops is empty
  trace.records.push_back(rec);
  EXPECT_THROW(obs::export_execution_trace(trace, plan),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Torn-stats regression (TSan-covered by the sanitize-thread CI job)
// ---------------------------------------------------------------------------

TEST(EngineStatsSnapshot, NeverTornUnderAPlanStorm) {
  auto engine = api::Engine::create();
  constexpr int kThreads = 16;
  std::atomic<bool> stop{false};

  // Poller: every snapshot must satisfy the causal invariants — a torn
  // (mixed-epoch) read shows e.g. a search whose request is missing.
  std::thread poller([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const api::EngineStats s = engine->stats();
      EXPECT_LE(s.searches + s.flights_joined, s.requests)
          << "torn snapshot: effects visible before their causes";
      EXPECT_LE(s.cancelled + s.deadlines, s.requests);
    }
  });

  std::vector<std::thread> storm;
  for (int t = 0; t < kThreads; ++t)
    storm.emplace_back([&engine, t] {
      // Distinct batches -> distinct keys -> real concurrent searches;
      // a tiny anneal keeps the whole storm inside the tier-1 budget.
      auto out = engine->plan(resnet_request(32 + t, /*anneal=*/2));
      EXPECT_TRUE(out.has_value());
    });
  for (auto& t : storm) t.join();
  stop.store(true, std::memory_order_relaxed);
  poller.join();

  const api::EngineStats s = engine->stats();
  EXPECT_EQ(s.requests, static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(s.searches + s.flights_joined, s.requests);
}

TEST(EngineMetrics, RegistryMirrorsStatsAndCache) {
  auto engine = api::Engine::create();
  ASSERT_TRUE(engine->plan(resnet_request(64, /*anneal=*/2)).has_value());
  ASSERT_TRUE(engine->plan(resnet_request(64, /*anneal=*/2)).has_value());

  const auto root = util::json::parse(engine->metrics()->snapshot_json());
  EXPECT_EQ(root.at("counters").at("engine.requests").as_int(), 2);
  EXPECT_EQ(root.at("counters").at("engine.searches").as_int(), 1);
  // The search latency histogram saw exactly the one real search.
  EXPECT_EQ(
      root.at("histograms").at("engine.search_seconds").at("count").as_int(),
      1);
  // CacheStats mirrored in as gauges by the registered collector.
  EXPECT_GE(root.at("gauges").at("cache.memory_hits").as_double(), 1.0);
  // And the snapshot agrees with the legacy struct view.
  EXPECT_EQ(engine->cache_stats().memory_hits,
            static_cast<std::uint64_t>(
                root.at("gauges").at("cache.memory_hits").as_double()));
}

// ---------------------------------------------------------------------------
// Daemon integration: metrics verb + --trace-dir
// ---------------------------------------------------------------------------

TEST(DaemonObservability, MetricsVerbAndTraceDirCoverTheRequestLifecycle) {
  TracingGuard guard;  // daemon start() flips the global tracing flag
  TempDir dir("daemon");
  pland::DaemonOptions options;
  options.socket_path = dir.path + "/pland.sock";
  options.engine.cache.cache_dir = dir.path + "/cache";
  options.trace_dir = dir.path + "/traces";
  pland::Daemon daemon(std::move(options));
  ASSERT_TRUE(daemon.start());

  auto session =
      api::RemoteSession::connect(daemon.socket_path(), "obs-tenant");
  ASSERT_TRUE(session.has_value()) << session.error().message;
  const api::PlanRequest request = resnet_request(512, /*anneal=*/30);
  ASSERT_TRUE(session->plan_raw(request).has_value());  // cold: miss path
  ASSERT_TRUE(session->plan_raw(request).has_value());  // warm: hit path

  // --- metrics verb: the whole process in one snapshot ---
  auto metrics = session->metrics_json();
  ASSERT_TRUE(metrics.has_value()) << metrics.error().message;
  const auto root = util::json::parse(metrics.value());
  EXPECT_EQ(root.at("counters").at("pland.requests").as_int(), 2);
  EXPECT_EQ(root.at("counters").at("engine.searches").as_int(), 1);
  const auto& hit = root.at("histograms").at("pland.hit_seconds");
  EXPECT_EQ(hit.at("count").as_int(), 1);
  EXPECT_GT(hit.at("p50").as_double(), 0.0);
  EXPECT_EQ(root.at("histograms")
                .at("pland.queue_wait_seconds")
                .at("count")
                .as_int(),
            1);

  daemon.stop();

  // --- trace-dir: the cold plan's flush is a Perfetto-loadable document
  // whose spans cover queue wait, cache lookup, the search, and every
  // anneal worker (anneal_workers defaults to 4) ---
  const std::string trace_path = dir.path + "/traces/plan-0.trace.json";
  std::ifstream in(trace_path);
  ASSERT_TRUE(in.good()) << "daemon did not flush " << trace_path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string trace_json = buffer.str();
  const auto trace_root = util::json::parse(trace_json);
  EXPECT_GT(trace_root.at("traceEvents").array.size(), 0u);
  for (const char* span : {"pland.queue_wait", "pland.plan_miss",
                           "request.parse", "engine.cache_lookup",
                           "engine.search", "opt1.enumerate", "opt1.anneal",
                           "anneal.worker", "opt2.flips", "pland.respond"}) {
    EXPECT_NE(trace_json.find(std::string("\"") + span + "\""),
              std::string::npos)
        << "trace is missing span '" << span << "'";
  }
  // One "anneal.worker" slice per portfolio worker.
  std::size_t workers_seen = 0, pos = 0;
  while ((pos = trace_json.find("\"anneal.worker\"", pos)) !=
         std::string::npos) {
    ++workers_seen;
    pos += 1;
  }
  EXPECT_EQ(workers_seen, 4u);
}

}  // namespace
}  // namespace karma
