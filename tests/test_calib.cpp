// karma::calib end to end: profile capture + artifact JSON, robust table
// fitting, the sim::CostScale overlay, RequestKey invalidation under a
// calibration change, warm-start plan repair, and the Engine's
// calibrate -> invalidate -> repair -> re-cache loop (DESIGN.md §13).
// Golden fixtures regenerate with KARMA_REGEN_GOLDEN=1 ./test_calib.
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/api/engine.h"
#include "src/cache/request_key.h"
#include "src/calib/profile.h"
#include "src/calib/repair.h"
#include "src/calib/table.h"
#include "src/core/planner.h"
#include "src/graph/model_zoo.h"
#include "src/sim/device.h"

namespace karma::calib {
namespace {

// ---------------------------------------------------------------------------
// CostKind vocabulary and the CostScale overlay
// ---------------------------------------------------------------------------

TEST(CostKind, NamesRoundTrip) {
  for (const CostKind kind : kAllCostKinds) {
    const auto back = cost_kind_from(cost_kind_name(kind));
    ASSERT_TRUE(back.has_value()) << cost_kind_name(kind);
    EXPECT_EQ(*back, kind);
  }
  EXPECT_FALSE(cost_kind_from("warp-drive").has_value());
}

TEST(CostScale, DefaultIsIdentityAndChangesNoCost) {
  const sim::DeviceSpec base = sim::v100_abci_nvme();
  EXPECT_TRUE(base.scale.identity());
  sim::DeviceSpec scaled = base;
  scaled.scale.identity();  // still identity: times must be bit-equal
  const Bytes bytes = 64ll << 20;
  EXPECT_EQ(base.h2d_time(bytes), scaled.h2d_time(bytes));
  EXPECT_EQ(base.kernel_time(graph::LayerKind::kConv2d, 1e12, bytes),
            scaled.kernel_time(graph::LayerKind::kConv2d, 1e12, bytes));
  EXPECT_EQ(base.nvme_read_time(bytes), scaled.nvme_read_time(bytes));
}

TEST(CostScale, FactorsMultiplyEachCostPath) {
  const sim::DeviceSpec base = sim::v100_abci_nvme();
  sim::DeviceSpec scaled = base;
  scaled.scale.compute = 2.0;
  scaled.scale.h2d = 3.0;
  scaled.scale.d2h = 4.0;
  scaled.scale.nvme_read = 5.0;
  scaled.scale.nvme_write = 6.0;
  scaled.scale.cpu_update = 7.0;
  EXPECT_FALSE(scaled.scale.identity());
  const Bytes bytes = 32ll << 20;
  EXPECT_DOUBLE_EQ(scaled.kernel_time(graph::LayerKind::kConv2d, 1e12, bytes),
                   2.0 * base.kernel_time(graph::LayerKind::kConv2d, 1e12,
                                          bytes));
  EXPECT_DOUBLE_EQ(scaled.h2d_time(bytes), 3.0 * base.h2d_time(bytes));
  EXPECT_DOUBLE_EQ(scaled.d2h_time(bytes), 4.0 * base.d2h_time(bytes));
  EXPECT_DOUBLE_EQ(scaled.nvme_read_time(bytes),
                   5.0 * base.nvme_read_time(bytes));
  EXPECT_DOUBLE_EQ(scaled.nvme_write_time(bytes),
                   6.0 * base.nvme_write_time(bytes));
  EXPECT_DOUBLE_EQ(scaled.cpu_update_time(bytes),
                   7.0 * base.cpu_update_time(bytes));
}

// ---------------------------------------------------------------------------
// ProfileRecorder and the profile artifact
// ---------------------------------------------------------------------------

TEST(ProfileRecorder, DerivesPredictionsFromTheDevice) {
  const sim::DeviceSpec device = sim::v100_abci_nvme();
  ProfileRecorder recorder(device, "rn50");
  const Bytes bytes = 16ll << 20;
  recorder.record(CostKind::kH2d, bytes, 0.005);
  recorder.record(CostKind::kCompute, bytes, 0.001);
  recorder.record(CostKind::kNvmeRead, bytes, 0.02);
  ASSERT_EQ(recorder.sample_count(), 3u);
  const ProfileArtifact artifact = recorder.artifact();
  EXPECT_EQ(artifact.device_class, device.name);
  EXPECT_EQ(artifact.model_name, "rn50");
  EXPECT_DOUBLE_EQ(artifact.samples[0].predicted, device.h2d_time(bytes));
  EXPECT_GT(artifact.samples[1].predicted, 0.0);
  EXPECT_DOUBLE_EQ(artifact.samples[2].predicted,
                   device.read_from_tier_time(tier::Tier::kNvme, bytes));
}

TEST(ProfileRecorder, DropsNvmeSamplesWithoutAnNvmeTier) {
  ProfileRecorder recorder(sim::v100_abci());  // no NVMe on this platform
  recorder.record(CostKind::kNvmeWrite, 1 << 20, 0.01);
  recorder.record(CostKind::kNvmeRead, 1 << 20, 0.01);
  EXPECT_EQ(recorder.sample_count(), 0u);
  recorder.record(CostKind::kD2h, 1 << 20, 0.01);
  EXPECT_EQ(recorder.sample_count(), 1u);
}

/// Hand-built artifact with round numbers — stable across platforms.
ProfileArtifact golden_profile() {
  ProfileArtifact artifact;
  artifact.device_class = "golden-device";
  artifact.model_name = "golden-model";
  artifact.samples = {
      {CostKind::kCompute, 1024, 0.5, 0.75},
      {CostKind::kH2d, 2048, 0.25, 0.5},
      {CostKind::kNvmeWrite, 4096, 1.0, 1.5},
  };
  return artifact;
}

TEST(ProfileArtifact, JsonRoundTripsExactly) {
  const ProfileArtifact artifact = golden_profile();
  const ProfileArtifact back = ProfileArtifact::from_json(artifact.to_json());
  EXPECT_EQ(back, artifact);
  EXPECT_EQ(back.to_json(), artifact.to_json());
}

TEST(ProfileArtifact, RejectsBadVersionSkipsUnknownKinds) {
  EXPECT_THROW(ProfileArtifact::from_json("{\"version\":99,\"device_class\":"
                                          "\"x\",\"model_name\":\"\","
                                          "\"samples\":[]}"),
               std::runtime_error);
  EXPECT_THROW(ProfileArtifact::from_json("not json"), std::runtime_error);
  // Unknown kind names are forward-compat: skipped, not fatal.
  const ProfileArtifact sparse = ProfileArtifact::from_json(
      "{\"version\":1,\"device_class\":\"x\",\"model_name\":\"\","
      "\"samples\":[{\"kind\":\"tachyon\",\"bytes\":1,\"predicted\":1.0,"
      "\"measured\":2.0},{\"kind\":\"h2d\",\"bytes\":1,\"predicted\":1.0,"
      "\"measured\":2.0}]}");
  ASSERT_EQ(sparse.samples.size(), 1u);
  EXPECT_EQ(sparse.samples[0].kind, CostKind::kH2d);
}

TEST(ProfileArtifact, GoldenFixtureMatches) {
  const std::string path =
      std::string(KARMA_SOURCE_DIR) + "/tests/golden/profile_fixture.json";
  const std::string actual = golden_profile().to_json();

  if (std::getenv("KARMA_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual << "\n";
    GTEST_SKIP() << "regenerated golden fixture at " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing golden fixture " << path
      << " — regenerate with KARMA_REGEN_GOLDEN=1 ./test_calib";
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string expected = buffer.str();
  if (!expected.empty() && expected.back() == '\n') expected.pop_back();

  EXPECT_EQ(actual, expected)
      << "profile JSON schema drifted; if intentional, regenerate the "
         "fixture with KARMA_REGEN_GOLDEN=1 and review the diff";
  EXPECT_EQ(ProfileArtifact::from_json(expected).to_json(), expected);
}

// ---------------------------------------------------------------------------
// fit(): robust median-ratio estimation
// ---------------------------------------------------------------------------

/// A profile whose measured times are `factor` x the analytic prediction
/// for `kind`, across a spread of sizes.
ProfileArtifact synthetic_profile(const sim::DeviceSpec& device,
                                  CostKind kind, double factor, int n = 8) {
  ProfileRecorder recorder(device, "synthetic");
  for (int i = 0; i < n; ++i) {
    const Bytes bytes = (Bytes{1} << 20) << (i % 5);
    double predicted = 0.0;
    switch (kind) {
      case CostKind::kH2d: predicted = device.h2d_time(bytes); break;
      case CostKind::kD2h: predicted = device.d2h_time(bytes); break;
      case CostKind::kCpuUpdate:
        predicted = device.cpu_update_time(bytes);
        break;
      default:
        predicted = device.kernel_time(graph::LayerKind::kReLU, 0.0, bytes);
    }
    recorder.record_predicted(kind, bytes, predicted, factor * predicted);
  }
  return recorder.artifact();
}

TEST(Fit, RecoversASystematicFactor) {
  const sim::DeviceSpec device = sim::v100_abci();
  const CalibrationTable table =
      fit({synthetic_profile(device, CostKind::kH2d, 1.7)});
  EXPECT_NEAR(table.factor(device.name, CostKind::kH2d), 1.7, 1e-9);
  // Kinds with no samples stay at the identity.
  EXPECT_DOUBLE_EQ(table.factor(device.name, CostKind::kCompute), 1.0);
  EXPECT_EQ(table.sample_count, 8);
}

TEST(Fit, OnePathologicalSampleIsRejected) {
  const sim::DeviceSpec device = sim::v100_abci();
  ProfileArtifact profile = synthetic_profile(device, CostKind::kD2h, 1.3);
  // A page-fault-shaped outlier: 100x the prediction, one sample.
  ProfileSample bad = profile.samples.front();
  bad.measured = bad.predicted * 100.0;
  profile.samples.push_back(bad);
  const CalibrationTable table = fit({profile});
  EXPECT_NEAR(table.factor(device.name, CostKind::kD2h), 1.3, 1e-9);
  EXPECT_GE(table.rejected_outliers, 1);
}

TEST(Fit, FactorsAreClampedToASaneRange) {
  const sim::DeviceSpec device = sim::v100_abci();
  const FitOptions options;
  const CalibrationTable high =
      fit({synthetic_profile(device, CostKind::kH2d, 500.0)});
  EXPECT_DOUBLE_EQ(high.factor(device.name, CostKind::kH2d),
                   options.max_factor);
  const CalibrationTable low =
      fit({synthetic_profile(device, CostKind::kH2d, 1e-4)});
  EXPECT_DOUBLE_EQ(low.factor(device.name, CostKind::kH2d),
                   options.min_factor);
}

TEST(Fit, EmptyProfilesYieldTheIdentityTable) {
  const CalibrationTable table = fit({});
  EXPECT_TRUE(table.empty());
  EXPECT_DOUBLE_EQ(table.factor("anything", CostKind::kCompute), 1.0);
}

// ---------------------------------------------------------------------------
// CalibrationTable: lookup, JSON, hashing, apply()
// ---------------------------------------------------------------------------

CalibrationTable golden_table() {
  CalibrationTable table;
  table.factors["golden-device"] = {{"compute", 1.5}, {"h2d", 2.0}};
  table.factors["*"] = {{"nvme_read", 1.25}};
  table.sample_count = 8;
  table.rejected_outliers = 1;
  return table;
}

TEST(CalibrationTable, ExactCellThenWildcardThenIdentity) {
  const CalibrationTable table = golden_table();
  EXPECT_DOUBLE_EQ(table.factor("golden-device", CostKind::kH2d), 2.0);
  // Wildcard serves kinds the exact row lacks, and unknown devices.
  EXPECT_DOUBLE_EQ(table.factor("golden-device", CostKind::kNvmeRead), 1.25);
  EXPECT_DOUBLE_EQ(table.factor("other-device", CostKind::kNvmeRead), 1.25);
  EXPECT_DOUBLE_EQ(table.factor("other-device", CostKind::kCompute), 1.0);
}

TEST(CalibrationTable, JsonRoundTripAndContentHash) {
  const CalibrationTable table = golden_table();
  const CalibrationTable back = CalibrationTable::from_json(table.to_json());
  EXPECT_EQ(back, table);
  EXPECT_EQ(back.content_hash(), table.content_hash());
  EXPECT_EQ(table.content_hash().size(), 32u);  // digest128 hex

  CalibrationTable perturbed = table;
  perturbed.factors["*"]["nvme_read"] = 1.26;
  EXPECT_NE(perturbed.content_hash(), table.content_hash());
}

TEST(CalibrationTable, RejectsMalformedTables) {
  EXPECT_THROW(CalibrationTable::from_json("{\"version\":7,\"factors\":{}}"),
               std::runtime_error);
  // Non-finite and non-positive factors are corrupt, not creative.
  EXPECT_THROW(CalibrationTable::from_json(
                   "{\"version\":1,\"factors\":{\"d\":{\"h2d\":-1.0}}}"),
               std::runtime_error);
  EXPECT_THROW(CalibrationTable::from_json(
                   "{\"version\":1,\"factors\":{\"d\":{\"h2d\":1e999}}}"),
               std::runtime_error);
}

TEST(CalibrationTable, GoldenFixtureMatches) {
  const std::string path = std::string(KARMA_SOURCE_DIR) +
                           "/tests/golden/calibration_fixture.json";
  const std::string actual = golden_table().to_json();

  if (std::getenv("KARMA_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual << "\n";
    GTEST_SKIP() << "regenerated golden fixture at " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing golden fixture " << path
      << " — regenerate with KARMA_REGEN_GOLDEN=1 ./test_calib";
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string expected = buffer.str();
  if (!expected.empty() && expected.back() == '\n') expected.pop_back();

  EXPECT_EQ(actual, expected)
      << "calibration JSON schema drifted; if intentional, regenerate the "
         "fixture with KARMA_REGEN_GOLDEN=1 and review the diff";
  EXPECT_EQ(CalibrationTable::from_json(expected).to_json(), expected);
}

TEST(Apply, ComposesOntoTheDeviceScale) {
  CalibrationTable table;
  table.factors["*"] = {{"h2d", 2.0}, {"compute", 1.5}};
  sim::DeviceSpec device = sim::v100_abci();
  device.scale.h2d = 3.0;  // pre-existing overlay composes, not replaces
  const sim::DeviceSpec calibrated = apply(table, device);
  EXPECT_DOUBLE_EQ(calibrated.scale.h2d, 6.0);
  EXPECT_DOUBLE_EQ(calibrated.scale.compute, 1.5);
  EXPECT_DOUBLE_EQ(calibrated.scale.d2h, 1.0);
  EXPECT_EQ(calibrated.name, device.name);
  EXPECT_EQ(calibrated.memory_capacity, device.memory_capacity);
}

// ---------------------------------------------------------------------------
// RequestKey invalidation: the calibration hash joins the preamble
// ---------------------------------------------------------------------------

TEST(RequestKey, CalibrationHashReKeysEveryRequest) {
  api::PlanRequest request;
  request.model = graph::make_resnet50(64);
  request.device = sim::v100_abci();
  const auto analytic = cache::request_key(request);
  const auto calibrated = cache::request_key(request, "deadbeef");
  EXPECT_NE(analytic, calibrated);
  EXPECT_EQ(analytic, cache::request_key(request, ""));
  EXPECT_EQ(calibrated, cache::request_key(request, "deadbeef"));
  EXPECT_NE(cache::request_key(request, "deadbeef"),
            cache::request_key(request, "deadbeee"));
}

TEST(RequestKey, DeviceScaleFieldsAreKeyed) {
  api::PlanRequest request;
  request.model = graph::make_resnet50(64);
  request.device = sim::v100_abci();
  const auto analytic = cache::request_key(request);
  request.device.scale.h2d = 2.0;
  EXPECT_NE(cache::request_key(request), analytic);
}

// ---------------------------------------------------------------------------
// repair(): warm-start re-planning under a corrected cost model
// ---------------------------------------------------------------------------

core::PlannerOptions repair_test_options() {
  core::PlannerOptions options;
  options.anneal_iterations = 120;
  return options;
}

TEST(Repair, BudgetIsAScaledFloor) {
  EXPECT_EQ(repair_anneal_budget(2000), 500);
  EXPECT_EQ(repair_anneal_budget(120), 60);   // floored
  EXPECT_EQ(repair_anneal_budget(0), 60);
  EXPECT_EQ(repair_anneal_budget(2000, 0.5), 1000);
}

TEST(Repair, RepairedPlanIsFeasibleAndNeverWorseThanCold) {
  const graph::Model model = graph::make_resnet50(512);  // out-of-core
  const sim::DeviceSpec device = sim::v100_abci();
  const core::PlannerOptions options = repair_test_options();
  const core::PlanResult cold =
      core::KarmaPlanner(model, device, options).plan();

  CalibrationTable table;  // swaps measured ~4x slower than modeled
  table.factors["*"] = {{"h2d", 4.0}, {"d2h", 4.0}};

  const core::PlanResult repaired =
      repair(model, device, table, cold.blocks, cold.policies,
             RepairOptions{options}, {}, cold.search.search_seconds);
  EXPECT_TRUE(repaired.search.warm_started);
  EXPECT_GT(repaired.search.repair_vs_cold_speedup, 0.0);

  // Feasible under the calibrated model: within capacity, sane makespan.
  const sim::DeviceSpec calibrated = apply(table, device);
  EXPECT_LE(repaired.trace.peak_resident, calibrated.memory_capacity);
  EXPECT_GT(repaired.iteration_time, 0.0);

  // Never worse than a cold search under the same calibrated model and
  // the same seed/options: the warm start only ADDS candidates the cold
  // enumeration would also reach, and the anneal+Opt-2 refinements run
  // identically after.
  const core::PlanResult cold_calibrated =
      core::KarmaPlanner(model, calibrated, options).plan();
  EXPECT_LE(repaired.iteration_time,
            cold_calibrated.iteration_time * (1.0 + 1e-12));
}

TEST(Repair, EmptySeedFallsBackToColdSearch) {
  const graph::Model model = graph::make_resnet50(128);
  const sim::DeviceSpec device = sim::v100_abci();
  CalibrationTable table;
  table.factors["*"] = {{"compute", 1.5}};
  const core::PlanResult result =
      repair(model, device, table, {}, {}, RepairOptions{repair_test_options()});
  EXPECT_FALSE(result.search.warm_started);  // nothing to seed from
  EXPECT_GT(result.iteration_time, 0.0);
}

// ---------------------------------------------------------------------------
// Engine: calibrate -> invalidate -> repair -> re-cache
// ---------------------------------------------------------------------------

TEST(EngineCalibration, SwapInvalidatesRepairsAndReCaches) {
  api::EngineOptions options;  // memory-only cache (no dir, no env in CI)
  auto engine = api::Engine::create(options);
  ASSERT_EQ(engine->calibration_hash(), "");

  api::PlanRequest request;
  request.model = graph::make_resnet50(512);
  request.device = sim::v100_abci();
  request.planner.anneal_iterations = 60;

  const auto cold = engine->plan(request);
  ASSERT_TRUE(cold.has_value()) << cold.error().describe();
  EXPECT_FALSE(cold.value().search_stats.warm_started);
  ASSERT_TRUE(engine->try_cached(request).has_value());

  auto table = std::make_shared<const CalibrationTable>([] {
    CalibrationTable t;
    t.factors["*"] = {{"h2d", 3.5}, {"d2h", 3.5}};
    return t;
  }());
  engine->set_calibration(table);
  EXPECT_EQ(engine->calibration_hash(), table->content_hash());

  // The old entry is unreachable under the new key...
  EXPECT_FALSE(engine->try_cached(request).has_value());

  // ...and the re-plan warm-starts from it instead of searching cold,
  // pricing with the calibrated device.
  const auto repaired = engine->plan(request);
  ASSERT_TRUE(repaired.has_value()) << repaired.error().describe();
  EXPECT_TRUE(repaired.value().search_stats.warm_started);
  EXPECT_DOUBLE_EQ(repaired.value().device.scale.h2d, 3.5);

  // Re-cached under the calibrated key.
  const auto warm = engine->try_cached(request);
  ASSERT_TRUE(warm.has_value());
  ASSERT_TRUE(warm->has_value());
  EXPECT_EQ(warm->value().to_json(), repaired.value().to_json());

  // Clearing restores the analytic keying; the original entry is still
  // there and serves again.
  engine->set_calibration(nullptr);
  EXPECT_EQ(engine->calibration_hash(), "");
  const auto analytic_again = engine->try_cached(request);
  ASSERT_TRUE(analytic_again.has_value());
  ASSERT_TRUE(analytic_again->has_value());
  EXPECT_EQ(analytic_again->value().to_json(), cold.value().to_json());
}

TEST(EngineCalibration, KeyForTracksTheActiveTable) {
  auto engine = api::Engine::create({});
  api::PlanRequest request;
  request.model = graph::make_resnet50(64);
  request.device = sim::v100_abci();
  const auto analytic = engine->key_for(request);
  EXPECT_EQ(analytic, cache::request_key(request));

  auto table = std::make_shared<const CalibrationTable>([] {
    CalibrationTable t;
    t.factors["*"] = {{"compute", 1.2}};
    return t;
  }());
  engine->set_calibration(table);
  EXPECT_EQ(engine->key_for(request),
            cache::request_key(request, table->content_hash()));
  EXPECT_NE(engine->key_for(request), analytic);
}

}  // namespace
}  // namespace karma::calib
