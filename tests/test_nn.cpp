// Gradient correctness of every executable layer, verified against
// central finite differences — the foundation under the OOC-equivalence
// tests (a wrong backward would make bitwise comparisons meaningless).
#include "src/train/nn.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "src/train/sgd.h"
#include "src/train/synthetic.h"

namespace karma::train {
namespace {

/// Central-difference check of dL/dx for a scalar loss L = sum(w .* f(x)).
/// `w` is a fixed random weighting making the loss sensitive everywhere.
void check_input_gradient(Layer& layer, const Tensor& x0, float tol) {
  Rng rng(99);
  Tensor y0 = layer.forward(x0);
  Tensor w = Tensor::uniform(y0.shape(), rng, 1.0f);

  // Analytic: dL/dy = w, backprop to dL/dx.
  (void)layer.forward(x0);  // refresh saved state
  const Tensor gx = layer.backward(w);

  const auto loss = [&](const Tensor& x) {
    Tensor y = layer.forward(x);
    double acc = 0.0;
    for (std::size_t i = 0; i < y.numel(); ++i)
      acc += static_cast<double>(y.data()[i]) * w.data()[i];
    return acc;
  };

  const float eps = 1e-3f;
  // Probe a spread of coordinates (all of them for small tensors).
  const std::size_t stride = std::max<std::size_t>(1, x0.numel() / 24);
  for (std::size_t i = 0; i < x0.numel(); i += stride) {
    Tensor xp = x0, xm = x0;
    xp.data()[i] += eps;
    xm.data()[i] -= eps;
    const double numeric = (loss(xp) - loss(xm)) / (2.0 * eps);
    EXPECT_NEAR(gx.data()[i], numeric, tol)
        << layer.name() << " input grad at " << i;
  }
}

/// Checks dL/dW for the first parameter tensor of the layer.
void check_weight_gradient(Layer& layer, const Tensor& x0, float tol) {
  Rng rng(17);
  Tensor y0 = layer.forward(x0);
  Tensor w = Tensor::uniform(y0.shape(), rng, 1.0f);

  auto params = layer.params();
  auto grads = layer.grads();
  ASSERT_FALSE(params.empty());
  for (Tensor* g : grads) g->fill(0.0f);
  (void)layer.forward(x0);
  (void)layer.backward(w);

  const auto loss = [&]() {
    Tensor y = layer.forward(x0);
    double acc = 0.0;
    for (std::size_t i = 0; i < y.numel(); ++i)
      acc += static_cast<double>(y.data()[i]) * w.data()[i];
    return acc;
  };

  Tensor& weight = *params[0];
  const Tensor& gw = *grads[0];
  const float eps = 1e-3f;
  const std::size_t stride = std::max<std::size_t>(1, weight.numel() / 24);
  for (std::size_t i = 0; i < weight.numel(); i += stride) {
    const float original = weight.data()[i];
    weight.data()[i] = original + eps;
    const double lp = loss();
    weight.data()[i] = original - eps;
    const double lm = loss();
    weight.data()[i] = original;
    EXPECT_NEAR(gw.data()[i], (lp - lm) / (2.0 * eps), tol)
        << layer.name() << " weight grad at " << i;
  }
}

TEST(GradCheck, Linear) {
  Rng rng(1);
  Linear layer(6, 4, rng);
  const Tensor x = Tensor::uniform({3, 6}, rng, 1.0f);
  check_input_gradient(layer, x, 5e-2f);
  check_weight_gradient(layer, x, 5e-2f);
}

TEST(GradCheck, ReLU) {
  Rng rng(2);
  ReLU layer;
  // Keep values away from the kink at 0.
  Tensor x = Tensor::uniform({4, 5}, rng, 1.0f);
  for (std::size_t i = 0; i < x.numel(); ++i)
    if (std::fabs(x.data()[i]) < 0.05f) x.data()[i] = 0.5f;
  check_input_gradient(layer, x, 5e-2f);
}

TEST(GradCheck, Conv2d) {
  Rng rng(3);
  Conv2d layer(2, 3, 3, rng);
  const Tensor x = Tensor::uniform({2, 2, 6, 6}, rng, 1.0f);
  check_input_gradient(layer, x, 5e-2f);
  check_weight_gradient(layer, x, 8e-2f);
}

TEST(GradCheck, MaxPool) {
  Rng rng(4);
  MaxPool2d layer;
  // Distinct values avoid argmax ties that break finite differences.
  Tensor x({1, 2, 4, 4});
  for (std::size_t i = 0; i < x.numel(); ++i)
    x.data()[i] = static_cast<float>(i % 13) + 0.1f * static_cast<float>(i);
  check_input_gradient(layer, x, 5e-2f);
}

TEST(GradCheck, Flatten) {
  Rng rng(5);
  Flatten layer;
  const Tensor x = Tensor::uniform({2, 2, 3, 3}, rng, 1.0f);
  check_input_gradient(layer, x, 1e-3f);
}

TEST(GradCheck, SoftmaxCrossEntropy) {
  Rng rng(6);
  const Tensor logits = Tensor::uniform({4, 5}, rng, 2.0f);
  const std::vector<std::size_t> labels = {1, 0, 4, 2};
  SoftmaxCrossEntropy loss;
  const float l0 = loss.forward(logits, labels);
  EXPECT_GT(l0, 0.0f);
  const Tensor g = loss.grad_logits();
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.numel(); i += 3) {
    Tensor lp = logits, lm = logits;
    lp.data()[i] += eps;
    lm.data()[i] -= eps;
    SoftmaxCrossEntropy scratch;
    const double numeric =
        (scratch.forward(lp, labels) - scratch.forward(lm, labels)) /
        (2.0 * eps);
    EXPECT_NEAR(g.data()[i], numeric, 5e-3) << "logit " << i;
  }
}

TEST(SoftmaxCrossEntropy, GradRowsSumToZero) {
  Rng rng(7);
  const Tensor logits = Tensor::uniform({3, 6}, rng, 3.0f);
  SoftmaxCrossEntropy loss;
  loss.forward(logits, {0, 3, 5});
  const Tensor& g = loss.grad_logits();
  for (std::size_t r = 0; r < 3; ++r) {
    float sum = 0.0f;
    for (std::size_t c = 0; c < 6; ++c) sum += g.data()[r * 6 + c];
    EXPECT_NEAR(sum, 0.0f, 1e-6f);
  }
}

TEST(SoftmaxCrossEntropy, RejectsBadLabels) {
  const Tensor logits({2, 3});
  SoftmaxCrossEntropy loss;
  EXPECT_THROW(loss.forward(logits, {0}), std::invalid_argument);
  EXPECT_THROW(loss.forward(logits, {0, 9}), std::invalid_argument);
}

TEST(Sequential, ForwardBackwardComposes) {
  Rng rng(8);
  Sequential net = make_mlp({10, 8, 4}, rng);
  const Tensor x = Tensor::uniform({5, 10}, rng, 1.0f);
  const Tensor y = net.forward(x);
  EXPECT_EQ(y.dim(1), 4u);
  Tensor g(y.shape());
  g.fill(1.0f);
  const Tensor gx = net.backward(g);
  EXPECT_EQ(gx.dim(1), 10u);
  EXPECT_FALSE(net.all_params().empty());
  EXPECT_EQ(net.all_params().size(), net.all_grads().size());
}

TEST(Sequential, ZeroGradsClears) {
  Rng rng(9);
  Sequential net = make_mlp({4, 3}, rng);
  const Tensor x = Tensor::uniform({2, 4}, rng, 1.0f);
  SoftmaxCrossEntropy loss;
  loss.forward(net.forward(x), {0, 2});
  net.backward(loss.grad_logits());
  net.zero_grads();
  for (Tensor* g : net.all_grads())
    for (std::size_t i = 0; i < g->numel(); ++i)
      EXPECT_EQ(g->data()[i], 0.0f);
}

TEST(Sequential, SmallCnnShapes) {
  Rng rng(10);
  Sequential net = make_small_cnn(1, 8, 10, rng);
  const Tensor x = Tensor::uniform({2, 1, 8, 8}, rng, 1.0f);
  const Tensor y = net.forward(x);
  EXPECT_EQ(y.dim(0), 2u);
  EXPECT_EQ(y.dim(1), 10u);
}

TEST(Training, MlpLearnsSyntheticData) {
  Rng rng(11);
  Sequential net = make_mlp({12, 16, 3}, rng);
  Rng data_rng(12);
  const SyntheticBatch batch = make_synthetic_batch(64, {12}, 3, data_rng);
  SGD opt(0.1f, 0.9f);
  SoftmaxCrossEntropy loss;
  float first = 0.0f, last = 0.0f;
  for (int step = 0; step < 60; ++step) {
    net.zero_grads();
    const Tensor logits = net.forward(batch.inputs);
    const float l = loss.forward(logits, batch.labels);
    net.backward(loss.grad_logits());
    opt.step(net.all_params(), net.all_grads());
    if (step == 0) first = l;
    last = l;
  }
  EXPECT_LT(last, first * 0.5f) << "training failed to reduce loss";
}

}  // namespace
}  // namespace karma::train
