// The Fig. 5 strategy set: feasibility and qualitative ordering.
#include "src/baselines/strategies.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/graph/memory_model.h"
#include "src/graph/model_zoo.h"

namespace karma::baselines {
namespace {

const sim::DeviceSpec kDevice = sim::v100_abci();

TEST(Baselines, InCoreFeasibilityMatchesFootprint) {
  EXPECT_TRUE(plan_incore(graph::make_resnet200(4), kDevice).has_value());
  EXPECT_FALSE(plan_incore(graph::make_resnet200(12), kDevice).has_value());
}

TEST(Baselines, AllOocStrategiesHandleResnet200OutOfCore) {
  const graph::Model m = graph::make_resnet200(12);
  ASSERT_GT(graph::in_core_footprint(m), kDevice.memory_capacity);
  EXPECT_TRUE(plan_vdnnpp(m, kDevice).has_value());
  EXPECT_TRUE(plan_ooc_cudnn(m, kDevice).has_value());
  EXPECT_TRUE(plan_superneurons(m, kDevice).has_value());
  EXPECT_TRUE(plan_checkpointing(m, kDevice).has_value());
  EXPECT_TRUE(plan_checkmate(m, kDevice).has_value());
  EXPECT_TRUE(plan_karma(m, kDevice).has_value());
  EXPECT_TRUE(plan_karma_recompute(m, kDevice).has_value());
}

TEST(Baselines, KarmaRecomputeWinsOnResnet200) {
  // The paper's headline: KARMA w/ recompute beats every other method.
  const graph::Model m = graph::make_resnet200(12);
  const double karma =
      plan_karma_recompute(m, kDevice)->iteration_time;
  for (const auto& entry : all_strategies()) {
    if (std::string(entry.name) == "KARMA+recompute" ||
        std::string(entry.name) == "in-core")
      continue;
    const auto result = entry.plan(m, kDevice);
    if (!result) continue;
    EXPECT_LE(karma, result->iteration_time * 1.0001)
        << "KARMA+recompute slower than " << entry.name;
  }
}

TEST(Baselines, KarmaBeatsEagerSwappers) {
  // Fig. 2's claim, quantified: capacity-based beats vDNN++'s eager
  // strategy, which beats ooc_cuDNN's synchronous per-layer swaps.
  const graph::Model m = graph::make_vgg16(64);
  const double karma = plan_karma(m, kDevice)->iteration_time;
  const double vdnn = plan_vdnnpp(m, kDevice)->iteration_time;
  const double ooc = plan_ooc_cudnn(m, kDevice)->iteration_time;
  EXPECT_LT(karma, vdnn * 1.0001);
  EXPECT_LE(vdnn, ooc * 1.0001);
}

TEST(Baselines, PeakMemoryWithinDevice) {
  const graph::Model m = graph::make_resnet200(12);
  for (const auto& entry : all_strategies()) {
    const auto result = entry.plan(m, kDevice);
    if (!result) continue;
    EXPECT_LE(result->trace.peak_resident, kDevice.memory_capacity)
        << entry.name;
  }
}

TEST(Baselines, CheckpointingUsesNoSwaps) {
  const auto result = plan_checkpointing(graph::make_resnet200(12), kDevice);
  ASSERT_TRUE(result);
  for (const auto& op : result->plan.ops) {
    EXPECT_NE(op.kind, sim::OpKind::kSwapIn);
    EXPECT_NE(op.kind, sim::OpKind::kSwapOut);
  }
}

TEST(Baselines, CheckmateAtLeastAsGoodAsSqrtN) {
  // Checkmate searches checkpoint densities; sqrt(N) is one point in its
  // search space.
  const graph::Model m = graph::make_resnet200(12);
  const double checkmate = plan_checkmate(m, kDevice)->iteration_time;
  const double sqrt_n = plan_checkpointing(m, kDevice)->iteration_time;
  EXPECT_LE(checkmate, sqrt_n * 1.0001);
}

TEST(Baselines, SuperNeuronsMixesSwapAndRecompute) {
  const auto result = plan_superneurons(graph::make_resnet200(12), kDevice);
  ASSERT_TRUE(result);
  bool has_swap = false, has_recompute = false;
  for (const auto& op : result->plan.ops) {
    has_swap |= op.kind == sim::OpKind::kSwapOut;
    has_recompute |= op.kind == sim::OpKind::kRecompute;
  }
  EXPECT_TRUE(has_swap);
  EXPECT_TRUE(has_recompute);
}

TEST(Baselines, VdnnSwapsEverythingIncludingTail) {
  // The Fig. 2a inefficiency: the last block is swapped out then
  // immediately needed.
  const auto result = plan_vdnnpp(graph::make_vgg16(64), kDevice);
  ASSERT_TRUE(result);
  const int nb = result->plan.num_blocks();
  bool tail_swapped = false;
  for (const auto& op : result->plan.ops)
    if (op.kind == sim::OpKind::kSwapOut && op.block == nb - 1)
      tail_swapped = true;
  EXPECT_TRUE(tail_swapped);
}

TEST(Baselines, StrategyTableComplete) {
  const auto& entries = all_strategies();
  EXPECT_EQ(entries.size(), 9u);
  EXPECT_STREQ(entries.front().name, "in-core");
  EXPECT_STREQ(entries.back().name, "KARMA+recompute");
}

TEST(Baselines, UnifiedMemorySlowerThanDedicatedOoc) {
  // The Sec. II-A premise for excluding UM from the comparison: demand
  // paging underperforms every dedicated out-of-core method.
  const graph::Model m = graph::make_vgg16(64);
  const auto um = plan_um_naive(m, kDevice);
  const auto ooc = plan_ooc_cudnn(m, kDevice);
  const auto karma = plan_karma_recompute(m, kDevice);
  ASSERT_TRUE(um && ooc && karma);
  EXPECT_GT(um->iteration_time, ooc->iteration_time);
  EXPECT_GT(um->iteration_time, 2.0 * karma->iteration_time);
}

// Geomean speedup across the Fig. 5 models at the paper's second batch
// size: KARMA+recompute vs the best non-KARMA OOC method should show a
// clear aggregate win (the paper reports 1.52x on their hardware).
TEST(Baselines, AggregateSpeedupOverSota) {
  struct Case {
    graph::Model model;
  };
  const std::vector<graph::Model> models = {
      graph::make_resnet50(384), graph::make_vgg16(96),
      graph::make_resnet200(12), graph::make_wrn28_10(768)};
  double log_sum = 0.0;
  int counted = 0;
  for (const auto& m : models) {
    const auto karma = plan_karma_recompute(m, kDevice);
    ASSERT_TRUE(karma) << m.name();
    double best_other = 1e100;
    using PlanFn = std::optional<PlanResult> (*)(const graph::Model&,
                                                 const sim::DeviceSpec&);
    for (PlanFn fn :
         {PlanFn{&plan_vdnnpp}, PlanFn{&plan_ooc_cudnn},
          PlanFn{&plan_superneurons}, PlanFn{&plan_checkmate}}) {
      const auto r = fn(m, kDevice);
      if (r) best_other = std::min(best_other, r->iteration_time);
    }
    ASSERT_LT(best_other, 1e99) << m.name();
    log_sum += std::log(best_other / karma->iteration_time);
    ++counted;
  }
  const double geomean = std::exp(log_sum / counted);
  EXPECT_GT(geomean, 1.0);  // KARMA wins on aggregate
}

}  // namespace
}  // namespace karma::baselines
