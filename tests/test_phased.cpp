// MG-WFBP-style phased gradient exchange (Sec. III-G stage 4).
#include "src/net/phased_exchange.h"

#include <gtest/gtest.h>

#include <numeric>

namespace karma::net {
namespace {

const NetSpec kNet = abci_net();
constexpr int kGpus = 64;

std::vector<Bytes> mb(std::initializer_list<int> mib) {
  std::vector<Bytes> out;
  for (int m : mib) out.push_back(static_cast<Bytes>(m) * 1024 * 1024);
  return out;
}

TEST(Phased, BulkIsOnePhase) {
  const auto plan = bulk_exchange(kNet, kGpus, mb({16, 16, 16, 16}));
  ASSERT_EQ(plan.phases.size(), 1u);
  EXPECT_EQ(plan.phases[0].blocks.size(), 4u);
  EXPECT_EQ(plan.phases[0].launch_after_block, 0);  // after the last bwd
  EXPECT_EQ(plan.total_bytes(), 64 * 1024 * 1024);
}

TEST(Phased, PerBlockIsOnePhaseEach) {
  const auto plan = per_block_exchange(kNet, kGpus, mb({16, 16, 16}));
  ASSERT_EQ(plan.phases.size(), 3u);
  // Backward order: block 2 first.
  EXPECT_EQ(plan.phases[0].blocks[0], 2);
  EXPECT_EQ(plan.phases[2].blocks[0], 0);
}

TEST(Phased, PerBlockSkipsZeroGradBlocks) {
  const auto plan = per_block_exchange(kNet, kGpus, {0, 1 << 20, 0});
  EXPECT_EQ(plan.phases.size(), 1u);
}

TEST(Phased, BytesConservedAcrossModes) {
  const auto grads = mb({1, 64, 2, 32, 4});
  const std::vector<Seconds> bwd(grads.size(), 0.05);
  const Bytes total =
      std::accumulate(grads.begin(), grads.end(), Bytes{0});
  EXPECT_EQ(bulk_exchange(kNet, kGpus, grads).total_bytes(), total);
  EXPECT_EQ(per_block_exchange(kNet, kGpus, grads).total_bytes(), total);
  EXPECT_EQ(merged_exchange(kNet, kGpus, grads, bwd).total_bytes(), total);
}

TEST(Phased, MergedCoalescesTinyBlocks) {
  // Many small gradients: merging must produce fewer phases than
  // per-block (amortizing the alpha term).
  const std::vector<Bytes> grads(20, 64 * 1024);  // 64 KiB each
  const std::vector<Seconds> bwd(grads.size(), 0.001);
  const auto merged = merged_exchange(kNet, kGpus, grads, bwd);
  const auto per_block = per_block_exchange(kNet, kGpus, grads);
  EXPECT_LT(merged.phases.size(), per_block.phases.size());
  EXPECT_LT(merged.total_comm_time(), per_block.total_comm_time());
}

TEST(Phased, MergedKeepsBigBlocksSeparate) {
  // Large per-block gradients are bandwidth-bound: no benefit to merging,
  // and separate phases preserve overlap.
  const auto grads = mb({128, 128, 128, 128});
  const std::vector<Seconds> bwd(grads.size(), 0.5);
  const auto merged = merged_exchange(kNet, kGpus, grads, bwd);
  EXPECT_GE(merged.phases.size(), 3u);
}

TEST(Phased, MergedCoversEveryBlockExactlyOnce) {
  const auto grads = mb({1, 2, 3, 4, 5, 6, 7, 8});
  const std::vector<Seconds> bwd(grads.size(), 0.01);
  const auto plan = merged_exchange(kNet, kGpus, grads, bwd);
  std::vector<int> count(grads.size(), 0);
  for (const auto& phase : plan.phases)
    for (int b : phase.blocks) ++count[static_cast<std::size_t>(b)];
  for (std::size_t b = 0; b < count.size(); ++b)
    EXPECT_EQ(count[b], 1) << "block " << b;
}

TEST(Phased, LaunchBlockIsMinOfGroup) {
  const auto grads = mb({4, 4, 4, 4, 4, 4});
  const std::vector<Seconds> bwd(grads.size(), 0.02);
  const auto plan = merged_exchange(kNet, kGpus, grads, bwd);
  for (const auto& phase : plan.phases) {
    int min_block = phase.blocks.front();
    for (int b : phase.blocks) min_block = std::min(min_block, b);
    EXPECT_EQ(phase.launch_after_block, min_block);
  }
}

TEST(Phased, SizeMismatchRejected) {
  EXPECT_THROW(
      merged_exchange(kNet, kGpus, mb({1, 2}), std::vector<Seconds>{0.1}),
      std::invalid_argument);
}

TEST(Phased, PhaseTimesMatchCollectiveModel) {
  const auto grads = mb({32});
  const auto plan = per_block_exchange(kNet, kGpus, grads);
  ASSERT_EQ(plan.phases.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.phases[0].allreduce_time,
                   hierarchical_allreduce_time(kNet, kGpus, grads[0]));
}

}  // namespace
}  // namespace karma::net
