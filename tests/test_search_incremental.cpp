// Checkpointed incremental re-simulation + portfolio annealing
// (DESIGN.md §14).
//
// The load-bearing property here is BIT-IDENTITY: a replay resumed from a
// clean-instant checkpoint must equal the from-scratch replay field for
// field — not approximately, exactly. Everything else in §14 leans on it:
// the candidate memo can be shared across portfolio workers only because
// a memoized value and a recomputed one can never differ, and the stable
// reduction makes the N-worker search deterministic only because each
// walk's observed energies are scheduling-independent.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/planner.h"
#include "src/core/schedule_gen.h"
#include "src/graph/model_zoo.h"
#include "src/sim/engine.h"
#include "src/util/infeasible.h"
#include "src/util/rng.h"

namespace karma {
namespace {

using core::BlockPolicy;
using core::KarmaPlanner;
using core::PlannerOptions;
using core::PlanResult;

void expect_traces_identical(const sim::ExecutionTrace& a,
                             const sim::ExecutionTrace& b,
                             const std::string& what) {
  ASSERT_EQ(a.records.size(), b.records.size()) << what;
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const auto& ra = a.records[i];
    const auto& rb = b.records[i];
    EXPECT_EQ(ra.op_index, rb.op_index) << what << " record " << i;
    EXPECT_EQ(ra.kind, rb.kind) << what << " record " << i;
    EXPECT_EQ(ra.block, rb.block) << what << " record " << i;
    EXPECT_EQ(ra.iteration, rb.iteration) << what << " record " << i;
    // Bit-equality on the floats, deliberately: a resumed replay runs the
    // same arithmetic in the same order, so even rounding must agree.
    EXPECT_EQ(ra.start, rb.start) << what << " record " << i;
    EXPECT_EQ(ra.end, rb.end) << what << " record " << i;
    EXPECT_EQ(ra.stall, rb.stall) << what << " record " << i;
  }
  EXPECT_EQ(a.makespan, b.makespan) << what;
  EXPECT_EQ(a.compute_busy, b.compute_busy) << what;
  EXPECT_EQ(a.peak_resident, b.peak_resident) << what;
  EXPECT_EQ(a.peak_host_resident, b.peak_host_resident) << what;
  EXPECT_EQ(a.peak_nvme_resident, b.peak_nvme_resident) << what;
}

/// A mixed policy vector over `blocks` driven by the rng — exercises
/// swap, recompute, and resident blocks in one plan. Biased toward
/// offload policies: the fixtures are out-of-core, so resident-heavy
/// draws mostly deadlock and teach the property test nothing.
std::vector<BlockPolicy> random_policies(std::size_t blocks, Rng& rng,
                                         bool allow_nvme) {
  std::vector<BlockPolicy> policies(blocks, BlockPolicy::kResident);
  for (std::size_t b = 0; b + 1 < blocks; ++b) {
    switch (rng.next_below(allow_nvme ? 8 : 6)) {
      case 0:
      case 1:
      case 2: policies[b] = BlockPolicy::kSwap; break;
      case 3:
      case 4: policies[b] = BlockPolicy::kRecompute; break;
      case 5: policies[b] = BlockPolicy::kResident; break;
      default: policies[b] = BlockPolicy::kSwapNvme; break;
    }
  }
  return policies;
}

/// One random interior-boundary move over clean cut points, mirroring the
/// annealer's neighbor function.
std::vector<int> perturb_cuts(const std::vector<int>& cuts,
                              const std::vector<int>& cut_points, Rng& rng) {
  auto next = cuts;
  if (next.size() <= 2) return next;
  const std::size_t pick =
      1 + static_cast<std::size_t>(rng.next_below(next.size() - 2));
  const auto it =
      std::lower_bound(cut_points.begin(), cut_points.end(), next[pick]);
  const bool up = rng.next_below(2) == 1;
  if (up && it + 1 != cut_points.end())
    next[pick] = *(it + 1);
  else if (!up && it != cut_points.begin())
    next[pick] = *(it - 1);
  for (std::size_t i = 1; i < next.size(); ++i)
    if (next[i] <= next[i - 1]) return cuts;
  return next;
}

std::vector<sim::Block> blocks_of(const std::vector<int>& cuts) {
  std::vector<sim::Block> blocks;
  for (std::size_t i = 0; i + 1 < cuts.size(); ++i)
    blocks.push_back({cuts[i], cuts[i + 1]});
  return blocks;
}

// ---- The core property: resume == replay, over random models, devices,
// policies, and boundary moves.

TEST(IncrementalResim, ResumedReplayBitIdenticalToColdReplay) {
  struct Fixture {
    graph::Model model;
    sim::DeviceSpec device;
    bool allow_nvme;
  };
  const std::vector<Fixture> fixtures = {
      {graph::make_resnet50(512), sim::v100_abci(), false},
      {graph::make_vgg16(64), sim::v100_abci(), false},
      {graph::make_resnet50(384), sim::v100_abci_nvme(), true},
  };
  Rng rng(0xfeedface);
  for (const auto& fx : fixtures) {
    const auto cut_points = core::clean_cut_points(fx.model);
    // Start from a blocking the planner itself considers feasible (naive
    // equal-count slices leave blocks whose transients exceed capacity on
    // the out-of-core fixtures).
    PlannerOptions opts;
    opts.anneal_iterations = 0;
    const PlanResult seed =
        KarmaPlanner(fx.model, fx.device, opts).plan();
    std::vector<int> cuts = {0};
    for (const auto& b : seed.blocks) cuts.push_back(b.last_layer);

    int resumed = 0;
    for (int trial = 0; trial < 40; ++trial) {
      const auto base_blocks = blocks_of(cuts);
      auto base_policies =
          random_policies(base_blocks.size(), rng, fx.allow_nvme);
      sim::Plan base_plan;
      try {
        base_plan = core::build_training_plan(fx.model, fx.device,
                                              base_blocks, base_policies,
                                              "prop", {});
      } catch (const std::exception&) {
        continue;  // infeasible random policy draw; try another
      }
      const sim::Engine engine(fx.device);
      sim::CheckpointLog log;
      sim::ExecutionTrace base_trace;
      try {
        base_trace = engine.run(base_plan, nullptr, &log);
      } catch (const std::exception&) {
        continue;  // deadlocked draw
      }
      ASSERT_FALSE(log.empty());  // forward-phase checkpoints recorded

      // Perturb the boundaries (annealer move) and keep the surviving
      // policy prefix — a realistic "suffix changed" candidate: blocks
      // before the moved cut keep their extents AND their policies, so
      // the plans share a real op prefix.
      const auto moved = perturb_cuts(cuts, cut_points, rng);
      const auto next_blocks = blocks_of(moved);
      std::size_t first_changed = 0;
      while (first_changed < next_blocks.size() &&
             first_changed < base_blocks.size() &&
             next_blocks[first_changed].first_layer ==
                 base_blocks[first_changed].first_layer &&
             next_blocks[first_changed].last_layer ==
                 base_blocks[first_changed].last_layer)
        ++first_changed;
      auto next_policies =
          random_policies(next_blocks.size(), rng, fx.allow_nvme);
      for (std::size_t b = 0; b < first_changed && b + 1 < next_policies.size();
           ++b)
        next_policies[b] = base_policies[b];
      sim::Plan next_plan;
      try {
        next_plan = core::build_training_plan(fx.model, fx.device,
                                              next_blocks, next_policies,
                                              "prop", {});
      } catch (const std::exception&) {
        continue;
      }
      const int lcp = sim::common_op_prefix(base_plan, next_plan);
      const sim::EngineCheckpoint* ck = log.best_at_or_below(lcp);

      sim::ExecutionTrace cold;
      try {
        cold = engine.run(next_plan);
      } catch (const std::exception&) {
        // The perturbed plan deadlocks: the resumed run must agree on
        // THAT too (same typed failure), not produce a trace.
        if (ck) {
          sim::CheckpointLog dummy;
          dummy.seed_from(log, ck->cut);
          EXPECT_THROW(engine.run(next_plan, ck, &dummy), InfeasibleError);
        }
        continue;
      }
      sim::CheckpointLog next_log;
      if (ck) next_log.seed_from(log, ck->cut);
      const sim::ExecutionTrace warm =
          engine.run(next_plan, ck, &next_log);
      expect_traces_identical(cold, warm, fx.model.name());
      if (ck && ck->cut > 0) ++resumed;
      // The resumed run's own log must keep composing: deepest cut grows
      // past the seed (it records the suffix it actually replayed).
      if (ck) EXPECT_GE(next_log.max_cut(), ck->cut);
    }
    // The property must have been exercised by real resumes, not 12
    // degenerate lcp=0 passes.
    EXPECT_GT(resumed, 0) << fx.model.name();
  }
}

TEST(IncrementalResim, CommonOpPrefixGuardsPreconditions) {
  const graph::Model m = graph::make_resnet50(512);
  const sim::DeviceSpec d = sim::v100_abci();
  const auto cut_points = core::clean_cut_points(m);
  std::vector<int> cuts = {cut_points.front(),
                           cut_points[cut_points.size() / 2],
                           cut_points.back()};
  const auto blocks = blocks_of(cuts);
  std::vector<BlockPolicy> policies(blocks.size(), BlockPolicy::kSwap);
  policies.back() = BlockPolicy::kResident;
  const sim::Plan a = core::build_training_plan(m, d, blocks, policies,
                                                "guard", {});
  // Identical plans: the whole op list is common.
  EXPECT_EQ(sim::common_op_prefix(a, a), static_cast<int>(a.ops.size()));
  // A different capacity is a different simulation from op 0 on.
  sim::Plan b = a;
  b.capacity -= 1;
  EXPECT_EQ(sim::common_op_prefix(a, b), 0);
  // A changed cost row kills the prefix at the op touching that block,
  // even though the op list matches.
  sim::Plan c = a;
  c.costs[0].fwd_time *= 2.0;
  EXPECT_EQ(sim::common_op_prefix(a, c), 0);
}

TEST(IncrementalResim, ReferenceEventLoopBitIdenticalToIndexedLoop) {
  // bench/fig_search.cpp's baseline leg replays with the seed engine's
  // O(n)-sweep event loop (EngineOptions.reference_event_loop). It must
  // be a pure performance reference — same traces, same deadlocks — or
  // the bench compares two different simulators.
  const graph::Model m = graph::make_resnet50(1024);
  const sim::DeviceSpec d = sim::v100_abci();
  PlannerOptions opts;
  opts.anneal_iterations = 0;
  const PlanResult seed = KarmaPlanner(m, d, opts).plan();
  const sim::Engine indexed(d);
  const sim::Engine reference(d, {.reference_event_loop = true});
  Rng rng(0x100b);
  int compared = 0;
  for (int trial = 0; trial < 24; ++trial) {
    // Start from the planner's own feasible policies (trial 0 is exactly
    // the seed plan) and flip a few blocks between swap and recompute.
    // The batch-1024 fixture is so tight that fully random draws — any
    // resident interior block — deadlock every time and test nothing.
    auto policies = seed.policies;
    for (int flip = 0; flip < trial; ++flip) {
      const std::size_t b =
          static_cast<std::size_t>(rng.next_below(policies.size() - 1));
      policies[b] = rng.next_below(2) == 0 ? BlockPolicy::kSwap
                                           : BlockPolicy::kRecompute;
    }
    sim::Plan plan;
    try {
      plan = core::build_training_plan(m, d, seed.blocks, policies,
                                       "ref-loop", {});
    } catch (const InfeasibleError&) {
      continue;  // routing rejected the draw; nothing to compare
    }
    sim::ExecutionTrace a;
    bool a_deadlocked = false;
    try {
      a = indexed.run(plan);
    } catch (const InfeasibleError&) {
      a_deadlocked = true;
    }
    if (a_deadlocked) {
      EXPECT_THROW(reference.run(plan), InfeasibleError)
          << "trial " << trial << ": loops disagree on deadlock";
      continue;
    }
    const sim::ExecutionTrace b = reference.run(plan);
    expect_traces_identical(a, b, "trial " + std::to_string(trial));
    ++compared;
  }
  EXPECT_GT(compared, 0) << "every draw deadlocked; property untested";
}

// ---- Planner-level guarantees.

PlannerOptions search_options(int workers, bool incremental) {
  PlannerOptions o;
  o.enable_recompute = true;
  o.anneal_iterations = 80;
  o.anneal_workers = workers;
  o.incremental_resim = incremental;
  return o;
}

void expect_results_identical(const PlanResult& a, const PlanResult& b,
                              const std::string& what) {
  EXPECT_EQ(a.iteration_time, b.iteration_time) << what;
  EXPECT_EQ(a.blocks.size(), b.blocks.size()) << what;
  EXPECT_EQ(a.policies, b.policies) << what;
  EXPECT_EQ(a.plan.schedule_string(), b.plan.schedule_string()) << what;
  expect_traces_identical(a.trace, b.trace, what);
}

TEST(IncrementalResim, PlannerResultIndependentOfIncrementalSwitch) {
  // incremental_resim is an optimization, never a semantic switch: the
  // full search must land on the bit-identical plan with it on or off.
  // (This is also why it is excluded from the request fingerprint.)
  const graph::Model m = graph::make_resnet50(512);
  const KarmaPlanner on(m, sim::v100_abci(), search_options(4, true));
  const KarmaPlanner off(m, sim::v100_abci(), search_options(4, false));
  const PlanResult a = on.plan();
  const PlanResult b = off.plan();
  expect_results_identical(a, b, "incremental on vs off");
  EXPECT_GT(a.search.incremental_resumes, 0);
  EXPECT_GT(a.search.resumed_ops_saved, 0);
  EXPECT_EQ(b.search.incremental_resumes, 0);
}

TEST(PortfolioSearch, NWorkerPlanBitIdenticalAcrossRuns) {
  // Same seed, N threads, two runs: thread timing must not leak into the
  // chosen plan. Runs under the TSan CI job with real concurrency.
  const graph::Model m = graph::make_resnet50(512);
  const KarmaPlanner planner(m, sim::v100_abci(), search_options(4, true));
  const PlanResult a = planner.plan();
  const PlanResult b = planner.plan();
  expect_results_identical(a, b, "two 4-worker runs");
  EXPECT_EQ(a.search.anneal_workers, 4);
}

TEST(PortfolioSearch, ReferenceEngineLoopPlansBitIdentically) {
  // The two replay-path switches (reference_engine_loop, incremental_resim)
  // must never shift the search: a planner on the seed event loop without
  // incremental resume — bench/fig_search.cpp's baseline leg — lands on
  // the bit-identical plan the default configuration finds.
  const graph::Model m = graph::make_resnet50(512);
  PlannerOptions baseline = search_options(1, false);
  baseline.reference_engine_loop = true;
  const PlanResult a =
      KarmaPlanner(m, sim::v100_abci(), baseline).plan();
  const PlanResult b =
      KarmaPlanner(m, sim::v100_abci(), search_options(1, true)).plan();
  expect_results_identical(a, b, "reference loop vs indexed+incremental");
}

TEST(PortfolioSearch, NWorkersNeverWorseThanOne) {
  // The 1-worker walk is one of the portfolio's diversification rungs in
  // budget terms, not a strict subset — so the N-worker result may DIFFER
  // from the serial one, but the documented contract is it never loses:
  // more diversified walks over the same shared memo can only add
  // candidates to the reduction.
  for (std::int64_t batch : {384, 512}) {
    const graph::Model m = graph::make_resnet50(batch);
    const PlanResult one =
        KarmaPlanner(m, sim::v100_abci(), search_options(1, true)).plan();
    const PlanResult four =
        KarmaPlanner(m, sim::v100_abci(), search_options(4, true)).plan();
    EXPECT_LE(four.iteration_time, one.iteration_time * (1.0 + 1e-9))
        << "batch " << batch;
  }
}

TEST(PortfolioSearch, RepairRidesSuffixResim) {
  // ROADMAP item 4's composition point: plan_from seeds the incremental
  // baseline with the repair seed's replay, so warm-start candidates
  // resume mid-plan instead of re-simulating from op 0.
  const graph::Model m = graph::make_resnet50(512);
  const KarmaPlanner planner(m, sim::v100_abci(), search_options(4, true));
  const PlanResult cold = planner.plan();
  const PlanResult repaired = planner.plan_from(cold.blocks, cold.policies);
  EXPECT_TRUE(repaired.search.warm_started);
  EXPECT_GT(repaired.search.incremental_resumes, 0);
  // Warm start must not land anywhere worse than the seed it was given.
  EXPECT_LE(repaired.iteration_time, cold.iteration_time * (1.0 + 1e-9));
}

}  // namespace
}  // namespace karma
