// The 5-stage distributed pipeline (Sec. III-G / Fig. 3) and the
// large-scale analytic baselines.
#include "src/core/distributed.h"

#include <gtest/gtest.h>

#include "src/baselines/parallelism.h"
#include "src/graph/model_zoo.h"

namespace karma::core {
namespace {

const sim::DeviceSpec kDevice = sim::v100_abci();

DistributedOptions base_options(int gpus) {
  DistributedOptions o;
  o.num_gpus = gpus;
  o.iterations = 3;
  o.planner.anneal_iterations = 0;
  return o;
}

TEST(Distributed, ResnetWeightsStayResident) {
  const auto r = plan_data_parallel(graph::make_resnet50(256), kDevice,
                                    base_options(16));
  EXPECT_TRUE(r.weights_resident);
  EXPECT_GT(r.iteration_time, 0.0);
  EXPECT_FALSE(r.exchange.phases.empty());
}

TEST(Distributed, MegatronWeightsAreSwapped) {
  // 2.5B fp16 params cannot stay on a 16 GiB card.
  const auto model = graph::make_transformer(graph::megatron_config(2), 4);
  const auto r = plan_data_parallel(model, kDevice, base_options(128));
  EXPECT_FALSE(r.weights_resident);
  EXPECT_LE(r.trace.peak_resident, kDevice.memory_capacity);
}

TEST(Distributed, FiveStageOpsAllPresent) {
  const auto model = graph::make_transformer(graph::megatron_config(0), 4);
  const auto r = plan_data_parallel(model, kDevice, base_options(32));
  bool has[7] = {};
  for (const auto& op : r.plan.ops) has[static_cast<int>(op.kind)] = true;
  EXPECT_TRUE(has[static_cast<int>(sim::OpKind::kForward)]);
  EXPECT_TRUE(has[static_cast<int>(sim::OpKind::kBackward)]);
  EXPECT_TRUE(has[static_cast<int>(sim::OpKind::kSwapOut)]);   // stage 3
  EXPECT_TRUE(has[static_cast<int>(sim::OpKind::kSwapIn)]);
  EXPECT_TRUE(has[static_cast<int>(sim::OpKind::kAllReduce)]); // stage 4
  EXPECT_TRUE(has[static_cast<int>(sim::OpKind::kCpuUpdate)]); // stage 5
}

TEST(Distributed, SteadyStateNoSlowerThanTwiceCompute) {
  // The 5-stage pipeline must overlap: steady-state iterations should not
  // degenerate to fully serialized stages.
  const auto model = graph::make_transformer(graph::megatron_config(0), 4);
  const auto r = plan_data_parallel(model, kDevice, base_options(32));
  EXPECT_LT(r.iteration_time, r.first_iteration_time * 2.0);
  EXPECT_GT(r.iteration_time, 0.0);
}

TEST(Distributed, MergedExchangeNoSlowerThanBulk) {
  const auto model = graph::make_resnet50(128);
  auto opts = base_options(64);
  opts.exchange = ExchangeMode::kBulk;
  const auto bulk = plan_data_parallel(model, kDevice, opts);
  opts.exchange = ExchangeMode::kMerged;
  const auto merged = plan_data_parallel(model, kDevice, opts);
  EXPECT_LE(merged.iteration_time, bulk.iteration_time * 1.02);
}

TEST(Distributed, CpuUpdateBeatsDeviceUpdateWhenWeightsSwapped) {
  // Sec. III-G: the trivial workaround (GPU-side update of swapped
  // weights) pays an extra PCIe round trip per block.
  const auto model = graph::make_transformer(graph::megatron_config(0), 4);
  auto opts = base_options(32);
  opts.update = UpdateSite::kCpu;
  const auto cpu = plan_data_parallel(model, kDevice, opts);
  opts.update = UpdateSite::kDevice;
  const auto gpu = plan_data_parallel(model, kDevice, opts);
  EXPECT_LT(cpu.iteration_time, gpu.iteration_time * 1.0001);
}

TEST(Distributed, ZeroShardingReducesIterationTime) {
  // KARMA-on-ZeRO: a smaller per-rank weight shard means less swap
  // traffic and a faster pipeline.
  const auto model = graph::make_transformer(graph::megatron_config(2), 2);
  auto opts = base_options(256);
  const auto plain = plan_data_parallel(model, kDevice, opts);
  opts.weight_shard_fraction = 0.25;
  const auto sharded = plan_data_parallel(model, kDevice, opts);
  EXPECT_LT(sharded.iteration_time, plain.iteration_time * 1.0001);
}

TEST(Distributed, MoreGpusSlowerExchangeSameCompute) {
  const auto model = graph::make_resnet50(128);
  const auto small = plan_data_parallel(model, kDevice, base_options(8));
  const auto large = plan_data_parallel(model, kDevice, base_options(512));
  // Exchange grows with scale but the pipeline absorbs most of it.
  EXPECT_GE(large.iteration_time, small.iteration_time * 0.95);
  EXPECT_LT(large.iteration_time, small.iteration_time * 3.0);
}

TEST(Distributed, PlanValidates) {
  const auto model = graph::make_transformer(graph::megatron_config(0), 4);
  const auto r = plan_data_parallel(model, kDevice, base_options(16));
  EXPECT_NO_THROW(sim::validate_plan(r.plan));
}

// ---- Bounded per-tier residency (DESIGN.md §9) ----

TEST(Distributed, MultiIterationPipelineAdmitsAgainstBoundedHostLedger) {
  // Regression: this megatron_dp-style multi-iteration pipeline used to
  // rely on the "host tier stays unbounded" carve-out, because gradient-
  // out / CPU-update / weight-refresh traffic broke the ledger's
  // swap-out/swap-in pairing. With per-class residency it must admit
  // against the *bounded* DRAM of the NVMe node and replay every
  // iteration within it.
  const auto model = graph::make_transformer(graph::megatron_config(1), 4);
  const sim::DeviceSpec device = sim::v100_abci_nvme();
  auto options = base_options(64);
  options.iterations = 4;
  const auto r = plan_data_parallel(model, device, options);

  ASSERT_TRUE(r.plan.hierarchy.has_value());
  const tier::TierSpec& host = r.plan.hierarchy->spec(tier::Tier::kHost);
  EXPECT_FALSE(host.unbounded()) << "unbounded-host carve-out resurfaced";
  EXPECT_GT(r.plan.host_baseline_resident, 0)
      << "pinned weight shards missing from the host baseline";
  // The engine's ledger replayed 4 iterations inside the bounded tier:
  // peak includes the pinned shards and never exceeds what was admitted.
  EXPECT_GE(r.trace.peak_host_resident, r.plan.host_baseline_resident);
  EXPECT_LE(r.trace.peak_host_resident, host.capacity);
  EXPECT_GT(r.iteration_time, 0.0);
  EXPECT_NO_THROW(sim::validate_plan(r.plan));
}

TEST(Distributed, ShardResidencyOverflowIsRejectedNotAdmitted) {
  // DRAM smaller than the pinned shards + in-flight gradients: no plan
  // may be admitted (previously the carve-out would have waved it
  // through with an unbounded host ledger).
  const auto model = graph::make_transformer(graph::megatron_config(0), 4);
  sim::DeviceSpec device = sim::v100_abci_nvme();
  device.host_capacity = 256_MiB;  // << the fp16 shard residency
  auto options = base_options(16);
  EXPECT_THROW(plan_data_parallel(model, device, options),
               std::runtime_error);
}

TEST(Distributed, ZeroShardingShrinksHostBaseline) {
  // ZeRO-style partitioning shrinks the per-rank pinned master copy, so
  // the host baseline must scale with the shard fraction.
  const auto model = graph::make_transformer(graph::megatron_config(1), 2);
  const sim::DeviceSpec device = sim::v100_abci_nvme();
  auto options = base_options(64);
  const auto plain = plan_data_parallel(model, device, options);
  options.weight_shard_fraction = 0.25;
  const auto sharded = plan_data_parallel(model, device, options);
  EXPECT_GT(plain.plan.host_baseline_resident, 0);
  EXPECT_LT(sharded.plan.host_baseline_resident,
            plain.plan.host_baseline_resident);
  EXPECT_LE(sharded.trace.peak_host_resident, plain.trace.peak_host_resident);
}

// ---- Analytic parallelism baselines ----

TEST(Parallelism, HybridCostComponentsPositive) {
  baselines::HybridConfig cfg;
  cfg.model = graph::megatron_config(4);  // 8.3B
  cfg.num_gpus = 1024;
  cfg.mp_ways = 16;
  cfg.batch_per_group = 8;
  const auto cost = baselines::megatron_hybrid_cost(cfg, kDevice, net::abci_net());
  EXPECT_GT(cost.compute, 0.0);
  EXPECT_GT(cost.mp_comm, 0.0);
  EXPECT_GT(cost.dp_comm, 0.0);
  EXPECT_DOUBLE_EQ(cost.iteration, cost.compute + cost.mp_comm + cost.dp_comm);
  EXPECT_EQ(cost.samples_per_iteration, 64 * 8);
}

TEST(Parallelism, PhasedExchangeReducesDpComm) {
  baselines::HybridConfig cfg;
  cfg.model = graph::megatron_config(2);
  cfg.num_gpus = 512;
  cfg.mp_ways = 4;
  cfg.batch_per_group = 8;
  const auto plain = baselines::megatron_hybrid_cost(cfg, kDevice, net::abci_net());
  cfg.phased_exchange = true;
  const auto phased = baselines::megatron_hybrid_cost(cfg, kDevice, net::abci_net());
  EXPECT_LT(phased.dp_comm, plain.dp_comm);
  EXPECT_DOUBLE_EQ(phased.compute, plain.compute);
}

TEST(Parallelism, MpCommGrowsWithMpWays) {
  baselines::HybridConfig cfg;
  cfg.model = graph::megatron_config(2);
  cfg.num_gpus = 512;
  cfg.batch_per_group = 8;
  cfg.mp_ways = 2;
  const auto mp2 = baselines::megatron_hybrid_cost(cfg, kDevice, net::abci_net());
  cfg.mp_ways = 8;
  const auto mp8 = baselines::megatron_hybrid_cost(cfg, kDevice, net::abci_net());
  EXPECT_GT(mp8.mp_comm, mp2.mp_comm);
  EXPECT_LT(mp8.compute, mp2.compute);  // more slicing, less per-GPU work
}

TEST(Parallelism, ZeroCostBetweenPlainAndNothing) {
  baselines::HybridConfig cfg;
  cfg.model = graph::turing_nlg_config();
  cfg.num_gpus = 1024;
  cfg.mp_ways = 16;
  cfg.batch_per_group = 8;
  const auto hybrid = baselines::megatron_hybrid_cost(cfg, kDevice, net::abci_net());
  const auto zero = baselines::zero_cost(cfg, kDevice, net::abci_net());
  EXPECT_DOUBLE_EQ(zero.compute, hybrid.compute);
  EXPECT_GT(zero.iteration, 0.0);
}

TEST(Parallelism, EpochHours) {
  baselines::HybridCost cost;
  cost.iteration = 3.6;  // seconds
  cost.samples_per_iteration = 1000;
  // 7.2M samples -> 7200 iterations -> 7.2 hours * 3.6/3600...
  EXPECT_NEAR(baselines::epoch_hours(cost, 7'200'000), 7.2, 1e-9);
  cost.samples_per_iteration = 0;
  EXPECT_THROW(baselines::epoch_hours(cost, 1), std::invalid_argument);
}

TEST(Parallelism, InvalidConfigsRejected) {
  baselines::HybridConfig cfg;
  cfg.model = graph::megatron_config(0);
  cfg.num_gpus = 4;
  cfg.mp_ways = 8;  // more MP ways than GPUs
  EXPECT_THROW(baselines::megatron_hybrid_cost(cfg, kDevice, net::abci_net()),
               std::invalid_argument);
}

}  // namespace
}  // namespace karma::core
