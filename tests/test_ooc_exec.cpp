// The heart of the reproduction's correctness story: out-of-core
// execution (swap / recompute / CPU update) is bit-identical to in-core
// training, while actually fitting in a pool the in-core run overflows.
#include "src/train/ooc_exec.h"

#include <gtest/gtest.h>

#include "src/train/synthetic.h"

namespace karma::train {
namespace {

using core::BlockPolicy;

constexpr std::uint64_t kSeed = 2024;

Sequential fresh_mlp() {
  Rng rng(kSeed);
  return make_mlp({20, 32, 32, 32, 5}, rng);
}

SyntheticBatch batch() {
  Rng rng(77);
  return make_synthetic_batch(16, {20}, 5, rng);
}

/// Gradients of an in-core reference run.
std::vector<Tensor> reference_grads(const SyntheticBatch& data) {
  Sequential net = fresh_mlp();
  net.zero_grads();
  SoftmaxCrossEntropy loss;
  const Tensor logits = net.forward(data.inputs);
  loss.forward(logits, data.labels);
  net.backward(loss.grad_logits());
  std::vector<Tensor> grads;
  for (Tensor* g : net.all_grads()) grads.push_back(*g);
  return grads;
}

std::vector<OocBlock> blocks_with(BlockPolicy policy, std::size_t layers,
                                  std::size_t per_block = 2) {
  return uniform_ooc_blocks(layers, per_block, policy);
}

void expect_grads_bitwise(Sequential& net,
                          const std::vector<Tensor>& reference) {
  const auto grads = net.all_grads();
  ASSERT_EQ(grads.size(), reference.size());
  for (std::size_t i = 0; i < grads.size(); ++i)
    EXPECT_TRUE(bitwise_equal(*grads[i], reference[i])) << "grad " << i;
}

TEST(OocExec, SwapPolicyBitwiseIdenticalToInCore) {
  const SyntheticBatch data = batch();
  const auto reference = reference_grads(data);
  Sequential net = fresh_mlp();
  OocExecutor exec(&net, blocks_with(BlockPolicy::kSwap, net.size()),
                   Bytes{1} << 30);
  const StepStats stats = exec.compute_gradients(data.inputs, data.labels);
  EXPECT_GT(stats.swapped_out_bytes, 0);
  EXPECT_EQ(stats.swapped_in_bytes, stats.swapped_out_bytes);
  expect_grads_bitwise(net, reference);
}

TEST(OocExec, RecomputePolicyBitwiseIdenticalToInCore) {
  const SyntheticBatch data = batch();
  const auto reference = reference_grads(data);
  Sequential net = fresh_mlp();
  OocExecutor exec(&net, blocks_with(BlockPolicy::kRecompute, net.size()),
                   Bytes{1} << 30);
  const StepStats stats = exec.compute_gradients(data.inputs, data.labels);
  EXPECT_GT(stats.recomputed_layers, 0);
  EXPECT_EQ(stats.swapped_out_bytes, 0);
  expect_grads_bitwise(net, reference);
}

TEST(OocExec, NvmePolicyBitwiseIdenticalToInCore) {
  // The storage-tier path runs the same protocol through the slower
  // (size-modeled) store — numerics must not notice the medium.
  const SyntheticBatch data = batch();
  const auto reference = reference_grads(data);
  Sequential net = fresh_mlp();
  OocExecutor exec(&net, blocks_with(BlockPolicy::kSwapNvme, net.size()),
                   Bytes{1} << 30);
  const StepStats stats = exec.compute_gradients(data.inputs, data.labels);
  EXPECT_GT(stats.nvme_out_bytes, 0);
  EXPECT_EQ(stats.nvme_in_bytes, stats.nvme_out_bytes);
  EXPECT_EQ(stats.swapped_out_bytes, 0);  // nothing through the host store
  EXPECT_GT(stats.peak_nvme_bytes, 0);
  EXPECT_EQ(stats.peak_host_bytes, 0);
  expect_grads_bitwise(net, reference);
}

TEST(OocExec, TieredStoresBitwiseIdenticalToInCore) {
  // Host-bound early blocks, NVMe-bound late blocks, and a bounded host
  // store: the tiered protocol end to end on real values.
  const SyntheticBatch data = batch();
  const auto reference = reference_grads(data);
  Sequential net = fresh_mlp();
  auto blocks = blocks_with(BlockPolicy::kSwap, net.size());
  ASSERT_GE(blocks.size(), 2u);
  for (std::size_t b = blocks.size() / 2; b < blocks.size(); ++b)
    blocks[b].policy = BlockPolicy::kSwapNvme;
  OocExecutor exec(&net, std::move(blocks), Bytes{1} << 30,
                   /*host_capacity=*/Bytes{1} << 20);
  const StepStats stats = exec.compute_gradients(data.inputs, data.labels);
  EXPECT_GT(stats.swapped_out_bytes, 0);
  EXPECT_GT(stats.nvme_out_bytes, 0);
  expect_grads_bitwise(net, reference);
}

TEST(OocExec, BoundedHostStoreOverflowThrows) {
  const SyntheticBatch data = batch();
  Sequential net = fresh_mlp();
  // A 64 B host store cannot absorb any evicted layer.
  OocExecutor exec(&net, blocks_with(BlockPolicy::kSwap, net.size()),
                   Bytes{1} << 30, /*host_capacity=*/64);
  EXPECT_THROW(exec.compute_gradients(data.inputs, data.labels),
               CapacityError);
}

TEST(OocExec, MixedPoliciesBitwiseIdenticalToInCore) {
  const SyntheticBatch data = batch();
  const auto reference = reference_grads(data);
  Sequential net = fresh_mlp();
  auto blocks = blocks_with(BlockPolicy::kSwap, net.size());
  // KARMA-style mix: early blocks swap, middles recompute, tail resident.
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    if (b + 1 == blocks.size()) blocks[b].policy = BlockPolicy::kResident;
    else if (b % 2 == 1) blocks[b].policy = BlockPolicy::kRecompute;
  }
  OocExecutor exec(&net, blocks, Bytes{1} << 30);
  exec.compute_gradients(data.inputs, data.labels);
  expect_grads_bitwise(net, reference);
}

TEST(OocExec, TrainsInPoolTooSmallForInCore) {
  // The paper's core capability, executed: pick a pool the in-core
  // (all-resident) run overflows, and show swap policy fits and still
  // produces identical weights after several update steps.
  const SyntheticBatch data = batch();

  // Measure the in-core peak.
  Sequential probe = fresh_mlp();
  OocExecutor incore(&probe,
                     blocks_with(BlockPolicy::kResident, probe.size()),
                     Bytes{1} << 30);
  incore.compute_gradients(data.inputs, data.labels);
  const Bytes incore_peak = incore.pool().peak_used();
  ASSERT_GT(incore_peak, 0);

  const Bytes small_pool = incore_peak / 2;
  // All-resident must overflow the small pool...
  Sequential fail_net = fresh_mlp();
  OocExecutor fail_exec(
      &fail_net, blocks_with(BlockPolicy::kResident, fail_net.size()),
      small_pool);
  EXPECT_THROW(fail_exec.compute_gradients(data.inputs, data.labels),
               CapacityError);

  // ...while swap-per-layer fits (at most one layer's activations are
  // resident at a time) and matches the reference bitwise across 5 steps.
  Sequential ref_net = fresh_mlp();
  SGD ref_opt(0.05f);
  SoftmaxCrossEntropy loss;
  Sequential ooc_net = fresh_mlp();
  OocExecutor ooc(&ooc_net,
                  blocks_with(BlockPolicy::kSwap, ooc_net.size(), 1),
                  small_pool);
  SGD ooc_opt(0.05f);
  for (int step = 0; step < 5; ++step) {
    ref_net.zero_grads();
    loss.forward(ref_net.forward(data.inputs), data.labels);
    ref_net.backward(loss.grad_logits());
    ref_opt.step(ref_net.all_params(), ref_net.all_grads());

    ooc.train_step(data.inputs, data.labels, ooc_opt);
  }
  const auto ref_params = ref_net.all_params();
  const auto ooc_params = ooc_net.all_params();
  ASSERT_EQ(ref_params.size(), ooc_params.size());
  for (std::size_t i = 0; i < ref_params.size(); ++i)
    EXPECT_TRUE(bitwise_equal(*ref_params[i], *ooc_params[i]))
        << "param " << i;
  EXPECT_LE(ooc.pool().peak_used(), small_pool);
}

TEST(OocExec, CpuUpdatePathBitwiseIdentical) {
  const SyntheticBatch data = batch();
  Sequential direct = fresh_mlp();
  OocExecutor direct_exec(
      &direct, blocks_with(BlockPolicy::kSwap, direct.size()), Bytes{1} << 30);
  SGD direct_opt(0.1f, 0.9f);
  Sequential host = fresh_mlp();
  OocExecutor host_exec(&host, blocks_with(BlockPolicy::kSwap, host.size()),
                        Bytes{1} << 30);
  SGD host_opt(0.1f, 0.9f);
  for (int step = 0; step < 4; ++step) {
    direct_exec.train_step(data.inputs, data.labels, direct_opt,
                           /*cpu_update=*/false);
    host_exec.train_step(data.inputs, data.labels, host_opt,
                         /*cpu_update=*/true);
  }
  const auto a = direct.all_params();
  const auto b = host.all_params();
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_TRUE(bitwise_equal(*a[i], *b[i])) << "param " << i;
}

TEST(OocExec, SwapUsesLessPeakThanResident) {
  const SyntheticBatch data = batch();
  Sequential a = fresh_mlp();
  OocExecutor resident(&a, blocks_with(BlockPolicy::kResident, a.size()),
                       Bytes{1} << 30);
  resident.compute_gradients(data.inputs, data.labels);
  Sequential b = fresh_mlp();
  OocExecutor swap(&b, blocks_with(BlockPolicy::kSwap, b.size(), 1),
                   Bytes{1} << 30);
  swap.compute_gradients(data.inputs, data.labels);
  EXPECT_LT(swap.pool().peak_used(), resident.pool().peak_used());
}

TEST(OocExec, RejectsBadBlockPartitions) {
  Sequential net = fresh_mlp();
  EXPECT_THROW(OocExecutor(&net, {{0, 2}, {3, net.size()}}, 1 << 20),
               std::invalid_argument);  // hole
  EXPECT_THROW(OocExecutor(&net, {{0, net.size() - 1}}, 1 << 20),
               std::invalid_argument);  // incomplete
  EXPECT_THROW(OocExecutor(nullptr, {{0, 1}}, 1 << 20),
               std::invalid_argument);
  EXPECT_THROW(uniform_ooc_blocks(4, 0, BlockPolicy::kSwap),
               std::invalid_argument);
}

TEST(OocExec, ConvNetSwapAlsoExact) {
  Rng rng(kSeed);
  Sequential ref = make_small_cnn(1, 8, 4, rng);
  Rng rng2(kSeed);
  Sequential ooc_net = make_small_cnn(1, 8, 4, rng2);
  Rng data_rng(5);
  const SyntheticBatch data = make_synthetic_batch(6, {1, 8, 8}, 4, data_rng);

  ref.zero_grads();
  SoftmaxCrossEntropy loss;
  loss.forward(ref.forward(data.inputs), data.labels);
  ref.backward(loss.grad_logits());

  OocExecutor exec(&ooc_net,
                   uniform_ooc_blocks(ooc_net.size(), 3, BlockPolicy::kSwap),
                   Bytes{1} << 30);
  exec.compute_gradients(data.inputs, data.labels);

  const auto a = ref.all_grads();
  const auto b = ooc_net.all_grads();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_TRUE(bitwise_equal(*a[i], *b[i])) << "grad " << i;
}

}  // namespace
}  // namespace karma::train
