#include "src/solver/anneal.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "src/solver/exhaustive.h"
#include "src/util/infeasible.h"

namespace karma::solver {
namespace {

TEST(Anneal, MinimizesQuadratic) {
  Rng rng(1234);
  const std::function<double(const double&)> energy = [](const double& x) {
    return (x - 3.0) * (x - 3.0);
  };
  const std::function<double(const double&, Rng&)> neighbor =
      [](const double& x, Rng& r) { return x + r.next_symmetric(0.5f); };
  AnnealParams params;
  params.iterations = 5000;
  const auto [best, e] = anneal(10.0, energy, neighbor, params, rng);
  EXPECT_NEAR(best, 3.0, 0.1);
  EXPECT_LT(e, 0.01);
}

TEST(Anneal, ReturnsBestEverVisited) {
  Rng rng(7);
  // Deterministic cycle through 0..9 with a sharp minimum at 7 that the
  // walk immediately leaves again: the returned state must still be 7.
  const std::function<double(const int&)> energy = [](const int& x) {
    return x == 7 ? -100.0 : static_cast<double>(x);
  };
  const std::function<int(const int&, Rng&)> neighbor = [](const int& x,
                                                           Rng&) {
    return (x + 1) % 10;
  };
  AnnealParams params;
  params.iterations = 50;
  params.initial_temperature = 1e9;  // accept everything: full tour
  params.cooling = 1.0;
  const auto [best, e] = anneal(0, energy, neighbor, params, rng);
  EXPECT_EQ(best, 7);
  EXPECT_DOUBLE_EQ(e, -100.0);
}

TEST(Anneal, DeterministicForSeed) {
  const std::function<double(const double&)> energy = [](const double& x) {
    return std::abs(x);
  };
  const std::function<double(const double&, Rng&)> neighbor =
      [](const double& x, Rng& r) { return x + r.next_symmetric(1.0f); };
  AnnealParams params;
  params.iterations = 500;
  Rng a(99), b(99);
  const auto ra = anneal(5.0, energy, neighbor, params, a);
  const auto rb = anneal(5.0, energy, neighbor, params, b);
  EXPECT_DOUBLE_EQ(ra.first, rb.first);
  EXPECT_DOUBLE_EQ(ra.second, rb.second);
}

TEST(ArgminFeasible, PicksMinimum) {
  const std::vector<int> candidates = {5, 2, 9, 1, 7};
  const std::function<double(const int&)> objective = [](const int& x) {
    return static_cast<double>(x);
  };
  const auto best = argmin_feasible(candidates, objective);
  ASSERT_TRUE(best);
  EXPECT_EQ(*best, 3u);
}

TEST(ArgminFeasible, SkipsThrowingCandidates) {
  const std::vector<int> candidates = {1, 2, 3};
  const std::function<double(const int&)> objective = [](const int& x) {
    if (x % 2) throw InfeasibleError("infeasible");
    return static_cast<double>(x);
  };
  const auto best = argmin_feasible(candidates, objective);
  ASSERT_TRUE(best);
  EXPECT_EQ(*best, 1u);  // the only even candidate
}

TEST(ArgminFeasible, AllInfeasibleReturnsNullopt) {
  const std::vector<int> candidates = {1, 3};
  const std::function<double(const int&)> objective =
      [](const int&) -> double { throw InfeasibleError("nope"); };
  EXPECT_FALSE(argmin_feasible(candidates, objective));
}

TEST(ArgminFeasible, RealErrorsPropagate) {
  // Regression: the feasibility filter used to swallow EVERY
  // std::exception, so a bad_alloc or a corrupted-state logic_error would
  // silently read as "candidate infeasible". Only the typed infeasibility
  // channel may be absorbed; programming errors must escape.
  const std::vector<int> candidates = {1, 2};
  const std::function<double(const int&)> objective =
      [](const int&) -> double { throw std::logic_error("bug, not infeasible"); };
  EXPECT_THROW(argmin_feasible(candidates, objective), std::logic_error);

  // Same contract in the descent's flip loop (the initial evaluation was
  // never guarded; the per-flip one was the swallower).
  const std::function<double(const int&)> flip_objective =
      [](const int& x) -> double {
    if (x != 0) throw std::logic_error("bug, not infeasible");
    return 1.0;
  };
  const std::function<int(const int&, int)> apply = [](const int&, int) {
    return 1;  // every flip lands on the throwing state
  };
  EXPECT_THROW(greedy_descend(0, flip_objective, 1, apply), std::logic_error);
}

TEST(ArgminFeasible, SkipsNaNAndInfinity) {
  const std::vector<int> candidates = {0, 1, 2};
  const std::function<double(const int&)> objective = [](const int& x) {
    if (x == 0) return std::nan("");
    if (x == 1) return std::numeric_limits<double>::infinity();
    return 5.0;
  };
  const auto best = argmin_feasible(candidates, objective);
  ASSERT_TRUE(best);
  EXPECT_EQ(*best, 2u);
}

TEST(GreedyDescend, ReachesLocalOptimum) {
  // State: vector of 4 bits; objective = number of set bits; flips clear
  // or set one bit. Greedy must reach all-zeros.
  using State = std::vector<int>;
  const std::function<double(const State&)> objective = [](const State& s) {
    double sum = 0;
    for (int b : s) sum += b;
    return sum;
  };
  const std::function<State(const State&, int)> apply = [](const State& s,
                                                           int k) {
    State next = s;
    next[static_cast<std::size_t>(k)] ^= 1;
    return next;
  };
  const State result = greedy_descend<State>({1, 0, 1, 1}, objective, 4, apply);
  EXPECT_DOUBLE_EQ(objective(result), 0.0);
}

TEST(GreedyDescend, StopsWhenNoImprovement) {
  const std::function<double(const int&)> objective = [](const int&) {
    return 1.0;
  };
  const std::function<int(const int&, int)> apply = [](const int& s, int) {
    return s + 1;
  };
  EXPECT_EQ(greedy_descend(7, objective, 3, apply), 7);
}

// ---- Cooperative cancellation (the should_stop contract, DESIGN.md §11):
// tripping the check truncates the scan/descent and yields the best of
// what was evaluated so far — never an exception, never a worse state.

TEST(ArgminFeasible, ShouldStopTruncatesTheScan) {
  const std::vector<int> candidates = {5, 2, 9, 1, 7};
  int evaluated = 0;
  const std::function<double(const int&)> objective = [&](const int& x) {
    ++evaluated;
    return static_cast<double>(x);
  };
  // Stop after two evaluations: the scan must return the best of {5, 2}
  // (index 1), not the global argmin at index 3.
  const std::function<bool()> stop_after_two = [&] { return evaluated >= 2; };
  const auto best = argmin_feasible(candidates, objective, stop_after_two);
  ASSERT_TRUE(best);
  EXPECT_EQ(*best, 1u);
  EXPECT_EQ(evaluated, 2);

  // Tripped before anything ran: nothing was feasible-scanned at all.
  const std::function<bool()> always = [] { return true; };
  EXPECT_FALSE(argmin_feasible(candidates, objective, always));
}

TEST(GreedyDescend, ShouldStopReturnsBestStateSoFar) {
  using State = std::vector<int>;
  const std::function<double(const State&)> objective = [](const State& s) {
    double sum = 0;
    for (int b : s) sum += b;
    return sum;
  };
  int flips_scored = 0;
  const std::function<State(const State&, int)> apply = [&](const State& s,
                                                            int k) {
    ++flips_scored;
    State next = s;
    next[static_cast<std::size_t>(k)] ^= 1;
    return next;
  };
  // Budget for one full round only: exactly one accepted flip, then stop —
  // a partial descent, strictly between the start and the optimum.
  const std::function<bool()> stop = [&] { return flips_scored >= 4; };
  const State result =
      greedy_descend<State>({1, 1, 1, 1}, objective, 4, apply,
                            /*max_rounds=*/64, stop);
  EXPECT_DOUBLE_EQ(objective(result), 3.0);
}

TEST(Anneal, PollsStopBeforeInitialEvaluation) {
  // Regression: the walk used to evaluate energy(init) — one full
  // simulation for the planners — before the first should_stop poll, so a
  // search cancelled before the anneal phase still paid a replay.
  Rng rng(1);
  int evaluations = 0;
  const std::function<double(const int&)> energy = [&](const int&) {
    ++evaluations;
    return 0.0;
  };
  const std::function<int(const int&, Rng&)> neighbor = [](const int& x,
                                                           Rng&) {
    return x + 1;
  };
  AnnealParams params;
  params.iterations = 100;
  params.should_stop = [] { return true; };
  const auto [best, e] = anneal(42, energy, neighbor, params, rng);
  EXPECT_EQ(evaluations, 0);
  EXPECT_EQ(best, 42);  // untouched init
  EXPECT_TRUE(std::isinf(e));
}

// ---- Portfolio annealing (lazy-SMP, DESIGN.md §14). All of these run
// under the TSan CI job with real threads.

namespace portfolio {

const std::function<double(const double&, int)> quadratic =
    [](const double& x, int) { return (x - 3.0) * (x - 3.0); };
const std::function<double(const double&, Rng&)> step =
    [](const double& x, Rng& r) { return x + r.next_symmetric(0.5f); };
const std::function<std::string(const double&)> key = [](const double& x) {
  return std::to_string(x);
};

}  // namespace portfolio

TEST(PortfolioAnneal, BitIdenticalAcrossRuns) {
  // The whole point of the stable reduction: for a fixed seed the result
  // is a pure function of the inputs, independent of thread scheduling.
  AnnealParams params;
  params.iterations = 2000;
  auto run = [&] {
    Rng rng(4242);
    return portfolio_anneal<double>(10.0, portfolio::quadratic,
                                    portfolio::step, params, 4, rng,
                                    portfolio::key);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.state, b.state);  // bit-identical, not just close
  EXPECT_EQ(a.energy, b.energy);
  EXPECT_EQ(a.worker, b.worker);
  EXPECT_NEAR(a.state, 3.0, 0.2);
}

TEST(PortfolioAnneal, OneWorkerMatchesPlainAnnealOnSplitStream) {
  // Documented 1-worker semantics: one split stream, full budget,
  // unscaled temperature — i.e. plain anneal on rng.split().
  AnnealParams params;
  params.iterations = 500;
  Rng a(77);
  const auto portfolio_result = portfolio_anneal<double>(
      8.0, portfolio::quadratic, portfolio::step, params, 1, a,
      portfolio::key);
  Rng b(77);
  Rng stream = b.split();
  const std::function<double(const double&)> energy = [](const double& x) {
    return portfolio::quadratic(x, 0);
  };
  const auto plain = anneal(8.0, energy, portfolio::step, params, stream);
  EXPECT_EQ(portfolio_result.state, plain.first);
  EXPECT_EQ(portfolio_result.energy, plain.second);
  EXPECT_EQ(portfolio_result.worker, 0);
}

TEST(PortfolioAnneal, StableReductionPicksLowestEnergyThenFirstWorker) {
  // Zero iterations: each worker scores only the init, so energies are
  // fully controlled by the (state, worker) energy table. Workers 1 and 2
  // tie at the minimum with identical states (hence identical keys); the
  // documented rule keeps the first of them.
  const std::function<double(const int&, int)> energy = [](const int&,
                                                           int w) {
    const double table[] = {5.0, 3.0, 3.0, 4.0};
    return table[w];
  };
  const std::function<int(const int&, Rng&)> neighbor = [](const int& x,
                                                           Rng&) {
    return x;
  };
  AnnealParams params;
  params.iterations = 0;
  Rng rng(1);
  const auto r = portfolio_anneal<int>(
      0, energy, neighbor, params, 4, rng,
      [](const int& x) { return std::to_string(x); });
  EXPECT_EQ(r.energy, 3.0);
  EXPECT_EQ(r.worker, 1);
}

TEST(PortfolioAnneal, MatchesDocumentedReductionAgainstManualWorkers) {
  // Spec test: reproduce each worker's walk by hand (split streams in
  // worker order, ceil-divided budget, temperature ladder, cooling^N) and
  // apply the documented reduction; portfolio_anneal must agree exactly.
  AnnealParams params;
  params.iterations = 1000;
  params.initial_temperature = 2.0;
  const int workers = 4;
  Rng a(9001);
  const auto got = portfolio_anneal<double>(10.0, portfolio::quadratic,
                                            portfolio::step, params, workers,
                                            a, portfolio::key);
  Rng b(9001);
  std::vector<Rng> streams;
  for (int w = 0; w < workers; ++w) streams.push_back(b.split());
  double best_e = std::numeric_limits<double>::infinity();
  double best_state = 10.0;
  int best_worker = 0;
  std::string best_key;
  for (int w = 0; w < workers; ++w) {
    AnnealParams p = params;
    p.iterations = (params.iterations + workers - 1) / workers;
    p.initial_temperature =
        params.initial_temperature * portfolio_temperature_scale(w);
    p.cooling = std::pow(params.cooling, static_cast<double>(workers));
    const std::function<double(const double&)> energy =
        [w](const double& x) { return portfolio::quadratic(x, w); };
    const auto r = anneal(10.0, energy, portfolio::step, p,
                          streams[static_cast<std::size_t>(w)]);
    const std::string k = portfolio::key(r.first);
    if (r.second < best_e ||
        (r.second == best_e && k < best_key)) {
      best_e = r.second;
      best_state = r.first;
      best_worker = w;
      best_key = k;
    }
  }
  EXPECT_EQ(got.state, best_state);
  EXPECT_EQ(got.energy, best_e);
  EXPECT_EQ(got.worker, best_worker);
}

TEST(PortfolioAnneal, TemperatureLadderShape) {
  EXPECT_DOUBLE_EQ(portfolio_temperature_scale(0), 1.0);
  EXPECT_DOUBLE_EQ(portfolio_temperature_scale(1), 2.0);
  EXPECT_DOUBLE_EQ(portfolio_temperature_scale(2), 0.5);
  EXPECT_DOUBLE_EQ(portfolio_temperature_scale(3), 4.0);
  EXPECT_DOUBLE_EQ(portfolio_temperature_scale(4), 0.25);
}

TEST(PortfolioAnneal, NonStdExceptionsPropagateAfterJoin) {
  // The planners' SearchInterrupted is not a std::exception; a worker
  // that throws it must not take the process down (std::thread with an
  // escaping exception calls std::terminate) and the caller must see it.
  struct Interrupt {
    int worker;
  };
  const std::function<double(const double&, int)> energy =
      [](const double& x, int w) -> double {
    if (w == 2) throw Interrupt{w};
    return x * x;
  };
  AnnealParams params;
  params.iterations = 50;
  Rng rng(3);
  bool caught = false;
  try {
    portfolio_anneal<double>(1.0, energy, portfolio::step, params, 4, rng,
                             portfolio::key);
  } catch (const Interrupt& i) {
    caught = true;
    EXPECT_EQ(i.worker, 2);
  }
  EXPECT_TRUE(caught);
}

}  // namespace
}  // namespace karma::solver
