#include "src/solver/anneal.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/solver/exhaustive.h"

namespace karma::solver {
namespace {

TEST(Anneal, MinimizesQuadratic) {
  Rng rng(1234);
  const std::function<double(const double&)> energy = [](const double& x) {
    return (x - 3.0) * (x - 3.0);
  };
  const std::function<double(const double&, Rng&)> neighbor =
      [](const double& x, Rng& r) { return x + r.next_symmetric(0.5f); };
  AnnealParams params;
  params.iterations = 5000;
  const auto [best, e] = anneal(10.0, energy, neighbor, params, rng);
  EXPECT_NEAR(best, 3.0, 0.1);
  EXPECT_LT(e, 0.01);
}

TEST(Anneal, ReturnsBestEverVisited) {
  Rng rng(7);
  // Deterministic cycle through 0..9 with a sharp minimum at 7 that the
  // walk immediately leaves again: the returned state must still be 7.
  const std::function<double(const int&)> energy = [](const int& x) {
    return x == 7 ? -100.0 : static_cast<double>(x);
  };
  const std::function<int(const int&, Rng&)> neighbor = [](const int& x,
                                                           Rng&) {
    return (x + 1) % 10;
  };
  AnnealParams params;
  params.iterations = 50;
  params.initial_temperature = 1e9;  // accept everything: full tour
  params.cooling = 1.0;
  const auto [best, e] = anneal(0, energy, neighbor, params, rng);
  EXPECT_EQ(best, 7);
  EXPECT_DOUBLE_EQ(e, -100.0);
}

TEST(Anneal, DeterministicForSeed) {
  const std::function<double(const double&)> energy = [](const double& x) {
    return std::abs(x);
  };
  const std::function<double(const double&, Rng&)> neighbor =
      [](const double& x, Rng& r) { return x + r.next_symmetric(1.0f); };
  AnnealParams params;
  params.iterations = 500;
  Rng a(99), b(99);
  const auto ra = anneal(5.0, energy, neighbor, params, a);
  const auto rb = anneal(5.0, energy, neighbor, params, b);
  EXPECT_DOUBLE_EQ(ra.first, rb.first);
  EXPECT_DOUBLE_EQ(ra.second, rb.second);
}

TEST(ArgminFeasible, PicksMinimum) {
  const std::vector<int> candidates = {5, 2, 9, 1, 7};
  const std::function<double(const int&)> objective = [](const int& x) {
    return static_cast<double>(x);
  };
  const auto best = argmin_feasible(candidates, objective);
  ASSERT_TRUE(best);
  EXPECT_EQ(*best, 3u);
}

TEST(ArgminFeasible, SkipsThrowingCandidates) {
  const std::vector<int> candidates = {1, 2, 3};
  const std::function<double(const int&)> objective = [](const int& x) {
    if (x % 2) throw std::runtime_error("infeasible");
    return static_cast<double>(x);
  };
  const auto best = argmin_feasible(candidates, objective);
  ASSERT_TRUE(best);
  EXPECT_EQ(*best, 1u);  // the only even candidate
}

TEST(ArgminFeasible, AllInfeasibleReturnsNullopt) {
  const std::vector<int> candidates = {1, 3};
  const std::function<double(const int&)> objective =
      [](const int&) -> double { throw std::runtime_error("nope"); };
  EXPECT_FALSE(argmin_feasible(candidates, objective));
}

TEST(ArgminFeasible, SkipsNaNAndInfinity) {
  const std::vector<int> candidates = {0, 1, 2};
  const std::function<double(const int&)> objective = [](const int& x) {
    if (x == 0) return std::nan("");
    if (x == 1) return std::numeric_limits<double>::infinity();
    return 5.0;
  };
  const auto best = argmin_feasible(candidates, objective);
  ASSERT_TRUE(best);
  EXPECT_EQ(*best, 2u);
}

TEST(GreedyDescend, ReachesLocalOptimum) {
  // State: vector of 4 bits; objective = number of set bits; flips clear
  // or set one bit. Greedy must reach all-zeros.
  using State = std::vector<int>;
  const std::function<double(const State&)> objective = [](const State& s) {
    double sum = 0;
    for (int b : s) sum += b;
    return sum;
  };
  const std::function<State(const State&, int)> apply = [](const State& s,
                                                           int k) {
    State next = s;
    next[static_cast<std::size_t>(k)] ^= 1;
    return next;
  };
  const State result = greedy_descend<State>({1, 0, 1, 1}, objective, 4, apply);
  EXPECT_DOUBLE_EQ(objective(result), 0.0);
}

TEST(GreedyDescend, StopsWhenNoImprovement) {
  const std::function<double(const int&)> objective = [](const int&) {
    return 1.0;
  };
  const std::function<int(const int&, int)> apply = [](const int& s, int) {
    return s + 1;
  };
  EXPECT_EQ(greedy_descend(7, objective, 3, apply), 7);
}

// ---- Cooperative cancellation (the should_stop contract, DESIGN.md §11):
// tripping the check truncates the scan/descent and yields the best of
// what was evaluated so far — never an exception, never a worse state.

TEST(ArgminFeasible, ShouldStopTruncatesTheScan) {
  const std::vector<int> candidates = {5, 2, 9, 1, 7};
  int evaluated = 0;
  const std::function<double(const int&)> objective = [&](const int& x) {
    ++evaluated;
    return static_cast<double>(x);
  };
  // Stop after two evaluations: the scan must return the best of {5, 2}
  // (index 1), not the global argmin at index 3.
  const std::function<bool()> stop_after_two = [&] { return evaluated >= 2; };
  const auto best = argmin_feasible(candidates, objective, stop_after_two);
  ASSERT_TRUE(best);
  EXPECT_EQ(*best, 1u);
  EXPECT_EQ(evaluated, 2);

  // Tripped before anything ran: nothing was feasible-scanned at all.
  const std::function<bool()> always = [] { return true; };
  EXPECT_FALSE(argmin_feasible(candidates, objective, always));
}

TEST(GreedyDescend, ShouldStopReturnsBestStateSoFar) {
  using State = std::vector<int>;
  const std::function<double(const State&)> objective = [](const State& s) {
    double sum = 0;
    for (int b : s) sum += b;
    return sum;
  };
  int flips_scored = 0;
  const std::function<State(const State&, int)> apply = [&](const State& s,
                                                            int k) {
    ++flips_scored;
    State next = s;
    next[static_cast<std::size_t>(k)] ^= 1;
    return next;
  };
  // Budget for one full round only: exactly one accepted flip, then stop —
  // a partial descent, strictly between the start and the optimum.
  const std::function<bool()> stop = [&] { return flips_scored >= 4; };
  const State result =
      greedy_descend<State>({1, 1, 1, 1}, objective, 4, apply,
                            /*max_rounds=*/64, stop);
  EXPECT_DOUBLE_EQ(objective(result), 3.0);
}

}  // namespace
}  // namespace karma::solver
