// Tier-aware planning end to end: the tiered path is a strict superset of
// the seed two-tier planner, and hosts too small for the working set
// produce valid NVMe-spilling plans.
#include <gtest/gtest.h>

#include "src/core/planner.h"
#include "src/core/schedule_gen.h"
#include "src/graph/memory_model.h"
#include "src/graph/model_zoo.h"
#include "src/sim/trace_check.h"
#include "src/tier/spill.h"
#include "src/util/infeasible.h"

namespace karma::core {
namespace {

PlannerOptions fast_options(bool recompute) {
  PlannerOptions o;
  o.enable_recompute = recompute;
  o.anneal_iterations = 30;
  return o;
}

TEST(TieredPolicies, UnboundedHostMatchesSeedPolicies) {
  const graph::Model m = graph::make_resnet50(512);
  const sim::DeviceSpec device = sim::v100_abci();
  const auto blocks = sim::uniform_blocks(m, 20);
  std::vector<sim::BlockCost> costs;
  for (const auto& b : blocks)
    costs.push_back(sim::compute_block_cost(m, b, device));
  const Bytes budget = device.memory_capacity / 2;
  const auto seed = capacity_based_policies(blocks, costs, budget);
  const auto tiered = tiered_policies(blocks, costs, budget,
                                      sim::hierarchy_of(device));
  EXPECT_EQ(seed, tiered);
}

TEST(TieredPolicies, HostOverflowRoutesEarlyBlocksToNvme) {
  // Three swapped blocks of 100 B through a 150 B host: the latest blocks
  // (needed soonest in backward) keep DRAM, the earliest spill to NVMe.
  std::vector<sim::Block> blocks = {{0, 1}, {1, 2}, {2, 3}, {3, 4}};
  std::vector<sim::BlockCost> costs(4);
  for (auto& c : costs) c.act_bytes = 100;
  tier::TierSpec host;
  host.capacity = 150;
  host.read_bw = host.write_bw = 1.0;
  tier::TierSpec nvme;
  nvme.capacity = 1000;
  nvme.read_bw = nvme.write_bw = 1.0;
  const auto hierarchy = tier::three_tier(1000, host, nvme);
  // Budget keeps only the tail block resident (needs 2*max_act headroom);
  // of the three swapped blocks, the host (150 B) holds exactly one.
  const auto policies = tiered_policies(blocks, costs, 300, hierarchy);
  ASSERT_EQ(policies.size(), 4u);
  EXPECT_EQ(policies[0], BlockPolicy::kSwapNvme);  // most prefetch slack
  EXPECT_EQ(policies[1], BlockPolicy::kSwapNvme);
  EXPECT_EQ(policies[2], BlockPolicy::kSwap);      // host-first for late
  EXPECT_EQ(policies[3], BlockPolicy::kResident);  // tail stays on device
}

TEST(ScheduleGen, NvmeSwapOpsCarryTierTags) {
  const graph::Model m = graph::make_vgg16(8);
  sim::DeviceSpec d = sim::v100_abci_nvme();
  const auto blocks = sim::uniform_blocks(m, 6);
  std::vector<BlockPolicy> policies(blocks.size(), BlockPolicy::kResident);
  policies[0] = BlockPolicy::kSwapNvme;
  policies[1] = BlockPolicy::kSwap;
  const sim::Plan plan =
      build_training_plan(m, d, blocks, policies, "tier-test");
  ASSERT_TRUE(plan.hierarchy.has_value());
  int nvme_swaps = 0, host_swaps = 0;
  for (const auto& op : plan.ops) {
    if (op.kind != sim::OpKind::kSwapOut && op.kind != sim::OpKind::kSwapIn)
      continue;
    if (op.tier == tier::Tier::kNvme) {
      EXPECT_EQ(op.block, 0);
      ++nvme_swaps;
    } else {
      EXPECT_EQ(op.block, 1);
      ++host_swaps;
    }
  }
  EXPECT_EQ(nvme_swaps, 2);  // one out, one in
  EXPECT_EQ(host_swaps, 2);
  // NVMe swaps are primed in the Sec. III-F.3 notation.
  EXPECT_NE(plan.schedule_string().find("Sout1'"), std::string::npos);
}

TEST(ScheduleGen, RejectsPerTierOverflow) {
  const graph::Model m = graph::make_vgg16(32);
  const auto blocks = sim::uniform_blocks(m, 6);
  // Host tier far smaller than one block's activations.
  sim::DeviceSpec d = sim::v100_abci();
  d.host_capacity = 1_MiB;
  std::vector<BlockPolicy> policies(blocks.size(), BlockPolicy::kResident);
  policies[0] = BlockPolicy::kSwap;
  // Over-capacity admission is the typed infeasibility channel (the
  // planner skips such candidates; malformed input stays invalid_argument).
  EXPECT_THROW(build_training_plan(m, d, blocks, policies, "overflow"),
               karma::InfeasibleError);
  // Same for a toy NVMe tier.
  sim::DeviceSpec dn = sim::v100_abci_nvme();
  dn.nvme_capacity = 1_MiB;
  policies[0] = BlockPolicy::kSwapNvme;
  EXPECT_THROW(build_training_plan(m, dn, blocks, policies, "overflow"),
               karma::InfeasibleError);
  // And swap-nvme without any NVMe tier at all.
  EXPECT_THROW(build_training_plan(m, sim::v100_abci(), blocks, policies,
                                   "no-nvme"),
               karma::InfeasibleError);
}

TEST(TieredPlanner, AmpleHostReproducesSeedPlanBitIdentically) {
  // The tier subsystem must be a strict superset: when the model fits in
  // HBM + DRAM, a bounded-host device plans exactly like the seed device.
  const graph::Model m = graph::make_resnet50(512);
  const sim::DeviceSpec seed_device = sim::v100_abci();
  sim::DeviceSpec tiered_device = sim::v100_abci();
  tiered_device.host_capacity = 384_GiB;  // ample for every candidate

  const PlanResult a =
      KarmaPlanner(m, seed_device, fast_options(true)).plan();
  const PlanResult b =
      KarmaPlanner(m, tiered_device, fast_options(true)).plan();

  EXPECT_EQ(a.policies, b.policies);
  ASSERT_EQ(a.plan.ops.size(), b.plan.ops.size());
  for (std::size_t i = 0; i < a.plan.ops.size(); ++i) {
    const sim::Op& x = a.plan.ops[i];
    const sim::Op& y = b.plan.ops[i];
    EXPECT_EQ(x.kind, y.kind) << "op " << i;
    EXPECT_EQ(x.block, y.block) << "op " << i;
    EXPECT_EQ(x.tier, y.tier) << "op " << i;
    EXPECT_EQ(x.bytes, y.bytes) << "op " << i;
    EXPECT_EQ(x.alloc, y.alloc) << "op " << i;
    EXPECT_EQ(x.free, y.free) << "op " << i;
    EXPECT_EQ(x.after_op, y.after_op) << "op " << i;
  }
  EXPECT_DOUBLE_EQ(a.iteration_time, b.iteration_time);
  EXPECT_TRUE(b.plan.hierarchy.has_value());  // but tier-audited
}

TEST(TieredPlanner, TinyHostSpillsToNvmeAndPassesTraceCheck) {
  // Working set far beyond a 2 GiB host: the plan must spill to NVMe, run
  // without deadlock, and satisfy every replay invariant per tier.
  const graph::Model m = graph::make_resnet50(512);
  sim::DeviceSpec d = sim::v100_abci_nvme();
  d.host_capacity = 2_GiB;
  ASSERT_GT(graph::in_core_footprint(m), d.memory_capacity);

  // Without recompute the planner must place, not dodge, the overflow.
  const PlanResult r = KarmaPlanner(m, d, fast_options(false)).plan();
  int nvme_blocks = 0;
  for (const auto p : r.policies)
    if (p == BlockPolicy::kSwapNvme) ++nvme_blocks;
  EXPECT_GT(nvme_blocks, 0) << "2 GiB host cannot hold the swap set";

  const auto violations = sim::check_trace_invariants(r.plan, r.trace);
  EXPECT_TRUE(violations.empty())
      << "first violation: " << (violations.empty() ? "" : violations[0]);
  EXPECT_LE(r.trace.peak_host_resident, d.host_capacity);
  EXPECT_LE(r.trace.peak_nvme_resident, d.nvme_capacity);
  EXPECT_GT(r.trace.peak_nvme_resident, 0);
  EXPECT_GT(r.iteration_time, 0.0);
}

TEST(TieredPlanner, NvmeSpillSlowerThanAmpleHost) {
  // Offloading through a 1.3 GB/s SSD cannot beat 16 GB/s PCIe to DRAM.
  const graph::Model m = graph::make_resnet50(384);
  sim::DeviceSpec tiny_host = sim::v100_abci_nvme();
  tiny_host.host_capacity = 1_GiB;
  const PlanResult spill =
      KarmaPlanner(m, tiny_host, fast_options(false)).plan();
  const PlanResult ample =
      KarmaPlanner(m, sim::v100_abci(), fast_options(false)).plan();
  EXPECT_GE(spill.iteration_time, ample.iteration_time);
}

}  // namespace
}  // namespace karma::core
