// util::json double round-trip fuzz: calibration factors, profile timings,
// and plan costs all ride Writer::value(double)'s %.17g emission, and the
// content-hash / golden-fixture guarantees assume emit -> parse -> emit is
// bit-exact. This test drives random IEEE-754 bit patterns (deterministic
// seed, so CI failures reproduce) through a Writer array and back through
// parse(), comparing the raw bits of the parsed double view.
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/json.h"

namespace karma::util::json {
namespace {

std::uint64_t bits_of(double d) {
  std::uint64_t bits;
  std::memcpy(&bits, &d, sizeof bits);
  return bits;
}

double double_of(std::uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof d);
  return d;
}

/// Emits `values` as one JSON array and parses it back.
Value round_trip(const std::vector<double>& values, std::string* text) {
  Writer w;
  w.begin_array();
  for (const double d : values) w.value(d);
  w.end_array();
  *text = w.take();
  return parse(*text);
}

TEST(JsonFuzz, RandomBitPatternDoublesRoundTripBitExact) {
  // Fixed seed: a failure here must reproduce, not flake.
  std::mt19937_64 rng(0xD0B1E5EEDULL);
  constexpr int kBatches = 64;
  constexpr int kPerBatch = 64;
  int tested = 0;

  for (int batch = 0; batch < kBatches; ++batch) {
    std::vector<double> values;
    values.reserve(kPerBatch);
    while (values.size() < kPerBatch) {
      const double d = double_of(rng());
      if (std::isnan(d)) continue;  // Writer rejects NaN by contract
      values.push_back(d);
    }
    std::string text;
    const Value root = round_trip(values, &text);
    ASSERT_EQ(root.array.size(), values.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
      // Compare the strtod view (`number`), not as_double(): a token
      // like "-0" parses as integral and as_double() returns the int
      // cast (+0.0), but the double view preserves the sign bit.
      ASSERT_EQ(bits_of(root.array[i].number), bits_of(values[i]))
          << "value " << i << " drifted through '" << text << "'";
      ++tested;
    }
  }
  EXPECT_EQ(tested, kBatches * kPerBatch);
}

TEST(JsonFuzz, UniformMagnitudeDoublesRoundTripBitExact) {
  // Bit-pattern sampling is dominated by huge/tiny exponents; also sweep
  // the "ordinary" magnitudes cost models actually produce.
  std::mt19937_64 rng(0xCA11B8A7EDULL);
  std::uniform_real_distribution<double> mantissa(-1.0, 1.0);
  std::uniform_int_distribution<int> exponent(-30, 30);
  std::vector<double> values;
  for (int i = 0; i < 4096; ++i)
    values.push_back(std::ldexp(mantissa(rng), exponent(rng)));
  values.push_back(0.0);
  values.push_back(-0.0);
  values.push_back(std::numeric_limits<double>::denorm_min());
  values.push_back(-std::numeric_limits<double>::denorm_min());
  values.push_back(std::numeric_limits<double>::min());
  values.push_back(std::numeric_limits<double>::max());
  values.push_back(-std::numeric_limits<double>::max());
  values.push_back(std::numeric_limits<double>::epsilon());

  std::string text;
  const Value root = round_trip(values, &text);
  ASSERT_EQ(root.array.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i)
    ASSERT_EQ(bits_of(root.array[i].number), bits_of(values[i])) << i;
}

TEST(JsonFuzz, SecondEmitIsByteIdentical) {
  // emit -> parse -> emit must be a fixed point: content hashes and golden
  // fixtures both lean on this.
  std::mt19937_64 rng(0x5EC0DD1ULL);
  std::vector<double> values;
  while (values.size() < 512) {
    const double d = double_of(rng());
    if (!std::isnan(d)) values.push_back(d);
  }
  std::string first;
  const Value root = round_trip(values, &first);
  Writer again;
  again.begin_array();
  for (const Value& v : root.array) again.value(v.number);
  again.end_array();
  EXPECT_EQ(again.take(), first);
}

TEST(JsonFuzz, RandomInt64RoundTripsThroughTheIntegerView) {
  std::mt19937_64 rng(0x1234CAFEULL);
  std::vector<std::int64_t> values = {
      0,
      -1,
      std::numeric_limits<std::int64_t>::max(),
      std::numeric_limits<std::int64_t>::min(),
  };
  for (int i = 0; i < 2048; ++i)
    values.push_back(static_cast<std::int64_t>(rng()));

  Writer w;
  w.begin_array();
  for (const std::int64_t v : values) w.value(v);
  w.end_array();
  const std::string text = w.take();
  const Value root = parse(text);
  ASSERT_EQ(root.array.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    ASSERT_TRUE(root.array[i].integral) << i;
    ASSERT_EQ(root.array[i].as_int(), values[i]) << i;
  }
}

TEST(JsonFuzz, NanIsRejectedInfinitiesOverflowBack) {
  // A throwing value() leaves the Writer's comma state behind, so the
  // NaN probe gets its own scratch writer.
  Writer scratch;
  EXPECT_THROW(scratch.value(std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  Writer w;
  w.begin_array();
  // Infinities emit as overflowing decimals; strtod saturates them back.
  w.value(std::numeric_limits<double>::infinity());
  w.value(-std::numeric_limits<double>::infinity());
  w.end_array();
  const Value root = parse(w.take());
  ASSERT_EQ(root.array.size(), 2u);
  EXPECT_EQ(root.array[0].number, std::numeric_limits<double>::infinity());
  EXPECT_EQ(root.array[1].number, -std::numeric_limits<double>::infinity());
}

}  // namespace
}  // namespace karma::util::json
