// karma::place — heterogeneous fleet modeling and cost-based shard
// placement (DESIGN.md §16): placement determinism (bit-identical plans
// across runs, asserted under TSan too since this file runs in every
// sanitizer lane), the placement golden fixture (regenerate with
// KARMA_REGEN_GOLDEN=1 ./test_place), fleet request round-trips that
// preserve the cache key, the end-to-end Session fleet path naming the
// straggler, structured FleetInfeasible surfacing, and the identity
// NVMe-contention bit-exactness guarantee.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/api/engine.h"
#include "src/api/plan_io.h"
#include "src/api/request_io.h"
#include "src/cache/plan_cache.h"
#include "src/cache/request_key.h"
#include "src/graph/model_zoo.h"
#include "src/place/fleet_planner.h"
#include "src/sim/device.h"

namespace karma::place {
namespace {

/// Small transformer chain: dense clean cuts, quick searches.
graph::Model tiny_transformer(std::int64_t batch = 8) {
  graph::TransformerConfig cfg;
  cfg.hidden = 256;
  cfg.heads = 4;
  cfg.layers = 4;
  cfg.seq_len = 128;
  cfg.vocab = 1000;
  return graph::make_transformer_chain(cfg, batch);
}

FleetSpec small_fleet(Bytes weak_host = Bytes{8} << 30) {
  return mixed_generation_fleet(/*strong=*/2, /*weak=*/2, weak_host);
}

FleetPlanOptions fast_options() {
  FleetPlanOptions options;
  options.planner.anneal_iterations = 0;
  options.placement.target_blocks = 8;
  return options;
}

api::PlanRequest fleet_request(std::int64_t batch = 8) {
  api::PlanRequest request;
  request.model = tiny_transformer(batch);
  request.device = sim::v100_abci_nvme();
  request.planner.anneal_iterations = 0;
  request.optimizer.kind = api::OptimizerSpec::Kind::kAdam;
  request.fleet = small_fleet();
  request.probe_feasible_batch = false;
  return request;
}

// ---------------------------------------------------------------------------
// Placement algorithm.
// ---------------------------------------------------------------------------

TEST(Placement, BlocksPartitionTheModel) {
  const graph::Model model = tiny_transformer();
  const auto blocks = placement_blocks(model, 8);
  ASSERT_FALSE(blocks.empty());
  EXPECT_EQ(blocks.front().first_layer, 0);
  EXPECT_EQ(blocks.back().last_layer,
            static_cast<int>(model.num_layers()));
  for (std::size_t i = 0; i + 1 < blocks.size(); ++i) {
    EXPECT_LT(blocks[i].first_layer, blocks[i].last_layer);
    EXPECT_EQ(blocks[i].last_layer, blocks[i + 1].first_layer);
  }
}

TEST(Placement, CostBasedFavorsStrongNodesOverWeakOnes) {
  const graph::Model model = tiny_transformer();
  const FleetSpec fleet = small_fleet(/*weak_host=*/Bytes{2} << 30);
  PlacementOptions options;
  options.optimizer_state_bytes = [](Bytes param) { return 3 * param; };
  const PlacementPlan plan =
      place_blocks(model, fleet, placement_blocks(model, 8), options);
  Bytes strong_owned = 0, weak_owned = 0;
  for (int n = 0; n < fleet.num_nodes(); ++n) {
    const Bytes owned = plan.nodes[n].owned_param_bytes;
    (fleet.nodes[n].name.rfind("a100", 0) == 0 ? strong_owned : weak_owned) +=
        owned;
  }
  // Weak nodes have scarce DRAM behind a contended NVMe: ownership cost
  // pushes the shards onto the strong nodes.
  EXPECT_GT(strong_owned, weak_owned);
}

TEST(Placement, RoundRobinSpreadsEvenlyByIndex) {
  const graph::Model model = tiny_transformer();
  FleetSpec fleet = small_fleet();
  fleet.strategy = PlacementStrategy::kRoundRobin;
  const auto blocks = placement_blocks(model, 8);
  const PlacementPlan plan = place_blocks(model, fleet, blocks, {});
  for (std::size_t b = 0; b < plan.owner.size(); ++b)
    EXPECT_EQ(plan.owner[b], static_cast<int>(b) % fleet.num_nodes());
}

TEST(Placement, InfeasibleNamesTheBindingNode) {
  const graph::Model model = tiny_transformer();
  // Every node's DRAM is too small for any block's ownership charge.
  FleetSpec fleet = small_fleet();
  for (auto& node : fleet.nodes) node.device.host_capacity = 1024;
  PlacementOptions options;
  options.optimizer_state_bytes = [](Bytes param) { return 3 * param; };
  try {
    place_blocks(model, fleet, placement_blocks(model, 8), options);
    FAIL() << "expected FleetInfeasible";
  } catch (const FleetInfeasible& ex) {
    EXPECT_FALSE(ex.node.empty());
    ASSERT_FALSE(ex.deficits.empty());
    EXPECT_EQ(ex.deficits[0].tier, tier::Tier::kHost);
    EXPECT_GT(ex.deficits[0].required, ex.deficits[0].capacity);
  }
}

// ---------------------------------------------------------------------------
// Determinism: the ISSUE's bit-identity acceptance gate. This test also
// runs in the TSan lane (all tier1 tests do), covering the "and under
// TSan" half.
// ---------------------------------------------------------------------------

TEST(Placement, FleetPlanIsBitIdenticalAcrossRuns) {
  const graph::Model model = tiny_transformer();
  const FleetSpec fleet = small_fleet();
  const FleetPlanResult a = plan_fleet(model, fleet, fast_options());
  const FleetPlanResult b = plan_fleet(model, fleet, fast_options());
  EXPECT_EQ(api::placement_to_json(a.placement),
            api::placement_to_json(b.placement));
  EXPECT_EQ(a.straggler, b.straggler);
  EXPECT_EQ(a.iteration_time, b.iteration_time);  // bitwise, not approx
}

TEST(Placement, StragglerCompositionIsTheMaxOverNodes) {
  const graph::Model model = tiny_transformer();
  const FleetPlanResult r =
      plan_fleet(model, small_fleet(), fast_options());
  ASSERT_EQ(r.nodes.size(), r.placement.nodes.size());
  Seconds max_total = 0;
  for (const auto& leg : r.nodes) {
    EXPECT_GE(leg.total_time,
              leg.result.iteration_time + leg.exchange_tail);
    max_total = std::max(max_total, leg.total_time);
  }
  EXPECT_EQ(r.iteration_time, max_total);
  EXPECT_EQ(r.nodes[r.straggler].total_time, max_total);
}

// ---------------------------------------------------------------------------
// Serialization: fixtures + key preservation.
// ---------------------------------------------------------------------------

TEST(PlacementIo, GoldenFixtureMatches) {
  // Hand-built artifact (like plan_io's golden): pins the SCHEMA, not the
  // planner's output, so searches can improve without fixture churn.
  PlacementPlan p;
  p.strategy = PlacementStrategy::kCostBased;
  p.blocks = {{0, 3}, {3, 7}};
  p.owner = {1, 0};
  NodeSummary n0;
  n0.name = "a100-0";
  n0.device_name = "A100-SXM4-40GiB + local NVMe";
  n0.owned_blocks = 1;
  n0.owned_param_bytes = 4096;
  n0.owned_grad_bytes = 4096;
  n0.reserved_host_bytes = 20480;
  n0.plan_iteration_time = 0.5;
  n0.exchange_tail = 0.125;
  n0.update_time = 0.0625;
  n0.total_time = 0.6875;
  NodeSummary n1 = n0;
  n1.name = "v100-0";
  n1.device_name = "V100-SXM2-16GiB (ABCI) + local NVMe";
  n1.warm_started = true;
  p.nodes = {n0, n1};
  p.straggler = 1;
  p.iteration_time = 0.75;

  const std::string path =
      std::string(KARMA_SOURCE_DIR) + "/tests/golden/placement_fixture.json";
  const std::string actual = api::placement_to_json(p);

  if (std::getenv("KARMA_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual << "\n";
    GTEST_SKIP() << "regenerated golden fixture at " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing golden fixture " << path
      << " — regenerate with KARMA_REGEN_GOLDEN=1 ./test_place";
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string expected = buffer.str();
  if (!expected.empty() && expected.back() == '\n') expected.pop_back();

  EXPECT_EQ(actual, expected)
      << "placement JSON schema drifted; if intentional, regenerate with "
         "KARMA_REGEN_GOLDEN=1 and review the diff";
  const PlacementPlan reloaded = api::placement_from_json(expected);
  EXPECT_EQ(api::placement_to_json(reloaded), expected);
}

TEST(PlacementIo, FleetRequestRoundTripPreservesCacheKey) {
  const api::PlanRequest request = fleet_request();
  const std::string json = api::request_to_json(request);
  const auto parsed = api::request_from_json(json);
  ASSERT_TRUE(parsed.has_value()) << parsed.error().describe();
  ASSERT_TRUE(parsed->fleet.has_value());
  EXPECT_EQ(cache::request_fingerprint(*parsed),
            cache::request_fingerprint(request));
  EXPECT_EQ(api::request_to_json(*parsed), json);
}

TEST(PlacementIo, FleetChangesRekeyTheRequest) {
  const api::PlanRequest base = fleet_request();
  api::PlanRequest strategy_flipped = base;
  strategy_flipped.fleet->strategy = PlacementStrategy::kRoundRobin;
  api::PlanRequest node_renamed = base;
  node_renamed.fleet->nodes[0].name = "a100-0b";
  api::PlanRequest no_fleet = base;
  no_fleet.fleet.reset();
  const auto key = [](const api::PlanRequest& r) {
    return cache::request_fingerprint(r);
  };
  EXPECT_NE(key(base), key(strategy_flipped));
  EXPECT_NE(key(base), key(node_renamed));
  EXPECT_NE(key(base), key(no_fleet));
}

TEST(PlacementIo, FleetSpecRoundTripsStandalone) {
  FleetSpec fleet = small_fleet();
  fleet.strategy = PlacementStrategy::kRoundRobin;
  const std::string json = api::fleet_to_json(fleet);
  const FleetSpec parsed = api::fleet_from_json(json);
  EXPECT_EQ(api::fleet_to_json(parsed), json);
  EXPECT_EQ(parsed.strategy, PlacementStrategy::kRoundRobin);
  ASSERT_EQ(parsed.num_nodes(), fleet.num_nodes());
  EXPECT_EQ(parsed.nodes[3].device.nvme_contention.queue_depth, 4.0);
}

// ---------------------------------------------------------------------------
// Identity contention = byte-unchanged artifacts and cache keys.
// ---------------------------------------------------------------------------

TEST(NvmeContention, IdentityLeavesDeviceJsonAndKeysByteUnchanged) {
  api::PlanRequest request = fleet_request();
  request.fleet.reset();
  const std::string json = api::request_to_json(request);
  // The identity contention model must be invisible on the wire...
  EXPECT_EQ(json.find("nvme_contention"), std::string::npos);
  // ...and a non-identity one must both serialize and re-key.
  api::PlanRequest contended = request;
  contended.device.nvme_contention.queue_depth = 4.0;
  EXPECT_NE(api::request_to_json(contended).find("nvme_contention"),
            std::string::npos);
  EXPECT_NE(cache::request_fingerprint(contended),
            cache::request_fingerprint(request));
}

TEST(NvmeContention, IdentityReproducesSeedTimingsExactly) {
  sim::DeviceSpec base = sim::v100_abci_nvme();
  sim::DeviceSpec contended = base;
  contended.nvme_contention.queue_depth = 4.0;
  contended.nvme_contention.mixed_read_penalty = 1.6;
  const Bytes mb = Bytes{1} << 20;
  // qd=0 is the exact seed formula (bw / (1+0) == bw, bitwise).
  EXPECT_EQ(base.nvme_read_time(mb),
            base.nvme_latency + static_cast<double>(mb) / base.nvme_read_bw);
  // qd=4 stretches the transfer ~5x (latency excluded).
  EXPECT_NEAR(contended.nvme_read_time(mb) - base.nvme_latency,
              5.0 * (base.nvme_read_time(mb) - base.nvme_latency), 1e-12);
}

// ---------------------------------------------------------------------------
// End-to-end through the Session facade.
// ---------------------------------------------------------------------------

TEST(FleetSession, PlansEndToEndAndNamesTheStraggler) {
  const auto planned = api::Engine::create()->session().plan(fleet_request());
  ASSERT_TRUE(planned.has_value()) << planned.error().describe();
  const api::Plan& plan = *planned;
  ASSERT_TRUE(plan.placement.has_value());
  const PlacementPlan& placement = *plan.placement;
  ASSERT_EQ(placement.nodes.size(), 4u);
  ASSERT_GE(placement.straggler, 0);
  // The artifact's scalar fields describe the straggler node.
  EXPECT_EQ(plan.device.name,
            placement.nodes[placement.straggler].device_name);
  EXPECT_EQ(plan.iteration_time, placement.iteration_time);
  EXPECT_TRUE(plan.distributed);
  ASSERT_TRUE(plan.exchange.has_value());
  // Fleet max >= the straggler's own planned makespan (tails add).
  EXPECT_GE(plan.iteration_time,
            placement.nodes[placement.straggler].plan_iteration_time);
  // The artifact round-trips with its placement intact.
  const auto reloaded = api::Plan::from_json(plan.to_json());
  ASSERT_TRUE(reloaded.has_value()) << reloaded.error().describe();
  ASSERT_TRUE(reloaded->placement.has_value());
  EXPECT_EQ(api::placement_to_json(*reloaded->placement),
            api::placement_to_json(placement));
  EXPECT_EQ(reloaded->to_json(), plan.to_json());
}

TEST(FleetSession, InfeasibleFleetReportsBindingNodeAsStructuredError) {
  api::PlanRequest request = fleet_request();
  for (auto& node : request.fleet->nodes) node.device.host_capacity = 1024;
  const auto planned = api::Engine::create()->session().plan(request);
  ASSERT_FALSE(planned.has_value());
  const api::PlanError& e = planned.error();
  EXPECT_EQ(e.code, api::PlanErrorCode::kTierOverflow);
  EXPECT_FALSE(e.device.empty());
  // The binding node, not the request's nominal device.
  EXPECT_NE(e.device, request.device.name);
  ASSERT_FALSE(e.deficits.empty());
  EXPECT_EQ(e.deficits[0].tier, tier::Tier::kHost);
}

TEST(FleetSession, FleetAndDistributedAreMutuallyExclusive) {
  api::PlanRequest request = fleet_request();
  core::DistributedOptions distributed;
  distributed.num_gpus = 4;
  request.distributed = distributed;
  const auto planned = api::Engine::create()->session().plan(request);
  ASSERT_FALSE(planned.has_value());
  EXPECT_EQ(planned.error().code, api::PlanErrorCode::kInvalidRequest);
}

TEST(FleetSession, InvalidFleetIsRejectedBeforePlanning) {
  api::PlanRequest request = fleet_request();
  request.fleet->nodes.resize(1);  // < 2 nodes
  const auto planned = api::Engine::create()->session().plan(request);
  ASSERT_FALSE(planned.has_value());
  EXPECT_EQ(planned.error().code, api::PlanErrorCode::kInvalidRequest);
}

TEST(FleetSession, FleetPlansAreServedFromCache) {
  const auto engine = api::Engine::create();
  const api::PlanRequest request = fleet_request();
  const auto first = engine->session().plan(request);
  ASSERT_TRUE(first.has_value()) << first.error().describe();
  const auto second = engine->session().plan(request);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->to_json(), first->to_json());
  EXPECT_GE(engine->session().cache_stats().hits(), 1u);
}

}  // namespace
}  // namespace karma::place
