// request_io: the versioned PlanRequest / PlanError JSON artifacts that
// ride the karma-pland wire (DESIGN.md §12). The load-bearing property is
// KEY PRESERVATION: a request that crosses the wire must plan against the
// same cache entry as the original — request_key(round_trip(r)) ==
// request_key(r) — otherwise the fleet-wide single-flight and the storm
// test's byte-identity guarantee silently fall apart.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/api/engine.h"
#include "src/api/plan_io.h"
#include "src/api/request_io.h"
#include "src/cache/request_key.h"
#include "src/graph/model_zoo.h"

namespace karma::api {
namespace {

PlanRequest resnet_request(std::int64_t batch = 512) {
  PlanRequest request;
  request.model = graph::make_resnet50(batch);
  request.device = sim::v100_abci();
  request.planner.enable_recompute = true;
  request.planner.anneal_iterations = 30;
  request.probe_feasible_batch = false;
  return request;
}

/// Exercises every optional corner of the schema at once: skip edges,
/// a distributed spec with non-default everything, an exotic optimizer,
/// a 64-bit seed past int64, and search limits.
PlanRequest kitchen_sink_request() {
  PlanRequest request;
  request.model = graph::make_unet(/*batch=*/8);  // has skip edges
  request.device = sim::v100_abci();
  request.planner.enable_recompute = false;
  request.planner.min_blocks = 3;
  request.planner.max_blocks = 17;
  request.planner.anneal_iterations = 7;
  request.planner.seed = 0xDEADBEEFCAFEF00Dull;  // > int64 max when doubled
  request.optimizer.kind = OptimizerSpec::Kind::kAdam;
  request.optimizer.host_resident = true;
  request.optimizer.state_bytes_per_param_byte = 3.25;
  core::DistributedOptions dist;
  dist.num_gpus = 16;
  dist.net.gpus_per_node = 8;
  dist.net.intra_bw = 123.5e9;
  dist.net.intra_latency = 2.5e-6;
  dist.net.inter_bw = 25e9;
  dist.net.inter_latency = 11e-6;
  dist.exchange = core::ExchangeMode::kPerBlock;
  dist.update = core::UpdateSite::kDevice;
  dist.iterations = 3;
  dist.weight_shard_fraction = 0.0625;
  request.distributed = dist;
  request.probe_feasible_batch = true;
  request.limits.deadline = 1.5;
  request.limits.max_candidates = 4242;
  return request;
}

TEST(RequestIo, RoundTripPreservesTheRequestKey) {
  for (const PlanRequest& request :
       {resnet_request(), kitchen_sink_request()}) {
    const std::string json = request_to_json(request);
    auto back = request_from_json(json);
    ASSERT_TRUE(back.has_value()) << json.substr(0, 200);
    EXPECT_EQ(cache::request_key(request).hex(),
              cache::request_key(back.value()).hex());
  }
}

TEST(RequestIo, RoundTripIsByteStable) {
  for (const PlanRequest& request :
       {resnet_request(), kitchen_sink_request()}) {
    const std::string json = request_to_json(request);
    auto back = request_from_json(json);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(request_to_json(back.value()), json);
  }
}

TEST(RequestIo, RoundTripPreservesNonKeyFields) {
  // limits and the probe flag are deliberately OUTSIDE the fingerprint
  // (a deadline must not fork the cache) but must still cross the wire.
  const PlanRequest request = kitchen_sink_request();
  auto back = request_from_json(request_to_json(request));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->probe_feasible_batch, true);
  EXPECT_DOUBLE_EQ(back->limits.deadline, 1.5);
  EXPECT_EQ(back->limits.max_candidates, 4242);
  ASSERT_TRUE(back->distributed.has_value());
  EXPECT_EQ(back->distributed->num_gpus, 16);
  EXPECT_EQ(back->planner.seed, 0xDEADBEEFCAFEF00Dull);
}

TEST(RequestIo, SkipEdgesSurviveReconstruction) {
  // Only non-chain edges serialize (add_layer wires the chain); the U-Net
  // skips must come back exactly for the fingerprint to match.
  const PlanRequest request = kitchen_sink_request();
  auto back = request_from_json(request_to_json(request));
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->model.layers().size(), request.model.layers().size());
  for (std::size_t i = 0; i < request.model.layers().size(); ++i) {
    const int id = static_cast<int>(i);
    EXPECT_EQ(back->model.succs(id), request.model.succs(id))
        << "layer " << id;
  }
}

TEST(RequestIo, MalformedRequestIsAParseError) {
  for (const char* bad :
       {"", "not json", "[]", "{\"version\":1}",
        "{\"version\":99,\"model\":{}}"}) {
    auto parsed = request_from_json(bad);
    ASSERT_FALSE(parsed.has_value()) << bad;
    EXPECT_EQ(parsed.error().code, PlanErrorCode::kParseError) << bad;
  }
}

TEST(RequestIo, NegativeSeedIsAParseErrorNotAWrap) {
  // strtoull accepts "-1" and wraps it to 2^64-1 without ERANGE; the
  // reader must reject it instead of silently planning with a huge seed.
  const std::string json = request_to_json(kitchen_sink_request());
  const std::string good = "\"seed\":\"16045690984503111693\"";
  ASSERT_NE(json.find(good), std::string::npos);
  for (const char* bad : {"\"seed\":\"-1\"", "\"seed\":\"+7\"",
                          "\"seed\":\" 7\"", "\"seed\":\"\""}) {
    std::string mutated = json;
    mutated.replace(mutated.find(good), good.size(), bad);
    auto parsed = request_from_json(mutated);
    ASSERT_FALSE(parsed.has_value()) << bad;
    EXPECT_EQ(parsed.error().code, PlanErrorCode::kParseError) << bad;
  }
}

// ---------------------------------------------------------------------------
// PlanError artifacts
// ---------------------------------------------------------------------------

TEST(RequestIo, ErrorRoundTripPreservesEveryField) {
  PlanError e;
  e.code = PlanErrorCode::kTierOverflow;
  e.message = "demand exceeds every tier \"quoted\"";
  e.model = "resnet50-b512";
  e.device = "V100-ABCI";
  e.violating_layer = 42;
  e.violating_block = 7;
  e.deficits.push_back({tier::Tier::kHost, 1000, 800});
  e.deficits.push_back({tier::Tier::kNvme, 5000, 4096});
  e.nearest_feasible_batch = 384;
  e.probe_candidates = 9;
  e.probe_cache_hits = 3;
  e.from_negative_cache = true;
  e.retry_after = 0.25;

  const PlanError back = error_from_json(error_to_json(e));
  EXPECT_EQ(back.code, e.code);
  EXPECT_EQ(back.message, e.message);
  EXPECT_EQ(back.model, e.model);
  EXPECT_EQ(back.device, e.device);
  EXPECT_EQ(back.violating_layer, e.violating_layer);
  EXPECT_EQ(back.violating_block, e.violating_block);
  ASSERT_EQ(back.deficits.size(), 2u);
  EXPECT_EQ(back.deficits[0].tier, tier::Tier::kHost);
  EXPECT_EQ(back.deficits[0].required, 1000);
  EXPECT_EQ(back.deficits[1].capacity, 4096);
  EXPECT_EQ(back.nearest_feasible_batch, 384);
  EXPECT_EQ(back.probe_candidates, 9);
  EXPECT_EQ(back.probe_cache_hits, 3);
  EXPECT_TRUE(back.from_negative_cache);
  EXPECT_DOUBLE_EQ(back.retry_after, 0.25);
  EXPECT_EQ(back.partial, nullptr);
}

TEST(RequestIo, ErrorRoundTripCarriesThePartialPlanByteExactly) {
  // A deadline error ships the best-so-far artifact; across the wire it
  // must stay the same bytes (the plan artifact is spliced verbatim).
  const auto planned =
      Engine::create()->session().plan(resnet_request(256));
  ASSERT_TRUE(planned.has_value());
  PlanError e;
  e.code = PlanErrorCode::kDeadline;
  e.message = "out of budget";
  e.partial = std::make_shared<const Plan>(planned.value());

  const PlanError back = error_from_json(error_to_json(e));
  EXPECT_EQ(back.code, PlanErrorCode::kDeadline);
  ASSERT_NE(back.partial, nullptr);
  EXPECT_EQ(back.partial->to_json(), planned.value().to_json());
}

TEST(RequestIo, MalformedErrorDegradesToAParseError) {
  const PlanError e = error_from_json("{\"garbage\":true}");
  EXPECT_EQ(e.code, PlanErrorCode::kParseError);
}

}  // namespace
}  // namespace karma::api
