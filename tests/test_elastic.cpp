// Fault tolerance of data-parallel KARMA (Table I): shrink and relaunch
// recovery, and the checkpoint/restart mechanism of Sec. IV-C.
#include "src/core/elastic.h"

#include <gtest/gtest.h>

#include "src/graph/model_zoo.h"
#include "src/train/checkpoint.h"
#include "src/train/sgd.h"
#include "src/train/synthetic.h"

namespace karma::core {
namespace {

ElasticOptions base_options(int gpus) {
  ElasticOptions options;
  options.distributed.num_gpus = gpus;
  options.distributed.iterations = 2;
  options.distributed.planner.anneal_iterations = 0;
  // Recovery costs proportionate to the short test epoch (~25 s); the
  // defaults target multi-hour production epochs.
  options.checkpoint_cost = 0.2;
  options.relaunch_cost = 1.0;
  return options;
}

const graph::Model& model() {
  static const graph::Model m = graph::make_resnet50(128);
  return m;
}

TEST(Elastic, NoFaultsNoOverhead) {
  const auto result = simulate_epoch_with_faults(
      model(), sim::v100_abci(), base_options(16), 128000, {});
  EXPECT_EQ(result.final_ranks, 16);
  // Only the periodic checkpoint cost separates the two.
  EXPECT_GE(result.epoch_with_faults, result.fault_free_epoch);
  EXPECT_LT(result.overhead_fraction, 0.2);
  EXPECT_EQ(result.phase_iteration_times.size(), 1u);
}

TEST(Elastic, ShrinkSurvivesSingleFault) {
  const auto result = simulate_epoch_with_faults(
      model(), sim::v100_abci(), base_options(16), 128000,
      {{0.5, 2}});
  EXPECT_EQ(result.final_ranks, 14);
  EXPECT_GT(result.epoch_with_faults, result.fault_free_epoch);
  EXPECT_EQ(result.phase_iteration_times.size(), 2u);
  // Losing 2 of 16 ranks halfway costs well under the naive 12.5%+ bound
  // on the remaining half... but must cost something.
  EXPECT_GT(result.overhead_fraction, 0.0);
  EXPECT_LT(result.overhead_fraction, 0.5);
}

TEST(Elastic, RelaunchCostsMoreThanShrink) {
  ElasticOptions shrink = base_options(16);
  shrink.mode = RecoveryMode::kShrink;
  ElasticOptions relaunch = base_options(16);
  relaunch.mode = RecoveryMode::kRelaunch;
  const std::vector<FaultEvent> faults = {{0.55, 1}};
  const auto s = simulate_epoch_with_faults(model(), sim::v100_abci(),
                                            shrink, 128000, faults);
  const auto r = simulate_epoch_with_faults(model(), sim::v100_abci(),
                                            relaunch, 128000, faults);
  EXPECT_LE(s.epoch_with_faults, r.epoch_with_faults);
}

TEST(Elastic, MultipleFaultsAccumulate) {
  const auto one = simulate_epoch_with_faults(
      model(), sim::v100_abci(), base_options(16), 128000, {{0.3, 1}});
  const auto two = simulate_epoch_with_faults(
      model(), sim::v100_abci(), base_options(16), 128000,
      {{0.3, 1}, {0.7, 1}});
  EXPECT_GT(two.epoch_with_faults, one.epoch_with_faults);
  EXPECT_EQ(two.final_ranks, 14);
  EXPECT_EQ(two.phase_iteration_times.size(), 3u);
}

TEST(Elastic, PoolExhaustionThrows) {
  EXPECT_THROW(simulate_epoch_with_faults(model(), sim::v100_abci(),
                                          base_options(4), 1000,
                                          {{0.5, 3}}),
               std::runtime_error);
}

// ---- Checkpoint / restart on the numeric twin ----

TEST(Checkpoint, RoundTripBitwise) {
  using namespace train;
  Rng rng(5);
  Sequential net = make_mlp({8, 16, 4}, rng);
  const auto saved = save_checkpoint(net);
  // Perturb, then restore.
  for (Tensor* p : net.all_params()) p->fill(0.123f);
  load_checkpoint(net, saved);
  Rng rng2(5);
  Sequential reference = make_mlp({8, 16, 4}, rng2);
  const auto a = net.all_params();
  const auto b = reference.all_params();
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_TRUE(bitwise_equal(*a[i], *b[i]));
}

TEST(Checkpoint, RestartContinuesIdentically) {
  // Train 3 steps, checkpoint, train 2 more; vs restore-into-fresh-net
  // and train the same 2: identical weights (Sec. IV-C's epoch splitting
  // is lossless).
  using namespace train;
  Rng data_rng(3);
  const SyntheticBatch data = make_synthetic_batch(8, {8}, 4, data_rng);
  const auto train_steps = [&](Sequential& net, train::SGD& opt, int steps) {
    SoftmaxCrossEntropy loss;
    for (int i = 0; i < steps; ++i) {
      net.zero_grads();
      loss.forward(net.forward(data.inputs), data.labels);
      net.backward(loss.grad_logits());
      opt.step(net.all_params(), net.all_grads());
    }
  };
  Rng rng(9);
  Sequential continuous = make_mlp({8, 16, 4}, rng);
  train::SGD opt_a(0.05f);
  train_steps(continuous, opt_a, 3);
  const auto ckpt = save_checkpoint(continuous);
  train_steps(continuous, opt_a, 2);

  Rng rng2(1234);  // different init — must be fully overwritten
  Sequential restarted = make_mlp({8, 16, 4}, rng2);
  load_checkpoint(restarted, ckpt);
  train::SGD opt_b(0.05f);
  train_steps(restarted, opt_b, 2);

  const auto a = continuous.all_params();
  const auto b = restarted.all_params();
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_TRUE(bitwise_equal(*a[i], *b[i])) << "param " << i;
}

TEST(Checkpoint, RejectsCorruptBuffers) {
  using namespace train;
  Rng rng(5);
  Sequential net = make_mlp({4, 4}, rng);
  auto saved = save_checkpoint(net);
  auto truncated = saved;
  truncated.resize(truncated.size() / 2);
  EXPECT_THROW(load_checkpoint(net, truncated), std::runtime_error);
  auto bad_magic = saved;
  bad_magic[0] ^= 0xff;
  EXPECT_THROW(load_checkpoint(net, bad_magic), std::runtime_error);
  // Architecture mismatch.
  Rng rng2(5);
  Sequential other = make_mlp({4, 8}, rng2);
  EXPECT_THROW(load_checkpoint(other, saved), std::runtime_error);
}

}  // namespace
}  // namespace karma::core
