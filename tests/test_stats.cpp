#include "src/util/stats.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace karma {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

// merge() is the parallel-Welford combine (Chan et al.): merging shards
// must be numerically equivalent to having added every value serially.
TEST(RunningStatsMerge, EquivalentToSerial) {
  RunningStats serial, a, b;
  const std::vector<double> left = {2.0, 4.0, 4.0, 4.0};
  const std::vector<double> right = {5.0, 5.0, 7.0, 9.0, 11.5};
  for (double v : left) {
    serial.add(v);
    a.add(v);
  }
  for (double v : right) {
    serial.add(v);
    b.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), serial.count());
  EXPECT_NEAR(a.mean(), serial.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), serial.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), serial.min());
  EXPECT_DOUBLE_EQ(a.max(), serial.max());
  EXPECT_NEAR(a.sum(), serial.sum(), 1e-12);
}

TEST(RunningStatsMerge, EmptyOperands) {
  RunningStats a, b, empty;
  a.add(1.0);
  a.add(3.0);
  // Merging an empty accumulator in changes nothing.
  RunningStats a_copy = a;
  a_copy.merge(empty);
  EXPECT_EQ(a_copy.count(), 2u);
  EXPECT_DOUBLE_EQ(a_copy.mean(), 2.0);
  // Merging INTO an empty accumulator copies the other side.
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
  EXPECT_DOUBLE_EQ(b.min(), 1.0);
  EXPECT_DOUBLE_EQ(b.max(), 3.0);
}

TEST(RunningStatsMerge, ManyShardsMatchSerial) {
  // The Histogram use case: k shards, arbitrary interleaving.
  RunningStats serial;
  std::vector<RunningStats> shards(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = 0.1 * static_cast<double>(i % 97) + 1e-3;
    serial.add(v);
    shards[static_cast<std::size_t>(i) % shards.size()].add(v);
  }
  RunningStats merged;
  for (const auto& s : shards) merged.merge(s);
  EXPECT_EQ(merged.count(), serial.count());
  EXPECT_NEAR(merged.mean(), serial.mean(), 1e-12);
  EXPECT_NEAR(merged.variance(), serial.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(merged.min(), serial.min());
  EXPECT_DOUBLE_EQ(merged.max(), serial.max());
}

TEST(GeometricMean, Basic) {
  EXPECT_NEAR(geometric_mean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geometric_mean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(GeometricMean, Errors) {
  EXPECT_THROW(geometric_mean({}), std::invalid_argument);
  EXPECT_THROW(geometric_mean({1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(geometric_mean({-1.0}), std::invalid_argument);
}

TEST(Percentile, Interpolation) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);
}

TEST(Percentile, Errors) {
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, -1.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 101.0), std::invalid_argument);
}

TEST(Percentile, UnsortedInput) {
  EXPECT_DOUBLE_EQ(percentile({4.0, 1.0, 3.0, 2.0}, 50.0), 2.5);
}

}  // namespace
}  // namespace karma
