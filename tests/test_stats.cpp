#include "src/util/stats.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace karma {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(GeometricMean, Basic) {
  EXPECT_NEAR(geometric_mean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geometric_mean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(GeometricMean, Errors) {
  EXPECT_THROW(geometric_mean({}), std::invalid_argument);
  EXPECT_THROW(geometric_mean({1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(geometric_mean({-1.0}), std::invalid_argument);
}

TEST(Percentile, Interpolation) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);
}

TEST(Percentile, Errors) {
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, -1.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 101.0), std::invalid_argument);
}

TEST(Percentile, UnsortedInput) {
  EXPECT_DOUBLE_EQ(percentile({4.0, 1.0, 3.0, 2.0}, 50.0), 2.5);
}

}  // namespace
}  // namespace karma
