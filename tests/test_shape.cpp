#include "src/graph/shape.h"

#include <gtest/gtest.h>

namespace karma::graph {
namespace {

TEST(TensorShape, NchwBasics) {
  const auto s = TensorShape::nchw(8, 3, 224, 224);
  EXPECT_EQ(s.rank(), 4u);
  EXPECT_EQ(s.batch(), 8);
  EXPECT_EQ(s.numel(), 8 * 3 * 224 * 224);
  EXPECT_EQ(s.numel_per_sample(), 3 * 224 * 224);
  EXPECT_EQ(s.dim(2), 224);
}

TEST(TensorShape, NshBasics) {
  const auto s = TensorShape::nsh(4, 1024, 1920);
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s.numel(), std::int64_t{4} * 1024 * 1920);
}

TEST(TensorShape, WithBatch) {
  const auto s = TensorShape::nchw(8, 3, 32, 32);
  const auto t = s.with_batch(64);
  EXPECT_EQ(t.batch(), 64);
  EXPECT_EQ(t.numel_per_sample(), s.numel_per_sample());
  EXPECT_EQ(s.batch(), 8);  // original untouched
}

TEST(TensorShape, EqualityAndToString) {
  EXPECT_EQ(TensorShape::nchw(1, 2, 3, 4), TensorShape({1, 2, 3, 4}));
  EXPECT_FALSE(TensorShape({1, 2}) == TensorShape({2, 1}));
  EXPECT_EQ(TensorShape({2, 3}).to_string(), "[2x3]");
}

TEST(TensorShape, RejectsNonPositiveDims) {
  EXPECT_THROW(TensorShape({0, 2}), std::invalid_argument);
  EXPECT_THROW(TensorShape({-1}), std::invalid_argument);
}

TEST(TensorShape, LargeShapesNoOverflow) {
  // Turing-NLG LM-head logits: 16 x 1024 x 50257 elements.
  const auto s = TensorShape::nsh(16, 1024, 50257);
  EXPECT_EQ(s.numel(), std::int64_t{16} * 1024 * 50257);
  EXPECT_GT(s.numel(), 0);
}

TEST(TensorShape, DefaultIsScalarLike) {
  const TensorShape s;
  EXPECT_EQ(s.rank(), 0u);
  EXPECT_EQ(s.numel(), 1);
}

}  // namespace
}  // namespace karma::graph
