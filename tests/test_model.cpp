#include "src/graph/model.h"

#include <gtest/gtest.h>

namespace karma::graph {
namespace {

Layer simple_layer(LayerKind kind, std::int64_t weight_elems = 0) {
  Layer l;
  l.kind = kind;
  l.in_shape = l.out_shape = TensorShape::nchw(2, 4, 8, 8);
  l.weight_elems = weight_elems;
  return l;
}

TEST(Model, ChainConstruction) {
  Model m("chain");
  const int a = m.add_layer(simple_layer(LayerKind::kInput));
  const int b = m.add_layer(simple_layer(LayerKind::kConv2d, 100));
  const int c = m.add_layer(simple_layer(LayerKind::kReLU));
  EXPECT_EQ(a, 0);
  EXPECT_EQ(c, 2);
  EXPECT_TRUE(m.is_linear_chain());
  EXPECT_EQ(m.max_skip_span(), 1);
  EXPECT_EQ(m.preds(b), std::vector<int>{0});
  EXPECT_EQ(m.succs(b), std::vector<int>{2});
  EXPECT_EQ(m.total_weight_elems(), 100);
  m.validate();
}

TEST(Model, SkipEdges) {
  Model m("skip");
  for (int i = 0; i < 5; ++i) m.add_layer(simple_layer(LayerKind::kReLU));
  m.add_edge(0, 4);
  EXPECT_FALSE(m.is_linear_chain());
  EXPECT_EQ(m.max_skip_span(), 4);
  EXPECT_EQ(m.preds(4), (std::vector<int>{0, 3}));
  m.validate();
}

TEST(Model, EdgeIsIdempotent) {
  Model m("idem");
  m.add_layer(simple_layer(LayerKind::kInput));
  m.add_layer(simple_layer(LayerKind::kReLU));
  m.add_layer(simple_layer(LayerKind::kReLU));
  m.add_edge(0, 2);
  m.add_edge(0, 2);
  EXPECT_EQ(m.preds(2).size(), 2u);
}

TEST(Model, RejectsBadEdges) {
  Model m("bad");
  m.add_layer(simple_layer(LayerKind::kInput));
  m.add_layer(simple_layer(LayerKind::kReLU));
  EXPECT_THROW(m.add_edge(1, 0), std::logic_error);      // backwards
  EXPECT_THROW(m.add_edge(0, 0), std::logic_error);      // self
  EXPECT_THROW(m.add_edge(0, 7), std::out_of_range);     // out of range
  EXPECT_THROW(m.add_edge(-1, 1), std::out_of_range);
}

TEST(Model, WithBatchSizeRescalesActivationsOnly) {
  Model m("rebatch");
  Layer l = simple_layer(LayerKind::kConv2d, 500);
  m.add_layer(l);
  m.add_layer(simple_layer(LayerKind::kReLU));
  m.add_layer(simple_layer(LayerKind::kReLU));
  m.add_edge(0, 2);
  const Model big = m.with_batch_size(16);
  EXPECT_EQ(big.layer(0).out_shape.batch(), 16);
  EXPECT_EQ(big.total_weight_elems(), m.total_weight_elems());
  EXPECT_EQ(big.max_skip_span(), m.max_skip_span());  // skips preserved
  big.validate();
}

TEST(Model, LayerKindNames) {
  EXPECT_STREQ(layer_kind_name(LayerKind::kConv2d), "Conv2d");
  EXPECT_STREQ(layer_kind_name(LayerKind::kSelfAttention), "SelfAttention");
}

TEST(Model, CheapToRecomputeClassification) {
  EXPECT_TRUE(is_cheap_to_recompute(LayerKind::kReLU));
  EXPECT_TRUE(is_cheap_to_recompute(LayerKind::kBatchNorm));
  EXPECT_FALSE(is_cheap_to_recompute(LayerKind::kConv2d));
  EXPECT_FALSE(is_cheap_to_recompute(LayerKind::kFullyConnected));
  EXPECT_FALSE(is_cheap_to_recompute(LayerKind::kSelfAttention));
}

}  // namespace
}  // namespace karma::graph
