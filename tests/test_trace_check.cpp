// The independent trace-invariant checker, cross-checking the engine on
// planner output across models and strategies (a second implementation of
// the replay semantics; disagreement = bug in one of them).
#include "src/sim/trace_check.h"

#include <gtest/gtest.h>

#include "src/baselines/strategies.h"
#include "src/core/distributed.h"
#include "src/graph/model_zoo.h"

namespace karma::sim {
namespace {

TEST(TraceCheck, CleanTracePasses) {
  const graph::Model model = graph::make_vgg16(64);
  const auto result = baselines::plan_karma_recompute(model, v100_abci());
  ASSERT_TRUE(result);
  const auto violations =
      check_trace_invariants(result->plan, result->trace);
  for (const auto& v : violations) ADD_FAILURE() << v;
}

TEST(TraceCheck, DetectsTamperedOverlap) {
  const graph::Model model = graph::make_vgg16(64);
  const auto result = baselines::plan_karma(model, v100_abci());
  ASSERT_TRUE(result);
  ExecutionTrace tampered = result->trace;
  // Pull the second compute op's start before the first one's end.
  int first = -1;
  for (std::size_t i = 0; i < tampered.records.size(); ++i) {
    if (stream_of(tampered.records[i].kind) != Stream::kCompute) continue;
    if (first < 0) {
      first = static_cast<int>(i);
    } else {
      tampered.records[i].start =
          tampered.records[static_cast<std::size_t>(first)].start;
      break;
    }
  }
  const auto violations = check_trace_invariants(result->plan, tampered);
  EXPECT_FALSE(violations.empty());
}

TEST(TraceCheck, DetectsMemoryOverflow) {
  const graph::Model model = graph::make_vgg16(64);
  const auto result = baselines::plan_karma(model, v100_abci());
  ASSERT_TRUE(result);
  Plan squeezed = result->plan;
  squeezed.capacity /= 64;  // trace was produced for the real capacity
  const auto violations = check_trace_invariants(squeezed, result->trace);
  bool has_memory_violation = false;
  for (const auto& v : violations)
    has_memory_violation |= v.find("memory exceeds") != std::string::npos;
  EXPECT_TRUE(has_memory_violation);
}

class StrategyTraces : public ::testing::TestWithParam<int> {};

TEST_P(StrategyTraces, AllStrategiesProduceConsistentTraces) {
  const auto& entry =
      baselines::all_strategies()[static_cast<std::size_t>(GetParam())];
  for (const auto& model :
       {graph::make_resnet50(384), graph::make_resnet200(12),
        graph::make_unet(24)}) {
    const auto result = entry.plan(model, v100_abci());
    if (!result) continue;
    const auto violations =
        check_trace_invariants(result->plan, result->trace);
    for (const auto& v : violations)
      ADD_FAILURE() << entry.name << " on " << model.name() << ": " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(All, StrategyTraces, ::testing::Range(0, 9));

TEST(TraceCheck, DistributedPipelineTraceConsistent) {
  const graph::Model model =
      graph::make_transformer(graph::megatron_config(0), 4);
  core::DistributedOptions options;
  options.num_gpus = 32;
  options.iterations = 2;
  options.planner.anneal_iterations = 0;
  const auto result =
      core::plan_data_parallel(model, v100_abci(), options);
  const auto violations = check_trace_invariants(result.plan, result.trace);
  for (const auto& v : violations) ADD_FAILURE() << v;
}

// ---- Distributed tier-tagged replay (DESIGN.md §9) ----

core::DistributedResult tiered_distributed_result(int iterations = 3) {
  const graph::Model model =
      graph::make_transformer(graph::megatron_config(0), 4);
  core::DistributedOptions options;
  options.num_gpus = 32;
  options.iterations = iterations;
  options.planner.anneal_iterations = 0;
  return core::plan_data_parallel(model, v100_abci_nvme(), options);
}

TEST(TraceCheck, DistributedTieredTraceReplaysBoundedHostLedger) {
  // Multi-iteration pipeline on a bounded-host device: gradient-out /
  // CPU-update / weight-refresh traffic must replay cleanly against the
  // bounded per-tier ledger (no phantom overflow from the broken
  // swap-out/swap-in pairing the old carve-out worked around).
  const auto result = tiered_distributed_result();
  ASSERT_TRUE(result.plan.hierarchy.has_value());
  ASSERT_FALSE(result.plan.hierarchy->spec(tier::Tier::kHost).unbounded())
      << "host tier must be bounded — the unbounded carve-out is gone";
  EXPECT_GT(result.plan.host_baseline_resident, 0);
  const auto violations = check_trace_invariants(result.plan, result.trace);
  for (const auto& v : violations) ADD_FAILURE() << v;
}

TEST(TraceCheck, DetectsHostTierOverflowWhenHierarchyShrinks) {
  // The same trace against a host tier too small for the pinned shards
  // plus in-flight gradients must be flagged.
  auto result = tiered_distributed_result();
  ASSERT_TRUE(result.plan.hierarchy.has_value());
  std::vector<tier::TierSpec> tiers = result.plan.hierarchy->tiers();
  for (auto& t : tiers)
    if (t.tier == tier::Tier::kHost)
      t.capacity = result.plan.host_baseline_resident;  // no room for grads
  result.plan.hierarchy = tier::StorageHierarchy(std::move(tiers));
  const auto violations = check_trace_invariants(result.plan, result.trace);
  bool found = false;
  for (const auto& v : violations)
    found |= v.find("'host' exceeds capacity") != std::string::npos;
  EXPECT_TRUE(found) << "shrunken host tier not flagged";
}

TEST(TraceCheck, DetectsGradientNeverConsumedByAnUpdate) {
  // A hand-built trace with a gradient-out but no update leaks gradient
  // residency — the pairing violation the class-aware replay exists to
  // catch.
  Plan plan;
  plan.strategy = "leaky";
  plan.blocks = {{0, 1}};
  BlockCost cost;
  cost.act_bytes = 256;
  cost.grad_bytes = 512;
  plan.costs = {cost};
  plan.capacity = 4096;
  plan.hierarchy = tier::test_hierarchy();

  Op gout;
  gout.kind = OpKind::kSwapOut;
  gout.block = 0;
  gout.residency = tier::Residency::kGradient;
  gout.bytes = 512;
  plan.ops = {gout};

  ExecutionTrace trace;
  OpRecord rec;
  rec.op_index = 0;
  rec.kind = OpKind::kSwapOut;
  rec.block = 0;
  rec.start = 0.0;
  rec.end = 1.0;
  trace.records = {rec};

  const auto violations = check_trace_invariants(plan, trace);
  bool found = false;
  for (const auto& v : violations)
    found |= v.find("gradient bytes never consumed") != std::string::npos;
  EXPECT_TRUE(found) << "gradient leak not flagged";
}

TEST(TraceCheck, WeightShardTrafficDoesNotChargeTheLedger) {
  // Weight-shard swap-ins read the pinned host master copy: a trace full
  // of them must not be misread as activation traffic (which would drive
  // the replayed level negative or overflow a tiny host tier).
  Plan plan;
  plan.strategy = "shard-reads";
  plan.blocks = {{0, 1}};
  BlockCost cost;
  cost.act_bytes = 256;
  cost.param_bytes = 700;
  plan.costs = {cost};
  plan.capacity = 4096;
  plan.host_baseline_resident = 700;  // pinned master shard
  // Host tier of 1000 B: the pinned 700 B fit, but double-charging the
  // 700 B swap-in on top would overflow.
  tier::TierSpec host;
  host.tier = tier::Tier::kHost;
  host.capacity = 1000;
  host.read_bw = host.write_bw = 1.0;
  tier::TierSpec nvme;
  nvme.tier = tier::Tier::kNvme;
  nvme.capacity = 10000;
  nvme.read_bw = nvme.write_bw = 1.0;
  plan.hierarchy = tier::three_tier(4096, host, nvme);

  Op win;
  win.kind = OpKind::kSwapIn;
  win.block = 0;
  win.residency = tier::Residency::kWeightShard;
  win.bytes = 700;
  win.alloc = 700;
  Op wout;
  wout.kind = OpKind::kSwapOut;
  wout.block = 0;
  wout.residency = tier::Residency::kWeightShard;
  wout.bytes = 700;
  plan.ops = {win, wout};

  ExecutionTrace trace;
  OpRecord r0;
  r0.op_index = 0;
  r0.kind = OpKind::kSwapIn;
  r0.start = 0.0;
  r0.end = 1.0;
  OpRecord r1;
  r1.op_index = 1;
  r1.kind = OpKind::kSwapOut;
  r1.start = 1.0;
  r1.end = 2.0;
  trace.records = {r0, r1};

  const auto violations = check_trace_invariants(plan, trace);
  for (const auto& v : violations) ADD_FAILURE() << v;
}

}  // namespace
}  // namespace karma::sim
