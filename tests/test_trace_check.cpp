// The independent trace-invariant checker, cross-checking the engine on
// planner output across models and strategies (a second implementation of
// the replay semantics; disagreement = bug in one of them).
#include "src/sim/trace_check.h"

#include <gtest/gtest.h>

#include "src/baselines/strategies.h"
#include "src/core/distributed.h"
#include "src/graph/model_zoo.h"

namespace karma::sim {
namespace {

TEST(TraceCheck, CleanTracePasses) {
  const graph::Model model = graph::make_vgg16(64);
  const auto result = baselines::plan_karma_recompute(model, v100_abci());
  ASSERT_TRUE(result);
  const auto violations =
      check_trace_invariants(result->plan, result->trace);
  for (const auto& v : violations) ADD_FAILURE() << v;
}

TEST(TraceCheck, DetectsTamperedOverlap) {
  const graph::Model model = graph::make_vgg16(64);
  const auto result = baselines::plan_karma(model, v100_abci());
  ASSERT_TRUE(result);
  ExecutionTrace tampered = result->trace;
  // Pull the second compute op's start before the first one's end.
  int first = -1;
  for (std::size_t i = 0; i < tampered.records.size(); ++i) {
    if (stream_of(tampered.records[i].kind) != Stream::kCompute) continue;
    if (first < 0) {
      first = static_cast<int>(i);
    } else {
      tampered.records[i].start =
          tampered.records[static_cast<std::size_t>(first)].start;
      break;
    }
  }
  const auto violations = check_trace_invariants(result->plan, tampered);
  EXPECT_FALSE(violations.empty());
}

TEST(TraceCheck, DetectsMemoryOverflow) {
  const graph::Model model = graph::make_vgg16(64);
  const auto result = baselines::plan_karma(model, v100_abci());
  ASSERT_TRUE(result);
  Plan squeezed = result->plan;
  squeezed.capacity /= 64;  // trace was produced for the real capacity
  const auto violations = check_trace_invariants(squeezed, result->trace);
  bool has_memory_violation = false;
  for (const auto& v : violations)
    has_memory_violation |= v.find("memory exceeds") != std::string::npos;
  EXPECT_TRUE(has_memory_violation);
}

class StrategyTraces : public ::testing::TestWithParam<int> {};

TEST_P(StrategyTraces, AllStrategiesProduceConsistentTraces) {
  const auto& entry =
      baselines::all_strategies()[static_cast<std::size_t>(GetParam())];
  for (const auto& model :
       {graph::make_resnet50(384), graph::make_resnet200(12),
        graph::make_unet(24)}) {
    const auto result = entry.plan(model, v100_abci());
    if (!result) continue;
    const auto violations =
        check_trace_invariants(result->plan, result->trace);
    for (const auto& v : violations)
      ADD_FAILURE() << entry.name << " on " << model.name() << ": " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(All, StrategyTraces, ::testing::Range(0, 9));

TEST(TraceCheck, DistributedPipelineTraceConsistent) {
  const graph::Model model =
      graph::make_transformer(graph::megatron_config(0), 4);
  core::DistributedOptions options;
  options.num_gpus = 32;
  options.iterations = 2;
  options.planner.anneal_iterations = 0;
  const auto result =
      core::plan_data_parallel(model, v100_abci(), options);
  const auto violations = check_trace_invariants(result.plan, result.trace);
  for (const auto& v : violations) ADD_FAILURE() << v;
}

}  // namespace
}  // namespace karma::sim
