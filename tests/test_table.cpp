#include "src/util/table.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace karma {
namespace {

TEST(Table, BasicAscii) {
  Table t({"model", "batch", "perf"});
  t.add_row({"ResNet-50", "512", "231.4"});
  t.begin_row();
  t.add_cell("VGG16");
  t.add_cell(std::int64_t{64});
  t.add_cell(88.25, 2);
  const std::string out = t.to_ascii();
  EXPECT_NE(out.find("ResNet-50"), std::string::npos);
  EXPECT_NE(out.find("88.25"), std::string::npos);
  EXPECT_NE(out.find("| model"), std::string::npos);
}

TEST(Table, CsvQuoting) {
  Table t({"a", "b"});
  t.add_row({"plain", "has,comma"});
  t.add_row({"has\"quote", "x"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
  EXPECT_EQ(csv.find("\"plain\""), std::string::npos);
}

TEST(Table, RowWidthEnforced) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
  t.begin_row();
  t.add_cell("1");
  t.add_cell("2");
  EXPECT_THROW(t.add_cell("3"), std::logic_error);
}

TEST(Table, EmptyHeaderRejected) {
  EXPECT_THROW(Table(std::vector<std::string>{}), std::invalid_argument);
}

TEST(Table, CellBeforeRowRejected) {
  Table t({"a"});
  EXPECT_THROW(t.add_cell("x"), std::logic_error);
}

TEST(Table, CountersAndAccessors) {
  Table t({"x", "y"});
  EXPECT_EQ(t.num_cols(), 2u);
  EXPECT_EQ(t.num_rows(), 0u);
  t.add_row({"1", "2"});
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.rows()[0][1], "2");
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(1.0, 0), "1");
}

}  // namespace
}  // namespace karma
