// Verifies the Sec. III-C per-layer operation formulas, including
// parameterized sweeps over batch size (costs must scale linearly with
// batch for every per-sample layer).
#include "src/graph/cost_model.h"

#include <gtest/gtest.h>

#include "src/graph/model_zoo.h"

namespace karma::graph {
namespace {

Layer conv_layer(std::int64_t n, std::int64_t cin, std::int64_t cout,
                 std::int64_t hw, std::int64_t k) {
  Layer l;
  l.kind = LayerKind::kConv2d;
  l.kernel = k;
  l.in_channels = cin;
  l.out_channels = cout;
  l.in_shape = TensorShape::nchw(n, cin, hw, hw);
  l.out_shape = TensorShape::nchw(n, cout, hw, hw);
  return l;
}

TEST(CostModel, ConvFormula) {
  // |Y| * K * K * C_i multiply-adds (x2 ops), Sec. III-C.1.
  const Layer l = conv_layer(2, 3, 64, 16, 7);
  const double expected = 2.0 * (2 * 64 * 16 * 16) * 7 * 7 * 3;
  EXPECT_DOUBLE_EQ(forward_flops(l), expected);
}

TEST(CostModel, ReluIsOneOpPerElement) {
  Layer l;
  l.kind = LayerKind::kReLU;
  l.in_shape = l.out_shape = TensorShape::nchw(4, 8, 10, 10);
  EXPECT_DOUBLE_EQ(forward_flops(l), 4 * 8 * 10 * 10);
}

TEST(CostModel, PoolingMaxVsAvg) {
  Layer l;
  l.kind = LayerKind::kMaxPool;
  l.kernel = 2;
  l.in_shape = TensorShape::nchw(1, 8, 16, 16);
  l.out_shape = TensorShape::nchw(1, 8, 8, 8);
  const double max_ops = forward_flops(l);
  l.kind = LayerKind::kAvgPool;
  EXPECT_DOUBLE_EQ(forward_flops(l), 2.0 * max_ops);  // c-multiplier
  EXPECT_DOUBLE_EQ(max_ops, (8 * 8 * 8) * 2 * 2);
}

TEST(CostModel, BatchNormFormula) {
  // 3*|B| + 4*|X| + 2*|Y| (Sec. III-C.4).
  Layer l;
  l.kind = LayerKind::kBatchNorm;
  l.in_shape = l.out_shape = TensorShape::nchw(8, 4, 2, 2);
  const double x = 8 * 4 * 2 * 2;
  EXPECT_DOUBLE_EQ(forward_flops(l), 3.0 * 8 + 4.0 * x + 2.0 * x);
}

TEST(CostModel, LstmFormula) {
  Layer l;
  l.kind = LayerKind::kLSTM;
  l.in_shape = l.out_shape = TensorShape::nsh(2, 10, 32);
  EXPECT_DOUBLE_EQ(forward_flops(l), 20.0 * 2 * 10 * 32);  // Sec. III-C.5
}

TEST(CostModel, AttentionPaperFormula) {
  // 4*dk^3 + dk^2 + 2*dk verbatim (Sec. III-C.6).
  EXPECT_DOUBLE_EQ(attention_paper_ops(8), 4.0 * 512 + 64 + 16);
}

TEST(CostModel, AttentionCoreScalesQuadraticallyInSequence) {
  Layer l;
  l.kind = LayerKind::kSelfAttention;
  l.heads = 4;
  l.in_shape = l.out_shape = TensorShape::nsh(1, 128, 64);
  const double short_seq = forward_flops(l);
  l.in_shape = l.out_shape = TensorShape::nsh(1, 256, 64);
  EXPECT_DOUBLE_EQ(forward_flops(l), 4.0 * short_seq);
}

TEST(CostModel, FullyConnectedPerToken) {
  Layer l;
  l.kind = LayerKind::kFullyConnected;
  l.in_shape = TensorShape::nsh(2, 16, 32);
  l.out_shape = TensorShape::nsh(2, 16, 64);
  l.weight_elems = 32 * 64 + 64;
  // 2 * in * out per token, 2*16 tokens.
  EXPECT_DOUBLE_EQ(forward_flops(l), 2.0 * 32 * 64 * (2 * 16));
}

TEST(CostModel, FullyConnectedCnnHead) {
  Layer l;
  l.kind = LayerKind::kFullyConnected;
  l.in_shape = TensorShape::nchw(4, 512, 1, 1);
  l.out_shape = TensorShape::nchw(4, 1000, 1, 1);
  EXPECT_DOUBLE_EQ(forward_flops(l), 2.0 * 512 * 1000 * 4);
}

TEST(CostModel, WeightTiedHeadStillCharged) {
  // The LM head has weight_elems == 0 (tied) but must cost its GEMM.
  Layer l;
  l.kind = LayerKind::kFullyConnected;
  l.weight_elems = 0;
  l.in_shape = TensorShape::nsh(1, 8, 16);
  l.out_shape = TensorShape::nsh(1, 8, 100);
  EXPECT_GT(forward_flops(l), 0.0);
}

TEST(CostModel, SoftmaxFormula) {
  Layer l;
  l.kind = LayerKind::kSoftmax;
  l.in_shape = l.out_shape = TensorShape::nsh(2, 4, 10);
  EXPECT_DOUBLE_EQ(forward_flops(l), 2.0 * 2 * 4 * 10);  // 2*|X|
}

TEST(CostModel, InputAndReshapeAreFree) {
  Layer l;
  l.kind = LayerKind::kInput;
  l.in_shape = l.out_shape = TensorShape::nchw(1, 3, 8, 8);
  EXPECT_DOUBLE_EQ(forward_flops(l), 0.0);
  l.kind = LayerKind::kReshape;
  EXPECT_DOUBLE_EQ(forward_flops(l), 0.0);
  EXPECT_DOUBLE_EQ(backward_flops(l), 0.0);
}

TEST(CostModel, BackwardIsTwiceForwardForWeightedLayers) {
  const Layer conv = conv_layer(1, 16, 16, 8, 3);
  EXPECT_DOUBLE_EQ(backward_flops(conv), 2.0 * forward_flops(conv));
  Layer relu;
  relu.kind = LayerKind::kReLU;
  relu.in_shape = relu.out_shape = TensorShape::nchw(1, 4, 4, 4);
  EXPECT_DOUBLE_EQ(backward_flops(relu), forward_flops(relu));
}

TEST(CostModel, RangeSumsMatchPerLayer) {
  const Model m = make_vgg16(2);
  double fwd = 0.0, total = 0.0;
  for (const auto& l : m.layers()) {
    fwd += forward_flops(l);
    total += forward_flops(l) + backward_flops(l);
  }
  const int n = static_cast<int>(m.num_layers());
  EXPECT_DOUBLE_EQ(range_forward_flops(m, 0, n), fwd);
  EXPECT_DOUBLE_EQ(range_total_flops(m, 0, n), total);
  EXPECT_GT(total, fwd);
}

// ---- Property sweep: linear batch scaling (TEST_P) ----

class BatchScaling : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(BatchScaling, ForwardFlopsScaleLinearlyWithBatch) {
  const std::int64_t batch = GetParam();
  const Model base = make_resnet50(1);
  const Model scaled = make_resnet50(batch);
  const int n = static_cast<int>(base.num_layers());
  const double f1 = range_forward_flops(base, 0, n);
  const double fb = range_forward_flops(scaled, 0, n);
  EXPECT_NEAR(fb / f1, static_cast<double>(batch), 0.1 * batch + 0.5);
}

INSTANTIATE_TEST_SUITE_P(Batches, BatchScaling,
                         ::testing::Values(2, 4, 8, 16, 32, 64));

TEST(CostModel, Vgg16HeavierThanResnet50PerSample) {
  // Well-known: VGG16 ~15.5 GFLOP/sample vs ResNet-50 ~4.1 GFLOP/sample
  // (multiply-add counted as 2 ops) — the model zoo should preserve the
  // ordering and rough ratio.
  const Model vgg = make_vgg16(1);
  const Model rn = make_resnet50(1);
  const double v = range_forward_flops(vgg, 0, static_cast<int>(vgg.num_layers()));
  const double r = range_forward_flops(rn, 0, static_cast<int>(rn.num_layers()));
  EXPECT_GT(v, 2.0 * r);
  EXPECT_LT(v, 8.0 * r);
}

}  // namespace
}  // namespace karma::graph
