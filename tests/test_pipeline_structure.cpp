// Structural invariants of the 5-stage distributed pipeline's emitted op
// sequence (Fig. 3) — the ordering guarantees the paper's prose promises,
// checked on the Plan IR itself rather than end-to-end timings.
#include <gtest/gtest.h>

#include <map>

#include "src/core/distributed.h"
#include "src/graph/model_zoo.h"

namespace karma::core {
namespace {

DistributedResult weight_swapped_plan() {
  const graph::Model model =
      graph::make_transformer(graph::megatron_config(2), 4);  // 2.5B: must swap
  DistributedOptions options;
  options.num_gpus = 64;
  options.iterations = 2;
  options.planner.anneal_iterations = 0;
  return plan_data_parallel(model, sim::v100_abci(), options);
}

DistributedResult weight_resident_plan() {
  DistributedOptions options;
  options.num_gpus = 16;
  options.iterations = 2;
  options.planner.anneal_iterations = 0;
  return plan_data_parallel(graph::make_resnet50(128), sim::v100_abci(),
                            options);
}

/// Index of the first op matching (kind, block, iteration), or -1.
int find_op(const sim::Plan& plan, sim::OpKind kind, int block, int iter) {
  for (std::size_t i = 0; i < plan.ops.size(); ++i) {
    const sim::Op& op = plan.ops[i];
    if (op.kind == kind && op.block == block && op.iteration == iter)
      return static_cast<int>(i);
  }
  return -1;
}

TEST(PipelineStructure, WeightSwapInPrecedesEveryForward) {
  const auto r = weight_swapped_plan();
  for (int it = 0; it < 2; ++it) {
    for (int b = 0; b < r.plan.num_blocks(); ++b) {
      const int fwd = find_op(r.plan, sim::OpKind::kForward, b, it);
      const int win = find_op(r.plan, sim::OpKind::kSwapIn, b, it);
      ASSERT_GE(fwd, 0);
      ASSERT_GE(win, 0) << "no weight swap-in for block " << b;
      EXPECT_LT(win, fwd) << "block " << b << " iter " << it;
    }
  }
}

TEST(PipelineStructure, GradientSwapOutFollowsBackward) {
  // Stage 3: every backward is followed by a gradient swap-out of the
  // same block, before any later backward.
  const auto r = weight_swapped_plan();
  for (int b = 0; b < r.plan.num_blocks(); ++b) {
    const int bwd = find_op(r.plan, sim::OpKind::kBackward, b, 0);
    ASSERT_GE(bwd, 0);
    // Find the first swap-out of b after its backward.
    int gout = -1;
    for (std::size_t i = static_cast<std::size_t>(bwd) + 1;
         i < r.plan.ops.size(); ++i) {
      const sim::Op& op = r.plan.ops[i];
      if (op.iteration != 0) break;
      if (op.kind == sim::OpKind::kSwapOut && op.block == b) {
        gout = static_cast<int>(i);
        break;
      }
      if (op.kind == sim::OpKind::kBackward) break;  // next backward first?
    }
    EXPECT_GE(gout, 0) << "no gradient swap-out right after B(" << b << ")";
  }
}

TEST(PipelineStructure, EveryBlockUpdatedOncePerIteration) {
  for (const auto& r : {weight_swapped_plan(), weight_resident_plan()}) {
    std::map<std::pair<int, int>, int> updates;  // (iter, block) -> count
    for (const auto& op : r.plan.ops)
      if (op.kind == sim::OpKind::kCpuUpdate)
        ++updates[{op.iteration, op.block}];
    for (int it = 0; it < 2; ++it)
      for (int b = 0; b < r.plan.num_blocks(); ++b)
        EXPECT_EQ((updates[{it, b}]), 1)
            << "iter " << it << " block " << b;
  }
}

TEST(PipelineStructure, UpdatesGatedOnTheirPhaseAllReduce) {
  const auto r = weight_swapped_plan();
  for (std::size_t i = 0; i < r.plan.ops.size(); ++i) {
    const sim::Op& op = r.plan.ops[i];
    if (op.kind != sim::OpKind::kCpuUpdate) continue;
    ASSERT_GE(op.after_op, 0) << "update without AllReduce gate";
    EXPECT_EQ(r.plan.ops[static_cast<std::size_t>(op.after_op)].kind,
              sim::OpKind::kAllReduce);
  }
}

TEST(PipelineStructure, SecondIterationForwardWaitsForUpdatedWeights) {
  // Fig. 3's point: iteration 2's swap-ins carry the *updated* weights;
  // the per-block chain therefore runs U(b) -> Sin_w(b) -> F(b).
  const auto r = weight_resident_plan();
  for (int b = 0; b < r.plan.num_blocks(); ++b) {
    const int up = find_op(r.plan, sim::OpKind::kCpuUpdate, b, 0);
    const int refresh = find_op(r.plan, sim::OpKind::kSwapIn, b, 1);
    const int fwd2 = find_op(r.plan, sim::OpKind::kForward, b, 1);
    ASSERT_GE(up, 0);
    ASSERT_GE(refresh, 0);
    ASSERT_GE(fwd2, 0);
    EXPECT_LT(up, refresh);
    EXPECT_LT(refresh, fwd2);
    // And the engine honored the chain in time.
    EXPECT_GE(r.trace.records[static_cast<std::size_t>(refresh)].start,
              r.trace.records[static_cast<std::size_t>(up)].end - 1e-9);
  }
}

TEST(PipelineStructure, PhasedExchangeCoversAllGradients) {
  const auto r = weight_swapped_plan();
  std::vector<int> covered(r.plan.blocks.size(), 0);
  for (const auto& phase : r.exchange.phases)
    for (int b : phase.blocks) ++covered[static_cast<std::size_t>(b)];
  for (std::size_t b = 0; b < covered.size(); ++b)
    EXPECT_EQ(covered[b], 1) << "block " << b;
}

TEST(PipelineStructure, WeightsDroppedAfterForwardInSwapRegime) {
  // The forward-phase weight drop (free, zero-duration swap-out) must
  // exist per block so parameters never accumulate on the device.
  const auto r = weight_swapped_plan();
  ASSERT_FALSE(r.weights_resident);
  for (int b = 0; b < r.plan.num_blocks(); ++b) {
    const int fwd = find_op(r.plan, sim::OpKind::kForward, b, 0);
    bool dropped = false;
    for (std::size_t i = static_cast<std::size_t>(fwd) + 1;
         i < r.plan.ops.size(); ++i) {
      const sim::Op& op = r.plan.ops[i];
      if (op.kind == sim::OpKind::kSwapOut && op.block == b &&
          op.bytes == 0 && op.free > 0) {
        dropped = true;
        break;
      }
      if (op.kind == sim::OpKind::kForward && op.block == b + 1) break;
    }
    EXPECT_TRUE(dropped) << "block " << b;
  }
}

}  // namespace
}  // namespace karma::core
