#include "src/util/units.h"

#include <gtest/gtest.h>

namespace karma {
namespace {

TEST(Units, ByteLiterals) {
  EXPECT_EQ(1_KiB, 1024);
  EXPECT_EQ(1_MiB, 1024 * 1024);
  EXPECT_EQ(16_GiB, std::int64_t{16} * 1024 * 1024 * 1024);
  EXPECT_EQ(3_B, 3);
}

TEST(Units, RateLiterals) {
  EXPECT_DOUBLE_EQ(16_GBps, 16e9);
  EXPECT_DOUBLE_EQ(1_GFLOPS, 1e9);
  EXPECT_DOUBLE_EQ(14.7_TFLOPS, 14.7e12);
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(1536), "1.50 KiB");
  EXPECT_EQ(format_bytes(16_GiB), "16.00 GiB");
}

TEST(Units, FormatSeconds) {
  EXPECT_EQ(format_seconds(5e-9), "5.0 ns");
  EXPECT_EQ(format_seconds(5e-6), "5.0 us");
  EXPECT_EQ(format_seconds(0.005), "5.0 ms");
  EXPECT_EQ(format_seconds(5.0), "5.00 s");
  EXPECT_EQ(format_seconds(300.0), "5.0 min");
  EXPECT_EQ(format_seconds(7200.0), "2.00 h");
}

TEST(Units, FormatFlops) {
  EXPECT_EQ(format_flops(2e9), "2.00 GFLOP");
  EXPECT_EQ(format_flops(3.5e12), "3.50 TFLOP");
}

TEST(Units, FormatBytesNegativeDelta) {
  // Deltas are representable; formatting should not crash on them.
  EXPECT_EQ(format_bytes(-1536), "-1.50 KiB");
}

}  // namespace
}  // namespace karma
