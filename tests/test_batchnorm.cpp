// BatchNorm2d on the numeric twin: gradient correctness through batch
// statistics, and OOC recompute equivalence (the statistics must
// rematerialize identically — exactly the class of state that makes
// recompute subtle in real frameworks).
#include <gtest/gtest.h>

#include <cmath>

#include "src/train/ooc_exec.h"
#include "src/train/synthetic.h"

namespace karma::train {
namespace {

TEST(BatchNorm, OutputIsNormalized) {
  Rng rng(1);
  BatchNorm2d bn(3);
  const Tensor x = Tensor::uniform({4, 3, 5, 5}, rng, 2.0f);
  const Tensor y = bn.forward(x);
  // Per-channel mean ~0, variance ~1 (gamma=1, beta=0).
  const std::size_t m = 4 * 5 * 5;
  for (std::size_t ch = 0; ch < 3; ++ch) {
    double mean = 0.0, var = 0.0;
    for (std::size_t s = 0; s < 4; ++s)
      for (std::size_t i = 0; i < 25; ++i)
        mean += y.data()[(s * 3 + ch) * 25 + i];
    mean /= m;
    for (std::size_t s = 0; s < 4; ++s)
      for (std::size_t i = 0; i < 25; ++i) {
        const double d = y.data()[(s * 3 + ch) * 25 + i] - mean;
        var += d * d;
      }
    var /= m;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNorm, InputGradientMatchesFiniteDifference) {
  Rng rng(2);
  BatchNorm2d bn(2);
  const Tensor x0 = Tensor::uniform({3, 2, 4, 4}, rng, 1.0f);
  Tensor y0 = bn.forward(x0);
  const Tensor w = Tensor::uniform(y0.shape(), rng, 1.0f);

  (void)bn.forward(x0);
  const Tensor gx = bn.backward(w);

  const auto loss = [&](const Tensor& x) {
    Tensor y = bn.forward(x);
    double acc = 0.0;
    for (std::size_t i = 0; i < y.numel(); ++i)
      acc += static_cast<double>(y.data()[i]) * w.data()[i];
    return acc;
  };
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < x0.numel(); i += 7) {
    Tensor xp = x0, xm = x0;
    xp.data()[i] += eps;
    xm.data()[i] -= eps;
    const double numeric = (loss(xp) - loss(xm)) / (2.0 * eps);
    EXPECT_NEAR(gx.data()[i], numeric, 5e-2) << "input grad at " << i;
  }
}

TEST(BatchNorm, GammaBetaGradients) {
  Rng rng(3);
  BatchNorm2d bn(2);
  const Tensor x = Tensor::uniform({2, 2, 3, 3}, rng, 1.0f);
  Tensor y = bn.forward(x);
  const Tensor w = Tensor::uniform(y.shape(), rng, 1.0f);
  for (Tensor* g : bn.grads()) g->fill(0.0f);
  (void)bn.forward(x);
  (void)bn.backward(w);

  auto params = bn.params();
  auto grads = bn.grads();
  const auto loss = [&]() {
    Tensor out = bn.forward(x);
    double acc = 0.0;
    for (std::size_t i = 0; i < out.numel(); ++i)
      acc += static_cast<double>(out.data()[i]) * w.data()[i];
    return acc;
  };
  const float eps = 1e-3f;
  for (std::size_t p = 0; p < params.size(); ++p) {
    for (std::size_t i = 0; i < params[p]->numel(); ++i) {
      const float original = params[p]->data()[i];
      params[p]->data()[i] = original + eps;
      const double lp = loss();
      params[p]->data()[i] = original - eps;
      const double lm = loss();
      params[p]->data()[i] = original;
      EXPECT_NEAR(grads[p]->data()[i], (lp - lm) / (2.0 * eps), 5e-2)
          << "param " << p << " elem " << i;
    }
  }
}

Sequential bn_cnn(Rng& rng) {
  Sequential net;
  net.add(std::make_unique<Conv2d>(1, 4, 3, rng));
  net.add(std::make_unique<BatchNorm2d>(4));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<Conv2d>(4, 8, 3, rng));
  net.add(std::make_unique<BatchNorm2d>(8));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<Flatten>());
  net.add(std::make_unique<Linear>(8 * 8 * 8, 3, rng));
  return net;
}

TEST(BatchNorm, OocRecomputeRematerializesStatisticsExactly) {
  Rng data_rng(4);
  const SyntheticBatch data = make_synthetic_batch(6, {1, 8, 8}, 3, data_rng);

  Rng rng_a(777);
  Sequential ref = bn_cnn(rng_a);
  ref.zero_grads();
  SoftmaxCrossEntropy loss;
  loss.forward(ref.forward(data.inputs), data.labels);
  ref.backward(loss.grad_logits());

  Rng rng_b(777);
  Sequential ooc_net = bn_cnn(rng_b);
  OocExecutor exec(
      &ooc_net,
      uniform_ooc_blocks(ooc_net.size(), 3, core::BlockPolicy::kRecompute),
      Bytes{1} << 30);
  exec.compute_gradients(data.inputs, data.labels);

  const auto a = ref.all_grads();
  const auto b = ooc_net.all_grads();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_TRUE(bitwise_equal(*a[i], *b[i])) << "grad " << i;
}

TEST(BatchNorm, OocSwapEquivalenceWithBn) {
  Rng data_rng(5);
  const SyntheticBatch data = make_synthetic_batch(4, {1, 8, 8}, 3, data_rng);
  Rng rng_a(9);
  Sequential ref = bn_cnn(rng_a);
  Rng rng_b(9);
  Sequential ooc_net = bn_cnn(rng_b);

  SGD opt_a(0.05f), opt_b(0.05f);
  SoftmaxCrossEntropy loss;
  OocExecutor exec(&ooc_net,
                   uniform_ooc_blocks(ooc_net.size(), 2,
                                      core::BlockPolicy::kSwap),
                   Bytes{1} << 30);
  for (int step = 0; step < 3; ++step) {
    ref.zero_grads();
    loss.forward(ref.forward(data.inputs), data.labels);
    ref.backward(loss.grad_logits());
    opt_a.step(ref.all_params(), ref.all_grads());
    exec.train_step(data.inputs, data.labels, opt_b);
  }
  const auto a = ref.all_params();
  const auto b = ooc_net.all_params();
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_TRUE(bitwise_equal(*a[i], *b[i])) << "param " << i;
}

TEST(BatchNorm, RejectsBadShapes) {
  BatchNorm2d bn(4);
  Tensor wrong({2, 3, 4, 4});  // 3 channels into a 4-channel BN
  EXPECT_THROW(bn.forward(wrong), std::invalid_argument);
  EXPECT_THROW(bn.backward(wrong), std::logic_error);  // no forward yet
}

}  // namespace
}  // namespace karma::train
