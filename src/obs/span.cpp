#include "src/obs/span.h"

#include <atomic>
#include <chrono>

#include "src/util/json.h"

namespace karma::obs {
namespace {

std::atomic<bool> g_enabled{false};

// Bounded MPMC ring, Vyukov sequence-number style: each cell carries the
// sequence it expects next, producers CAS the enqueue cursor, consumers
// the dequeue cursor; a full ring rejects the push (dropped counter)
// instead of blocking. All cross-thread handoff is through the per-cell
// seq with release/acquire, so TSan sees a clean happens-before on the
// payload copy.
constexpr std::size_t kRingCapacity = 1 << 16;  // events; ~6 MiB, lazy

struct Cell {
  std::atomic<std::size_t> seq;
  TraceEvent ev;
};

struct Ring {
  std::vector<Cell> cells;
  alignas(64) std::atomic<std::size_t> enqueue_pos{0};
  alignas(64) std::atomic<std::size_t> dequeue_pos{0};
  std::atomic<std::uint64_t> dropped{0};

  Ring() : cells(kRingCapacity) {
    for (std::size_t i = 0; i < kRingCapacity; ++i)
      cells[i].seq.store(i, std::memory_order_relaxed);
  }

  bool push(const TraceEvent& ev) {
    std::size_t pos = enqueue_pos.load(std::memory_order_relaxed);
    Cell* cell;
    for (;;) {
      cell = &cells[pos & (kRingCapacity - 1)];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const std::intptr_t dif = static_cast<std::intptr_t>(seq) -
                                static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        if (enqueue_pos.compare_exchange_weak(pos, pos + 1,
                                              std::memory_order_relaxed))
          break;
      } else if (dif < 0) {
        dropped.fetch_add(1, std::memory_order_relaxed);
        return false;
      } else {
        pos = enqueue_pos.load(std::memory_order_relaxed);
      }
    }
    cell->ev = ev;
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  bool pop(TraceEvent* ev) {
    std::size_t pos = dequeue_pos.load(std::memory_order_relaxed);
    Cell* cell;
    for (;;) {
      cell = &cells[pos & (kRingCapacity - 1)];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const std::intptr_t dif = static_cast<std::intptr_t>(seq) -
                                static_cast<std::intptr_t>(pos + 1);
      if (dif == 0) {
        if (dequeue_pos.compare_exchange_weak(pos, pos + 1,
                                              std::memory_order_relaxed))
          break;
      } else if (dif < 0) {
        return false;  // empty
      } else {
        pos = dequeue_pos.load(std::memory_order_relaxed);
      }
    }
    *ev = cell->ev;
    cell->seq.store(pos + kRingCapacity, std::memory_order_release);
    return true;
  }
};

Ring& ring() {
  static Ring r;  // lazily constructed on first trace activity
  return r;
}

void push_event(const TraceEvent& ev) { ring().push(ev); }

}  // namespace

bool tracing_enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_tracing_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t trace_now_us() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

std::uint32_t trace_tid() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void emit_instant(const char* name, const char* cat) {
  if (!tracing_enabled()) return;
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.phase = 'i';
  ev.tid = trace_tid();
  ev.ts_us = trace_now_us();
  push_event(ev);
}

void emit_instant(const char* name, const char* cat, const char* arg_name,
                  std::int64_t arg_value) {
  if (!tracing_enabled()) return;
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.phase = 'i';
  ev.tid = trace_tid();
  ev.ts_us = trace_now_us();
  ev.arg_name[0] = arg_name;
  ev.arg_value[0] = arg_value;
  push_event(ev);
}

void emit_complete(const char* name, const char* cat, std::uint64_t start_us,
                   std::uint64_t end_us) {
  emit_complete(name, cat, start_us, end_us, nullptr, 0);
}

void emit_complete(const char* name, const char* cat, std::uint64_t start_us,
                   std::uint64_t end_us, const char* arg_name,
                   std::int64_t arg_value) {
  if (!tracing_enabled()) return;
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.phase = 'X';
  ev.tid = trace_tid();
  ev.ts_us = start_us;
  ev.dur_us = end_us > start_us ? end_us - start_us : 0;
  ev.arg_name[0] = arg_name;
  ev.arg_value[0] = arg_value;
  push_event(ev);
}

Span::Span(const char* name, const char* cat)
    : active_(tracing_enabled()) {
  if (!active_) return;
  ev_.name = name;
  ev_.cat = cat;
  ev_.tid = trace_tid();
  ev_.ts_us = trace_now_us();
}

void Span::arg(const char* name, std::int64_t value) {
  if (!active_ || nargs_ >= 2) return;
  ev_.arg_name[nargs_] = name;
  ev_.arg_value[nargs_] = value;
  ++nargs_;
}

void Span::end() {
  if (!active_) return;
  active_ = false;
  const std::uint64_t now = trace_now_us();
  ev_.dur_us = now > ev_.ts_us ? now - ev_.ts_us : 0;
  push_event(ev_);
}

std::size_t drain_trace(std::vector<TraceEvent>* out) {
  std::size_t n = 0;
  TraceEvent ev;
  while (ring().pop(&ev)) {
    out->push_back(ev);
    ++n;
  }
  return n;
}

void discard_trace() {
  TraceEvent ev;
  while (ring().pop(&ev)) {
  }
  ring().dropped.store(0, std::memory_order_relaxed);
}

std::uint64_t dropped_trace_events() {
  return ring().dropped.load(std::memory_order_relaxed);
}

std::string chrome_trace_json(const std::vector<TraceEvent>& events) {
  util::json::Writer w;
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  for (const TraceEvent& ev : events) {
    w.begin_object();
    w.key("name");
    w.value(ev.name != nullptr ? ev.name : "");
    w.key("cat");
    w.value(ev.cat != nullptr ? ev.cat : "karma");
    const char ph[2] = {ev.phase, '\0'};
    w.key("ph");
    w.value(static_cast<const char*>(ph));
    w.key("pid");
    w.value(1);
    w.key("tid");
    w.value(static_cast<std::int64_t>(ev.tid));
    w.key("ts");
    w.value(static_cast<std::int64_t>(ev.ts_us));
    if (ev.phase == 'X') {
      w.key("dur");
      w.value(static_cast<std::int64_t>(ev.dur_us));
    }
    if (ev.phase == 'i') {
      w.key("s");
      w.value("t");  // thread-scoped instant
    }
    if (ev.arg_name[0] != nullptr || ev.arg_name[1] != nullptr) {
      w.key("args");
      w.begin_object();
      for (int i = 0; i < 2; ++i) {
        if (ev.arg_name[i] == nullptr) continue;
        w.key(ev.arg_name[i]);
        w.value(ev.arg_value[i]);
      }
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

}  // namespace karma::obs
