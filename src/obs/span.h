// karma::obs pillar 2 — request-lifecycle tracing (DESIGN.md §15).
//
// Lightweight scoped spans, compiled in everywhere but OFF by default: a
// disabled Span costs one relaxed atomic load. When enabled (daemon
// --trace-dir, or obs::set_tracing_enabled(true)), spans/instants are
// pushed onto a process-wide lock-free bounded MPMC ring (Vyukov-style
// per-cell sequence numbers — TSan-clean, drop-on-full with a dropped
// counter, never a block or an allocation on the hot path) and drained
// by whoever owns the export (the daemon's per-plan trace flush, a test,
// or an embedding application via drain_trace()).
//
// Event identity is by POINTER: name / cat / arg names must be string
// literals (or otherwise outlive the drain). Timestamps are microseconds
// on the steady clock since the first trace call in the process, so all
// threads share one timeline. Export is Chrome trace_event JSON
// (chrome_trace_json) — load in Perfetto or chrome://tracing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace karma::obs {

struct TraceEvent {
  const char* name = nullptr;  ///< static-lifetime string
  const char* cat = nullptr;   ///< static-lifetime string
  char phase = 'X';            ///< 'X' complete, 'i' instant
  std::uint32_t tid = 0;       ///< small per-thread id (first-use order)
  std::uint64_t ts_us = 0;     ///< start, us since process trace epoch
  std::uint64_t dur_us = 0;    ///< 'X' only
  const char* arg_name[2] = {nullptr, nullptr};
  std::int64_t arg_value[2] = {0, 0};
};

/// Process-wide enable flag (relaxed atomic). Off by default.
bool tracing_enabled();
void set_tracing_enabled(bool on);

/// Microseconds on the steady clock since the process trace epoch.
std::uint64_t trace_now_us();

/// The calling thread's stable small trace id (assigned on first use).
std::uint32_t trace_tid();

/// One-shot instant event ('i'), attributed to the calling thread.
void emit_instant(const char* name, const char* cat);
void emit_instant(const char* name, const char* cat, const char* arg_name,
                  std::int64_t arg_value);

/// Complete event with explicit timestamps, attributed to the calling
/// thread — the cross-thread shape (e.g. a queue-wait measured from an
/// enqueue timestamp recorded on another thread, emitted at dequeue).
void emit_complete(const char* name, const char* cat, std::uint64_t start_us,
                   std::uint64_t end_us);
void emit_complete(const char* name, const char* cat, std::uint64_t start_us,
                   std::uint64_t end_us, const char* arg_name,
                   std::int64_t arg_value);

/// RAII scope span: records its start in the constructor, emits one 'X'
/// event on destruction (or at an explicit early end()). Inert and
/// near-free when tracing is disabled at construction time.
class Span {
 public:
  explicit Span(const char* name, const char* cat = "karma");
  ~Span() { end(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a numeric argument (up to 2; later calls are dropped).
  void arg(const char* name, std::int64_t value);

  /// Emits now and deactivates; the destructor becomes a no-op. For
  /// marking a phase boundary mid-scope without an artificial block.
  void end();

 private:
  bool active_;
  int nargs_ = 0;
  TraceEvent ev_;
};

/// Drains every buffered event into `*out` (appending, FIFO); returns
/// the number drained. Safe to call concurrently with emitters.
std::size_t drain_trace(std::vector<TraceEvent>* out);

/// Discards all buffered events and zeroes the dropped counter.
void discard_trace();

/// Events lost to ring overflow since the last discard_trace().
std::uint64_t dropped_trace_events();

/// Renders drained events as a Chrome trace_event JSON document
/// ({"traceEvents":[...]}), loadable in Perfetto / chrome://tracing.
std::string chrome_trace_json(const std::vector<TraceEvent>& events);

}  // namespace karma::obs
