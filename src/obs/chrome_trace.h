// karma::obs pillar 3 — simulated-timeline export (DESIGN.md §15).
//
// Renders an engine ExecutionTrace as a Chrome trace_event JSON document
// (Perfetto / chrome://tracing loadable): one track (tid) per sim Stream,
// every op a complete slice (with its preceding stall, when any, drawn as
// an adjacent "stall" slice so Fig. 6's stall structure is visible at a
// glance), plus per-tier residency counter tracks (device / host / NVMe)
// replayed from the plan's alloc/free/swap semantics. Sim time maps 1 s
// -> 1e6 trace us; output is deterministic (util::json::Writer, stable
// event order), which the golden-fixture test relies on.
#pragma once

#include <string>

#include "src/sim/plan.h"
#include "src/sim/trace.h"

namespace karma::obs {

/// `trace` must have been produced by replaying `plan` (records index
/// into plan.ops); throws std::invalid_argument on an op_index out of
/// range.
std::string export_execution_trace(const sim::ExecutionTrace& trace,
                                   const sim::Plan& plan);

}  // namespace karma::obs
