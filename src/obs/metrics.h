// karma::obs pillar 1 — the metrics registry (DESIGN.md §15).
//
// Named counters, gauges, and fixed-bucket latency histograms behind one
// process-visible registry with a deterministic JSON snapshot and a
// Prometheus-style text exposition. The existing ad-hoc stat structs
// (EngineStats, DaemonStats, CacheStats mirrors) are snapshot VIEWS over
// instruments registered here: the hot path increments an instrument
// pointer it resolved once at startup; `stats()`-style accessors read the
// same instruments back, so the two surfaces can never disagree.
//
// Hot-path cost contract (gated by bench/fig_obs.cpp):
//   Counter::inc()      — one release fetch_add, <= 50 ns/op.
//   Histogram::observe  — one sharded mutex'd Welford add + one relaxed
//                         bucket fetch_add; per-request, not per-op.
//
// Snapshot-consistency contract: Counter increments use release ordering
// and value() uses acquire. A reader that loads causally-downstream
// counters BEFORE their upstream cause (e.g. `searches` before
// `requests`) therefore observes every upstream increment that preceded
// any downstream increment it saw — cross-counter invariants like
// `searches + flights_joined <= requests` hold in every snapshot, with
// no stop-the-world pause. See Engine::stats() for the worked example.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/util/stats.h"

namespace karma::obs {

/// Monotonic counter. Release/acquire ordered (see header comment).
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_release); }
  std::uint64_t value() const { return v_.load(std::memory_order_acquire); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value (queue depths, resident bytes,
/// snapshot mirrors of externally-owned counters like CacheStats).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_release); }
  double value() const { return v_.load(std::memory_order_acquire); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket latency histogram (seconds). Bucket upper bounds follow a
/// 1-2-5 series from 1 us to 100 s; observations land in the first bucket
/// whose bound is >= the value, with one overflow bucket past the last
/// bound. Moment statistics (mean/min/max/stddev) are kept in per-shard
/// RunningStats accumulators (thread-id sharded to keep the mutex
/// uncontended) and reduced with RunningStats::merge at snapshot time.
class Histogram {
 public:
  Histogram();

  void observe(double seconds);

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    double stddev = 0.0;
    /// Per-bucket (NON-cumulative) counts; only non-empty buckets, in
    /// increasing bound order. `le` is the bucket's inclusive upper
    /// bound; the overflow bucket reports le = +infinity.
    struct Bucket {
      double le = 0.0;
      std::uint64_t count = 0;
    };
    std::vector<Bucket> buckets;
    /// p in [0,100]: interpolated within the containing bucket, clamped
    /// to the observed [min, max]. 0 when empty.
    double percentile(double p) const;
  };
  Snapshot snapshot() const;

  /// The shared bucket upper-bound series (without the +inf overflow).
  static const std::vector<double>& bounds();

 private:
  static constexpr int kShards = 8;
  struct alignas(64) Shard {
    mutable std::mutex mu;
    RunningStats stats;
  };
  std::array<Shard, kShards> shards_;
  std::vector<std::atomic<std::uint64_t>> bucket_counts_;
};

/// Times a scope and feeds the elapsed seconds to a histogram on exit.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* h);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* h_;
  std::uint64_t start_us_;
};

/// Instrument registry. Lookup/registration is mutexed (cold path — hot
/// paths resolve instrument pointers once and hold them); instrument
/// pointers are stable for the registry's lifetime. Names are free-form
/// but conventionally dotted lowercase ("engine.requests",
/// "pland.hit_seconds"); the Prometheus exposition mangles them to
/// `karma_` + [a-z0-9_].
class Registry {
 public:
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  /// Registers a callback run before every snapshot/exposition, outside
  /// the registry lock — the hook through which externally-owned stats
  /// (CacheStats, per-tenant queue depths) are mirrored into gauges at
  /// snapshot time. Returns a token for remove_collector; owners whose
  /// lifetime can end before the registry's MUST deregister.
  std::uint64_t add_collector(std::function<void()> fn);
  void remove_collector(std::uint64_t token);

  /// Deterministic JSON snapshot: {"counters":{...},"gauges":{...},
  /// "histograms":{...}} with names sorted, doubles in the repo-standard
  /// %.17g form (util::json::Writer).
  std::string snapshot_json();

  /// Prometheus text exposition (counters, gauges, histograms with
  /// cumulative `le` buckets + _sum/_count).
  std::string prometheus_text();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::uint64_t, std::function<void()>> collectors_;
  std::uint64_t next_collector_ = 1;

  void run_collectors();
};

}  // namespace karma::obs
