#include "src/obs/chrome_trace.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/util/json.h"

namespace karma::obs {
namespace {

using karma::Bytes;
using sim::Op;
using sim::OpKind;
using sim::Plan;

const char* const kStreamNames[sim::kNumStreams] = {
    "compute", "h2d", "d2h", "net", "cpu", "nvme_read", "nvme_write"};

// Default-resolution rules mirrored from the engine (sim/plan.h Op doc):
// what an op reserves on device at start and releases at completion.
Bytes resolve(Bytes v, Bytes fallback) {
  return v == Op::kDefault ? fallback : v;
}

Bytes alloc_of(const Plan& plan, const Op& op) {
  const sim::BlockCost& c = plan.costs[static_cast<std::size_t>(op.block)];
  const Bytes act = resolve(op.bytes, c.act_bytes);
  switch (op.kind) {
    case OpKind::kForward:
      return resolve(op.alloc, op.retains ? act : c.boundary_bytes);
    case OpKind::kRecompute:
    case OpKind::kBackward:
    case OpKind::kSwapIn:
      return resolve(op.alloc, act);
    default:
      return resolve(op.alloc, 0);
  }
}

Bytes free_of(const Plan& plan, const Op& op) {
  const sim::BlockCost& c = plan.costs[static_cast<std::size_t>(op.block)];
  const Bytes act = resolve(op.bytes, c.act_bytes);
  switch (op.kind) {
    case OpKind::kBackward:
      return resolve(op.free, 2 * act);
    case OpKind::kSwapOut:
      return resolve(op.free, act);
    default:
      return resolve(op.free, 0);
  }
}

/// One pending change to a residency counter track.
struct Delta {
  double ts_us = 0.0;
  int track = 0;  // 0 device, 1 host, 2 nvme
  Bytes delta = 0;
};

const char* const kTrackNames[3] = {"device_resident", "host_resident",
                                    "nvme_resident"};

double to_us(Seconds s) { return s * 1e6; }

}  // namespace

std::string export_execution_trace(const sim::ExecutionTrace& trace,
                                   const sim::Plan& plan) {
  util::json::Writer w;
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();

  // Track metadata: one named thread per sim stream.
  w.begin_object();
  w.key("name");
  w.value("process_name");
  w.key("ph");
  w.value("M");
  w.key("pid");
  w.value(1);
  w.key("args");
  w.begin_object();
  w.key("name");
  w.value("karma-sim");
  w.end_object();
  w.end_object();
  for (int s = 0; s < sim::kNumStreams; ++s) {
    w.begin_object();
    w.key("name");
    w.value("thread_name");
    w.key("ph");
    w.value("M");
    w.key("pid");
    w.value(1);
    w.key("tid");
    w.value(s);
    w.key("args");
    w.begin_object();
    w.key("name");
    w.value(kStreamNames[s]);
    w.end_object();
    w.end_object();
  }

  std::vector<Delta> deltas;
  deltas.reserve(trace.records.size() * 2 + 2);
  deltas.push_back({0.0, 0, plan.baseline_resident});
  deltas.push_back({0.0, 1, plan.host_baseline_resident});

  for (const sim::OpRecord& rec : trace.records) {
    if (rec.op_index < 0 ||
        rec.op_index >= static_cast<int>(plan.ops.size()))
      throw std::invalid_argument(
          "export_execution_trace: record op_index out of range");
    const Op& op = plan.ops[static_cast<std::size_t>(rec.op_index)];
    const int tid = static_cast<int>(sim::stream_of_op(op));

    // The stall the engine recorded BEFORE this op launched, drawn as its
    // own slice so dead stream time is visually attributed.
    if (rec.stall > 0.0) {
      w.begin_object();
      w.key("name");
      w.value("stall");
      w.key("cat");
      w.value("stall");
      w.key("ph");
      w.value("X");
      w.key("pid");
      w.value(1);
      w.key("tid");
      w.value(tid);
      w.key("ts");
      w.value(to_us(rec.start - rec.stall));
      w.key("dur");
      w.value(to_us(rec.stall));
      w.end_object();
    }

    w.begin_object();
    w.key("name");
    const std::string name =
        std::string(sim::op_kind_name(rec.kind)) + std::to_string(rec.block + 1);
    w.value(name);
    w.key("cat");
    w.value("sim");
    w.key("ph");
    w.value("X");
    w.key("pid");
    w.value(1);
    w.key("tid");
    w.value(tid);
    w.key("ts");
    w.value(to_us(rec.start));
    w.key("dur");
    w.value(to_us(rec.end - rec.start));
    w.key("args");
    w.begin_object();
    w.key("block");
    w.value(rec.block);
    w.key("iteration");
    w.value(rec.iteration);
    w.key("stall_us");
    w.value(to_us(rec.stall));
    w.end_object();
    w.end_object();

    // Residency bookkeeping. Device: alloc at start, free at end (the
    // engine's accounting). Offload tiers: swap-out charges its payload
    // on completion; an activation swap-in releases on completion; a
    // gradient charge is released by the block's update op (sim/plan.h
    // Residency doc); weight-shard traffic is ledger-neutral.
    const Bytes alloc = alloc_of(plan, op);
    const Bytes freed = free_of(plan, op);
    if (alloc != 0) deltas.push_back({to_us(rec.start), 0, alloc});
    if (freed != 0) deltas.push_back({to_us(rec.end), 0, -freed});

    const Bytes payload =
        resolve(op.bytes,
                plan.costs[static_cast<std::size_t>(op.block)].act_bytes);
    const int tier_track = op.tier == tier::Tier::kNvme ? 2 : 1;
    if (op.kind == OpKind::kSwapOut &&
        op.residency != tier::Residency::kWeightShard) {
      deltas.push_back({to_us(rec.end), tier_track, payload});
    } else if (op.kind == OpKind::kSwapIn &&
               op.residency == tier::Residency::kActivation) {
      deltas.push_back({to_us(rec.end), tier_track, -payload});
    } else if ((op.kind == OpKind::kCpuUpdate ||
                op.kind == OpKind::kDeviceUpdate) &&
               op.bytes != Op::kDefault && op.bytes != 0) {
      deltas.push_back({to_us(rec.end), tier_track, -op.bytes});
    }
  }

  // Counter tracks: stable-sorted by time (ties keep issue order), then
  // emitted as cumulative values.
  std::stable_sort(deltas.begin(), deltas.end(),
                   [](const Delta& a, const Delta& b) {
                     if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                     return a.track < b.track;
                   });
  Bytes level[3] = {0, 0, 0};
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    const Delta& d = deltas[i];
    level[d.track] += d.delta;
    // Collapse runs at the same (time, track): emit only the final value.
    if (i + 1 < deltas.size() && deltas[i + 1].ts_us == d.ts_us &&
        deltas[i + 1].track == d.track)
      continue;
    w.begin_object();
    w.key("name");
    w.value(kTrackNames[d.track]);
    w.key("cat");
    w.value("residency");
    w.key("ph");
    w.value("C");
    w.key("pid");
    w.value(1);
    w.key("tid");
    w.value(0);
    w.key("ts");
    w.value(d.ts_us);
    w.key("args");
    w.begin_object();
    w.key("bytes");
    w.value(static_cast<std::int64_t>(level[d.track]));
    w.end_object();
    w.end_object();
  }

  w.end_array();
  w.end_object();
  return w.take();
}

}  // namespace karma::obs
