#include "src/obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>

#include "src/util/json.h"

namespace karma::obs {
namespace {

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Stable small-integer shard id for the calling thread.
int shard_of_thread(int shards) {
  static std::atomic<unsigned> next{0};
  thread_local unsigned id = next.fetch_add(1, std::memory_order_relaxed);
  return static_cast<int>(id % static_cast<unsigned>(shards));
}

/// %g — bucket bounds are static round 1-2-5 values; 6 significant
/// digits renders them exactly ("2e-06", "0.005", "100") and identically
/// on every platform.
std::string format_bound(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

/// Prometheus metric name: `karma_` prefix, [a-zA-Z0-9_] only.
std::string prom_name(const std::string& name) {
  std::string out = "karma_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    out += ok ? c : '_';
  }
  return out;
}

void append_double(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  *out += buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// Histogram

const std::vector<double>& Histogram::bounds() {
  static const std::vector<double> kBounds = [] {
    std::vector<double> b;
    // 1-2-5 per decade, 1 us .. 50 s, then a final 100 s bound.
    for (int exp = -6; exp <= 1; ++exp) {
      const double decade = std::pow(10.0, exp);
      b.push_back(1.0 * decade);
      b.push_back(2.0 * decade);
      b.push_back(5.0 * decade);
    }
    b.push_back(100.0);
    return b;
  }();
  return kBounds;
}

Histogram::Histogram() : bucket_counts_(bounds().size() + 1) {}

void Histogram::observe(double seconds) {
  Shard& shard = shards_[static_cast<std::size_t>(shard_of_thread(kShards))];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.stats.add(seconds);
  }
  const std::vector<double>& b = bounds();
  const std::size_t idx = static_cast<std::size_t>(
      std::lower_bound(b.begin(), b.end(), seconds) - b.begin());
  bucket_counts_[idx].fetch_add(1, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  RunningStats all;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    all.merge(shard.stats);
  }
  s.count = all.count();
  s.sum = all.sum();
  s.mean = all.mean();
  s.min = all.min();
  s.max = all.max();
  s.stddev = all.stddev();
  const std::vector<double>& b = bounds();
  for (std::size_t i = 0; i < bucket_counts_.size(); ++i) {
    const std::uint64_t c = bucket_counts_[i].load(std::memory_order_relaxed);
    if (c == 0) continue;
    const double le = i < b.size() ? b[i]
                                   : std::numeric_limits<double>::infinity();
    s.buckets.push_back({le, c});
  }
  return s;
}

double Histogram::Snapshot::percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::min(100.0, std::max(0.0, p));
  const double target = p / 100.0 * static_cast<double>(count);
  std::uint64_t seen = 0;
  const std::vector<double>& b = bounds();
  for (const Bucket& bucket : buckets) {
    const std::uint64_t next = seen + bucket.count;
    if (static_cast<double>(next) >= target) {
      // Interpolate within [lower bound of this bucket, le].
      double lo = 0.0;
      const auto it = std::lower_bound(b.begin(), b.end(), bucket.le);
      if (it != b.begin() && it != b.end()) lo = *(it - 1);
      double hi = bucket.le;
      if (!std::isfinite(hi)) {  // overflow bucket: cap at observed max
        lo = b.empty() ? 0.0 : b.back();
        hi = max;
      }
      const double frac =
          bucket.count == 0
              ? 1.0
              : (target - static_cast<double>(seen)) /
                    static_cast<double>(bucket.count);
      const double v = lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
      return std::min(max, std::max(min, v));
    }
    seen = next;
  }
  return max;
}

// ---------------------------------------------------------------------------
// ScopedTimer

ScopedTimer::ScopedTimer(Histogram* h) : h_(h), start_us_(now_us()) {}

ScopedTimer::~ScopedTimer() {
  if (h_ != nullptr)
    h_->observe(static_cast<double>(now_us() - start_us_) * 1e-6);
}

// ---------------------------------------------------------------------------
// Registry

Counter* Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::uint64_t Registry::add_collector(std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t token = next_collector_++;
  collectors_[token] = std::move(fn);
  return token;
}

void Registry::remove_collector(std::uint64_t token) {
  std::lock_guard<std::mutex> lock(mu_);
  collectors_.erase(token);
}

void Registry::run_collectors() {
  // Copy under the lock, run outside it: collectors call back into
  // gauge()/counter() to publish their values.
  std::vector<std::function<void()>> fns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    fns.reserve(collectors_.size());
    for (const auto& [token, fn] : collectors_) fns.push_back(fn);
  }
  for (const auto& fn : fns) fn();
}

std::string Registry::snapshot_json() {
  run_collectors();
  util::json::Writer w;
  std::lock_guard<std::mutex> lock(mu_);
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, c] : counters_) {
    w.key(name.c_str());
    w.value(static_cast<std::int64_t>(c->value()));
  }
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, g] : gauges_) {
    w.key(name.c_str());
    w.value(g->value());
  }
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : histograms_) {
    const Histogram::Snapshot s = h->snapshot();
    w.key(name.c_str());
    w.begin_object();
    w.key("count");
    w.value(static_cast<std::int64_t>(s.count));
    w.key("sum");
    w.value(s.sum);
    w.key("mean");
    w.value(s.mean);
    w.key("min");
    w.value(s.min);
    w.key("max");
    w.value(s.max);
    w.key("stddev");
    w.value(s.stddev);
    w.key("p50");
    w.value(s.percentile(50.0));
    w.key("p90");
    w.value(s.percentile(90.0));
    w.key("p99");
    w.value(s.percentile(99.0));
    w.key("buckets");
    w.begin_array();
    for (const Histogram::Snapshot::Bucket& bucket : s.buckets) {
      w.begin_array();
      if (std::isfinite(bucket.le)) {
        // Static 1-2-5 bounds: splice the short %g form rather than the
        // 17-digit round-trip form value(double) would emit.
        w.raw(format_bound(bucket.le));
      } else {
        w.value("+inf");
      }
      w.value(static_cast<std::int64_t>(bucket.count));
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.take();
}

std::string Registry::prometheus_text() {
  run_collectors();
  std::string out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " counter\n";
    out += p + " " + std::to_string(c->value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " gauge\n";
    out += p + " ";
    append_double(&out, g->value());
    out += "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const Histogram::Snapshot s = h->snapshot();
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " histogram\n";
    // Cumulative counts over the full static bound series, plus +Inf.
    std::uint64_t cum = 0;
    std::size_t next = 0;
    for (double bound : Histogram::bounds()) {
      while (next < s.buckets.size() && s.buckets[next].le <= bound)
        cum += s.buckets[next++].count;
      out += p + "_bucket{le=\"" + format_bound(bound) +
             "\"} " + std::to_string(cum) + "\n";
    }
    out += p + "_bucket{le=\"+Inf\"} " + std::to_string(s.count) + "\n";
    out += p + "_sum ";
    append_double(&out, s.sum);
    out += "\n";
    out += p + "_count " + std::to_string(s.count) + "\n";
  }
  return out;
}

}  // namespace karma::obs
