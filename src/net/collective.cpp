#include "src/net/collective.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace karma::net {

NetSpec abci_net() { return NetSpec{}; }

Seconds ring_allreduce_time(Bytes bytes, int nprocs, Bandwidth bw,
                            Seconds lat) {
  if (nprocs < 1) throw std::invalid_argument("ring_allreduce: nprocs < 1");
  if (nprocs == 1 || bytes <= 0) return 0.0;
  const double n = nprocs;
  return 2.0 * (n - 1.0) / n * static_cast<double>(bytes) / bw +
         2.0 * (n - 1.0) * lat;
}

Seconds tree_allreduce_time(Bytes bytes, int nprocs, Bandwidth bw,
                            Seconds lat) {
  if (nprocs < 1) throw std::invalid_argument("tree_allreduce: nprocs < 1");
  if (nprocs == 1 || bytes <= 0) return 0.0;
  const double rounds = std::ceil(std::log2(static_cast<double>(nprocs)));
  return 2.0 * rounds * (static_cast<double>(bytes) / bw + lat);
}

Seconds hierarchical_allreduce_time(const NetSpec& net, int num_gpus,
                                    Bytes bytes) {
  if (num_gpus < 1)
    throw std::invalid_argument("hierarchical_allreduce: num_gpus < 1");
  if (num_gpus == 1 || bytes <= 0) return 0.0;
  const int g = std::min(net.gpus_per_node, num_gpus);
  const int nodes = (num_gpus + net.gpus_per_node - 1) / net.gpus_per_node;

  // Intra-node reduce and final broadcast (ring among local GPUs).
  const Seconds intra =
      g > 1 ? ring_allreduce_time(bytes, g, net.intra_bw, net.intra_latency)
            : 0.0;
  if (nodes <= 1) return intra;

  const Seconds inter_ring =
      ring_allreduce_time(bytes, nodes, net.inter_bw, net.inter_latency);
  const Seconds inter_tree =
      tree_allreduce_time(bytes, nodes, net.inter_bw, net.inter_latency);
  return intra + std::min(inter_ring, inter_tree);
}

}  // namespace karma::net
