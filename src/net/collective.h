// Analytic collective-communication cost models (alpha-beta), the
// substitute for NCCL / torch.distributed (DESIGN.md §2).
//
// The topology mirrors ABCI (paper Table II): 4 V100 per node connected
// with NVLink (50 GB/s), nodes connected with 2x EDR InfiniBand
// (12.5 GB/s). AllReduce uses the standard hierarchical decomposition:
// intra-node reduce -> inter-node ring reduce-scatter/all-gather ->
// intra-node broadcast.
#pragma once

#include <cstdint>

#include "src/util/units.h"

namespace karma::net {

struct NetSpec {
  int gpus_per_node = 4;
  Bandwidth intra_bw = 50e9;    ///< NVLink per-direction
  Seconds intra_latency = 3e-6;
  Bandwidth inter_bw = 12.5e9;  ///< 100 Gbps EDR IB x2, per node
  Seconds inter_latency = 10e-6;
};

/// ABCI numbers from Table II.
NetSpec abci_net();

/// Flat ring AllReduce over `nprocs` peers on a link of (`bw`, `lat`):
/// 2*(n-1)/n * bytes/bw + 2*(n-1)*lat.
Seconds ring_allreduce_time(Bytes bytes, int nprocs, Bandwidth bw,
                            Seconds lat);

/// Binary-tree AllReduce (reduce + broadcast): 2*log2(n)*(bytes/bw + lat).
/// Better than ring for small payloads at large scale.
Seconds tree_allreduce_time(Bytes bytes, int nprocs, Bandwidth bw,
                            Seconds lat);

/// Hierarchical AllReduce over `num_gpus` total GPUs on the given
/// topology; picks min(ring, tree) for the inter-node phase, matching how
/// NCCL auto-selects algorithms.
Seconds hierarchical_allreduce_time(const NetSpec& net, int num_gpus,
                                    Bytes bytes);

}  // namespace karma::net
