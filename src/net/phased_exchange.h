// Phased (layer-grouped) gradient exchange, following Shi & Chu's
// MG-WFBP merging model [36], which the paper adopts for its 5-stage
// distributed pipeline (Sec. III-G, stage 4): finished blocks at the end
// of the model AllReduce their gradients without waiting for the rest,
// and blocks whose individual exchanges would be latency-dominated are
// merged with their neighbours.
#pragma once

#include <vector>

#include "src/net/collective.h"
#include "src/util/units.h"

namespace karma::net {

/// One gradient-exchange phase: gradients of blocks
/// [first_block, last_block] (note: backward order means first_block >=
/// last_block in model order) are exchanged together right after
/// `launch_after_block`'s backward completes.
struct ExchangePhase {
  int launch_after_block = 0;  ///< AllReduce launches after this backward
  std::vector<int> blocks;     ///< model-order block ids merged in phase
  Bytes bytes = 0;             ///< total gradient payload
  Seconds allreduce_time = 0.0;
};

struct ExchangePlan {
  std::vector<ExchangePhase> phases;
  Seconds total_comm_time() const;
  Bytes total_bytes() const;
};

/// Every block exchanges on its own (maximal overlap, maximal latency).
ExchangePlan per_block_exchange(const NetSpec& net, int num_gpus,
                                const std::vector<Bytes>& grad_bytes);

/// One bulk AllReduce after the whole backward pass (no overlap) — the
/// classic synchronous-SGD baseline the paper's "Opt. Gradient Ex."
/// variant improves on.
ExchangePlan bulk_exchange(const NetSpec& net, int num_gpus,
                           const std::vector<Bytes>& grad_bytes);

/// MG-WFBP-style merged exchange: walking blocks in backward order,
/// a block is merged into the current phase when starting a separate
/// exchange would not finish before the next merge opportunity anyway —
/// i.e. when its standalone exchange is latency-bound:
///     alpha_term(phase) >= beta gain of overlapping with bwd_time.
/// `bwd_time[b]` is block b's backward compute time, the window available
/// to hide the exchange of blocks > b.
ExchangePlan merged_exchange(const NetSpec& net, int num_gpus,
                             const std::vector<Bytes>& grad_bytes,
                             const std::vector<Seconds>& bwd_time);

}  // namespace karma::net
