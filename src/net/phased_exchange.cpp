#include "src/net/phased_exchange.h"

#include <numeric>
#include <stdexcept>

namespace karma::net {

Seconds ExchangePlan::total_comm_time() const {
  Seconds t = 0.0;
  for (const auto& p : phases) t += p.allreduce_time;
  return t;
}

Bytes ExchangePlan::total_bytes() const {
  Bytes b = 0;
  for (const auto& p : phases) b += p.bytes;
  return b;
}

namespace {

ExchangePhase make_phase(const NetSpec& net, int num_gpus,
                         std::vector<int> blocks, Bytes bytes,
                         int launch_after) {
  ExchangePhase phase;
  phase.blocks = std::move(blocks);
  phase.bytes = bytes;
  phase.launch_after_block = launch_after;
  phase.allreduce_time = hierarchical_allreduce_time(net, num_gpus, bytes);
  return phase;
}

}  // namespace

ExchangePlan per_block_exchange(const NetSpec& net, int num_gpus,
                                const std::vector<Bytes>& grad_bytes) {
  ExchangePlan plan;
  const int nb = static_cast<int>(grad_bytes.size());
  for (int b = nb - 1; b >= 0; --b) {
    const Bytes bytes = grad_bytes[static_cast<std::size_t>(b)];
    if (bytes <= 0) continue;
    plan.phases.push_back(make_phase(net, num_gpus, {b}, bytes, b));
  }
  return plan;
}

ExchangePlan bulk_exchange(const NetSpec& net, int num_gpus,
                           const std::vector<Bytes>& grad_bytes) {
  ExchangePlan plan;
  const Bytes total =
      std::accumulate(grad_bytes.begin(), grad_bytes.end(), Bytes{0});
  if (total <= 0) return plan;
  std::vector<int> all(grad_bytes.size());
  std::iota(all.begin(), all.end(), 0);
  // Launches only after the backward of block 0 (the last backward).
  plan.phases.push_back(make_phase(net, num_gpus, std::move(all), total, 0));
  return plan;
}

ExchangePlan merged_exchange(const NetSpec& net, int num_gpus,
                             const std::vector<Bytes>& grad_bytes,
                             const std::vector<Seconds>& bwd_time) {
  if (grad_bytes.size() != bwd_time.size())
    throw std::invalid_argument("merged_exchange: size mismatch");
  ExchangePlan plan;
  const int nb = static_cast<int>(grad_bytes.size());

  // The latency (alpha) component of one phase at this scale: exchange of
  // zero extra payload. Anything whose standalone time is dominated by it
  // should ride along with its neighbour.
  const Seconds alpha = hierarchical_allreduce_time(net, num_gpus, 1);

  std::vector<int> group;
  Bytes group_bytes = 0;
  for (int b = nb - 1; b >= 0; --b) {
    const Bytes bytes = grad_bytes[static_cast<std::size_t>(b)];
    group.push_back(b);
    group_bytes += bytes;
    // Overlap window: the backward compute of the next (earlier) block
    // hides the exchange. Flush the group when its exchange meaningfully
    // exceeds pure latency AND there is a window to hide it in; always
    // flush at the front of the model.
    const bool last = b == 0;
    const Seconds window = last ? 0.0 : bwd_time[static_cast<std::size_t>(b - 1)];
    const Seconds standalone =
        hierarchical_allreduce_time(net, num_gpus, group_bytes);
    const bool latency_bound = standalone < 2.0 * alpha;
    if (last || (!latency_bound && window > 0.0)) {
      if (group_bytes > 0)
        plan.phases.push_back(
            make_phase(net, num_gpus, std::move(group), group_bytes, b));
      group = {};
      group_bytes = 0;
    }
  }
  return plan;
}

}  // namespace karma::net
