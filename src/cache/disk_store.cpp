#include "src/cache/disk_store.h"

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <system_error>

#include "src/api/plan_io.h"

namespace karma::cache {

namespace fs = std::filesystem;

std::string DiskStore::entry_path(const RequestKey& key) const {
  return (fs::path(dir_) / (key.hex() + ".plan.json")).string();
}

DiskStore::LoadResult DiskStore::load(const RequestKey& key) const {
  LoadResult result;
  std::ifstream in(entry_path(key), std::ios::binary);
  if (!in.is_open()) return result;  // absent: clean miss
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) {
    result.corrupt = true;
    return result;
  }
  // plan_from_json is the validation gate: schema version, parseability,
  // and structural invariants (block ranges, op indices). Anything it
  // rejects is a corrupt entry, reported as such and served as a miss.
  auto parsed = api::plan_from_json(text);
  if (!parsed) {
    result.corrupt = true;
    return result;
  }
  result.plan = std::move(parsed).value();
  // The entry is the artifact plus the trailing newline store() appends;
  // the LRU weighs the artifact itself.
  result.serialized_bytes = text.size() - (text.ends_with('\n') ? 1 : 0);
  return result;
}

bool DiskStore::store(const RequestKey& key, const api::Plan& plan) {
  return store_serialized(key, plan.to_json());
}

bool DiskStore::store_serialized(const RequestKey& key,
                                 const std::string& json) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) return false;
  const std::string final_path = entry_path(key);
  // Unique temp name per process and per write, in the same directory so
  // the rename cannot cross filesystems (rename is atomic on POSIX).
  const std::string tmp_path =
      final_path + ".tmp." + std::to_string(::getpid()) + "." +
      std::to_string(write_seq_.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) return false;
    out << json << '\n';
    out.flush();
    if (!out.good()) {
      out.close();
      fs::remove(tmp_path, ec);
      return false;
    }
  }
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    fs::remove(tmp_path, ec);
    return false;
  }
  return true;
}

}  // namespace karma::cache
