#include "src/cache/disk_store.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <filesystem>
#include <string_view>
#include <system_error>
#include <thread>

#include "src/api/plan_io.h"

namespace karma::cache {

namespace fs = std::filesystem;

namespace {

/// Closes `fd` on scope exit (-1 = nothing to close).
struct FdGuard {
  int fd = -1;
  ~FdGuard() {
    if (fd >= 0) ::close(fd);
  }
};

/// Writes all of `data`, retrying short writes and EINTR.
bool write_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::write(fd, data.data(), data.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

/// fsync() retrying EINTR.
bool fsync_fd(int fd) {
  while (::fsync(fd) != 0)
    if (errno != EINTR) return false;
  return true;
}

/// Durable directory sync: after a rename, the new dirent must survive a
/// crash, which requires fsyncing the directory itself.
bool fsync_dir(const std::string& dir) {
  FdGuard d{::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC)};
  return d.fd >= 0 && fsync_fd(d.fd);
}

}  // namespace

std::string DiskStore::entry_path(const RequestKey& key) const {
  return (fs::path(dir_) / (key.hex() + ".plan.json")).string();
}

std::string DiskStore::claim_path(const RequestKey& key) const {
  return (fs::path(dir_) / (key.hex() + ".claim")).string();
}

bool DiskStore::ensure_dir() {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  return !ec;
}

DiskStore::LoadResult DiskStore::load(const RequestKey& key) const {
  LoadResult result;
  FdGuard f{::open(entry_path(key).c_str(), O_RDONLY | O_CLOEXEC)};
  if (f.fd < 0) return result;  // absent: clean miss
  struct stat st {};
  if (::fstat(f.fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    result.corrupt = true;
    return result;
  }
  if (st.st_size == 0) {
    result.corrupt = true;  // a published entry is never empty
    return result;
  }
  // Entries are immutable once published and our fd pins the inode, so
  // the mapping is stable for the whole parse — no lock, no copy.
  const auto size = static_cast<std::size_t>(st.st_size);
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, f.fd, 0);
  if (map == MAP_FAILED) {
    result.corrupt = true;
    return result;
  }
  std::string_view text(static_cast<const char*>(map), size);
  // plan_from_json is the validation gate: schema version, parseability,
  // and structural invariants (block ranges, op indices). Anything it
  // rejects is a corrupt entry, reported as such and served as a miss.
  auto parsed = api::plan_from_json(text);
  if (parsed) {
    result.plan = std::move(parsed).value();
    // The entry is the artifact plus the trailing newline store() appends;
    // the LRU weighs the artifact itself.
    result.serialized_bytes = text.size() - (text.ends_with('\n') ? 1 : 0);
  } else {
    result.corrupt = true;
  }
  ::munmap(map, size);
  return result;
}

bool DiskStore::store(const RequestKey& key, const api::Plan& plan) {
  return store_serialized(key, plan.to_json());
}

bool DiskStore::store_serialized(const RequestKey& key,
                                 const std::string& json) {
  if (!ensure_dir()) return false;
  const std::string final_path = entry_path(key);
  // Unique temp name per process and per write, in the same directory so
  // the rename cannot cross filesystems (rename is atomic on POSIX).
  const std::string tmp_path =
      final_path + ".tmp." + std::to_string(::getpid()) + "." +
      std::to_string(write_seq_.fetch_add(1, std::memory_order_relaxed));
  {
    FdGuard out{::open(tmp_path.c_str(),
                       O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644)};
    if (out.fd < 0) return false;
    // Data must be durable BEFORE the rename publishes the name: a crash
    // between rename and data hitting disk would otherwise leave a
    // published name pointing at torn bytes.
    if (!write_all(out.fd, json) || !write_all(out.fd, "\n") ||
        !fsync_fd(out.fd)) {
      ::unlink(tmp_path.c_str());
      return false;
    }
  }
  // Store-wide advisory write lock: publishes from concurrent processes
  // serialize here. Readers never take it (rename is atomic either way);
  // it exists so two publishers' rename+dirsync sequences don't interleave
  // and to give external tooling a single lock to quiesce writes with.
  FdGuard lock{::open((fs::path(dir_) / ".karma-store.lock").string().c_str(),
                      O_CREAT | O_RDWR | O_CLOEXEC, 0644)};
  if (lock.fd >= 0)
    while (::flock(lock.fd, LOCK_EX) != 0 && errno == EINTR) {
    }
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    ::unlink(tmp_path.c_str());
    return false;
  }
  // The rename itself is atomic; the dirent fsync makes it durable.
  fsync_dir(dir_);
  return true;
}

// ---------------------------------------------------------------------------
// Claim files: fleet-wide single-flight.
// ---------------------------------------------------------------------------

DiskStore::Claim& DiskStore::Claim::operator=(Claim&& o) noexcept {
  if (this != &o) {
    release();
    fd_ = o.fd_;
    path_ = std::move(o.path_);
    o.fd_ = -1;
  }
  return *this;
}

void DiskStore::Claim::release() {
  if (fd_ < 0) return;
  // Unlink BEFORE close: waiters probing the claim must never find the
  // file present yet unlocked and conclude a leader crashed when it
  // actually finished — from outside, "finished" and "crashed" both read
  // as kReleased, but the unlink-first order keeps the window where a
  // fresh try_claim could recreate-and-lock the same path unambiguous
  // (the inode check below catches stale fds).
  ::unlink(path_.c_str());
  ::close(fd_);
  fd_ = -1;
}

std::optional<DiskStore::Claim> DiskStore::try_claim(const RequestKey& key) {
  if (!ensure_dir()) return std::nullopt;
  const std::string path = claim_path(key);
  for (int attempt = 0; attempt < 8; ++attempt) {
    FdGuard f{::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644)};
    if (f.fd < 0) return std::nullopt;
    if (::flock(f.fd, LOCK_EX | LOCK_NB) != 0) {
      if (errno == EINTR) continue;
      claims_lost_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;  // a live leader holds it
    }
    // We hold the lock — but possibly on a zombie inode: the previous
    // leader may have unlinked the path between our open and our flock.
    // Compare the locked inode against the path's current one; on
    // mismatch (or ENOENT) drop this fd and re-open.
    struct stat locked {}, current {};
    if (::fstat(f.fd, &locked) != 0) return std::nullopt;
    if (::stat(path.c_str(), &current) != 0 ||
        current.st_ino != locked.st_ino || current.st_dev != locked.st_dev) {
      continue;  // raced a release; retry on the fresh path
    }
    claims_won_.fetch_add(1, std::memory_order_relaxed);
    Claim claim(f.fd, path);
    f.fd = -1;  // ownership moved into the Claim
    return claim;
  }
  return std::nullopt;
}

DiskStore::WaitOutcome DiskStore::wait_for_entry(
    const RequestKey& key, const CancelToken& control) const {
  const std::string entry = entry_path(key);
  const std::string claim = claim_path(key);
  auto backoff = std::chrono::microseconds(200);
  constexpr auto kMaxBackoff = std::chrono::milliseconds(10);
  while (true) {
    struct stat st {};
    if (::stat(entry.c_str(), &st) == 0) {
      waits_entry_.fetch_add(1, std::memory_order_relaxed);
      return WaitOutcome::kEntry;
    }
    // Probe the leader's liveness: claim gone, or present but unlocked
    // (flock released by crash or close), means no search is running.
    FdGuard probe{::open(claim.c_str(), O_RDWR | O_CLOEXEC)};
    if (probe.fd < 0) {
      // Claim gone. The leader may have published in the window between
      // our entry stat and this open — recheck once before reporting.
      if (::stat(entry.c_str(), &st) == 0) {
        waits_entry_.fetch_add(1, std::memory_order_relaxed);
        return WaitOutcome::kEntry;
      }
      waits_released_.fetch_add(1, std::memory_order_relaxed);
      return WaitOutcome::kReleased;
    }
    if (::flock(probe.fd, LOCK_EX | LOCK_NB) == 0) {
      // Nobody holds it: leader crashed (kernel dropped its lock) or is
      // mid-release. Drop our probe lock and report so the caller can
      // take over.
      ::flock(probe.fd, LOCK_UN);
      waits_released_.fetch_add(1, std::memory_order_relaxed);
      return WaitOutcome::kReleased;
    }
    if (control.should_stop()) return WaitOutcome::kInterrupted;
    std::this_thread::sleep_for(backoff);
    backoff = std::min(backoff * 2,
                       std::chrono::duration_cast<std::chrono::microseconds>(
                           kMaxBackoff));
  }
}

DiskStore::ClaimStats DiskStore::claim_stats() const {
  return {claims_won_.load(std::memory_order_relaxed),
          claims_lost_.load(std::memory_order_relaxed),
          waits_entry_.load(std::memory_order_relaxed),
          waits_released_.load(std::memory_order_relaxed)};
}

}  // namespace karma::cache
