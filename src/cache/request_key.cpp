#include "src/cache/request_key.h"

#include <cinttypes>
#include <cstdio>

#include "src/api/plan_io.h"
#include "src/api/session.h"

namespace karma::cache {
namespace {

/// Append-only canonical serializer. Same philosophy as plan_io's
/// JsonWriter: determinism falls out of the code structure, not a schema
/// walker. Strings are length-prefixed (`name=5:hello;`) so field values
/// cannot impersonate delimiters.
class Fingerprint {
 public:
  std::string take() { return std::move(out_); }

  void section(const char* name) {
    out_ += name;
    out_ += '{';
  }
  void end_section() { out_ += '}'; }

  void field(const char* key, std::int64_t v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRId64, v);
    emit(key, buf);
  }
  void field(const char* key, int v) { field(key, static_cast<std::int64_t>(v)); }
  void field(const char* key, std::uint64_t v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRIu64, v);
    emit(key, buf);
  }
  void field(const char* key, double v) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    emit(key, buf);
  }
  void field(const char* key, bool v) { emit(key, v ? "1" : "0"); }
  void field(const char* key, const std::string& v) {
    out_ += key;
    out_ += '=';
    out_ += std::to_string(v.size());
    out_ += ':';
    out_ += v;
    out_ += ';';
  }

 private:
  void emit(const char* key, const char* value) {
    out_ += key;
    out_ += '=';
    out_ += value;
    out_ += ';';
  }
  std::string out_;
};

void write_shape(Fingerprint& fp, const char* key,
                 const graph::TensorShape& shape) {
  std::string dims;
  for (std::size_t i = 0; i < shape.rank(); ++i) {
    if (i) dims += 'x';
    dims += std::to_string(shape.dim(i));
  }
  fp.field(key, dims);
}

void write_model(Fingerprint& fp, const graph::Model& model) {
  fp.section("model");
  fp.field("name", model.name());
  fp.field("dtype_bytes", model.dtype_bytes());
  fp.field("act_scale", model.activation_memory_scale());
  fp.field("layers", static_cast<std::int64_t>(model.num_layers()));
  for (const auto& layer : model.layers()) {
    fp.section("l");
    fp.field("name", layer.name);
    fp.field("kind", static_cast<int>(layer.kind));
    write_shape(fp, "in", layer.in_shape);
    write_shape(fp, "out", layer.out_shape);
    fp.field("kernel", layer.kernel);
    fp.field("stride", layer.stride);
    fp.field("in_ch", layer.in_channels);
    fp.field("out_ch", layer.out_channels);
    fp.field("heads", layer.heads);
    fp.field("head_dim", layer.head_dim);
    fp.field("vocab", layer.vocab);
    fp.field("weights", layer.weight_elems);
    fp.end_section();
  }
  // Edges via succs(), kept sorted ascending by Model::add_edge — the
  // order edges were *added* in cannot reach the fingerprint.
  fp.section("edges");
  for (const auto& layer : model.layers()) {
    std::string succs;
    for (const int s : model.succs(layer.id)) {
      if (!succs.empty()) succs += ',';
      succs += std::to_string(s);
    }
    fp.field(std::to_string(layer.id).c_str(), succs);
  }
  fp.end_section();
  fp.end_section();
}

void write_device(Fingerprint& fp, const sim::DeviceSpec& d) {
  fp.section("device");
  fp.field("name", d.name);
  fp.field("memory_capacity", d.memory_capacity);
  fp.field("peak_flops", d.peak_flops);
  fp.field("device_mem_bw", d.device_mem_bw);
  fp.field("h2d_bw", d.h2d_bw);
  fp.field("d2h_bw", d.d2h_bw);
  fp.field("swap_latency", d.swap_latency);
  fp.field("cpu_flops", d.cpu_flops);
  fp.field("host_mem_bw", d.host_mem_bw);
  fp.field("host_capacity", d.host_capacity);
  fp.field("nvme_capacity", d.nvme_capacity);
  fp.field("nvme_read_bw", d.nvme_read_bw);
  fp.field("nvme_write_bw", d.nvme_write_bw);
  fp.field("nvme_latency", d.nvme_latency);
  // NVMe contention model (DESIGN.md §16): unconditional like the scale
  // overlay — identity requests hash identical bytes to each other, and
  // contended devices never collide with their uncontended twins.
  fp.field("qd", d.nvme_contention.queue_depth);
  fp.field("mixed_read", d.nvme_contention.mixed_read_penalty);
  fp.field("mixed_write", d.nvme_contention.mixed_write_penalty);
  // Calibration overlay: identity for uncalibrated requests, but probe
  // requests derived from a calibrated flight embed scaled devices, and
  // those must not collide with their analytic twins.
  fp.field("scale_compute", d.scale.compute);
  fp.field("scale_h2d", d.scale.h2d);
  fp.field("scale_d2h", d.scale.d2h);
  fp.field("scale_nvme_read", d.scale.nvme_read);
  fp.field("scale_nvme_write", d.scale.nvme_write);
  fp.field("scale_cpu_update", d.scale.cpu_update);
  fp.end_section();
}

void write_planner(Fingerprint& fp, const core::PlannerOptions& p) {
  fp.section("planner");
  fp.field("recompute", p.enable_recompute);
  fp.field("min_blocks", p.min_blocks);
  fp.field("max_blocks", p.max_blocks);
  fp.field("anneal", p.anneal_iterations);
  // Plan-affecting: the portfolio reduction is deterministic for a fixed
  // worker count, but different counts explore different rng streams.
  // incremental_resim is intentionally absent — resumed replays are
  // bit-identical to cold ones, so it cannot change the plan.
  fp.field("anneal_workers", p.anneal_workers);
  fp.field("seed", static_cast<std::uint64_t>(p.seed));
  fp.field("prefetch", p.schedule.prefetch_window);
  fp.field("reserved_host", p.schedule.reserved_host_bytes);
  fp.end_section();
}

void write_optimizer(Fingerprint& fp, const api::OptimizerSpec& o) {
  fp.section("optimizer");
  fp.field("kind", static_cast<int>(o.kind));
  fp.field("host_resident", o.host_resident);
  fp.field("state_per_param", o.state_bytes_per_param_byte);
  fp.end_section();
}

void write_distributed(Fingerprint& fp,
                       const std::optional<core::DistributedOptions>& d) {
  fp.section("distributed");
  if (!d) {
    fp.field("none", true);
    fp.end_section();
    return;
  }
  fp.field("num_gpus", d->num_gpus);
  fp.field("gpus_per_node", d->net.gpus_per_node);
  fp.field("intra_bw", d->net.intra_bw);
  fp.field("intra_latency", d->net.intra_latency);
  fp.field("inter_bw", d->net.inter_bw);
  fp.field("inter_latency", d->net.inter_latency);
  fp.field("exchange", static_cast<int>(d->exchange));
  fp.field("update", static_cast<int>(d->update));
  fp.field("iterations", d->iterations);
  fp.field("shard_fraction", d->weight_shard_fraction);
  // d->planner is intentionally absent: Session supersedes it with
  // PlanRequest::planner (see the header's exclusion list).
  fp.end_section();
}

void write_fleet(Fingerprint& fp,
                 const std::optional<place::FleetSpec>& f) {
  fp.section("fleet");
  if (!f) {
    fp.field("none", true);
    fp.end_section();
    return;
  }
  fp.field("nodes", f->num_nodes());
  for (const auto& node : f->nodes) {
    fp.section("n");
    fp.field("name", node.name);
    write_device(fp, node.device);
    fp.end_section();
  }
  fp.field("gpus_per_node", f->net.gpus_per_node);
  fp.field("intra_bw", f->net.intra_bw);
  fp.field("intra_latency", f->net.intra_latency);
  fp.field("inter_bw", f->net.inter_bw);
  fp.field("inter_latency", f->net.inter_latency);
  fp.field("strategy", static_cast<int>(f->strategy));
  fp.end_section();
}

}  // namespace

std::string request_fingerprint(const api::PlanRequest& request,
                                const std::string& calibration) {
  Fingerprint fp;
  fp.section("karma-request-fp");
  // v4: fleet section + NVMe contention device fields (DESIGN.md §16) —
  // fleet-aware engines must never serve keys minted without them.
  // v3: anneal_workers + the rejection-sampled Rng (plans under the
  // unbiased stream differ from v2's, so v2 entries must miss).
  // v2: device scale fields + the calibration preamble entry below.
  fp.field("fp_version", 4);
  // Schema bump = cache invalidation: new keys never collide with entries
  // written under the old schema (which plan_from_json rejects anyway).
  fp.field("plan_schema", api::kPlanJsonVersion);
  // The active CalibrationTable's content hash ("" = analytic model).
  // Hot-swapping a table therefore re-keys the whole cache — stale plans
  // miss, and the engine turns the old-key entry into a repair seed.
  fp.field("calibration", calibration);
  fp.end_section();
  write_model(fp, request.model);
  write_device(fp, request.device);
  write_planner(fp, request.planner);
  write_optimizer(fp, request.optimizer);
  write_distributed(fp, request.distributed);
  write_fleet(fp, request.fleet);
  return fp.take();
}

RequestKey request_key(const api::PlanRequest& request,
                       const std::string& calibration) {
  return {util::digest128(request_fingerprint(request, calibration))};
}

}  // namespace karma::cache
