// Content-addressed fingerprinting of PlanRequests (DESIGN.md §10).
//
// PR 2 made planning pure: a PlanRequest is a value, Session::plan() is a
// deterministic function of it, and the Plan artifact serializes
// byte-stably. That makes planning cacheable — IF requests can be keyed
// by content. RequestKey is that key: a canonical text serialization of
// every request field that influences the produced plan, hashed to a
// 128-bit digest.
//
// Canonicalization rules:
//   - fields are emitted in one fixed order by code structure (no
//     reflection, no map iteration — the same discipline as plan_io);
//   - strings are length-prefixed so no name can fake a delimiter;
//   - doubles print with %.17g (bit-exact, same as the plan JSON);
//   - model edges come from Model::succs(), which the builder keeps
//     sorted ascending, so edge *insertion* order cannot leak in;
//   - the plan JSON schema version is part of the preamble: bumping the
//     schema invalidates every existing key (and the on-disk entries
//     would fail version validation anyway — two independent fences).
//
// Deliberately EXCLUDED from the fingerprint:
//   - PlanRequest::probe_feasible_batch — it shapes the PlanError on the
//     failure path only, never the artifact a success produces;
//   - PlanRequest::limits (deadline / candidate budget) — patience, not
//     content: a limit decides whether the deterministic search finishes,
//     never what it produces, and an interrupted search is never cached —
//     so bounded requests share flights and cache entries with unbounded
//     ones (DESIGN.md §11);
//   - DistributedOptions::planner — Session documents that the embedded
//     copy is superseded by PlanRequest::planner (the facade has exactly
//     one set of planner knobs).
#pragma once

#include <string>

#include "src/util/hash.h"

namespace karma::api {
struct PlanRequest;
}

namespace karma::cache {

/// Stable 128-bit content key of a PlanRequest. Value type; `hex()` is
/// the on-disk entry name stem.
struct RequestKey {
  util::Digest128 digest;

  bool operator==(const RequestKey&) const = default;
  std::string hex() const { return digest.hex(); }
};

struct RequestKeyHash {
  std::size_t operator()(const RequestKey& k) const {
    return util::Digest128Hash{}(k.digest);
  }
};

/// The canonical fingerprint text the key hashes. Exposed for tests and
/// debugging (e.g. diffing why two requests miss each other).
///
/// `calibration` is the active CalibrationTable's content hash, or ""
/// when planning against the uncorrected analytic model (DESIGN.md §13).
/// It joins the preamble, so installing, changing, or clearing a table
/// changes every key: a plan searched under stale cost constants can
/// never be served as current — it becomes a calib::repair seed instead.
std::string request_fingerprint(const api::PlanRequest& request,
                                const std::string& calibration = {});

/// Content key of `request`: digest128(request_fingerprint(request,
/// calibration)).
RequestKey request_key(const api::PlanRequest& request,
                       const std::string& calibration = {});

}  // namespace karma::cache
