// Persistent plan store: the on-disk level of the plan cache.
//
// One entry per request key, named `<key-hex>.plan.json`, holding exactly
// the v2 plan JSON artifact (plan_io) — the same bytes Session would hand
// back from Plan::to_json(), so a cache entry doubles as a reviewable,
// replayable artifact and any schema drift invalidates it through the
// version check in plan_from_json.
//
// Durability discipline:
//   - writes go to a unique temp file in the same directory, then
//     std::filesystem::rename() into place — atomic on POSIX, so readers
//     never observe a half-written entry;
//   - loads are corruption-tolerant: truncated, garbled, wrong-version,
//     or structurally invalid entries are reported as corrupt and treated
//     by the cache as a miss — never a crash, never a wrong plan (the
//     full plan_from_json validation gate runs on every load);
//   - I/O errors on store are swallowed into a `false` return: a broken
//     cache directory degrades the cache, not planning.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "src/api/session.h"
#include "src/cache/request_key.h"

namespace karma::cache {

class DiskStore {
 public:
  explicit DiskStore(std::string dir) : dir_(std::move(dir)) {}

  const std::string& dir() const { return dir_; }

  /// Path the entry for `key` lives at (whether or not it exists).
  std::string entry_path(const RequestKey& key) const;

  struct LoadResult {
    std::optional<api::Plan> plan;  ///< set on a valid hit
    bool corrupt = false;           ///< entry existed but failed validation
    /// Serialized artifact size of a valid hit — what the entry weighs in
    /// the memory level's byte-counted LRU when promoted.
    std::size_t serialized_bytes = 0;
  };

  /// Loads and fully validates the entry for `key`. An absent entry is a
  /// clean miss ({nullopt, false}); an unreadable one is corrupt.
  LoadResult load(const RequestKey& key) const;

  /// Atomically writes the entry (write temp + rename). Creates the
  /// directory on first use. Returns false on any I/O failure.
  bool store(const RequestKey& key, const api::Plan& plan);

  /// store() with the serialization already done (`json` must be the
  /// plan's exact to_json() bytes) — lets PlanCache serialize once for
  /// both the byte-counted LRU and the disk write.
  bool store_serialized(const RequestKey& key, const std::string& json);

 private:
  std::string dir_;
  /// Uniquifies temp names within a store; atomic so concurrent store()
  /// calls (PlanCache writes outside its lock) never share a temp file.
  std::atomic<std::uint64_t> write_seq_{0};
};

}  // namespace karma::cache
