// Persistent plan store: the on-disk level of the plan cache, shared
// across processes (DESIGN.md §10, §12).
//
// One entry per request key, named `<key-hex>.plan.json`, holding exactly
// the v2 plan JSON artifact (plan_io) — the same bytes Session would hand
// back from Plan::to_json(), so a cache entry doubles as a reviewable,
// replayable artifact and any schema drift invalidates it through the
// version check in plan_from_json.
//
// Cross-process discipline (PR 6 hardening):
//   - PUBLISH: writes go to a unique temp file in the same directory
//     (write + fsync the data), then rename() into place — atomic on
//     POSIX, so readers never observe a half-written entry — then fsync
//     the parent directory so a crash right after the rename cannot roll
//     the dirent back to an absent or torn entry. Publishes serialize on
//     a store-wide advisory flock (`.karma-store.lock`).
//   - READ: lock-free. Entries are immutable once published (a republish
//     of the same key renames an identical artifact over it), so readers
//     just open + mmap: the open fd pins the old inode even if a rename
//     replaces the dirent mid-read, and the artifact parses straight out
//     of the mapping (plan_from_json takes a view) with no copy and no
//     lock held. Corruption-tolerant: truncated, garbled, wrong-version,
//     or structurally invalid entries are reported corrupt and treated by
//     the cache as a miss — never a crash, never a wrong plan.
//   - SINGLE-FLIGHT: `<key-hex>.claim` files extend the Engine's
//     in-process single-flight across processes. A would-be searcher
//     try_claim()s the key: the winner (leader) holds an exclusive flock
//     on the claim file for the whole search and publishes the artifact
//     before releasing; everyone else wait_for_entry()s — deadline-aware
//     exponential backoff polling for the entry to appear OR the claim to
//     die (leader crashed: the kernel drops its flock; leader finished
//     without an artifact: it unlinked the claim). Either way exactly one
//     search per key runs fleet-wide while the leader lives.
//   - I/O errors on store are swallowed into a `false` return: a broken
//     cache directory degrades the cache, not planning.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "src/api/session.h"
#include "src/cache/request_key.h"
#include "src/util/cancel.h"

namespace karma::cache {

class DiskStore {
 public:
  explicit DiskStore(std::string dir) : dir_(std::move(dir)) {}

  const std::string& dir() const { return dir_; }

  /// Path the entry for `key` lives at (whether or not it exists).
  std::string entry_path(const RequestKey& key) const;

  /// Path of the key's single-flight claim file.
  std::string claim_path(const RequestKey& key) const;

  struct LoadResult {
    std::optional<api::Plan> plan;  ///< set on a valid hit
    bool corrupt = false;           ///< entry existed but failed validation
    /// Serialized artifact size of a valid hit — what the entry weighs in
    /// the memory level's byte-counted LRU when promoted.
    std::size_t serialized_bytes = 0;
  };

  /// Loads and fully validates the entry for `key`. An absent entry is a
  /// clean miss ({nullopt, false}); an unreadable one is corrupt.
  /// Lock-free (see READ above); safe against concurrent publishes.
  LoadResult load(const RequestKey& key) const;

  /// Atomically and durably publishes the entry (write temp + fsync +
  /// rename + fsync dir, under the store-wide write lock). Creates the
  /// directory on first use. Returns false on any I/O failure.
  bool store(const RequestKey& key, const api::Plan& plan);

  /// store() with the serialization already done (`json` must be the
  /// plan's exact to_json() bytes) — lets PlanCache serialize once for
  /// both the byte-counted LRU and the disk write.
  bool store_serialized(const RequestKey& key, const std::string& json);

  /// RAII fleet-wide search leadership for one key. Holding a Claim means
  /// every other process's try_claim for the key fails and its
  /// wait_for_entry blocks. release() (or destruction) unlinks the claim
  /// file BEFORE closing the locked fd, so a waiter can never observe the
  /// gap where the file exists but nobody holds the lock as anything but
  /// "leader gone". Movable, not copyable.
  class Claim {
   public:
    Claim() = default;
    Claim(Claim&& o) noexcept : fd_(o.fd_), path_(std::move(o.path_)) {
      o.fd_ = -1;
    }
    Claim& operator=(Claim&& o) noexcept;
    ~Claim() { release(); }
    Claim(const Claim&) = delete;
    Claim& operator=(const Claim&) = delete;

    bool held() const { return fd_ >= 0; }
    void release();

   private:
    friend class DiskStore;
    Claim(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
    int fd_ = -1;
    std::string path_;
  };

  /// Attempts to become the fleet-wide search leader for `key`.
  /// Non-blocking: nullopt = another live process holds the claim (wait
  /// for it) or claiming failed for I/O reasons (caller degrades to
  /// searching without fleet coordination — correctness never depends on
  /// the claim, only dedup does).
  std::optional<Claim> try_claim(const RequestKey& key);

  enum class WaitOutcome {
    kEntry,        ///< the entry exists now — re-lookup will hit
    kReleased,     ///< leader gone without an artifact (crashed, search
                   ///< infeasible/cancelled) — caller should retry claim
    kInterrupted,  ///< the caller's own CancelToken tripped
  };

  /// Blocks (exponential-backoff polling, 0.2ms..10ms) until the entry
  /// for `key` appears, the claim dies, or `control` trips. Pass an inert
  /// token to wait unbounded.
  WaitOutcome wait_for_entry(const RequestKey& key,
                             const CancelToken& control) const;

  /// Claim-file counters (process-local), for stats surfaces and tests.
  struct ClaimStats {
    std::uint64_t claims_won = 0;    ///< try_claim successes (led a search)
    std::uint64_t claims_lost = 0;   ///< try_claim found a live leader
    std::uint64_t waits_entry = 0;   ///< waits resolved by a published entry
    std::uint64_t waits_released = 0;///< waits resolved by a dead claim
  };
  ClaimStats claim_stats() const;

 private:
  bool ensure_dir();

  std::string dir_;
  /// Uniquifies temp names within a store; atomic so concurrent store()
  /// calls (PlanCache writes outside its lock) never share a temp file.
  std::atomic<std::uint64_t> write_seq_{0};
  std::atomic<std::uint64_t> claims_won_{0};
  std::atomic<std::uint64_t> claims_lost_{0};
  // mutable: waits are counted from the logically-const wait path.
  mutable std::atomic<std::uint64_t> waits_entry_{0};
  mutable std::atomic<std::uint64_t> waits_released_{0};
};

}  // namespace karma::cache
