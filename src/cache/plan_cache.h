// karma::cache::PlanCache — the two-level planning cache (DESIGN.md §10).
//
// Level 1 is an in-memory, thread-safe LRU of Plan artifacts keyed by
// RequestKey; level 2 is an optional persistent DiskStore sharing the
// same keys. Lookups consult memory first, then disk (a disk hit is
// promoted into memory so repeats stay cheap); inserts populate both
// unless the cache is read-only. Every outcome is counted: the stats are
// how benches, examples, and CI prove cold-vs-warm behavior.
//
// The cache never invents anything: entries are only what Session::plan
// produced, disk entries revalidate through the full plan_from_json gate
// on load, and a corrupt entry degrades to a miss — planning correctness
// cannot depend on cache health.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "src/api/session.h"
#include "src/cache/disk_store.h"
#include "src/cache/request_key.h"

namespace karma::cache {

struct CacheStats {
  std::uint64_t memory_hits = 0;     ///< served from the in-memory LRU
  std::uint64_t disk_hits = 0;       ///< served (and revalidated) from disk
  std::uint64_t misses = 0;          ///< neither level had a valid entry
  std::uint64_t insertions = 0;      ///< new entries accepted into memory
  std::uint64_t evictions = 0;       ///< LRU entries displaced by capacity
  std::uint64_t disk_writes = 0;     ///< entries atomically persisted
  std::uint64_t corrupt_entries = 0; ///< disk entries that failed validation

  std::uint64_t hits() const { return memory_hits + disk_hits; }
  std::uint64_t lookups() const { return hits() + misses; }

  /// One-line render for logs and examples, e.g.
  /// "memory_hits=1 disk_hits=0 misses=2 ...".
  std::string describe() const;
};

class PlanCache {
 public:
  struct Options {
    /// Max in-memory entries; 0 disables the memory level (disk-only).
    std::size_t memory_capacity = 64;
    /// Persistent store directory; empty = memory-only cache.
    std::string dir;
    /// Consult both levels but never mutate either: no inserts, no disk
    /// writes, and no disk-hit promotion into the LRU.
    bool read_only = false;
  };

  PlanCache() : PlanCache(Options{}) {}
  explicit PlanCache(Options options);

  /// Memory-then-disk lookup. A disk hit revalidates the artifact and
  /// promotes it into the LRU. Thread-safe.
  std::optional<api::Plan> lookup(const RequestKey& key);

  /// Inserts into memory and (when configured) persists to disk. No-op
  /// for read-only caches. Thread-safe.
  void insert(const RequestKey& key, const api::Plan& plan);

  /// Drops every in-memory entry (disk entries survive); stats persist.
  void clear();

  CacheStats stats() const;
  const Options& options() const { return options_; }

 private:
  using LruList = std::list<std::pair<RequestKey, api::Plan>>;

  /// Inserts or refreshes `key` in the LRU, evicting from the cold end.
  /// Returns whether the entry was stored (false when the memory level is
  /// disabled). Caller holds mu_.
  bool put_locked(const RequestKey& key, const api::Plan& plan);

  Options options_;
  std::unique_ptr<DiskStore> disk_;  ///< null when dir is empty

  mutable std::mutex mu_;
  LruList lru_;  ///< most-recently-used at the front
  std::unordered_map<RequestKey, LruList::iterator, RequestKeyHash> index_;
  CacheStats stats_;
};

}  // namespace karma::cache
