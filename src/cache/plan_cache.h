// karma::cache::PlanCache — the two-level planning cache (DESIGN.md §10,
// §11).
//
// Level 1 is an in-memory, thread-safe LRU of Plan artifacts keyed by
// RequestKey and capacity-bounded by RESIDENT BYTES — entries are whole
// serialized plan artifacts, so capacity counts what they actually weigh
// (their to_json size), not how many there are. Level 2 is an optional
// persistent DiskStore sharing the same keys. Lookups consult memory
// first, then disk (a disk hit is promoted into memory so repeats stay
// cheap); inserts populate both unless the cache is read-only. Every
// outcome is counted: the stats are how benches, examples, and CI prove
// cold-vs-warm behavior.
//
// Alongside the positive artifacts, the cache memoizes NEGATIVE results
// (DESIGN.md §11): an infeasible request's structured PlanError, keyed by
// the same RequestKey, so repeated probes of a hopeless configuration are
// answered without re-running the search + diagnosis. Negative entries
// are memory-only (small, cheap to recompute, and not artifacts worth
// persisting), count-capped, and never store interrupted outcomes
// (kCancelled/kDeadline are properties of one caller's patience, not of
// the request).
//
// The cache never invents anything: entries are only what the planning
// service produced, disk entries revalidate through the full
// plan_from_json gate on load, and a corrupt entry degrades to a miss —
// planning correctness cannot depend on cache health.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "src/api/session.h"
#include "src/cache/disk_store.h"
#include "src/cache/request_key.h"

namespace karma::cache {

struct CacheStats {
  std::uint64_t memory_hits = 0;     ///< served from the in-memory LRU
  std::uint64_t disk_hits = 0;       ///< served (and revalidated) from disk
  std::uint64_t misses = 0;          ///< neither level had a valid entry
  std::uint64_t insertions = 0;      ///< new entries accepted into memory
  std::uint64_t evictions = 0;       ///< LRU entries displaced by capacity
  std::uint64_t disk_writes = 0;     ///< entries atomically persisted
  std::uint64_t corrupt_entries = 0; ///< disk entries that failed validation
  /// Serialized bytes currently resident in the memory level — the gauge
  /// the byte-counted capacity bounds (<= Options::memory_capacity_bytes).
  std::uint64_t resident_bytes = 0;
  std::uint64_t negative_hits = 0;       ///< infeasibility served memoized
  std::uint64_t negative_insertions = 0; ///< PlanErrors memoized

  std::uint64_t hits() const { return memory_hits + disk_hits; }
  std::uint64_t lookups() const { return hits() + misses; }

  /// One-line render for logs and examples, e.g.
  /// "memory_hits=1 disk_hits=0 misses=2 ...".
  std::string describe() const;
};

class PlanCache {
 public:
  struct Options {
    /// Max serialized bytes resident in the memory level; an entry's
    /// weight is its to_json() size. 0 disables the memory level
    /// (disk-only); a single artifact larger than the whole capacity is
    /// not admitted.
    Bytes memory_capacity_bytes = 256ll * 1024 * 1024;
    /// Persistent store directory; empty = memory-only cache.
    std::string dir;
    /// Consult both levels but never mutate either: no inserts, no disk
    /// writes, and no disk-hit promotion into the LRU.
    bool read_only = false;
    /// Memoize structured infeasibility (lookup_negative/insert_negative);
    /// off = every infeasible request re-diagnoses.
    bool negative_cache = true;
    /// Max memoized PlanErrors (count-capped: negatives are small).
    std::size_t negative_capacity = 256;
  };

  PlanCache() : PlanCache(Options{}) {}
  explicit PlanCache(Options options);

  /// Memory-then-disk lookup. A disk hit revalidates the artifact and
  /// promotes it into the LRU. Thread-safe. `quiet` suppresses the miss /
  /// corruption counters (hits always count — they served a caller): the
  /// single-flight leader re-checks the cache right before searching, and
  /// that re-check must not double-count the miss its own prepare already
  /// recorded.
  std::optional<api::Plan> lookup(const RequestKey& key, bool quiet = false);

  /// Inserts into memory and (when configured) persists to disk. No-op
  /// for read-only caches. Thread-safe.
  void insert(const RequestKey& key, const api::Plan& plan);

  /// Memoized infeasibility for `key`, marked from_negative_cache. A hit
  /// requires the entry to satisfy the caller: an entry diagnosed without
  /// the feasible-batch bisection cannot answer a request that wants one
  /// (`want_probe`), and misses instead. Returns nullopt when negative
  /// caching is disabled.
  std::optional<api::PlanError> lookup_negative(const RequestKey& key,
                                                bool want_probe);

  /// Memoizes a diagnosis (`probed` = it includes bisection results).
  /// No-op when read-only, when negative caching is disabled, or for
  /// interrupted outcomes (kCancelled/kDeadline) — those are never
  /// request properties. Thread-safe.
  void insert_negative(const RequestKey& key, const api::PlanError& error,
                       bool probed);

  /// Drops every in-memory entry, positive and negative (disk entries
  /// survive); stats persist except the resident_bytes gauge.
  void clear();

  CacheStats stats() const;
  const Options& options() const { return options_; }

  /// The persistent level, null for memory-only caches. The Engine uses
  /// it directly for cross-process single-flight (claim files) — claims
  /// coordinate searches, not cache content, so they live beside the
  /// lookup/insert surface rather than inside it.
  DiskStore* disk() const { return disk_.get(); }

 private:
  struct Entry {
    RequestKey key;
    api::Plan plan;
    std::uint64_t bytes = 0;  ///< serialized (to_json) size
  };
  using LruList = std::list<Entry>;
  struct NegativeEntry {
    RequestKey key;
    api::PlanError error;
    bool probed = false;
  };
  using NegativeList = std::list<NegativeEntry>;

  /// Inserts or refreshes `key` in the LRU, evicting from the cold end
  /// until the byte capacity holds. Returns whether the entry is resident
  /// afterwards (false when the memory level is disabled or the artifact
  /// alone exceeds capacity). Caller holds mu_.
  bool put_locked(const RequestKey& key, const api::Plan& plan,
                  std::uint64_t bytes);

  Options options_;
  std::unique_ptr<DiskStore> disk_;  ///< null when dir is empty

  mutable std::mutex mu_;
  LruList lru_;  ///< most-recently-used at the front
  std::unordered_map<RequestKey, LruList::iterator, RequestKeyHash> index_;
  NegativeList negative_lru_;
  std::unordered_map<RequestKey, NegativeList::iterator, RequestKeyHash>
      negative_index_;
  CacheStats stats_;
};

}  // namespace karma::cache
