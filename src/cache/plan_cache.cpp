#include "src/cache/plan_cache.h"

#include <sstream>

namespace karma::cache {

std::string CacheStats::describe() const {
  std::ostringstream os;
  os << "memory_hits=" << memory_hits << " disk_hits=" << disk_hits
     << " misses=" << misses << " insertions=" << insertions
     << " evictions=" << evictions << " disk_writes=" << disk_writes
     << " corrupt_entries=" << corrupt_entries;
  return os.str();
}

PlanCache::PlanCache(Options options) : options_(std::move(options)) {
  if (!options_.dir.empty())
    disk_ = std::make_unique<DiskStore>(options_.dir);
}

bool PlanCache::put_locked(const RequestKey& key, const api::Plan& plan) {
  if (options_.memory_capacity == 0) return false;
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Refresh: move to the hot end, replace the payload.
    lru_.splice(lru_.begin(), lru_, it->second);
    lru_.begin()->second = plan;
    return true;
  }
  lru_.emplace_front(key, plan);
  index_.emplace(key, lru_.begin());
  while (lru_.size() > options_.memory_capacity) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
  return true;
}

std::optional<api::Plan> PlanCache::lookup(const RequestKey& key) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      ++stats_.memory_hits;
      lru_.splice(lru_.begin(), lru_, it->second);
      return lru_.begin()->second;
    }
  }
  // Disk I/O and JSON revalidation run outside the lock so concurrent
  // memory hits never wait on a slow load. Two threads may race the same
  // load; both parse identical bytes, so the duplicate work is benign.
  if (disk_) {
    DiskStore::LoadResult loaded = disk_->load(key);
    std::lock_guard<std::mutex> lock(mu_);
    if (loaded.corrupt) ++stats_.corrupt_entries;
    if (loaded.plan) {
      ++stats_.disk_hits;
      // Promote so repeated lookups skip the parse. Not counted as an
      // insertion: nothing new entered the cache. Read-only caches never
      // mutate any level, so they re-parse on every disk hit instead.
      if (!options_.read_only) put_locked(key, *loaded.plan);
      return std::move(loaded.plan);
    }
    ++stats_.misses;
    return std::nullopt;
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.misses;
  return std::nullopt;
}

void PlanCache::insert(const RequestKey& key, const api::Plan& plan) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (options_.read_only) return;
    // insertions counts entries actually accepted into the memory level;
    // a disk-only cache (memory_capacity 0) reports disk_writes instead.
    if (put_locked(key, plan)) ++stats_.insertions;
  }
  // Serialization + the atomic write happen outside the lock (DiskStore
  // keeps its own state race-free); only the counter update re-locks.
  if (disk_ && disk_->store(key, plan)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.disk_writes;
  }
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

CacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace karma::cache
