#include "src/cache/plan_cache.h"

#include <sstream>

namespace karma::cache {

std::string CacheStats::describe() const {
  std::ostringstream os;
  os << "memory_hits=" << memory_hits << " disk_hits=" << disk_hits
     << " misses=" << misses << " insertions=" << insertions
     << " evictions=" << evictions << " disk_writes=" << disk_writes
     << " corrupt_entries=" << corrupt_entries
     << " resident_bytes=" << resident_bytes
     << " negative_hits=" << negative_hits
     << " negative_insertions=" << negative_insertions;
  return os.str();
}

PlanCache::PlanCache(Options options) : options_(std::move(options)) {
  if (!options_.dir.empty())
    disk_ = std::make_unique<DiskStore>(options_.dir);
}

bool PlanCache::put_locked(const RequestKey& key, const api::Plan& plan,
                           std::uint64_t bytes) {
  const auto capacity = static_cast<std::uint64_t>(
      options_.memory_capacity_bytes > 0 ? options_.memory_capacity_bytes : 0);
  if (capacity == 0) return false;
  if (bytes > capacity) return false;  // artifact alone exceeds the level
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Refresh: move to the hot end, replace the payload and its weight.
    lru_.splice(lru_.begin(), lru_, it->second);
    stats_.resident_bytes -= lru_.begin()->bytes;
    stats_.resident_bytes += bytes;
    lru_.begin()->plan = plan;
    lru_.begin()->bytes = bytes;
  } else {
    lru_.push_front(Entry{key, plan, bytes});
    index_.emplace(key, lru_.begin());
    stats_.resident_bytes += bytes;
  }
  // Evict cold entries until the bytes fit; the refreshed/new entry sits
  // at the hot end and is never its own victim.
  while (stats_.resident_bytes > capacity && lru_.size() > 1) {
    stats_.resident_bytes -= lru_.back().bytes;
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
  return true;
}

std::optional<api::Plan> PlanCache::lookup(const RequestKey& key,
                                           bool quiet) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      ++stats_.memory_hits;
      lru_.splice(lru_.begin(), lru_, it->second);
      return lru_.begin()->plan;
    }
  }
  // Disk I/O and JSON revalidation run outside the lock so concurrent
  // memory hits never wait on a slow load. Two threads may race the same
  // load; both parse identical bytes, so the duplicate work is benign.
  if (disk_) {
    DiskStore::LoadResult loaded = disk_->load(key);
    std::lock_guard<std::mutex> lock(mu_);
    if (loaded.corrupt && !quiet) ++stats_.corrupt_entries;
    if (loaded.plan) {
      ++stats_.disk_hits;
      // Promote so repeated lookups skip the parse. Not counted as an
      // insertion: nothing new entered the cache. Read-only caches never
      // mutate any level, so they re-parse on every disk hit instead.
      if (!options_.read_only)
        put_locked(key, *loaded.plan, loaded.serialized_bytes);
      return std::move(loaded.plan);
    }
    if (!quiet) ++stats_.misses;
    return std::nullopt;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (!quiet) ++stats_.misses;
  return std::nullopt;
}

void PlanCache::insert(const RequestKey& key, const api::Plan& plan) {
  // One serialization feeds both levels: the LRU's byte accounting and
  // the disk write. Runs outside the lock (it can be milliseconds on
  // deep plans).
  if (options_.read_only) return;
  const std::string json = plan.to_json();
  {
    std::lock_guard<std::mutex> lock(mu_);
    // insertions counts entries actually accepted into the memory level;
    // a disk-only cache (memory_capacity_bytes 0) reports disk_writes
    // instead.
    if (put_locked(key, plan, json.size())) ++stats_.insertions;
  }
  // The atomic write happens outside the lock (DiskStore keeps its own
  // state race-free); only the counter update re-locks.
  if (disk_ && disk_->store_serialized(key, json)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.disk_writes;
  }
}

std::optional<api::PlanError> PlanCache::lookup_negative(const RequestKey& key,
                                                         bool want_probe) {
  if (!options_.negative_cache) return std::nullopt;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = negative_index_.find(key);
  if (it == negative_index_.end()) return std::nullopt;
  // An unprobed diagnosis cannot answer a caller who asked for the
  // feasible-batch bisection; the re-diagnosis will overwrite the entry
  // with the richer result.
  if (want_probe && !it->second->probed) return std::nullopt;
  ++stats_.negative_hits;
  negative_lru_.splice(negative_lru_.begin(), negative_lru_, it->second);
  api::PlanError error = negative_lru_.begin()->error;
  error.from_negative_cache = true;
  return error;
}

void PlanCache::insert_negative(const RequestKey& key,
                                const api::PlanError& error, bool probed) {
  if (!options_.negative_cache || options_.read_only) return;
  if (options_.negative_capacity == 0) return;
  // Interrupted outcomes describe one caller's patience, not the request
  // (and internal errors describe a bug): memoizing them would poison
  // later (uncancelled) callers.
  if (error.code == api::PlanErrorCode::kCancelled ||
      error.code == api::PlanErrorCode::kDeadline ||
      error.code == api::PlanErrorCode::kInternalError)
    return;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = negative_index_.find(key);
  if (it != negative_index_.end()) {
    negative_lru_.splice(negative_lru_.begin(), negative_lru_, it->second);
    negative_lru_.begin()->error = error;
    negative_lru_.begin()->probed = probed;
    return;
  }
  negative_lru_.push_front(NegativeEntry{key, error, probed});
  negative_index_.emplace(key, negative_lru_.begin());
  ++stats_.negative_insertions;
  while (negative_lru_.size() > options_.negative_capacity) {
    negative_index_.erase(negative_lru_.back().key);
    negative_lru_.pop_back();
  }
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  negative_lru_.clear();
  negative_index_.clear();
  stats_.resident_bytes = 0;
}

CacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace karma::cache
