#include "src/baselines/strategies.h"

#include <algorithm>
#include <cmath>

#include "src/api/engine.h"

#include "src/graph/memory_model.h"

namespace karma::baselines {
namespace {

using core::BlockPolicy;
using core::ScheduleOptions;
using sim::Block;

/// Per-layer blocks grouped at clean cut points: the layer-wise methods
/// (vDNN++, ooc_cuDNN, SuperNeurons) operate at layer granularity, but a
/// residual block's interior is not independently swappable (the skip edge
/// pins the entry activation), so we use the finest clean partition.
std::vector<Block> finest_blocks(const graph::Model& model) {
  const auto cuts = core::candidate_cut_points(model);
  std::vector<Block> blocks;
  for (std::size_t i = 0; i + 1 < cuts.size(); ++i)
    blocks.push_back({cuts[i], cuts[i + 1]});
  return blocks;
}

std::optional<PlanResult> evaluate(const graph::Model& model,
                                   const sim::DeviceSpec& device,
                                   const std::vector<Block>& blocks,
                                   const std::vector<BlockPolicy>& policies,
                                   const std::string& name,
                                   const ScheduleOptions& options) {
  core::PlannerOptions popt;
  popt.schedule = options;
  const core::KarmaPlanner planner(model, device, popt);
  return planner.evaluate(blocks, policies, name);
}

/// True if the layer range contains any weight-bearing heavy layer; the
/// SuperNeurons swap-vs-recompute split keys on layer type.
bool has_heavy_layer(const graph::Model& model, const Block& b) {
  for (int i = b.first_layer; i < b.last_layer; ++i)
    if (!graph::is_cheap_to_recompute(model.layer(i).kind)) return true;
  return false;
}

}  // namespace

std::optional<PlanResult> plan_incore(const graph::Model& model,
                                      const sim::DeviceSpec& device) {
  if (graph::in_core_footprint(model) > device.memory_capacity)
    return std::nullopt;
  const auto blocks = finest_blocks(model);
  const std::vector<BlockPolicy> policies(blocks.size(),
                                          BlockPolicy::kResident);
  return evaluate(model, device, blocks, policies, "in-core", {});
}

std::optional<PlanResult> plan_vdnnpp(const graph::Model& model,
                                      const sim::DeviceSpec& device) {
  // Eager strategy (Fig. 2a): swap out after every block, tail included;
  // backward prefetch has one block of lookahead.
  const auto blocks = finest_blocks(model);
  const std::vector<BlockPolicy> policies(blocks.size(), BlockPolicy::kSwap);
  ScheduleOptions options;
  options.prefetch_window = 2;  // Sin(b) launches as B(b+1) starts
  return evaluate(model, device, blocks, policies, "vDNN++", options);
}

std::optional<PlanResult> plan_ooc_cudnn(const graph::Model& model,
                                         const sim::DeviceSpec& device) {
  // Synchronous per-layer swaps, no prefetch: a block's swap-in starts
  // only when the preceding backward has fully completed.
  const auto blocks = finest_blocks(model);
  const std::vector<BlockPolicy> policies(blocks.size(), BlockPolicy::kSwap);
  ScheduleOptions options;
  options.prefetch_window = 1;
  return evaluate(model, device, blocks, policies, "ooc_cuDNN", options);
}

std::optional<PlanResult> plan_superneurons(const graph::Model& model,
                                            const sim::DeviceSpec& device) {
  // Type-based split, no cost model (Sec. II-A.3): blocks containing conv
  // or other GEMM-heavy layers are swapped; cheap blocks are recomputed.
  const auto blocks = finest_blocks(model);
  std::vector<BlockPolicy> policies;
  policies.reserve(blocks.size());
  for (const auto& b : blocks)
    policies.push_back(has_heavy_layer(model, b) ? BlockPolicy::kSwap
                                                 : BlockPolicy::kRecompute);
  // The very first block feeds every recompute chain; SuperNeurons keeps
  // inputs resident.
  if (!policies.empty()) policies.front() = BlockPolicy::kResident;
  ScheduleOptions options;
  options.prefetch_window = 2;
  return evaluate(model, device, blocks, policies, "SuperNeurons", options);
}

std::optional<PlanResult> plan_checkpointing(const graph::Model& model,
                                             const sim::DeviceSpec& device) {
  // sqrt(N) uniform segments, everything recomputed from checkpoints.
  const auto cuts = core::candidate_cut_points(model);
  const int segments = std::max(
      2, static_cast<int>(std::lround(std::sqrt(
             static_cast<double>(model.num_layers())))));
  core::PlannerOptions popt;
  const core::KarmaPlanner planner(model, device, popt);
  // Reuse the planner's balanced boundary picking via candidate search:
  // uniform over clean cuts.
  std::vector<int> boundary;
  const auto n = cuts.size();
  for (int k = 0; k <= segments; ++k)
    boundary.push_back(
        cuts[std::min(n - 1, static_cast<std::size_t>(k) * (n - 1) /
                                 static_cast<std::size_t>(segments))]);
  boundary.erase(std::unique(boundary.begin(), boundary.end()),
                 boundary.end());
  std::vector<Block> blocks;
  for (std::size_t i = 0; i + 1 < boundary.size(); ++i)
    blocks.push_back({boundary[i], boundary[i + 1]});
  std::vector<BlockPolicy> policies(blocks.size(), BlockPolicy::kRecompute);
  // The last segment is consumed first in backward; keeping it resident
  // is what every checkpointing implementation does.
  policies.back() = BlockPolicy::kResident;
  return evaluate(model, device, blocks, policies, "GradCheckpoint", {});
}

std::optional<PlanResult> plan_checkmate(const graph::Model& model,
                                         const sim::DeviceSpec& device) {
  // Checkmate solves optimal rematerialization with an ILP. For a chain
  // at block granularity the optimum over contiguous-segment remat can be
  // found exactly by scanning checkpoint densities; we keep the best
  // feasible one (no swapping — Checkmate is a pure-recompute method).
  std::optional<PlanResult> best;
  const auto cuts = core::candidate_cut_points(model);
  const int max_segments =
      std::min<int>(64, static_cast<int>(cuts.size()) - 1);
  for (int segments = 2; segments <= max_segments; ++segments) {
    std::vector<int> boundary;
    const auto n = cuts.size();
    for (int k = 0; k <= segments; ++k)
      boundary.push_back(
          cuts[std::min(n - 1, static_cast<std::size_t>(k) * (n - 1) /
                                   static_cast<std::size_t>(segments))]);
    boundary.erase(std::unique(boundary.begin(), boundary.end()),
                   boundary.end());
    if (boundary.size() < 3) continue;
    std::vector<Block> blocks;
    for (std::size_t i = 0; i + 1 < boundary.size(); ++i)
      blocks.push_back({boundary[i], boundary[i + 1]});
    std::vector<BlockPolicy> policies(blocks.size(), BlockPolicy::kRecompute);
    policies.back() = BlockPolicy::kResident;
    auto result = evaluate(model, device, blocks, policies, "Checkmate", {});
    if (result && (!best || result->iteration_time < best->iteration_time))
      best = std::move(result);
  }
  return best;
}

std::optional<PlanResult> plan_um_naive(const graph::Model& model,
                                        const sim::DeviceSpec& device) {
  // Demand paging: no prefetch (window 1, like ooc_cuDNN) and every
  // transfer runs at fault-handling bandwidth. NVIDIA's UM page-fault
  // path sustains roughly a third of pinned-copy bandwidth with ~40 us
  // service latency per fault burst.
  sim::DeviceSpec um = device;
  um.h2d_bw /= 3.0;
  um.d2h_bw /= 3.0;
  um.swap_latency += 40e-6;
  const auto blocks = finest_blocks(model);
  const std::vector<BlockPolicy> policies(blocks.size(), BlockPolicy::kSwap);
  ScheduleOptions options;
  options.prefetch_window = 1;
  return evaluate(model, um, blocks, policies, "UM-naive", options);
}

namespace {

/// The KARMA rows go through the api::Session facade (the one planning
/// door); baselines keep the legacy optional<PlanResult> signature so the
/// figure drivers can tabulate every strategy uniformly.
std::optional<PlanResult> plan_karma_via_session(const graph::Model& model,
                                                 const sim::DeviceSpec& device,
                                                 bool recompute) {
  api::PlanRequest request;
  request.model = model;
  request.device = device;
  request.planner.enable_recompute = recompute;
  request.probe_feasible_batch = false;  // figure grids probe many cells
  const auto plan = api::Engine::create()->session().plan(request);
  if (!plan) return std::nullopt;
  return plan->to_plan_result();
}

}  // namespace

std::optional<PlanResult> plan_karma(const graph::Model& model,
                                     const sim::DeviceSpec& device) {
  return plan_karma_via_session(model, device, /*recompute=*/false);
}

std::optional<PlanResult> plan_karma_recompute(const graph::Model& model,
                                               const sim::DeviceSpec& device) {
  return plan_karma_via_session(model, device, /*recompute=*/true);
}

const std::vector<StrategyEntry>& all_strategies() {
  static const std::vector<StrategyEntry> entries = {
      {"in-core", &plan_incore},
      {"UM-naive", &plan_um_naive},
      {"vDNN++", &plan_vdnnpp},
      {"ooc_cuDNN", &plan_ooc_cudnn},
      {"SuperNeurons", &plan_superneurons},
      {"GradCheckpoint", &plan_checkpointing},
      {"Checkmate", &plan_checkmate},
      {"KARMA", &plan_karma},
      {"KARMA+recompute", &plan_karma_recompute},
  };
  return entries;
}

}  // namespace karma::baselines
