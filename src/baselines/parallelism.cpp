#include "src/baselines/parallelism.h"

#include <algorithm>
#include <stdexcept>

#include "src/graph/cost_model.h"

namespace karma::baselines {
namespace {

/// Total forward+backward FLOPs for one iteration of the decoder stack at
/// the given batch, from the same analytic cost model the planner uses.
Flops iteration_flops(const graph::TransformerConfig& cfg,
                      std::int64_t batch) {
  const graph::Model model = graph::make_transformer(cfg, batch);
  return graph::range_total_flops(model, 0,
                                  static_cast<int>(model.num_layers()));
}

}  // namespace

HybridCost megatron_hybrid_cost(const HybridConfig& config,
                                const sim::DeviceSpec& device,
                                const net::NetSpec& net) {
  if (config.mp_ways < 1 || config.num_gpus < config.mp_ways)
    throw std::invalid_argument("megatron_hybrid_cost: bad mp/num_gpus");
  const int dp_groups = config.num_gpus / config.mp_ways;
  const auto& m = config.model;

  HybridCost cost;
  cost.samples_per_iteration =
      static_cast<std::int64_t>(dp_groups) * config.batch_per_group;

  // Compute: the whole stack's FLOPs divided over the MP slice.
  const Flops flops = iteration_flops(m, config.batch_per_group);
  const double eff =
      device.efficiency(graph::LayerKind::kFullyConnected) *
      (config.mp_ways > 1 ? config.mp_efficiency : 1.0);
  cost.compute = flops / (static_cast<double>(config.mp_ways) *
                          (eff * device.peak_flops));

  // MP communication: 2 forward + 2 backward activation AllReduces per
  // transformer layer over the MP group (NVLink ring), each of size
  // batch * seq * hidden.
  if (config.mp_ways > 1) {
    const Bytes act_bytes = static_cast<Bytes>(config.batch_per_group) *
                            m.seq_len * m.hidden * m.dtype_bytes;
    const Seconds one = net::ring_allreduce_time(
        act_bytes, config.mp_ways, net.intra_bw, net.intra_latency);
    cost.mp_comm = 4.0 * static_cast<double>(m.layers) * one;
  }

  // DP communication: gradient AllReduce of the per-rank parameter shard
  // (params / mp) across the dp_groups ranks over the cluster fabric.
  if (dp_groups > 1) {
    const Bytes grad_bytes = static_cast<Bytes>(
        m.approx_params() / config.mp_ways * m.dtype_bytes);
    const Seconds full =
        net::hierarchical_allreduce_time(net, dp_groups, grad_bytes);
    if (config.phased_exchange) {
      // Phased exchange hides the transfer behind the backward pass
      // (about 2/3 of compute); only the remainder is exposed.
      const Seconds backward_window = cost.compute * (2.0 / 3.0);
      cost.dp_comm = std::max(0.0, full - backward_window) + 0.05 * full;
    } else {
      cost.dp_comm = full;
    }
  }

  cost.iteration = cost.compute + cost.mp_comm + cost.dp_comm;
  return cost;
}

HybridCost zero_cost(const HybridConfig& config, const sim::DeviceSpec& device,
                     const net::NetSpec& net) {
  // ZeRO stage 2: compute and gradient volume as plain DP; the
  // partitioned optimizer update adds a parameter all-gather, modeled as
  // a 1.5x factor on the exchange, partially overlapped.
  HybridConfig base = config;
  base.phased_exchange = false;
  HybridCost cost = megatron_hybrid_cost(base, device, net);
  cost.dp_comm *= 1.5;
  // DeepSpeed overlaps the reduce with backward; expose 60%.
  cost.dp_comm *= 0.6;
  cost.iteration = cost.compute + cost.mp_comm + cost.dp_comm;
  return cost;
}

double epoch_hours(const HybridCost& cost, std::int64_t samples_per_epoch) {
  if (cost.samples_per_iteration <= 0)
    throw std::invalid_argument("epoch_hours: no samples per iteration");
  const double iterations = static_cast<double>(samples_per_epoch) /
                            static_cast<double>(cost.samples_per_iteration);
  return iterations * cost.iteration / 3600.0;
}

}  // namespace karma::baselines
