// Analytic cost models for the large-scale parallelism baselines of
// Table IV and Fig. 8:
//
//  - Megatron-LM's tensor model parallelism (MP) + data parallelism (DP)
//    hybrid [3]: each transformer layer's GEMMs are sliced across `mp`
//    GPUs inside a node, requiring two activation AllReduces per layer in
//    the forward pass and two in the backward pass over NVLink; gradient
//    AllReduce across DP groups goes over InfiniBand.
//  - The paper's optimized variant ("Opt. Gradient Ex."): same compute,
//    but the DP gradient exchange is phased and overlapped with backward
//    compute, so only the non-overlappable remainder is exposed.
//  - ZeRO [4]: optimizer-state/gradient partitioning across DP ranks (we
//    model stage 2): compute identical to DP, gradient exchange volume
//    identical to an AllReduce, plus a fixed efficiency factor for the
//    partitioned update gather.
//
// These are deliberately *cost models*, not simulations: the baselines'
// behaviour is fully determined by compute/communication volumes, and the
// paper's own comparison is at that granularity (time per epoch).
#pragma once

#include "src/graph/model_zoo.h"
#include "src/net/collective.h"
#include "src/sim/device.h"

namespace karma::baselines {

struct HybridConfig {
  graph::TransformerConfig model;
  int num_gpus = 16;              ///< total GPUs
  int mp_ways = 1;                ///< tensor-parallel group size
  std::int64_t batch_per_group = 8;  ///< samples per MP group per iteration
  bool phased_exchange = false;   ///< overlap DP gradient AllReduce
  /// Efficiency of sliced GEMMs relative to full-size ones (smaller
  /// matrices, more kernel launches).
  double mp_efficiency = 0.85;
};

struct HybridCost {
  Seconds compute = 0.0;
  Seconds mp_comm = 0.0;       ///< per-layer activation AllReduces (NVLink)
  Seconds dp_comm = 0.0;       ///< gradient AllReduce (exposed part)
  Seconds iteration = 0.0;     ///< total per-iteration time
  std::int64_t samples_per_iteration = 0;
};

/// Megatron-LM MP(+DP) hybrid per-iteration cost.
HybridCost megatron_hybrid_cost(const HybridConfig& config,
                                const sim::DeviceSpec& device,
                                const net::NetSpec& net);

/// ZeRO (stage-2) data parallelism with optional MP: Turing-NLG's
/// reference implementation.
HybridCost zero_cost(const HybridConfig& config, const sim::DeviceSpec& device,
                     const net::NetSpec& net);

/// Convenience: hours to process `samples_per_epoch` samples at the given
/// per-iteration cost.
double epoch_hours(const HybridCost& cost, std::int64_t samples_per_epoch);

}  // namespace karma::baselines
