// The comparison strategies of the paper's evaluation (Fig. 5 / Fig. 6 /
// Table I), each compiled to the same Plan IR and replayed by the same
// engine as KARMA, so differences in throughput come only from the
// strategies themselves:
//
//  - in-core:       no swapping; infeasible beyond device capacity.
//  - vDNN++ [10]:   eager layer-wise swap-out of *everything* (including
//                   the tail — the Fig. 2a inefficiency) with one-block
//                   lookahead prefetch in the backward pass.
//  - ooc_cuDNN [11]: per-layer synchronous swap, no prefetch (swapping is
//                   "limited to the scope of a single layer").
//  - SuperNeurons [12]: type-based policy — conv/FC activations are
//                   swapped, cheap layers (BN/ReLU/pool/...) recomputed —
//                   with no cost model or capacity awareness.
//  - gradient checkpointing [16]: sqrt(N) uniform checkpoints, pure
//                   recompute, no swapping.
//  - Checkmate [20]: cost-model-driven *optimal* rematerialization under
//                   the memory budget; our proxy searches checkpoint
//                   densities exactly (contiguous-segment remat), which is
//                   optimal for chain-structured models at block
//                   granularity.
#pragma once

#include <optional>
#include <string>

#include "src/core/planner.h"

namespace karma::baselines {

using core::PlanResult;

/// In-core baseline. nullopt when the model does not fit.
std::optional<PlanResult> plan_incore(const graph::Model& model,
                                      const sim::DeviceSpec& device);

std::optional<PlanResult> plan_vdnnpp(const graph::Model& model,
                                      const sim::DeviceSpec& device);

std::optional<PlanResult> plan_ooc_cudnn(const graph::Model& model,
                                         const sim::DeviceSpec& device);

std::optional<PlanResult> plan_superneurons(const graph::Model& model,
                                            const sim::DeviceSpec& device);

std::optional<PlanResult> plan_checkpointing(const graph::Model& model,
                                             const sim::DeviceSpec& device);

std::optional<PlanResult> plan_checkmate(const graph::Model& model,
                                         const sim::DeviceSpec& device);

/// CUDA Unified Memory without explicit prefetching (OC-DNN [9] /
/// UM-naive): demand paging serves each swap at page-fault-degraded
/// bandwidth. Several works (and the paper's Sec. II-A) report this
/// performing well below dedicated out-of-core methods — this baseline
/// quantifies why.
std::optional<PlanResult> plan_um_naive(const graph::Model& model,
                                        const sim::DeviceSpec& device);

/// KARMA without the recompute interleave (capacity-based swapping only).
std::optional<PlanResult> plan_karma(const graph::Model& model,
                                     const sim::DeviceSpec& device);

/// Full KARMA (capacity-based swapping + interleaved recompute).
std::optional<PlanResult> plan_karma_recompute(const graph::Model& model,
                                               const sim::DeviceSpec& device);

/// All of the above keyed by the names used in the paper's figures.
struct StrategyEntry {
  const char* name;
  std::optional<PlanResult> (*plan)(const graph::Model&,
                                    const sim::DeviceSpec&);
};
/// Order matches the Fig. 5 legend.
const std::vector<StrategyEntry>& all_strategies();

}  // namespace karma::baselines
