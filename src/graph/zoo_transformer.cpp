// GPT-2-family decoder stacks: the Megatron-LM configurations of Table IV
// and Turing-NLG. Each transformer block is decomposed into the layers
// Megatron itself executes, so per-layer FLOPs and activation footprints
// track the real workload: LN -> QKV projection -> attention core ->
// softmax -> output projection -> residual add -> LN -> MLP(4H) -> GeLU ->
// MLP(H) -> residual add.
#include <stdexcept>
#include <string>

#include "src/graph/model_zoo.h"

namespace karma::graph {

TransformerConfig megatron_config(int index) {
  // Table IV rows: H, A, L, parameter count.
  switch (index) {
    case 0: return {.hidden = 1152, .heads = 12, .layers = 18};   // 0.7B
    case 1: return {.hidden = 1536, .heads = 16, .layers = 40};   // 1.2B
    case 2: return {.hidden = 1920, .heads = 20, .layers = 54};   // 2.5B
    case 3: return {.hidden = 2304, .heads = 24, .layers = 64};   // 4.2B
    case 4: return {.hidden = 3072, .heads = 32, .layers = 72};   // 8.3B
    default:
      throw std::out_of_range("megatron_config: index must be 0..4");
  }
}

TransformerConfig turing_nlg_config() {
  return {.hidden = 4256, .heads = 28, .layers = 78};  // 17B
}

namespace {

struct TfCursor {
  Model* model;
  std::int64_t n, s, h;
  int last = -1;

  TensorShape shape(std::int64_t hidden) const {
    return TensorShape::nsh(n, s, hidden);
  }

  int fc(std::int64_t out_h, const std::string& name) {
    Layer l;
    l.name = name;
    l.kind = LayerKind::kFullyConnected;
    l.in_shape = shape(h);
    l.weight_elems = h * out_h + out_h;
    h = out_h;
    l.out_shape = shape(h);
    return last = model->add_layer(std::move(l));
  }

  int simple(LayerKind kind, const std::string& name,
             std::int64_t weight_elems = 0) {
    Layer l;
    l.name = name;
    l.kind = kind;
    l.in_shape = l.out_shape = shape(h);
    l.weight_elems = weight_elems;
    return last = model->add_layer(std::move(l));
  }
};

/// Shared builder: `chain` omits the residual skip edges (the kAdd layers
/// stay, so layer count and per-layer costs are identical), producing a
/// linear-chain twin whose every block boundary is a clean cut.
Model build_transformer(const TransformerConfig& cfg, std::int64_t batch,
                        bool chain) {
  if (cfg.hidden <= 0 || cfg.heads <= 0 || cfg.layers <= 0)
    throw std::invalid_argument("make_transformer: bad config");
  if (cfg.hidden % cfg.heads != 0)
    throw std::invalid_argument("make_transformer: hidden % heads != 0");

  const std::int64_t params_b = cfg.approx_params() / 1000000000;
  Model model("GPT2-" + std::to_string(cfg.hidden) + "h" +
                  std::to_string(cfg.layers) + "L (~" +
                  std::to_string(params_b) + "B)" +
                  (chain ? " chain" : ""),
              cfg.dtype_bytes);
  TfCursor t{&model, batch, cfg.seq_len, cfg.hidden};

  Layer input;
  input.name = "input_ids";
  input.kind = LayerKind::kInput;
  input.in_shape = input.out_shape = TensorShape::nsh(batch, cfg.seq_len, 1);
  t.last = model.add_layer(std::move(input));

  // Token + position embeddings.
  {
    Layer emb;
    emb.name = "embedding";
    emb.kind = LayerKind::kEmbedding;
    emb.vocab = cfg.vocab;
    emb.in_shape = TensorShape::nsh(batch, cfg.seq_len, 1);
    emb.out_shape = t.shape(cfg.hidden);
    emb.weight_elems = (cfg.vocab + cfg.seq_len) * cfg.hidden;
    t.last = model.add_layer(std::move(emb));
  }

  const std::int64_t head_dim = cfg.hidden / cfg.heads;
  for (std::int64_t i = 0; i < cfg.layers; ++i) {
    const std::string p = "block" + std::to_string(i + 1);
    const int block_entry = t.last;

    t.simple(LayerKind::kLayerNorm, p + ".ln1", 2 * cfg.hidden);
    t.fc(3 * cfg.hidden, p + ".attn.qkv");
    {
      Layer attn;
      attn.name = p + ".attn.core";
      attn.kind = LayerKind::kSelfAttention;
      attn.heads = cfg.heads;
      attn.head_dim = head_dim;
      attn.in_shape = TensorShape::nsh(batch, cfg.seq_len, cfg.hidden);
      attn.out_shape = attn.in_shape;
      t.h = cfg.hidden;
      t.last = model.add_layer(std::move(attn));
    }
    t.simple(LayerKind::kSoftmax, p + ".attn.softmax");
    t.fc(cfg.hidden, p + ".attn.proj");
    t.simple(LayerKind::kDropout, p + ".attn.dropout");
    {
      const int add = t.simple(LayerKind::kAdd, p + ".attn.residual");
      if (!chain) model.add_edge(block_entry, add);
    }
    const int mid_entry = t.last;
    t.simple(LayerKind::kLayerNorm, p + ".ln2", 2 * cfg.hidden);
    t.fc(4 * cfg.hidden, p + ".mlp.fc1");
    t.simple(LayerKind::kGeLU, p + ".mlp.gelu");
    t.fc(cfg.hidden, p + ".mlp.fc2");
    t.simple(LayerKind::kDropout, p + ".mlp.dropout");
    {
      const int add = t.simple(LayerKind::kAdd, p + ".mlp.residual");
      if (!chain) model.add_edge(mid_entry, add);
    }
  }

  t.simple(LayerKind::kLayerNorm, "final.ln", 2 * cfg.hidden);
  // LM head shares the embedding matrix (weight tying): count the compute
  // but not a second copy of the weights.
  {
    Layer head;
    head.name = "final.lm_head";
    head.kind = LayerKind::kFullyConnected;
    head.in_shape = t.shape(cfg.hidden);
    head.out_shape = TensorShape::nsh(batch, cfg.seq_len, cfg.vocab);
    head.weight_elems = 0;  // tied with embedding
    t.last = model.add_layer(std::move(head));
  }
  {
    Layer sm;
    sm.name = "final.softmax";
    sm.kind = LayerKind::kSoftmax;
    sm.in_shape = sm.out_shape = TensorShape::nsh(batch, cfg.seq_len, cfg.vocab);
    model.add_layer(std::move(sm));
  }

  model.validate();
  return model;
}

}  // namespace

Model make_transformer(const TransformerConfig& cfg, std::int64_t batch) {
  return build_transformer(cfg, batch, /*chain=*/false);
}

Model make_transformer_chain(const TransformerConfig& cfg,
                             std::int64_t batch) {
  return build_transformer(cfg, batch, /*chain=*/true);
}

}  // namespace karma::graph
