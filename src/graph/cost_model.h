// Analytic compute-cost model (paper Sec. III-C).
//
// The paper uses the aggregate number of arithmetic operations per layer as
// the proxy for block compute cost, with per-kind formulas. We implement
// those formulas literally (see the .cpp for the two places where we note a
// dimensional quirk in the paper's own equation and what we do about it).
// Backward cost follows the standard convention: roughly twice the forward
// cost for weighted layers (grad w.r.t. input + grad w.r.t. weights), equal
// for element-wise layers.
#pragma once

#include "src/graph/layer.h"
#include "src/graph/model.h"
#include "src/util/units.h"

namespace karma::graph {

/// Forward-pass arithmetic operations of one layer at its stored batch.
Flops forward_flops(const Layer& layer);

/// Backward-pass operations (input-grad + weight-grad).
Flops backward_flops(const Layer& layer);

/// The paper's verbatim self-attention estimate 4*dk^3 + dk^2 + 2*dk
/// (Sec. III-C.6). Exposed for fidelity tests; the zoo's transformer
/// blocks are decomposed into FC + attention-core layers instead, which is
/// both more accurate and what Megatron itself does.
Flops attention_paper_ops(std::int64_t dk);

/// Sum of forward (or forward+backward) FLOPs over a half-open layer range
/// [first, last) — the cost of a block in the paper's sense.
Flops range_forward_flops(const Model& model, int first, int last);
Flops range_total_flops(const Model& model, int first, int last);

}  // namespace karma::graph
