#include "src/graph/cost_model.h"

#include <stdexcept>

namespace karma::graph {
namespace {

double d(std::int64_t v) { return static_cast<double>(v); }

}  // namespace

Flops attention_paper_ops(std::int64_t dk) {
  // Verbatim from Sec. III-C.6: 4*dk^3 + dk^2 + 2*|dk|.
  const double x = d(dk);
  return 4.0 * x * x * x + x * x + 2.0 * x;
}

Flops forward_flops(const Layer& l) {
  const double out = d(l.out_shape.numel());
  const double in = l.in_shape.rank() ? d(l.in_shape.numel()) : out;
  const double batch = d(l.out_shape.batch());
  switch (l.kind) {
    case LayerKind::kInput:
      return 0.0;
    case LayerKind::kConv2d:
      // |Y| * K * K * C_i multiply-adds, counted as 2 ops each (mul + add),
      // matching "K*K*Ci multiply and add operations" in Sec. III-C.1.
      return 2.0 * out * d(l.kernel) * d(l.kernel) * d(l.in_channels);
    case LayerKind::kReLU:
      // |Y| comparison operations (Sec. III-C.2).
      return out;
    case LayerKind::kMaxPool:
      // Sec. III-C.3 writes |Y|*K*K*Ci*c, but pooling is per-channel and
      // |Y| already includes the channel dimension; we use |Y|*K*K*c with
      // c = 1 for max (comparisons).
      return out * d(l.kernel) * d(l.kernel);
    case LayerKind::kAvgPool:
      // c = 2 for average (add + the amortized divide).
      return 2.0 * out * d(l.kernel) * d(l.kernel);
    case LayerKind::kBatchNorm:
      // 3*|B| + 4*|X| + 2*|Y| (Sec. III-C.4).
      return 3.0 * batch + 4.0 * in + 2.0 * out;
    case LayerKind::kLSTM:
      // 20*|Y| gate-combination ops (Sec. III-C.5); the gate GEMMs are
      // modeled as the FC layers the zoo places around the cell.
      return 20.0 * out;
    case LayerKind::kSelfAttention: {
      // Attention core: scores = Q K^T and context = A V, per head.
      // 2 * 2 * S^2 * d_head * heads * batch = 4 * S^2 * H * batch ops.
      if (l.in_shape.rank() != 3)
        throw std::invalid_argument("SelfAttention expects (N,S,H) shape");
      const double s = d(l.in_shape.dim(1));
      const double h = d(l.in_shape.dim(2));
      return 4.0 * s * s * h * batch;
    }
    case LayerKind::kFullyConnected: {
      // |WT| = |X| * |Y| multiply-adds per sample (Sec. III-C.7), counted
      // as 2 ops each. Derived from shapes rather than weight_elems so
      // that (a) transformer FCs are charged per token, and (b) the
      // weight-tied LM head (weight_elems == 0) still costs its GEMM.
      const double in_feat = l.in_shape.rank() == 3
                                 ? d(l.in_shape.dim(2))
                                 : d(l.in_shape.numel_per_sample());
      const double out_feat = l.out_shape.rank() == 3
                                  ? d(l.out_shape.dim(2))
                                  : d(l.out_shape.numel_per_sample());
      const double tokens = d(l.in_shape.numel()) / in_feat;
      return 2.0 * in_feat * out_feat * tokens;
    }
    case LayerKind::kSoftmax:
      // 2*|X| (Sec. III-C.8).
      return 2.0 * in;
    case LayerKind::kDropout:
    case LayerKind::kAdd:
    case LayerKind::kConcat:
      return out;  // one op per output element (Sec. III-C.9).
    case LayerKind::kReshape:
      return 0.0;  // metadata-only view.
    case LayerKind::kEmbedding:
      return out;  // gather: one move per output element.
    case LayerKind::kLayerNorm:
      // mean + variance + normalize + scale/shift ≈ 7 ops per element.
      return 7.0 * out;
    case LayerKind::kGeLU:
      // tanh-approximation GeLU ≈ 8 ops per element.
      return 8.0 * out;
  }
  throw std::logic_error("forward_flops: unhandled kind");
}

Flops backward_flops(const Layer& l) {
  switch (l.kind) {
    case LayerKind::kInput:
    case LayerKind::kReshape:
      return 0.0;
    case LayerKind::kConv2d:
    case LayerKind::kFullyConnected:
    case LayerKind::kSelfAttention:
    case LayerKind::kLSTM:
      // dX and dW each cost about one forward pass.
      return 2.0 * forward_flops(l);
    default:
      // Element-wise / normalization layers: backward ≈ forward.
      return forward_flops(l);
  }
}

Flops range_forward_flops(const Model& model, int first, int last) {
  Flops total = 0.0;
  for (int i = first; i < last; ++i) total += forward_flops(model.layer(i));
  return total;
}

Flops range_total_flops(const Model& model, int first, int last) {
  Flops total = 0.0;
  for (int i = first; i < last; ++i) {
    total += forward_flops(model.layer(i));
    total += backward_flops(model.layer(i));
  }
  return total;
}

}  // namespace karma::graph
