// Dependency graph of layers (KARMA workflow step 1, Fig. 1).
//
// The graph is a DAG over layers in topological (construction) order.
// Consecutive layers are implicitly connected by the builder helpers;
// residual and U-Net skip connections add explicit long-range edges, which
// is what the non-linear-model handling of Sec. III-F.4 keys off.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/layer.h"

namespace karma::graph {

class Model {
 public:
  Model(std::string name, int dtype_bytes = 4)
      : name_(std::move(name)), dtype_bytes_(dtype_bytes) {}

  /// Appends a layer, auto-connecting it to the previous layer (unless it
  /// is the first). Returns the layer id.
  int add_layer(Layer layer);

  /// Adds an explicit dependency edge `from -> to` (from feeds to). Used
  /// for residual adds and U-Net skips. C_ij = 1 in the paper's notation.
  void add_edge(int from, int to);

  const std::string& name() const { return name_; }
  int dtype_bytes() const { return dtype_bytes_; }

  /// Calibration factor applied to activation footprints, the stand-in
  /// for the paper's per-model empirical memory profiling (Sec. III-D):
  /// the zoo sets it so each model's in-core capacity grid matches the
  /// Fig. 5 ground truth (first batch point fits a 16 GiB V100, second
  /// overflows). See DESIGN.md §2.
  double activation_memory_scale() const { return act_scale_; }
  void set_activation_memory_scale(double scale) { act_scale_ = scale; }
  std::size_t num_layers() const { return layers_.size(); }
  const Layer& layer(int id) const { return layers_.at(static_cast<std::size_t>(id)); }
  const std::vector<Layer>& layers() const { return layers_; }

  /// Predecessors of `id` (layers feeding it), ascending.
  const std::vector<int>& preds(int id) const {
    return preds_.at(static_cast<std::size_t>(id));
  }
  /// Successors of `id`, ascending.
  const std::vector<int>& succs(int id) const {
    return succs_.at(static_cast<std::size_t>(id));
  }

  /// True if every edge connects consecutive layers (no skips).
  bool is_linear_chain() const;

  /// Longest forward jump (succ - pred) over all edges; 1 for a chain.
  int max_skip_span() const;

  /// Total weight elements over all layers.
  std::int64_t total_weight_elems() const;

  /// Returns a copy of this model with all layer shapes re-batched. The
  /// batch-size projection of Sec. III-D: weights are batch-independent,
  /// activations scale with the leading dim.
  Model with_batch_size(std::int64_t batch) const;

  /// Validates edge invariants (ids in range, from < to, no duplicates).
  /// Throws std::logic_error on violation.
  void validate() const;

 private:
  std::string name_;
  int dtype_bytes_;
  double act_scale_ = 1.0;
  std::vector<Layer> layers_;
  std::vector<std::vector<int>> preds_;
  std::vector<std::vector<int>> succs_;
};

}  // namespace karma::graph
