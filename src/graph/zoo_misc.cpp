// Additional workloads beyond Table III:
//  - make_highres_segmenter: the introduction's "single sample too large"
//    case (high-resolution medical / satellite imagery [5]);
//  - make_lstm_seq2seq: exercises the RNN/attention cost formulas of
//    Sec. III-C.5/6 end to end.
#include <string>

#include "src/graph/model_zoo.h"

namespace karma::graph {

Model make_highres_segmenter(std::int64_t batch, std::int64_t resolution) {
  Model model("HighRes-" + std::to_string(resolution));
  std::int64_t c = 3, h = resolution, w = resolution;
  const auto shape = [&] { return TensorShape::nchw(batch, c, h, w); };

  Layer input;
  input.name = "input";
  input.kind = LayerKind::kInput;
  input.in_shape = input.out_shape = shape();
  model.add_layer(std::move(input));

  const auto conv = [&](std::int64_t out_c, std::int64_t stride,
                        const std::string& name) {
    Layer l;
    l.name = name;
    l.kind = LayerKind::kConv2d;
    l.kernel = 3;
    l.stride = stride;
    l.in_channels = c;
    l.out_channels = out_c;
    l.in_shape = shape();
    h = (h + stride - 1) / stride;
    w = (w + stride - 1) / stride;
    c = out_c;
    l.out_shape = shape();
    l.weight_elems = out_c * l.in_channels * 9 + out_c;
    model.add_layer(std::move(l));
    Layer r;
    r.name = name + ".relu";
    r.kind = LayerKind::kReLU;
    r.in_shape = r.out_shape = shape();
    model.add_layer(std::move(r));
  };

  // Encoder: full-resolution stem (the memory hog), then strided stages.
  conv(32, 1, "enc0a");
  conv(32, 1, "enc0b");
  conv(64, 2, "enc1");
  conv(64, 1, "enc1b");
  conv(128, 2, "enc2");
  conv(128, 1, "enc2b");
  conv(256, 2, "enc3");

  // Decoder back to full resolution (transposed convs modeled as convs at
  // the upsampled size).
  const auto upconv = [&](std::int64_t out_c, const std::string& name) {
    Layer l;
    l.name = name;
    l.kind = LayerKind::kConv2d;
    l.kernel = 3;
    l.stride = 1;
    l.in_channels = c;
    l.out_channels = out_c;
    l.in_shape = shape();
    h *= 2;
    w *= 2;
    c = out_c;
    l.out_shape = shape();
    l.weight_elems = out_c * l.in_channels * 9 + out_c;
    model.add_layer(std::move(l));
  };
  upconv(128, "dec2");
  upconv(64, "dec1");
  upconv(32, "dec0");

  Layer head;
  head.name = "head.conv1x1";
  head.kind = LayerKind::kConv2d;
  head.kernel = 1;
  head.stride = 1;
  head.in_channels = c;
  head.out_channels = 2;
  head.in_shape = shape();
  c = 2;
  head.out_shape = shape();
  head.weight_elems = 2 * head.in_channels + 2;
  model.add_layer(std::move(head));

  Layer sm;
  sm.name = "head.softmax";
  sm.kind = LayerKind::kSoftmax;
  sm.in_shape = sm.out_shape = shape();
  model.add_layer(std::move(sm));

  model.validate();
  return model;
}

Model make_lstm_seq2seq(std::int64_t batch, std::int64_t seq_len,
                        std::int64_t hidden, std::int64_t layers) {
  Model model("LSTM-seq2seq-" + std::to_string(hidden) + "h");
  const auto nsh = [&](std::int64_t width) {
    return TensorShape::nsh(batch, seq_len, width);
  };

  Layer input;
  input.name = "input_ids";
  input.kind = LayerKind::kInput;
  input.in_shape = input.out_shape = TensorShape::nsh(batch, seq_len, 1);
  model.add_layer(std::move(input));

  Layer emb;
  emb.name = "embedding";
  emb.kind = LayerKind::kEmbedding;
  emb.vocab = 32000;
  emb.in_shape = TensorShape::nsh(batch, seq_len, 1);
  emb.out_shape = nsh(hidden);
  emb.weight_elems = 32000 * hidden;
  model.add_layer(std::move(emb));

  const auto lstm_stack = [&](const std::string& prefix) {
    for (std::int64_t i = 0; i < layers; ++i) {
      // Gate GEMMs as an FC (4 gates over [x, h]) + the cell combination
      // as the kLSTM layer (Sec. III-C.5's 20*|Y| ops).
      Layer gates;
      gates.name = prefix + std::to_string(i + 1) + ".gates";
      gates.kind = LayerKind::kFullyConnected;
      gates.in_shape = nsh(hidden);
      gates.out_shape = nsh(4 * hidden);
      gates.weight_elems = 2 * hidden * 4 * hidden + 4 * hidden;
      model.add_layer(std::move(gates));
      Layer cell;
      cell.name = prefix + std::to_string(i + 1) + ".cell";
      cell.kind = LayerKind::kLSTM;
      cell.in_shape = nsh(4 * hidden);
      cell.out_shape = nsh(hidden);
      model.add_layer(std::move(cell));
    }
  };
  lstm_stack("encoder");

  // Attention bridge (Bahdanau-style, Sec. III-C.6).
  Layer attn;
  attn.name = "attention";
  attn.kind = LayerKind::kSelfAttention;
  attn.heads = 1;
  attn.head_dim = hidden;
  attn.in_shape = attn.out_shape = nsh(hidden);
  model.add_layer(std::move(attn));
  Layer sm_attn;
  sm_attn.name = "attention.softmax";
  sm_attn.kind = LayerKind::kSoftmax;
  sm_attn.in_shape = sm_attn.out_shape = nsh(hidden);
  model.add_layer(std::move(sm_attn));

  lstm_stack("decoder");

  Layer proj;
  proj.name = "head.proj";
  proj.kind = LayerKind::kFullyConnected;
  proj.in_shape = nsh(hidden);
  proj.out_shape = nsh(32000);
  proj.weight_elems = hidden * 32000 + 32000;
  model.add_layer(std::move(proj));
  Layer sm;
  sm.name = "head.softmax";
  sm.kind = LayerKind::kSoftmax;
  sm.in_shape = sm.out_shape = nsh(32000);
  model.add_layer(std::move(sm));

  model.validate();
  return model;
}

}  // namespace karma::graph
