// Tensor shape descriptor shared by the cost and memory models.
//
// CNN layers use NCHW, transformer layers use (N, S, H) mapped onto the
// same storage; `numel` is the only quantity the analytic models need, but
// keeping the dims lets the zoo and tests check shape propagation.
#pragma once

#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace karma::graph {

class TensorShape {
 public:
  TensorShape() = default;
  explicit TensorShape(std::vector<std::int64_t> dims) : dims_(std::move(dims)) {
    for (auto d : dims_)
      if (d <= 0) throw std::invalid_argument("TensorShape: non-positive dim");
  }

  /// NCHW convenience constructor.
  static TensorShape nchw(std::int64_t n, std::int64_t c, std::int64_t h,
                          std::int64_t w) {
    return TensorShape({n, c, h, w});
  }
  /// (batch, sequence, hidden) for transformer-family layers.
  static TensorShape nsh(std::int64_t n, std::int64_t s, std::int64_t h) {
    return TensorShape({n, s, h});
  }

  std::int64_t numel() const {
    return std::accumulate(dims_.begin(), dims_.end(), std::int64_t{1},
                           std::multiplies<>());
  }
  /// Elements per sample (all dims except the leading batch dim).
  std::int64_t numel_per_sample() const {
    if (dims_.empty()) return 1;
    return numel() / dims_.front();
  }
  std::int64_t batch() const { return dims_.empty() ? 1 : dims_.front(); }
  std::size_t rank() const { return dims_.size(); }
  std::int64_t dim(std::size_t i) const { return dims_.at(i); }
  const std::vector<std::int64_t>& dims() const { return dims_; }

  /// Returns a copy with the batch dimension replaced.
  TensorShape with_batch(std::int64_t n) const {
    if (dims_.empty()) throw std::logic_error("with_batch on scalar shape");
    auto d = dims_;
    d.front() = n;
    return TensorShape(d);
  }

  bool operator==(const TensorShape& o) const { return dims_ == o.dims_; }

  std::string to_string() const {
    std::string s = "[";
    for (std::size_t i = 0; i < dims_.size(); ++i)
      s += (i ? "x" : "") + std::to_string(dims_[i]);
    return s + "]";
  }

 private:
  std::vector<std::int64_t> dims_;
};

}  // namespace karma::graph
