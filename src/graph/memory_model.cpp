#include "src/graph/memory_model.h"

#include <algorithm>
#include <cmath>

namespace karma::graph {

LayerMemory layer_memory(const Layer& l, int dtype_bytes,
                         const MemoryModelOptions& opts, double act_scale) {
  LayerMemory m;
  const auto bytes = [&](std::int64_t elems) {
    return static_cast<Bytes>(elems) * dtype_bytes;
  };
  m.weights = bytes(l.weight_elems);
  m.weight_grads = m.weights;

  // Activations: the forward output retained for the backward pass. The
  // allocator-overhead factor models caching-allocator slack (Sec. III-D).
  const std::int64_t out_elems =
      l.kind == LayerKind::kReshape ? 0 : l.out_shape.numel();
  m.activations = static_cast<Bytes>(std::llround(
      static_cast<double>(bytes(out_elems)) * opts.allocator_overhead *
      act_scale));
  m.activation_grads = m.activations;

  if (l.kind == LayerKind::kConv2d) {
    m.workspace = static_cast<Bytes>(std::llround(
        static_cast<double>(bytes(out_elems)) * opts.conv_workspace_frac));
  } else if (l.kind == LayerKind::kSelfAttention && l.in_shape.rank() == 3) {
    // Attention scores matrix: batch * heads * S * S (materialized).
    const std::int64_t s = l.in_shape.dim(1);
    const std::int64_t heads = std::max<std::int64_t>(l.heads, 1);
    m.workspace = bytes(l.in_shape.batch() * heads * s * s);
  }
  return m;
}

LayerMemory range_memory(const Model& model, int first, int last,
                         const MemoryModelOptions& opts) {
  LayerMemory total;
  for (int i = first; i < last; ++i) {
    const LayerMemory m = layer_memory(model.layer(i), model.dtype_bytes(),
                                       opts, model.activation_memory_scale());
    total.weights += m.weights;
    total.weight_grads += m.weight_grads;
    total.activations += m.activations;
    total.activation_grads += m.activation_grads;
    total.workspace = std::max(total.workspace, m.workspace);
  }
  return total;
}

Bytes in_core_footprint(const Model& model, const MemoryModelOptions& opts) {
  const LayerMemory all =
      range_memory(model, 0, static_cast<int>(model.num_layers()), opts);
  // In-core training holds all weights, all retained activations, gradient
  // buffers for weights, and the single live activation-gradient wavefront
  // plus the largest workspace. Activation grads are released as backward
  // proceeds, so only the largest layer's grad is charged.
  Bytes max_act_grad = 0;
  for (const auto& l : model.layers()) {
    const LayerMemory m = layer_memory(l, model.dtype_bytes(), opts,
                                       model.activation_memory_scale());
    max_act_grad = std::max(max_act_grad, m.activation_grads);
  }
  return all.weights + all.weight_grads + all.activations + max_act_grad +
         all.workspace;
}

OffloadFootprint offload_footprint(const Model& model, Bytes device_act_budget,
                                   const MemoryModelOptions& opts) {
  const LayerMemory all =
      range_memory(model, 0, static_cast<int>(model.num_layers()), opts);
  OffloadFootprint fp;
  fp.offloaded_activations =
      std::max<Bytes>(0, all.activations - std::max<Bytes>(0, device_act_budget));
  fp.optimizer_state = static_cast<Bytes>(std::llround(
      static_cast<double>(all.weights) * opts.optimizer_state_mult));
  return fp;
}

}  // namespace karma::graph
