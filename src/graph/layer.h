// Layer descriptors: the unit the KARMA planner reasons about.
//
// A Layer carries everything the analytic cost model (Sec. III-C) and the
// memory model (Sec. III-D) need: kind, input/output shapes, and
// kind-specific parameters (kernel, channels, heads, ...). Layers are pure
// metadata — the numeric engine in src/train has its own executable layers;
// the simulator never touches real data.
#pragma once

#include <cstdint>
#include <string>

#include "src/graph/shape.h"

namespace karma::graph {

enum class LayerKind {
  kInput,
  kConv2d,
  kReLU,
  kMaxPool,
  kAvgPool,
  kBatchNorm,
  kLSTM,
  kSelfAttention,
  kFullyConnected,
  kSoftmax,
  kDropout,
  kAdd,             // element-wise residual add
  kConcat,          // channel concat (U-Net skip joins)
  kReshape,         // views / flatten; negligible compute
  kEmbedding,       // token embedding lookup
  kLayerNorm,
  kGeLU,
};

/// Human-readable kind name, e.g. "Conv2d".
const char* layer_kind_name(LayerKind kind);

/// True for kinds whose activations SuperNeurons-style policies swap
/// (heavy, conv-like) as opposed to recompute (cheap, element-wise).
bool is_cheap_to_recompute(LayerKind kind);

struct Layer {
  int id = -1;
  std::string name;
  LayerKind kind = LayerKind::kInput;
  TensorShape in_shape;
  TensorShape out_shape;

  // -- kind-specific parameters (unused fields stay at their defaults) --
  std::int64_t kernel = 0;        ///< K for conv/pool (square kernels).
  std::int64_t stride = 1;        ///< conv/pool stride.
  std::int64_t in_channels = 0;   ///< C_i for conv.
  std::int64_t out_channels = 0;  ///< C_{i+1} for conv.
  std::int64_t heads = 0;         ///< attention heads.
  std::int64_t head_dim = 0;      ///< d_k per head.
  std::int64_t vocab = 0;         ///< embedding vocabulary size.

  /// Per-layer weight element count (0 for weight-less layers). Filled by
  /// the builder helpers in model.cpp; the memory model converts to bytes.
  std::int64_t weight_elems = 0;
};

}  // namespace karma::graph
