// Memory model per layer (paper Sec. III-D).
//
// The paper measures memory empirically (PyTorch memory_stats + nvprof)
// once per model, breaks it down by variable class, then projects across
// batch sizes analytically. Our substitute performs the same breakdown
// directly from shapes: weights / weight gradients are batch-independent,
// activations / activation gradients scale with batch, and a per-kind
// workspace term stands in for cuDNN scratch space. An allocator-overhead
// factor models the caching-allocator slack the paper calls out as the
// reason naive per-layer sums are "highly inaccurate".
#pragma once

#include "src/graph/layer.h"
#include "src/graph/model.h"
#include "src/util/units.h"

namespace karma::graph {

/// Breakdown of one layer's memory footprint by variable class, mirroring
/// the paper's "inputs, weights, weight gradients, activations, and
/// activation gradients" classification.
struct LayerMemory {
  Bytes weights = 0;
  Bytes weight_grads = 0;
  Bytes activations = 0;       ///< forward outputs retained for backward
  Bytes activation_grads = 0;  ///< gradients w.r.t. activations
  Bytes workspace = 0;         ///< transient kernel scratch (not retained)

  Bytes resident() const {  ///< what must stay allocated between phases
    return weights + weight_grads + activations + activation_grads;
  }
  Bytes total() const { return resident() + workspace; }
};

struct MemoryModelOptions {
  /// Multiplier on activation footprints modeling caching-allocator slack
  /// and fragmentation. 1.0 = exact-fit.
  double allocator_overhead = 1.10;
  /// Conv workspace as a fraction of the layer output (cuDNN implicit-GEMM
  /// style scratch). Applied only to conv layers.
  double conv_workspace_frac = 0.25;
  /// Optimizer state multiplier on weights (1.0 = plain SGD; 2.0 adds
  /// momentum; Adam would be 3.0). Counted on the host for OOC runs.
  double optimizer_state_mult = 1.0;
};

/// Footprint of one layer at its stored batch size. `act_scale` is the
/// model's calibration factor (Model::activation_memory_scale).
LayerMemory layer_memory(const Layer& layer, int dtype_bytes,
                         const MemoryModelOptions& opts = {},
                         double act_scale = 1.0);

/// Aggregate over a half-open layer range [first, last) — a block's buffer
/// size in the paper's sense (weights + retained activations + grads).
LayerMemory range_memory(const Model& model, int first, int last,
                         const MemoryModelOptions& opts = {});

/// Peak resident footprint of the whole model during one training
/// iteration if everything stays on the device (the in-core requirement).
/// This is what determines whether a model/batch "fits" (Fig. 5's first
/// x-axis point).
Bytes in_core_footprint(const Model& model,
                        const MemoryModelOptions& opts = {});

/// What an out-of-core iteration asks of the offload tiers (DESIGN.md §7):
/// when the device retains at most `device_act_budget` bytes of
/// activations, everything beyond it is evicted off-device; training
/// loops that keep optimizer state host-side (OOC real-value runs, CPU
/// updates) additionally pin `optimizer_state` bytes in DRAM. This is the
/// demand-side report — the per-tier analogue of in_core_footprint's fit
/// question. Note the planner's per-tier admission counts activation
/// spill only; callers sizing a hierarchy for host-pinned optimizer state
/// should pass it as route_spills' `reserved_host`.
struct OffloadFootprint {
  Bytes offloaded_activations = 0;  ///< activation bytes evicted off-device
  Bytes optimizer_state = 0;        ///< host-pinned optimizer state
  Bytes total() const { return offloaded_activations + optimizer_state; }
};

OffloadFootprint offload_footprint(const Model& model, Bytes device_act_budget,
                                   const MemoryModelOptions& opts = {});

}  // namespace karma::graph
