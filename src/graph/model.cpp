#include "src/graph/model.h"

#include <algorithm>
#include <stdexcept>

namespace karma::graph {

const char* layer_kind_name(LayerKind kind) {
  switch (kind) {
    case LayerKind::kInput: return "Input";
    case LayerKind::kConv2d: return "Conv2d";
    case LayerKind::kReLU: return "ReLU";
    case LayerKind::kMaxPool: return "MaxPool";
    case LayerKind::kAvgPool: return "AvgPool";
    case LayerKind::kBatchNorm: return "BatchNorm";
    case LayerKind::kLSTM: return "LSTM";
    case LayerKind::kSelfAttention: return "SelfAttention";
    case LayerKind::kFullyConnected: return "FullyConnected";
    case LayerKind::kSoftmax: return "Softmax";
    case LayerKind::kDropout: return "Dropout";
    case LayerKind::kAdd: return "Add";
    case LayerKind::kConcat: return "Concat";
    case LayerKind::kReshape: return "Reshape";
    case LayerKind::kEmbedding: return "Embedding";
    case LayerKind::kLayerNorm: return "LayerNorm";
    case LayerKind::kGeLU: return "GeLU";
  }
  return "?";
}

bool is_cheap_to_recompute(LayerKind kind) {
  switch (kind) {
    case LayerKind::kConv2d:
    case LayerKind::kFullyConnected:
    case LayerKind::kSelfAttention:
    case LayerKind::kLSTM:
    case LayerKind::kEmbedding:
      return false;
    default:
      return true;
  }
}

int Model::add_layer(Layer layer) {
  const int id = static_cast<int>(layers_.size());
  layer.id = id;
  layers_.push_back(std::move(layer));
  preds_.emplace_back();
  succs_.emplace_back();
  if (id > 0) add_edge(id - 1, id);
  return id;
}

void Model::add_edge(int from, int to) {
  if (from < 0 || to < 0 || from >= static_cast<int>(layers_.size()) ||
      to >= static_cast<int>(layers_.size()))
    throw std::out_of_range("Model::add_edge: id out of range");
  if (from >= to)
    throw std::logic_error("Model::add_edge: edges must go forward");
  auto& s = succs_[static_cast<std::size_t>(from)];
  if (std::find(s.begin(), s.end(), to) != s.end()) return;  // idempotent
  s.push_back(to);
  std::sort(s.begin(), s.end());
  auto& p = preds_[static_cast<std::size_t>(to)];
  p.push_back(from);
  std::sort(p.begin(), p.end());
}

bool Model::is_linear_chain() const { return max_skip_span() <= 1; }

int Model::max_skip_span() const {
  int span = 0;
  for (std::size_t i = 0; i < succs_.size(); ++i)
    for (int s : succs_[i]) span = std::max(span, s - static_cast<int>(i));
  return span;
}

std::int64_t Model::total_weight_elems() const {
  std::int64_t total = 0;
  for (const auto& l : layers_) total += l.weight_elems;
  return total;
}

Model Model::with_batch_size(std::int64_t batch) const {
  Model out(name_, dtype_bytes_);
  out.act_scale_ = act_scale_;
  for (const auto& l : layers_) {
    Layer copy = l;
    if (copy.in_shape.rank() > 0) copy.in_shape = copy.in_shape.with_batch(batch);
    if (copy.out_shape.rank() > 0)
      copy.out_shape = copy.out_shape.with_batch(batch);
    copy.id = -1;  // re-assigned by add_layer
    out.add_layer(std::move(copy));
  }
  // Re-create explicit skip edges (add_layer already made chain edges).
  for (std::size_t i = 0; i < succs_.size(); ++i)
    for (int s : succs_[i])
      if (s != static_cast<int>(i) + 1) out.add_edge(static_cast<int>(i), s);
  return out;
}

void Model::validate() const {
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (layers_[i].id != static_cast<int>(i))
      throw std::logic_error("Model: layer id mismatch");
    for (int p : preds_[i])
      if (p < 0 || p >= static_cast<int>(i))
        throw std::logic_error("Model: bad pred edge");
    for (int s : succs_[i])
      if (s <= static_cast<int>(i) || s >= static_cast<int>(layers_.size()))
        throw std::logic_error("Model: bad succ edge");
  }
  // Every non-first layer must have at least one predecessor.
  for (std::size_t i = 1; i < layers_.size(); ++i)
    if (preds_[i].empty()) throw std::logic_error("Model: orphan layer");
}

}  // namespace karma::graph
