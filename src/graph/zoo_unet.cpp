// U-Net builder (Ronneberger et al., MICCAI 2015) for the ssTEM
// segmentation workload. The defining feature for KARMA is the set of
// skip connections from the contracting path to the expansive path —
// exactly the non-affine connections Sec. III-F.4 says push the second
// optimization problem towards recomputing contracting-path blocks.
#include <string>
#include <vector>

#include "src/graph/model_zoo.h"

namespace karma::graph {
namespace {

struct UnetCursor {
  Model* model;
  std::int64_t n, c, h, w;
  int last = -1;

  TensorShape shape() const { return TensorShape::nchw(n, c, h, w); }

  int conv_relu(std::int64_t out_c, const std::string& name) {
    Layer l;
    l.name = name;
    l.kind = LayerKind::kConv2d;
    l.kernel = 3;
    l.stride = 1;
    l.in_channels = c;
    l.out_channels = out_c;
    l.in_shape = shape();
    c = out_c;
    l.out_shape = shape();
    l.weight_elems = out_c * l.in_channels * 9 + out_c;
    last = model->add_layer(std::move(l));
    Layer r;
    r.name = name + ".relu";
    r.kind = LayerKind::kReLU;
    r.in_shape = r.out_shape = shape();
    return last = model->add_layer(std::move(r));
  }

  int down(const std::string& name) {
    Layer l;
    l.name = name;
    l.kind = LayerKind::kMaxPool;
    l.kernel = 2;
    l.stride = 2;
    l.in_channels = l.out_channels = c;
    l.in_shape = shape();
    h /= 2;
    w /= 2;
    l.out_shape = shape();
    return last = model->add_layer(std::move(l));
  }

  /// Up-convolution (transposed conv modeled as a conv at the upsampled
  /// resolution, which has the same arithmetic cost).
  int up(std::int64_t out_c, const std::string& name) {
    Layer l;
    l.name = name;
    l.kind = LayerKind::kConv2d;
    l.kernel = 2;
    l.stride = 1;
    l.in_channels = c;
    l.out_channels = out_c;
    l.in_shape = shape();
    h *= 2;
    w *= 2;
    c = out_c;
    l.out_shape = shape();
    l.weight_elems = out_c * l.in_channels * 4 + out_c;
    return last = model->add_layer(std::move(l));
  }

  /// Channel concat with the contracting-path activation `skip_from`.
  int concat(int skip_from, std::int64_t skip_channels,
             const std::string& name) {
    Layer l;
    l.name = name;
    l.kind = LayerKind::kConcat;
    l.in_shape = shape();
    c += skip_channels;
    l.out_shape = shape();
    last = model->add_layer(std::move(l));
    model->add_edge(skip_from, last);
    return last;
  }
};

}  // namespace

Model make_unet(std::int64_t batch) {
  Model model("U-Net");
  UnetCursor u{&model, batch, 1, 512, 512};

  Layer input;
  input.name = "input";
  input.kind = LayerKind::kInput;
  input.in_shape = input.out_shape = u.shape();
  u.last = model.add_layer(std::move(input));

  // Contracting path: 64 -> 128 -> 256 -> 512, remembering skip tips.
  std::vector<int> skips;
  std::vector<std::int64_t> skip_channels;
  const std::int64_t widths[4] = {64, 128, 256, 512};
  for (int d = 0; d < 4; ++d) {
    const std::string p = "down" + std::to_string(d + 1);
    u.conv_relu(widths[d], p + ".conv1");
    u.conv_relu(widths[d], p + ".conv2");
    skips.push_back(u.last);
    skip_channels.push_back(u.c);
    u.down(p + ".pool");
  }

  // Bottom: 1024.
  u.conv_relu(1024, "bottom.conv1");
  u.conv_relu(1024, "bottom.conv2");

  // Expansive path with skip concats (non-affine connections).
  for (int d = 3; d >= 0; --d) {
    const std::string p = "up" + std::to_string(d + 1);
    u.up(widths[d], p + ".upconv");
    u.concat(skips[static_cast<std::size_t>(d)],
             skip_channels[static_cast<std::size_t>(d)], p + ".concat");
    u.conv_relu(widths[d], p + ".conv1");
    u.conv_relu(widths[d], p + ".conv2");
  }

  // 1x1 output conv to 2 classes (membrane / non-membrane) + softmax.
  Layer out;
  out.name = "head.conv1x1";
  out.kind = LayerKind::kConv2d;
  out.kernel = 1;
  out.stride = 1;
  out.in_channels = u.c;
  out.out_channels = 2;
  out.in_shape = u.shape();
  u.c = 2;
  out.out_shape = u.shape();
  out.weight_elems = 2 * out.in_channels + 2;
  u.last = model.add_layer(std::move(out));

  Layer sm;
  sm.name = "head.softmax";
  sm.kind = LayerKind::kSoftmax;
  sm.in_shape = sm.out_shape = u.shape();
  model.add_layer(std::move(sm));

  model.validate();
  return model;
}

}  // namespace karma::graph
