// Builders for every model in the paper's evaluation (Table III):
//
//   ResNet-50 / ResNet-200 (ImageNet, bottleneck), VGG16 (ImageNet),
//   WRN-28-10 / ResNet-1001 (CIFAR-10), U-Net (ssTEM, skip connections),
//   Megatron-LM GPT-2 configurations (Table IV), Turing-NLG.
//
// Shapes, kernel sizes, and widths follow the cited architectures so the
// per-layer compute/memory footprints — the only thing the planner and the
// experiments consume — match the paper's workloads.
#pragma once

#include <cstdint>

#include "src/graph/model.h"

namespace karma::graph {

/// ImageNet classification CNNs (input 3x224x224, 1000 classes).
Model make_resnet50(std::int64_t batch);
Model make_resnet200(std::int64_t batch);
Model make_vgg16(std::int64_t batch);

/// CIFAR-10 CNNs (input 3x32x32, 10 classes).
Model make_wrn28_10(std::int64_t batch);
Model make_resnet1001(std::int64_t batch);

/// U-Net for ssTEM segmentation (input 1x512x512), with the contracting-
/// to-expansive skip connections that exercise Sec. III-F.4.
Model make_unet(std::int64_t batch);

/// High-resolution dense segmenter for the intro's "a single training
/// sample is too large" motivation (medical / satellite imagery, up to
/// ~2 GiB per sample [5]): a fully convolutional stack over
/// 3 x `resolution` x `resolution` inputs. Even batch = 1 exceeds a
/// 16 GiB device at resolution 4096.
Model make_highres_segmenter(std::int64_t batch, std::int64_t resolution);

/// Attention-augmented LSTM seq2seq (Sec. III-C.5's RNN cost path):
/// encoder/decoder LSTM stacks with a dot-product attention bridge.
Model make_lstm_seq2seq(std::int64_t batch, std::int64_t seq_len = 128,
                        std::int64_t hidden = 1024, std::int64_t layers = 4);

/// GPT-2-family transformer parameters (Table IV rows + Turing-NLG).
struct TransformerConfig {
  std::int64_t hidden = 0;        ///< H
  std::int64_t heads = 0;         ///< A
  std::int64_t layers = 0;        ///< L
  std::int64_t seq_len = 1024;    ///< context length (GPT-2 default)
  std::int64_t vocab = 50257;     ///< GPT-2 BPE vocabulary
  int dtype_bytes = 2;            ///< fp16 training, as Megatron uses

  /// Approximate decoder parameter count: 12*L*H^2 + V*H (embeddings).
  std::int64_t approx_params() const {
    return 12 * layers * hidden * hidden + vocab * hidden;
  }
};

/// The five Megatron-LM configurations of Table IV, index 0..4:
/// 0.7B, 1.2B, 2.5B, 4.2B, 8.3B.
TransformerConfig megatron_config(int index);

/// Turing-NLG: 78 layers, hidden 4256, 28 heads, 17B parameters.
TransformerConfig turing_nlg_config();

/// Builds a GPT-2-style decoder stack from a config. Each transformer
/// block is decomposed into LayerNorm / FC(QKV) / SelfAttention core /
/// Softmax / FC(proj) / Add / LayerNorm / FC(4H) / GeLU / FC(H) / Add.
Model make_transformer(const TransformerConfig& config, std::int64_t batch);

/// Linear-chain variant of make_transformer: the SAME per-block
/// attention/MLP decomposition (so per-layer FLOPs and the quadratic
/// seq_len^2-per-head attention activation footprint match), but with the
/// residual skip edges omitted — every layer feeds only its successor, so
/// is_linear_chain() holds and every block boundary is a clean cut. The
/// planner-friendly stand-in when the blocking search (not skip-edge
/// policy) is what's under study, e.g. fleet placement benches.
Model make_transformer_chain(const TransformerConfig& config,
                             std::int64_t batch);

}  // namespace karma::graph
