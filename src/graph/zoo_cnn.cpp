// CNN builders: ResNet-50/200/1001, WRN-28-10, VGG16.
#include <stdexcept>
#include <string>
#include <vector>

#include "src/graph/model_zoo.h"

namespace karma::graph {
namespace {

/// Incremental CNN construction: tracks the current feature-map shape and
/// appends layers with correct shape propagation. All convs use "same"
/// padding semantics (output spatial dims = input / stride).
class CnnBuilder {
 public:
  CnnBuilder(Model* model, std::int64_t batch, std::int64_t channels,
             std::int64_t height, std::int64_t width)
      : model_(model), n_(batch), c_(channels), h_(height), w_(width) {
    Layer input;
    input.name = "input";
    input.kind = LayerKind::kInput;
    input.in_shape = input.out_shape = TensorShape::nchw(n_, c_, h_, w_);
    last_ = model_->add_layer(std::move(input));
  }

  int conv(std::int64_t out_c, std::int64_t kernel, std::int64_t stride,
           const std::string& name) {
    Layer l;
    l.name = name;
    l.kind = LayerKind::kConv2d;
    l.kernel = kernel;
    l.stride = stride;
    l.in_channels = c_;
    l.out_channels = out_c;
    l.in_shape = shape();
    h_ = ceil_div(h_, stride);
    w_ = ceil_div(w_, stride);
    c_ = out_c;
    l.out_shape = shape();
    l.weight_elems = out_c * l.in_channels * kernel * kernel + out_c;  // +bias
    return last_ = model_->add_layer(std::move(l));
  }

  int batch_norm(const std::string& name) {
    Layer l;
    l.name = name;
    l.kind = LayerKind::kBatchNorm;
    l.in_shape = l.out_shape = shape();
    l.weight_elems = 2 * c_;  // gamma + beta
    return last_ = model_->add_layer(std::move(l));
  }

  int relu(const std::string& name) {
    return last_ = add_simple(LayerKind::kReLU, name);
  }

  int max_pool(std::int64_t kernel, std::int64_t stride,
               const std::string& name) {
    return pool(LayerKind::kMaxPool, kernel, stride, name);
  }
  int avg_pool(std::int64_t kernel, std::int64_t stride,
               const std::string& name) {
    return pool(LayerKind::kAvgPool, kernel, stride, name);
  }

  /// Global average pool: collapses spatial dims to 1x1.
  int global_avg_pool(const std::string& name) {
    return pool(LayerKind::kAvgPool, h_, h_, name);
  }

  int fully_connected(std::int64_t out_features, const std::string& name) {
    Layer l;
    l.name = name;
    l.kind = LayerKind::kFullyConnected;
    l.in_shape = shape();
    const std::int64_t in_features = c_ * h_ * w_;
    c_ = out_features;
    h_ = w_ = 1;
    l.out_shape = shape();
    l.weight_elems = in_features * out_features + out_features;
    return last_ = model_->add_layer(std::move(l));
  }

  int softmax(const std::string& name) {
    return last_ = add_simple(LayerKind::kSoftmax, name);
  }

  /// Residual join: elementwise add of `skip_from`'s output to the current
  /// tip. Adds the long-range dependency edge the planner must respect.
  int residual_add(int skip_from, const std::string& name) {
    const int id = add_simple(LayerKind::kAdd, name);
    model_->add_edge(skip_from, id);
    return last_ = id;
  }

  /// Adds a plain dependency edge `from -> last` without a new layer
  /// (used when a projection shortcut was emitted between a block's entry
  /// and the first conv of the main path).
  void link_from(int from) { model_->add_edge(from, last_); }

  /// Shape-cursor snapshot/restore: a projection shortcut is a side
  /// branch, so the main path must resume from the block entry's shape.
  struct Cursor {
    std::int64_t c, h, w;
  };
  Cursor cursor() const { return {c_, h_, w_}; }
  void set_cursor(const Cursor& cur) {
    c_ = cur.c;
    h_ = cur.h;
    w_ = cur.w;
  }

  int last() const { return last_; }
  std::int64_t channels() const { return c_; }

 private:
  static std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
    return (a + b - 1) / b;
  }
  TensorShape shape() const { return TensorShape::nchw(n_, c_, h_, w_); }

  int add_simple(LayerKind kind, const std::string& name) {
    Layer l;
    l.name = name;
    l.kind = kind;
    l.in_shape = l.out_shape = shape();
    return model_->add_layer(std::move(l));
  }

  int pool(LayerKind kind, std::int64_t kernel, std::int64_t stride,
           const std::string& name) {
    Layer l;
    l.name = name;
    l.kind = kind;
    l.kernel = kernel;
    l.stride = stride;
    l.in_channels = l.out_channels = c_;
    l.in_shape = shape();
    h_ = ceil_div(h_, stride);
    w_ = ceil_div(w_, stride);
    l.out_shape = shape();
    return last_ = model_->add_layer(std::move(l));
  }

  Model* model_;
  std::int64_t n_, c_, h_, w_;
  int last_ = -1;
};

/// Bottleneck residual block (1x1 -> 3x3 -> 1x1), as in ResNet-50/200 and
/// the CIFAR ResNet-1001. `mid` is the squeezed width; output is 4*mid.
void bottleneck(CnnBuilder& b, std::int64_t mid, std::int64_t stride,
                const std::string& prefix) {
  const int entry = b.last();
  const CnnBuilder::Cursor entry_cursor = b.cursor();
  const std::int64_t out = 4 * mid;
  const bool reshape_skip = stride != 1 || b.channels() != out;
  int skip = entry;
  if (reshape_skip) {
    // Projection shortcut branches from the block input; emit it, then
    // rewind the shape cursor so the main path also starts from the
    // entry shape (the dependency edge is added below).
    skip = b.conv(out, 1, stride, prefix + ".downsample");
    b.set_cursor(entry_cursor);
  }
  // Main path. When a projection shortcut was emitted, the first conv of
  // the main path still consumes the block input, so record that edge
  // (the chain edge downsample->conv1 inserted by add_layer only encodes
  // issue order).
  b.conv(mid, 1, 1, prefix + ".conv1");
  if (reshape_skip) b.link_from(entry);
  b.batch_norm(prefix + ".bn1");
  b.relu(prefix + ".relu1");
  b.conv(mid, 3, stride, prefix + ".conv2");
  b.batch_norm(prefix + ".bn2");
  b.relu(prefix + ".relu2");
  b.conv(out, 1, 1, prefix + ".conv3");
  b.batch_norm(prefix + ".bn3");
  b.residual_add(skip, prefix + ".add");
  b.relu(prefix + ".relu_out");
}

/// Basic residual block (3x3 -> 3x3) used by WRN-28-10.
void basic_block(CnnBuilder& b, std::int64_t width, std::int64_t stride,
                 const std::string& prefix) {
  const int entry = b.last();
  const CnnBuilder::Cursor entry_cursor = b.cursor();
  const bool reshape_skip = stride != 1 || b.channels() != width;
  int skip = entry;
  if (reshape_skip) {
    skip = b.conv(width, 1, stride, prefix + ".downsample");
    b.set_cursor(entry_cursor);
  }
  b.conv(width, 3, stride, prefix + ".conv1");
  if (reshape_skip) b.link_from(entry);
  b.batch_norm(prefix + ".bn1");
  b.relu(prefix + ".relu1");
  b.conv(width, 3, 1, prefix + ".conv2");
  b.batch_norm(prefix + ".bn2");
  b.residual_add(skip, prefix + ".add");
  b.relu(prefix + ".relu_out");
}

Model make_imagenet_resnet(const std::string& name, std::int64_t batch,
                           const std::vector<int>& blocks_per_stage) {
  Model model(name);
  CnnBuilder b(&model, batch, 3, 224, 224);
  b.conv(64, 7, 2, "stem.conv");
  b.batch_norm("stem.bn");
  b.relu("stem.relu");
  b.max_pool(3, 2, "stem.maxpool");
  const std::int64_t mids[4] = {64, 128, 256, 512};
  for (int stage = 0; stage < 4; ++stage) {
    for (int i = 0; i < blocks_per_stage[static_cast<std::size_t>(stage)]; ++i) {
      const std::int64_t stride = (stage > 0 && i == 0) ? 2 : 1;
      bottleneck(b, mids[stage], stride,
                 "stage" + std::to_string(stage + 1) + ".block" +
                     std::to_string(i + 1));
    }
  }
  b.global_avg_pool("head.avgpool");
  b.fully_connected(1000, "head.fc");
  b.softmax("head.softmax");
  model.validate();
  return model;
}

}  // namespace

// Per-model activation-memory calibration (see Model::
// activation_memory_scale): chosen once so that the Fig. 5 capacity grid
// holds on a 16 GiB V100 — the first reported batch size fits in-core,
// the second does not. This constant stands in for the per-model
// empirical profiling of Sec. III-D.
Model make_resnet50(std::int64_t batch) {
  Model m = make_imagenet_resnet("ResNet-50", batch, {3, 4, 6, 3});
  m.set_activation_memory_scale(0.70);
  return m;
}

Model make_resnet200(std::int64_t batch) {
  Model m = make_imagenet_resnet("ResNet-200", batch, {3, 24, 36, 3});
  m.set_activation_memory_scale(5.0);
  return m;
}

Model make_resnet1001(std::int64_t batch) {
  // Pre-activation CIFAR ResNet: depth 1001 = 9*n+2 with n = 111
  // bottleneck blocks per stage over three stages of widths 16/32/64.
  Model model("ResNet-1001");
  CnnBuilder b(&model, batch, 3, 32, 32);
  b.conv(16, 3, 1, "stem.conv");
  b.batch_norm("stem.bn");
  b.relu("stem.relu");
  const std::int64_t mids[3] = {16, 32, 64};
  constexpr int kBlocksPerStage = 111;
  for (int stage = 0; stage < 3; ++stage) {
    for (int i = 0; i < kBlocksPerStage; ++i) {
      const std::int64_t stride = (stage > 0 && i == 0) ? 2 : 1;
      bottleneck(b, mids[stage], stride,
                 "stage" + std::to_string(stage + 1) + ".block" +
                     std::to_string(i + 1));
    }
  }
  b.global_avg_pool("head.avgpool");
  b.fully_connected(10, "head.fc");
  b.softmax("head.softmax");
  model.validate();
  model.set_activation_memory_scale(0.75);
  return model;
}

Model make_wrn28_10(std::int64_t batch) {
  // WRN-28-10: depth 28 = 6*n+4 with n = 4 basic blocks per stage and
  // widen factor 10 (widths 160/320/640).
  Model model("WRN-28-10");
  CnnBuilder b(&model, batch, 3, 32, 32);
  b.conv(16, 3, 1, "stem.conv");
  b.batch_norm("stem.bn");
  b.relu("stem.relu");
  const std::int64_t widths[3] = {160, 320, 640};
  constexpr int kBlocksPerStage = 4;
  for (int stage = 0; stage < 3; ++stage) {
    for (int i = 0; i < kBlocksPerStage; ++i) {
      const std::int64_t stride = (stage > 0 && i == 0) ? 2 : 1;
      basic_block(b, widths[stage], stride,
                  "stage" + std::to_string(stage + 1) + ".block" +
                      std::to_string(i + 1));
    }
  }
  b.global_avg_pool("head.avgpool");
  b.fully_connected(10, "head.fc");
  b.softmax("head.softmax");
  model.validate();
  return model;
}

Model make_vgg16(std::int64_t batch) {
  Model model("VGG16");
  CnnBuilder b(&model, batch, 3, 224, 224);
  const struct {
    int convs;
    std::int64_t width;
  } stages[5] = {{2, 64}, {2, 128}, {3, 256}, {3, 512}, {3, 512}};
  for (int s = 0; s < 5; ++s) {
    for (int i = 0; i < stages[s].convs; ++i) {
      const std::string prefix =
          "stage" + std::to_string(s + 1) + ".conv" + std::to_string(i + 1);
      b.conv(stages[s].width, 3, 1, prefix);
      b.relu(prefix + ".relu");
    }
    b.max_pool(2, 2, "stage" + std::to_string(s + 1) + ".pool");
  }
  b.fully_connected(4096, "head.fc1");
  b.relu("head.relu1");
  b.fully_connected(4096, "head.fc2");
  b.relu("head.relu2");
  b.fully_connected(1000, "head.fc3");
  b.softmax("head.softmax");
  model.validate();
  model.set_activation_memory_scale(1.9);
  return model;
}

}  // namespace karma::graph
