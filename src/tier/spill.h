// Spill-path routing: which tier each evicted payload lands on.
//
// Placement, not just eviction (DESIGN.md §7): once more than one offload
// tier exists, "swap this block out" is underdetermined — the router picks
// the innermost tier with room, walking outward (host DRAM before NVMe),
// so the cheapest store absorbs as much of the working set as it can and
// only the overflow pays NVMe bandwidth. Routing is capacity-driven and
// deterministic; the planner then lets the simulated makespan judge the
// resulting plan like any other candidate.
#pragma once

#include <vector>

#include "src/tier/accountant.h"
#include "src/tier/hierarchy.h"

namespace karma::tier {

/// Destination tier chosen for one payload.
struct SpillRoute {
  Tier destination = Tier::kHost;
};

/// Routes each payload (in the given order, which callers choose to be the
/// eviction order) to the innermost offload tier that still has room,
/// charging a fresh accountant as it goes. `reserved_host` is pre-charged
/// to the host tier before routing (e.g. optimizer state pinned in DRAM).
/// Throws std::runtime_error naming the payload index when even the
/// outermost tier is full.
std::vector<SpillRoute> route_spills(const std::vector<Bytes>& payloads,
                                     const StorageHierarchy& hierarchy,
                                     Bytes reserved_host = 0);

/// Sum of payload bytes routed to `t`.
Bytes routed_bytes(const std::vector<SpillRoute>& routes,
                   const std::vector<Bytes>& payloads, Tier t);

}  // namespace karma::tier
