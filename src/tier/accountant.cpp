#include "src/tier/accountant.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "src/util/infeasible.h"

namespace karma::tier {

const char* residency_name(Residency r) {
  switch (r) {
    case Residency::kActivation: return "act";
    case Residency::kWeightShard: return "shard";
    case Residency::kGradient: return "grad";
    case Residency::kOptimizerState: return "opt";
  }
  return "?";
}

TierAccountant::TierAccountant(const StorageHierarchy& hierarchy)
    : hierarchy_(hierarchy) {}

int TierAccountant::index_of(Tier t) const {
  for (int i = 0; i < hierarchy_.num_tiers(); ++i)
    if (hierarchy_.tiers()[static_cast<std::size_t>(i)].tier == t) return i;
  return -1;
}

bool TierAccountant::fits(Tier t, Bytes bytes) const {
  const int i = index_of(t);
  if (i < 0) return false;
  const TierSpec& s = hierarchy_.tiers()[static_cast<std::size_t>(i)];
  if (s.unbounded()) return true;
  return used(t) + bytes <= s.capacity;
}

void TierAccountant::charge(Tier t, Residency r, Bytes bytes) {
  if (bytes < 0) throw std::logic_error("TierAccountant: negative charge");
  if (!fits(t, bytes))
    throw InfeasibleError(std::string("TierAccountant: tier '") +
                             tier_name(t) + "' cannot fit " +
                             format_bytes(bytes) + " of " + residency_name(r) +
                             "; " + dump());
  used_[static_cast<int>(t)][static_cast<int>(r)] += bytes;
  peak_[static_cast<int>(t)] =
      std::max(peak_[static_cast<int>(t)], used(t));
}

void TierAccountant::release(Tier t, Residency r, Bytes bytes) {
  if (bytes < 0) throw std::logic_error("TierAccountant: negative release");
  Bytes& u = used_[static_cast<int>(t)][static_cast<int>(r)];
  if (bytes > u)
    throw std::logic_error(std::string("TierAccountant: ") +
                           residency_name(r) + " underflow on '" +
                           tier_name(t) + "' (release " + format_bytes(bytes) +
                           " of " + format_bytes(u) + " outstanding); " +
                           dump());
  u -= bytes;
}

Bytes TierAccountant::used(Tier t) const {
  Bytes total = 0;
  for (int r = 0; r < kNumResidencyClasses; ++r)
    total += used_[static_cast<int>(t)][r];
  return total;
}

Bytes TierAccountant::used(Tier t, Residency r) const {
  return used_[static_cast<int>(t)][static_cast<int>(r)];
}

Bytes TierAccountant::free_bytes(Tier t) const {
  const int i = index_of(t);
  if (i < 0) return 0;
  const TierSpec& s = hierarchy_.tiers()[static_cast<std::size_t>(i)];
  if (s.unbounded()) return TierSpec::kUnbounded;
  return s.capacity - used(t);
}

Bytes TierAccountant::peak(Tier t) const { return peak_[static_cast<int>(t)]; }

std::string TierAccountant::dump() const {
  std::ostringstream os;
  os << "ledger:";
  for (const auto& s : hierarchy_.tiers()) {
    os << " " << tier_name(s.tier) << " " << used(s.tier) << "B/";
    if (s.unbounded())
      os << "inf";
    else
      os << s.capacity << "B";
    // Per-class breakdown, only for classes actually holding bytes.
    std::ostringstream classes;
    for (int r = 0; r < kNumResidencyClasses; ++r) {
      const Bytes u = used_[static_cast<int>(s.tier)][r];
      if (u > 0)
        classes << (classes.tellp() > 0 ? " " : "")
                << residency_name(static_cast<Residency>(r)) << " " << u << "B";
    }
    if (classes.tellp() > 0) os << " (" << classes.str() << ")";
  }
  return os.str();
}

}  // namespace karma::tier
