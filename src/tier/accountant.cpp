#include "src/tier/accountant.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace karma::tier {

TierAccountant::TierAccountant(const StorageHierarchy& hierarchy)
    : hierarchy_(hierarchy) {}

int TierAccountant::index_of(Tier t) const {
  for (int i = 0; i < hierarchy_.num_tiers(); ++i)
    if (hierarchy_.tiers()[static_cast<std::size_t>(i)].tier == t) return i;
  return -1;
}

bool TierAccountant::fits(Tier t, Bytes bytes) const {
  const int i = index_of(t);
  if (i < 0) return false;
  const TierSpec& s = hierarchy_.tiers()[static_cast<std::size_t>(i)];
  if (s.unbounded()) return true;
  return used_[static_cast<int>(t)] + bytes <= s.capacity;
}

void TierAccountant::charge(Tier t, Bytes bytes) {
  if (bytes < 0) throw std::logic_error("TierAccountant: negative charge");
  if (!fits(t, bytes))
    throw std::runtime_error(std::string("TierAccountant: tier '") +
                             tier_name(t) + "' cannot fit " +
                             format_bytes(bytes) + "; " + dump());
  Bytes& u = used_[static_cast<int>(t)];
  u += bytes;
  peak_[static_cast<int>(t)] = std::max(peak_[static_cast<int>(t)], u);
}

void TierAccountant::release(Tier t, Bytes bytes) {
  if (bytes < 0) throw std::logic_error("TierAccountant: negative release");
  Bytes& u = used_[static_cast<int>(t)];
  if (bytes > u)
    throw std::logic_error(std::string("TierAccountant: underflow on '") +
                           tier_name(t) + "'; " + dump());
  u -= bytes;
}

Bytes TierAccountant::used(Tier t) const { return used_[static_cast<int>(t)]; }

Bytes TierAccountant::free_bytes(Tier t) const {
  const int i = index_of(t);
  if (i < 0) return 0;
  const TierSpec& s = hierarchy_.tiers()[static_cast<std::size_t>(i)];
  if (s.unbounded()) return TierSpec::kUnbounded;
  return s.capacity - used_[static_cast<int>(t)];
}

Bytes TierAccountant::peak(Tier t) const { return peak_[static_cast<int>(t)]; }

std::string TierAccountant::dump() const {
  std::ostringstream os;
  os << "ledger:";
  for (const auto& s : hierarchy_.tiers()) {
    os << " " << tier_name(s.tier) << " "
       << used_[static_cast<int>(s.tier)] << "B/";
    if (s.unbounded())
      os << "inf";
    else
      os << s.capacity << "B";
  }
  return os.str();
}

}  // namespace karma::tier
