#include "src/tier/spill.h"

#include <stdexcept>
#include <string>

#include "src/util/infeasible.h"

namespace karma::tier {

std::vector<SpillRoute> route_spills(const std::vector<Bytes>& payloads,
                                     const StorageHierarchy& hierarchy,
                                     Bytes reserved_host) {
  TierAccountant ledger(hierarchy);
  if (reserved_host > 0) ledger.charge(Tier::kHost, reserved_host);

  std::vector<SpillRoute> routes;
  routes.reserve(payloads.size());
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    const Bytes bytes = payloads[i];
    Tier t = Tier::kHost;
    while (!ledger.fits(t, bytes)) {
      const auto next = hierarchy.next_outward(t);
      if (!next)
        throw InfeasibleError(
            "route_spills: payload " + std::to_string(i) + " (" +
            format_bytes(bytes) + ") fits no offload tier; " + ledger.dump());
      t = *next;
    }
    ledger.charge(t, bytes);
    routes.push_back({t});
  }
  return routes;
}

Bytes routed_bytes(const std::vector<SpillRoute>& routes,
                   const std::vector<Bytes>& payloads, Tier t) {
  Bytes total = 0;
  for (std::size_t i = 0; i < routes.size() && i < payloads.size(); ++i)
    if (routes[i].destination == t) total += payloads[i];
  return total;
}

}  // namespace karma::tier
