// Tier-aware capacity accountant (DESIGN.md §7, §9).
//
// The engine's single free-memory counter generalizes to one ledger per
// tier: charges reserve bytes on a tier, releases return them, and the
// high-water mark per tier is what plans are accepted or rejected on.
// The accountant is pure bookkeeping — *when* charges happen is the
// engine's (or executor's) business — but it is the one place that knows
// whether a byte fits, so every spill decision funnels through it.
//
// Residency classes (DESIGN.md §9): a byte on an offload tier is not just
// "spilled" — it has a lifetime determined by *what* it is, and the ledger
// tracks each class separately so mispaired traffic is a machine-checked
// error instead of silent drift:
//
//   kActivation   paired swap-out -> swap-in; lifetime is one forward ->
//                 backward window. Net zero per iteration.
//   kWeightShard  pinned master copy (the weight-swapping regime keeps the
//                 authoritative weights in host DRAM). Charged once at plan
//                 start, released never; streaming the shard to the device
//                 does NOT release host bytes.
//   kGradient     paired gradient-out -> CPU/device update; lifetime is
//                 one backward(b) -> update(b) window. Net zero per
//                 iteration once every update consumed its gradients.
//   kOptimizerState
//                 pinned like kWeightShard (master weights + moments for
//                 the CPU update), pre-charged at admission time.
//
// Per-class underflow (releasing gradient bytes that were never charged,
// or more of them than are outstanding) throws std::logic_error: that is
// the lifetime-aware pairing check the distributed pipeline relies on.
#pragma once

#include <string>

#include "src/tier/hierarchy.h"

namespace karma::tier {

class TierAccountant {
 public:
  /// Empty-hierarchy placeholder: fits() nothing, charges throw. Exists so
  /// value types that embed a ledger snapshot (sim::EngineCheckpoint) are
  /// default-constructible; every live accountant is built from a real
  /// hierarchy.
  TierAccountant() = default;
  explicit TierAccountant(const StorageHierarchy& hierarchy);

  /// True when `bytes` more would still fit on `t`. Tiers absent from the
  /// hierarchy never fit (charging them is a routing bug upstream).
  bool fits(Tier t, Bytes bytes) const;

  /// Reserves `bytes` of class `r` on `t`; throws std::runtime_error with
  /// a ledger dump when the tier would overflow (callers that want to wait
  /// instead of fail must check fits() first).
  void charge(Tier t, Residency r, Bytes bytes);
  void charge(Tier t, Bytes bytes) { charge(t, Residency::kActivation, bytes); }

  /// Returns `bytes` of class `r` to `t`; throws std::logic_error when the
  /// class has fewer outstanding bytes than released (mispaired lifetime).
  void release(Tier t, Residency r, Bytes bytes);
  void release(Tier t, Bytes bytes) {
    release(t, Residency::kActivation, bytes);
  }

  Bytes used(Tier t) const;             ///< all classes
  Bytes used(Tier t, Residency r) const;
  Bytes free_bytes(Tier t) const;
  Bytes peak(Tier t) const;

  const StorageHierarchy& hierarchy() const { return hierarchy_; }

  /// One-line ledger state with a per-class breakdown for occupied tiers,
  /// e.g. "ledger: device 800B/1000B host 700B/2000B (act 500B grad 200B)",
  /// embedded in engine deadlock reports.
  std::string dump() const;

 private:
  int index_of(Tier t) const;  ///< -1 when absent

  StorageHierarchy hierarchy_;
  Bytes used_[kNumTiers][kNumResidencyClasses] = {};
  Bytes peak_[kNumTiers] = {0, 0, 0};
};

}  // namespace karma::tier
