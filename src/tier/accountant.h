// Tier-aware capacity accountant (DESIGN.md §7).
//
// The engine's single free-memory counter generalizes to one ledger per
// tier: charges reserve bytes on a tier, releases return them, and the
// high-water mark per tier is what plans are accepted or rejected on.
// The accountant is pure bookkeeping — *when* charges happen is the
// engine's (or executor's) business — but it is the one place that knows
// whether a byte fits, so every spill decision funnels through it.
#pragma once

#include <string>

#include "src/tier/hierarchy.h"

namespace karma::tier {

class TierAccountant {
 public:
  explicit TierAccountant(const StorageHierarchy& hierarchy);

  /// True when `bytes` more would still fit on `t`. Tiers absent from the
  /// hierarchy never fit (charging them is a routing bug upstream).
  bool fits(Tier t, Bytes bytes) const;

  /// Reserves `bytes` on `t`; throws std::runtime_error with a ledger dump
  /// when the tier would overflow (callers that want to wait instead of
  /// fail must check fits() first).
  void charge(Tier t, Bytes bytes);

  /// Returns `bytes` to `t`; throws std::logic_error on underflow.
  void release(Tier t, Bytes bytes);

  Bytes used(Tier t) const;
  Bytes free_bytes(Tier t) const;
  Bytes peak(Tier t) const;

  const StorageHierarchy& hierarchy() const { return hierarchy_; }

  /// One-line ledger state, e.g. "device 800/1000B host 0/2000B ...",
  /// embedded in engine deadlock reports.
  std::string dump() const;

 private:
  int index_of(Tier t) const;  ///< -1 when absent

  StorageHierarchy hierarchy_;
  Bytes used_[kNumTiers] = {0, 0, 0};
  Bytes peak_[kNumTiers] = {0, 0, 0};
};

}  // namespace karma::tier
