#include "src/tier/hierarchy.h"

#include <sstream>
#include <stdexcept>

namespace karma::tier {

const char* tier_name(Tier t) {
  switch (t) {
    case Tier::kDevice: return "device";
    case Tier::kHost: return "host";
    case Tier::kNvme: return "nvme";
  }
  return "?";
}

StorageHierarchy::StorageHierarchy(std::vector<TierSpec> tiers)
    : tiers_(std::move(tiers)) {
  if (tiers_.empty())
    throw std::invalid_argument("StorageHierarchy: no tiers");
  if (tiers_.front().tier != Tier::kDevice)
    throw std::invalid_argument("StorageHierarchy: first tier must be device");
  for (std::size_t i = 1; i < tiers_.size(); ++i) {
    if (static_cast<int>(tiers_[i].tier) <=
        static_cast<int>(tiers_[i - 1].tier))
      throw std::invalid_argument(
          "StorageHierarchy: tiers must be strictly ordered outward");
    if (tiers_[i].read_bw <= 0.0 || tiers_[i].write_bw <= 0.0)
      throw std::invalid_argument(
          std::string("StorageHierarchy: offload tier '") +
          tier_name(tiers_[i].tier) + "' needs positive read/write bandwidth");
  }
  for (const auto& t : tiers_) {
    if (t.capacity <= 0)
      throw std::invalid_argument(std::string("StorageHierarchy: tier '") +
                                  tier_name(t.tier) +
                                  "' needs positive capacity");
  }
}

bool StorageHierarchy::has(Tier t) const {
  for (const auto& s : tiers_)
    if (s.tier == t) return true;
  return false;
}

const TierSpec& StorageHierarchy::spec(Tier t) const {
  for (const auto& s : tiers_)
    if (s.tier == t) return s;
  throw std::out_of_range(std::string("StorageHierarchy: no tier '") +
                          tier_name(t) + "'");
}

std::optional<Tier> StorageHierarchy::next_outward(Tier t) const {
  for (std::size_t i = 0; i + 1 < tiers_.size(); ++i)
    if (tiers_[i].tier == t) return tiers_[i + 1].tier;
  return std::nullopt;
}

Bytes StorageHierarchy::offload_capacity() const {
  Bytes total = 0;
  for (const auto& s : tiers_)
    if (s.tier != Tier::kDevice) {
      if (s.unbounded()) return TierSpec::kUnbounded;
      total += s.capacity;
    }
  return total;
}

std::string StorageHierarchy::describe() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < tiers_.size(); ++i) {
    const TierSpec& s = tiers_[i];
    if (i > 0) os << " -> ";
    os << tier_name(s.tier) << "(";
    if (s.unbounded())
      os << "unbounded";
    else
      os << format_bytes(s.capacity);
    if (s.tier != Tier::kDevice)
      os << ", r=" << s.read_bw / 1e9 << "GB/s, w=" << s.write_bw / 1e9
         << "GB/s";
    os << ")";
  }
  return os.str();
}

StorageHierarchy two_tier(Bytes device_capacity, Bandwidth host_bw,
                          Seconds host_latency) {
  TierSpec dev;
  dev.tier = Tier::kDevice;
  dev.capacity = device_capacity;
  TierSpec host;
  host.tier = Tier::kHost;
  host.capacity = TierSpec::kUnbounded;
  host.read_bw = host_bw;
  host.write_bw = host_bw;
  host.latency = host_latency;
  return StorageHierarchy({dev, host});
}

StorageHierarchy three_tier(Bytes device_capacity, const TierSpec& host,
                            const TierSpec& nvme) {
  TierSpec dev;
  dev.tier = Tier::kDevice;
  dev.capacity = device_capacity;
  TierSpec h = host;
  h.tier = Tier::kHost;
  TierSpec n = nvme;
  n.tier = Tier::kNvme;
  return StorageHierarchy({dev, h, n});
}

StorageHierarchy test_hierarchy() {
  TierSpec host;
  host.capacity = 2000;
  host.read_bw = 1.0;
  host.write_bw = 1.0;
  TierSpec nvme;
  nvme.capacity = 10000;
  nvme.read_bw = 1.0;
  nvme.write_bw = 0.5;
  return three_tier(1000, host, nvme);
}

}  // namespace karma::tier
