// Storage-hierarchy description for tiered offload (DESIGN.md §7).
//
// KARMA's original model is two-level: device HBM backed by host DRAM.
// The moment host memory is the binding constraint (Turing-NLG-scale
// weights per rank, large global batches), a third tier — NVMe-class
// storage, in the spirit of ZeRO-Infinity — is needed. A StorageHierarchy
// names each tier's capacity, read/write bandwidth, and per-transfer
// latency; the planner routes spills per tier and the engine charges
// residency per tier, so "does this plan fit" becomes a question asked of
// every level of the hierarchy, not just HBM.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/util/units.h"

namespace karma::tier {

/// Levels ordered nearest-to-farthest from the compute units. kDevice is
/// where kernels run; kHost and kNvme are spill destinations.
enum class Tier { kDevice = 0, kHost = 1, kNvme = 2 };
inline constexpr int kNumTiers = 3;

const char* tier_name(Tier t);

/// What a byte placed on an offload tier *is*, which determines its
/// lifetime (DESIGN.md §9; ledger semantics in accountant.h):
///   kActivation     paired swap-out -> swap-in within one iteration;
///   kWeightShard    pinned host master copy, whole-plan lifetime;
///   kGradient       paired gradient-out -> CPU/device update;
///   kOptimizerState pinned like kWeightShard, pre-charged at admission.
enum class Residency {
  kActivation = 0,
  kWeightShard = 1,
  kGradient = 2,
  kOptimizerState = 3,
};
inline constexpr int kNumResidencyClasses = 4;

const char* residency_name(Residency r);

struct TierSpec {
  Tier tier = Tier::kDevice;
  /// kUnbounded models the seed's assumption that host DRAM always fits.
  Bytes capacity = 0;
  Bandwidth read_bw = 0.0;   ///< tier -> device (swap-in source) throughput
  Bandwidth write_bw = 0.0;  ///< device -> tier (swap-out sink) throughput
  Seconds latency = 0.0;     ///< fixed per-transfer launch/seek latency

  static constexpr Bytes kUnbounded = INT64_C(1) << 62;
  bool unbounded() const { return capacity >= kUnbounded; }
};

/// An ordered set of TierSpecs (device first). The device tier's read/write
/// bandwidths are unused — kernels touch HBM through the roofline model in
/// sim::DeviceSpec — but its capacity seeds the engine's accountant.
class StorageHierarchy {
 public:
  StorageHierarchy() = default;
  /// Tiers must be non-empty, start at kDevice, and be strictly ordered
  /// outward; throws std::invalid_argument otherwise.
  explicit StorageHierarchy(std::vector<TierSpec> tiers);

  const std::vector<TierSpec>& tiers() const { return tiers_; }
  int num_tiers() const { return static_cast<int>(tiers_.size()); }

  bool has(Tier t) const;
  /// Throws std::out_of_range when the tier is absent.
  const TierSpec& spec(Tier t) const;

  // Note: transfer *times* are deliberately not computed here. The engine
  // prices tier traffic through sim::DeviceSpec::read_from_tier_time /
  // write_to_tier_time (which model the NVMe->host->device pipeline); the
  // bandwidths in TierSpec are descriptive capacity-planning data.

  /// The next tier farther from the device than `t`, if the hierarchy has
  /// one — the spill-path successor.
  std::optional<Tier> next_outward(Tier t) const;

  /// Total spill capacity outside the device tier.
  Bytes offload_capacity() const;

  std::string describe() const;

 private:
  std::vector<TierSpec> tiers_;
};

/// Two-tier hierarchy matching the seed model: device HBM of `device_capacity`
/// backed by unbounded host DRAM at `host_bw` both directions.
StorageHierarchy two_tier(Bytes device_capacity, Bandwidth host_bw,
                          Seconds host_latency = 10e-6);

/// Three-tier hierarchy: device HBM, bounded host DRAM, NVMe storage.
StorageHierarchy three_tier(Bytes device_capacity, const TierSpec& host,
                            const TierSpec& nvme);

/// Tiny round-number hierarchy for tests: 1000 B device, 2000 B host at
/// 1 B/s, 10000 B NVMe at 0.5 B/s write / 1 B/s read, zero latency.
StorageHierarchy test_hierarchy();

}  // namespace karma::tier
