#include "src/train/arena.h"

#include <algorithm>

namespace karma::train {

void DevicePool::allocate(Bytes bytes) {
  if (bytes < 0) throw std::invalid_argument("DevicePool::allocate: negative");
  if (used_ + bytes > capacity_)
    throw CapacityError("DevicePool: allocation of " + std::to_string(bytes) +
                        " B exceeds capacity (" + std::to_string(used_) +
                        " used of " + std::to_string(capacity_) + ")");
  used_ += bytes;
  peak_ = std::max(peak_, used_);
}

void DevicePool::release(Bytes bytes) {
  if (bytes < 0) throw std::invalid_argument("DevicePool::release: negative");
  if (bytes > used_) throw std::logic_error("DevicePool: release underflow");
  used_ -= bytes;
}

}  // namespace karma::train
