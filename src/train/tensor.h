// Minimal dense float tensor for the numeric twin (DESIGN.md §3).
//
// The simulator in src/sim predicts *time*; this engine executes *values*
// so that the out-of-core semantics — swapping, recompute, CPU-side
// updates, data-parallel exchange — can be tested for exactness against
// in-core training (the paper's Sec. IV-D accuracy claim, verified
// bitwise instead of with GPU-years).
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "src/util/rng.h"

namespace karma::train {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<std::size_t> shape);

  static Tensor zeros(std::vector<std::size_t> shape) {
    return Tensor(std::move(shape));
  }
  /// Uniform init in [-scale, scale], deterministic for a given rng.
  static Tensor uniform(std::vector<std::size_t> shape, Rng& rng,
                        float scale);

  const std::vector<std::size_t>& shape() const { return shape_; }
  std::size_t numel() const { return data_.size(); }
  std::size_t dim(std::size_t i) const { return shape_.at(i); }
  std::size_t rank() const { return shape_.size(); }
  std::int64_t bytes() const {
    return static_cast<std::int64_t>(data_.size() * sizeof(float));
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float& at(std::size_t i) { return data_.at(i); }
  float at(std::size_t i) const { return data_.at(i); }

  void fill(float value);
  /// Releases the backing storage (capacity and all); numel becomes 0
  /// until `restore`d. Models eviction from the device pool.
  std::vector<float> take_storage();
  void restore_storage(std::vector<float> storage);
  bool has_storage() const { return !data_.empty() || expected_ == 0; }

  bool same_shape(const Tensor& o) const { return shape_ == o.shape_; }

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> data_;
  std::size_t expected_ = 0;  ///< numel implied by shape_
};

/// y = a @ b for row-major [m,k] x [k,n].
void matmul(const Tensor& a, const Tensor& b, Tensor& out);
/// y = a @ b^T for [m,k] x [n,k].
void matmul_bt(const Tensor& a, const Tensor& b, Tensor& out);
/// y = a^T @ b for [k,m] x [k,n].
void matmul_at(const Tensor& a, const Tensor& b, Tensor& out);

/// Element-wise helpers.
void add_inplace(Tensor& a, const Tensor& b);
void scale_inplace(Tensor& a, float s);
/// a += s * b (axpy).
void axpy_inplace(Tensor& a, float s, const Tensor& b);

/// Max absolute difference; throws on shape mismatch.
float max_abs_diff(const Tensor& a, const Tensor& b);
/// Bitwise equality of contents.
bool bitwise_equal(const Tensor& a, const Tensor& b);

}  // namespace karma::train
