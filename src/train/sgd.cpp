#include "src/train/sgd.h"

#include <stdexcept>

namespace karma::train {

void SGD::ensure_velocity(const std::vector<Tensor*>& params) {
  if (momentum_ == 0.0f) return;
  if (velocity_.size() == params.size()) return;
  if (!velocity_.empty())
    throw std::logic_error("SGD: parameter set changed mid-training");
  velocity_.reserve(params.size());
  for (const Tensor* p : params) velocity_.emplace_back(p->shape());
}

void SGD::step(const std::vector<Tensor*>& params,
               const std::vector<Tensor*>& grads) {
  if (params.size() != grads.size())
    throw std::invalid_argument("SGD::step: size mismatch");
  ensure_velocity(params);
  for (std::size_t i = 0; i < params.size(); ++i) {
    Tensor& p = *params[i];
    const Tensor& g = *grads[i];
    if (momentum_ != 0.0f) {
      Tensor& v = velocity_[i];
      for (std::size_t j = 0; j < p.numel(); ++j) {
        v.data()[j] = momentum_ * v.data()[j] + g.data()[j];
        p.data()[j] -= lr_ * v.data()[j];
      }
    } else {
      for (std::size_t j = 0; j < p.numel(); ++j)
        p.data()[j] -= lr_ * g.data()[j];
    }
  }
}

void SGD::step_on_host(const std::vector<Tensor*>& params,
                       const std::vector<Tensor*>& grads) {
  if (params.size() != grads.size())
    throw std::invalid_argument("SGD::step_on_host: size mismatch");
  ensure_velocity(params);
  for (std::size_t i = 0; i < params.size(); ++i) {
    // Stage through host buffers: device -> host copies ...
    Tensor host_p = *params[i];
    const Tensor host_g = *grads[i];
    // ... update on the host ...
    if (momentum_ != 0.0f) {
      Tensor& v = velocity_[i];
      for (std::size_t j = 0; j < host_p.numel(); ++j) {
        v.data()[j] = momentum_ * v.data()[j] + host_g.data()[j];
        host_p.data()[j] -= lr_ * v.data()[j];
      }
    } else {
      for (std::size_t j = 0; j < host_p.numel(); ++j)
        host_p.data()[j] -= lr_ * host_g.data()[j];
    }
    // ... and swap the refreshed weights back in (host -> device).
    *params[i] = std::move(host_p);
  }
}

}  // namespace karma::train
