#include <limits>
#include "src/train/nn.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace karma::train {

std::vector<float> Layer::evict_saved() {
  if (saved_input_.numel() == 0) return {};
  return saved_input_.take_storage();
}

void Layer::restore_saved(std::vector<float> storage) {
  if (storage.empty()) return;
  saved_input_.restore_storage(std::move(storage));
}

std::int64_t Layer::saved_bytes() const { return saved_input_.bytes(); }

// ---------------------------------------------------------------- Linear

Linear::Linear(std::size_t in_features, std::size_t out_features, Rng& rng) {
  const float scale =
      1.0f / std::sqrt(static_cast<float>(in_features));
  weight_ = Tensor::uniform({in_features, out_features}, rng, scale);
  bias_ = Tensor::zeros({out_features});
  grad_weight_ = Tensor::zeros({in_features, out_features});
  grad_bias_ = Tensor::zeros({out_features});
}

Tensor Linear::forward(const Tensor& input) {
  if (input.rank() != 2 || input.dim(1) != weight_.dim(0))
    throw std::invalid_argument("Linear: bad input shape");
  saved_input_ = input;  // copy: the pool owns eviction, not us
  Tensor out({input.dim(0), weight_.dim(1)});
  matmul(input, weight_, out);
  const std::size_t n = out.dim(0), f = out.dim(1);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < f; ++j) out.data()[i * f + j] += bias_.at(j);
  return out;
}

Tensor Linear::backward(const Tensor& grad_output) {
  const std::size_t n = grad_output.dim(0), f = grad_output.dim(1);
  if (f != weight_.dim(1) || saved_input_.numel() == 0)
    throw std::logic_error("Linear::backward: missing state");
  // dW += X^T dY ; db += sum(dY) ; dX = dY W^T.
  Tensor gw({weight_.dim(0), weight_.dim(1)});
  matmul_at(saved_input_, grad_output, gw);
  add_inplace(grad_weight_, gw);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < f; ++j)
      grad_bias_.data()[j] += grad_output.data()[i * f + j];
  Tensor gx({n, weight_.dim(0)});
  matmul_bt(grad_output, weight_, gx);
  return gx;
}

// ------------------------------------------------------------------ ReLU

Tensor ReLU::forward(const Tensor& input) {
  saved_input_ = input;
  Tensor out(input.shape());
  for (std::size_t i = 0; i < input.numel(); ++i)
    out.data()[i] = std::max(0.0f, input.data()[i]);
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  if (saved_input_.numel() == 0)
    throw std::logic_error("ReLU::backward: missing state");
  Tensor gx(grad_output.shape());
  for (std::size_t i = 0; i < gx.numel(); ++i)
    gx.data()[i] = saved_input_.data()[i] > 0.0f ? grad_output.data()[i] : 0.0f;
  return gx;
}

// ---------------------------------------------------------------- Conv2d

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, Rng& rng)
    : in_c_(in_channels), out_c_(out_channels), k_(kernel) {
  const float scale = 1.0f / std::sqrt(static_cast<float>(
                                 in_channels * kernel * kernel));
  weight_ = Tensor::uniform({out_c_, in_c_, k_, k_}, rng, scale);
  bias_ = Tensor::zeros({out_c_});
  grad_weight_ = Tensor::zeros({out_c_, in_c_, k_, k_});
  grad_bias_ = Tensor::zeros({out_c_});
}

Tensor Conv2d::forward(const Tensor& input) {
  if (input.rank() != 4 || input.dim(1) != in_c_)
    throw std::invalid_argument("Conv2d: bad input shape");
  saved_input_ = input;
  const std::size_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const std::ptrdiff_t pad = static_cast<std::ptrdiff_t>(k_ / 2);
  Tensor out({n, out_c_, h, w});
  for (std::size_t s = 0; s < n; ++s)
    for (std::size_t oc = 0; oc < out_c_; ++oc)
      for (std::size_t y = 0; y < h; ++y)
        for (std::size_t x = 0; x < w; ++x) {
          float acc = bias_.at(oc);
          for (std::size_t ic = 0; ic < in_c_; ++ic)
            for (std::size_t ky = 0; ky < k_; ++ky)
              for (std::size_t kx = 0; kx < k_; ++kx) {
                const std::ptrdiff_t iy =
                    static_cast<std::ptrdiff_t>(y + ky) - pad;
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(x + kx) - pad;
                if (iy < 0 || ix < 0 ||
                    iy >= static_cast<std::ptrdiff_t>(h) ||
                    ix >= static_cast<std::ptrdiff_t>(w))
                  continue;
                acc += input.data()[((s * in_c_ + ic) * h +
                                     static_cast<std::size_t>(iy)) *
                                        w +
                                    static_cast<std::size_t>(ix)] *
                       weight_.data()[((oc * in_c_ + ic) * k_ + ky) * k_ + kx];
              }
          out.data()[((s * out_c_ + oc) * h + y) * w + x] = acc;
        }
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  if (saved_input_.numel() == 0)
    throw std::logic_error("Conv2d::backward: missing state");
  const Tensor& input = saved_input_;
  const std::size_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const std::ptrdiff_t pad = static_cast<std::ptrdiff_t>(k_ / 2);
  Tensor gx(input.shape());
  for (std::size_t s = 0; s < n; ++s)
    for (std::size_t oc = 0; oc < out_c_; ++oc)
      for (std::size_t y = 0; y < h; ++y)
        for (std::size_t x = 0; x < w; ++x) {
          const float go =
              grad_output.data()[((s * out_c_ + oc) * h + y) * w + x];
          grad_bias_.data()[oc] += go;
          for (std::size_t ic = 0; ic < in_c_; ++ic)
            for (std::size_t ky = 0; ky < k_; ++ky)
              for (std::size_t kx = 0; kx < k_; ++kx) {
                const std::ptrdiff_t iy =
                    static_cast<std::ptrdiff_t>(y + ky) - pad;
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(x + kx) - pad;
                if (iy < 0 || ix < 0 ||
                    iy >= static_cast<std::ptrdiff_t>(h) ||
                    ix >= static_cast<std::ptrdiff_t>(w))
                  continue;
                const std::size_t in_idx =
                    ((s * in_c_ + ic) * h + static_cast<std::size_t>(iy)) * w +
                    static_cast<std::size_t>(ix);
                const std::size_t w_idx =
                    ((oc * in_c_ + ic) * k_ + ky) * k_ + kx;
                grad_weight_.data()[w_idx] += go * input.data()[in_idx];
                gx.data()[in_idx] += go * weight_.data()[w_idx];
              }
        }
  return gx;
}

// ------------------------------------------------------------ BatchNorm2d

BatchNorm2d::BatchNorm2d(std::size_t channels, float eps)
    : channels_(channels), eps_(eps) {
  gamma_ = Tensor({channels});
  gamma_.fill(1.0f);
  beta_ = Tensor::zeros({channels});
  grad_gamma_ = Tensor::zeros({channels});
  grad_beta_ = Tensor::zeros({channels});
}

Tensor BatchNorm2d::forward(const Tensor& input) {
  if (input.rank() != 4 || input.dim(1) != channels_)
    throw std::invalid_argument("BatchNorm2d: bad input shape");
  saved_input_ = input;
  const std::size_t n = input.dim(0), c = channels_, h = input.dim(2),
                    w = input.dim(3);
  const std::size_t per_channel = n * h * w;
  mean_.assign(c, 0.0f);
  inv_std_.assign(c, 0.0f);
  for (std::size_t ch = 0; ch < c; ++ch) {
    double sum = 0.0;
    for (std::size_t s = 0; s < n; ++s)
      for (std::size_t i = 0; i < h * w; ++i)
        sum += input.data()[(s * c + ch) * h * w + i];
    const float mean = static_cast<float>(sum / per_channel);
    double var = 0.0;
    for (std::size_t s = 0; s < n; ++s)
      for (std::size_t i = 0; i < h * w; ++i) {
        const float d = input.data()[(s * c + ch) * h * w + i] - mean;
        var += static_cast<double>(d) * d;
      }
    mean_[ch] = mean;
    inv_std_[ch] =
        1.0f / std::sqrt(static_cast<float>(var / per_channel) + eps_);
  }
  Tensor out(input.shape());
  for (std::size_t s = 0; s < n; ++s)
    for (std::size_t ch = 0; ch < c; ++ch)
      for (std::size_t i = 0; i < h * w; ++i) {
        const std::size_t idx = (s * c + ch) * h * w + i;
        out.data()[idx] = gamma_.at(ch) * (input.data()[idx] - mean_[ch]) *
                              inv_std_[ch] +
                          beta_.at(ch);
      }
  return out;
}

Tensor BatchNorm2d::backward(const Tensor& grad_output) {
  if (saved_input_.numel() == 0 || mean_.empty())
    throw std::logic_error("BatchNorm2d::backward: missing state");
  const Tensor& x = saved_input_;
  const std::size_t n = x.dim(0), c = channels_, h = x.dim(2), w = x.dim(3);
  const std::size_t m = n * h * w;  // elements per channel
  Tensor gx(x.shape());
  for (std::size_t ch = 0; ch < c; ++ch) {
    // dL/dgamma = sum(dy * xhat); dL/dbeta = sum(dy);
    // dL/dx = gamma*inv_std/m * (m*dy - sum(dy) - xhat*sum(dy*xhat)).
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (std::size_t s = 0; s < n; ++s)
      for (std::size_t i = 0; i < h * w; ++i) {
        const std::size_t idx = (s * c + ch) * h * w + i;
        const float xhat = (x.data()[idx] - mean_[ch]) * inv_std_[ch];
        sum_dy += grad_output.data()[idx];
        sum_dy_xhat +=
            static_cast<double>(grad_output.data()[idx]) * xhat;
      }
    grad_beta_.data()[ch] += static_cast<float>(sum_dy);
    grad_gamma_.data()[ch] += static_cast<float>(sum_dy_xhat);
    const float scale = gamma_.at(ch) * inv_std_[ch] / static_cast<float>(m);
    for (std::size_t s = 0; s < n; ++s)
      for (std::size_t i = 0; i < h * w; ++i) {
        const std::size_t idx = (s * c + ch) * h * w + i;
        const float xhat = (x.data()[idx] - mean_[ch]) * inv_std_[ch];
        gx.data()[idx] =
            scale * (static_cast<float>(m) * grad_output.data()[idx] -
                     static_cast<float>(sum_dy) -
                     xhat * static_cast<float>(sum_dy_xhat));
      }
  }
  return gx;
}

// ------------------------------------------------------------- MaxPool2d

Tensor MaxPool2d::forward(const Tensor& input) {
  if (input.rank() != 4 || input.dim(2) % 2 != 0 || input.dim(3) % 2 != 0)
    throw std::invalid_argument("MaxPool2d: H/W must be even");
  const std::size_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                    w = input.dim(3);
  const std::size_t oh = h / 2, ow = w / 2;
  in_shape_ = {n, c, h, w};
  out_shape_ = {n, c, oh, ow};
  Tensor out(out_shape_);
  argmax_.assign(out.numel(), 0);
  for (std::size_t s = 0; s < n; ++s)
    for (std::size_t ch = 0; ch < c; ++ch)
      for (std::size_t y = 0; y < oh; ++y)
        for (std::size_t x = 0; x < ow; ++x) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t dy = 0; dy < 2; ++dy)
            for (std::size_t dx = 0; dx < 2; ++dx) {
              const std::size_t idx =
                  ((s * c + ch) * h + 2 * y + dy) * w + 2 * x + dx;
              if (input.data()[idx] > best) {
                best = input.data()[idx];
                best_idx = idx;
              }
            }
          const std::size_t out_idx = ((s * c + ch) * oh + y) * ow + x;
          out.data()[out_idx] = best;
          argmax_[out_idx] = best_idx;
        }
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  if (argmax_.empty()) throw std::logic_error("MaxPool2d: missing state");
  Tensor gx(in_shape_);
  for (std::size_t i = 0; i < grad_output.numel(); ++i)
    gx.data()[argmax_[i]] += grad_output.data()[i];
  return gx;
}

// --------------------------------------------------------------- Flatten

Tensor Flatten::forward(const Tensor& input) {
  in_shape_ = input.shape();
  Tensor out({input.dim(0), input.numel() / input.dim(0)});
  std::copy(input.data(), input.data() + input.numel(), out.data());
  return out;
}

Tensor Flatten::backward(const Tensor& grad_output) {
  Tensor gx(in_shape_);
  std::copy(grad_output.data(), grad_output.data() + grad_output.numel(),
            gx.data());
  return gx;
}

// -------------------------------------------------- SoftmaxCrossEntropy

float SoftmaxCrossEntropy::forward(const Tensor& logits,
                                   const std::vector<std::size_t>& labels) {
  const std::size_t n = logits.dim(0), c = logits.dim(1);
  if (labels.size() != n)
    throw std::invalid_argument("SoftmaxCrossEntropy: label count");
  grad_ = Tensor({n, c});
  float loss = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * c;
    const float maxv = *std::max_element(row, row + c);
    float denom = 0.0f;
    for (std::size_t j = 0; j < c; ++j) denom += std::exp(row[j] - maxv);
    const std::size_t label = labels[i];
    if (label >= c) throw std::invalid_argument("label out of range");
    loss -= (row[label] - maxv) - std::log(denom);
    for (std::size_t j = 0; j < c; ++j) {
      const float p = std::exp(row[j] - maxv) / denom;
      grad_.data()[i * c + j] =
          (p - (j == label ? 1.0f : 0.0f)) / static_cast<float>(n);
    }
  }
  return loss / static_cast<float>(n);
}

// ------------------------------------------------------------ Sequential

Tensor Sequential::forward(const Tensor& input) {
  Tensor x = input;
  for (auto& l : layers_) x = l->forward(x);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = (*it)->backward(g);
  return g;
}

std::vector<Tensor*> Sequential::all_params() {
  std::vector<Tensor*> out;
  for (auto& l : layers_)
    for (Tensor* p : l->params()) out.push_back(p);
  return out;
}

std::vector<Tensor*> Sequential::all_grads() {
  std::vector<Tensor*> out;
  for (auto& l : layers_)
    for (Tensor* g : l->grads()) out.push_back(g);
  return out;
}

void Sequential::zero_grads() {
  for (Tensor* g : all_grads()) g->fill(0.0f);
}

Sequential make_mlp(const std::vector<std::size_t>& widths, Rng& rng) {
  if (widths.size() < 2) throw std::invalid_argument("make_mlp: widths");
  Sequential net;
  for (std::size_t i = 0; i + 1 < widths.size(); ++i) {
    net.add(std::make_unique<Linear>(widths[i], widths[i + 1], rng));
    if (i + 2 < widths.size()) net.add(std::make_unique<ReLU>());
  }
  return net;
}

Sequential make_small_cnn(std::size_t in_channels, std::size_t image,
                          std::size_t classes, Rng& rng) {
  Sequential net;
  net.add(std::make_unique<Conv2d>(in_channels, 8, 3, rng));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<MaxPool2d>());
  net.add(std::make_unique<Conv2d>(8, 16, 3, rng));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<MaxPool2d>());
  net.add(std::make_unique<Flatten>());
  net.add(std::make_unique<Linear>(16 * (image / 4) * (image / 4), classes,
                                   rng));
  return net;
}

}  // namespace karma::train
