#include "src/train/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

namespace karma::train {

Tensor::Tensor(std::vector<std::size_t> shape) : shape_(std::move(shape)) {
  expected_ = 1;
  for (auto d : shape_) {
    if (d == 0) throw std::invalid_argument("Tensor: zero dim");
    expected_ *= d;
  }
  data_.assign(expected_, 0.0f);
}

Tensor Tensor::uniform(std::vector<std::size_t> shape, Rng& rng, float scale) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = rng.next_symmetric(scale);
  return t;
}

void Tensor::fill(float value) { std::fill(data_.begin(), data_.end(), value); }

std::vector<float> Tensor::take_storage() {
  if (data_.empty() && expected_ != 0)
    throw std::logic_error("Tensor::take_storage: already evicted");
  return std::move(data_);
}

void Tensor::restore_storage(std::vector<float> storage) {
  if (storage.size() != expected_)
    throw std::logic_error("Tensor::restore_storage: size mismatch");
  data_ = std::move(storage);
}

void matmul(const Tensor& a, const Tensor& b, Tensor& out) {
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k || out.dim(0) != m || out.dim(1) != n)
    throw std::invalid_argument("matmul: shape mismatch");
  out.fill(0.0f);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t p = 0; p < k; ++p) {
      const float av = a.data()[i * k + p];
      const float* brow = b.data() + p * n;
      float* orow = out.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
}

void matmul_bt(const Tensor& a, const Tensor& b, Tensor& out) {
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  if (b.dim(1) != k || out.dim(0) != m || out.dim(1) != n)
    throw std::invalid_argument("matmul_bt: shape mismatch");
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      const float* arow = a.data() + i * k;
      const float* brow = b.data() + j * k;
      for (std::size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      out.data()[i * n + j] = acc;
    }
}

void matmul_at(const Tensor& a, const Tensor& b, Tensor& out) {
  const std::size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k || out.dim(0) != m || out.dim(1) != n)
    throw std::invalid_argument("matmul_at: shape mismatch");
  out.fill(0.0f);
  for (std::size_t p = 0; p < k; ++p) {
    const float* arow = a.data() + p * m;
    const float* brow = b.data() + p * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float av = arow[i];
      float* orow = out.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void add_inplace(Tensor& a, const Tensor& b) {
  if (!a.same_shape(b)) throw std::invalid_argument("add: shape mismatch");
  for (std::size_t i = 0; i < a.numel(); ++i) a.data()[i] += b.data()[i];
}

void scale_inplace(Tensor& a, float s) {
  for (std::size_t i = 0; i < a.numel(); ++i) a.data()[i] *= s;
}

void axpy_inplace(Tensor& a, float s, const Tensor& b) {
  if (!a.same_shape(b)) throw std::invalid_argument("axpy: shape mismatch");
  for (std::size_t i = 0; i < a.numel(); ++i) a.data()[i] += s * b.data()[i];
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  if (!a.same_shape(b))
    throw std::invalid_argument("max_abs_diff: shape mismatch");
  float worst = 0.0f;
  for (std::size_t i = 0; i < a.numel(); ++i)
    worst = std::max(worst, std::fabs(a.data()[i] - b.data()[i]));
  return worst;
}

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  if (!a.same_shape(b)) return false;
  return std::memcmp(a.data(), b.data(), a.numel() * sizeof(float)) == 0;
}

}  // namespace karma::train
