// Executable neural-network layers with exact backward passes.
//
// Deliberately small — Linear / ReLU / Conv2d / BatchNorm / MaxPool plus a fused
// softmax-cross-entropy loss — but *real*: the out-of-core executor swaps
// these layers' saved activations through a capacity-limited pool and must
// reproduce in-core training bit-for-bit (tested).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/train/tensor.h"

namespace karma::train {

class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output and (when training) saves what backward
  /// needs.
  virtual Tensor forward(const Tensor& input) = 0;

  /// Given dL/d(output), returns dL/d(input) and accumulates dL/dW into
  /// the gradient buffers. Requires the saved state from the most recent
  /// forward.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Parameter / gradient access for the optimizer (empty for stateless
  /// layers).
  virtual std::vector<Tensor*> params() { return {}; }
  virtual std::vector<Tensor*> grads() { return {}; }

  /// Drops saved activations (out-of-core eviction support). The *input*
  /// saved by forward is handed to the caller; `restore_saved` puts it
  /// back before backward. Stateless layers with no saved input return an
  /// empty vector.
  virtual std::vector<float> evict_saved();
  virtual void restore_saved(std::vector<float> storage);
  /// Bytes of saved activation state currently held.
  virtual std::int64_t saved_bytes() const;

  virtual std::string name() const = 0;

 protected:
  Tensor saved_input_;  ///< most layers only need their input
};

/// y = x W + b, x: [n, in], W: [in, out].
class Linear : public Layer {
 public:
  Linear(std::size_t in_features, std::size_t out_features, Rng& rng);
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Tensor*> params() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> grads() override { return {&grad_weight_, &grad_bias_}; }
  std::string name() const override { return "Linear"; }

 private:
  Tensor weight_, bias_, grad_weight_, grad_bias_;
};

class ReLU : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "ReLU"; }
};

/// 2D convolution, NCHW, stride 1, "same" zero padding, square kernels.
/// Naive loops — correctness is the point; tests use small shapes.
class Conv2d : public Layer {
 public:
  Conv2d(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel, Rng& rng);
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Tensor*> params() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> grads() override { return {&grad_weight_, &grad_bias_}; }
  std::string name() const override { return "Conv2d"; }

 private:
  std::size_t in_c_, out_c_, k_;
  Tensor weight_, bias_, grad_weight_, grad_bias_;
};

/// Batch normalization over NCHW (per-channel statistics across N,H,W),
/// training mode: uses batch statistics, exact backward through them.
/// Exercises the recompute path with non-trivial saved state (mean/var
/// must rematerialize identically).
class BatchNorm2d : public Layer {
 public:
  explicit BatchNorm2d(std::size_t channels, float eps = 1e-5f);
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Tensor*> params() override { return {&gamma_, &beta_}; }
  std::vector<Tensor*> grads() override { return {&grad_gamma_, &grad_beta_}; }
  std::string name() const override { return "BatchNorm2d"; }

 private:
  std::size_t channels_;
  float eps_;
  Tensor gamma_, beta_, grad_gamma_, grad_beta_;
  std::vector<float> mean_, inv_std_;  // batch statistics (recomputable)
};

/// 2x2 max pool, stride 2, NCHW.
class MaxPool2d : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "MaxPool2d"; }

 private:
  std::vector<std::size_t> argmax_;
  std::vector<std::size_t> in_shape_;
  std::vector<std::size_t> out_shape_;
};

/// Flattens [n, c, h, w] -> [n, c*h*w].
class Flatten : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Flatten"; }

 private:
  std::vector<std::size_t> in_shape_;
};

/// Fused softmax + mean cross-entropy. Returns the loss; grad_logits()
/// yields dL/dlogits for the backward sweep.
class SoftmaxCrossEntropy {
 public:
  /// logits: [n, classes]; labels: one class index per row.
  float forward(const Tensor& logits, const std::vector<std::size_t>& labels);
  const Tensor& grad_logits() const { return grad_; }

 private:
  Tensor grad_;
};

/// An ordered stack of layers (the numeric counterpart of graph::Model).
class Sequential {
 public:
  void add(std::unique_ptr<Layer> layer) { layers_.push_back(std::move(layer)); }
  std::size_t size() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }

  Tensor forward(const Tensor& input);
  /// Full backward from dL/d(output); returns dL/d(input).
  Tensor backward(const Tensor& grad_output);

  std::vector<Tensor*> all_params();
  std::vector<Tensor*> all_grads();
  void zero_grads();

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// A small MLP / CNN factory used across tests, examples and benches.
Sequential make_mlp(const std::vector<std::size_t>& widths, Rng& rng);
Sequential make_small_cnn(std::size_t in_channels, std::size_t image,
                          std::size_t classes, Rng& rng);

}  // namespace karma::train
