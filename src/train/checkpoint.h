// Checkpoint / restart for the numeric twin — the mitigation the paper
// uses for scheduler limits (Sec. IV-C: "we split the epoch into separate
// runs at which we checkpoint/restart the model state") and the recovery
// mechanism behind the relaunch fault-tolerance mode (Table I).
//
// The format is a self-describing byte buffer (magic, tensor count, per-
// tensor rank/dims/data), endian-naive by design: checkpoints live and
// die on one cluster.
#pragma once

#include <cstdint>
#include <vector>

#include "src/train/nn.h"

namespace karma::train {

/// Serializes all parameters of `net` (in layer order).
std::vector<std::uint8_t> save_checkpoint(Sequential& net);

/// Restores parameters saved by `save_checkpoint` into `net`. Throws
/// std::runtime_error on malformed buffers or architecture mismatch
/// (tensor count / shapes must match exactly).
void load_checkpoint(Sequential& net, const std::vector<std::uint8_t>& data);

}  // namespace karma::train
