// SGD with optional momentum, plus the CPU-side update path of the
// distributed pipeline (Sec. III-G stage 5): gradients are copied "to the
// host", the update is computed on host-side weight copies, and the result
// is copied back — which must be bit-identical to updating in place
// (tested), since it is the same arithmetic on the same values.
#pragma once

#include <vector>

#include "src/train/tensor.h"

namespace karma::train {

class SGD {
 public:
  explicit SGD(float lr, float momentum = 0.0f) : lr_(lr), momentum_(momentum) {}

  /// In-place update: p -= lr * (v = momentum*v + g).
  void step(const std::vector<Tensor*>& params,
            const std::vector<Tensor*>& grads);

  /// The heterogeneous path: stages gradients and parameters through
  /// host-side buffers before updating, mirroring the distributed
  /// pipeline's CPU update. Numerically identical to `step` by
  /// construction; exists so tests can prove that property.
  void step_on_host(const std::vector<Tensor*>& params,
                    const std::vector<Tensor*>& grads);

  float lr() const { return lr_; }

 private:
  void ensure_velocity(const std::vector<Tensor*>& params);

  float lr_;
  float momentum_;
  std::vector<Tensor> velocity_;
};

}  // namespace karma::train
