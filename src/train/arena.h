// Capacity-limited device-memory pool for the numeric twin.
//
// The simulator *models* capacity; this pool *enforces* it: the OOC
// executor must account every retained activation byte here, and
// exceeding the configured capacity throws. Tests construct models whose
// in-core footprint overflows the pool and verify that the KARMA-style
// executor trains anyway — the paper's core capability, executed for real.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "src/util/units.h"

namespace karma::train {

class CapacityError : public std::runtime_error {
 public:
  explicit CapacityError(const std::string& what) : std::runtime_error(what) {}
};

class DevicePool {
 public:
  explicit DevicePool(Bytes capacity) : capacity_(capacity) {
    if (capacity <= 0) throw std::invalid_argument("DevicePool: capacity<=0");
  }

  /// Reserves `bytes`; throws CapacityError when it would overflow.
  void allocate(Bytes bytes);
  /// Returns `bytes` to the pool; throws std::logic_error on underflow.
  void release(Bytes bytes);

  Bytes capacity() const { return capacity_; }
  Bytes used() const { return used_; }
  Bytes free() const { return capacity_ - used_; }
  Bytes peak_used() const { return peak_; }

 private:
  Bytes capacity_;
  Bytes used_ = 0;
  Bytes peak_ = 0;
};

}  // namespace karma::train
