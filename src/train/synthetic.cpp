#include "src/train/synthetic.h"

#include <stdexcept>

namespace karma::train {

SyntheticBatch make_synthetic_batch(std::size_t batch,
                                    const std::vector<std::size_t>& shape,
                                    std::size_t classes, Rng& rng) {
  if (batch == 0 || classes == 0)
    throw std::invalid_argument("make_synthetic_batch: empty");
  std::size_t per_sample = 1;
  for (auto d : shape) per_sample *= d;

  // Fixed per-class directions (drawn first so they do not depend on the
  // batch size — same classes across calls with a shared rng).
  std::vector<std::vector<float>> directions(classes);
  for (auto& dir : directions) {
    dir.resize(per_sample);
    for (auto& v : dir) v = rng.next_symmetric(1.0f);
  }

  std::vector<std::size_t> full_shape = {batch};
  full_shape.insert(full_shape.end(), shape.begin(), shape.end());
  SyntheticBatch out{Tensor(full_shape), {}};
  out.labels.resize(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    const std::size_t label = rng.next_below(classes);
    out.labels[i] = label;
    float* row = out.inputs.data() + i * per_sample;
    for (std::size_t j = 0; j < per_sample; ++j)
      row[j] = 1.5f * directions[label][j] + 0.5f * rng.next_symmetric(1.0f);
  }
  return out;
}

}  // namespace karma::train
