#include "src/train/ooc_exec.h"

#include <chrono>
#include <stdexcept>

#include "src/calib/profile.h"

namespace karma::train {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

OocExecutor::OocExecutor(Sequential* net, std::vector<OocBlock> blocks,
                         Bytes capacity, Bytes host_capacity,
                         Bytes pinned_host_bytes)
    : net_(net),
      blocks_(std::move(blocks)),
      pool_(capacity),
      host_capacity_(host_capacity),
      host_pinned_(pinned_host_bytes),
      host_used_(pinned_host_bytes) {
  if (net_ == nullptr) throw std::invalid_argument("OocExecutor: null net");
  if (host_pinned_ < 0)
    throw std::invalid_argument("OocExecutor: negative pinned host bytes");
  if (host_capacity_ > 0 && host_pinned_ > host_capacity_)
    throw CapacityError(
        "OocExecutor: pinned host residency (" + std::to_string(host_pinned_) +
        " B) alone exceeds the host store (" + std::to_string(host_capacity_) +
        " B)");
  std::size_t expect = 0;
  for (const auto& b : blocks_) {
    if (b.first_layer != expect || b.last_layer <= b.first_layer)
      throw std::invalid_argument("OocExecutor: blocks must be contiguous");
    expect = b.last_layer;
  }
  if (expect != net_->size())
    throw std::invalid_argument("OocExecutor: blocks must cover the net");
}

Tensor OocExecutor::forward_block(std::size_t b, const Tensor& input) {
  const auto t0 = Clock::now();
  Tensor x = input;
  Bytes produced = 0;
  for (std::size_t l = blocks_[b].first_layer; l < blocks_[b].last_layer;
       ++l) {
    x = net_->layer(l).forward(x);
    const Bytes saved = net_->layer(l).saved_bytes();
    pool_.allocate(saved);
    produced += saved;
  }
  if (recorder_ && produced > 0)
    recorder_->record(calib::CostKind::kCompute, produced, seconds_since(t0));
  return x;
}

Bytes OocExecutor::evict_layer(std::size_t l, core::BlockPolicy policy) {
  const Bytes bytes = net_->layer(l).saved_bytes();
  // Admission before eviction: once evict_saved() runs the activations
  // only live in `storage`, so a post-hoc throw would destroy them.
  if (policy != core::BlockPolicy::kSwapNvme && host_capacity_ > 0 &&
      host_used_ + bytes > host_capacity_)
    throw CapacityError(
        "OocExecutor: host store overflow evicting layer " +
        std::to_string(l) + " (" + std::to_string(host_used_ + bytes) +
        " > " + std::to_string(host_capacity_) +
        " B); use BlockPolicy::kSwapNvme for this block");
  const auto t0 = Clock::now();
  auto storage = net_->layer(l).evict_saved();
  if (storage.empty()) return 0;
  if (policy == core::BlockPolicy::kSwapNvme) {
    nvme_store_[l] = std::move(storage);
    nvme_used_ += bytes;
    stats_.peak_nvme_bytes = std::max(stats_.peak_nvme_bytes, nvme_used_);
    stats_.nvme_out_bytes += bytes;
    if (recorder_)
      recorder_->record(calib::CostKind::kNvmeWrite, bytes, seconds_since(t0));
  } else {
    host_store_[l] = std::move(storage);
    host_used_ += bytes;
    stats_.peak_host_bytes = std::max(stats_.peak_host_bytes, host_used_);
    stats_.swapped_out_bytes += bytes;
    if (recorder_)
      recorder_->record(calib::CostKind::kD2h, bytes, seconds_since(t0));
  }
  pool_.release(bytes);
  return bytes;
}

void OocExecutor::restore_layer(std::size_t l) {
  auto restore_from = [&](auto& store, Bytes& used, std::int64_t& in_stat,
                          calib::CostKind kind) {
    auto it = store.find(l);
    if (it == store.end()) return false;
    const Bytes bytes = static_cast<Bytes>(it->second.size() * sizeof(float));
    const auto t0 = Clock::now();
    pool_.allocate(bytes);
    net_->layer(l).restore_saved(std::move(it->second));
    store.erase(it);
    used -= bytes;
    in_stat += bytes;
    if (recorder_) recorder_->record(kind, bytes, seconds_since(t0));
    return true;
  };
  if (restore_from(host_store_, host_used_, stats_.swapped_in_bytes,
                   calib::CostKind::kH2d))
    return;
  restore_from(nvme_store_, nvme_used_, stats_.nvme_in_bytes,
               calib::CostKind::kNvmeRead);
}

StepStats OocExecutor::compute_gradients(
    const Tensor& input, const std::vector<std::size_t>& labels) {
  using core::BlockPolicy;
  stats_ = StepStats{};
  stats_.pinned_host_bytes = host_pinned_;
  stats_.peak_host_bytes = host_used_;

  // ---- Forward phase ----
  Tensor x = input;
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    if (blocks_[b].policy == BlockPolicy::kRecompute) {
      // Keep the block-input checkpoint (charged to the pool).
      pool_.allocate(x.bytes());
      checkpoints_[b] = x;
    }
    x = forward_block(b, x);
    switch (blocks_[b].policy) {
      case BlockPolicy::kResident:
        break;  // activations stay in the pool
      case BlockPolicy::kSwap:
      case BlockPolicy::kSwapNvme:
        // Evict every layer's saved state to the policy's tier store.
        for (std::size_t l = blocks_[b].first_layer;
             l < blocks_[b].last_layer; ++l) {
          evict_layer(l, blocks_[b].policy);
        }
        break;
      case BlockPolicy::kRecompute:
        // Discard saved activations entirely; the checkpoint suffices.
        for (std::size_t l = blocks_[b].first_layer;
             l < blocks_[b].last_layer; ++l) {
          const Bytes bytes = net_->layer(l).saved_bytes();
          auto storage = net_->layer(l).evict_saved();
          if (!storage.empty()) pool_.release(bytes);
          (void)storage;  // dropped
        }
        break;
    }
  }

  // ---- Loss ----
  SoftmaxCrossEntropy loss;
  std::vector<std::size_t> label_vec(labels.begin(), labels.end());
  stats_.loss = loss.forward(x, label_vec);

  // ---- Backward phase ----
  Tensor g = loss.grad_logits();
  for (std::size_t bi = blocks_.size(); bi-- > 0;) {
    const OocBlock& blk = blocks_[bi];
    switch (blk.policy) {
      case core::BlockPolicy::kResident:
        break;
      case core::BlockPolicy::kSwap:
      case core::BlockPolicy::kSwapNvme:
        // Swap the activations back in from whichever tier holds them.
        for (std::size_t l = blk.first_layer; l < blk.last_layer; ++l)
          restore_layer(l);
        break;
      case core::BlockPolicy::kRecompute: {
        // Re-run the forward from the checkpoint; identical arithmetic on
        // identical inputs rebuilds identical activations.
        auto it = checkpoints_.find(bi);
        if (it == checkpoints_.end())
          throw std::logic_error("OocExecutor: missing checkpoint");
        (void)forward_block(bi, it->second);
        stats_.recomputed_layers +=
            static_cast<std::int64_t>(blk.last_layer - blk.first_layer);
        pool_.release(it->second.bytes());
        checkpoints_.erase(it);
        break;
      }
    }
    // Backward through the block, then release its activations.
    const auto back_t0 = Clock::now();
    Bytes back_bytes = 0;
    for (std::size_t l = blk.last_layer; l-- > blk.first_layer;) {
      const Bytes bytes = net_->layer(l).saved_bytes();
      g = net_->layer(l).backward(g);
      pool_.release(bytes);
      back_bytes += bytes;
      // Drop the saved state so stale activations can never leak into the
      // next step.
      (void)net_->layer(l).evict_saved();
    }
    if (recorder_ && back_bytes > 0)
      recorder_->record(calib::CostKind::kCompute, back_bytes,
                        seconds_since(back_t0));
  }
  stats_.peak_pool_bytes = pool_.peak_used();
  return stats_;
}

StepStats OocExecutor::train_step(const Tensor& input,
                                  const std::vector<std::size_t>& labels,
                                  SGD& opt, bool cpu_update) {
  net_->zero_grads();
  StepStats stats = compute_gradients(input, labels);
  if (cpu_update) {
    const auto t0 = Clock::now();
    opt.step_on_host(net_->all_params(), net_->all_grads());
    if (recorder_) {
      Bytes param_bytes = 0;
      for (const Tensor* p : net_->all_params()) param_bytes += p->bytes();
      if (param_bytes > 0)
        recorder_->record(calib::CostKind::kCpuUpdate, param_bytes,
                          seconds_since(t0));
    }
  } else {
    opt.step(net_->all_params(), net_->all_grads());
  }
  return stats;
}

std::vector<OocBlock> uniform_ooc_blocks(std::size_t num_layers,
                                         std::size_t layers_per_block,
                                         core::BlockPolicy policy) {
  if (layers_per_block == 0)
    throw std::invalid_argument("uniform_ooc_blocks: zero block size");
  std::vector<OocBlock> blocks;
  for (std::size_t first = 0; first < num_layers;
       first += layers_per_block) {
    blocks.push_back(
        {first, std::min(first + layers_per_block, num_layers), policy});
  }
  return blocks;
}

}  // namespace karma::train
