#include "src/train/ooc_exec.h"

#include <stdexcept>

namespace karma::train {

OocExecutor::OocExecutor(Sequential* net, std::vector<OocBlock> blocks,
                         Bytes capacity)
    : net_(net), blocks_(std::move(blocks)), pool_(capacity) {
  if (net_ == nullptr) throw std::invalid_argument("OocExecutor: null net");
  std::size_t expect = 0;
  for (const auto& b : blocks_) {
    if (b.first_layer != expect || b.last_layer <= b.first_layer)
      throw std::invalid_argument("OocExecutor: blocks must be contiguous");
    expect = b.last_layer;
  }
  if (expect != net_->size())
    throw std::invalid_argument("OocExecutor: blocks must cover the net");
}

Tensor OocExecutor::forward_block(std::size_t b, const Tensor& input) {
  Tensor x = input;
  for (std::size_t l = blocks_[b].first_layer; l < blocks_[b].last_layer;
       ++l) {
    x = net_->layer(l).forward(x);
    pool_.allocate(net_->layer(l).saved_bytes());
  }
  return x;
}

StepStats OocExecutor::compute_gradients(
    const Tensor& input, const std::vector<std::size_t>& labels) {
  using core::BlockPolicy;
  stats_ = StepStats{};

  // ---- Forward phase ----
  Tensor x = input;
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    if (blocks_[b].policy == BlockPolicy::kRecompute) {
      // Keep the block-input checkpoint (charged to the pool).
      pool_.allocate(x.bytes());
      checkpoints_[b] = x;
    }
    x = forward_block(b, x);
    switch (blocks_[b].policy) {
      case BlockPolicy::kResident:
        break;  // activations stay in the pool
      case BlockPolicy::kSwap:
        // Evict every layer's saved state to host storage.
        for (std::size_t l = blocks_[b].first_layer;
             l < blocks_[b].last_layer; ++l) {
          const Bytes bytes = net_->layer(l).saved_bytes();
          auto storage = net_->layer(l).evict_saved();
          if (!storage.empty()) {
            host_store_[l] = std::move(storage);
            pool_.release(bytes);
            stats_.swapped_out_bytes += bytes;
          }
        }
        break;
      case BlockPolicy::kRecompute:
        // Discard saved activations entirely; the checkpoint suffices.
        for (std::size_t l = blocks_[b].first_layer;
             l < blocks_[b].last_layer; ++l) {
          const Bytes bytes = net_->layer(l).saved_bytes();
          auto storage = net_->layer(l).evict_saved();
          if (!storage.empty()) pool_.release(bytes);
          (void)storage;  // dropped
        }
        break;
    }
  }

  // ---- Loss ----
  SoftmaxCrossEntropy loss;
  std::vector<std::size_t> label_vec(labels.begin(), labels.end());
  stats_.loss = loss.forward(x, label_vec);

  // ---- Backward phase ----
  Tensor g = loss.grad_logits();
  for (std::size_t bi = blocks_.size(); bi-- > 0;) {
    const OocBlock& blk = blocks_[bi];
    switch (blk.policy) {
      case core::BlockPolicy::kResident:
        break;
      case core::BlockPolicy::kSwap:
        // Swap the activations back in.
        for (std::size_t l = blk.first_layer; l < blk.last_layer; ++l) {
          auto it = host_store_.find(l);
          if (it == host_store_.end()) continue;
          const Bytes bytes =
              static_cast<Bytes>(it->second.size() * sizeof(float));
          pool_.allocate(bytes);
          net_->layer(l).restore_saved(std::move(it->second));
          host_store_.erase(it);
          stats_.swapped_in_bytes += bytes;
        }
        break;
      case core::BlockPolicy::kRecompute: {
        // Re-run the forward from the checkpoint; identical arithmetic on
        // identical inputs rebuilds identical activations.
        auto it = checkpoints_.find(bi);
        if (it == checkpoints_.end())
          throw std::logic_error("OocExecutor: missing checkpoint");
        (void)forward_block(bi, it->second);
        stats_.recomputed_layers +=
            static_cast<std::int64_t>(blk.last_layer - blk.first_layer);
        pool_.release(it->second.bytes());
        checkpoints_.erase(it);
        break;
      }
    }
    // Backward through the block, then release its activations.
    for (std::size_t l = blk.last_layer; l-- > blk.first_layer;) {
      const Bytes bytes = net_->layer(l).saved_bytes();
      g = net_->layer(l).backward(g);
      pool_.release(bytes);
      // Drop the saved state so stale activations can never leak into the
      // next step.
      (void)net_->layer(l).evict_saved();
    }
  }
  stats_.peak_pool_bytes = pool_.peak_used();
  return stats_;
}

StepStats OocExecutor::train_step(const Tensor& input,
                                  const std::vector<std::size_t>& labels,
                                  SGD& opt, bool cpu_update) {
  net_->zero_grads();
  StepStats stats = compute_gradients(input, labels);
  if (cpu_update) {
    opt.step_on_host(net_->all_params(), net_->all_grads());
  } else {
    opt.step(net_->all_params(), net_->all_grads());
  }
  return stats;
}

std::vector<OocBlock> uniform_ooc_blocks(std::size_t num_layers,
                                         std::size_t layers_per_block,
                                         core::BlockPolicy policy) {
  if (layers_per_block == 0)
    throw std::invalid_argument("uniform_ooc_blocks: zero block size");
  std::vector<OocBlock> blocks;
  for (std::size_t first = 0; first < num_layers;
       first += layers_per_block) {
    blocks.push_back(
        {first, std::min(first + layers_per_block, num_layers), policy});
  }
  return blocks;
}

}  // namespace karma::train
