// Out-of-core executor: KARMA's swap + recompute semantics executed on
// real values through a capacity-limited device pool.
//
// The executor partitions a Sequential into blocks with per-block policies
// (the same vocabulary as the planner: resident / swap / recompute) and
// runs training steps that are bit-identical to in-core execution — the
// verifiable form of the paper's Sec. IV-D accuracy claim.
//
// Memory protocol (everything accounted against the pool):
//   forward   — each layer's saved activations are charged as produced;
//               swap blocks evict them to host storage when the block
//               completes; recompute blocks keep only the block-input
//               checkpoint;
//   backward  — swap blocks restore their activations, recompute blocks
//               re-run their forward from the checkpoint; after a block's
//               backward its activations are released.
//
// Tiered offload (DESIGN.md §7): the executor mirrors the simulator's
// storage hierarchy with two eviction stores — host DRAM (bounded when a
// host capacity is configured) and an NVMe-modeled store one level out.
// Blocks with the swap-nvme policy route through the slower store; both
// stores account bytes, so real-value runs exercise the same per-tier
// admission the planner reasons about.
#pragma once

#include <unordered_map>
#include <vector>

#include "src/core/schedule_gen.h"
#include "src/train/arena.h"
#include "src/train/nn.h"
#include "src/train/sgd.h"

namespace karma::calib {
class ProfileRecorder;
}  // namespace karma::calib

namespace karma::train {

struct OocBlock {
  std::size_t first_layer = 0;
  std::size_t last_layer = 0;  // exclusive
  core::BlockPolicy policy = core::BlockPolicy::kResident;
};

struct StepStats {
  float loss = 0.0f;
  Bytes peak_pool_bytes = 0;
  Bytes peak_host_bytes = 0;       ///< high-water mark of the host store
                                   ///< (includes the pinned residency)
  Bytes pinned_host_bytes = 0;     ///< weight-shard/optimizer bytes pinned
                                   ///< in the host store for the whole run
  Bytes peak_nvme_bytes = 0;       ///< high-water mark of the NVMe store
  std::int64_t swapped_out_bytes = 0;  ///< host-tier eviction traffic
  std::int64_t swapped_in_bytes = 0;
  std::int64_t nvme_out_bytes = 0;     ///< NVMe-tier eviction traffic
  std::int64_t nvme_in_bytes = 0;
  std::int64_t recomputed_layers = 0;
};

class OocExecutor {
 public:
  /// `net` must outlive the executor. Blocks must cover net's layers
  /// contiguously. `capacity` bounds retained activations (weights are
  /// modeled as resident, as in the single-GPU planner). `host_capacity`
  /// bounds the host eviction store; 0 keeps the seed's unbounded-host
  /// model. Evicting past a bounded host throws CapacityError — route the
  /// block to NVMe (BlockPolicy::kSwapNvme) instead. `pinned_host_bytes`
  /// models residency that occupies the host store for the whole run
  /// (optimizer state, master weight shards — the planner's reserved-host
  /// + shard charges, DESIGN.md §9): it is charged up front, competes with
  /// evictions for the bounded store, and is never released.
  OocExecutor(Sequential* net, std::vector<OocBlock> blocks, Bytes capacity,
              Bytes host_capacity = 0, Bytes pinned_host_bytes = 0);

  /// One forward+backward pass; gradients accumulate in the net. Returns
  /// the loss and pool statistics. Does not update weights.
  StepStats compute_gradients(const Tensor& input,
                              const std::vector<std::size_t>& labels);

  /// Convenience: compute_gradients + SGD step (+ zero grads).
  StepStats train_step(const Tensor& input,
                       const std::vector<std::size_t>& labels, SGD& opt,
                       bool cpu_update = false);

  const DevicePool& pool() const { return pool_; }

  /// Opt-in measured-cost capture (DESIGN.md §13): when set, each step
  /// records wall-clock samples into the recorder's ProfileArtifact —
  /// compute per block forward/re-forward/backward, host-tier evictions
  /// and restores as d2h/h2d, NVMe-tier traffic as nvme write/read, and
  /// host-side optimizer updates as cpu_update. The recorder is not
  /// owned and must outlive the executor (or be cleared with nullptr);
  /// unset (the default) costs nothing on the step path.
  void set_profile_recorder(calib::ProfileRecorder* recorder) {
    recorder_ = recorder;
  }

 private:
  Tensor forward_block(std::size_t b, const Tensor& input);
  /// Moves layer `l`'s saved state into the store for `policy`'s tier,
  /// enforcing the host bound; returns the evicted byte count.
  Bytes evict_layer(std::size_t l, core::BlockPolicy policy);
  /// Restores layer `l` from whichever store holds it (if any).
  void restore_layer(std::size_t l);

  Sequential* net_;
  std::vector<OocBlock> blocks_;
  DevicePool pool_;
  Bytes host_capacity_;  ///< 0 = unbounded (seed model)
  Bytes host_pinned_ = 0;  ///< whole-run host residency (never released)
  Bytes host_used_ = 0;    ///< includes host_pinned_
  Bytes nvme_used_ = 0;
  /// Host-side storage for evicted activations: key = layer index.
  std::unordered_map<std::size_t, std::vector<float>> host_store_;
  /// NVMe-modeled storage one tier out: same protocol, slower medium in
  /// the simulator's cost model, byte-accounted here.
  std::unordered_map<std::size_t, std::vector<float>> nvme_store_;
  /// Block-input checkpoints for recompute blocks.
  std::unordered_map<std::size_t, Tensor> checkpoints_;
  StepStats stats_;
  calib::ProfileRecorder* recorder_ = nullptr;  ///< opt-in, not owned
};

/// Derives an OocBlock partition from planner output (block ranges and
/// policies on the layer indices of a Sequential).
std::vector<OocBlock> uniform_ooc_blocks(std::size_t num_layers,
                                         std::size_t layers_per_block,
                                         core::BlockPolicy policy);

}  // namespace karma::train
