// Out-of-core executor: KARMA's swap + recompute semantics executed on
// real values through a capacity-limited device pool.
//
// The executor partitions a Sequential into blocks with per-block policies
// (the same vocabulary as the planner: resident / swap / recompute) and
// runs training steps that are bit-identical to in-core execution — the
// verifiable form of the paper's Sec. IV-D accuracy claim.
//
// Memory protocol (everything accounted against the pool):
//   forward   — each layer's saved activations are charged as produced;
//               swap blocks evict them to host storage when the block
//               completes; recompute blocks keep only the block-input
//               checkpoint;
//   backward  — swap blocks restore their activations, recompute blocks
//               re-run their forward from the checkpoint; after a block's
//               backward its activations are released.
#pragma once

#include <unordered_map>
#include <vector>

#include "src/core/schedule_gen.h"
#include "src/train/arena.h"
#include "src/train/nn.h"
#include "src/train/sgd.h"

namespace karma::train {

struct OocBlock {
  std::size_t first_layer = 0;
  std::size_t last_layer = 0;  // exclusive
  core::BlockPolicy policy = core::BlockPolicy::kResident;
};

struct StepStats {
  float loss = 0.0f;
  Bytes peak_pool_bytes = 0;
  std::int64_t swapped_out_bytes = 0;
  std::int64_t swapped_in_bytes = 0;
  std::int64_t recomputed_layers = 0;
};

class OocExecutor {
 public:
  /// `net` must outlive the executor. Blocks must cover net's layers
  /// contiguously. `capacity` bounds retained activations (weights are
  /// modeled as resident, as in the single-GPU planner).
  OocExecutor(Sequential* net, std::vector<OocBlock> blocks, Bytes capacity);

  /// One forward+backward pass; gradients accumulate in the net. Returns
  /// the loss and pool statistics. Does not update weights.
  StepStats compute_gradients(const Tensor& input,
                              const std::vector<std::size_t>& labels);

  /// Convenience: compute_gradients + SGD step (+ zero grads).
  StepStats train_step(const Tensor& input,
                       const std::vector<std::size_t>& labels, SGD& opt,
                       bool cpu_update = false);

  const DevicePool& pool() const { return pool_; }

 private:
  Tensor forward_block(std::size_t b, const Tensor& input);

  Sequential* net_;
  std::vector<OocBlock> blocks_;
  DevicePool pool_;
  /// Host-side storage for evicted activations: key = layer index.
  std::unordered_map<std::size_t, std::vector<float>> host_store_;
  /// Block-input checkpoints for recompute blocks.
  std::unordered_map<std::size_t, Tensor> checkpoints_;
  StepStats stats_;
};

/// Derives an OocBlock partition from planner output (block ranges and
/// policies on the layer indices of a Sequential).
std::vector<OocBlock> uniform_ooc_blocks(std::size_t num_layers,
                                         std::size_t layers_per_block,
                                         core::BlockPolicy policy);

}  // namespace karma::train
