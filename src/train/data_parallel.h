// Data-parallel training on the numeric twin: K replicas, split batch,
// deterministic gradient AllReduce, synchronized SGD — optionally with
// each replica running through the out-of-core executor, which is the
// paper's "data parallel KARMA" in executable form.
//
// Concurrency follows the C++ Core Guidelines CP rules: replicas compute
// gradients in their own std::jthread with no shared mutable state; the
// reduction runs on the calling thread after join, in fixed rank order, so
// results are deterministic and replicas stay bitwise synchronized.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "src/train/ooc_exec.h"

namespace karma::train {

struct DataParallelConfig {
  int ranks = 2;
  float lr = 0.05f;
  float momentum = 0.0f;
  /// When set, every replica executes out-of-core with these blocks and
  /// this per-replica activation capacity.
  std::vector<OocBlock> ooc_blocks;  ///< empty = in-core execution
  Bytes ooc_capacity = 0;
  bool cpu_update = true;  ///< stage-5 heterogeneous update path
};

class DataParallelTrainer {
 public:
  /// `factory(rng)` builds one replica; it is called with identical RNG
  /// state per rank so replicas start bitwise identical (synchronous SGD's
  /// invariant).
  DataParallelTrainer(const std::function<Sequential(Rng&)>& factory,
                      std::uint64_t seed, DataParallelConfig config);

  /// One synchronous step over the global batch (first dim divisible by
  /// the rank count). Returns the mean loss across ranks.
  float step(const Tensor& global_batch,
             const std::vector<std::size_t>& labels);

  int ranks() const { return config_.ranks; }
  Sequential& replica(int rank) { return *replicas_.at(static_cast<std::size_t>(rank)); }

  /// True when every replica's parameters are bitwise identical.
  bool replicas_in_sync() const;

 private:
  DataParallelConfig config_;
  std::vector<std::unique_ptr<Sequential>> replicas_;
  std::vector<std::unique_ptr<OocExecutor>> executors_;  ///< OOC mode only
  std::vector<SGD> optimizers_;
};

/// Deterministic AllReduce-average over per-rank gradient sets: sums in
/// rank order into rank 0's layout and broadcasts, exactly like a ring
/// AllReduce with a fixed reduction order. Exposed for tests.
void allreduce_average(std::vector<std::vector<Tensor>>& per_rank_grads);

}  // namespace karma::train
