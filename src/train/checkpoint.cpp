#include "src/train/checkpoint.h"

#include <cstring>
#include <stdexcept>

namespace karma::train {
namespace {

constexpr std::uint32_t kMagic = 0x4b41524d;  // "KARM"

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + sizeof(v));
}

std::uint64_t get_u64(const std::vector<std::uint8_t>& in,
                      std::size_t& cursor) {
  if (cursor + sizeof(std::uint64_t) > in.size())
    throw std::runtime_error("checkpoint: truncated buffer");
  std::uint64_t v;
  std::memcpy(&v, in.data() + cursor, sizeof(v));
  cursor += sizeof(v);
  return v;
}

}  // namespace

std::vector<std::uint8_t> save_checkpoint(Sequential& net) {
  std::vector<std::uint8_t> out;
  const auto params = net.all_params();
  put_u64(out, kMagic);
  put_u64(out, params.size());
  for (const Tensor* p : params) {
    put_u64(out, p->rank());
    for (std::size_t d = 0; d < p->rank(); ++d) put_u64(out, p->dim(d));
    const auto* bytes = reinterpret_cast<const std::uint8_t*>(p->data());
    out.insert(out.end(), bytes, bytes + p->numel() * sizeof(float));
  }
  return out;
}

void load_checkpoint(Sequential& net, const std::vector<std::uint8_t>& data) {
  std::size_t cursor = 0;
  if (get_u64(data, cursor) != kMagic)
    throw std::runtime_error("checkpoint: bad magic");
  const auto params = net.all_params();
  if (get_u64(data, cursor) != params.size())
    throw std::runtime_error("checkpoint: tensor count mismatch");
  for (Tensor* p : params) {
    if (get_u64(data, cursor) != p->rank())
      throw std::runtime_error("checkpoint: rank mismatch");
    for (std::size_t d = 0; d < p->rank(); ++d)
      if (get_u64(data, cursor) != p->dim(d))
        throw std::runtime_error("checkpoint: shape mismatch");
    const std::size_t bytes = p->numel() * sizeof(float);
    if (cursor + bytes > data.size())
      throw std::runtime_error("checkpoint: truncated tensor data");
    std::memcpy(p->data(), data.data() + cursor, bytes);
    cursor += bytes;
  }
  if (cursor != data.size())
    throw std::runtime_error("checkpoint: trailing bytes");
}

}  // namespace karma::train
