#include "src/train/data_parallel.h"

#include <cstring>
#include <stdexcept>
#include <thread>

namespace karma::train {

void allreduce_average(std::vector<std::vector<Tensor>>& per_rank_grads) {
  if (per_rank_grads.empty()) return;
  const std::size_t ranks = per_rank_grads.size();
  const std::size_t tensors = per_rank_grads.front().size();
  for (const auto& g : per_rank_grads)
    if (g.size() != tensors)
      throw std::invalid_argument("allreduce_average: ragged gradients");
  const float inv = 1.0f / static_cast<float>(ranks);
  for (std::size_t t = 0; t < tensors; ++t) {
    Tensor& acc = per_rank_grads[0][t];
    for (std::size_t r = 1; r < ranks; ++r)
      add_inplace(acc, per_rank_grads[r][t]);
    scale_inplace(acc, inv);
    for (std::size_t r = 1; r < ranks; ++r) per_rank_grads[r][t] = acc;
  }
}

DataParallelTrainer::DataParallelTrainer(
    const std::function<Sequential(Rng&)>& factory, std::uint64_t seed,
    DataParallelConfig config)
    : config_(std::move(config)) {
  if (config_.ranks < 1)
    throw std::invalid_argument("DataParallelTrainer: ranks < 1");
  for (int r = 0; r < config_.ranks; ++r) {
    Rng rng(seed);  // identical init per rank
    replicas_.push_back(std::make_unique<Sequential>(factory(rng)));
    optimizers_.emplace_back(config_.lr, config_.momentum);
  }
  if (!config_.ooc_blocks.empty()) {
    for (int r = 0; r < config_.ranks; ++r)
      executors_.push_back(std::make_unique<OocExecutor>(
          replicas_[static_cast<std::size_t>(r)].get(), config_.ooc_blocks,
          config_.ooc_capacity));
  }
}

float DataParallelTrainer::step(const Tensor& global_batch,
                                const std::vector<std::size_t>& labels) {
  const std::size_t n = global_batch.dim(0);
  const auto ranks = static_cast<std::size_t>(config_.ranks);
  if (n % ranks != 0)
    throw std::invalid_argument("step: batch not divisible by ranks");
  if (labels.size() != n)
    throw std::invalid_argument("step: labels size mismatch");
  const std::size_t shard = n / ranks;
  const std::size_t row =
      global_batch.numel() / n;  // elements per sample

  // Scatter the batch.
  std::vector<Tensor> inputs;
  std::vector<std::vector<std::size_t>> shard_labels(ranks);
  for (std::size_t r = 0; r < ranks; ++r) {
    std::vector<std::size_t> shape = global_batch.shape();
    shape[0] = shard;
    Tensor in(shape);
    std::memcpy(in.data(), global_batch.data() + r * shard * row,
                shard * row * sizeof(float));
    inputs.push_back(std::move(in));
    shard_labels[r].assign(labels.begin() + static_cast<std::ptrdiff_t>(r * shard),
                           labels.begin() + static_cast<std::ptrdiff_t>((r + 1) * shard));
  }

  // Each rank computes its gradients in its own thread (no shared state).
  std::vector<float> losses(ranks, 0.0f);
  {
    std::vector<std::jthread> workers;
    workers.reserve(ranks);
    for (std::size_t r = 0; r < ranks; ++r) {
      workers.emplace_back([this, r, &inputs, &shard_labels, &losses] {
        Sequential& net = *replicas_[r];
        net.zero_grads();
        if (!executors_.empty()) {
          losses[r] =
              executors_[r]->compute_gradients(inputs[r], shard_labels[r]).loss;
        } else {
          SoftmaxCrossEntropy loss;
          const Tensor logits = net.forward(inputs[r]);
          losses[r] = loss.forward(logits, shard_labels[r]);
          net.backward(loss.grad_logits());
        }
      });
    }
  }  // jthreads join here

  // Phased exchange collapses to a deterministic AllReduce-average on the
  // numeric twin (timing is the simulator's job; values are ours).
  std::vector<std::vector<Tensor>> grads(ranks);
  for (std::size_t r = 0; r < ranks; ++r)
    for (Tensor* g : replicas_[r]->all_grads()) grads[r].push_back(*g);
  allreduce_average(grads);
  for (std::size_t r = 0; r < ranks; ++r) {
    auto dst = replicas_[r]->all_grads();
    for (std::size_t t = 0; t < dst.size(); ++t) *dst[t] = grads[r][t];
  }

  // Stage 5: weight update (host path when configured), identical on all
  // ranks because gradients are identical.
  for (std::size_t r = 0; r < ranks; ++r) {
    auto params = replicas_[r]->all_params();
    auto g = replicas_[r]->all_grads();
    if (config_.cpu_update) {
      optimizers_[r].step_on_host(params, g);
    } else {
      optimizers_[r].step(params, g);
    }
  }

  float mean_loss = 0.0f;
  for (float l : losses) mean_loss += l;
  return mean_loss / static_cast<float>(ranks);
}

bool DataParallelTrainer::replicas_in_sync() const {
  if (replicas_.size() < 2) return true;
  auto params0 = const_cast<Sequential&>(*replicas_[0]).all_params();
  for (std::size_t r = 1; r < replicas_.size(); ++r) {
    auto params = const_cast<Sequential&>(*replicas_[r]).all_params();
    if (params.size() != params0.size()) return false;
    for (std::size_t t = 0; t < params.size(); ++t)
      if (!bitwise_equal(*params0[t], *params[t])) return false;
  }
  return true;
}

}  // namespace karma::train
