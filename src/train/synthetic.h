// Synthetic dataset generation (the stand-in for ImageNet / CIFAR-10 /
// ssTEM on the numeric twin — DESIGN.md §2): separable Gaussian-ish class
// blobs so small nets actually learn, which the convergence smoke tests
// rely on.
#pragma once

#include <vector>

#include "src/train/tensor.h"

namespace karma::train {

struct SyntheticBatch {
  Tensor inputs;
  std::vector<std::size_t> labels;
};

/// `shape` is the per-sample shape (without the batch dim). Each class c
/// gets a fixed random direction; samples are direction * 1.5 + noise.
SyntheticBatch make_synthetic_batch(std::size_t batch,
                                    const std::vector<std::size_t>& shape,
                                    std::size_t classes, Rng& rng);

}  // namespace karma::train
