// Simulated annealing — the stand-in for the MIDACO ant-colony MINLP
// solver the paper uses for the two-tier optimization of Fig. 4 (see
// DESIGN.md §2). The blocking search in src/core combines exhaustive
// enumeration over block-count candidates (exact for the sizes the paper
// reports MIDACO converging on in under four minutes) with this annealer
// for boundary refinement on very deep models.
#pragma once

#include <algorithm>
#include <cmath>
#include <functional>
#include <utility>

#include "src/util/rng.h"

namespace karma::solver {

struct AnnealParams {
  int iterations = 2000;
  double initial_temperature = 1.0;
  /// Geometric cooling factor applied per iteration.
  double cooling = 0.995;
  /// Cooperative stop check, polled once per iteration before the energy
  /// evaluation. Returning true ends the walk immediately; the best state
  /// visited so far is still returned. Truncation is the only effect —
  /// no randomness is drawn on the way out, so a walk that is never
  /// stopped is bit-identical to one run without the check.
  std::function<bool()> should_stop;
};

/// Minimizes `energy` starting from `init`. `neighbor` proposes a move;
/// standard Metropolis acceptance. Returns the best state ever visited
/// (not the final one). Deterministic for a fixed Rng seed.
template <typename State>
std::pair<State, double> anneal(
    State init, const std::function<double(const State&)>& energy,
    const std::function<State(const State&, Rng&)>& neighbor,
    const AnnealParams& params, Rng& rng) {
  State current = init;
  double current_e = energy(current);
  State best = current;
  double best_e = current_e;
  double temperature = params.initial_temperature;
  for (int i = 0; i < params.iterations; ++i) {
    if (params.should_stop && params.should_stop()) break;
    State candidate = neighbor(current, rng);
    // A rejected move (neighbor returns the state unchanged) needs no
    // energy evaluation: delta would be 0, the accept branch draws no
    // randomness, and current/best are unchanged — skipping is exact and
    // saves a full re-simulation when the objective is expensive.
    if (candidate == current) {
      temperature *= params.cooling;
      continue;
    }
    const double e = energy(candidate);
    const double delta = e - current_e;
    if (delta <= 0.0 ||
        rng.next_double() < std::exp(-delta / std::max(temperature, 1e-12))) {
      current = std::move(candidate);
      current_e = e;
      if (current_e < best_e) {
        best = current;
        best_e = current_e;
      }
    }
    temperature *= params.cooling;
  }
  return {best, best_e};
}

}  // namespace karma::solver
