// Simulated annealing — the stand-in for the MIDACO ant-colony MINLP
// solver the paper uses for the two-tier optimization of Fig. 4 (see
// DESIGN.md §2). The blocking search in src/core combines exhaustive
// enumeration over block-count candidates (exact for the sizes the paper
// reports MIDACO converging on in under four minutes) with this annealer
// for boundary refinement on very deep models.
//
// Two entry points:
//  - anneal(): one Metropolis walk, deterministic for a fixed Rng.
//  - portfolio_anneal(): N concurrent walks in the lazy-SMP style of
//    multithreaded game-tree search — workers diversify by rng stream and
//    temperature, share whatever memoization the energy function carries,
//    and reduce with a stable tie-break so the result is a pure function
//    of (init, seed, params) regardless of thread scheduling
//    (DESIGN.md §14).
#pragma once

#include <algorithm>
#include <cmath>
#include <exception>
#include <functional>
#include <limits>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/util/rng.h"

namespace karma::solver {

struct AnnealParams {
  int iterations = 2000;
  double initial_temperature = 1.0;
  /// Geometric cooling factor applied per iteration.
  double cooling = 0.995;
  /// Cooperative stop check, polled once per iteration — and once before
  /// the initial energy evaluation, so a walk that is stopped before it
  /// starts performs no evaluation at all. Returning true ends the walk
  /// immediately; the best state visited so far is still returned (the
  /// untouched init with +inf energy when stopped pre-start). Truncation
  /// is the only effect — no randomness is drawn on the way out, so a
  /// walk that is never stopped is bit-identical to one run without the
  /// check.
  std::function<bool()> should_stop;
};

/// Minimizes `energy` starting from `init`. `neighbor` proposes a move;
/// standard Metropolis acceptance. Returns the best state ever visited
/// (not the final one). Deterministic for a fixed Rng seed.
///
/// `on_accept` (optional) fires after every accepted move, with the new
/// current state — including the implicit acceptance of `init` at the
/// start of the walk. Callers that evaluate incrementally use it to
/// rebase their diff baseline onto the walk's position. Observational
/// only: it draws no randomness and must not mutate the state.
template <typename State>
std::pair<State, double> anneal(
    State init, const std::function<double(const State&)>& energy,
    const std::function<State(const State&, Rng&)>& neighbor,
    const AnnealParams& params, Rng& rng,
    const std::function<void(const State&)>& on_accept = {}) {
  // Poll BEFORE the first evaluation: a search cancelled before the walk
  // starts must not pay one full simulation just to learn it is dead.
  if (params.should_stop && params.should_stop())
    return {std::move(init), std::numeric_limits<double>::infinity()};
  State current = std::move(init);
  double current_e = energy(current);
  if (on_accept) on_accept(current);
  State best = current;
  double best_e = current_e;
  double temperature = params.initial_temperature;
  for (int i = 0; i < params.iterations; ++i) {
    if (params.should_stop && params.should_stop()) break;
    State candidate = neighbor(current, rng);
    // A rejected move (neighbor returns the state unchanged) needs no
    // energy evaluation: delta would be 0, the accept branch draws no
    // randomness, and current/best are unchanged — skipping is exact and
    // saves a full re-simulation when the objective is expensive.
    if (candidate == current) {
      temperature *= params.cooling;
      continue;
    }
    const double e = energy(candidate);
    const double delta = e - current_e;
    if (delta <= 0.0 ||
        rng.next_double() < std::exp(-delta / std::max(temperature, 1e-12))) {
      current = std::move(candidate);
      current_e = e;
      if (on_accept) on_accept(current);
      if (current_e < best_e) {
        best = current;
        best_e = current_e;
      }
    }
    temperature *= params.cooling;
  }
  return {best, best_e};
}

/// The temperature ladder diversifying portfolio workers: worker 0 runs
/// the caller's temperature unscaled, odd workers run hotter (x2, x4, ...)
/// to escape basins, even workers run colder (x0.5, x0.25, ...) to
/// exploit. Exposed so tests can assert the documented reduction.
inline double portfolio_temperature_scale(int worker) {
  if (worker == 0) return 1.0;
  const int rung = (worker + 1) / 2;
  return worker % 2 == 1 ? std::ldexp(1.0, rung)    // 2, 4, 8, ...
                         : std::ldexp(1.0, -rung);  // 1/2, 1/4, ...
}

/// Lazy-SMP portfolio annealing: `workers` independent Metropolis walks
/// from the same `init`, run concurrently and reduced deterministically.
///
/// Diversification: worker i draws its rng from the (i+1)-th `rng.split()`
/// (taken in worker order before any thread starts) and scales the
/// initial temperature by portfolio_temperature_scale(i). The iteration
/// budget is divided evenly — ceil(iterations/workers) each — and each
/// walk cools by cooling^workers per step so every worker still spans the
/// full temperature range of the serial schedule in its shorter walk.
///
/// Determinism: each walk is a pure function of its own rng stream and
/// the energy values it observes. Provided `energy` is a pure function of
/// (state, worker) — shared memoization is fine exactly when memoized and
/// recomputed values are bit-identical — thread scheduling cannot change
/// any walk's trajectory. The reduction is the documented stable rule:
/// lowest energy wins, ties break on the lexicographically smallest
/// key(state), so the winner is timing-independent too.
///
/// Exceptions: a worker whose energy/neighbor throws (including non-std
/// interrupt types like the planners' SearchInterrupted) has its
/// exception captured; after all workers join, the lowest-index captured
/// exception is rethrown. workers <= 1 runs inline on the caller's thread
/// (one split stream, full budget, unscaled temperature).
///
/// Returns {best state, best energy, winning worker index}.
template <typename State>
struct PortfolioResult {
  State state;
  double energy = std::numeric_limits<double>::infinity();
  int worker = 0;
};

template <typename State>
PortfolioResult<State> portfolio_anneal(
    const State& init,
    const std::function<double(const State&, int)>& energy,
    const std::function<State(const State&, Rng&)>& neighbor,
    const AnnealParams& params, int workers, Rng& rng,
    const std::function<std::string(const State&)>& key,
    const std::function<void(const State&, int)>& on_accept = {},
    const std::function<void(int, bool)>& on_worker = {}) {
  workers = std::max(1, workers);
  std::vector<Rng> streams;
  streams.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) streams.push_back(rng.split());

  const int per_worker =
      workers == 1 ? params.iterations
                   : (params.iterations + workers - 1) / workers;
  std::vector<std::pair<State, double>> results(
      static_cast<std::size_t>(workers),
      {init, std::numeric_limits<double>::infinity()});
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(workers));

  auto run_worker = [&](int w) {
    if (on_worker) on_worker(w, true);
    try {
      AnnealParams p = params;
      p.iterations = per_worker;
      p.initial_temperature =
          params.initial_temperature * portfolio_temperature_scale(w);
      p.cooling = workers == 1
                      ? params.cooling
                      : std::pow(params.cooling, static_cast<double>(workers));
      std::function<double(const State&)> e = [&, w](const State& s) {
        return energy(s, w);
      };
      std::function<void(const State&)> acc;
      if (on_accept) acc = [&, w](const State& s) { on_accept(s, w); };
      results[static_cast<std::size_t>(w)] =
          anneal<State>(init, e, neighbor, p, streams[static_cast<std::size_t>(w)], acc);
    } catch (...) {
      errors[static_cast<std::size_t>(w)] = std::current_exception();
    }
    if (on_worker) on_worker(w, false);
  };

  if (workers == 1) {
    run_worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) pool.emplace_back(run_worker, w);
    for (auto& t : pool) t.join();
  }
  for (auto& err : errors)
    if (err) std::rethrow_exception(err);

  // Stable reduction: (energy, key) lexicographic, first worker wins
  // exact ties. Keys are only computed when an energy tie forces it.
  PortfolioResult<State> out{results[0].first, results[0].second, 0};
  std::string out_key;
  bool out_key_ready = false;
  for (int w = 1; w < workers; ++w) {
    auto& r = results[static_cast<std::size_t>(w)];
    if (!(r.second <= out.energy)) continue;  // also rejects NaN
    if (r.second == out.energy) {
      if (!key) continue;
      if (!out_key_ready) {
        out_key = key(out.state);
        out_key_ready = true;
      }
      std::string k = key(r.first);
      if (!(k < out_key)) continue;
      out_key = std::move(k);
    } else {
      out_key_ready = false;
    }
    out.state = r.first;
    out.energy = r.second;
    out.worker = w;
  }
  return out;
}

}  // namespace karma::solver
