// Exact enumeration helpers for small discrete searches (block counts,
// policy flips). Used where the search space is small enough that an ILP
// solver is overkill — which, per the paper's own report of MIDACO
// converging "in under four minutes for all of our inputs", covers every
// instance in the evaluation.
#pragma once

#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "src/util/infeasible.h"

namespace karma::solver {

/// Evaluates `objective` on each candidate and returns the argmin index,
/// skipping candidates for which the objective throws or returns NaN /
/// infinity (infeasible). Returns nullopt when every candidate is
/// infeasible. `should_stop` (optional) is polled before each candidate:
/// returning true truncates the scan, yielding the best of the candidates
/// evaluated so far — the cooperative-cancellation contract shared with
/// solver::anneal.
template <typename Candidate>
std::optional<std::size_t> argmin_feasible(
    const std::vector<Candidate>& candidates,
    const std::function<double(const Candidate&)>& objective,
    const std::function<bool()>& should_stop = {}) {
  std::optional<std::size_t> best;
  double best_value = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (should_stop && should_stop()) break;
    double value = std::numeric_limits<double>::infinity();
    try {
      // InfeasibleError only: the sim/ledger/scheduler infeasibility
      // channel. Everything else propagates — std::bad_alloc and ledger
      // logic_errors are bugs, not "skip this candidate", and non-std
      // types (the planners' SearchInterrupted) tunnel through for the
      // cooperative-cancellation contract.
      value = objective(candidates[i]);
    } catch (const InfeasibleError&) {
      continue;  // infeasible candidate (e.g. plan deadlocks)
    }
    if (!(value < best_value)) continue;  // also rejects NaN
    best_value = value;
    best = i;
  }
  return best;
}

/// Greedy local improvement: repeatedly applies the single `flip` that
/// most improves the objective until no flip helps. `num_flips` is the
/// size of the move set; `apply(state, k)` returns the flipped state.
/// `should_stop` truncates the descent between flip evaluations; the best
/// state reached so far is returned.
template <typename State>
State greedy_descend(State state,
                     const std::function<double(const State&)>& objective,
                     int num_flips,
                     const std::function<State(const State&, int)>& apply,
                     int max_rounds = 64,
                     const std::function<bool()>& should_stop = {}) {
  double current = objective(state);
  for (int round = 0; round < max_rounds; ++round) {
    double best_value = current;
    std::optional<State> best_state;
    for (int k = 0; k < num_flips; ++k) {
      if (should_stop && should_stop()) return state;
      State candidate = apply(state, k);
      double value = std::numeric_limits<double>::infinity();
      try {
        value = objective(candidate);
      } catch (const InfeasibleError&) {
        continue;  // infeasible flip; everything else propagates
      }
      if (value < best_value) {
        best_value = value;
        best_state = std::move(candidate);
      }
    }
    if (!best_state) break;
    state = std::move(*best_state);
    current = best_value;
  }
  return state;
}

}  // namespace karma::solver
