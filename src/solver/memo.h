// Memoization table for expensive search objectives (DESIGN.md §10).
//
// The Opt-1/Opt-2 searches in src/core evaluate the same candidate more
// than once: the annealer's random walk revisits boundary vectors, the
// post-anneal materialization re-evaluates the annealer's best state, and
// each Opt-2 greedy round re-tries the flips rejected after its last
// accepted one. Every one of those evaluations used to be a full engine
// replay. EvalMemo caches the objective value per canonical candidate key
// so a revisit costs a hash lookup, and counts lookups/hits so the win is
// measurable (core::SearchStats, bench_fig_plan_cache).
//
// The memo stores only the scalar objective, not the full evaluation
// artifact: a revisited candidate can never beat the incumbent best that
// already considered it, so the full result is only re-materialized in
// the rare case a memoized value must become the new best.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace karma::solver {

template <typename Value>
class EvalMemo {
 public:
  /// Returns the memoized value for `key`, counting a hit; nullopt (a
  /// miss) when the candidate has not been evaluated yet.
  std::optional<Value> find(const std::string& key) {
    ++lookups_;
    const auto it = table_.find(key);
    if (it == table_.end()) return std::nullopt;
    ++hits_;
    return it->second;
  }

  /// Records the objective value of a freshly evaluated candidate.
  void store(const std::string& key, Value value) {
    table_.emplace(key, std::move(value));
  }

  std::int64_t lookups() const { return lookups_; }
  std::int64_t hits() const { return hits_; }
  std::size_t size() const { return table_.size(); }

 private:
  std::unordered_map<std::string, Value> table_;
  std::int64_t lookups_ = 0;
  std::int64_t hits_ = 0;
};

/// Thread-safe EvalMemo for the portfolio annealing workers
/// (DESIGN.md §14): the table is split across `Shards` independently
/// locked maps (key-hash modulo shard), so N workers hammering the memo
/// contend only when their keys collide on a shard — lock hold time is
/// one hash-map operation. Counters are relaxed atomics.
///
/// Determinism note: two workers can race to evaluate the same key and
/// both store. That is safe exactly because every value in these memos is
/// a deterministic function of its key (the engine replay is
/// deterministic), so whichever store lands first, the table holds the
/// same value — timing changes compute-vs-hit accounting, never values.
/// `store` keeps the first entry (emplace) to make that explicit.
template <typename Key, typename Value, std::size_t Shards = 16>
class SharedEvalMemo {
 public:
  std::optional<Value> find(const Key& key) {
    lookups_.fetch_add(1, std::memory_order_relaxed);
    Shard& s = shard_of(key);
    std::lock_guard<std::mutex> lock(s.mu);
    const auto it = s.table.find(key);
    if (it == s.table.end()) return std::nullopt;
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }

  void store(const Key& key, Value value) {
    Shard& s = shard_of(key);
    std::lock_guard<std::mutex> lock(s.mu);
    s.table.emplace(key, std::move(value));
  }

  std::int64_t lookups() const {
    return lookups_.load(std::memory_order_relaxed);
  }
  std::int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::size_t size() const {
    std::size_t n = 0;
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      n += s.table.size();
    }
    return n;
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Key, Value> table;
  };
  Shard& shard_of(const Key& key) {
    return shards_[std::hash<Key>{}(key) % Shards];
  }

  std::array<Shard, Shards> shards_;
  std::atomic<std::int64_t> lookups_{0};
  std::atomic<std::int64_t> hits_{0};
};

}  // namespace karma::solver
