// Memoization table for expensive search objectives (DESIGN.md §10).
//
// The Opt-1/Opt-2 searches in src/core evaluate the same candidate more
// than once: the annealer's random walk revisits boundary vectors, the
// post-anneal materialization re-evaluates the annealer's best state, and
// each Opt-2 greedy round re-tries the flips rejected after its last
// accepted one. Every one of those evaluations used to be a full engine
// replay. EvalMemo caches the objective value per canonical candidate key
// so a revisit costs a hash lookup, and counts lookups/hits so the win is
// measurable (core::SearchStats, bench_fig_plan_cache).
//
// The memo stores only the scalar objective, not the full evaluation
// artifact: a revisited candidate can never beat the incumbent best that
// already considered it, so the full result is only re-materialized in
// the rare case a memoized value must become the new best.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

namespace karma::solver {

template <typename Value>
class EvalMemo {
 public:
  /// Returns the memoized value for `key`, counting a hit; nullopt (a
  /// miss) when the candidate has not been evaluated yet.
  std::optional<Value> find(const std::string& key) {
    ++lookups_;
    const auto it = table_.find(key);
    if (it == table_.end()) return std::nullopt;
    ++hits_;
    return it->second;
  }

  /// Records the objective value of a freshly evaluated candidate.
  void store(const std::string& key, Value value) {
    table_.emplace(key, std::move(value));
  }

  std::int64_t lookups() const { return lookups_; }
  std::int64_t hits() const { return hits_; }
  std::size_t size() const { return table_.size(); }

 private:
  std::unordered_map<std::string, Value> table_;
  std::int64_t lookups_ = 0;
  std::int64_t hits_ = 0;
};

}  // namespace karma::solver
