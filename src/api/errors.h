// Structured planning errors for the karma::api facade (DESIGN.md §8).
//
// The legacy entry points (KarmaPlanner::plan, plan_data_parallel) throw
// bare std::runtime_error with a prose message; callers who want to react
// — shrink the batch, add a tier, route to a bigger node — have nothing to
// parse. Session::plan() instead returns Expected<Plan, PlanError>: the
// error names the failing component (layer / block), quantifies the
// shortfall per storage tier, and, when the request allows it, reports the
// nearest batch size that would have been feasible (found by bisection).
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "src/tier/hierarchy.h"
#include "src/util/units.h"

namespace karma::api {

struct Plan;  // full definition in src/api/session.h

enum class PlanErrorCode {
  kInvalidRequest,      ///< malformed request (empty model, bad options)
  kWeightsExceedDevice, ///< resident weights+grads alone overflow HBM
  kLayerExceedsDevice,  ///< one layer's activations cannot fit any blocking
  kTierOverflow,        ///< offload demand exceeds every storage tier
  kNoFeasibleBlocking,  ///< search exhausted without a deadlock-free plan
  kParseError,          ///< plan JSON failed to parse / validate
  kCancelled,           ///< the caller cancelled the search (PlanFuture)
  kDeadline,            ///< deadline or candidate budget ran out mid-search
  kInternalError,       ///< invariant violation inside the search — a bug;
                        ///< waiters are settled with this, then the
                        ///< exception is rethrown to surface loudly
  kOverloaded,          ///< admission control shed the request (karma-pland
                        ///< queue depth exceeded); retry_after is set
  kUnavailable,         ///< transport failure talking to karma-pland
                        ///< (connect/read/write error, daemon gone)
};

const char* plan_error_code_name(PlanErrorCode code);

/// How far one storage tier falls short of what the request demands of it.
struct TierDeficit {
  tier::Tier tier = tier::Tier::kDevice;
  Bytes required = 0;  ///< bytes the plan would need to place on this tier
  Bytes capacity = 0;  ///< what the tier actually offers
  Bytes deficit() const { return required > capacity ? required - capacity : 0; }
};

/// Structured diagnosis of an infeasible (or malformed) PlanRequest.
struct PlanError {
  PlanErrorCode code = PlanErrorCode::kNoFeasibleBlocking;
  std::string message;         ///< human-readable one-liner
  std::string model;           ///< model name from the request
  std::string device;          ///< device name from the request
  int violating_layer = -1;    ///< layer id that breaks feasibility, or -1
  int violating_block = -1;    ///< finest-blocking block holding that layer
  std::vector<TierDeficit> deficits;  ///< per-tier shortfalls (may be empty)
  /// Largest batch size at which the same request plans successfully,
  /// found by bisection when PlanRequest::probe_feasible_batch is set;
  /// -1 = unknown / not probed / nothing feasible.
  std::int64_t nearest_feasible_batch = -1;
  /// How many candidate plans the bisection evaluated to find it (each
  /// probe is one re-batched planner run), and how many of those the
  /// session's plan cache answered without re-planning — successful
  /// probes are cached as full plan artifacts, so repeated diagnoses of
  /// the same model get cheaper. Both 0 when the bisection did not run.
  int probe_candidates = 0;
  int probe_cache_hits = 0;
  /// For kCancelled/kDeadline: the best feasible plan the interrupted
  /// search had found before it stopped, when one exists. A usable (if
  /// unpolished) artifact — it simulates, serializes, and binds like any
  /// other plan, but is never inserted into the plan cache (only
  /// completed searches are). Shared because several waiters of one
  /// single-flight search may receive the same snapshot.
  std::shared_ptr<const Plan> partial;
  /// True when this error was served from the negative-result cache
  /// instead of a fresh diagnosis (DESIGN.md §11). Diagnostic only —
  /// excluded from equality of interest; the structured fields match the
  /// originally diagnosed error exactly.
  bool from_negative_cache = false;
  /// For kOverloaded: how long the daemon suggests waiting before the
  /// retry (its queues are expected to have drained by then). 0 otherwise.
  Seconds retry_after = 0;

  /// Multi-line report suitable for logs and CLI output.
  std::string describe() const;
};

/// Minimal expected<T, E> (std::expected is C++23; this repo is C++20).
/// Holds exactly one of a value or an error; value access on an error (or
/// vice versa) throws std::bad_variant_access rather than being UB.
template <typename T, typename E>
class Expected {
 public:
  Expected(T value) : state_(std::in_place_index<0>, std::move(value)) {}
  Expected(E error) : state_(std::in_place_index<1>, std::move(error)) {}

  bool has_value() const { return state_.index() == 0; }
  explicit operator bool() const { return has_value(); }

  T& value() & { return std::get<0>(state_); }
  const T& value() const& { return std::get<0>(state_); }
  T&& value() && { return std::get<0>(std::move(state_)); }

  E& error() & { return std::get<1>(state_); }
  const E& error() const& { return std::get<1>(state_); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, E> state_;
};

}  // namespace karma::api
