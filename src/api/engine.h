// karma::api::Engine — the process-wide planning service (DESIGN.md §11).
//
// PR 4 made planning pure and content-addressed: a PlanRequest is a value,
// the search is a deterministic function of it, and the artifact
// serializes byte-stably. The Engine is the service built on that fact:
//
//   - ONE shared two-level plan cache (positive artifacts + memoized
//     negative results) that every tenant Session reads and warms;
//   - single-flight collapse: concurrent identical requests (same
//     cache::RequestKey) share one search — one simulation storm, every
//     waiter gets the bit-identical artifact;
//   - a lazily started worker pool for plan_async() (synchronous plan()
//     runs the search on the calling thread but still participates in
//     single-flight as leader or joiner);
//   - cooperative cancellation: every search runs under a CancelToken
//     whose effective deadline/budget is the *loosest* over the flight's
//     interested waiters — one tenant's cancel or deadline never
//     truncates another's search; when the last waiter leaves, the
//     search is cancelled and its (uncached) result discarded.
//
// Lifecycle: Engine::create() returns a shared_ptr; Sessions and
// PlanFutures keep their Engine alive, so the pool cannot be torn down
// under an outstanding request. Destruction stops the workers and settles
// any still-queued flights with PlanError{kCancelled}.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "src/api/session.h"

namespace karma::cache {
struct RequestKey;
}  // namespace karma::cache

namespace karma::calib {
struct CalibrationTable;
}  // namespace karma::calib

namespace karma::obs {
class Registry;
}  // namespace karma::obs

namespace karma::api {

namespace detail {
struct Flight;
}  // namespace detail

/// Configuration of a planning service.
struct EngineOptions {
  /// Shared-cache behavior (mode, byte capacity, disk dir). The name
  /// SessionOptions is historical — since v2 the cache belongs to the
  /// Engine and Sessions are handles onto it.
  SessionOptions cache;
  /// Worker threads for plan_async(); 0 = auto (hardware concurrency,
  /// clamped to [1, 8]). Workers start lazily on the first async submit.
  /// Note: a synchronous plan() carrying SearchLimits also routes through
  /// the pool (the search must outlive the caller's wait to keep
  /// waiter-local limits honest), so only an Engine doing exclusively
  /// unbounded synchronous plans stays thread-free.
  std::size_t num_workers = 0;
};

/// Service-level counters (cache-level ones live in cache::CacheStats).
/// The single-flight proof in tests and benches: a 16-thread identical
/// storm must report searches == 1.
///
/// Since PR 9 this is a snapshot VIEW over the engine's obs::Registry
/// counters ("engine.requests" etc.). Engine::stats() captures a
/// causally-consistent snapshot: within one EngineStats,
/// `searches + flights_joined <= requests` and
/// `cancelled + deadlines <= requests` hold even while a plan storm is
/// incrementing concurrently (release increments, acquire reads in
/// reverse-causal order — no torn mixed-epoch snapshots).
struct EngineStats {
  std::uint64_t requests = 0;        ///< plan() + plan_async() submissions
  std::uint64_t searches = 0;        ///< planner searches actually started
  std::uint64_t flights_joined = 0;  ///< deduped onto an in-flight search
  std::uint64_t cancelled = 0;       ///< waiter outcomes settled kCancelled
  std::uint64_t deadlines = 0;       ///< waiter outcomes settled kDeadline

  /// One-line render, e.g. "requests=16 searches=1 flights_joined=15 ...".
  std::string describe() const;
};

class Engine : public std::enable_shared_from_this<Engine> {
 public:
  static std::shared_ptr<Engine> create(EngineOptions options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// A tenant handle of this engine (equivalently Session(engine)).
  Session session() { return Session(shared_from_this()); }

  /// Synchronous plan: validates, consults the shared caches, collapses
  /// into an identical in-flight search or leads a new one on the calling
  /// thread. See Session::plan for the full contract.
  Expected<Plan, PlanError> plan(const PlanRequest& request);

  /// Asynchronous plan on the worker pool. Cache hits and invalid
  /// requests settle the future immediately; otherwise the future tracks
  /// the (possibly shared) flight. See PlanFuture.
  PlanFuture plan_async(const PlanRequest& request);

  /// Cache-only probe — never searches, queues, or blocks on a flight:
  /// validates the request and consults the shared caches. Returns the
  /// settled outcome for invalid requests and positive/negative hits;
  /// nullopt = only a search could answer (submit via plan/plan_async).
  /// This is karma-pland's hit path: connection threads serve warm hits
  /// directly, so one tenant's cold storm queued at the worker pool can
  /// never add latency to another tenant's hits.
  std::optional<Expected<Plan, PlanError>> try_cached(
      const PlanRequest& request);

  /// Key-addressed variant for callers that already hold the content key
  /// of a request they have previously parsed and validated (karma-pland
  /// memoizes wire-bytes -> key, so a warm client's repeats skip the
  /// model re-parse entirely). `probe_feasible_batch` must be the flag of
  /// the keyed request — it selects which negative entries are eligible.
  std::optional<Expected<Plan, PlanError>> try_cached(
      const cache::RequestKey& key, bool probe_feasible_batch);

  /// Installs (or, with nullptr, clears) the measured-cost calibration
  /// table (DESIGN.md §13). Takes effect on the next prepare(): new
  /// requests are keyed under the table's content hash and searched
  /// against the calibrated device; in-flight searches keep the snapshot
  /// they started with. The superseded hash joins a short history that
  /// prepare() probes on a miss — a plan cached under the previous
  /// calibration becomes the warm-start seed of a calib-repair search
  /// instead of a cold one. Thread-safe; hot-swappable (karma-pland's
  /// `calibrate` verb lands here).
  void set_calibration(std::shared_ptr<const calib::CalibrationTable> table);

  /// The active table (nullptr = analytic model).
  std::shared_ptr<const calib::CalibrationTable> calibration() const;

  /// The active table's content hash, "" when uncalibrated — the value
  /// joined into every RequestKey this engine computes.
  std::string calibration_hash() const;

  /// Content key of `request` under the engine's ACTIVE calibration —
  /// what try_cached/plan would key it as right now. karma-pland's
  /// wire-bytes digest memo stores these; the memo must be flushed when
  /// the calibration changes (the daemon's calibrate verb does).
  cache::RequestKey key_for(const PlanRequest& request) const;

  /// Counters of the shared two-level cache (zeros under kBypass).
  cache::CacheStats cache_stats() const;

  /// The shared plan cache itself, or nullptr under kBypass. karma-pland's
  /// stats endpoint reads the fleet claim counters off its DiskStore.
  cache::PlanCache* plan_cache() const;

  EngineStats stats() const;

  /// The engine's metrics registry (DESIGN.md §15): every EngineStats
  /// counter plus latency histograms ("engine.search_seconds"), with
  /// CacheStats mirrored in as gauges at snapshot time. Shared so
  /// embedders (karma-pland) register their own instruments alongside —
  /// one `metrics` verb then exposes the whole process.
  const std::shared_ptr<obs::Registry>& metrics() const;

  /// Resolved options ($KARMA_CACHE_DIR applied to cache.cache_dir).
  const EngineOptions& options() const { return options_; }

 private:
  friend class PlanFuture;

  explicit Engine(EngineOptions options);

  /// Validation + cache consult + single-flight join-or-create. Exactly
  /// one of the results: a settled outcome, or a flight this caller is
  /// registered with (`leader` = this caller must run/enqueue it).
  struct Prepared;
  Prepared prepare(const PlanRequest& request);

  /// Executes a flight's search end to end and settles it (worker thread
  /// or synchronous leader). Re-consults the cache first, so a flight
  /// that lost a race with an already-completed identical search never
  /// re-simulates.
  void run_flight(const std::shared_ptr<detail::Flight>& flight);

  void ensure_workers();
  void worker_loop();

  struct Impl;
  EngineOptions options_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace karma::api
