#include "src/api/remote_session.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "src/api/plan_io.h"
#include "src/api/request_io.h"
#include "src/pland/protocol.h"
#include "src/util/json.h"

namespace karma::api {

namespace {

using util::json::Value;
using util::json::Writer;

PlanError unavailable(std::string message) {
  PlanError e;
  e.code = PlanErrorCode::kUnavailable;
  e.message = std::move(message);
  return e;
}

}  // namespace

Expected<RemoteSession, PlanError> RemoteSession::connect(
    const std::string& socket_path, std::string tenant) {
  sockaddr_un addr{};
  if (socket_path.empty() || socket_path.size() >= sizeof addr.sun_path)
    return unavailable("socket path empty or too long: '" + socket_path +
                       "'");
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return unavailable("socket() failed");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return unavailable("cannot connect to karma-pland at '" + socket_path +
                       "': " + std::strerror(errno));
  }
  return RemoteSession(fd, std::move(tenant));
}

RemoteSession::RemoteSession(int fd, std::string tenant)
    : fd_(fd), tenant_(std::move(tenant)) {}

RemoteSession::RemoteSession(RemoteSession&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      tenant_(std::move(other.tenant_)),
      next_id_(other.next_id_) {}

RemoteSession& RemoteSession::operator=(RemoteSession&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    tenant_ = std::move(other.tenant_);
    next_id_ = other.next_id_;
  }
  return *this;
}

RemoteSession::~RemoteSession() {
  if (fd_ >= 0) ::close(fd_);
}

std::string RemoteSession::round_trip(const std::string& envelope,
                                      std::int64_t id) {
  if (fd_ < 0) return {};
  if (!pland::write_frame(fd_, envelope)) return {};
  std::string payload;
  for (;;) {
    if (pland::read_frame(fd_, &payload) != pland::ReadStatus::kOk)
      return {};
    try {
      const Value root = util::json::parse(payload);
      if (root.at("id").as_int() == id) return payload;
      // Not ours (stale pipelined response) — keep reading.
    } catch (const std::exception&) {
      return {};
    }
  }
}

Expected<std::string, PlanError> RemoteSession::plan_raw(
    const PlanRequest& request) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::int64_t id = next_id_++;
  Writer w;
  w.begin_object();
  w.key("v"); w.value(pland::kProtocolVersion);
  w.key("type"); w.value("plan");
  w.key("id"); w.value(id);
  w.key("tenant"); w.value(tenant_);
  w.key("request"); w.raw(request_to_json(request));
  w.end_object();

  const std::string payload = round_trip(w.take(), id);
  if (payload.empty())
    return unavailable("karma-pland connection failed mid-request");
  try {
    const Value root = util::json::parse(payload);
    if (root.at("ok").as_bool()) {
      // The span IS the leader's Plan::to_json() bytes — byte-identical
      // for every client fleet-wide.
      return std::string(root.at("plan").span(payload));
    }
    return error_from_json(root.at("error").span(payload));
  } catch (const std::exception& ex) {
    return unavailable(std::string("malformed daemon response: ") +
                       ex.what());
  }
}

Expected<Plan, PlanError> RemoteSession::plan(const PlanRequest& request) {
  auto raw = plan_raw(request);
  if (!raw) return std::move(raw).error();
  return plan_from_json(raw.value());
}

Expected<std::string, PlanError> RemoteSession::stats_json() {
  std::lock_guard<std::mutex> lock(mu_);
  const std::int64_t id = next_id_++;
  Writer w;
  w.begin_object();
  w.key("v"); w.value(pland::kProtocolVersion);
  w.key("type"); w.value("stats");
  w.key("id"); w.value(id);
  w.end_object();
  const std::string payload = round_trip(w.take(), id);
  if (payload.empty()) return unavailable("stats request failed");
  try {
    const Value root = util::json::parse(payload);
    if (!root.at("ok").as_bool())
      return error_from_json(root.at("error").span(payload));
    return std::string(root.at("stats").span(payload));
  } catch (const std::exception& ex) {
    return unavailable(std::string("malformed stats response: ") +
                       ex.what());
  }
}

Expected<std::string, PlanError> RemoteSession::metrics_json() {
  std::lock_guard<std::mutex> lock(mu_);
  const std::int64_t id = next_id_++;
  Writer w;
  w.begin_object();
  w.key("v"); w.value(pland::kProtocolVersion);
  w.key("type"); w.value("metrics");
  w.key("id"); w.value(id);
  w.end_object();
  const std::string payload = round_trip(w.take(), id);
  if (payload.empty()) return unavailable("metrics request failed");
  try {
    const Value root = util::json::parse(payload);
    if (!root.at("ok").as_bool())
      return error_from_json(root.at("error").span(payload));
    return std::string(root.at("metrics").span(payload));
  } catch (const std::exception& ex) {
    return unavailable(std::string("malformed metrics response: ") +
                       ex.what());
  }
}

Expected<std::string, PlanError> RemoteSession::calibrate(
    const std::string& table_json) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::int64_t id = next_id_++;
  Writer w;
  w.begin_object();
  w.key("v"); w.value(pland::kProtocolVersion);
  w.key("type"); w.value("calibrate");
  w.key("id"); w.value(id);
  w.key("table");
  if (table_json.empty()) {
    w.null();  // null table clears back to the analytic model
  } else {
    w.raw(table_json);
  }
  w.end_object();
  const std::string payload = round_trip(w.take(), id);
  if (payload.empty()) return unavailable("calibrate request failed");
  try {
    const Value root = util::json::parse(payload);
    if (!root.at("ok").as_bool())
      return error_from_json(root.at("error").span(payload));
    return root.at("calibration").as_string();
  } catch (const std::exception& ex) {
    return unavailable(std::string("malformed calibrate response: ") +
                       ex.what());
  }
}

bool RemoteSession::ping() {
  std::lock_guard<std::mutex> lock(mu_);
  const std::int64_t id = next_id_++;
  Writer w;
  w.begin_object();
  w.key("v"); w.value(pland::kProtocolVersion);
  w.key("type"); w.value("ping");
  w.key("id"); w.value(id);
  w.end_object();
  const std::string payload = round_trip(w.take(), id);
  if (payload.empty()) return false;
  try {
    const Value root = util::json::parse(payload);
    return root.at("type").as_string() == "pong" &&
           root.at("ok").as_bool();
  } catch (const std::exception&) {
    return false;
  }
}

bool RemoteSession::shutdown_server() {
  std::lock_guard<std::mutex> lock(mu_);
  const std::int64_t id = next_id_++;
  Writer w;
  w.begin_object();
  w.key("v"); w.value(pland::kProtocolVersion);
  w.key("type"); w.value("shutdown");
  w.key("id"); w.value(id);
  w.end_object();
  const std::string payload = round_trip(w.take(), id);
  if (payload.empty()) return false;
  try {
    const Value root = util::json::parse(payload);
    return root.at("type").as_string() == "shutdown" &&
           root.at("ok").as_bool();
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace karma::api
