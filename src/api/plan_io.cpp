#include "src/api/plan_io.h"

#include <map>
#include <stdexcept>

#include "src/api/io_detail.h"
#include "src/api/session.h"
#include "src/util/json.h"

namespace karma::api {

namespace detail {

// The device component is shared with request_io: a PlanRequest and the
// Plan it produces serialize the device identically, field for field.

void write_device(util::json::Writer& w, const sim::DeviceSpec& d) {
  w.begin_object();
  w.key("name"); w.value(d.name);
  w.key("memory_capacity"); w.value(d.memory_capacity);
  w.key("peak_flops"); w.value(d.peak_flops);
  w.key("device_mem_bw"); w.value(d.device_mem_bw);
  w.key("h2d_bw"); w.value(d.h2d_bw);
  w.key("d2h_bw"); w.value(d.d2h_bw);
  w.key("swap_latency"); w.value(d.swap_latency);
  w.key("cpu_flops"); w.value(d.cpu_flops);
  w.key("host_mem_bw"); w.value(d.host_mem_bw);
  w.key("host_capacity"); w.value(d.host_capacity);
  w.key("nvme_capacity"); w.value(d.nvme_capacity);
  w.key("nvme_read_bw"); w.value(d.nvme_read_bw);
  w.key("nvme_write_bw"); w.value(d.nvme_write_bw);
  w.key("nvme_latency"); w.value(d.nvme_latency);
  // The calibration overlay is emitted only when non-identity, so every
  // uncalibrated artifact's bytes (and golden fixture) are unchanged.
  if (!d.scale.identity()) {
    w.key("scale");
    w.begin_object();
    w.key("compute"); w.value(d.scale.compute);
    w.key("h2d"); w.value(d.scale.h2d);
    w.key("d2h"); w.value(d.scale.d2h);
    w.key("nvme_read"); w.value(d.scale.nvme_read);
    w.key("nvme_write"); w.value(d.scale.nvme_write);
    w.key("cpu_update"); w.value(d.scale.cpu_update);
    w.end_object();
  }
  // Same pattern for the NVMe contention model (DESIGN.md §16): identity
  // contention emits nothing, so uncontended artifacts stay byte-exact.
  if (!d.nvme_contention.identity()) {
    w.key("nvme_contention");
    w.begin_object();
    w.key("queue_depth"); w.value(d.nvme_contention.queue_depth);
    w.key("mixed_read_penalty");
    w.value(d.nvme_contention.mixed_read_penalty);
    w.key("mixed_write_penalty");
    w.value(d.nvme_contention.mixed_write_penalty);
    w.end_object();
  }
  w.end_object();
}

sim::DeviceSpec read_device(const util::json::Value& v) {
  sim::DeviceSpec d;
  d.name = v.at("name").as_string();
  d.memory_capacity = v.at("memory_capacity").as_int();
  d.peak_flops = v.at("peak_flops").as_double();
  d.device_mem_bw = v.at("device_mem_bw").as_double();
  d.h2d_bw = v.at("h2d_bw").as_double();
  d.d2h_bw = v.at("d2h_bw").as_double();
  d.swap_latency = v.at("swap_latency").as_double();
  d.cpu_flops = v.at("cpu_flops").as_double();
  d.host_mem_bw = v.at("host_mem_bw").as_double();
  d.host_capacity = v.at("host_capacity").as_int();
  d.nvme_capacity = v.at("nvme_capacity").as_int();
  d.nvme_read_bw = v.at("nvme_read_bw").as_double();
  d.nvme_write_bw = v.at("nvme_write_bw").as_double();
  d.nvme_latency = v.at("nvme_latency").as_double();
  if (v.has("scale")) {
    const util::json::Value& s = v.at("scale");
    d.scale.compute = s.at("compute").as_double();
    d.scale.h2d = s.at("h2d").as_double();
    d.scale.d2h = s.at("d2h").as_double();
    d.scale.nvme_read = s.at("nvme_read").as_double();
    d.scale.nvme_write = s.at("nvme_write").as_double();
    d.scale.cpu_update = s.at("cpu_update").as_double();
  }
  if (v.has("nvme_contention")) {
    const util::json::Value& c = v.at("nvme_contention");
    d.nvme_contention.queue_depth = c.at("queue_depth").as_double();
    d.nvme_contention.mixed_read_penalty =
        c.at("mixed_read_penalty").as_double();
    d.nvme_contention.mixed_write_penalty =
        c.at("mixed_write_penalty").as_double();
  }
  return d;
}

}  // namespace detail

namespace {

using util::json::Value;
using util::json::Writer;
using util::json::as_int32;

// ---------------------------------------------------------------------------
// Enum <-> string maps. Names match the repo's existing display strings.
// ---------------------------------------------------------------------------

const char* op_kind_tag(sim::OpKind k) { return sim::op_kind_name(k); }

sim::OpKind op_kind_from(const std::string& s) {
  using sim::OpKind;
  static const std::map<std::string, OpKind> kMap = {
      {"F", OpKind::kForward},      {"B", OpKind::kBackward},
      {"R", OpKind::kRecompute},    {"Sout", OpKind::kSwapOut},
      {"Sin", OpKind::kSwapIn},     {"AR", OpKind::kAllReduce},
      {"U", OpKind::kCpuUpdate},    {"Ud", OpKind::kDeviceUpdate}};
  const auto it = kMap.find(s);
  if (it == kMap.end()) throw std::runtime_error("unknown op kind '" + s + "'");
  return it->second;
}

tier::Tier tier_from(const std::string& s) {
  if (s == "device") return tier::Tier::kDevice;
  if (s == "host") return tier::Tier::kHost;
  if (s == "nvme") return tier::Tier::kNvme;
  throw std::runtime_error("unknown tier '" + s + "'");
}

tier::Residency residency_from(const std::string& s) {
  if (s == "act") return tier::Residency::kActivation;
  if (s == "shard") return tier::Residency::kWeightShard;
  if (s == "grad") return tier::Residency::kGradient;
  if (s == "opt") return tier::Residency::kOptimizerState;
  throw std::runtime_error("unknown residency '" + s + "'");
}

core::BlockPolicy policy_from(const std::string& s) {
  using core::BlockPolicy;
  if (s == "resident") return BlockPolicy::kResident;
  if (s == "swap") return BlockPolicy::kSwap;
  if (s == "recompute") return BlockPolicy::kRecompute;
  if (s == "swap-nvme") return BlockPolicy::kSwapNvme;
  throw std::runtime_error("unknown policy '" + s + "'");
}

// ---------------------------------------------------------------------------
// Component writers / readers.
// ---------------------------------------------------------------------------

void write_hierarchy(Writer& w, const tier::StorageHierarchy& h) {
  w.begin_array();
  for (const auto& t : h.tiers()) {
    w.begin_object();
    w.key("tier"); w.value(tier::tier_name(t.tier));
    w.key("capacity"); w.value(t.capacity);
    w.key("read_bw"); w.value(t.read_bw);
    w.key("write_bw"); w.value(t.write_bw);
    w.key("latency"); w.value(t.latency);
    w.end_object();
  }
  w.end_array();
}

tier::StorageHierarchy read_hierarchy(const Value& v) {
  std::vector<tier::TierSpec> tiers;
  for (const auto& tv : v.array) {
    tier::TierSpec t;
    t.tier = tier_from(tv.at("tier").as_string());
    t.capacity = tv.at("capacity").as_int();
    t.read_bw = tv.at("read_bw").as_double();
    t.write_bw = tv.at("write_bw").as_double();
    t.latency = tv.at("latency").as_double();
    tiers.push_back(t);
  }
  return tier::StorageHierarchy(std::move(tiers));
}

void write_schedule(Writer& w, const sim::Plan& p) {
  w.begin_object();
  w.key("strategy"); w.value(p.strategy);
  w.key("capacity"); w.value(p.capacity);
  w.key("baseline_resident"); w.value(p.baseline_resident);
  w.key("host_baseline_resident"); w.value(p.host_baseline_resident);
  w.key("blocks");
  w.begin_array();
  for (const auto& b : p.blocks) {
    w.begin_array();
    w.value(b.first_layer);
    w.value(b.last_layer);
    w.end_array();
  }
  w.end_array();
  w.key("costs");
  w.begin_array();
  for (const auto& c : p.costs) {
    w.begin_object();
    w.key("fwd_time"); w.value(c.fwd_time);
    w.key("bwd_time"); w.value(c.bwd_time);
    w.key("act_bytes"); w.value(c.act_bytes);
    w.key("boundary_bytes"); w.value(c.boundary_bytes);
    w.key("param_bytes"); w.value(c.param_bytes);
    w.key("grad_bytes"); w.value(c.grad_bytes);
    w.end_object();
  }
  w.end_array();
  w.key("hierarchy");
  if (p.hierarchy) write_hierarchy(w, *p.hierarchy);
  else w.null();
  w.key("ops");
  w.begin_array();
  for (const auto& op : p.ops) {
    w.begin_object();
    w.key("kind"); w.value(op_kind_tag(op.kind));
    w.key("block"); w.value(op.block);
    w.key("tier"); w.value(tier::tier_name(op.tier));
    w.key("residency"); w.value(tier::residency_name(op.residency));
    w.key("bytes"); w.value(op.bytes);
    w.key("alloc"); w.value(op.alloc);
    w.key("free"); w.value(op.free);
    w.key("duration"); w.value(op.duration);
    w.key("retains"); w.value(op.retains);
    w.key("iteration"); w.value(op.iteration);
    w.key("after_op"); w.value(op.after_op);
    w.end_object();
  }
  w.end_array();
  w.key("stage_of");
  w.begin_array();
  for (const int s : p.stage_of) w.value(s);
  w.end_array();
  w.end_object();
}

sim::Plan read_schedule(const Value& v) {
  sim::Plan p;
  p.strategy = v.at("strategy").as_string();
  p.capacity = v.at("capacity").as_int();
  p.baseline_resident = v.at("baseline_resident").as_int();
  p.host_baseline_resident = v.at("host_baseline_resident").as_int();
  for (const auto& bv : v.at("blocks").array) {
    if (bv.array.size() != 2) throw std::runtime_error("bad block range");
    sim::Block b;
    b.first_layer = as_int32(bv.array[0], "block.first_layer");
    b.last_layer = as_int32(bv.array[1], "block.last_layer");
    p.blocks.push_back(b);
  }
  for (const auto& cv : v.at("costs").array) {
    sim::BlockCost c;
    c.fwd_time = cv.at("fwd_time").as_double();
    c.bwd_time = cv.at("bwd_time").as_double();
    c.act_bytes = cv.at("act_bytes").as_int();
    c.boundary_bytes = cv.at("boundary_bytes").as_int();
    c.param_bytes = cv.at("param_bytes").as_int();
    c.grad_bytes = cv.at("grad_bytes").as_int();
    p.costs.push_back(c);
  }
  if (v.at("hierarchy").type == Value::Type::kArray)
    p.hierarchy = read_hierarchy(v.at("hierarchy"));
  for (const auto& ov : v.at("ops").array) {
    sim::Op op;
    op.kind = op_kind_from(ov.at("kind").as_string());
    op.block = as_int32(ov.at("block"), "op.block");
    op.tier = tier_from(ov.at("tier").as_string());
    op.residency = residency_from(ov.at("residency").as_string());
    op.bytes = ov.at("bytes").as_int();
    op.alloc = ov.at("alloc").as_int();
    op.free = ov.at("free").as_int();
    op.duration = ov.at("duration").as_double();
    op.retains = ov.at("retains").as_bool();
    op.iteration = as_int32(ov.at("iteration"), "op.iteration");
    op.after_op = as_int32(ov.at("after_op"), "op.after_op");
    p.ops.push_back(op);
  }
  for (const auto& sv : v.at("stage_of").array)
    p.stage_of.push_back(as_int32(sv, "stage_of"));
  return p;
}

void write_exchange(Writer& w, const net::ExchangePlan& e) {
  w.begin_array();
  for (const auto& phase : e.phases) {
    w.begin_object();
    w.key("launch_after_block"); w.value(phase.launch_after_block);
    w.key("blocks");
    w.begin_array();
    for (const int b : phase.blocks) w.value(b);
    w.end_array();
    w.key("bytes"); w.value(phase.bytes);
    w.key("allreduce_time"); w.value(phase.allreduce_time);
    w.end_object();
  }
  w.end_array();
}

/// Placement artifact schema version (DESIGN.md §16). Independent of the
/// plan schema so the fixture format can evolve on its own.
constexpr int kPlacementJsonVersion = 1;

void write_placement(Writer& w, const place::PlacementPlan& p) {
  w.begin_object();
  w.key("version"); w.value(kPlacementJsonVersion);
  w.key("strategy"); w.value(place::placement_strategy_name(p.strategy));
  w.key("blocks");
  w.begin_array();
  for (const auto& b : p.blocks) {
    w.begin_array();
    w.value(b.first_layer);
    w.value(b.last_layer);
    w.end_array();
  }
  w.end_array();
  w.key("owner");
  w.begin_array();
  for (const int n : p.owner) w.value(n);
  w.end_array();
  w.key("nodes");
  w.begin_array();
  for (const auto& n : p.nodes) {
    w.begin_object();
    w.key("name"); w.value(n.name);
    w.key("device_name"); w.value(n.device_name);
    w.key("owned_blocks"); w.value(n.owned_blocks);
    w.key("owned_param_bytes"); w.value(n.owned_param_bytes);
    w.key("owned_grad_bytes"); w.value(n.owned_grad_bytes);
    w.key("reserved_host_bytes"); w.value(n.reserved_host_bytes);
    w.key("plan_iteration_time"); w.value(n.plan_iteration_time);
    w.key("exchange_tail"); w.value(n.exchange_tail);
    w.key("update_time"); w.value(n.update_time);
    w.key("total_time"); w.value(n.total_time);
    w.key("warm_started"); w.value(n.warm_started);
    w.end_object();
  }
  w.end_array();
  w.key("straggler"); w.value(p.straggler);
  w.key("iteration_time"); w.value(p.iteration_time);
  w.end_object();
}

place::PlacementPlan read_placement(const Value& v) {
  const std::int64_t version = v.at("version").as_int();
  if (version != kPlacementJsonVersion)
    throw std::runtime_error("unsupported placement schema version " +
                             std::to_string(version));
  place::PlacementPlan p;
  p.strategy = place::placement_strategy_from(v.at("strategy").as_string());
  for (const auto& bv : v.at("blocks").array) {
    if (bv.array.size() != 2)
      throw std::runtime_error("bad placement block range");
    sim::Block b;
    b.first_layer = as_int32(bv.array[0], "placement.block.first_layer");
    b.last_layer = as_int32(bv.array[1], "placement.block.last_layer");
    p.blocks.push_back(b);
  }
  for (const auto& ov : v.at("owner").array)
    p.owner.push_back(as_int32(ov, "placement.owner"));
  if (p.owner.size() != p.blocks.size())
    throw std::runtime_error("placement owner/blocks length mismatch");
  for (const auto& nv : v.at("nodes").array) {
    place::NodeSummary n;
    n.name = nv.at("name").as_string();
    n.device_name = nv.at("device_name").as_string();
    n.owned_blocks = as_int32(nv.at("owned_blocks"), "node.owned_blocks");
    n.owned_param_bytes = nv.at("owned_param_bytes").as_int();
    n.owned_grad_bytes = nv.at("owned_grad_bytes").as_int();
    n.reserved_host_bytes = nv.at("reserved_host_bytes").as_int();
    n.plan_iteration_time = nv.at("plan_iteration_time").as_double();
    n.exchange_tail = nv.at("exchange_tail").as_double();
    n.update_time = nv.at("update_time").as_double();
    n.total_time = nv.at("total_time").as_double();
    n.warm_started = nv.at("warm_started").as_bool();
    p.nodes.push_back(std::move(n));
  }
  p.straggler = as_int32(v.at("straggler"), "placement.straggler");
  p.iteration_time = v.at("iteration_time").as_double();
  const int num_nodes = static_cast<int>(p.nodes.size());
  for (const int owner : p.owner)
    if (owner < 0 || owner >= num_nodes)
      throw std::runtime_error("placement owner index out of range");
  if (p.straggler < -1 || p.straggler >= num_nodes)
    throw std::runtime_error("placement straggler index out of range");
  return p;
}

net::ExchangePlan read_exchange(const Value& v) {
  net::ExchangePlan e;
  for (const auto& pv : v.array) {
    net::ExchangePhase phase;
    phase.launch_after_block =
        as_int32(pv.at("launch_after_block"), "phase.launch_after_block");
    for (const auto& bv : pv.at("blocks").array)
      phase.blocks.push_back(as_int32(bv, "phase.block"));
    phase.bytes = pv.at("bytes").as_int();
    phase.allreduce_time = pv.at("allreduce_time").as_double();
    e.phases.push_back(std::move(phase));
  }
  return e;
}

}  // namespace

std::string plan_to_json(const Plan& plan) {
  Writer w;
  w.begin_object();
  w.key("version"); w.value(kPlanJsonVersion);
  w.key("model");
  w.begin_object();
  w.key("name"); w.value(plan.model_name);
  w.key("batch"); w.value(plan.batch);
  w.key("layers"); w.value(plan.model_layers);
  w.end_object();
  w.key("device");
  detail::write_device(w, plan.device);
  w.key("schedule");
  write_schedule(w, plan.schedule);
  w.key("policies");
  w.begin_array();
  for (const auto p : plan.policies) w.value(core::block_policy_name(p));
  w.end_array();
  w.key("metrics");
  w.begin_object();
  w.key("iteration_time"); w.value(plan.iteration_time);
  w.key("first_iteration_time"); w.value(plan.first_iteration_time);
  w.key("occupancy"); w.value(plan.occupancy);
  w.key("makespan"); w.value(plan.trace.makespan);
  w.key("peak_resident"); w.value(plan.trace.peak_resident);
  w.key("peak_host_resident"); w.value(plan.trace.peak_host_resident);
  w.key("peak_nvme_resident"); w.value(plan.trace.peak_nvme_resident);
  w.end_object();
  w.key("reserved_host_bytes"); w.value(plan.reserved_host_bytes);
  w.key("distributed"); w.value(plan.distributed);
  w.key("weights_resident"); w.value(plan.weights_resident);
  w.key("exchange");
  if (plan.exchange) write_exchange(w, *plan.exchange);
  else w.null();
  // Trailing and conditional: non-fleet artifacts keep their exact v2
  // bytes (cache entries, goldens).
  if (plan.placement) {
    w.key("fleet");
    write_placement(w, *plan.placement);
  }
  w.end_object();
  return w.take();
}

Expected<Plan, PlanError> plan_from_json(std::string_view json) {
  const auto fail = [](const std::string& why) {
    PlanError e;
    e.code = PlanErrorCode::kParseError;
    e.message = "plan_from_json: " + why;
    return e;
  };
  try {
    const Value root = util::json::parse(json);
    const std::int64_t version = root.at("version").as_int();
    if (version != kPlanJsonVersion)
      return fail("unsupported schema version " + std::to_string(version));

    Plan plan;
    const Value& model = root.at("model");
    plan.model_name = model.at("name").as_string();
    plan.batch = model.at("batch").as_int();
    plan.model_layers = model.at("layers").as_int();
    plan.device = detail::read_device(root.at("device"));
    plan.schedule = read_schedule(root.at("schedule"));
    for (const auto& pv : root.at("policies").array)
      plan.policies.push_back(policy_from(pv.as_string()));
    if (plan.policies.size() != plan.schedule.blocks.size())
      return fail("policies/blocks length mismatch");
    // Structural validation: a parseable-but-corrupt artifact must not
    // reach the engine, which indexes costs/ops by these fields.
    if (plan.schedule.costs.size() != plan.schedule.blocks.size())
      return fail("costs/blocks length mismatch");
    if (!plan.schedule.stage_of.empty() &&
        plan.schedule.stage_of.size() != plan.schedule.ops.size())
      return fail("stage_of/ops length mismatch");
    const int num_blocks = static_cast<int>(plan.schedule.blocks.size());
    const int num_ops = static_cast<int>(plan.schedule.ops.size());
    for (int i = 0; i < num_ops; ++i) {
      const sim::Op& op = plan.schedule.ops[static_cast<std::size_t>(i)];
      if (op.block < 0 || op.block >= num_blocks)
        return fail("op " + std::to_string(i) + " block index out of range");
      if (op.after_op < -1 || op.after_op >= num_ops)
        return fail("op " + std::to_string(i) + " after_op out of range");
    }
    if (plan.model_layers < 0) return fail("negative model layer count");
    for (int b = 0; b < num_blocks; ++b) {
      const sim::Block& blk = plan.schedule.blocks[static_cast<std::size_t>(b)];
      if (blk.first_layer < 0 || blk.last_layer <= blk.first_layer)
        return fail("block " + std::to_string(b) + " has an invalid range");
      if (plan.model_layers > 0 && blk.last_layer > plan.model_layers)
        return fail("block " + std::to_string(b) +
                    " exceeds the model layer count");
    }
    const Value& metrics = root.at("metrics");
    plan.iteration_time = metrics.at("iteration_time").as_double();
    plan.first_iteration_time = metrics.at("first_iteration_time").as_double();
    plan.occupancy = metrics.at("occupancy").as_double();
    plan.trace.makespan = metrics.at("makespan").as_double();
    plan.trace.peak_resident = metrics.at("peak_resident").as_int();
    plan.trace.peak_host_resident = metrics.at("peak_host_resident").as_int();
    plan.trace.peak_nvme_resident = metrics.at("peak_nvme_resident").as_int();
    plan.reserved_host_bytes = root.at("reserved_host_bytes").as_int();
    plan.distributed = root.at("distributed").as_bool();
    plan.weights_resident = root.at("weights_resident").as_bool();
    if (root.at("exchange").type == Value::Type::kArray)
      plan.exchange = read_exchange(root.at("exchange"));
    if (root.has("fleet")) plan.placement = read_placement(root.at("fleet"));
    return plan;
  } catch (const std::exception& ex) {
    return fail(ex.what());
  }
}

std::string placement_to_json(const place::PlacementPlan& placement) {
  Writer w;
  write_placement(w, placement);
  return w.take();
}

place::PlacementPlan placement_from_json(std::string_view json) {
  return read_placement(util::json::parse(json));
}

}  // namespace karma::api
