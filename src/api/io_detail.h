// Internal component readers/writers shared by the api serialization
// units (plan_io, request_io). Not part of the public api surface —
// include only from src/api/*.cpp.
//
// Readers throw std::runtime_error on malformed input; each serializer's
// entry point catches and maps to its own structured PlanError.
#pragma once

#include "src/sim/device.h"
#include "src/util/json.h"

namespace karma::api::detail {

void write_device(util::json::Writer& w, const sim::DeviceSpec& d);
sim::DeviceSpec read_device(const util::json::Value& v);

}  // namespace karma::api::detail
