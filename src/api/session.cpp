#include "src/api/session.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "src/api/engine.h"
#include "src/api/plan_io.h"
#include "src/cache/plan_cache.h"

namespace karma::api {

// ---------------------------------------------------------------------------
// OptimizerSpec
// ---------------------------------------------------------------------------

double OptimizerSpec::state_multiplier() const {
  if (state_bytes_per_param_byte >= 0.0) return state_bytes_per_param_byte;
  switch (kind) {
    case Kind::kNone: return 0.0;
    case Kind::kSgd: return 1.0;          // host master copy
    case Kind::kSgdMomentum: return 2.0;  // + momentum buffer
    case Kind::kAdam: return 3.0;         // + first and second moments
  }
  return 0.0;
}

Bytes OptimizerSpec::host_state_bytes(Bytes param_bytes) const {
  if (!host_resident) return 0;
  return static_cast<Bytes>(static_cast<double>(param_bytes) *
                            state_multiplier());
}

// ---------------------------------------------------------------------------
// PlanError
// ---------------------------------------------------------------------------

const char* plan_error_code_name(PlanErrorCode code) {
  switch (code) {
    case PlanErrorCode::kInvalidRequest: return "invalid-request";
    case PlanErrorCode::kWeightsExceedDevice: return "weights-exceed-device";
    case PlanErrorCode::kLayerExceedsDevice: return "layer-exceeds-device";
    case PlanErrorCode::kTierOverflow: return "tier-overflow";
    case PlanErrorCode::kNoFeasibleBlocking: return "no-feasible-blocking";
    case PlanErrorCode::kParseError: return "parse-error";
    case PlanErrorCode::kCancelled: return "cancelled";
    case PlanErrorCode::kDeadline: return "deadline-exceeded";
    case PlanErrorCode::kInternalError: return "internal-error";
    case PlanErrorCode::kOverloaded: return "overloaded";
    case PlanErrorCode::kUnavailable: return "unavailable";
  }
  return "?";
}

std::string PlanError::describe() const {
  std::ostringstream os;
  os << "PlanError[" << plan_error_code_name(code) << "] " << message;
  if (!model.empty()) os << "\n  model:  " << model;
  if (!device.empty()) os << "\n  device: " << device;
  if (violating_layer >= 0) os << "\n  violating layer: " << violating_layer;
  if (violating_block >= 0) os << "\n  violating block: " << violating_block;
  for (const auto& d : deficits) {
    os << "\n  tier " << tier::tier_name(d.tier) << ": needs "
       << format_bytes(d.required) << " of " << format_bytes(d.capacity);
    if (d.deficit() > 0) os << " (short " << format_bytes(d.deficit()) << ")";
  }
  if (nearest_feasible_batch > 0)
    os << "\n  nearest feasible batch: " << nearest_feasible_batch;
  if (probe_candidates > 0) {
    os << "\n  feasibility probes: " << probe_candidates
       << " candidate plan(s) evaluated";
    if (probe_cache_hits > 0)
      os << ", " << probe_cache_hits << " served from the plan cache";
  }
  if (partial)
    os << "\n  partial: best-so-far plan attached (" << partial->blocks().size()
       << " blocks, iteration " << format_seconds(partial->iteration_time)
       << ")";
  if (from_negative_cache)
    os << "\n  (served from the negative-result cache)";
  if (retry_after > 0)
    os << "\n  retry after: " << format_seconds(retry_after);
  return os.str();
}

// ---------------------------------------------------------------------------
// Plan artifact
// ---------------------------------------------------------------------------

sim::ExecutionTrace Plan::simulate() const {
  const sim::Engine engine(device);
  return engine.run(schedule);
}

std::string Plan::to_json() const { return plan_to_json(*this); }

Expected<Plan, PlanError> Plan::from_json(const std::string& json) {
  return plan_from_json(json);
}

std::vector<train::OocBlock> Plan::derive_ooc_blocks(
    std::size_t num_layers) const {
  if (model_layers <= 0)
    throw std::invalid_argument("derive_ooc_blocks: plan has no layers");
  if (num_layers == 0)
    throw std::invalid_argument("derive_ooc_blocks: empty target network");
  const auto m = static_cast<std::int64_t>(model_layers);
  const auto n = static_cast<std::int64_t>(num_layers);
  std::vector<train::OocBlock> out;
  for (std::size_t i = 0; i < schedule.blocks.size(); ++i) {
    // Floor-scaled boundaries are monotone, cover [0, n) contiguously, and
    // reduce to the identity when n == m.
    const auto first =
        static_cast<std::size_t>(schedule.blocks[i].first_layer * n / m);
    const auto last =
        static_cast<std::size_t>(schedule.blocks[i].last_layer * n / m);
    if (first == last) continue;  // block collapsed by downscaling
    train::OocBlock b;
    b.first_layer = first;
    b.last_layer = last;
    b.policy = policies[i];
    out.push_back(b);
  }
  if (out.empty())
    throw std::invalid_argument("derive_ooc_blocks: all blocks collapsed");
  return out;
}

train::OocExecutor Plan::bind_executor(train::Sequential* net,
                                       Bytes pool_capacity,
                                       Bytes host_capacity) const {
  if (net == nullptr || net->size() == 0)
    throw std::invalid_argument("bind_executor: empty network");
  if (distributed)
    throw std::invalid_argument(
        "bind_executor: distributed plans have no single-device executor");
  // The planner's host pre-charges carry over to the numeric twin: the
  // optimizer reserve and any pinned shard baseline occupy the bounded
  // host store exactly as they occupy the engine's ledger.
  return train::OocExecutor(
      net, derive_ooc_blocks(net->size()), pool_capacity, host_capacity,
      reserved_host_bytes + schedule.host_baseline_resident);
}

core::PlanResult Plan::to_plan_result() const {
  core::PlanResult r;
  r.plan = schedule;
  r.blocks = schedule.blocks;
  r.policies = policies;
  r.trace = trace;
  r.iteration_time = iteration_time;
  r.occupancy = occupancy;
  return r;
}

// ---------------------------------------------------------------------------
// Session — a handle onto an Engine. The planning pipeline itself
// (validation, cache consult, single-flight, search, diagnosis) lives in
// engine.cpp since v2.
// ---------------------------------------------------------------------------

Session::Session(std::shared_ptr<Engine> engine) : engine_(std::move(engine)) {
  if (!engine_)
    throw std::invalid_argument("Session: null engine");
}

Expected<Plan, PlanError> Session::plan(const PlanRequest& request) const {
  return engine_->plan(request);
}

PlanFuture Session::plan_async(const PlanRequest& request) const {
  return engine_->plan_async(request);
}

Plan Session::plan_or_throw(const PlanRequest& request) const {
  auto result = plan(request);
  if (!result) throw std::runtime_error(result.error().describe());
  return std::move(result).value();
}

cache::CacheStats Session::cache_stats() const {
  return engine_->cache_stats();
}

const SessionOptions& Session::options() const {
  return engine_->options().cache;
}

}  // namespace karma::api
