#include "src/api/session.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "src/api/plan_io.h"
#include "src/cache/plan_cache.h"
#include "src/cache/request_key.h"
#include "src/graph/memory_model.h"

namespace karma::api {
namespace {

/// Leading batch dimension of the planned model (first shaped layer).
std::int64_t batch_of(const graph::Model& model) {
  for (const auto& layer : model.layers()) {
    if (layer.out_shape.rank() > 0) return layer.out_shape.batch();
    if (layer.in_shape.rank() > 0) return layer.in_shape.batch();
  }
  return 1;
}

/// Index of the finest-granularity candidate block containing `layer`.
int block_containing(const graph::Model& model, int layer) {
  const auto cuts = core::candidate_cut_points(model);
  for (std::size_t i = 0; i + 1 < cuts.size(); ++i)
    if (cuts[i] <= layer && layer < cuts[i + 1]) return static_cast<int>(i);
  return -1;
}

}  // namespace

// ---------------------------------------------------------------------------
// OptimizerSpec
// ---------------------------------------------------------------------------

double OptimizerSpec::state_multiplier() const {
  if (state_bytes_per_param_byte >= 0.0) return state_bytes_per_param_byte;
  switch (kind) {
    case Kind::kNone: return 0.0;
    case Kind::kSgd: return 1.0;          // host master copy
    case Kind::kSgdMomentum: return 2.0;  // + momentum buffer
    case Kind::kAdam: return 3.0;         // + first and second moments
  }
  return 0.0;
}

Bytes OptimizerSpec::host_state_bytes(Bytes param_bytes) const {
  if (!host_resident) return 0;
  return static_cast<Bytes>(static_cast<double>(param_bytes) *
                            state_multiplier());
}

// ---------------------------------------------------------------------------
// PlanError
// ---------------------------------------------------------------------------

const char* plan_error_code_name(PlanErrorCode code) {
  switch (code) {
    case PlanErrorCode::kInvalidRequest: return "invalid-request";
    case PlanErrorCode::kWeightsExceedDevice: return "weights-exceed-device";
    case PlanErrorCode::kLayerExceedsDevice: return "layer-exceeds-device";
    case PlanErrorCode::kTierOverflow: return "tier-overflow";
    case PlanErrorCode::kNoFeasibleBlocking: return "no-feasible-blocking";
    case PlanErrorCode::kParseError: return "parse-error";
  }
  return "?";
}

std::string PlanError::describe() const {
  std::ostringstream os;
  os << "PlanError[" << plan_error_code_name(code) << "] " << message;
  if (!model.empty()) os << "\n  model:  " << model;
  if (!device.empty()) os << "\n  device: " << device;
  if (violating_layer >= 0) os << "\n  violating layer: " << violating_layer;
  if (violating_block >= 0) os << "\n  violating block: " << violating_block;
  for (const auto& d : deficits) {
    os << "\n  tier " << tier::tier_name(d.tier) << ": needs "
       << format_bytes(d.required) << " of " << format_bytes(d.capacity);
    if (d.deficit() > 0) os << " (short " << format_bytes(d.deficit()) << ")";
  }
  if (nearest_feasible_batch > 0)
    os << "\n  nearest feasible batch: " << nearest_feasible_batch;
  if (probe_candidates > 0) {
    os << "\n  feasibility probes: " << probe_candidates
       << " candidate plan(s) evaluated";
    if (probe_cache_hits > 0)
      os << ", " << probe_cache_hits << " served from the plan cache";
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Plan artifact
// ---------------------------------------------------------------------------

sim::ExecutionTrace Plan::simulate() const {
  const sim::Engine engine(device);
  return engine.run(schedule);
}

std::string Plan::to_json() const { return plan_to_json(*this); }

Expected<Plan, PlanError> Plan::from_json(const std::string& json) {
  return plan_from_json(json);
}

std::vector<train::OocBlock> Plan::derive_ooc_blocks(
    std::size_t num_layers) const {
  if (model_layers <= 0)
    throw std::invalid_argument("derive_ooc_blocks: plan has no layers");
  if (num_layers == 0)
    throw std::invalid_argument("derive_ooc_blocks: empty target network");
  const auto m = static_cast<std::int64_t>(model_layers);
  const auto n = static_cast<std::int64_t>(num_layers);
  std::vector<train::OocBlock> out;
  for (std::size_t i = 0; i < schedule.blocks.size(); ++i) {
    // Floor-scaled boundaries are monotone, cover [0, n) contiguously, and
    // reduce to the identity when n == m.
    const auto first =
        static_cast<std::size_t>(schedule.blocks[i].first_layer * n / m);
    const auto last =
        static_cast<std::size_t>(schedule.blocks[i].last_layer * n / m);
    if (first == last) continue;  // block collapsed by downscaling
    train::OocBlock b;
    b.first_layer = first;
    b.last_layer = last;
    b.policy = policies[i];
    out.push_back(b);
  }
  if (out.empty())
    throw std::invalid_argument("derive_ooc_blocks: all blocks collapsed");
  return out;
}

train::OocExecutor Plan::bind_executor(train::Sequential* net,
                                       Bytes pool_capacity,
                                       Bytes host_capacity) const {
  if (net == nullptr || net->size() == 0)
    throw std::invalid_argument("bind_executor: empty network");
  if (distributed)
    throw std::invalid_argument(
        "bind_executor: distributed plans have no single-device executor");
  // The planner's host pre-charges carry over to the numeric twin: the
  // optimizer reserve and any pinned shard baseline occupy the bounded
  // host store exactly as they occupy the engine's ledger.
  return train::OocExecutor(
      net, derive_ooc_blocks(net->size()), pool_capacity, host_capacity,
      reserved_host_bytes + schedule.host_baseline_resident);
}

core::PlanResult Plan::to_plan_result() const {
  core::PlanResult r;
  r.plan = schedule;
  r.blocks = schedule.blocks;
  r.policies = policies;
  r.trace = trace;
  r.iteration_time = iteration_time;
  r.occupancy = occupancy;
  return r;
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

namespace {

/// Runs the planners for `request` with the fully derived `options` (the
/// optimizer reserve already charged) and wraps the result in the Plan
/// artifact. Pure planning — no cache, no diagnosis: infeasibility
/// surfaces as the planners' std::runtime_error.
Plan plan_uncached(const PlanRequest& request,
                   const core::PlannerOptions& options, Bytes reserved_host) {
  Plan artifact;
  artifact.model_name = request.model.name();
  artifact.batch = batch_of(request.model);
  artifact.model_layers = static_cast<std::int64_t>(request.model.num_layers());
  artifact.device = request.device;
  artifact.reserved_host_bytes = reserved_host;

  if (request.distributed) {
    core::DistributedOptions opts = *request.distributed;
    // One set of planner knobs: request.planner (with the optimizer
    // reserve) supersedes the copy embedded in DistributedOptions.
    opts.planner = options;
    core::DistributedResult r =
        core::plan_data_parallel(request.model, request.device, opts);
    artifact.schedule = std::move(r.plan);
    artifact.policies = std::move(r.policies);
    artifact.trace = std::move(r.trace);
    artifact.iteration_time = r.iteration_time;
    artifact.first_iteration_time = r.first_iteration_time;
    artifact.occupancy = artifact.trace.occupancy();
    artifact.distributed = true;
    artifact.weights_resident = r.weights_resident;
    artifact.exchange = std::move(r.exchange);
  } else {
    const core::KarmaPlanner planner(request.model, request.device, options);
    core::PlanResult r = planner.plan();
    artifact.schedule = std::move(r.plan);
    artifact.policies = std::move(r.policies);
    artifact.trace = std::move(r.trace);
    artifact.iteration_time = r.iteration_time;
    artifact.first_iteration_time = r.iteration_time;
    artifact.occupancy = r.occupancy;
    artifact.search_stats = r.search;
  }
  return artifact;
}

/// Cache context for the feasibility bisection: successful probes are
/// first-class plan artifacts, keyed and stored like any other plan, so
/// repeated diagnoses reuse intermediate candidates instead of
/// re-planning them. Read-only policy lives in the PlanCache itself
/// (insert is a no-op there) — one authority, no duplicated guards.
struct ProbeContext {
  cache::PlanCache* cache = nullptr;  ///< null = uncached probing
  int candidates = 0;  ///< probe plans evaluated (cache hits included)
  int cache_hits = 0;  ///< probes answered by the cache
};

/// Largest batch at which `request` plans successfully, by bisection with
/// a cheap planner configuration (no annealing — feasibility, not polish).
/// Returns -1 when nothing fits or the model has no batch dimension.
std::int64_t bisect_feasible_batch(const PlanRequest& request,
                                   Bytes reserved_host, ProbeContext& probe) {
  const std::int64_t batch = batch_of(request.model);
  if (batch <= 1) return -1;
  const auto feasible = [&](std::int64_t b) {
    ++probe.candidates;
    // The probe is the same request re-batched with the anneal budget
    // zeroed — a self-consistent PlanRequest, so its cached artifact is
    // exactly what Session::plan would produce for it. The optimizer
    // reserve carries over unchanged: weights are batch-independent.
    PlanRequest probe_request = request;
    probe_request.model = request.model.with_batch_size(b);
    probe_request.planner.anneal_iterations = 0;
    probe_request.probe_feasible_batch = false;
    core::PlannerOptions probe_options = probe_request.planner;
    probe_options.schedule.reserved_host_bytes = reserved_host;

    std::optional<cache::RequestKey> key;
    if (probe.cache) {
      key = cache::request_key(probe_request);
      if (probe.cache->lookup(*key)) {
        ++probe.cache_hits;
        return true;  // only successful probes are ever cached
      }
    }
    try {
      const Plan planned =
          plan_uncached(probe_request, probe_options, reserved_host);
      if (probe.cache) probe.cache->insert(*key, planned);
      return true;
    } catch (const std::runtime_error&) {
      // The planners' documented infeasibility channel. logic_error and
      // friends are engine/plan invariant violations — let them propagate
      // rather than counting a crashed probe as an infeasible batch.
      return false;
    }
  };
  if (!feasible(1)) return -1;
  std::int64_t lo = 1, hi = batch;  // feasible(lo), !feasible(hi)
  while (hi - lo > 1) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    (feasible(mid) ? lo : hi) = mid;
  }
  return lo;
}

/// Static feasibility analysis of an infeasible request: names the failing
/// component and quantifies per-tier shortfalls. `root_message` carries the
/// planner's own exception text as context; `probe` supplies (and records)
/// the cache context of the nearest-feasible-batch bisection.
PlanError diagnose(const PlanRequest& request, Bytes reserved_host,
                   const std::string& root_message, ProbeContext& probe) {
  const graph::Model& model = request.model;
  const sim::DeviceSpec& device = request.device;
  PlanError error;
  error.model = model.name();
  error.device = device.name;
  error.message = root_message;

  const int n = static_cast<int>(model.num_layers());
  const graph::LayerMemory total = graph::range_memory(model, 0, n);
  const Bytes weights = total.weights + total.weight_grads;
  const Bytes capacity = device.memory_capacity;

  if (request.distributed) {
    // The distributed planner swaps weights per block and splits its
    // budget differently per regime; the single-GPU residency analysis
    // below would blame an innocent layer. What *is* statically decidable
    // is the pipeline's shard residency (DESIGN.md §9): the per-rank
    // master weight shards pinned in host DRAM plus the worst case where
    // every block's gradient shard is in flight between its gradient-out
    // and its update. When that alone (plus the optimizer reserve)
    // overflows a bounded host tier, no blocking can admit — report the
    // per-tier shortfall instead of a bare search failure.
    error.code = PlanErrorCode::kNoFeasibleBlocking;
    if (device.host_capacity > 0) {
      // No blocking exists at diagnosis time, so charge the whole model
      // as one block — the lower bound of the per-block rounding every
      // candidate's admission used.
      sim::BlockCost whole;
      whole.param_bytes = total.weights;
      whole.grad_bytes = total.weight_grads;
      const core::ShardResidency shards = core::ShardResidency::from_costs(
          {whole}, request.distributed->weight_shard_fraction);
      const Bytes required = reserved_host + shards.total();
      if (required > device.host_capacity) {
        error.code = PlanErrorCode::kTierOverflow;
        error.message =
            "distributed shard residency alone exceeds host DRAM (" +
            format_bytes(shards.pinned_weight_bytes) +
            " pinned weight shards + " +
            format_bytes(shards.transient_gradient_bytes) +
            " in-flight gradients" +
            (reserved_host > 0
                 ? " + " + format_bytes(reserved_host) + " optimizer reserve"
                 : std::string()) +
            "); shrink weight_shard_fraction (more ZeRO partitioning) or "
            "provision more DRAM";
        error.deficits.push_back(
            {tier::Tier::kHost, required, device.host_capacity});
      }
    }
  } else if (weights >= capacity) {
    // The distributed planner swaps weights per block; single-GPU keeps
    // them resident, so this is a hard wall.
    error.code = PlanErrorCode::kWeightsExceedDevice;
    error.message = "resident weights + gradients alone exceed device HBM; "
                    "consider the distributed (weight-swapping) pipeline";
    error.deficits.push_back(
        {tier::Tier::kDevice, weights, capacity});
  } else {
    const Bytes act_budget = capacity - std::min(weights, capacity);
    // A layer whose activations cannot fit the budget breaks every
    // blocking: its enclosing block retains at least this much during the
    // block's backward, whether swapped, resident, or recomputed.
    int worst_layer = -1;
    Bytes worst_act = 0;
    for (const auto& layer : model.layers()) {
      const Bytes act =
          graph::layer_memory(layer, model.dtype_bytes(), {},
                              model.activation_memory_scale())
              .activations;
      if (act > act_budget && act > worst_act) {
        worst_layer = layer.id;
        worst_act = act;
      }
    }
    if (worst_layer >= 0) {
      error.code = PlanErrorCode::kLayerExceedsDevice;
      error.message = "layer '" + model.layer(worst_layer).name +
                      "' alone overflows the device activation budget";
      error.violating_layer = worst_layer;
      error.violating_block = block_containing(model, worst_layer);
      error.deficits.push_back(
          {tier::Tier::kDevice, weights + worst_act, capacity});
    } else if (device.host_capacity > 0) {
      // Bounded offload tiers: does the spill demand (plus the optimizer
      // reserve pinned in DRAM) fit the hierarchy at all?
      const Bytes spill =
          graph::offload_footprint(model, act_budget).offloaded_activations;
      const Bytes host_take =
          std::max<Bytes>(0, device.host_capacity - reserved_host);
      const Bytes overflow = std::max<Bytes>(0, spill - host_take);
      const Bytes nvme_capacity = device.has_nvme() ? device.nvme_capacity : 0;
      if (overflow > nvme_capacity) {
        error.code = PlanErrorCode::kTierOverflow;
        error.message =
            "offload demand exceeds the storage hierarchy" +
            std::string(reserved_host > 0
                            ? " (host tier pre-charged with optimizer state)"
                            : "");
        error.deficits.push_back({tier::Tier::kHost, reserved_host + spill,
                                  device.host_capacity});
        error.deficits.push_back(
            {tier::Tier::kNvme, overflow, nvme_capacity});
      } else {
        error.code = PlanErrorCode::kNoFeasibleBlocking;
      }
    } else {
      error.code = PlanErrorCode::kNoFeasibleBlocking;
    }
  }

  if (error.code == PlanErrorCode::kNoFeasibleBlocking &&
      error.message.empty())
    error.message =
        "no deadlock-free blocking found (block granularity is limited by "
        "clean cut density; see ROADMAP sub-layer blocking)";

  if (request.probe_feasible_batch) {
    error.nearest_feasible_batch =
        bisect_feasible_batch(request, reserved_host, probe);
    error.probe_candidates = probe.candidates;
    error.probe_cache_hits = probe.cache_hits;
  }
  return error;
}

}  // namespace

Session::Session() : Session(SessionOptions{}) {}

Session::Session(SessionOptions options) : options_(std::move(options)) {
  if (options_.cache_mode == SessionOptions::CacheMode::kBypass) return;
  if (options_.cache_dir.empty()) {
    // Opt-in persistent store via the environment (examples, CI): keep
    // shared cache dirs under the build tree — entries are generated
    // artifacts and must never land in version control.
    if (const char* dir = std::getenv("KARMA_CACHE_DIR"))
      options_.cache_dir = dir;
  }
  cache::PlanCache::Options cache_options;
  cache_options.memory_capacity = options_.cache_memory_capacity;
  cache_options.dir = options_.cache_dir;
  cache_options.read_only =
      options_.cache_mode == SessionOptions::CacheMode::kReadOnly;
  cache_ = std::make_shared<cache::PlanCache>(std::move(cache_options));
}

cache::CacheStats Session::cache_stats() const {
  return cache_ ? cache_->stats() : cache::CacheStats{};
}

Expected<Plan, PlanError> Session::plan(const PlanRequest& request) const {
  // ---- Request validation ----
  if (request.model.num_layers() == 0) {
    PlanError e;
    e.code = PlanErrorCode::kInvalidRequest;
    e.message = "request has an empty model";
    e.device = request.device.name;
    return e;
  }
  if (request.device.memory_capacity <= 0) {
    PlanError e;
    e.code = PlanErrorCode::kInvalidRequest;
    e.message = "device has no memory capacity";
    e.model = request.model.name();
    return e;
  }
  if (request.distributed && request.distributed->num_gpus < 2) {
    PlanError e;
    e.code = PlanErrorCode::kInvalidRequest;
    e.message = "distributed planning needs num_gpus >= 2";
    e.model = request.model.name();
    e.device = request.device.name;
    return e;
  }

  // ---- Optimizer residency pre-charge (ROADMAP: reserved_host) ----
  // Adds to any reserve the caller already put on the planner options
  // (distinct host-pinning consumers compose).
  const graph::LayerMemory total = graph::range_memory(
      request.model, 0, static_cast<int>(request.model.num_layers()));
  const Bytes reserved_host =
      request.planner.schedule.reserved_host_bytes +
      request.optimizer.host_state_bytes(total.weights);
  core::PlannerOptions options = request.planner;
  options.schedule.reserved_host_bytes = reserved_host;

  // ---- Cache consult (content-addressed; DESIGN.md §10) ----
  // The key is computed from the raw request: the derived reserve is a
  // pure function of request fields, so equal keys imply equal effective
  // options. Only successful plans are cached — failures re-diagnose.
  std::optional<cache::RequestKey> key;
  if (cache_) {
    key = cache::request_key(request);
    if (auto hit = cache_->lookup(*key)) return std::move(*hit);
  }

  try {
    Plan artifact = plan_uncached(request, options, reserved_host);
    // Read-only sessions are enforced inside PlanCache (insert no-ops) —
    // one authority for the policy.
    if (cache_) cache_->insert(*key, artifact);
    return artifact;
  } catch (const std::runtime_error& ex) {
    // Infeasibility is reported via std::runtime_error by both legacy
    // planners; anything else (std::logic_error from plan validation or
    // the engine, allocation failure) is a bug and must surface loudly,
    // not be rebranded as a structured planning error.
    ProbeContext probe;
    probe.cache = cache_.get();
    return diagnose(request, reserved_host, ex.what(), probe);
  }
}

Plan Session::plan_or_throw(const PlanRequest& request) const {
  auto result = plan(request);
  if (!result) throw std::runtime_error(result.error().describe());
  return std::move(result).value();
}

}  // namespace karma::api
