// Plan artifact serialization (DESIGN.md §8: JSON schema).
//
// A Plan round-trips through JSON deterministically: keys are emitted in a
// fixed order, integers exactly, and doubles with 17 significant digits
// (enough to reproduce every IEEE-754 double bit-exactly), so
//   from_json(to_json(p)).simulate().makespan == p.simulate().makespan
// holds to the last bit. That makes the artifact usable as a cache key and
// as a golden fixture format: any schema or planner-output drift shows up
// as a textual diff.
//
// No third-party JSON dependency: the writer and parser live in
// src/util/json. The schema is versioned; readers reject versions they do
// not understand instead of misinterpreting them.
#pragma once

#include <string>
#include <string_view>

#include "src/api/errors.h"

#include "src/place/placement.h"

namespace karma::api {

struct Plan;

/// v2: ops carry a `residency` class and schedules a
/// `host_baseline_resident` pinned-shard charge (DESIGN.md §9). Fleet
/// plans add an OPTIONAL trailing "fleet" key (the placement artifact,
/// placement_to_json) — absent for every non-fleet plan, so existing
/// artifacts, goldens, and cache entries stay byte-identical.
inline constexpr int kPlanJsonVersion = 2;

/// Serializes `plan` to the versioned JSON schema. Deterministic: equal
/// plans produce byte-identical strings.
std::string plan_to_json(const Plan& plan);

/// Parses a plan artifact back. Returns PlanError{kParseError} on
/// malformed input, unknown schema versions, or structurally invalid
/// plans (e.g. policies/blocks length mismatch). Takes a view so mmap'd
/// cache entries parse in place without a copy.
Expected<Plan, PlanError> plan_from_json(std::string_view json);

/// Serializes a placement plan (the fleet half of a plan artifact, also
/// usable standalone as a golden fixture). Deterministic like
/// plan_to_json.
std::string placement_to_json(const place::PlacementPlan& placement);

/// Parses a placement artifact back; throws std::runtime_error on
/// malformed input (callers inside plan_from_json map it to kParseError).
place::PlacementPlan placement_from_json(std::string_view json);

}  // namespace karma::api
