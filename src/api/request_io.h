// PlanRequest / PlanError artifact serialization — the wire half of the
// karma-pland protocol (DESIGN.md §12).
//
// plan_io gave Plan a deterministic JSON form; request_io completes the
// triangle so a planning exchange can cross a process boundary:
//
//   request_to_json / request_from_json — a PlanRequest round-trips with
//       its cache identity intact: cache::request_key(parse(serialize(r)))
//       == cache::request_key(r), bit for bit. The schema covers exactly
//       the fields the fingerprint covers (model graph, device, planner
//       knobs, optimizer, distributed) plus the fingerprint-excluded
//       delivery fields (search limits, probe_feasible_batch) that a
//       remote server still needs to honor.
//   error_to_json / error_from_json — a structured PlanError round-trips
//       including its attached partial plan (embedded as a nested v2 plan
//       artifact via Writer::raw, so the bytes match a standalone
//       to_json() exactly).
//
// Like the plan schema, the request schema is versioned and readers
// reject versions they do not understand.
#pragma once

#include <string>
#include <string_view>

#include "src/api/errors.h"
#include "src/place/fleet.h"

namespace karma::api {

struct PlanRequest;

/// v1: initial wire schema (PR 6, karma-pland).
/// v2: adds the `fleet` key (null | FleetSpec object, DESIGN.md §16).
///     Readers still accept v1 payloads (no fleet key -> no fleet), so
///     old clients keep working against a new daemon.
inline constexpr int kRequestJsonVersion = 2;

/// Serializes `request` to the versioned JSON schema. Deterministic:
/// equal requests produce byte-identical strings.
std::string request_to_json(const PlanRequest& request);

/// Parses a request artifact back. Returns PlanError{kParseError} on
/// malformed input or unknown schema versions. Key-preserving:
/// cache::request_key of the parsed request equals that of the original.
Expected<PlanRequest, PlanError> request_from_json(std::string_view json);

/// Serializes a structured PlanError, embedding the attached partial plan
/// (when present) as a nested plan artifact.
std::string error_to_json(const PlanError& error);

/// Parses a serialized PlanError back, reconstructing the partial plan.
/// A malformed envelope still yields a PlanError — kParseError describing
/// the envelope failure — so callers always get a surfaceable error.
PlanError error_from_json(std::string_view json);

/// Serializes a FleetSpec (the same component the v2 request schema
/// embeds, usable standalone for fixtures and tooling). Deterministic:
/// equal fleets produce byte-identical strings.
std::string fleet_to_json(const place::FleetSpec& fleet);

/// Parses a fleet artifact back; throws std::runtime_error on malformed
/// input (request_from_json maps it to kParseError).
place::FleetSpec fleet_from_json(std::string_view json);

}  // namespace karma::api
