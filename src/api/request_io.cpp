#include "src/api/request_io.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <stdexcept>

#include "src/api/io_detail.h"
#include "src/api/plan_io.h"
#include "src/api/session.h"
#include "src/util/json.h"

namespace karma::api {
namespace {

using util::json::Value;
using util::json::Writer;
using util::json::as_int32;

// ---------------------------------------------------------------------------
// Enum maps. Layer kinds travel as their display names (stable, readable);
// the reverse map is built from layer_kind_name over the whole enum so the
// two can never drift apart.
// ---------------------------------------------------------------------------

constexpr int kNumLayerKinds = static_cast<int>(graph::LayerKind::kGeLU) + 1;

graph::LayerKind layer_kind_from(const std::string& s) {
  static const std::map<std::string, graph::LayerKind> kMap = [] {
    std::map<std::string, graph::LayerKind> m;
    for (int k = 0; k < kNumLayerKinds; ++k) {
      const auto kind = static_cast<graph::LayerKind>(k);
      m.emplace(graph::layer_kind_name(kind), kind);
    }
    return m;
  }();
  const auto it = kMap.find(s);
  if (it == kMap.end())
    throw std::runtime_error("unknown layer kind '" + s + "'");
  return it->second;
}

template <typename E>
E enum_from(const Value& v, int count, const char* what) {
  const int x = as_int32(v, what);
  if (x < 0 || x >= count)
    throw std::runtime_error(std::string(what) + " out of range");
  return static_cast<E>(x);
}

// ---------------------------------------------------------------------------
// Component writers / readers.
// ---------------------------------------------------------------------------

void write_shape(Writer& w, const graph::TensorShape& shape) {
  w.begin_array();
  for (std::size_t i = 0; i < shape.rank(); ++i) w.value(shape.dim(i));
  w.end_array();
}

graph::TensorShape read_shape(const Value& v) {
  std::vector<std::int64_t> dims;
  for (const auto& dv : v.array) dims.push_back(dv.as_int());
  return dims.empty() ? graph::TensorShape()
                      : graph::TensorShape(std::move(dims));
}

void write_model(Writer& w, const graph::Model& model) {
  w.begin_object();
  w.key("name"); w.value(model.name());
  w.key("dtype_bytes"); w.value(model.dtype_bytes());
  w.key("act_scale"); w.value(model.activation_memory_scale());
  w.key("layers");
  w.begin_array();
  for (const auto& layer : model.layers()) {
    w.begin_object();
    w.key("name"); w.value(layer.name);
    w.key("kind"); w.value(graph::layer_kind_name(layer.kind));
    w.key("in"); write_shape(w, layer.in_shape);
    w.key("out"); write_shape(w, layer.out_shape);
    w.key("kernel"); w.value(layer.kernel);
    w.key("stride"); w.value(layer.stride);
    w.key("in_channels"); w.value(layer.in_channels);
    w.key("out_channels"); w.value(layer.out_channels);
    w.key("heads"); w.value(layer.heads);
    w.key("head_dim"); w.value(layer.head_dim);
    w.key("vocab"); w.value(layer.vocab);
    w.key("weight_elems"); w.value(layer.weight_elems);
    w.end_object();
  }
  w.end_array();
  // Only skip edges travel: Model::add_layer wires every chain edge
  // id-1 -> id itself, so add_layer + add_edge(skips) reconstructs the
  // graph exactly (succs stay sorted — the fingerprint sees no drift).
  w.key("skips");
  w.begin_array();
  for (const auto& layer : model.layers()) {
    for (const int s : model.succs(layer.id)) {
      if (s == layer.id + 1) continue;
      w.begin_array();
      w.value(layer.id);
      w.value(s);
      w.end_array();
    }
  }
  w.end_array();
  w.end_object();
}

graph::Model read_model(const Value& v) {
  graph::Model model(v.at("name").as_string(),
                     as_int32(v.at("dtype_bytes"), "model.dtype_bytes"));
  model.set_activation_memory_scale(v.at("act_scale").as_double());
  for (const auto& lv : v.at("layers").array) {
    graph::Layer layer;
    layer.name = lv.at("name").as_string();
    layer.kind = layer_kind_from(lv.at("kind").as_string());
    layer.in_shape = read_shape(lv.at("in"));
    layer.out_shape = read_shape(lv.at("out"));
    layer.kernel = lv.at("kernel").as_int();
    layer.stride = lv.at("stride").as_int();
    layer.in_channels = lv.at("in_channels").as_int();
    layer.out_channels = lv.at("out_channels").as_int();
    layer.heads = lv.at("heads").as_int();
    layer.head_dim = lv.at("head_dim").as_int();
    layer.vocab = lv.at("vocab").as_int();
    layer.weight_elems = lv.at("weight_elems").as_int();
    model.add_layer(std::move(layer));
  }
  for (const auto& ev : v.at("skips").array) {
    if (ev.array.size() != 2) throw std::runtime_error("bad skip edge");
    model.add_edge(as_int32(ev.array[0], "skip.from"),
                   as_int32(ev.array[1], "skip.to"));
  }
  model.validate();
  return model;
}

void write_planner(Writer& w, const core::PlannerOptions& p) {
  w.begin_object();
  w.key("recompute"); w.value(p.enable_recompute);
  w.key("min_blocks"); w.value(p.min_blocks);
  w.key("max_blocks"); w.value(p.max_blocks);
  w.key("anneal"); w.value(p.anneal_iterations);
  w.key("anneal_workers"); w.value(p.anneal_workers);
  // uint64 seeds exceed the JSON writer's int64 range; travel as decimal
  // text (the fingerprint prints the same %PRIu64 digits).
  char seed[32];
  std::snprintf(seed, sizeof seed, "%" PRIu64,
                static_cast<std::uint64_t>(p.seed));
  w.key("seed"); w.value(seed);
  w.key("prefetch"); w.value(p.schedule.prefetch_window);
  w.key("reserved_host"); w.value(p.schedule.reserved_host_bytes);
  w.end_object();
}

core::PlannerOptions read_planner(const Value& v) {
  core::PlannerOptions p;
  p.enable_recompute = v.at("recompute").as_bool();
  p.min_blocks = as_int32(v.at("min_blocks"), "planner.min_blocks");
  p.max_blocks = as_int32(v.at("max_blocks"), "planner.max_blocks");
  p.anneal_iterations = as_int32(v.at("anneal"), "planner.anneal");
  p.anneal_workers = as_int32(v.at("anneal_workers"), "planner.anneal_workers");
  // A seed is unsigned decimal digits only. strtoull alone is too lax:
  // it accepts "-1" and wraps it to 2^64-1 without setting ERANGE.
  const std::string& seed = v.at("seed").as_string();
  if (seed.empty() || seed.front() < '0' || seed.front() > '9')
    throw std::runtime_error("bad planner.seed '" + seed + "'");
  char* end = nullptr;
  errno = 0;
  p.seed = std::strtoull(seed.c_str(), &end, 10);
  if (end != seed.c_str() + seed.size() || errno == ERANGE)
    throw std::runtime_error("bad planner.seed '" + seed + "'");
  p.schedule.prefetch_window = as_int32(v.at("prefetch"), "planner.prefetch");
  p.schedule.reserved_host_bytes = v.at("reserved_host").as_int();
  return p;
}

void write_optimizer(Writer& w, const OptimizerSpec& o) {
  w.begin_object();
  w.key("kind"); w.value(static_cast<int>(o.kind));
  w.key("host_resident"); w.value(o.host_resident);
  w.key("state_per_param"); w.value(o.state_bytes_per_param_byte);
  w.end_object();
}

OptimizerSpec read_optimizer(const Value& v) {
  OptimizerSpec o;
  o.kind = enum_from<OptimizerSpec::Kind>(
      v.at("kind"), static_cast<int>(OptimizerSpec::Kind::kAdam) + 1,
      "optimizer.kind");
  o.host_resident = v.at("host_resident").as_bool();
  o.state_bytes_per_param_byte = v.at("state_per_param").as_double();
  return o;
}

void write_distributed(Writer& w, const core::DistributedOptions& d) {
  w.begin_object();
  w.key("num_gpus"); w.value(d.num_gpus);
  w.key("gpus_per_node"); w.value(d.net.gpus_per_node);
  w.key("intra_bw"); w.value(d.net.intra_bw);
  w.key("intra_latency"); w.value(d.net.intra_latency);
  w.key("inter_bw"); w.value(d.net.inter_bw);
  w.key("inter_latency"); w.value(d.net.inter_latency);
  w.key("exchange"); w.value(static_cast<int>(d.exchange));
  w.key("update"); w.value(static_cast<int>(d.update));
  w.key("iterations"); w.value(d.iterations);
  w.key("shard_fraction"); w.value(d.weight_shard_fraction);
  w.end_object();
}

core::DistributedOptions read_distributed(const Value& v) {
  core::DistributedOptions d;
  d.num_gpus = as_int32(v.at("num_gpus"), "distributed.num_gpus");
  d.net.gpus_per_node =
      as_int32(v.at("gpus_per_node"), "distributed.gpus_per_node");
  d.net.intra_bw = v.at("intra_bw").as_double();
  d.net.intra_latency = v.at("intra_latency").as_double();
  d.net.inter_bw = v.at("inter_bw").as_double();
  d.net.inter_latency = v.at("inter_latency").as_double();
  d.exchange = enum_from<core::ExchangeMode>(
      v.at("exchange"), static_cast<int>(core::ExchangeMode::kMerged) + 1,
      "distributed.exchange");
  d.update = enum_from<core::UpdateSite>(
      v.at("update"), static_cast<int>(core::UpdateSite::kDevice) + 1,
      "distributed.update");
  d.iterations = as_int32(v.at("iterations"), "distributed.iterations");
  d.weight_shard_fraction = v.at("shard_fraction").as_double();
  // d.planner stays default-constructed: PlanRequest::planner supersedes
  // it everywhere (and the fingerprint never reads it).
  return d;
}

/// Fleet component schema version, independent of the request envelope
/// (fleet_to_json is also a standalone fixture format).
constexpr int kFleetJsonVersion = 1;

void write_fleet(Writer& w, const place::FleetSpec& f) {
  w.begin_object();
  w.key("version"); w.value(kFleetJsonVersion);
  w.key("nodes");
  w.begin_array();
  for (const auto& node : f.nodes) {
    w.begin_object();
    w.key("name"); w.value(node.name);
    w.key("device"); detail::write_device(w, node.device);
    w.end_object();
  }
  w.end_array();
  w.key("gpus_per_node"); w.value(f.net.gpus_per_node);
  w.key("intra_bw"); w.value(f.net.intra_bw);
  w.key("intra_latency"); w.value(f.net.intra_latency);
  w.key("inter_bw"); w.value(f.net.inter_bw);
  w.key("inter_latency"); w.value(f.net.inter_latency);
  w.key("strategy"); w.value(place::placement_strategy_name(f.strategy));
  w.end_object();
}

place::FleetSpec read_fleet(const Value& v) {
  const std::int64_t version = v.at("version").as_int();
  if (version != kFleetJsonVersion)
    throw std::runtime_error("unsupported fleet schema version " +
                             std::to_string(version));
  place::FleetSpec f;
  for (const auto& nv : v.at("nodes").array) {
    place::FleetNode node;
    node.name = nv.at("name").as_string();
    node.device = detail::read_device(nv.at("device"));
    f.nodes.push_back(std::move(node));
  }
  f.net.gpus_per_node = as_int32(v.at("gpus_per_node"), "fleet.gpus_per_node");
  f.net.intra_bw = v.at("intra_bw").as_double();
  f.net.intra_latency = v.at("intra_latency").as_double();
  f.net.inter_bw = v.at("inter_bw").as_double();
  f.net.inter_latency = v.at("inter_latency").as_double();
  f.strategy = place::placement_strategy_from(v.at("strategy").as_string());
  return f;
}

PlanError parse_fail(const char* who, const std::string& why) {
  PlanError e;
  e.code = PlanErrorCode::kParseError;
  e.message = std::string(who) + ": " + why;
  return e;
}

PlanErrorCode error_code_from(const std::string& s) {
  static const std::map<std::string, PlanErrorCode> kMap = [] {
    std::map<std::string, PlanErrorCode> m;
    for (int c = 0; c <= static_cast<int>(PlanErrorCode::kUnavailable); ++c) {
      const auto code = static_cast<PlanErrorCode>(c);
      m.emplace(plan_error_code_name(code), code);
    }
    return m;
  }();
  const auto it = kMap.find(s);
  if (it == kMap.end())
    throw std::runtime_error("unknown error code '" + s + "'");
  return it->second;
}

tier::Tier tier_from(const std::string& s) {
  if (s == "device") return tier::Tier::kDevice;
  if (s == "host") return tier::Tier::kHost;
  if (s == "nvme") return tier::Tier::kNvme;
  throw std::runtime_error("unknown tier '" + s + "'");
}

}  // namespace

std::string request_to_json(const PlanRequest& request) {
  Writer w;
  w.begin_object();
  w.key("version"); w.value(kRequestJsonVersion);
  w.key("model"); write_model(w, request.model);
  w.key("device"); detail::write_device(w, request.device);
  w.key("planner"); write_planner(w, request.planner);
  w.key("optimizer"); write_optimizer(w, request.optimizer);
  w.key("distributed");
  if (request.distributed) write_distributed(w, *request.distributed);
  else w.null();
  w.key("fleet");
  if (request.fleet) write_fleet(w, *request.fleet);
  else w.null();
  w.key("probe_feasible_batch"); w.value(request.probe_feasible_batch);
  w.key("limits");
  w.begin_object();
  w.key("deadline"); w.value(request.limits.deadline);
  w.key("max_candidates"); w.value(request.limits.max_candidates);
  w.end_object();
  w.end_object();
  return w.take();
}

Expected<PlanRequest, PlanError> request_from_json(std::string_view json) {
  try {
    const Value root = util::json::parse(json);
    const std::int64_t version = root.at("version").as_int();
    // v1 (pre-fleet) payloads stay readable: they simply carry no fleet.
    if (version != 1 && version != kRequestJsonVersion)
      return parse_fail("request_from_json", "unsupported schema version " +
                                                 std::to_string(version));
    PlanRequest request;
    request.model = read_model(root.at("model"));
    request.device = detail::read_device(root.at("device"));
    request.planner = read_planner(root.at("planner"));
    request.optimizer = read_optimizer(root.at("optimizer"));
    if (!root.at("distributed").is_null())
      request.distributed = read_distributed(root.at("distributed"));
    if (version >= 2 && !root.at("fleet").is_null())
      request.fleet = read_fleet(root.at("fleet"));
    request.probe_feasible_batch = root.at("probe_feasible_batch").as_bool();
    const Value& limits = root.at("limits");
    request.limits.deadline = limits.at("deadline").as_double();
    request.limits.max_candidates = limits.at("max_candidates").as_int();
    return request;
  } catch (const std::exception& ex) {
    return parse_fail("request_from_json", ex.what());
  }
}

std::string error_to_json(const PlanError& error) {
  Writer w;
  w.begin_object();
  w.key("code"); w.value(plan_error_code_name(error.code));
  w.key("message"); w.value(error.message);
  w.key("model"); w.value(error.model);
  w.key("device"); w.value(error.device);
  w.key("violating_layer"); w.value(error.violating_layer);
  w.key("violating_block"); w.value(error.violating_block);
  w.key("deficits");
  w.begin_array();
  for (const auto& d : error.deficits) {
    w.begin_object();
    w.key("tier"); w.value(tier::tier_name(d.tier));
    w.key("required"); w.value(d.required);
    w.key("capacity"); w.value(d.capacity);
    w.end_object();
  }
  w.end_array();
  w.key("nearest_feasible_batch"); w.value(error.nearest_feasible_batch);
  w.key("probe_candidates"); w.value(error.probe_candidates);
  w.key("probe_cache_hits"); w.value(error.probe_cache_hits);
  w.key("from_negative_cache"); w.value(error.from_negative_cache);
  w.key("retry_after"); w.value(error.retry_after);
  w.key("partial");
  // Spliced verbatim so the embedded artifact is byte-identical to the
  // plan's standalone to_json() — the cross-process byte-stability the
  // storm test asserts extends to error payloads.
  if (error.partial) w.raw(plan_to_json(*error.partial));
  else w.null();
  w.end_object();
  return w.take();
}

std::string fleet_to_json(const place::FleetSpec& fleet) {
  Writer w;
  write_fleet(w, fleet);
  return w.take();
}

place::FleetSpec fleet_from_json(std::string_view json) {
  return read_fleet(util::json::parse(json));
}

PlanError error_from_json(std::string_view json) {
  try {
    const Value root = util::json::parse(json);
    PlanError error;
    error.code = error_code_from(root.at("code").as_string());
    error.message = root.at("message").as_string();
    error.model = root.at("model").as_string();
    error.device = root.at("device").as_string();
    error.violating_layer =
        as_int32(root.at("violating_layer"), "violating_layer");
    error.violating_block =
        as_int32(root.at("violating_block"), "violating_block");
    for (const auto& dv : root.at("deficits").array) {
      TierDeficit d;
      d.tier = tier_from(dv.at("tier").as_string());
      d.required = dv.at("required").as_int();
      d.capacity = dv.at("capacity").as_int();
      error.deficits.push_back(d);
    }
    error.nearest_feasible_batch = root.at("nearest_feasible_batch").as_int();
    error.probe_candidates =
        as_int32(root.at("probe_candidates"), "probe_candidates");
    error.probe_cache_hits =
        as_int32(root.at("probe_cache_hits"), "probe_cache_hits");
    error.from_negative_cache = root.at("from_negative_cache").as_bool();
    error.retry_after = root.at("retry_after").as_double();
    const Value& partial = root.at("partial");
    if (!partial.is_null()) {
      // The plan reader wants the artifact's exact text, not a DOM — the
      // parser's source spans recover it from the envelope verbatim.
      auto plan = plan_from_json(partial.span(json));
      if (!plan)
        return parse_fail("error_from_json",
                          "bad partial plan: " + plan.error().message);
      error.partial = std::make_shared<const Plan>(std::move(plan).value());
    }
    return error;
  } catch (const std::exception& ex) {
    return parse_fail("error_from_json", ex.what());
  }
}

}  // namespace karma::api
