// karma::api::RemoteSession — a Session-shaped client for karma-pland
// (DESIGN.md §12).
//
// Where Engine::session() plans in-process against the process-local
// Engine, RemoteSession::connect() plans against the node's planning
// daemon over its unix socket, so EVERY process on the machine shares one
// plan cache, one single-flight, and one admission policy. The planning
// surface is the same: plan() takes the same PlanRequest and returns the
// same Expected<Plan, PlanError> — errors the daemon diagnoses (including
// kOverloaded sheds with retry_after) come back structurally intact, and
// transport failures surface as PlanError{kUnavailable} rather than a
// broken pipe.
//
// The raw artifact is also exposed (plan_raw) because the wire carries the
// engine's Plan::to_json() bytes verbatim: clients that persist or compare
// artifacts (karma-planctl, the storm test) keep byte-identity end to end
// without a reserialize.
//
// Thread-safety: a RemoteSession serializes its calls internally (one
// in-flight request per connection); open one per thread for parallelism.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "src/api/errors.h"
#include "src/api/session.h"

namespace karma::api {

class RemoteSession {
 public:
  /// Connects to the daemon at `socket_path`. Requests carry `tenant` for
  /// fairness accounting; empty = the anonymous tenant. Failure to connect
  /// is PlanError{kUnavailable}.
  static Expected<RemoteSession, PlanError> connect(
      const std::string& socket_path, std::string tenant = {});

  RemoteSession(RemoteSession&& other) noexcept;
  RemoteSession& operator=(RemoteSession&& other) noexcept;
  ~RemoteSession();

  RemoteSession(const RemoteSession&) = delete;
  RemoteSession& operator=(const RemoteSession&) = delete;

  /// Remote Session::plan — blocks until the daemon answers (a cold miss
  /// waits for the fleet-wide search).
  Expected<Plan, PlanError> plan(const PlanRequest& request);

  /// Same, but returns the plan artifact's exact wire bytes.
  Expected<std::string, PlanError> plan_raw(const PlanRequest& request);

  /// The daemon's stats JSON (DaemonStats::to_json bytes).
  Expected<std::string, PlanError> stats_json();

  /// The daemon engine registry's metrics snapshot
  /// (obs::Registry::snapshot_json bytes, DESIGN.md §15): every counter,
  /// gauge, and latency histogram in the daemon process.
  Expected<std::string, PlanError> metrics_json();

  /// Installs a CalibrationTable (its to_json bytes, spliced verbatim into
  /// the calibrate envelope) on the daemon's engine, node-wide; empty
  /// `table_json` clears back to the analytic model. Returns the daemon's
  /// new active calibration hash ("" when cleared). Malformed tables come
  /// back as the daemon's kInvalidRequest error.
  Expected<std::string, PlanError> calibrate(const std::string& table_json);

  /// Round-trips a ping.
  bool ping();

  /// Asks the daemon to shut down gracefully; true once it acknowledges.
  bool shutdown_server();

  const std::string& tenant() const { return tenant_; }

 private:
  RemoteSession(int fd, std::string tenant);

  /// Sends one envelope, reads frames until the response echoing `id`
  /// arrives, returns its payload. Empty = transport failure.
  std::string round_trip(const std::string& envelope, std::int64_t id);

  int fd_ = -1;
  std::string tenant_;
  std::int64_t next_id_ = 1;
  std::mutex mu_;
};

}  // namespace karma::api
